// Package potemkin is a simulated reproduction of the Potemkin virtual
// honeyfarm (Vrable et al., SOSP 2005): a gateway that binds IP
// addresses of a large monitored network to virtual machines on demand,
// flash-clones those VMs from a reference snapshot in well under a
// second, shares their memory copy-on-write ("delta virtualization"),
// contains everything they emit, and recycles them when idle — so a
// handful of physical servers present tens of thousands of
// high-fidelity honeypots.
//
// The package is the library facade: construct a Honeyfarm from Options,
// drive it with traffic (single probes, exploits, or whole telescope
// traces), advance simulated time, and read the aggregate statistics.
// Everything runs on a deterministic discrete-event simulation — no real
// network or hypervisor is touched, and the same seed always produces
// the same run. With Options.Parallel the shards execute on one
// goroutine each under conservative epoch barriers — same bytes, more
// cores. Power users can reach the underlying gateway, farm, and
// kernel through Internals.
//
// Minimal use:
//
//	hf, err := potemkin.New(potemkin.Options{})
//	if err != nil { ... }
//	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
//	hf.RunFor(2 * time.Second)
//	fmt.Println(hf.Stats())
package potemkin

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"potemkin/internal/core"
	"potemkin/internal/dns"
	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/ingest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/scenario"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
	"potemkin/internal/trace"
	"potemkin/internal/vmm"
)

// Policy selects the containment mode for VM-originated traffic.
type Policy int

// Containment policies, from most permissive to most capable.
const (
	// Open forwards all outbound traffic (dangerous; for measurement
	// baselines only).
	Open Policy = iota
	// DropAll drops all outbound traffic leaving the honeyfarm.
	DropAll
	// ReflectSource additionally allows replies to the remote host that
	// elicited them.
	ReflectSource
	// InternalReflect additionally redirects other outbound connections
	// to fresh honeyfarm VMs, capturing multi-stage malware without
	// leaking a byte. This is the paper's headline policy.
	InternalReflect
)

func (p Policy) String() string { return gateway.Policy(p).String() }

// GuestKind selects a stock guest personality.
type GuestKind int

// Stock guests.
const (
	// GuestWindowsXP is vulnerable on 445/tcp and scans after infection.
	GuestWindowsXP GuestKind = iota
	// GuestSQLServer is vulnerable on 1434/udp (Slammer-style).
	GuestSQLServer
	// GuestLinuxServer has no vulnerability (control population).
	GuestLinuxServer
	// GuestMultiStage is GuestWindowsXP whose malware resolves
	// "update.evil.example" and fetches a second stage after compromise
	// — the workload that exercises the safe resolver and internal
	// reflection together.
	GuestMultiStage
)

// Hooks bundles the optional observation callbacks, so future hooks
// extend this struct instead of widening Options. All fields are
// optional. In Parallel mode the hooks are invoked from shard
// goroutines: they must be safe for concurrent use, and their
// interleaving across shards is not deterministic (the simulation
// itself remains exactly reproducible).
type Hooks struct {
	// OnDetected fires when the gateway's scan detector flags a VM.
	OnDetected func(addr string, distinctTargets int)
	// OnInfected fires when a guest is compromised.
	OnInfected func(addr string, generation int)
	// OnEgress observes every packet the policy allows to leave.
	OnEgress func(pkt string)
}

// Options configures a Honeyfarm. The zero value of every field has a
// sensible default.
type Options struct {
	// Seed makes the whole simulation deterministic. Default 1.
	Seed uint64

	// MonitoredSpace is the CIDR block the honeyfarm answers for.
	// Default "10.5.0.0/16".
	MonitoredSpace string

	// Servers is the number of physical servers. Default 4.
	Servers int
	// ServerMemory is per-server RAM in bytes. Default 16 GiB.
	ServerMemory uint64
	// GatewayShards partitions the monitored space across this many
	// independent gateway instances (the paper's answer when one
	// gateway box saturates). Default 1.
	GatewayShards int

	// Parallel runs each gateway shard — plus its slice of the farm
	// servers — on its own goroutine with its own event queue,
	// synchronized by conservative epoch barriers (see DESIGN.md
	// "Parallel execution"). The run is byte-identical to the same-seed
	// single-threaded run of the same engine, so determinism survives.
	// Requires GatewayShards >= 2 and at least one server per shard.
	// Cross-shard traffic pays the engine's 1 ms internal latency, so
	// results differ from the non-parallel in-process shard router (by
	// design: that latency is the lookahead budget). Live wire ingest
	// (Options.Wire) works in this mode: arrivals are quantized onto
	// the epoch grid, and a run with Wire.Capture set is byte-for-byte
	// replayable from its own pcap.
	Parallel bool

	// AdaptiveEpochs caps how many 1 ms lookahead cells one epoch
	// barrier may span when the parallel engine widens quiet stretches
	// (fewer barriers, same bytes — see DESIGN.md "Epoch exchange").
	// 0 keeps the default of 64; 1 pins the historical fixed epoch
	// grid; larger values widen further. Requires Parallel.
	AdaptiveEpochs int

	// Policy is the containment mode. Default InternalReflect.
	Policy Policy
	// IdleTimeout recycles VMs idle this long; 0 keeps the default of
	// 60 s; negative disables recycling.
	IdleTimeout time.Duration

	// Guest picks the honeypot personality. Default GuestWindowsXP.
	Guest GuestKind
	// GuestProfile, when non-nil, overrides Guest with a custom
	// personality (see guest.LoadProfile for the JSON form; the
	// potemkind -profile flag loads one). Must Validate.
	GuestProfile *guest.Profile

	// Wire, when non-nil, declares live GRE-over-UDP wire ingest:
	// StartWire opens the listener, Serve drives the farm from the
	// feed — on either engine, Parallel included. Mutually exclusive
	// with Scenario (the scenario defines the feed). See WireOptions.
	Wire *WireOptions

	// Scenario, when non-nil, arms a deterministic attacker campaign:
	// the scenario derives the guest personality (Guest and
	// GuestProfile must be unset) and RunScenario replays its compiled
	// packet plan and scores the run. Telemetry is forced on — the
	// scorecard is computed from the metrics registry. Load one with
	// LoadScenario (builtin family name or JSON file path).
	Scenario *Scenario

	// FullBoot disables flash cloning (baseline mode).
	FullBoot bool

	// SnapshotWarmup, when positive, prepares images the way the paper
	// deployed them: each server boots a reference VM, runs the guest
	// workload for this long, and snapshots the settled system as the
	// clone source. New returns with the simulation clock already
	// advanced past boot+warmup.
	SnapshotWarmup time.Duration

	// ScanFilter, when positive, sheds probes from sources whose scans
	// have already been serviced this many times per destination port,
	// without instantiating VMs for them. See gateway.Config.ScanFilter.
	ScanFilter int
	// PinDetected quarantines VMs flagged by the scan detector instead
	// of recycling them, preserving the infection for analysis.
	PinDetected bool

	// EventLog, when non-nil, receives the gateway's forensic event log
	// as JSON lines (bound/active/recycled/detected/reflected/…). In
	// Parallel mode the log is buffered per shard and written in shard
	// order on Close, so the bytes stay a pure function of the seed.
	EventLog io.Writer

	// TraceOut, when non-nil, receives the binding-lifecycle span trace
	// as JSON lines (see internal/trace): one trace per binding, spans
	// for bind → spawn → placement → clone → active → recycle, with the
	// forensic events folded on. Deterministic: the same seed writes the
	// same bytes. Call Close to flush spans still open at shutdown. In
	// Parallel mode, buffered per shard and written in shard order on
	// Close.
	TraceOut io.Writer

	// TraceChrome, when non-nil, receives the same trace in the Chrome
	// trace-event format — load the file in Perfetto or chrome://tracing
	// to see binding lifecycles on a timeline, one track per trace.
	// Call Close to terminate the JSON array. In Parallel mode the
	// records are buffered per shard and merged in shard order on
	// Close, with trace IDs shard-tagged so rows never collide; the
	// bytes are identical between parallel and sequential runs of the
	// same seed.
	TraceChrome io.Writer

	// Metrics enables the live telemetry registry: named atomic
	// counters/gauges/histograms (gateway_*, farm_*, vmm_*, ingest_*,
	// epoch_*) instrumented across the whole farm, readable at any
	// moment from any goroutine via Metrics()/MetricsText() without
	// touching simulation state. Telemetry is observability-only — a
	// same-seed run produces byte-identical output with it on or off —
	// and when off (the default) the instrumented paths pay one nil
	// check each.
	Metrics bool

	// EpochLog, when non-nil, receives the parallel engine's JSONL
	// epoch timeline — one line per epoch barrier with per-shard
	// advance and barrier-wait wall times plus exchange cost — for
	// `tracetool -epochs`. Requires Parallel. Wall-clock figures are
	// observability-only and never feed back into the simulation.
	EpochLog io.Writer

	// CheckpointDir, when set, saves a delta checkpoint of every VM the
	// scan detector flags (its dirtied memory pages and disk blocks) to
	// <dir>/<addr>-<t>.ckpt before the VM can be recycled.
	CheckpointDir string

	// CaptureDir, when set, records every packet crossing the gateway
	// into three trace files (in.potm, tovm.potm, out.potm) readable
	// with cmd/telescope. Call Close to flush them. In Parallel mode
	// each shard captures into its own subdirectory (shard-0, shard-1,
	// …) so shard goroutines never share a file.
	CaptureDir string

	// CapturePcap switches CaptureDir to classic pcap savefiles
	// (in.pcap, tovm.pcap, out.pcap, nanosecond precision, raw IPv4),
	// openable directly in tcpdump/Wireshark. `telescope export`
	// converts existing .potm captures to the same format.
	CapturePcap bool

	// Hooks bundles the observation callbacks. When a Hooks field and
	// the corresponding deprecated Options field are both set, Hooks
	// wins.
	Hooks *Hooks

	// OnDetected fires when the gateway's scan detector flags a VM.
	//
	// Deprecated: set Hooks.OnDetected.
	OnDetected func(addr string, distinctTargets int)
	// OnInfected fires when a guest is compromised.
	//
	// Deprecated: set Hooks.OnInfected.
	OnInfected func(addr string, generation int)
	// OnEgress observes every packet the policy allows to leave.
	//
	// Deprecated: set Hooks.OnEgress.
	OnEgress func(pkt string)
}

// withDefaults returns a copy of o with every zero-valued knob replaced
// by its documented default.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MonitoredSpace == "" {
		o.MonitoredSpace = "10.5.0.0/16"
	}
	if o.Servers == 0 {
		o.Servers = 4
	}
	if o.ServerMemory == 0 {
		o.ServerMemory = 16 << 30
	}
	return o
}

// Validate reports every configuration problem at once — one per line —
// instead of failing on the first, so a misconfigured deployment is
// fixed in one round trip. The zero value and any combination of
// defaulted fields validate clean. New calls it; call it directly to
// check a configuration without building anything.
func (o Options) Validate() error {
	o = o.withDefaults()
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("potemkin: "+format, args...))
	}
	if o.Servers < 0 {
		add("negative server count")
	}
	if _, err := netsim.ParsePrefix(o.MonitoredSpace); err != nil {
		add("invalid MonitoredSpace %q: %v", o.MonitoredSpace, err)
	}
	if o.GatewayShards < 0 {
		add("negative gateway shard count")
	}
	if o.GuestProfile != nil {
		if err := o.GuestProfile.Validate(); err != nil {
			add("invalid guest profile: %v", err)
		}
	}
	if o.Scenario != nil {
		if err := o.Scenario.Validate(); err != nil {
			errs = append(errs, err)
		}
		if o.GuestProfile != nil {
			add("Scenario and GuestProfile are mutually exclusive (the scenario derives the guest)")
		}
		if o.Guest != GuestWindowsXP {
			add("Scenario and Guest are mutually exclusive (the scenario derives the guest)")
		}
	}
	if o.SnapshotWarmup < 0 {
		add("negative SnapshotWarmup")
	}
	if o.SnapshotWarmup > 0 && o.FullBoot {
		add("SnapshotWarmup requires flash cloning (FullBoot off)")
	}
	if o.Parallel {
		if o.GatewayShards < 2 {
			add("Parallel requires GatewayShards >= 2 (got %d)", o.GatewayShards)
		}
		if o.Servers > 0 && o.GatewayShards > 1 && o.Servers < o.GatewayShards {
			add("Parallel needs at least one server per shard (%d servers, %d shards)",
				o.Servers, o.GatewayShards)
		}
	}
	if o.EpochLog != nil && !o.Parallel {
		add("EpochLog requires Parallel (the epoch timeline profiles the parallel engine)")
	}
	if o.AdaptiveEpochs < 0 {
		add("negative AdaptiveEpochs")
	}
	if o.AdaptiveEpochs != 0 && !o.Parallel {
		add("AdaptiveEpochs requires Parallel (it tunes the epoch barrier)")
	}
	if w := o.Wire; w != nil {
		if w.Addr == "" {
			add("Wire.Addr is required (the UDP listen address)")
		}
		if w.Shards < 0 {
			add("negative Wire.Shards")
		}
		if w.QueueLen < 0 {
			add("negative Wire.QueueLen")
		}
		if w.Speedup < 0 {
			add("negative Wire.Speedup")
		}
		if w.Speedup != 0 && w.Speedup != 1 && !w.PlainGRE {
			add("Wire.Speedup applies only to plain framing (set Wire.PlainGRE); timestamped frames carry exact virtual time")
		}
		if w.ListenFor < 0 {
			add("negative Wire.ListenFor")
		}
		if o.Scenario != nil {
			add("Wire and Scenario are mutually exclusive (the scenario defines the feed)")
		}
	}
	return errors.Join(errs...)
}

// effectiveHooks resolves the Hooks struct against the deprecated
// per-field callbacks: Hooks fields win, legacy fields fill the gaps.
func (o Options) effectiveHooks() Hooks {
	var h Hooks
	if o.Hooks != nil {
		h = *o.Hooks
	}
	if h.OnDetected == nil {
		h.OnDetected = o.OnDetected
	}
	if h.OnInfected == nil {
		h.OnInfected = o.OnInfected
	}
	if h.OnEgress == nil {
		h.OnEgress = o.OnEgress
	}
	return h
}

// guestProfile picks the personality for the configured guest kind.
func (o Options) guestProfile() *guest.Profile {
	switch {
	case o.GuestProfile != nil:
		return o.GuestProfile
	case o.Guest == GuestSQLServer:
		return guest.SQLServer()
	case o.Guest == GuestLinuxServer:
		return guest.LinuxServer()
	case o.Guest == GuestMultiStage:
		return guest.MultiStageDNS("update.evil.example")
	default:
		return guest.WindowsXP()
	}
}

// Stats is the aggregate honeyfarm state.
type Stats struct {
	Now               time.Duration // simulated time elapsed
	LiveVMs           int
	PeakVMs           int
	InfectedVMs       int
	BindingsCreated   uint64
	BindingsRecycled  uint64
	InboundPackets    uint64
	DeliveredToVM     uint64
	OutboundDropped   uint64
	OutboundToSource  uint64
	OutboundReflected uint64
	DNSProxied        uint64
	SpawnFailures     uint64
	DetectedInfected  uint64
	ScanFiltered      uint64
	MemoryInUse       uint64 // modeled bytes across servers
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("t=%v vms=%d (peak %d, infected %d) bindings=%d/%d in=%d out[drop=%d src=%d refl=%d] mem=%dMiB",
		s.Now, s.LiveVMs, s.PeakVMs, s.InfectedVMs,
		s.BindingsCreated, s.BindingsRecycled, s.InboundPackets,
		s.OutboundDropped, s.OutboundToSource, s.OutboundReflected,
		s.MemoryInUse>>20)
}

// gatewayFront is the surface the facade needs from either a single
// gateway or a sharded set.
type gatewayFront interface {
	gateway.Egress
	HandleInbound(now sim.Time, pkt *netsim.Packet)
	Stats() gateway.Stats
	NumBindings() int
	RecycleAll(now sim.Time)
	Close()
}

// Honeyfarm is a running simulated honeyfarm.
type Honeyfarm struct {
	opts    Options
	space   netsim.Prefix
	profile *guest.Profile
	// plan is the compiled attacker campaign when Options.Scenario is
	// set; RunScenario replays and scores it.
	plan *scenario.Plan

	// Sequential engine (nil when Parallel).
	k        *sim.Kernel
	g        gatewayFront
	single   *gateway.Gateway // nil when sharded
	f        *farm.Farm
	resolver *dns.Resolver
	tracer   *trace.Tracer
	chromeW  *trace.ChromeWriter

	// Parallel engine (nil otherwise).
	eng *core.ShardEngine

	// metrics is the live telemetry registry (nil unless Options.Metrics).
	metrics *metrics.Registry
	// bridge is the wire-ingest bridge last handed out by WireBridge,
	// retained so Snapshot can surface listener loss accounting.
	bridge *ingest.Bridge
	// wire is the server handed out by StartWire (Options.Wire mode),
	// the preferred ingest accounting source for Snapshot.
	wire *WireServer

	captures []*captureFile
}

// New constructs a honeyfarm from opts.
func New(opts Options) (*Honeyfarm, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	space, _ := netsim.ParsePrefix(opts.MonitoredSpace)
	var plan *scenario.Plan
	if opts.Scenario != nil {
		var err error
		plan, err = scenario.Compile(opts.Scenario, opts.Seed, space)
		if err != nil {
			return nil, err
		}
		// A scenario run is always scored, and the scorecard is computed
		// from the telemetry registry.
		opts.Metrics = true
		// Scenario runs execute on the shard engine (see below), which
		// counts shards from 1.
		if opts.GatewayShards < 1 {
			opts.GatewayShards = 1
		}
	}
	hf := &Honeyfarm{opts: opts, space: space, plan: plan}
	if plan != nil {
		hf.profile = plan.Profile
	} else {
		hf.profile = opts.guestProfile()
	}
	if opts.Metrics {
		hf.metrics = metrics.NewRegistry()
	}

	fc := farm.DefaultConfig()
	fc.Servers = opts.Servers
	fc.HostConfig.MemoryBytes = opts.ServerMemory
	fc.FullBoot = opts.FullBoot
	fc.Profile = hf.profile
	if plan != nil {
		fc.PickTargetFor = plan.PickTargetFor()
	}

	gc := gateway.DefaultConfig()
	gc.Space = space
	gc.Policy = gateway.Policy(opts.Policy)
	gc.ScanFilter = opts.ScanFilter
	gc.PinDetected = opts.PinDetected
	switch {
	case opts.IdleTimeout < 0:
		gc.IdleTimeout = 0
	case opts.IdleTimeout == 0:
		gc.IdleTimeout = 60 * time.Second
	default:
		gc.IdleTimeout = opts.IdleTimeout
	}

	hooks := opts.effectiveHooks()
	if opts.Parallel {
		return hf.buildEngine(fc, gc, hooks, true)
	}
	if plan != nil {
		// Scenario runs always execute on the shard engine — with
		// Parallel off the domains advance on one goroutine, but the
		// topology, kernels, and RNG streams are exactly the parallel
		// (and cluster) ones, so the same plan at the same shard count
		// replays byte-identically under all three execution modes.
		return hf.buildEngine(fc, gc, hooks, false)
	}
	return hf.buildSequential(fc, gc, hooks)
}

// fail is the single error exit: whatever partial state New built —
// in particular capture files already opened by openCapture — is
// flushed and closed before the error is returned, so a failed New
// never leaks open file handles or unflushed buffers.
func (hf *Honeyfarm) fail(err error) (*Honeyfarm, error) {
	hf.closeCaptures()
	return nil, err
}

// buildSequential wires the classic single-kernel engine (one kernel,
// one farm, a single or in-process-sharded gateway).
func (hf *Honeyfarm) buildSequential(fc farm.Config, gc gateway.Config, hooks Hooks) (*Honeyfarm, error) {
	opts := hf.opts
	k := sim.NewKernel(opts.Seed)
	hf.k = k
	fc.Metrics = hf.metrics
	gc.Metrics = hf.metrics

	if hooks.OnInfected != nil {
		cb := hooks.OnInfected
		fc.OnInfected = func(_ sim.Time, in *guest.Instance) {
			cb(in.IP.String(), in.Generation)
		}
	}
	f, err := farm.New(k, fc)
	if err != nil {
		return hf.fail(err)
	}

	if opts.EventLog != nil {
		gc.EventSink = gateway.JSONLSink(opts.EventLog, nil)
	}
	if opts.TraceOut != nil || opts.TraceChrome != nil {
		var sinks []trace.Sink
		if opts.TraceOut != nil {
			sinks = append(sinks, trace.JSONL(opts.TraceOut, func(err error) {
				fmt.Fprintf(os.Stderr, "potemkin: trace: %v\n", err)
			}))
		}
		if opts.TraceChrome != nil {
			hf.chromeW = trace.NewChromeWriter(opts.TraceChrome)
			sinks = append(sinks, hf.chromeW.Sink())
		}
		hf.tracer = trace.New(sinks...)
		gc.Tracer = hf.tracer
		f.SetTracer(hf.tracer)
	}
	if opts.CaptureDir != "" {
		capture, err := hf.openCapture(opts.CaptureDir)
		if err != nil {
			return hf.fail(err)
		}
		gc.Capture = capture
	}
	gc.OnDetected = func(now sim.Time, a netsim.Addr, n int) {
		if opts.CheckpointDir != "" {
			if err := hf.checkpointVM(now, a); err != nil {
				fmt.Fprintf(os.Stderr, "potemkin: checkpoint %s: %v\n", a, err)
			}
		}
		if hooks.OnDetected != nil {
			hooks.OnDetected(a.String(), n)
		}
	}
	// The built-in safe resolver answers every VM-originated DNS lookup
	// with an address inside the monitored space, so second-stage
	// fetches land on fresh honeypots instead of real infrastructure.
	resolver := dns.NewResolver(hf.space)
	hf.resolver = resolver
	gc.ExternalOut = func(now sim.Time, p *netsim.Packet) {
		if p.Proto == netsim.ProtoUDP && p.Dst == gc.Resolver {
			if resp := resolver.ServePacket(p); resp != nil {
				k.After(time.Millisecond, func(then sim.Time) {
					hf.g.HandleInbound(then, resp)
				})
			}
			return
		}
		if hooks.OnEgress != nil {
			hooks.OnEgress(p.String())
		}
	}
	if opts.GatewayShards > 1 {
		s, err := gateway.NewSharded(k, gc, f, opts.GatewayShards)
		if err != nil {
			return hf.fail(err)
		}
		f.SetGateway(s)
		hf.f, hf.g = f, s
	} else {
		g := gateway.New(k, gc, f)
		f.SetGateway(g)
		hf.f, hf.g, hf.single = f, g, g
	}

	if opts.SnapshotWarmup > 0 {
		if err := f.PrepareSnapshotImages(fc.Image.Name+"-settled", opts.SnapshotWarmup); err != nil {
			return hf.fail(err)
		}
	}
	return hf, nil
}

// buildEngine wires the conservative shard engine: one domain (kernel
// + gateway + farm slice + resolver) per shard, epochs synchronized by
// core.ShardEngine. With parallel the domains run on one goroutine
// each; without, the same engine advances single-threaded — same
// bytes either way.
func (hf *Honeyfarm) buildEngine(fc farm.Config, gc gateway.Config, hooks Hooks, parallel bool) (*Honeyfarm, error) {
	opts := hf.opts
	ec := core.ShardEngineConfig{
		Shards:         opts.GatewayShards,
		Parallel:       parallel,
		AdaptiveEpochs: opts.AdaptiveEpochs,
		Seed:           opts.Seed,
		Gateway:        gc,
		Farm:           fc,
		EventLog:       opts.EventLog,
		TraceOut:       opts.TraceOut,
		ChromeOut:      opts.TraceChrome,
		Metrics:        hf.metrics,
		EpochLog:       opts.EpochLog,
	}
	if hooks.OnInfected != nil {
		cb := hooks.OnInfected
		ec.OnInfected = func(_ sim.Time, in *guest.Instance) {
			cb(in.IP.String(), in.Generation)
		}
	}
	if hooks.OnEgress != nil {
		cb := hooks.OnEgress
		ec.OnEgress = func(_ sim.Time, p *netsim.Packet) { cb(p.String()) }
	}
	if opts.CheckpointDir != "" || hooks.OnDetected != nil {
		ec.OnDetected = func(now sim.Time, a netsim.Addr, n int) {
			if opts.CheckpointDir != "" {
				if err := hf.checkpointVM(now, a); err != nil {
					fmt.Fprintf(os.Stderr, "potemkin: checkpoint %s: %v\n", a, err)
				}
			}
			if hooks.OnDetected != nil {
				hooks.OnDetected(a.String(), n)
			}
		}
	}
	if opts.CaptureDir != "" {
		ec.Capture = func(shard int) (gateway.CaptureSink, error) {
			return hf.openCapture(filepath.Join(opts.CaptureDir, fmt.Sprintf("shard-%d", shard)))
		}
	}
	eng, err := core.NewShardEngine(ec)
	if err != nil {
		return hf.fail(err)
	}
	hf.eng = eng
	if opts.SnapshotWarmup > 0 {
		if err := eng.PrepareSnapshotImages(fc.Image.Name+"-settled", opts.SnapshotWarmup); err != nil {
			return hf.fail(err)
		}
	}
	return hf, nil
}

// Resolver exposes the built-in safe DNS resolver (to add zone entries
// or inspect query counts). In Parallel mode each shard runs its own
// resolver (name synthesis is deterministic by name, so all shards
// agree on every answer); this returns shard 0's — use
// Internals().Engine for the rest.
func (hf *Honeyfarm) Resolver() *dns.Resolver {
	if hf.eng != nil {
		return hf.eng.Domains()[0].Resolver
	}
	return hf.resolver
}

// vmAt returns the live VM bound to addr, whichever engine runs it.
func (hf *Honeyfarm) vmAt(addr netsim.Addr) *vmm.VM {
	if hf.eng != nil {
		return hf.eng.VMAt(addr)
	}
	return hf.f.VMAt(addr)
}

// checkpointVM saves the delta state of the VM bound to addr into
// CheckpointDir.
func (hf *Honeyfarm) checkpointVM(now sim.Time, addr netsim.Addr) error {
	vm := hf.vmAt(addr)
	if vm == nil {
		return fmt.Errorf("no VM bound")
	}
	ck := vmm.TakeCheckpoint(vm)
	if err := os.MkdirAll(hf.opts.CheckpointDir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%.3fs.ckpt", addr, now.Seconds())
	f, err := os.Create(filepath.Join(hf.opts.CheckpointDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = ck.WriteTo(f)
	return err
}

// MustNew is New that panics on error (examples, tests).
func MustNew(opts Options) *Honeyfarm {
	hf, err := New(opts)
	if err != nil {
		panic(err)
	}
	return hf
}

// Now returns elapsed simulated time.
func (hf *Honeyfarm) Now() time.Duration {
	if hf.eng != nil {
		return time.Duration(hf.eng.Now())
	}
	return time.Duration(hf.k.Now())
}

// RunFor advances the simulation by d.
func (hf *Honeyfarm) RunFor(d time.Duration) {
	if hf.eng != nil {
		hf.eng.RunFor(d)
		return
	}
	hf.k.RunFor(d)
}

// inject delivers pkt synchronously at the current time.
func (hf *Honeyfarm) inject(pkt *netsim.Packet) {
	if hf.eng != nil {
		hf.eng.Inject(pkt)
		return
	}
	hf.g.HandleInbound(hf.k.Now(), pkt)
}

// InjectProbe delivers a TCP SYN from src to dst:port, as a scanner on
// the real Internet would. Returns an error for unparseable addresses
// or a destination outside the monitored space.
func (hf *Honeyfarm) InjectProbe(src, dst string, port uint16) error {
	s, d, err := hf.parsePair(src, dst)
	if err != nil {
		return err
	}
	hf.inject(netsim.TCPSyn(s, d, 40000, port, 1))
	return nil
}

// InjectExploit delivers the exploit payload for the configured guest
// personality to dst (compromising it if the service is vulnerable).
func (hf *Honeyfarm) InjectExploit(src, dst string) error {
	s, d, err := hf.parsePair(src, dst)
	if err != nil {
		return err
	}
	prof := hf.profile
	payload := prof.ExploitPayload(0)
	if payload == nil {
		return fmt.Errorf("potemkin: guest %q has no vulnerability", prof.Name)
	}
	var pkt *netsim.Packet
	if prof.ScanProto == netsim.ProtoUDP {
		pkt = netsim.UDPDatagram(s, d, 40000, prof.ScanDstPort, payload)
	} else {
		pkt = netsim.TCPSyn(s, d, 40000, prof.ScanDstPort, 1)
		pkt.Flags |= netsim.FlagPSH
		pkt.Payload = payload
	}
	hf.inject(pkt)
	return nil
}

func (hf *Honeyfarm) parsePair(src, dst string) (netsim.Addr, netsim.Addr, error) {
	s, err := netsim.ParseAddr(src)
	if err != nil {
		return 0, 0, err
	}
	d, err := netsim.ParseAddr(dst)
	if err != nil {
		return 0, 0, err
	}
	if !hf.space.Contains(d) {
		return 0, 0, fmt.Errorf("potemkin: %s outside monitored space %s", dst, hf.space)
	}
	return s, d, nil
}

// WireBridge returns an ingest bridge wired to this honeyfarm:
// br.Pump(listener, tail) then serves live GRE-over-UDP traffic into
// the gateway. speedup scales wall arrival time onto virtual time for
// plain (non-timestamped) framing. In Parallel mode the bridge routes
// the feed through the engine's epoch-aligned replay path (the same
// machinery Options.Wire uses), so pumping works on either engine.
//
// Deprecated: declare Options.Wire and use StartWire/Serve — the
// listener, framing, capture, and lifetime are then validated by
// Options.Validate like every other mode.
func (hf *Honeyfarm) WireBridge(speedup float64) *ingest.Bridge {
	br := &ingest.Bridge{Speedup: speedup}
	if hf.eng != nil {
		eng := hf.eng
		br.PumpFn = func(l *ingest.Listener, tail time.Duration) sim.Time {
			src := &ingest.WireSource{L: l, Speedup: speedup, Metrics: hf.metrics}
			n, _ := eng.Replay(src, nil, tail)
			br.Delivered += uint64(n)
			br.Clamped += src.Clamped()
			br.QueueDepth.Merge(&src.QueueDepth)
			return eng.Now()
		}
	} else {
		br.K = hf.k
		br.Tracer = hf.tracer
		br.Emit = func(now sim.Time, pkt *netsim.Packet) {
			hf.g.HandleInbound(now, pkt)
		}
	}
	hf.bridge = br
	return br
}

// GenerateTrace synthesizes background-radiation traffic for the
// honeyfarm's monitored space.
func (hf *Honeyfarm) GenerateTrace(dur time.Duration, pps float64) ([]TraceRecord, error) {
	cfg := telescope.DefaultGenConfig()
	cfg.Space = hf.space
	cfg.Duration = dur
	cfg.Rate = pps
	cfg.Seed = hf.opts.Seed
	return telescope.Generate(cfg)
}

// Stats returns the aggregate state.
func (hf *Honeyfarm) Stats() Stats {
	if hf.eng != nil {
		gs := hf.eng.GatewayStats()
		fs := hf.eng.FarmStats()
		return Stats{
			Now:               time.Duration(hf.eng.Now()),
			LiveVMs:           hf.eng.LiveVMs(),
			PeakVMs:           fs.PeakLiveVMs,
			InfectedVMs:       hf.eng.InfectedVMs(),
			BindingsCreated:   gs.BindingsCreated,
			BindingsRecycled:  gs.BindingsRecycled,
			InboundPackets:    gs.InboundPackets,
			DeliveredToVM:     gs.DeliveredToVM,
			OutboundDropped:   gs.OutDropped,
			OutboundToSource:  gs.OutToSource,
			OutboundReflected: gs.OutReflected,
			DNSProxied:        gs.OutDNSProxied,
			SpawnFailures:     gs.SpawnFailures + fs.SpawnFailures,
			DetectedInfected:  gs.DetectedInfected,
			ScanFiltered:      gs.ScanFiltered,
			MemoryInUse:       hf.eng.MemoryInUse(),
		}
	}
	gs := hf.g.Stats()
	fs := hf.f.Stats()
	return Stats{
		Now:               time.Duration(hf.k.Now()),
		LiveVMs:           hf.f.LiveVMs(),
		PeakVMs:           fs.PeakLiveVMs,
		InfectedVMs:       hf.f.InfectedVMs(),
		BindingsCreated:   gs.BindingsCreated,
		BindingsRecycled:  gs.BindingsRecycled,
		InboundPackets:    gs.InboundPackets,
		DeliveredToVM:     gs.DeliveredToVM,
		OutboundDropped:   gs.OutDropped,
		OutboundToSource:  gs.OutToSource,
		OutboundReflected: gs.OutReflected,
		DNSProxied:        gs.OutDNSProxied,
		SpawnFailures:     gs.SpawnFailures + fs.SpawnFailures,
		DetectedInfected:  gs.DetectedInfected,
		ScanFiltered:      gs.ScanFiltered,
		MemoryInUse:       hf.f.MemoryInUse(),
	}
}

// LiveVMs returns the current VM count (convenience for sampling loops).
func (hf *Honeyfarm) LiveVMs() int {
	if hf.eng != nil {
		return hf.eng.LiveVMs()
	}
	return hf.f.LiveVMs()
}

// closeCaptures flushes and closes every open capture file.
func (hf *Honeyfarm) closeCaptures() {
	for _, c := range hf.captures {
		c.flush()
	}
	hf.captures = nil
}

// Close stops background activity (recycling timers), flushes capture
// files, finishes spans still open in the trace, and terminates the
// Chrome trace array.
func (hf *Honeyfarm) Close() {
	if hf.eng != nil {
		if err := hf.eng.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "potemkin: close: %v\n", err)
		}
		hf.closeCaptures()
		return
	}
	hf.g.Close()
	hf.closeCaptures()
	hf.tracer.FlushOpen(hf.k.Now())
	if hf.chromeW != nil {
		if err := hf.chromeW.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "potemkin: trace: %v\n", err)
		}
		hf.chromeW = nil
	}
}

// Tracer exposes the span tracer when tracing is on (Options.TraceOut
// or TraceChrome set), for stage histograms and live statistics. Nil —
// safe to call methods on — when tracing is off, and in Parallel mode
// (each shard owns a private tracer there).
func (hf *Honeyfarm) Tracer() *trace.Tracer { return hf.tracer }

// Metrics exposes the live telemetry registry when Options.Metrics is
// set; nil — safe to call methods on — otherwise. The registry may be
// read (Snapshot, WriteProm) from any goroutine at any time, including
// mid-run: every series is a plain atomic, so a scrape never touches
// simulation state.
func (hf *Honeyfarm) Metrics() *metrics.Registry { return hf.metrics }

// MetricsText renders the registry in the Prometheus text exposition
// format (empty when Options.Metrics is off).
func (hf *Honeyfarm) MetricsText() []byte {
	if hf.metrics == nil {
		return nil
	}
	var buf bytes.Buffer
	hf.metrics.WriteProm(&buf)
	return buf.Bytes()
}

// captureFile is one open capture trace, in either the native .potm
// format (record sizes only) or classic pcap (full marshaled packets).
type captureFile struct {
	f   *os.File
	w   *telescope.Writer  // .potm mode
	pw  *ingest.PcapWriter // .pcap mode
	buf []byte             // pcap marshal scratch
}

func (cf *captureFile) flush() {
	if cf.w != nil {
		cf.w.Flush()
	}
	if cf.pw != nil {
		cf.pw.Flush()
	}
	cf.f.Close()
}

// openCapture creates the per-direction trace writers.
func (hf *Honeyfarm) openCapture(dir string) (gateway.CaptureSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ext := ".potm"
	if hf.opts.CapturePcap {
		ext = ".pcap"
	}
	byDir := make(map[gateway.Direction]*captureFile, 3)
	for d, name := range map[gateway.Direction]string{
		gateway.CapInbound: "in",
		gateway.CapToVM:    "tovm",
		gateway.CapEgress:  "out",
	} {
		f, err := os.Create(filepath.Join(dir, name+ext))
		if err != nil {
			return nil, err
		}
		cf := &captureFile{f: f}
		if hf.opts.CapturePcap {
			cf.pw, err = ingest.NewPcapWriter(f)
		} else {
			cf.w, err = telescope.NewWriter(f)
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		byDir[d] = cf
		hf.captures = append(hf.captures, cf)
	}
	return func(now sim.Time, d gateway.Direction, pkt *netsim.Packet) {
		cf, ok := byDir[d]
		if !ok {
			return
		}
		var err error
		if cf.pw != nil {
			if n := pkt.WireLen(); cap(cf.buf) < n {
				cf.buf = make([]byte, n)
			} else {
				cf.buf = cf.buf[:n]
			}
			pkt.MarshalInto(cf.buf)
			err = cf.pw.WritePacket(now, cf.buf)
		} else {
			rec := telescope.RecordOf(now, pkt)
			err = cf.w.Write(&rec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "potemkin: capture: %v\n", err)
		}
	}, nil
}

// Internals exposes the underlying components for advanced use. The
// types live in internal packages: importable by code in this module
// (cmd/, examples/, experiments), visible as opaque handles elsewhere.
type Internals struct {
	// Kernel is the single simulation kernel; nil in Parallel mode
	// (each shard domain owns its own — see Engine).
	Kernel *sim.Kernel
	// Gateway is the single gateway instance, nil when sharded.
	Gateway *gateway.Gateway
	// Sharded is the in-process shard set, nil for a single gateway
	// and in Parallel mode.
	Sharded *gateway.Sharded
	// Farm is the server pool; nil in Parallel mode.
	Farm *farm.Farm
	// Engine is the parallel shard engine; nil otherwise.
	Engine *core.ShardEngine
}

// Internals returns the underlying simulation objects.
func (hf *Honeyfarm) Internals() Internals {
	in := Internals{Kernel: hf.k, Gateway: hf.single, Farm: hf.f, Engine: hf.eng}
	if s, ok := hf.g.(*gateway.Sharded); ok {
		in.Sharded = s
	}
	return in
}
