package potemkin

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"potemkin/internal/telescope"
	"potemkin/internal/vmm"
)

func TestNewDefaults(t *testing.T) {
	hf, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	if hf.Now() != 0 {
		t.Errorf("Now = %v", hf.Now())
	}
	st := hf.Stats()
	if st.LiveVMs != 0 || st.InboundPackets != 0 {
		t.Errorf("fresh farm stats = %+v", st)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{MonitoredSpace: "garbage"}); err == nil {
		t.Error("bad CIDR accepted")
	}
	if _, err := New(Options{Servers: -1}); err == nil {
		t.Error("negative servers accepted")
	}
}

func TestProbeLifecycle(t *testing.T) {
	hf := MustNew(Options{Policy: ReflectSource})
	defer hf.Close()
	if err := hf.InjectProbe("203.0.113.9", "10.5.1.2", 445); err != nil {
		t.Fatal(err)
	}
	hf.RunFor(2 * time.Second)
	st := hf.Stats()
	if st.LiveVMs != 1 {
		t.Errorf("LiveVMs = %d", st.LiveVMs)
	}
	if st.BindingsCreated != 1 || st.DeliveredToVM != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Reply went back to the scanner.
	if st.OutboundToSource != 1 {
		t.Errorf("OutboundToSource = %d", st.OutboundToSource)
	}
}

func TestProbeOutsideSpaceRejected(t *testing.T) {
	hf := MustNew(Options{})
	defer hf.Close()
	if err := hf.InjectProbe("203.0.113.9", "11.0.0.1", 445); err == nil {
		t.Error("probe outside space accepted")
	}
	if err := hf.InjectProbe("bad", "10.5.0.1", 445); err == nil {
		t.Error("bad source accepted")
	}
}

func TestExploitInfectsAndIsDetected(t *testing.T) {
	var infectedAddr, detectedAddr string
	hf := MustNew(Options{
		Policy:     DropAll,
		OnInfected: func(a string, gen int) { infectedAddr = a },
		OnDetected: func(a string, n int) { detectedAddr = a },
	})
	defer hf.Close()
	if err := hf.InjectExploit("203.0.113.9", "10.5.1.2"); err != nil {
		t.Fatal(err)
	}
	hf.RunFor(5 * time.Second)
	if infectedAddr != "10.5.1.2" {
		t.Errorf("infected = %q", infectedAddr)
	}
	if detectedAddr != "10.5.1.2" {
		t.Errorf("detected = %q", detectedAddr)
	}
	if hf.Stats().InfectedVMs != 1 {
		t.Errorf("InfectedVMs = %d", hf.Stats().InfectedVMs)
	}
	// Drop-all: the worm's scans died at the gateway.
	if hf.Stats().OutboundDropped == 0 {
		t.Error("no drops recorded")
	}
}

func TestExploitOnInvulnerableGuest(t *testing.T) {
	hf := MustNew(Options{Guest: GuestLinuxServer})
	defer hf.Close()
	if err := hf.InjectExploit("203.0.113.9", "10.5.1.2"); err == nil {
		t.Error("exploit accepted for invulnerable guest")
	}
}

func TestRecyclingThroughFacade(t *testing.T) {
	hf := MustNew(Options{IdleTimeout: 2 * time.Second})
	defer hf.Close()
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 80)
	hf.RunFor(time.Second)
	if hf.LiveVMs() != 1 {
		t.Fatalf("LiveVMs = %d", hf.LiveVMs())
	}
	hf.RunFor(30 * time.Second)
	if hf.LiveVMs() != 0 {
		t.Errorf("idle VM survived: %d", hf.LiveVMs())
	}
	if hf.Stats().BindingsRecycled != 1 {
		t.Errorf("recycled = %d", hf.Stats().BindingsRecycled)
	}
}

func TestNegativeIdleTimeoutDisablesRecycling(t *testing.T) {
	hf := MustNew(Options{IdleTimeout: -1})
	defer hf.Close()
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 80)
	hf.RunFor(5 * time.Minute)
	if hf.LiveVMs() != 1 {
		t.Errorf("LiveVMs = %d, want 1 (no recycling)", hf.LiveVMs())
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	hf := MustNew(Options{IdleTimeout: -1})
	defer hf.Close()
	recs, err := hf.GenerateTrace(10*time.Second, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	n := hf.ReplayTrace(recs)
	if n != len(recs) {
		t.Errorf("injected %d of %d", n, len(recs))
	}
	st := hf.Stats()
	if st.InboundPackets != uint64(len(recs)) {
		t.Errorf("InboundPackets = %d", st.InboundPackets)
	}
	if st.LiveVMs == 0 {
		t.Error("trace spawned no VMs")
	}
	if st.LiveVMs > len(recs) {
		t.Errorf("more VMs (%d) than packets (%d)", st.LiveVMs, len(recs))
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	hf := MustNew(Options{})
	defer hf.Close()
	if n := hf.ReplayTrace(nil); n != 0 {
		t.Errorf("injected %d from empty trace", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		hf := MustNew(Options{Seed: 7, IdleTimeout: 2 * time.Second})
		defer hf.Close()
		recs, _ := hf.GenerateTrace(30*time.Second, 100)
		hf.ReplayTrace(recs)
		return hf.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic:\n%+v\n%+v", a, b)
	}
}

func TestEgressObserved(t *testing.T) {
	var egress []string
	hf := MustNew(Options{Policy: ReflectSource, OnEgress: func(p string) { egress = append(egress, p) }})
	defer hf.Close()
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf.RunFor(2 * time.Second)
	if len(egress) != 1 || !strings.Contains(egress[0], "203.0.113.9") {
		t.Errorf("egress = %v", egress)
	}
}

func TestStatsString(t *testing.T) {
	hf := MustNew(Options{})
	defer hf.Close()
	s := hf.Stats().String()
	if !strings.Contains(s, "vms=0") {
		t.Errorf("summary = %q", s)
	}
}

func TestInternalsExposed(t *testing.T) {
	hf := MustNew(Options{})
	defer hf.Close()
	in := hf.Internals()
	if in.Kernel == nil || in.Gateway == nil || in.Farm == nil {
		t.Error("internals incomplete")
	}
}

func TestScanFilterThroughFacade(t *testing.T) {
	hf := MustNew(Options{ScanFilter: 2, IdleTimeout: -1})
	defer hf.Close()
	for i := 0; i < 20; i++ {
		hf.InjectProbe("203.0.113.9", "10.5.1."+strconv.Itoa(i+1), 445)
	}
	hf.RunFor(2 * time.Second)
	st := hf.Stats()
	if st.LiveVMs != 2 {
		t.Errorf("LiveVMs = %d, want 2", st.LiveVMs)
	}
	if st.ScanFiltered != 18 {
		t.Errorf("ScanFiltered = %d, want 18", st.ScanFiltered)
	}
}

func TestPinDetectedThroughFacade(t *testing.T) {
	hf := MustNew(Options{
		Policy:      DropAll,
		IdleTimeout: 2 * time.Second,
		PinDetected: true,
	})
	defer hf.Close()
	hf.InjectExploit("203.0.113.9", "10.5.1.2")
	hf.RunFor(2 * time.Minute)
	if hf.LiveVMs() != 1 {
		t.Errorf("LiveVMs = %d, want 1 (quarantined)", hf.LiveVMs())
	}
	if hf.Stats().InfectedVMs != 1 {
		t.Errorf("InfectedVMs = %d", hf.Stats().InfectedVMs)
	}
}

func TestEventLogThroughFacade(t *testing.T) {
	var buf bytes.Buffer
	hf := MustNew(Options{EventLog: &buf, IdleTimeout: 2 * time.Second})
	defer hf.Close()
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf.RunFor(time.Minute)
	log := buf.String()
	for _, want := range []string{`"kind":"bound"`, `"kind":"active"`, `"kind":"recycled"`, `"addr":"10.5.1.2"`} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %s:\n%s", want, log)
		}
	}
}

func TestCheckpointOnDetection(t *testing.T) {
	dir := t.TempDir()
	hf := MustNew(Options{Policy: DropAll, CheckpointDir: dir})
	defer hf.Close()
	hf.InjectExploit("203.0.113.9", "10.5.1.2")
	hf.RunFor(5 * time.Second)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(entries))
	}
	if !strings.HasPrefix(entries[0].Name(), "10.5.1.2-") {
		t.Errorf("checkpoint name = %q", entries[0].Name())
	}
	// The file is a valid checkpoint with real delta content.
	f, err := os.Open(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ck, err := vmm.ReadCheckpoint(f)
	if err != nil {
		t.Fatal(err)
	}
	if ck.IP.String() != "10.5.1.2" || len(ck.Pages) == 0 {
		t.Errorf("checkpoint: ip=%s pages=%d", ck.IP, len(ck.Pages))
	}
}

func TestCaptureThroughFacade(t *testing.T) {
	dir := t.TempDir()
	hf := MustNew(Options{Policy: ReflectSource, CaptureDir: dir, IdleTimeout: -1})
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf.RunFor(2 * time.Second)
	hf.Close()

	read := func(name string) []telescope.Record {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		recs, err := telescope.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	in := read("in.potm")
	tovm := read("tovm.potm")
	out := read("out.potm")
	if len(in) != 1 || len(tovm) != 1 || len(out) != 1 {
		t.Fatalf("capture counts in=%d tovm=%d out=%d", len(in), len(tovm), len(out))
	}
	if in[0].Dst.String() != "10.5.1.2" || in[0].DstPort != 445 {
		t.Errorf("inbound capture: %+v", in[0])
	}
	// Egress capture is the SYN-ACK back to the scanner.
	if out[0].Src.String() != "10.5.1.2" || out[0].Dst.String() != "203.0.113.9" {
		t.Errorf("egress capture: %+v", out[0])
	}
	// Delivery happened ~0.5 s after arrival (the clone).
	if out[0].At <= in[0].At {
		t.Error("capture timestamps not ordered")
	}
}

func TestMultiStageDNSEndToEnd(t *testing.T) {
	hf := MustNew(Options{
		Guest:       GuestMultiStage,
		Policy:      InternalReflect,
		IdleTimeout: -1,
	})
	defer hf.Close()
	if err := hf.InjectExploit("203.0.113.9", "10.5.1.2"); err != nil {
		t.Fatal(err)
	}
	hf.RunFor(5 * time.Second)

	// The infected guest looked its payload host up via the built-in
	// safe resolver...
	if hf.Resolver().Queries == 0 {
		t.Error("safe resolver never consulted")
	}
	if hf.Stats().DNSProxied == 0 {
		t.Error("gateway did not proxy DNS")
	}
	// ...and the sinkholed stage-2 fetch landed on a fresh honeypot VM
	// inside the monitored space.
	if hf.LiveVMs() < 2 {
		t.Errorf("LiveVMs = %d, want >= 2 (victim + sinkhole target)", hf.LiveVMs())
	}
}

func TestShardedGatewayThroughFacade(t *testing.T) {
	hf := MustNew(Options{GatewayShards: 4, IdleTimeout: -1, Policy: ReflectSource})
	defer hf.Close()
	in := hf.Internals()
	if in.Gateway != nil || in.Sharded == nil || in.Sharded.Shards() != 4 {
		t.Fatalf("internals: %+v", in)
	}
	for i := 0; i < 12; i++ {
		hf.InjectProbe("203.0.113.9", "10.5.1."+strconv.Itoa(i+1), 445)
	}
	hf.RunFor(2 * time.Second)
	st := hf.Stats()
	if st.LiveVMs != 12 || st.BindingsCreated != 12 {
		t.Errorf("stats: %+v", st)
	}
	if st.OutboundToSource != 12 {
		t.Errorf("replies = %d", st.OutboundToSource)
	}
	if err := in.Sharded.CheckOwnership(); err != nil {
		t.Error(err)
	}
}

func TestSnapshotWarmupThroughFacade(t *testing.T) {
	hf := MustNew(Options{SnapshotWarmup: 30 * time.Second, IdleTimeout: -1})
	defer hf.Close()
	// Boot+warmup already elapsed.
	if hf.Now() < 30*time.Second {
		t.Errorf("Now = %v, want boot+warmup elapsed", hf.Now())
	}
	before := hf.Now()
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf.RunFor(2 * time.Second)
	if hf.LiveVMs() != 1 {
		t.Fatalf("LiveVMs = %d", hf.LiveVMs())
	}
	_ = before
	// Incompatible with FullBoot.
	if _, err := New(Options{SnapshotWarmup: time.Second, FullBoot: true}); err == nil {
		t.Error("SnapshotWarmup+FullBoot accepted")
	}
}

func TestFullBootBaselineThroughFacade(t *testing.T) {
	hf := MustNew(Options{FullBoot: true, Policy: ReflectSource})
	defer hf.Close()
	var gotReply bool
	hf2 := MustNew(Options{FullBoot: true, Policy: ReflectSource,
		OnEgress: func(string) { gotReply = true }})
	defer hf2.Close()
	hf2.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf2.RunFor(2 * time.Second)
	if gotReply {
		t.Error("full-boot VM replied within 2s; boot should take ~24s")
	}
	hf2.RunFor(60 * time.Second)
	if !gotReply {
		t.Error("full-boot VM never replied")
	}
	_ = hf
}
