package potemkin

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"potemkin/internal/telescope"
)

// TestValidateReportsAllProblems checks that Validate collects every
// configuration error in one pass, one per line, instead of failing on
// the first.
func TestValidateReportsAllProblems(t *testing.T) {
	bad := Options{
		Servers:        -3,
		MonitoredSpace: "garbage",
		SnapshotWarmup: time.Second,
		FullBoot:       true,
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted a broken configuration")
	}
	msg := err.Error()
	for _, want := range []string{
		"negative server count",
		"invalid MonitoredSpace",
		"SnapshotWarmup requires flash cloning",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
	if lines := strings.Split(msg, "\n"); len(lines) != 3 {
		t.Errorf("want 3 problem lines, got %d:\n%s", len(lines), msg)
	}
	for _, line := range strings.Split(msg, "\n") {
		if !strings.HasPrefix(line, "potemkin: ") {
			t.Errorf("line missing package prefix: %q", line)
		}
	}

	// New must route through Validate.
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "negative server count") {
		t.Errorf("New did not surface Validate errors: %v", err)
	}
	// The zero value (all defaults) must validate clean.
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options failed Validate: %v", err)
	}
}

// TestValidateParallelConstraints covers the Parallel-specific rules.
func TestValidateParallelConstraints(t *testing.T) {
	err := Options{Parallel: true}.Validate()
	if err == nil {
		t.Fatal("Parallel with one shard validated clean")
	}
	if !strings.Contains(err.Error(), "GatewayShards >= 2") {
		t.Errorf("error missing %q:\n%v", "GatewayShards >= 2", err)
	}
	// TraceChrome under Parallel is supported (buffered per shard).
	if err := (Options{Parallel: true, GatewayShards: 4, TraceChrome: &bytes.Buffer{}}).Validate(); err != nil {
		t.Errorf("Parallel+TraceChrome should validate: %v", err)
	}
	// The epoch timeline profiles the parallel engine only.
	if err := (Options{EpochLog: &bytes.Buffer{}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "EpochLog requires Parallel") {
		t.Errorf("EpochLog without Parallel should fail: %v", err)
	}
	if err := (Options{Parallel: true, GatewayShards: 8}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "at least one server per shard") {
		t.Errorf("8 shards over 4 default servers should fail: %v", err)
	}
	if err := (Options{Parallel: true, GatewayShards: 4}).Validate(); err != nil {
		t.Errorf("4 shards over 4 default servers should validate: %v", err)
	}
}

// TestHooksStruct checks the consolidated Hooks callbacks fire, and
// that they win over the deprecated per-field callbacks when both are
// set.
func TestHooksStruct(t *testing.T) {
	var viaHooks, viaLegacy []string
	var infected int
	hf := MustNew(Options{
		Policy: ReflectSource,
		Hooks: &Hooks{
			OnEgress:   func(p string) { viaHooks = append(viaHooks, p) },
			OnInfected: func(addr string, gen int) { infected++ },
		},
		OnEgress: func(p string) { viaLegacy = append(viaLegacy, p) },
	})
	defer hf.Close()
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf.InjectExploit("198.51.100.7", "10.5.2.3")
	hf.RunFor(2 * time.Second)
	if len(viaHooks) == 0 {
		t.Error("Hooks.OnEgress never fired")
	}
	if len(viaLegacy) != 0 {
		t.Errorf("deprecated OnEgress fired despite Hooks.OnEgress: %v", viaLegacy)
	}
	if infected == 0 {
		t.Error("Hooks.OnInfected never fired")
	}
}

// TestDeprecatedHookFieldsForwarded checks the legacy per-field
// callbacks still work when no Hooks struct is given.
func TestDeprecatedHookFieldsForwarded(t *testing.T) {
	var infected []string
	hf := MustNew(Options{
		OnInfected: func(addr string, gen int) { infected = append(infected, addr) },
	})
	defer hf.Close()
	hf.InjectExploit("198.51.100.7", "10.5.2.3")
	hf.RunFor(time.Second)
	if len(infected) != 1 || infected[0] != "10.5.2.3" {
		t.Errorf("legacy OnInfected saw %v", infected)
	}
}

// TestNewErrorClosesCaptures is the regression test for the capture
// leak: when New fails after openCapture already created the trace
// files, the files must be flushed and closed on the way out — a valid
// (empty) capture, not a zero-byte file with its header stuck in a
// buffer.
func TestNewErrorClosesCaptures(t *testing.T) {
	dir := t.TempDir()
	_, err := New(Options{
		CaptureDir:     dir,
		SnapshotWarmup: 500 * time.Millisecond,
		ServerMemory:   1 << 10, // far too small to boot the reference VM
	})
	if err == nil {
		t.Fatal("expected New to fail (reference boot cannot fit in 1 KiB)")
	}
	for _, name := range []string{"in.potm", "tovm.potm", "out.potm"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("capture %s missing: %v", name, err)
		}
		r, err := telescope.NewReader(f)
		if err != nil {
			t.Errorf("capture %s not flushed: %v", name, err)
		} else if err := r.Read(&telescope.Record{}); err == nil {
			t.Errorf("capture %s unexpectedly has records", name)
		}
		f.Close()
	}
}

// replayStats runs one honeyfarm over a fixed trace through the given
// entry point and returns (injected, final stats).
func replayStats(t *testing.T, run func(hf *Honeyfarm, recs []TraceRecord) int) (int, Stats) {
	t.Helper()
	hf := MustNew(Options{Seed: 5, IdleTimeout: time.Second})
	defer hf.Close()
	recs, err := hf.GenerateTrace(time.Second, 400)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	n := run(hf, recs)
	hf.RunFor(2 * time.Second)
	return n, hf.Stats()
}

// TestReplayMatchesLegacyEntryPoints is the facade-level equivalence
// test: Replay with each option combination injects the same count and
// reaches the same final Stats as the three deprecated entry points on
// the same seed and trace.
func TestReplayMatchesLegacyEntryPoints(t *testing.T) {
	refN, refStats := replayStats(t, func(hf *Honeyfarm, recs []TraceRecord) int {
		n, err := hf.Replay(SliceSource(recs))
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		return n
	})
	if refN == 0 || refStats.InboundPackets == 0 {
		t.Fatalf("vacuous reference run: n=%d stats=%v", refN, refStats)
	}

	cases := map[string]func(hf *Honeyfarm, recs []TraceRecord) int{
		"ReplayTrace": func(hf *Honeyfarm, recs []TraceRecord) int {
			return hf.ReplayTrace(recs)
		},
		"ReplayStream": func(hf *Honeyfarm, recs []TraceRecord) int {
			n, err := hf.ReplayStream(SliceSource(recs))
			if err != nil {
				t.Fatalf("ReplayStream: %v", err)
			}
			return n
		},
		"ReplayStreamHalt": func(hf *Honeyfarm, recs []TraceRecord) int {
			n, err := hf.ReplayStreamHalt(SliceSource(recs), func() bool { return false })
			if err != nil {
				t.Fatalf("ReplayStreamHalt: %v", err)
			}
			return n
		},
		"Replay+WithHalt": func(hf *Honeyfarm, recs []TraceRecord) int {
			n, err := hf.Replay(SliceSource(recs), WithHalt(func() bool { return false }))
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			return n
		},
		"Replay+WithEpilogue": func(hf *Honeyfarm, recs []TraceRecord) int {
			n, err := hf.Replay(SliceSource(recs), WithEpilogue(time.Millisecond))
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			return n
		},
	}
	for name, run := range cases {
		n, stats := replayStats(t, run)
		if n != refN {
			t.Errorf("%s injected %d, Replay injected %d", name, n, refN)
		}
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("%s stats diverge:\n%v\nvs Replay:\n%v", name, stats, refStats)
		}
	}
}

// TestReplayHaltStopsEarly checks WithHalt actually cuts the replay
// short.
func TestReplayHaltStopsEarly(t *testing.T) {
	hf := MustNew(Options{Seed: 5})
	defer hf.Close()
	recs, err := hf.GenerateTrace(time.Second, 400)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	calls := 0
	n, err := hf.Replay(SliceSource(recs), WithHalt(func() bool {
		calls++
		return calls > 10
	}))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n == 0 || n >= len(recs) {
		t.Errorf("halt did not stop replay early: injected %d of %d", n, len(recs))
	}
}

// parallelFacadeRun drives the same workload through a Parallel
// honeyfarm and returns the stats, snapshot JSON, and event-log bytes.
// When sequentialOracle is set the shard engine runs its epochs
// single-threaded — the byte-identity oracle.
func parallelFacadeRun(t *testing.T, sequentialOracle bool) (Stats, []byte, []byte) {
	t.Helper()
	var ev bytes.Buffer
	hf := MustNew(Options{
		Seed:          9,
		Parallel:      true,
		GatewayShards: 4,
		Policy:        InternalReflect,
		Guest:         GuestMultiStage,
		IdleTimeout:   time.Second,
		EventLog:      &ev,
	})
	if sequentialOracle {
		hf.Internals().Engine.SetSequential(true)
	}
	// One exploit is enough: the multi-stage infection resolves its
	// rendezvous name and fetches a second stage, so the safe-resolver
	// answer and the reflected fetch both cross the epoch barrier. A
	// longer run would cascade reflections exponentially and swamp CI.
	if err := hf.InjectExploit("198.51.100.10", "10.5.7.20"); err != nil {
		t.Fatalf("InjectExploit: %v", err)
	}
	recs, err := hf.GenerateTrace(500*time.Millisecond, 100)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	if _, err := hf.Replay(SliceSource(recs)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	hf.RunFor(1500 * time.Millisecond)
	stats := hf.Stats()
	snap, err := hf.MarshalSnapshot()
	if err != nil {
		t.Fatalf("MarshalSnapshot: %v", err)
	}
	hf.Close()
	return stats, snap, ev.Bytes()
}

// TestParallelFacade checks the Options.Parallel path end to end: the
// parallel run matches the single-threaded oracle byte for byte, and
// the workload is not vacuous.
func TestParallelFacade(t *testing.T) {
	seqStats, seqSnap, seqEv := parallelFacadeRun(t, true)
	parStats, parSnap, parEv := parallelFacadeRun(t, false)
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Errorf("stats diverge:\nseq: %v\npar: %v", seqStats, parStats)
	}
	if !bytes.Equal(seqSnap, parSnap) {
		t.Errorf("snapshots diverge:\nseq: %s\npar: %s", seqSnap, parSnap)
	}
	if !bytes.Equal(seqEv, parEv) {
		t.Errorf("event logs diverge (seq %d bytes, par %d bytes)", len(seqEv), len(parEv))
	}
	if parStats.InfectedVMs == 0 && parStats.DetectedInfected == 0 && parStats.BindingsCreated == 0 {
		t.Errorf("vacuous parallel run: %v", parStats)
	}
	if parStats.DNSProxied == 0 {
		t.Errorf("multi-stage guests never used the safe resolver: %v", parStats)
	}
}

// TestParallelInternals checks the Internals surface in Parallel mode:
// Engine set, sequential handles nil, and WireBridge — which panicked
// here before live parallel ingest landed — returns a usable bridge
// routed through the engine's epoch-feeding replay path.
func TestParallelInternals(t *testing.T) {
	hf := MustNew(Options{Parallel: true, GatewayShards: 2, Servers: 2})
	defer hf.Close()
	in := hf.Internals()
	if in.Engine == nil {
		t.Fatal("Internals.Engine nil in Parallel mode")
	}
	if in.Kernel != nil || in.Farm != nil || in.Gateway != nil || in.Sharded != nil {
		t.Error("sequential internals should be nil in Parallel mode")
	}
	if hf.Resolver() == nil {
		t.Error("Resolver() nil in Parallel mode")
	}
	br := hf.WireBridge(1)
	if br == nil {
		t.Fatal("WireBridge returned nil in Parallel mode")
	}
	if br.PumpFn == nil {
		t.Error("Parallel-mode WireBridge should delegate Pump to the engine replay path")
	}
	if br.K != nil {
		t.Error("Parallel-mode WireBridge must not hold a single kernel")
	}
}
