package potemkin

// Benchmark harness: one bench (or bench family) per paper artifact
// E1–E8, plus ablation benches for the design choices DESIGN.md calls
// out. The E4 family measures real wall-clock per-packet cost of the
// gateway fast path on real wire bytes; the others wrap the experiment
// scenarios so `go test -bench` regenerates each artifact's workload at
// reduced scale and reports the simulation cost of running it.
//
// Full-size experiment outputs come from `go run ./cmd/benchtab`.

import (
	"sync/atomic"
	"testing"
	"time"

	"potemkin/internal/core"
	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/gre"
	"potemkin/internal/guest"
	"potemkin/internal/ingest"
	"potemkin/internal/mem"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
	"potemkin/internal/vmm"
)

// --- E1: flash-clone latency breakdown ---

func BenchmarkE1FlashClone(b *testing.B) {
	k := sim.NewKernel(1)
	cfg := vmm.DefaultHostConfig("bench")
	cfg.MemoryBytes = 1 << 42
	h := vmm.NewHost(k, cfg)
	img := farm.DefaultImage()
	h.RegisterImage(img.Name, img.NumPages, img.ResidentPages, img.DiskBlocks, img.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := h.FlashClone(img.Name, netsim.Addr(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		h.Destroy(vm.ID)
	}
}

func BenchmarkE1FullBootBaseline(b *testing.B) {
	k := sim.NewKernel(1)
	cfg := vmm.DefaultHostConfig("bench")
	cfg.MemoryBytes = 1 << 42
	h := vmm.NewHost(k, cfg)
	img := farm.DefaultImage()
	h.RegisterImage(img.Name, img.NumPages, img.ResidentPages, img.DiskBlocks, img.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := h.FullBoot(img.Name, netsim.Addr(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		h.Destroy(vm.ID)
	}
}

// --- E2: delta virtualization ---

// BenchmarkE2DeltaVirt measures clone + guest-dirty workload cost under
// CoW sharing.
func BenchmarkE2DeltaVirt(b *testing.B) {
	benchE2(b, false)
}

// BenchmarkE2FullCopyBaseline is the same workload with full-copy VMs.
func BenchmarkE2FullCopyBaseline(b *testing.B) {
	benchE2(b, true)
}

func benchE2(b *testing.B, fullCopy bool) {
	k := sim.NewKernel(1)
	cfg := vmm.DefaultHostConfig("bench")
	cfg.MemoryBytes = 1 << 42
	h := vmm.NewHost(k, cfg)
	img := farm.DefaultImage()
	h.RegisterImage(img.Name, img.NumPages, img.ResidentPages, img.DiskBlocks, img.Seed)
	r := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var vm *vmm.VM
		var err error
		if fullCopy {
			vm, err = h.FullBoot(img.Name, netsim.Addr(i+1), nil)
		} else {
			vm, err = h.FlashClone(img.Name, netsim.Addr(i+1), nil)
		}
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			vm.WriteMemory(uint64(r.Intn(int(img.ResidentPages))), r.Intn(4088), []byte{byte(j)})
		}
		h.Destroy(vm.ID)
	}
	b.ReportMetric(float64(h.Store().Stats().CowCopies)/float64(b.N), "cow-copies/vm")
}

// --- E3/E7: telescope multiplexing and churn ---

func BenchmarkE3Multiplexing(b *testing.B) {
	cfg := telescope.DefaultGenConfig()
	cfg.Duration = 30 * time.Second
	cfg.Rate = 100
	trace, err := telescope.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE3(uint64(i+1), trace, cfg.Space, []time.Duration{2 * time.Second})
	}
	b.ReportMetric(float64(len(trace)), "trace-pkts/op")
}

func BenchmarkE7Churn(b *testing.B) {
	cfg := telescope.DefaultGenConfig()
	cfg.Duration = 30 * time.Second
	cfg.Rate = 100
	trace, err := telescope.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE7(uint64(i+1), trace, cfg.Space, []time.Duration{2 * time.Second}, 2.0)
	}
}

// --- E4: gateway fast path (real bytes, real time) ---

func BenchmarkE4GatewayWarmPath(b *testing.B) {
	w := core.NewE4Workload(1, 4096, 65536, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

func BenchmarkE4GatewayMixed(b *testing.B) {
	w := core.NewE4Workload(1, 4096, 65536, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

// BenchmarkE4GatewayShardedParallel models the paper's gateway scaling
// story: the monitored space partitions cleanly across gateway
// instances (bindings never span shards), so throughput scales with
// cores. Each parallel worker drives its own gateway shard.
func BenchmarkE4GatewayShardedParallel(b *testing.B) {
	var shardSeq atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		w := core.NewE4Workload(shardSeq.Add(1), 1024, 16384, 1.0)
		for pb.Next() {
			w.Step()
		}
	})
}

func BenchmarkE4GREDecap(b *testing.B) {
	inner := netsim.TCPSyn(1, 2, 3, 445, 5).Marshal()
	frame := gre.Encap(&gre.Header{HasKey: true, HasSequence: true, Key: 9}, inner)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gre.Decap(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4WireParse(b *testing.B) {
	pkt := netsim.TCPSyn(1, 2, 3, 445, 5)
	pkt.Payload = []byte("probe payload bytes")
	buf := pkt.Marshal()
	b.SetBytes(int64(len(buf)))
	var p netsim.Packet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4WireMarshal(b *testing.B) {
	pkt := netsim.TCPSyn(1, 2, 3, 445, 5)
	pkt.Payload = []byte("probe payload bytes")
	buf := make([]byte, pkt.WireLen())
	b.SetBytes(int64(pkt.WireLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.MarshalInto(buf)
	}
}

// --- E5: containment ---

func BenchmarkE5Containment(b *testing.B) {
	arms := []core.E5Arm{
		{Name: "drop-all", Policy: gateway.PolicyDropAll},
		{Name: "internal-reflect", Policy: gateway.PolicyInternalReflect},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE5(uint64(i+1), arms, 30*time.Second)
	}
}

// --- E6: detection time ---

func BenchmarkE6Detection(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE6(uint64(i+1), []int{8, 16}, []float64{100}, 1)
	}
}

// --- E8: internal reflection ---

func BenchmarkE8Reflection(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE8(uint64(i+1), 10*time.Second)
	}
}

// --- E9: gateway load-latency (extension) ---

func BenchmarkE9LoadLatency(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE9(uint64(i+1), 100*time.Microsecond, []float64{0.5, 1.1}, 2*time.Second)
	}
}

// --- E10: honeyfarm-enabled response (extension) ---

func BenchmarkE10Response(b *testing.B) {
	arms := []core.E10Arm{
		{Name: "control"},
		{Name: "/8-fast", TelescopeBits: 8, ReactionDelay: time.Minute},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunE10(uint64(i+1), arms, 30*time.Minute, 0.005)
	}
}

// --- Ablations (DESIGN.md "design choices worth ablating") ---

// Content-hash sharing on the private-page allocation path: what the
// extra hashing costs and what it saves when guests write similar
// content.
func BenchmarkAblationAllocNoShare(b *testing.B) {
	benchAlloc(b, false)
}

func BenchmarkAblationAllocContentShare(b *testing.B) {
	benchAlloc(b, true)
}

func benchAlloc(b *testing.B, share bool) {
	s := mem.NewStore()
	s.ShareContent = share
	page := make([]byte, mem.PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	var ids []mem.FrameID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page[0] = byte(i % 16) // 16 distinct contents: dedup hits 15/16
		ids = append(ids, s.AllocData(page))
		if len(ids) == 1024 {
			b.StopTimer()
			for _, id := range ids {
				s.DecRef(id)
			}
			ids = ids[:0]
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(s.Stats().DedupHits)/float64(b.N), "dedup-hit-rate")
}

// Binding recycle policy: one scrub pass over a 10k-binding table where
// nothing expires (the steady-state cost the recycling timer pays).
func BenchmarkAblationScrub(b *testing.B) {
	k := sim.NewKernel(1)
	backend := &instantBackend{k: k}
	cfg := gateway.DefaultConfig()
	cfg.IdleTimeout = time.Hour
	g := gateway.New(k, cfg, backend)
	for i := 0; i < 10000; i++ {
		g.HandleInbound(k.Now(), netsim.TCPSyn(netsim.Addr(i+1), cfg.Space.Nth(uint64(i)), 1, 445, 1))
	}
	// RunFor, not Run: the scrubber ticker re-arms forever.
	k.RunFor(time.Second)
	now := k.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Scrub(now)
	}
	b.StopTimer()
	if g.NumBindings() != 10000 {
		b.Fatalf("scrub recycled %d bindings", 10000-g.NumBindings())
	}
	g.Close()
}

type instantBackend struct{ k *sim.Kernel }

type inertVM struct{}

func (inertVM) Deliver(sim.Time, *netsim.Packet) {}
func (inertVM) Destroy(sim.Time)                 {}

func (ib *instantBackend) RequestVM(_ sim.Time, _ netsim.Addr, _ gateway.SpawnHint, ready func(gateway.VMRef, error)) {
	ib.k.After(0, func(sim.Time) { ready(inertVM{}, nil) })
}

// Guest fidelity path: full packet handling through a live guest.
func BenchmarkGuestHandlePacket(b *testing.B) {
	k := sim.NewKernel(1)
	h := vmm.NewHost(k, vmm.DefaultHostConfig("bench"))
	h.RegisterImage("winxp", 8192, 1024, 128, 11)
	vm, err := h.FlashClone("winxp", 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	k.Run()
	in := guest.New(k, vm, guest.WindowsXP(), func(*netsim.Packet) {}, nil, guest.Hooks{})
	probe := netsim.TCPSyn(2, 1, 1000, 445, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.HandlePacket(k.Now(), probe)
	}
}

// End-to-end facade: probe -> clone -> reply, the library's hot loop.
func BenchmarkFacadeProbeLifecycle(b *testing.B) {
	hf := MustNew(Options{Seed: 1, IdleTimeout: -1, Servers: 64})
	defer hf.Close()
	space := netsim.MustParsePrefix("10.5.0.0/16")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := space.Nth(uint64(i) % space.Size())
		hf.InjectProbe("203.0.113.9", dst.String(), 445)
		hf.RunFor(600 * time.Millisecond)
	}
}

// --- E11: closed-loop wire ingest ---

// BenchmarkE11WireIngest measures the full wire path end to end: a
// sender GRE-encapsulates SYN probes over a real loopback UDP socket,
// the listener decapsulates them, and the bridge drives them through
// the whole honeyfarm simulation (clone, deliver, reply). ns/op is the
// end-to-end per-packet cost; the sender is flow-controlled so the
// number excludes drops (lossless transport, like the determinism
// test).
func BenchmarkE11WireIngest(b *testing.B) {
	hf := MustNew(Options{Seed: 1, Servers: 64})
	defer hf.Close()
	l, err := ingest.Listen(ingest.Config{Addr: "127.0.0.1:0", Timestamped: true})
	if err != nil {
		b.Fatal(err)
	}
	bridge := hf.WireBridge(1)
	s, err := ingest.DialWire(l.Addr().String(), 1, true)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	space := netsim.MustParsePrefix("10.5.0.0/16")

	b.ResetTimer()
	go func() {
		var pkt netsim.Packet
		for i := 0; i < b.N; i++ {
			pkt = netsim.Packet{
				Src:   netsim.Addr(0x01000001 + uint32(i)%8192),
				Dst:   space.Nth(uint64(i) % 1024),
				Proto: netsim.ProtoTCP, TTL: 116,
				SrcPort: uint16(1024 + i%60000), DstPort: 445,
				Flags: netsim.FlagSYN, Window: 65535,
			}
			// 10 us virtual spacing: a 100k pps feed.
			if err := s.SendPacket(sim.Time(i)*10000, &pkt); err != nil {
				b.Error(err)
				break
			}
			for s.Sent-l.Stats().Enqueued > 1024 {
				time.Sleep(20 * time.Microsecond)
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for l.Stats().Received < s.Sent && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		l.Close()
	}()
	bridge.Pump(l, 0)
	b.StopTimer()
	st := l.Stats()
	if st.Dropped != 0 || bridge.Delivered != uint64(b.N) {
		b.Fatalf("lossy run: delivered %d of %d, stats %+v", bridge.Delivered, b.N, st)
	}
}

// --- E12: parallel shard engine speedup ---

// benchShardReplay replays an E11-style telescope feed through the
// 4-shard engine, with the epochs either threaded (one goroutine per
// shard) or single-threaded (the determinism oracle). The two modes do
// identical simulation work — the parallel/sequential ns/op ratio is
// the multicore speedup. On a 1-core machine the ratio degrades to
// barrier overhead; 4+ cores are needed for the ≥2x the paper-scale
// replay shows. Farm construction and teardown are excluded from the
// timed region: the benchmark measures replay, and the threaded mode's
// per-run worker-goroutine setup would otherwise skew the allocs/op
// comparison the alloc gate depends on.
func benchShardReplay(b *testing.B, threaded bool) {
	gcfg := telescope.DefaultGenConfig()
	gcfg.Space = netsim.MustParsePrefix("10.5.0.0/16")
	gcfg.Duration = 2 * time.Second
	gcfg.Rate = 1000
	gcfg.Seed = 1
	recs, err := telescope.Generate(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		hf := MustNew(Options{
			Seed:          1,
			Parallel:      true,
			GatewayShards: 4,
			Policy:        InternalReflect,
			IdleTimeout:   time.Second,
		})
		if !threaded {
			hf.Internals().Engine.SetSequential(true)
		}
		b.StartTimer()
		if _, err := hf.Replay(SliceSource(recs)); err != nil {
			b.Fatal(err)
		}
		hf.RunFor(time.Second)
		b.StopTimer()
		hf.Close()
		b.StartTimer()
	}
}

func BenchmarkShardReplaySequential(b *testing.B) { benchShardReplay(b, false) }
func BenchmarkShardReplayParallel(b *testing.B)   { benchShardReplay(b, true) }
