package potemkin

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"potemkin/internal/trace"
)

func TestSnapshotReflectsActivity(t *testing.T) {
	hf := MustNew(Options{Seed: 3})
	defer hf.Close()
	for i := 0; i < 5; i++ {
		if err := hf.InjectProbe("203.0.113.9", "10.5.1.2", 445); err != nil {
			t.Fatal(err)
		}
	}
	hf.RunFor(2 * time.Second)

	s := hf.Snapshot()
	if s.TSeconds != 2 {
		t.Errorf("TSeconds = %v", s.TSeconds)
	}
	if s.BindingsCreated != 1 || s.BindingsLive != 1 || s.LiveVMs != 1 {
		t.Errorf("bindings/vms: %+v", s)
	}
	if s.CloneMs.Count != 1 || s.CloneMs.P50 <= 0 {
		t.Errorf("clone summary: %+v", s.CloneMs)
	}
	if s.StagesMs != nil {
		t.Error("stages present with tracing off")
	}

	// The snapshot must be a self-contained JSON object.
	b, err := hf.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.BindingsCreated != s.BindingsCreated || back.CloneMs != s.CloneMs {
		t.Errorf("snapshot round-trip mangled: %+v vs %+v", back, s)
	}
}

func TestFacadeTraceExport(t *testing.T) {
	var jsonl, chrome bytes.Buffer
	hf := MustNew(Options{Seed: 3, TraceOut: &jsonl, TraceChrome: &chrome})
	if err := hf.InjectProbe("203.0.113.9", "10.5.1.2", 445); err != nil {
		t.Fatal(err)
	}
	hf.RunFor(2 * time.Second)

	s := hf.Snapshot()
	if s.StagesMs == nil {
		t.Fatal("no stage summaries with tracing on")
	}
	if cl, ok := s.StagesMs["clone"]; !ok || cl.Count != 1 {
		t.Fatalf("clone stage missing: %+v", s.StagesMs)
	}
	hf.Close()

	recs, err := trace.ReadAll(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, r := range recs {
		names[r.Name]++
	}
	for _, want := range []string{"binding", "spawn", "place", "clone", "active"} {
		if names[want] == 0 {
			t.Errorf("no %q span in facade trace (got %v)", want, names)
		}
	}

	// The Chrome export must be a closed, valid JSON array.
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace empty")
	}
}

// Same seed, same workload → byte-identical facade trace.
func TestFacadeTraceDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		hf := MustNew(Options{Seed: 11, TraceOut: &buf})
		recs, err := hf.GenerateTrace(3*time.Second, 50)
		if err != nil {
			t.Fatal(err)
		}
		hf.ReplayTrace(recs)
		hf.RunFor(time.Second)
		hf.Close()
		return buf.String()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty trace")
	}
	if a != b {
		al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("traces diverge at line %d:\n%s\n---\n%s", i+1, al[i], bl[i])
			}
		}
		t.Fatal("traces differ in length")
	}
}
