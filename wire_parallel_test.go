package potemkin

// The tentpole proof for live parallel ingest: a honeyfarm serving real
// UDP wire traffic under Options.Parallel writes a capture pcap whose
// replay — on the single-threaded oracle or on parallel epochs, at any
// adaptive-epoch setting — reproduces the live run's merged output byte
// for byte. Determinism of a live run is a *replayable* property: the
// wire source quantizes arrivals onto a monotone virtual stream, the
// epoch feeder schedules them exactly as an offline replay would, and
// the capture records the post-clamp times, so capture + seed is a
// complete re-simulation recipe. Run under -race in CI (the live half
// exercises listener goroutines against parallel shard epochs).

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"potemkin/internal/guest"
	"potemkin/internal/ingest"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

const wireSeed = 77

// wireTestTrace synthesizes a short telescope feed with one real
// exploit record spliced in near the end (sorted position preserved),
// so the live run compromises a VM and the equality checks cover
// infection state, not just binding bookkeeping. The exploit lands
// late on purpose: under InternalReflect an infection cascades
// reflections exponentially, so the window between compromise and
// trace end is kept to half a second to not swamp CI.
func wireTestTrace(t testing.TB) []telescope.Record {
	t.Helper()
	cfg := telescope.DefaultGenConfig()
	cfg.Duration = 4 * time.Second
	cfg.Rate = 250
	cfg.Seed = wireSeed
	recs, err := telescope.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := guest.WindowsXP()
	payload := prof.ExploitPayload(0)
	if payload == nil {
		t.Fatal("winxp profile has no exploit payload")
	}
	ex := telescope.Record{
		At:      sim.Time(3500 * time.Millisecond),
		Src:     netsim.MustParseAddr("198.51.100.77"),
		Dst:     netsim.MustParseAddr("10.5.7.20"),
		Proto:   netsim.ProtoTCP,
		SrcPort: 40000,
		DstPort: prof.ScanDstPort,
		Flags:   netsim.FlagSYN | netsim.FlagPSH,
		PayLen:  uint16(len(payload)),
		Payload: payload,
	}
	i := sort.Search(len(recs), func(i int) bool { return recs[i].At > ex.At })
	recs = append(recs, telescope.Record{})
	copy(recs[i+1:], recs[i:])
	recs[i] = ex
	return recs
}

// wireOpts builds the shared honeyfarm configuration: every run —
// live or replay — must be identically configured for byte equality.
func wireOpts(adaptive int, ev *bytes.Buffer) Options {
	return Options{
		Seed:           wireSeed,
		Parallel:       true,
		GatewayShards:  4,
		Servers:        4,
		AdaptiveEpochs: adaptive,
		Policy:         InternalReflect,
		IdleTimeout:    time.Second,
		EventLog:       ev,
	}
}

// liveWireRun serves recs over a real loopback UDP socket into a
// parallel honeyfarm via Options.Wire, capturing the feed to pcapPath.
// Returns the final stats and event-log bytes.
func liveWireRun(t *testing.T, recs []telescope.Record, listenShards, adaptive int, pcapPath string) (Stats, []byte) {
	t.Helper()
	var ev bytes.Buffer
	opts := wireOpts(adaptive, &ev)
	opts.Wire = &WireOptions{
		Addr:    "127.0.0.1:0",
		Shards:  listenShards,
		Capture: pcapPath,
	}
	hf := MustNew(opts)
	defer hf.Close()
	srv, err := hf.StartWire()
	if err != nil {
		t.Fatalf("StartWire: %v", err)
	}
	type serveResult struct {
		ws  WireStats
		err error
	}
	done := make(chan serveResult, 1)
	go func() {
		ws, err := srv.Serve()
		done <- serveResult{ws, err}
	}()

	s, err := ingest.DialWire(srv.Addr().String(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sent, _, err := ingest.Replay(s, &telescope.SliceSource{Recs: recs}, ingest.ReplayOptions{
		MaxRate: true,
		// Keep at most 1024 datagrams in flight ahead of the decap
		// workers so the bounded queues never overflow — byte equality
		// is only claimed for lossless transport.
		FlowControl: func(n uint64) {
			for n-srv.Stats().Ingest.Enqueued > 1024 {
				time.Sleep(50 * time.Microsecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntilWire(t, func() bool { return srv.Stats().Ingest.Received == sent })
	srv.Stop()
	var res serveResult
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not finish")
	}
	if res.err != nil {
		t.Fatalf("Serve: %v", res.err)
	}
	ig := res.ws.Ingest
	if ig.Dropped != 0 || ig.FrameErrors != 0 {
		t.Fatalf("transport was lossy, replayability void: %+v", ig)
	}
	// Sequence-gap accounting is per decap shard, so one sender's
	// stream split across several shards reports gaps by construction;
	// only the single-shard feed can assert none.
	if listenShards == 1 && ig.SeqGaps != 0 {
		t.Fatalf("unexpected sequence gaps on a 1-shard feed: %+v", ig)
	}
	if ig.Delivered != sent {
		t.Fatalf("delivered %d of %d", ig.Delivered, sent)
	}
	if res.ws.Injected != int(sent) {
		t.Fatalf("injected %d of %d", res.ws.Injected, sent)
	}
	stats := hf.Stats()
	hf.Close()
	return stats, ev.Bytes()
}

// replayWireRun replays a live run's capture pcap on an identically
// configured honeyfarm. oracle switches the engine to single-threaded
// epochs — the strongest equality claim: live parallel wire traffic
// reproduced by a sequential offline re-simulation.
func replayWireRun(t *testing.T, pcapPath string, adaptive int, oracle bool) (Stats, []byte) {
	t.Helper()
	var ev bytes.Buffer
	hf := MustNew(wireOpts(adaptive, &ev))
	defer hf.Close()
	if oracle {
		hf.Internals().Engine.SetSequential(true)
	}
	f, err := os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, err := ingest.NewPcapSource(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.Replay(src); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if src.Skipped != 0 {
		t.Fatalf("capture pcap had %d unparseable frames", src.Skipped)
	}
	stats := hf.Stats()
	hf.Close()
	return stats, ev.Bytes()
}

func waitUntilWire(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireParallelLiveReplay is the acceptance test for live parallel
// ingest: a -parallel honeyfarm serves real loopback wire traffic, and
// its capture pcap replays byte-identically on both the sequential
// oracle and the parallel engine.
func TestWireParallelLiveReplay(t *testing.T) {
	recs := wireTestTrace(t)
	pcap := filepath.Join(t.TempDir(), "live.pcap")
	liveStats, liveEv := liveWireRun(t, recs, 1, 0, pcap)

	if liveStats.InfectedVMs == 0 && liveStats.DetectedInfected == 0 {
		t.Errorf("vacuous live run, exploit never landed: %+v", liveStats)
	}
	if liveStats.DeliveredToVM == 0 || liveStats.BindingsCreated == 0 {
		t.Errorf("vacuous live run: %+v", liveStats)
	}

	oracleStats, oracleEv := replayWireRun(t, pcap, 0, true)
	if !reflect.DeepEqual(liveStats, oracleStats) {
		t.Errorf("live diverges from sequential-oracle replay:\nlive:   %+v\noracle: %+v", liveStats, oracleStats)
	}
	if !bytes.Equal(liveEv, oracleEv) {
		t.Errorf("event logs diverge from oracle replay (live %d bytes, oracle %d bytes)", len(liveEv), len(oracleEv))
	}

	parStats, parEv := replayWireRun(t, pcap, 0, false)
	if !reflect.DeepEqual(liveStats, parStats) {
		t.Errorf("live diverges from parallel replay:\nlive: %+v\npar:  %+v", liveStats, parStats)
	}
	if !bytes.Equal(liveEv, parEv) {
		t.Errorf("event logs diverge from parallel replay (live %d bytes, par %d bytes)", len(liveEv), len(parEv))
	}
}

// TestWireParallelAdaptiveSnapback replays a live capture at the two
// adaptive-epoch extremes — the pinned 1 ms grid and full 64-cell
// widening. The capture is sorted by construction (the wire source is
// monotone), so the grid-independence property of sorted replay sources
// extends to live wire runs: widened epochs snap back exactly where
// live arrivals landed.
func TestWireParallelAdaptiveSnapback(t *testing.T) {
	recs := wireTestTrace(t)
	pcap := filepath.Join(t.TempDir(), "live.pcap")
	liveStats, liveEv := liveWireRun(t, recs, 1, 0, pcap)

	for _, adaptive := range []int{1, 64} {
		stats, ev := replayWireRun(t, pcap, adaptive, false)
		if !reflect.DeepEqual(liveStats, stats) {
			t.Errorf("AdaptiveEpochs=%d replay diverges from live run:\nlive:   %+v\nreplay: %+v", adaptive, liveStats, stats)
		}
		if !bytes.Equal(liveEv, ev) {
			t.Errorf("AdaptiveEpochs=%d event log diverges (live %d bytes, replay %d bytes)", adaptive, len(liveEv), len(ev))
		}
	}
}

// TestWireParallelMultiShardListener runs the live feed through two
// decap shards. Cross-shard arrival interleaving makes the live record
// order scheduling-dependent, so the run is compared against its *own*
// capture (the replayability contract), not a fixed reference.
func TestWireParallelMultiShardListener(t *testing.T) {
	recs := wireTestTrace(t)
	pcap := filepath.Join(t.TempDir(), "live.pcap")
	liveStats, liveEv := liveWireRun(t, recs, 2, 0, pcap)

	oracleStats, oracleEv := replayWireRun(t, pcap, 0, true)
	if !reflect.DeepEqual(liveStats, oracleStats) {
		t.Errorf("2-shard live run diverges from its own capture's oracle replay:\nlive:   %+v\noracle: %+v", liveStats, oracleStats)
	}
	if !bytes.Equal(liveEv, oracleEv) {
		t.Errorf("2-shard event logs diverge (live %d bytes, oracle %d bytes)", len(liveEv), len(oracleEv))
	}
}

// TestWireSequentialOptionsAPI covers the unified API on the sequential
// engine: Options.Wire + StartWire/Serve replaces the WireBridge pump
// loop with identical semantics.
func TestWireSequentialOptionsAPI(t *testing.T) {
	recs := wireTestTrace(t)

	// Reference: plain in-process replay on an identically-seeded farm.
	ref := MustNew(Options{Seed: wireSeed, Policy: InternalReflect, IdleTimeout: time.Second})
	if _, err := ref.Replay(SliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	refStats := ref.Stats()
	ref.Close()

	opts := Options{
		Seed:        wireSeed,
		Policy:      InternalReflect,
		IdleTimeout: time.Second,
		Wire:        &WireOptions{Addr: "127.0.0.1:0"},
	}
	hf := MustNew(opts)
	defer hf.Close()
	srv, err := hf.StartWire()
	if err != nil {
		t.Fatalf("StartWire: %v", err)
	}
	done := make(chan WireStats, 1)
	go func() {
		ws, err := srv.Serve()
		if err != nil {
			t.Errorf("Serve: %v", err)
		}
		done <- ws
	}()
	s, err := ingest.DialWire(srv.Addr().String(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sent, _, err := ingest.Replay(s, &telescope.SliceSource{Recs: recs}, ingest.ReplayOptions{
		MaxRate: true,
		FlowControl: func(n uint64) {
			for n-srv.Stats().Ingest.Enqueued > 1024 {
				time.Sleep(50 * time.Microsecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntilWire(t, func() bool { return srv.Stats().Ingest.Received == sent })
	srv.Stop()
	var ws WireStats
	select {
	case ws = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not finish")
	}
	if ws.Ingest.Dropped != 0 || ws.Ingest.FrameErrors != 0 || ws.Ingest.SeqGaps != 0 {
		t.Fatalf("transport was lossy: %+v", ws.Ingest)
	}
	if got := hf.Stats(); !reflect.DeepEqual(refStats, got) {
		t.Errorf("sequential wire serve diverges from in-process replay:\nref:  %+v\nwire: %+v", refStats, got)
	}
}
