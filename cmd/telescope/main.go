// Command telescope generates, inspects, converts, and replays
// network-telescope traces. It speaks the repository's binary trace
// format (.potm) and classic pcap savefiles, so captures can round-trip
// between the simulation and the tools every network operator already
// runs (tcpdump, Wireshark, tcpreplay).
//
// Usage:
//
//	telescope gen    [-out FILE] [-space CIDR] [-duration D] [-rate PPS] [-seed N]
//	telescope info   [-in FILE]                (format auto-detected)
//	telescope dump   [-in FILE] [-n N]         (human-readable records)
//	telescope csv    [-in FILE]                (CSV to stdout)
//	telescope import [-in FILE.pcap] [-out FILE.potm]
//	telescope export [-in FILE.potm] [-out FILE.pcap]
//	telescope replay [-in FILE] -to ADDR [-speedup F | -maxrate] [-key N] [-plain-gre]
//
// All subcommands stream record-at-a-time: multi-GB traces are
// processed in bounded memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"potemkin/internal/ingest"
	"potemkin/internal/netsim"
	"potemkin/internal/telescope"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "csv":
		cmdCSV(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: telescope {gen|info|dump|csv|import|export|replay} [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telescope: "+format+"\n", args...)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.potm", "output file")
	space := fs.String("space", "10.5.0.0/16", "monitored space")
	duration := fs.Duration("duration", 10*time.Minute, "trace duration")
	rate := fs.Float64("rate", 200, "aggregate packets/second")
	sweep := fs.Float64("sweep", 0.35, "fraction of packets in sweep sessions")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)

	prefix, err := netsim.ParsePrefix(*space)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := telescope.DefaultGenConfig()
	cfg.Space = prefix
	cfg.Duration = *duration
	cfg.Rate = *rate
	cfg.SweepFrac = *sweep
	cfg.Seed = *seed

	recs, err := telescope.Generate(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := telescope.WriteAll(f, recs); err != nil {
		fatalf("writing: %v", err)
	}
	st := telescope.Summarize(recs)
	fmt.Printf("wrote %s: %d packets, %d sources, %d destinations, %v, %.0f pps\n",
		*out, st.Packets, st.UniqueSources, st.UniqueDests,
		st.Duration.Truncate(time.Second), st.RatePPS)
}

// openSource opens a trace in either format, sniffing the magic number,
// and returns a streaming record source.
func openSource(path string) (telescope.Source, *os.File) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	if src, err := telescope.NewReader(f); err == nil {
		return src, f
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		fatalf("%v", err)
	}
	src, err := ingest.NewPcapSource(f)
	if err != nil {
		fatalf("%s: neither a .potm trace nor a pcap savefile", path)
	}
	return src, f
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "trace.potm", "input file (.potm or .pcap)")
	fs.Parse(args)
	src, f := openSource(*in)
	defer f.Close()

	var acc telescope.Summary
	byProto := map[netsim.Proto]int{}
	byPort := map[uint16]int{}
	var rec telescope.Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatalf("reading %s: %v", *in, err)
		}
		acc.Add(&rec)
		byProto[rec.Proto]++
		byPort[rec.DstPort]++
	}
	st := acc.Stats()
	fmt.Printf("packets:       %d\n", st.Packets)
	fmt.Printf("sources:       %d\n", st.UniqueSources)
	fmt.Printf("destinations:  %d\n", st.UniqueDests)
	fmt.Printf("duration:      %v\n", st.Duration.Truncate(time.Millisecond))
	fmt.Printf("rate:          %.1f pps\n", st.RatePPS)

	fmt.Printf("protocols:    ")
	for p, c := range byProto {
		fmt.Printf(" %s=%d", p, c)
	}
	fmt.Println()
	// Top 5 ports.
	fmt.Printf("top ports:    ")
	for i := 0; i < 5; i++ {
		best, bestC := uint16(0), 0
		for p, c := range byPort {
			if c > bestC {
				best, bestC = p, c
			}
		}
		if bestC == 0 {
			break
		}
		fmt.Printf(" %d=%d", best, bestC)
		delete(byPort, best)
	}
	fmt.Println()
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("in", "trace.potm", "input file (.potm or .pcap)")
	n := fs.Int("n", 20, "records to dump")
	fs.Parse(args)
	src, f := openSource(*in)
	defer f.Close()
	shown, more := 0, 0
	var rec telescope.Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatalf("%v", err)
		}
		if shown < *n {
			fmt.Printf("%-14v %s\n", time.Duration(rec.At).Truncate(time.Microsecond), rec.Packet())
			shown++
		} else {
			more++
		}
	}
	if more > 0 {
		fmt.Printf("... %d more\n", more)
	}
}

func cmdCSV(args []string) {
	fs := flag.NewFlagSet("csv", flag.ExitOnError)
	in := fs.String("in", "trace.potm", "input file (.potm or .pcap)")
	fs.Parse(args)
	src, f := openSource(*in)
	defer f.Close()
	fmt.Println("t_seconds,src,dst,proto,sport,dport,flags,paylen")
	var rec telescope.Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			return
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%.6f,%s,%s,%s,%d,%d,%s,%d\n",
			rec.At.Seconds(), rec.Src, rec.Dst, rec.Proto, rec.SrcPort, rec.DstPort,
			netsim.FlagString(rec.Flags), rec.PayLen)
	}
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	in := fs.String("in", "trace.pcap", "input pcap savefile")
	out := fs.String("out", "trace.potm", "output .potm trace")
	fs.Parse(args)
	inF, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer inF.Close()
	src, err := ingest.NewPcapSource(inF)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	outF, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer outF.Close()
	tw, err := telescope.NewWriter(outF)
	if err != nil {
		fatalf("%v", err)
	}
	var rec telescope.Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatalf("reading %s: %v", *in, err)
		}
		if err := tw.Write(&rec); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
	}
	if err := tw.Flush(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("imported %d packets from %s to %s (%d frames skipped)\n",
		tw.Count(), *in, *out, src.Skipped)
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "trace.potm", "input .potm trace (e.g. a gateway -capture file)")
	out := fs.String("out", "trace.pcap", "output pcap savefile")
	fs.Parse(args)
	inF, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer inF.Close()
	src, err := telescope.NewReader(inF)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	outF, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer outF.Close()
	n, err := ingest.WritePcap(outF, src)
	if err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("exported %d packets from %s to %s\n", n, *in, *out)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.potm", "input file (.potm or .pcap)")
	to := fs.String("to", fmt.Sprintf("127.0.0.1:%d", ingest.DefaultPort), "listener UDP address")
	speedup := fs.Float64("speedup", 1, "replay this many times faster than recorded")
	maxrate := fs.Bool("maxrate", false, "replay back to back, ignoring recorded timing")
	key := fs.Uint("key", 1, "GRE tunnel key")
	plain := fs.Bool("plain-gre", false, "send plain GRE framing (no virtual-timestamp prefix)")
	fs.Parse(args)
	src, f := openSource(*in)
	defer f.Close()
	s, err := ingest.DialWire(*to, uint32(*key), !*plain)
	if err != nil {
		fatalf("%v", err)
	}
	defer s.Close()
	start := time.Now()
	n, last, err := ingest.Replay(s, src, ingest.ReplayOptions{Speedup: *speedup, MaxRate: *maxrate})
	if err != nil {
		fatalf("replaying %s: %v", *in, err)
	}
	wall := time.Since(start)
	fmt.Printf("replayed %d packets (%s of trace time) to %s in %v (%.0f pps on the wire)\n",
		n, time.Duration(last).Truncate(time.Millisecond), *to, wall.Truncate(time.Millisecond),
		float64(n)/wall.Seconds())
}
