// Command telescope generates, inspects, and converts synthetic
// network-telescope traces in the repository's binary trace format.
//
// Usage:
//
//	telescope gen  [-out FILE] [-space CIDR] [-duration D] [-rate PPS] [-seed N]
//	telescope info [-in FILE]
//	telescope dump [-in FILE] [-n N]          (human-readable records)
//	telescope csv  [-in FILE]                 (CSV to stdout)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/telescope"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "csv":
		cmdCSV(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: telescope {gen|info|dump|csv} [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telescope: "+format+"\n", args...)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.potm", "output file")
	space := fs.String("space", "10.5.0.0/16", "monitored space")
	duration := fs.Duration("duration", 10*time.Minute, "trace duration")
	rate := fs.Float64("rate", 200, "aggregate packets/second")
	sweep := fs.Float64("sweep", 0.35, "fraction of packets in sweep sessions")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)

	prefix, err := netsim.ParsePrefix(*space)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := telescope.DefaultGenConfig()
	cfg.Space = prefix
	cfg.Duration = *duration
	cfg.Rate = *rate
	cfg.SweepFrac = *sweep
	cfg.Seed = *seed

	recs, err := telescope.Generate(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := telescope.WriteAll(f, recs); err != nil {
		fatalf("writing: %v", err)
	}
	st := telescope.Summarize(recs)
	fmt.Printf("wrote %s: %d packets, %d sources, %d destinations, %v, %.0f pps\n",
		*out, st.Packets, st.UniqueSources, st.UniqueDests,
		st.Duration.Truncate(time.Second), st.RatePPS)
}

func readTrace(fs *flag.FlagSet, args []string) []telescope.Record {
	in := fs.String("in", "trace.potm", "input file")
	n := fs.Int("n", 20, "records to dump (dump only)")
	fs.Parse(args)
	_ = n
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	recs, err := telescope.ReadAll(f)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	return recs
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	recs := readTrace(fs, args)
	st := telescope.Summarize(recs)
	fmt.Printf("packets:       %d\n", st.Packets)
	fmt.Printf("sources:       %d\n", st.UniqueSources)
	fmt.Printf("destinations:  %d\n", st.UniqueDests)
	fmt.Printf("duration:      %v\n", st.Duration.Truncate(time.Millisecond))
	fmt.Printf("rate:          %.1f pps\n", st.RatePPS)

	byProto := map[netsim.Proto]int{}
	byPort := map[uint16]int{}
	for i := range recs {
		byProto[recs[i].Proto]++
		byPort[recs[i].DstPort]++
	}
	fmt.Printf("protocols:    ")
	for p, c := range byProto {
		fmt.Printf(" %s=%d", p, c)
	}
	fmt.Println()
	// Top 5 ports.
	fmt.Printf("top ports:    ")
	for i := 0; i < 5; i++ {
		best, bestC := uint16(0), 0
		for p, c := range byPort {
			if c > bestC {
				best, bestC = p, c
			}
		}
		if bestC == 0 {
			break
		}
		fmt.Printf(" %d=%d", best, bestC)
		delete(byPort, best)
	}
	fmt.Println()
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("in", "trace.potm", "input file")
	n := fs.Int("n", 20, "records to dump")
	fs.Parse(args)
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	recs, err := telescope.ReadAll(f)
	if err != nil {
		fatalf("%v", err)
	}
	for i := 0; i < len(recs) && i < *n; i++ {
		r := &recs[i]
		fmt.Printf("%-14v %s\n", time.Duration(r.At).Truncate(time.Microsecond), r.Packet())
	}
	if len(recs) > *n {
		fmt.Printf("... %d more\n", len(recs)-*n)
	}
}

func cmdCSV(args []string) {
	fs := flag.NewFlagSet("csv", flag.ExitOnError)
	recs := readTrace(fs, args)
	fmt.Println("t_seconds,src,dst,proto,sport,dport,flags,paylen")
	for i := range recs {
		r := &recs[i]
		fmt.Printf("%.6f,%s,%s,%s,%d,%d,%s,%d\n",
			r.At.Seconds(), r.Src, r.Dst, r.Proto, r.SrcPort, r.DstPort,
			netsim.FlagString(r.Flags), r.PayLen)
	}
}
