// Command wormsim runs an Internet-scale worm outbreak against the
// honeyfarm and reports detection and containment outcomes — the
// interactive version of experiments E5/E6.
//
// Usage:
//
//	wormsim [flags]
//
//	-pop N           vulnerable population (default 1048576)
//	-scanrate R      scans/second per infected host (default 100)
//	-initial N       initially infected hosts (default 100)
//	-strategy NAME   uniform|local-pref|hitlist
//	-policy NAME     none|open|drop-all|reflect-source|internal-reflect
//	-space CIDR      telescope space (default 10.5.0.0/16)
//	-duration D      epidemic length (default 10m)
//	-seed N          simulation seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/worm"
)

func main() {
	var (
		pop      = flag.Int("pop", 1<<20, "vulnerable population")
		scanrate = flag.Float64("scanrate", 100, "scans/sec per infected host")
		initial  = flag.Int("initial", 100, "initially infected hosts")
		strategy = flag.String("strategy", "uniform", "scan strategy")
		policy   = flag.String("policy", "internal-reflect", "containment policy (none = no honeyfarm)")
		space    = flag.String("space", "10.5.0.0/16", "telescope space")
		duration = flag.Duration("duration", 10*time.Minute, "epidemic duration")
		scanCap  = flag.Float64("scancap", 0, "aggregate scans/sec cap (bandwidth-limited worm; 0 = none)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	prefix, err := netsim.ParsePrefix(*space)
	if err != nil {
		fatalf("%v", err)
	}

	k := sim.NewKernel(*seed)
	wcfg := worm.DefaultConfig()
	wcfg.Susceptible = *pop
	wcfg.InitialInfected = *initial
	wcfg.ScanRate = *scanrate
	wcfg.Telescope = prefix
	wcfg.Seed = *seed
	wcfg.AggregateScanCap = *scanCap
	wcfg.ExploitPayload = guest.WindowsXP().ExploitPayload(0)
	switch *strategy {
	case "uniform":
		wcfg.Strategy = worm.Uniform
	case "local-pref":
		wcfg.Strategy = worm.LocalPref
	case "hitlist":
		wcfg.Strategy = worm.Hitlist
	case "permutation":
		wcfg.Strategy = worm.Permutation
	default:
		fatalf("unknown strategy %q", *strategy)
	}

	e := worm.New(k, wcfg)

	var g *gateway.Gateway
	var f *farm.Farm
	var leaked uint64
	if *policy != "none" {
		var pol gateway.Policy
		switch *policy {
		case "open":
			pol = gateway.PolicyOpen
		case "drop-all":
			pol = gateway.PolicyDropAll
		case "reflect-source":
			pol = gateway.PolicyReflectSource
		case "internal-reflect":
			pol = gateway.PolicyInternalReflect
		default:
			fatalf("unknown policy %q", *policy)
		}
		fc := farm.DefaultConfig()
		fc.Servers = 8
		fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 256, Seed: 42}
		fc.OnInfected = func(now sim.Time, in *guest.Instance) {
			fmt.Printf("  t=%-8v honeyfarm captured infection at %s (generation %d)\n",
				time.Duration(now).Truncate(time.Millisecond), in.IP, in.Generation)
		}
		var err error
		f, err = farm.New(k, fc)
		if err != nil {
			fatalf("%v", err)
		}
		gc := gateway.DefaultConfig()
		gc.Space = prefix
		gc.Policy = pol
		gc.ReflectionLimit = 256
		gc.ExternalOut = func(_ sim.Time, pkt *netsim.Packet) {
			leaked++
			e.InjectLeak(pkt)
		}
		g = gateway.New(k, gc, f)
		f.SetGateway(g)
		e.Cfg.Deliver = func(now sim.Time, pkt *netsim.Packet) { g.HandleInbound(now, pkt) }
	}

	k.Every(time.Minute, func(now sim.Time) {
		line := fmt.Sprintf("t=%-6v infected=%-8d", time.Duration(now).Truncate(time.Second), e.Infected())
		if f != nil {
			line += fmt.Sprintf(" honeyfarm[vms=%d infected=%d leakedpkts=%d]",
				f.LiveVMs(), f.InfectedVMs(), leaked)
		}
		fmt.Println(line)
	})

	e.Start()
	k.RunUntil(sim.Start.Add(*duration))
	e.Stop()
	if g != nil {
		g.Close()
	}

	st := e.Stats()
	fmt.Printf("\nepidemic after %v:\n", duration)
	fmt.Printf("  infected              %d / %d (%.1f%%)\n",
		st.Infected, *pop, 100*float64(st.Infected)/float64(*pop))
	fmt.Printf("  telescope hits        %d\n", st.TelescopeHits)
	if st.SeenTelescope {
		fmt.Printf("  first telescope hit   %v\n", time.Duration(st.FirstTelescopeHit).Truncate(time.Millisecond))
	} else {
		fmt.Printf("  first telescope hit   never\n")
	}
	if f != nil {
		gs := g.Stats()
		fmt.Printf("  honeyfarm VMs         %d live, %d infected\n", f.LiveVMs(), f.InfectedVMs())
		fmt.Printf("  leaked packets        %d (caused %d outside infections)\n", leaked, st.LeakInfections)
		fmt.Printf("  outbound dropped      %d\n", gs.OutDropped)
		fmt.Printf("  internal reflections  %d\n", gs.OutReflected)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wormsim: "+format+"\n", args...)
	os.Exit(1)
}
