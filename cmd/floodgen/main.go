// Command floodgen is a load generator for the wire-ingest path. It
// synthesizes telescope-style scan traffic (TCP SYN probes into the
// monitored space from random external sources), GRE-encapsulates it,
// and blasts it over UDP at a potemkind -listen endpoint. Together they
// close the loop the paper's deployment runs open:
//
//	floodgen -> UDP/GRE -> ingest.Listener -> gateway -> VMs
//
// Each worker owns one socket and one GRE key, so the listener's
// per-tunnel sequence accounting attributes loss per worker. Packets
// carry the virtual-timestamp framing by default (-plain-gre disables
// it): virtual time advances with the wall clock, so the receiving
// honeyfarm sees a timeline as long as the flood.
//
// Example (terminal 1, then terminal 2):
//
//	potemkind -listen 127.0.0.1:4754 -listen-for 10s -space 10.5.0.0/16
//	floodgen -to 127.0.0.1:4754 -duration 10s -rate 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"potemkin/internal/ingest"
	"potemkin/internal/netsim"
	"potemkin/internal/pace"
	"potemkin/internal/sim"
)

// scanPorts are the services scans hammer hardest; workers cycle
// through them weighted toward the front.
var scanPorts = []uint16{445, 80, 135, 139, 443, 1433, 3389, 22, 23, 8080}

func main() {
	to := flag.String("to", fmt.Sprintf("127.0.0.1:%d", ingest.DefaultPort), "listener UDP address")
	space := flag.String("space", "10.5.0.0/16", "monitored space to scan into")
	rate := flag.Float64("rate", 0, "aggregate packets/second (0 = as fast as possible)")
	duration := flag.Duration("duration", 10*time.Second, "how long to flood")
	workers := flag.Int("workers", 1, "concurrent senders (one socket + GRE key each)")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	plain := flag.Bool("plain-gre", false, "send plain GRE framing (no virtual-timestamp prefix)")
	report := flag.Duration("report", time.Second, "progress report interval (0 = none)")
	flag.Parse()

	prefix, err := netsim.ParsePrefix(*space)
	if err != nil {
		fatalf("%v", err)
	}
	if *workers < 1 {
		*workers = 1
	}

	var sent, bytes atomic.Uint64
	start := time.Now()
	deadline := start.Add(*duration)

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		s, err := ingest.DialWire(*to, uint32(w+1), !*plain)
		if err != nil {
			fatalf("%v", err)
		}
		wg.Add(1)
		go func(w int, s *ingest.WireSender) {
			defer wg.Done()
			defer s.Close()
			flood(s, prefix, *seed+uint64(w), *rate/float64(*workers), start, deadline, &sent, &bytes)
		}(w, s)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if *report > 0 {
		tick := time.NewTicker(*report)
		defer tick.Stop()
		var lastN uint64
		lastT := start
	loop:
		for {
			select {
			case <-done:
				break loop
			case now := <-tick.C:
				n := sent.Load()
				fmt.Printf("%8s  sent %d  (%.0f pps)\n",
					now.Sub(start).Truncate(time.Second), n,
					float64(n-lastN)/now.Sub(lastT).Seconds())
				lastN, lastT = n, now
			}
		}
	} else {
		<-done
	}

	wall := time.Since(start)
	fmt.Printf("flooded %d packets, %d MB in %v: %.0f pps, %.1f MB/s\n",
		sent.Load(), bytes.Load()>>20, wall.Truncate(time.Millisecond),
		float64(sent.Load())/wall.Seconds(),
		float64(bytes.Load())/1e6/wall.Seconds())
}

// flood synthesizes and sends probes until deadline, pacing toward
// rate pps (0 = unpaced) with the shared closed-loop governor: sleeps
// happen every batch, not every packet, and always toward the absolute
// schedule, so high rates are not limited by timer granularity and
// pacing error never accumulates.
func flood(s *ingest.WireSender, space netsim.Prefix, seed uint64, rate float64,
	start, deadline time.Time, sent, bytes *atomic.Uint64) {
	const batch = 64
	rng := sim.NewRNG(seed)
	gov := pace.NewGovernor(start, rate, batch)
	var pkt netsim.Packet
	for {
		for i := 0; i < batch; i++ {
			// Random external source scanning a random monitored address.
			src := netsim.Addr(rng.Uint64())
			for space.Contains(src) {
				src = netsim.Addr(rng.Uint64())
			}
			dst := space.Nth(rng.Uint64n(space.Size()))
			port := scanPorts[rng.Intn(len(scanPorts)*2)%len(scanPorts)]
			pkt = netsim.Packet{
				Src: src, Dst: dst, Proto: netsim.ProtoTCP, TTL: 116,
				SrcPort: uint16(32768 + rng.Intn(28232)), DstPort: port,
				Seq: uint32(rng.Uint64()), Flags: netsim.FlagSYN, Window: 65535,
			}
			ts := sim.Time(time.Since(start))
			if err := s.SendPacket(ts, &pkt); err != nil {
				fmt.Fprintf(os.Stderr, "floodgen: send: %v\n", err)
				return
			}
			gov.Pace()
		}
		sent.Add(batch)
		bytes.Add(s.Bytes)
		s.Bytes = 0
		if time.Now().After(deadline) {
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "floodgen: "+format+"\n", args...)
	os.Exit(1)
}
