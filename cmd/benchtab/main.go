// Command benchtab regenerates every table and figure of the Potemkin
// reproduction (E1–E8 in DESIGN.md / EXPERIMENTS.md) as aligned text
// tables, optionally writing CSV series for plotting.
//
// Usage:
//
//	benchtab [-seed N] [-csv DIR] [-quick] [-parallel N] [e1 e2 ... e8 | all]
//
// With no experiment arguments, runs all of them. -quick shrinks every
// workload for a fast smoke run; the full-size run matches the
// parameters EXPERIMENTS.md reports. -parallel caps the worker
// goroutines the experiment sweeps fan independent arms across (0, the
// default, uses all cores; 1 forces sequential). The tables are
// byte-identical at every setting — each arm owns its deterministic
// sim kernel and results merge in input order — so -parallel trades
// wall-clock only.
//
// e12 (shard-engine scaling) and e13 (cluster scaling) must be
// requested explicitly: they report wall-clock, which is
// machine-dependent, so they are excluded from the byte-identical
// default set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"potemkin/internal/cluster"
	"potemkin/internal/core"
	"potemkin/internal/farm"
	"potemkin/internal/fault"
	"potemkin/internal/gateway"
	"potemkin/internal/metrics"
	"potemkin/internal/telescope"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "simulation seed")
		csv      = flag.String("csv", "", "directory to write CSV series into")
		quick    = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		parallel = flag.Int("parallel", 0, "worker goroutines for experiment sweeps (0 = all cores, 1 = sequential)")
	)
	flag.Parse()
	core.SetParallelism(*parallel)

	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"}
	}

	r := runner{seed: *seed, csvDir: *csv, quick: *quick}
	for _, a := range args {
		switch strings.ToLower(a) {
		case "e1":
			r.e1()
		case "e2":
			r.e2()
		case "e3":
			r.e3()
		case "e4":
			r.e4()
		case "e5":
			r.e5()
		case "e6":
			r.e6()
		case "e7":
			r.e7()
		case "e8":
			r.e8()
		case "e9":
			r.e9()
		case "e10":
			r.e10()
		case "e12":
			r.e12()
		case "e13":
			r.e13()
		default:
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (want e1..e10, e12, e13, or all)\n", a)
			os.Exit(2)
		}
	}
}

type runner struct {
	seed   uint64
	csvDir string
	quick  bool

	trace      []telescope.Record
	footprint  float64
	haveTrace  bool
	haveE2Foot bool
}

func (r *runner) print(tabs ...*metrics.Table) {
	for _, t := range tabs {
		t.Render(os.Stdout)
		fmt.Println()
	}
}

func (r *runner) writeCSV(name string, tab *metrics.Table) {
	if r.csvDir == "" {
		return
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(r.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tab.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  [csv] %s\n\n", path)
}

func (r *runner) standardTrace() []telescope.Record {
	if !r.haveTrace {
		dur := 10 * time.Minute
		if r.quick {
			dur = 2 * time.Minute
		}
		fmt.Printf("generating %v telescope trace for %s ...\n",
			dur, telescope.DefaultGenConfig().Space)
		r.trace = core.StandardTrace(r.seed, dur)
		st := telescope.Summarize(r.trace)
		fmt.Printf("  %d packets, %d sources, %d destinations, %.0f pps\n\n",
			st.Packets, st.UniqueSources, st.UniqueDests, st.RatePPS)
		r.haveTrace = true
	}
	return r.trace
}

func (r *runner) measuredFootprint() float64 {
	if !r.haveE2Foot {
		// Derive the per-VM footprint from a short E2 run.
		res := core.RunE2(r.seed, 10, 60*time.Second)
		r.footprint = res.MeanFootprintMB
		r.haveE2Foot = true
	}
	return r.footprint
}

func (r *runner) e1() {
	n := 200
	if r.quick {
		n = 20
	}
	res := core.RunE1(r.seed, n)
	r.print(res.Table)
	r.writeCSV("e1_clone_breakdown", res.Table)
}

func (r *runner) e2() {
	vms, dur := 50, 5*time.Minute
	if r.quick {
		vms, dur = 15, time.Minute
	}
	res := core.RunE2(r.seed, vms, dur)
	r.print(res.Footprint, res.Density)
	r.writeCSV("e2_footprint", res.Footprint)
	r.writeCSV("e2_density", res.Density)
	r.footprint = res.MeanFootprintMB
	r.haveE2Foot = true

	cpu := core.RunE2c(r.seed, []float64{0.1, 1, 10, 100, 1000})
	r.print(cpu.Table)
	r.writeCSV("e2c_cpu_density", cpu.Table)
}

func (r *runner) e3() {
	trace := r.standardTrace()
	space := telescope.DefaultGenConfig().Space
	res := core.RunE3(r.seed, trace, space, core.StandardTimeouts())
	r.print(res.Table)
	r.writeCSV("e3_live_vms", metrics.SeriesTable("live VMs over time", res.Series...))

	abl := core.RunE3ScanFilter(r.seed, trace, space, 60*time.Second, []int{0, 3, 10})
	r.print(abl)
	r.writeCSV("e3b_scanfilter", abl)
}

func (r *runner) e4() {
	warm, frames, iters := 10000, 100000, 2_000_000
	if r.quick {
		warm, frames, iters = 1000, 10000, 200_000
	}
	fmt.Println("E4: Gateway fast-path throughput (real wall-clock, real bytes)")
	tab := metrics.NewTable("", "path", "ops", "ns_per_pkt", "pkts_per_sec")
	for _, tc := range []struct {
		name     string
		hitRatio float64
	}{
		{"warm-binding (GRE decap + parse + deliver)", 1.0},
		{"mixed 90% warm / 10% miss", 0.9},
	} {
		w := core.NewE4Workload(r.seed, warm, frames, tc.hitRatio)
		start := time.Now()
		for i := 0; i < iters; i++ {
			w.Step()
		}
		el := time.Since(start)
		nsPer := float64(el.Nanoseconds()) / float64(iters)
		tab.AddRow(tc.name, iters, nsPer, 1e9/nsPer)
	}
	r.print(tab)
	r.writeCSV("e4_gateway", tab)
}

func (r *runner) e5() {
	dur := 10 * time.Minute
	if r.quick {
		dur = 2 * time.Minute
	}
	res := core.RunE5(r.seed, core.StandardE5Arms(), dur)
	r.print(res.Table)
	r.writeCSV("e5_spread", metrics.SeriesTable("infected over time", res.Curves...))
}

func (r *runner) e6() {
	bits := []int{8, 12, 16, 20, 24}
	rates := []float64{10, 100, 1000}
	trials := 5
	if r.quick {
		bits = []int{8, 16, 24}
		trials = 2
	}
	res := core.RunE6(r.seed, bits, rates, trials)
	r.print(res.Table)
	r.writeCSV("e6_detection", res.Table)
}

func (r *runner) e7() {
	trace := r.standardTrace()
	res := core.RunE7(r.seed, trace, telescope.DefaultGenConfig().Space,
		core.StandardTimeouts(), r.measuredFootprint())
	r.print(res.Table)
	r.writeCSV("e7_provisioning", res.Table)
}

func (r *runner) e9() {
	dur := 20 * time.Second
	loads := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0, 1.1}
	if r.quick {
		dur = 5 * time.Second
		loads = []float64{0.3, 0.9, 1.1}
	}
	res := core.RunE9(r.seed, 100*time.Microsecond, loads, dur)
	r.print(res.Table)
	r.writeCSV("e9_load_latency", res.Table)
}

func (r *runner) e10() {
	dur := 2 * time.Hour
	if r.quick {
		dur = 45 * time.Minute
	}
	res := core.RunE10(r.seed, core.StandardE10Arms(), dur, 0.005)
	r.print(res.Table)
	r.writeCSV("e10_response", metrics.SeriesTable("infected over time", res.Curves...))
}

func (r *runner) e8() {
	dur := 60 * time.Second
	if r.quick {
		dur = 15 * time.Second
	}
	res := core.RunE8(r.seed, dur)
	r.print(res.Table)
	r.writeCSV("e8_reflection", res.Table)
}

// e12 measures the parallel shard engine: the same replay run with the
// epochs single-threaded (the determinism oracle) and threaded, at
// increasing shard counts. The speedup column is wall-clock, so unlike
// every other table it depends on the machine — on a single core it
// only shows the barrier overhead.
func (r *runner) e12() {
	dur, rate := 20*time.Second, 1000.0
	shardCounts := []int{2, 4, 8}
	if r.quick {
		dur = 5 * time.Second
		shardCounts = []int{2, 4}
	}
	gcfg := telescope.DefaultGenConfig()
	gcfg.Duration = dur
	gcfg.Rate = rate
	gcfg.Seed = r.seed
	recs, err := telescope.Generate(gcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("E12: shard-engine scaling (%d packets over %v, wall-clock — machine-dependent)\n",
		len(recs), dur)
	tab := metrics.NewTable("", "shards", "seq_wall_ms", "par_wall_ms", "speedup", "bindings")

	run := func(shards int, threaded bool) (time.Duration, uint64) {
		gc := gateway.DefaultConfig()
		gc.IdleTimeout = 5 * time.Second
		fc := farm.DefaultConfig()
		if fc.Servers < shards {
			fc.Servers = shards
		}
		eng, err := core.NewShardEngine(core.ShardEngineConfig{
			Shards: shards, Parallel: true, Seed: r.seed, Gateway: gc, Farm: fc,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		eng.SetSequential(!threaded)
		start := time.Now()
		if _, err := eng.Replay(&telescope.SliceSource{Recs: recs}, nil, time.Millisecond); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		eng.RunFor(5 * time.Second)
		wall := time.Since(start)
		bindings := eng.GatewayStats().BindingsCreated
		eng.Close()
		return wall, bindings
	}
	for _, shards := range shardCounts {
		seqWall, seqBindings := run(shards, false)
		parWall, parBindings := run(shards, true)
		if seqBindings != parBindings {
			fmt.Fprintf(os.Stderr, "benchtab: e12 determinism violated: %d vs %d bindings\n",
				seqBindings, parBindings)
			os.Exit(1)
		}
		tab.AddRow(shards,
			float64(seqWall.Microseconds())/1000,
			float64(parWall.Microseconds())/1000,
			float64(seqWall)/float64(parWall),
			seqBindings)
	}
	r.print(tab)
	r.writeCSV("e12_shard_scaling", tab)
}

// e13 measures cluster mode: the same replay distributed over worker
// processes (in-process goroutines here, but over real localhost TCP
// and the full epoch protocol), against the single-process sequential
// oracle. The bindings column is checked for equality — distribution
// must not change results — and a final arm SIGKILLs a worker mid-run
// to time checkpoint recovery. Wall-clock, so machine-dependent.
func (r *runner) e13() {
	dur, rate := 20*time.Second, 1000.0
	workerCounts := []int{1, 2, 4}
	const shards = 4
	if r.quick {
		dur = 5 * time.Second
		workerCounts = []int{1, 2}
	}
	gcfg := telescope.DefaultGenConfig()
	gcfg.Duration = dur
	gcfg.Rate = rate
	gcfg.Seed = r.seed
	recs, err := telescope.Generate(gcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("E13: cluster scaling (%d packets over %v, %d shards, wall-clock — machine-dependent)\n",
		len(recs), dur, shards)

	engCfg := func(faults *fault.Config) core.ShardEngineConfig {
		gc := gateway.DefaultConfig()
		gc.IdleTimeout = 5 * time.Second
		fc := farm.DefaultConfig()
		if fc.Servers < shards {
			fc.Servers = shards
		}
		return core.ShardEngineConfig{
			Shards: shards, Parallel: true, Seed: r.seed, Gateway: gc, Farm: fc, Fault: faults,
		}
	}

	// Sequential single-process oracle.
	runSeq := func(faults *fault.Config) (time.Duration, uint64) {
		cfg := engCfg(faults)
		cfg.Parallel = false
		eng, err := core.NewShardEngine(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		eng.StartFaults()
		start := time.Now()
		if _, err := eng.Replay(&telescope.SliceSource{Recs: recs}, nil, time.Millisecond); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		eng.RunFor(5 * time.Second)
		wall := time.Since(start)
		bindings := eng.GatewayStats().BindingsCreated
		eng.Close()
		return wall, bindings
	}

	runCluster := func(workers, standbys int, faults *fault.Config) (time.Duration, uint64, int) {
		c, err := cluster.New(cluster.Config{
			Engine:            engCfg(faults),
			ConfigTag:         "benchtab-e13",
			ListenAddr:        "127.0.0.1:0",
			Workers:           workers,
			HeartbeatInterval: 100 * time.Millisecond,
			RecoveryWait:      30 * time.Second,
		})
		if err == nil {
			err = c.Start()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		var wg sync.WaitGroup
		for i := 0; i < workers+standbys; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				cluster.RunWorker(cluster.WorkerConfig{
					Addr: c.Addr().String(), Engine: engCfg(faults),
					ConfigTag: "benchtab-e13", Name: fmt.Sprintf("w%d", i),
					HeartbeatInterval: 100 * time.Millisecond,
				})
			}()
		}
		if err := c.WaitReady(time.Minute); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		if _, err := c.Replay(&telescope.SliceSource{Recs: recs}, nil, time.Millisecond); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: e13 replay: %v\n", err)
			os.Exit(1)
		}
		c.RunFor(5 * time.Second)
		res, err := c.Results()
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: e13 results: %v\n", err)
			os.Exit(1)
		}
		recov := c.Recoveries()
		c.Close()
		wg.Wait()
		return wall, res.Gateway.BindingsCreated, recov
	}

	seqWall, seqBindings := runSeq(nil)
	tab := metrics.NewTable("", "workers", "shards", "seq_wall_ms", "cluster_wall_ms", "speedup", "bindings", "recoveries")
	for _, workers := range workerCounts {
		wall, bindings, recov := runCluster(workers, 0, nil)
		if bindings != seqBindings {
			fmt.Fprintf(os.Stderr, "benchtab: e13 determinism violated: %d vs %d bindings\n",
				seqBindings, bindings)
			os.Exit(1)
		}
		tab.AddRow(workers, shards,
			float64(seqWall.Microseconds())/1000,
			float64(wall.Microseconds())/1000,
			float64(seqWall)/float64(wall),
			bindings, recov)
	}
	// Recovery arm: a fault-injected worker kill mid-run, with a hot
	// standby adopting the dead worker's shards from the coordinator's
	// epoch-boundary checkpoints. The oracle runs the same fault config
	// (a kill is a recorded no-op outside a cluster), so bindings must
	// still match exactly.
	killAt := dur / 2
	faults := &fault.Config{Script: []fault.Action{
		{At: killAt, Kind: fault.KindKillWorker, Server: 0},
	}}
	_, seqKillBindings := runSeq(faults)
	wall, bindings, recov := runCluster(2, 1, faults)
	if bindings != seqKillBindings || recov < 1 {
		fmt.Fprintf(os.Stderr, "benchtab: e13 recovery violated determinism: %d vs %d bindings, %d recoveries\n",
			seqKillBindings, bindings, recov)
		os.Exit(1)
	}
	tab.AddRow("2+kill", shards,
		float64(seqWall.Microseconds())/1000,
		float64(wall.Microseconds())/1000,
		float64(seqWall)/float64(wall),
		bindings, recov)
	r.print(tab)
	r.writeCSV("e13_cluster_scaling", tab)
}
