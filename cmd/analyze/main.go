// Command analyze reconstructs an incident from a gateway event log
// (the JSONL produced by potemkind -eventlog or gateway.JSONLSink):
// binding statistics, compromised-VM timeline, and the infection chains
// internal reflection captured.
//
// Usage:
//
//	analyze [-chains] [FILE]     (reads stdin when FILE is omitted)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"potemkin/internal/analysis"
)

func main() {
	chains := flag.Bool("chains", false, "also dump the reflection chain edges in time order")
	csvOut := flag.String("csv", "", "write the per-address timeline table as CSV to this file")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := analysis.Analyze(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	rep.Render(os.Stdout)
	if *chains {
		fmt.Println("\nreflection chains:")
		rep.DumpChains(os.Stdout)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.TimelinesTable().WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n[csv] %s\n", *csvOut)
	}
}
