// Command analyze reconstructs an incident from a gateway event log
// (the JSONL produced by potemkind -eventlog or gateway.JSONLSink):
// binding statistics, compromised-VM timeline, and the infection chains
// internal reflection captured. With -snapshot it instead renders a
// JSON snapshot (potemkind -snapshot-out or the live /snapshot
// endpoint) as a readable report.
//
// Usage:
//
//	analyze [-chains] [FILE]     (reads stdin when FILE is omitted)
//	analyze -snapshot FILE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"potemkin"
	"potemkin/internal/analysis"
	"potemkin/internal/metrics"
)

func main() {
	chains := flag.Bool("chains", false, "also dump the reflection chain edges in time order")
	csvOut := flag.String("csv", "", "write the per-address timeline table as CSV to this file")
	snapF := flag.String("snapshot", "", "render a honeyfarm JSON snapshot instead of an event log")
	flag.Parse()

	if *snapF != "" {
		if err := renderSnapshot(*snapF); err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := analysis.Analyze(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	rep.Render(os.Stdout)
	if *chains {
		fmt.Println("\nreflection chains:")
		rep.DumpChains(os.Stdout)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.TimelinesTable().WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n[csv] %s\n", *csvOut)
	}
}

// renderSnapshot prints a potemkin.Snapshot as a readable report.
func renderSnapshot(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s potemkin.Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	fmt.Printf("snapshot at t=%.3fs\n", s.TSeconds)
	fmt.Printf("  live VMs              %d (peak %d, infected %d)\n", s.LiveVMs, s.PeakVMs, s.InfectedVMs)
	fmt.Printf("  bindings live         %d (created %d, recycled %d, shed %d)\n",
		s.BindingsLive, s.BindingsCreated, s.BindingsRecycled, s.BindingsShed)
	fmt.Printf("  pending queue depth   %d packets\n", s.PendingQueued)
	fmt.Printf("  inbound packets       %d (delivered %d)\n", s.InboundPackets, s.DeliveredToVM)
	fmt.Printf("  spawn failures        %d (retries %d)\n", s.SpawnFailures, s.SpawnRetries)
	fmt.Printf("  detector flagged      %d\n", s.DetectedInfected)
	fmt.Printf("  memory in use         %d MiB\n", s.MemoryInUseBytes>>20)
	if s.CloneMs.Count > 0 {
		fmt.Printf("  clone latency (ms)    p50=%.1f p90=%.1f p99=%.1f max=%.1f over %d clones\n",
			s.CloneMs.P50, s.CloneMs.P90, s.CloneMs.P99, s.CloneMs.Max, s.CloneMs.Count)
	}
	if len(s.StagesMs) > 0 {
		names := make([]string, 0, len(s.StagesMs))
		for n := range s.StagesMs {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := metrics.NewTable("\nper-stage latency (ms)",
			"stage", "count", "mean", "p50", "p90", "p99", "max")
		for _, n := range names {
			st := s.StagesMs[n]
			tab.AddRow(n, st.Count, st.Mean, st.P50, st.P90, st.P99, st.Max)
		}
		tab.Render(os.Stdout)
	}
	if s.OpenSpans > 0 {
		fmt.Printf("\n  open spans            %d (bindings still live when snapped)\n", s.OpenSpans)
	}
	return nil
}
