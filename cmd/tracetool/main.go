// Command tracetool analyzes a binding-lifecycle trace (the JSONL
// written by potemkind -trace-out, potemkin.Options.TraceOut, or
// core.RunChaos): per-stage latency percentile tables and the critical
// paths of the slowest bindings. It can also convert the JSONL into the
// Chrome trace-event format for Perfetto / chrome://tracing.
//
// With -epochs the input is instead an epoch timeline (the JSONL
// written by potemkind -epoch-log or potemkin.Options.EpochLog):
// per-phase wall-clock summaries — shard advance, barrier wait,
// outbox exchange — plus the N slowest epochs and who stalled them.
//
// Usage:
//
//	tracetool [-top N] [-csv FILE] [-chrome FILE] [FILE]
//	tracetool -epochs [-top N] [-csv FILE] [FILE]
//
// Reads stdin when FILE is omitted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"potemkin/internal/metrics"
	"potemkin/internal/trace"
)

func main() {
	top := flag.Int("top", 5, "show the critical path of the N slowest bindings (or the N slowest epochs with -epochs)")
	csvOut := flag.String("csv", "", "write the stage table as CSV to this file")
	chromeOut := flag.String("chrome", "", "convert the trace to Chrome trace-event JSON at this path")
	epochs := flag.Bool("epochs", false, "input is an epoch timeline (potemkind -epoch-log); report barrier/exchange profile")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	if *epochs {
		analyzeEpochs(in, *top, *csvOut)
		return
	}

	recs, err := trace.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no spans in input"))
	}

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		cw := trace.NewChromeWriter(f)
		for _, r := range recs {
			cw.Write(r)
		}
		if err := cw.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("[chrome] %s (%d spans) — open in Perfetto or chrome://tracing\n\n", *chromeOut, len(recs))
	}

	a := trace.Analyze(recs)
	fmt.Printf("%d spans in %d traces (%d roots)\n\n", a.Spans, a.Traces, len(a.Roots))
	tab := a.StageTable()
	tab.Render(os.Stdout)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := tab.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\n[csv] %s\n", *csvOut)
	}

	slow := a.SlowestRoots("binding", *top)
	if len(slow) > 0 {
		fmt.Printf("\nslowest %d bindings (critical path):\n", len(slow))
		for _, r := range slow {
			fmt.Printf("  t=%.3fs %s\n", float64(r.StartNS)/1e9, trace.FormatPath(a.CriticalPath(r)))
		}
	}
}

// analyzeEpochs reads a JSONL epoch timeline and prints per-phase
// wall-clock summaries plus the top slowest epochs.
func analyzeEpochs(in io.Reader, top int, csvOut string) {
	samples, err := metrics.ReadEpochs(in)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no epoch samples in input"))
	}

	shards := 0
	var simNS int64
	for _, s := range samples {
		if n := len(s.AdvanceNS); n > shards {
			shards = n
		}
		if d := s.EndNS - s.StartNS; d > 0 {
			simNS += d
		}
	}
	agg := metrics.AggregateEpochs(samples)

	fmt.Printf("%d epochs, %d shards, %.3fs simulated\n", len(samples), shards, float64(simNS)/1e9)
	fmt.Printf("exchange: %d msgs, %d bytes\n", agg.TotalMsgs, agg.TotalBytes)
	fmt.Printf("ingress:  %d frames (per-epoch %s)\n\n", agg.TotalFrames, agg.Ingress.Summary())
	fmt.Printf("phase wall-clock (ms):\n")
	fmt.Printf("  epoch wall    %s\n", agg.Wall.Summary())
	fmt.Printf("  shard advance %s\n", agg.Advance.Summary())
	fmt.Printf("  barrier wait  %s (p50=%.3fms p99=%.3fms)\n",
		agg.BarrierWait.Summary(), agg.BarrierWait.Quantile(0.50), agg.BarrierWait.Quantile(0.99))
	fmt.Printf("  exchange      %s\n\n", agg.Exchange.Summary())

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return samples[order[a]].WallNS > samples[order[b]].WallNS
	})
	if top > len(order) {
		top = len(order)
	}
	tab := metrics.NewTable(fmt.Sprintf("slowest %d epochs", top),
		"epoch", "t_ms", "wall_ms", "adv_max_ms", "barrier_max_ms", "exch_ms", "msgs", "bytes", "ingress", "slowest")
	for _, i := range order[:top] {
		s := samples[i]
		var advMax, waitMax int64
		for _, ns := range s.AdvanceNS {
			if ns > advMax {
				advMax = ns
			}
		}
		for _, ns := range s.BarrierWaitNS {
			if ns > waitMax {
				waitMax = ns
			}
		}
		tab.AddRow(s.Seq, float64(s.StartNS)/1e6, float64(s.WallNS)/1e6,
			float64(advMax)/1e6, float64(waitMax)/1e6, float64(s.ExchangeNS)/1e6,
			s.ExchangeMsgs, s.ExchangeBytes, s.IngressFrames, s.SlowestShard)
	}
	tab.Render(os.Stdout)

	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			fatal(err)
		}
		if err := tab.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\n[csv] %s\n", csvOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
	os.Exit(1)
}
