// Command tracetool analyzes a binding-lifecycle trace (the JSONL
// written by potemkind -trace-out, potemkin.Options.TraceOut, or
// core.RunChaos): per-stage latency percentile tables and the critical
// paths of the slowest bindings. It can also convert the JSONL into the
// Chrome trace-event format for Perfetto / chrome://tracing.
//
// Usage:
//
//	tracetool [-top N] [-csv FILE] [-chrome FILE] [FILE]
//
// Reads stdin when FILE is omitted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"potemkin/internal/trace"
)

func main() {
	top := flag.Int("top", 5, "show the critical path of the N slowest bindings")
	csvOut := flag.String("csv", "", "write the stage table as CSV to this file")
	chromeOut := flag.String("chrome", "", "convert the trace to Chrome trace-event JSON at this path")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	recs, err := trace.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no spans in input"))
	}

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		cw := trace.NewChromeWriter(f)
		for _, r := range recs {
			cw.Write(r)
		}
		if err := cw.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("[chrome] %s (%d spans) — open in Perfetto or chrome://tracing\n\n", *chromeOut, len(recs))
	}

	a := trace.Analyze(recs)
	fmt.Printf("%d spans in %d traces (%d roots)\n\n", a.Spans, a.Traces, len(a.Roots))
	tab := a.StageTable()
	tab.Render(os.Stdout)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := tab.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\n[csv] %s\n", *csvOut)
	}

	slow := a.SlowestRoots("binding", *top)
	if len(slow) > 0 {
		fmt.Printf("\nslowest %d bindings (critical path):\n", len(slow))
		for _, r := range slow {
			fmt.Printf("  t=%.3fs %s\n", float64(r.StartNS)/1e9, trace.FormatPath(a.CriticalPath(r)))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
	os.Exit(1)
}
