// Command benchjson turns `go test -bench` output into the repository's
// BENCH_*.json before/after format. It reads benchmark output on stdin,
// parses ns/op, B/op, and allocs/op per benchmark, merges a recorded
// baseline ("before") file, and writes a single JSON document with both
// sides plus the ns/op speedup factor.
//
// Usage:
//
//	go test -run '^$' -bench PATTERN -benchmem . | benchjson \
//	    -baseline results/bench_baseline.json -out BENCH_core.json \
//	    -require BenchmarkE1FlashClone,BenchmarkShardReplayParallel
//
// The baseline file is the same shape as the output's "before" section
// (see results/bench_baseline.json); benchmarks present only on one
// side are kept, with no speedup reported.
//
// -require lists benchmark names that must appear in the input; the run
// fails loudly if a rename or pattern typo silently drops one. With
// -multicore, the input is a `go test -bench -cpu 1,2,4` run: the
// per-GOMAXPROCS suffix is kept on each name and the results are merged
// into the existing -out file as a "multicore" table (with the host CPU
// count and an optional -note) instead of rewriting before/after.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark's measurements.
type Sample struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the recorded "before" side.
type Baseline struct {
	Description string            `json:"description,omitempty"`
	CPU         string            `json:"cpu,omitempty"`
	Benchtime   string            `json:"benchtime,omitempty"`
	Notes       string            `json:"notes,omitempty"`
	Benchmarks  map[string]Sample `json:"benchmarks"`
}

// MulticoreTable holds per-GOMAXPROCS samples from a `-cpu 1,2,4` run.
// Names keep their -N suffix so the scaling curve is explicit.
type MulticoreTable struct {
	HostCPUs int               `json:"host_cpus"`
	Note     string            `json:"note,omitempty"`
	Entries  map[string]Sample `json:"entries"`
}

// Output is the merged document.
type Output struct {
	Description string             `json:"description"`
	Goos        string             `json:"goos,omitempty"`
	Goarch      string             `json:"goarch,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	Benchtime   string             `json:"benchtime,omitempty"`
	Unit        string             `json:"unit"`
	Before      map[string]Sample  `json:"before"`
	After       map[string]Sample  `json:"after"`
	SpeedupNs   map[string]float64 `json:"speedup_ns_per_op"`
	Multicore   *MulticoreTable    `json:"multicore,omitempty"`
	Notes       string             `json:"notes,omitempty"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "JSON file with the recorded 'before' numbers")
		outPath      = flag.String("out", "BENCH_core.json", "output file")
		desc         = flag.String("description", "", "override the output description")
		require      = flag.String("require", "", "comma-separated benchmark names that must appear in the input")
		multicore    = flag.Bool("multicore", false, "merge a -cpu 1,2,4 run into the existing -out file's multicore table")
		note         = flag.String("note", "", "note stored in the multicore table (host caveats etc.)")
	)
	flag.Parse()

	parsed, meta, err := readBench(os.Stdin, *multicore)
	if err != nil {
		fatal(err)
	}
	if len(parsed) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	if err := checkRequired(*require, parsed); err != nil {
		fatal(err)
	}

	if *multicore {
		writeMulticore(*outPath, parsed, *note)
		return
	}

	out := Output{
		Unit:      "ns/op",
		Before:    map[string]Sample{},
		After:     parsed,
		SpeedupNs: map[string]float64{},
		Goos:      meta.goos,
		Goarch:    meta.goarch,
		CPU:       meta.cpu,
	}
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *baselinePath, err))
		}
		out.Before = base.Benchmarks
		out.Description = base.Description
		out.Benchtime = base.Benchtime
		out.Notes = base.Notes
	}
	if *desc != "" {
		out.Description = *desc
	}
	// A prior `make bench-parallel` run may have stored a multicore
	// table in the out file; regenerating before/after keeps it.
	if prev, err := readOutput(*outPath); err == nil && prev.Multicore != nil {
		out.Multicore = prev.Multicore
	}

	for name, after := range out.After {
		if before, ok := out.Before[name]; ok && after.NsPerOp > 0 {
			out.SpeedupNs[name] = math.Round(100*before.NsPerOp/after.NsPerOp) / 100
		}
	}

	writeOutput(*outPath, out)
	fmt.Printf("\nwrote %s (%d benchmarks", *outPath, len(out.After))
	var names []string
	for name := range out.SpeedupNs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("; %s %.2fx", strings.TrimPrefix(name, "Benchmark"), out.SpeedupNs[name])
	}
	fmt.Println(")")
}

type benchMeta struct {
	goos, goarch, cpu string
}

// readBench scans `go test -bench` output, echoing each line so the run
// stays readable. keepCPUSuffix keeps the -GOMAXPROCS suffix on names
// (multicore mode); otherwise it is stripped so names match across
// machines.
func readBench(f *os.File, keepCPUSuffix bool) (map[string]Sample, benchMeta, error) {
	parsed := map[string]Sample{}
	var meta benchMeta
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			meta.goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			meta.goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			meta.cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line, keepCPUSuffix)
			if ok {
				parsed[name] = s
			}
		}
	}
	return parsed, meta, sc.Err()
}

// checkRequired fails when a required benchmark is absent from the
// parsed set. A required name matches either exactly or with any
// -GOMAXPROCS suffix, so the same list works in both modes.
func checkRequired(require string, have map[string]Sample) error {
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for name := range have {
			if name == want || strings.HasPrefix(name, want+"-") {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("required benchmark %q missing from input (renamed, or dropped by the -bench pattern?)", want)
		}
	}
	return nil
}

// writeMulticore merges per-GOMAXPROCS entries into the existing out
// file, replacing any previous multicore table but leaving the
// before/after sections untouched.
func writeMulticore(outPath string, entries map[string]Sample, note string) {
	out, err := readOutput(outPath)
	if err != nil {
		fatal(fmt.Errorf("-multicore needs an existing %s (run `make bench` first): %w", outPath, err))
	}
	out.Multicore = &MulticoreTable{
		HostCPUs: runtime.NumCPU(),
		Note:     note,
		Entries:  entries,
	}
	writeOutput(outPath, out)
	fmt.Printf("\nmerged %d multicore entries into %s (host_cpus=%d)\n",
		len(entries), outPath, runtime.NumCPU())
}

func readOutput(path string) (Output, error) {
	var out Output
	raw, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeOutput(path string, out Output) {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   1000   123.4 ns/op   56 B/op   7 allocs/op   0.9 custom-unit
//
// Custom units are ignored; only ns/op, B/op, allocs/op are kept.
func parseBenchLine(line string, keepCPUSuffix bool) (string, Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 && !keepCPUSuffix {
		// strip the -GOMAXPROCS suffix
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	s := Sample{NsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsPerOp = v
		case "B/op":
			b := v
			s.BytesPerOp = &b
		case "allocs/op":
			a := v
			s.AllocsPerOp = &a
		}
	}
	if s.NsPerOp < 0 {
		return "", Sample{}, false
	}
	return name, s, true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
