// Command benchjson turns `go test -bench` output into the repository's
// BENCH_*.json before/after format. It reads benchmark output on stdin,
// parses ns/op, B/op, and allocs/op per benchmark, merges a recorded
// baseline ("before") file, and writes a single JSON document with both
// sides plus the ns/op speedup factor.
//
// Usage:
//
//	go test -run '^$' -bench PATTERN -benchmem . | benchjson \
//	    -baseline results/bench_baseline.json -out BENCH_core.json
//
// The baseline file is the same shape as the output's "before" section
// (see results/bench_baseline.json); benchmarks present only on one
// side are kept, with no speedup reported.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark's measurements.
type Sample struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the recorded "before" side.
type Baseline struct {
	Description string            `json:"description,omitempty"`
	CPU         string            `json:"cpu,omitempty"`
	Benchtime   string            `json:"benchtime,omitempty"`
	Notes       string            `json:"notes,omitempty"`
	Benchmarks  map[string]Sample `json:"benchmarks"`
}

// Output is the merged document.
type Output struct {
	Description string             `json:"description"`
	Goos        string             `json:"goos,omitempty"`
	Goarch      string             `json:"goarch,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	Benchtime   string             `json:"benchtime,omitempty"`
	Unit        string             `json:"unit"`
	Before      map[string]Sample  `json:"before"`
	After       map[string]Sample  `json:"after"`
	SpeedupNs   map[string]float64 `json:"speedup_ns_per_op"`
	Notes       string             `json:"notes,omitempty"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "JSON file with the recorded 'before' numbers")
		outPath      = flag.String("out", "BENCH_core.json", "output file")
		desc         = flag.String("description", "", "override the output description")
	)
	flag.Parse()

	out := Output{
		Unit:      "ns/op",
		Before:    map[string]Sample{},
		After:     map[string]Sample{},
		SpeedupNs: map[string]float64{},
	}
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *baselinePath, err))
		}
		out.Before = base.Benchmarks
		out.Description = base.Description
		out.Benchtime = base.Benchtime
		out.Notes = base.Notes
	}
	if *desc != "" {
		out.Description = *desc
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line)
			if ok {
				out.After[name] = s
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(out.After) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	for name, after := range out.After {
		if before, ok := out.Before[name]; ok && after.NsPerOp > 0 {
			out.SpeedupNs[name] = math.Round(100*before.NsPerOp/after.NsPerOp) / 100
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s (%d benchmarks", *outPath, len(out.After))
	var names []string
	for name := range out.SpeedupNs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("; %s %.2fx", strings.TrimPrefix(name, "Benchmark"), out.SpeedupNs[name])
	}
	fmt.Println(")")
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   1000   123.4 ns/op   56 B/op   7 allocs/op   0.9 custom-unit
//
// Custom units are ignored; only ns/op, B/op, allocs/op are kept.
func parseBenchLine(line string) (string, Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// strip the -GOMAXPROCS suffix
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	s := Sample{NsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsPerOp = v
		case "B/op":
			b := v
			s.BytesPerOp = &b
		case "allocs/op":
			a := v
			s.AllocsPerOp = &a
		}
	}
	if s.NsPerOp < 0 {
		return "", Sample{}, false
	}
	return name, s, true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
