// Command ckpt inspects and compares VM delta checkpoints (the .ckpt
// files written by potemkind -checkpoints / Options.CheckpointDir).
//
// Usage:
//
//	ckpt info FILE             summary: identity, delta size, page list
//	ckpt dump FILE PAGE        hex dump of one captured page
//	ckpt diff FILE1 FILE2      pages/blocks present or differing between two checkpoints
//	ckpt cluster FILE          summary of a cluster shard replay checkpoint
package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"

	"potemkin/internal/cluster"
	"potemkin/internal/vmm"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "info":
		cmdInfo(os.Args[2])
	case "dump":
		if len(os.Args) < 4 {
			usage()
		}
		cmdDump(os.Args[2], os.Args[3])
	case "diff":
		if len(os.Args) < 4 {
			usage()
		}
		cmdDiff(os.Args[2], os.Args[3])
	case "cluster":
		cmdCluster(os.Args[2])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ckpt {info FILE | dump FILE PAGE | diff FILE1 FILE2 | cluster FILE}")
	os.Exit(2)
}

// cmdCluster summarizes a cluster shard replay checkpoint (the
// epoch-boundary input logs the coordinator uses to restore a crashed
// worker's shards; see internal/cluster).
func cmdCluster(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckpt: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	ck, err := cluster.ReadCheckpoint(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckpt: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("shard:       %d of %d\n", ck.Shard, ck.Shards)
	fmt.Printf("seed:        %#x\n", ck.Seed)
	fmt.Printf("config hash: %#x\n", ck.ConfigHash)
	fmt.Printf("base:        %v\n", ck.Base)
	fmt.Printf("through:     %v\n", ck.Through)
	inputBytes := 0
	for _, ep := range ck.Epochs {
		inputBytes += len(ep.Inputs)
	}
	fmt.Printf("epochs:      %d non-empty (%d input bytes)\n", len(ck.Epochs), inputBytes)
	for i, ep := range ck.Epochs {
		if i == 10 {
			fmt.Printf("  … (+%d more)\n", len(ck.Epochs)-10)
			break
		}
		fmt.Printf("  [%v, %v) %d bytes\n", ep.Start, ep.End, len(ep.Inputs))
	}
}

func load(path string) *vmm.Checkpoint {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckpt: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	ck, err := vmm.ReadCheckpoint(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckpt: %s: %v\n", path, err)
		os.Exit(1)
	}
	return ck
}

func sortedPages(ck *vmm.Checkpoint) []uint64 {
	out := make([]uint64, 0, len(ck.Pages))
	for vpn := range ck.Pages {
		out = append(out, vpn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cmdInfo(path string) {
	ck := load(path)
	fmt.Printf("image:       %s\n", ck.ImageName)
	fmt.Printf("address:     %s\n", ck.IP)
	fmt.Printf("delta pages: %d (%d KiB)\n", len(ck.Pages), len(ck.Pages)*4)
	fmt.Printf("disk blocks: %d (%d KiB)\n", len(ck.DiskBlocks), len(ck.DiskBlocks)*64)
	fmt.Printf("total delta: %d KiB\n", ck.Bytes()>>10)
	pages := sortedPages(ck)
	fmt.Printf("pages:      ")
	for i, vpn := range pages {
		if i == 16 {
			fmt.Printf(" … (+%d more)", len(pages)-16)
			break
		}
		fmt.Printf(" %d", vpn)
	}
	fmt.Println()
}

func cmdDump(path, pageStr string) {
	ck := load(path)
	vpn, err := strconv.ParseUint(pageStr, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckpt: bad page %q\n", pageStr)
		os.Exit(1)
	}
	content, ok := ck.Pages[vpn]
	if !ok {
		fmt.Fprintf(os.Stderr, "ckpt: page %d not in delta (have %v...)\n", vpn, sortedPages(ck)[:min(8, len(ck.Pages))])
		os.Exit(1)
	}
	// Hex dump, eliding all-zero runs.
	for off := 0; off < len(content); off += 16 {
		row := content[off : off+16]
		allZero := true
		for _, b := range row {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			continue
		}
		fmt.Printf("%08x ", off)
		for _, b := range row {
			fmt.Printf(" %02x", b)
		}
		fmt.Printf("  |")
		for _, b := range row {
			if b >= 0x20 && b < 0x7f {
				fmt.Printf("%c", b)
			} else {
				fmt.Print(".")
			}
		}
		fmt.Println("|")
	}
}

func cmdDiff(pathA, pathB string) {
	a, b := load(pathA), load(pathB)
	onlyA, onlyB, differ, same := 0, 0, 0, 0
	for _, vpn := range sortedPages(a) {
		cb, ok := b.Pages[vpn]
		switch {
		case !ok:
			onlyA++
		case !equal(a.Pages[vpn], cb):
			differ++
			fmt.Printf("page %d differs\n", vpn)
		default:
			same++
		}
	}
	for vpn := range b.Pages {
		if _, ok := a.Pages[vpn]; !ok {
			onlyB++
		}
	}
	fmt.Printf("pages: %d same, %d differ, %d only in %s, %d only in %s\n",
		same, differ, onlyA, pathA, onlyB, pathB)

	blockChanges := 0
	for blk, va := range a.DiskBlocks {
		if vb, ok := b.DiskBlocks[blk]; ok && va != vb {
			blockChanges++
		}
	}
	fmt.Printf("disk:  %d blocks in %s, %d in %s, %d changed\n",
		len(a.DiskBlocks), pathA, len(b.DiskBlocks), pathB, blockChanges)
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
