// Command potemkind runs a simulated Potemkin honeyfarm against a
// telescope feed — a trace file recorded by cmd/telescope, a pcap
// capture, live GRE-over-UDP wire traffic, or a freshly synthesized
// feed — and reports the gateway, farm, and memory statistics the
// paper's scalability argument is made of.
//
// Usage:
//
//	potemkind [flags]
//
//	-space CIDR      monitored address space (default 10.5.0.0/16)
//	-trace FILE      replay a recorded .potm trace (streamed; bounded memory)
//	-pcap FILE       replay a pcap savefile instead
//	-listen ADDR     serve live GRE-over-UDP wire ingest on this UDP address
//	                 (works under -parallel: arrivals are quantized onto the
//	                 epoch grid, and the run replays exactly from -wire-pcap)
//	-listen-for D    stop serving after this much wall time (0: until ^C)
//	-listen-shards N decap shards/queues for -listen (default 1)
//	-queue N         per-shard ingest queue length (default 4096)
//	-plain-gre       -listen expects plain GRE framing (no timestamp prefix)
//	-speedup F       wall->virtual scale for plain-framing arrivals
//	-wire-pcap FILE  capture every live wire injection to this pcap — the
//	                 run's replayable artifact (-pcap FILE reproduces it)
//	-duration D      length of synthesized feed (default 2m)
//	-rate PPS        synthesized feed packet rate (default 200)
//	-servers N       physical servers (default 4)
//	-shards N        gateway instances partitioning the monitored space
//	-parallel        run shards on parallel epochs (needs -shards >= 2)
//	-policy NAME     open|drop-all|reflect-source|internal-reflect
//	-idle D          VM idle-recycling timeout (default 60s; 0 disables)
//	-guest NAME      winxp|sqlserver|linux
//	-seed N          simulation seed
//	-interval D      progress report interval in simulated time (default 10s)
//	-capture DIR     record gateway traffic (.potm, or .pcap with -capture-pcap)
//	-trace-out F     write the binding-lifecycle span trace (JSONL; see cmd/tracetool)
//	-trace-chrome F  write the trace in Chrome trace-event format (Perfetto)
//	-debug-addr A    serve /snapshot, /metrics, expvar and pprof on this HTTP address
//	-epoch-log F     write the parallel engine's JSONL epoch timeline (tracetool -epochs)
//	-snapshot-out F  write the final JSON snapshot
//	-scenario S      run a deterministic attacker campaign (builtin family or JSON file)
//	-scorecard-out F write the campaign's effectiveness scorecard (JSON; cmd/scorecard renders it)
//
// Cluster mode distributes the shards across worker processes while
// keeping results byte-identical to a single-process run (see
// internal/cluster and DESIGN.md "Cluster execution"):
//
//	-coordinator A   run the epoch coordinator, serving workers on TCP address A
//	-worker A        host shard domains for the coordinator at address A
//	-workers N       worker processes the coordinator splits shards over (default 2)
//	-name S          worker name in logs and recovery events
//	-heartbeat D     cluster heartbeat interval (default 1s)
//	-heartbeat-timeout D  declare a peer dead after this much silence (default 5s)
//	-recovery-wait D wait this long for a replacement worker before degrading
//
// Coordinator and workers must be launched with the same scenario
// flags (space/servers/shards/policy/idle/guest/seed); the handshake
// rejects mismatches. Extra workers beyond -workers register as hot
// standbys and adopt a crashed worker's shards from the coordinator's
// epoch-boundary checkpoints. With -debug-addr the coordinator serves
// the farm-wide /metrics (its epoch profile merged with the registry
// snapshots workers piggyback on heartbeats) and /cluster (per-worker
// epoch lag, heartbeat age, recovery count) while the run is live.
//
// SIGINT/SIGTERM stop the feed cleanly: the replay or listener winds
// down, and every open writer (trace, capture, event log, snapshot) is
// flushed before exit instead of being truncated mid-record. The
// cluster coordinator halts the feed at the next epoch boundary and
// still merges and flushes everything the workers collected; a worker
// defers its first signal to the coordinator (which owns that flush).
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"potemkin"
	"potemkin/internal/guest"
	"potemkin/internal/ingest"
	"potemkin/internal/metrics"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

func main() {
	var (
		space     = flag.String("space", "10.5.0.0/16", "monitored address space (CIDR)")
		traceF    = flag.String("trace", "", "trace file to replay (default: synthesize)")
		pcapF     = flag.String("pcap", "", "pcap savefile to replay instead of a .potm trace")
		listen    = flag.String("listen", "", "serve live GRE-over-UDP ingest on this UDP address (e.g. 127.0.0.1:4754)")
		listenFor = flag.Duration("listen-for", 0, "stop the listener after this much wall time (0: until interrupted)")
		shardsIn  = flag.Int("listen-shards", 1, "ingest decap shards (1 keeps wire replay deterministic)")
		queueLen  = flag.Int("queue", 4096, "per-shard ingest queue length (frames)")
		plainGRE  = flag.Bool("plain-gre", false, "expect plain GRE framing on -listen (no timestamp prefix; arrival clock maps to virtual time)")
		speedup   = flag.Float64("speedup", 1, "wall-to-virtual time scale for plain-framing arrivals")
		wirePcap  = flag.String("wire-pcap", "", "capture every live wire injection to this pcap savefile (requires -listen; replay it with -pcap)")
		duration  = flag.Duration("duration", 2*time.Minute, "synthesized feed duration")
		rate      = flag.Float64("rate", 200, "synthesized feed rate (packets/sec)")
		servers   = flag.Int("servers", 4, "physical servers")
		shards    = flag.Int("shards", 1, "gateway instances partitioning the monitored space")
		parallel  = flag.Bool("parallel", false, "run gateway shards on parallel epochs (requires -shards >= 2)")
		policy    = flag.String("policy", "internal-reflect", "containment policy")
		idle      = flag.Duration("idle", 60*time.Second, "VM idle-recycling timeout (0 disables)")
		guestN    = flag.String("guest", "winxp", "guest personality")
		profileF  = flag.String("profile", "", "load a custom guest personality from a JSON profile file")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		interval  = flag.Duration("interval", 10*time.Second, "progress interval (simulated)")
		eventLog  = flag.String("eventlog", "", "write the gateway's forensic event log (JSONL) to this file")
		capture   = flag.String("capture", "", "record all gateway traffic into trace files under this directory")
		capPcap   = flag.Bool("capture-pcap", false, "write -capture files as pcap savefiles instead of .potm")
		ckptDir   = flag.String("checkpoints", "", "save delta checkpoints of detected VMs into this directory")
		jsonOut   = flag.Bool("json", false, "emit the final stats as JSON on stdout")
		traceOut  = flag.String("trace-out", "", "write the binding-lifecycle span trace (JSONL) to this file")
		traceChr  = flag.String("trace-chrome", "", "write the trace in Chrome trace-event format (Perfetto-loadable) to this file")
		debug     = flag.String("debug-addr", "", "serve /snapshot, /metrics, /debug/vars (expvar) and /debug/pprof on this address while running")
		epochLog  = flag.String("epoch-log", "", "write the parallel engine's JSONL epoch timeline to this file (see tracetool -epochs)")
		snapOut   = flag.String("snapshot-out", "", "write the final JSON snapshot to this file")
		scenarioF = flag.String("scenario", "", "run a deterministic attacker campaign: builtin family name or scenario JSON file")
		scoreOut  = flag.String("scorecard-out", "", "write the campaign's effectiveness scorecard (JSON) to this file (requires -scenario; see cmd/scorecard)")

		coordAddr  = flag.String("coordinator", "", "run as cluster coordinator, serving workers on this TCP address")
		workerAddr = flag.String("worker", "", "run as cluster worker, dialing the coordinator at this TCP address")
		workersN   = flag.Int("workers", 2, "worker processes the coordinator distributes shards over")
		workerName = flag.String("name", "", "worker name in logs and recovery events (default host:pid)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "cluster heartbeat interval")
		hbTimeout  = flag.Duration("heartbeat-timeout", 5*time.Second, "declare a cluster peer dead after this much silence")
		recWait    = flag.Duration("recovery-wait", 30*time.Second, "how long the coordinator waits for a replacement worker before degrading")
	)
	flag.Parse()
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	// Flag validation reports every problem, one per line, before
	// exiting — a misconfigured invocation should not take N runs to
	// discover N mistakes.
	var problems []string
	badFlags := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	clusterMode := *coordAddr != "" || *workerAddr != ""
	if moreThanOne(*traceF != "", *pcapF != "", *listen != "") {
		badFlags("-trace, -pcap, and -listen are mutually exclusive")
	}
	if *wirePcap != "" && *listen == "" {
		badFlags("-wire-pcap requires -listen (it captures the live wire feed)")
	}
	if *coordAddr != "" && *workerAddr != "" {
		badFlags("-coordinator and -worker are mutually exclusive")
	}
	if clusterMode && *listen != "" {
		badFlags("cluster mode does not support -listen (wire arrivals defeat conservative lookahead)")
	}
	if *coordAddr != "" && *shards < 2 {
		badFlags("-coordinator requires -shards >= 2 (got %d)", *shards)
	}
	if *coordAddr != "" && *workersN < 1 {
		badFlags("-workers must be >= 1 (got %d)", *workersN)
	}
	if *workerAddr != "" {
		for name, set := range map[string]bool{
			"-trace": *traceF != "", "-pcap": *pcapF != "", "-json": *jsonOut,
			"-eventlog": *eventLog != "", "-trace-out": *traceOut != "",
			"-snapshot-out": *snapOut != "", "-debug-addr": *debug != "",
			"-epoch-log": *epochLog != "", "-scorecard-out": *scoreOut != "",
		} {
			if set {
				badFlags("%s is a coordinator flag; the worker ships its output over the cluster protocol", name)
			}
		}
	}
	if clusterMode {
		for name, set := range map[string]bool{
			"-capture": *capture != "", "-checkpoints": *ckptDir != "",
			"-trace-chrome": *traceChr != "",
		} {
			if set {
				badFlags("%s is not supported in cluster mode", name)
			}
		}
	}
	if *epochLog != "" && !*parallel && *coordAddr == "" {
		badFlags("-epoch-log requires -parallel or -coordinator (the timeline profiles epoch barriers)")
	}
	if *scoreOut != "" && *scenarioF == "" {
		badFlags("-scorecard-out requires -scenario (the scorecard scores a campaign run)")
	}
	if *scenarioF != "" {
		for name, set := range map[string]bool{
			"-trace": *traceF != "", "-pcap": *pcapF != "",
			"-listen": *listen != "", "-profile": *profileF != "",
		} {
			if set {
				badFlags("%s conflicts with -scenario (the scenario defines the feed and the guest)", name)
			}
		}
		for _, name := range []string{"guest", "rate", "duration"} {
			if setFlags[name] {
				badFlags("-%s conflicts with -scenario (the scenario defines the feed and the guest)", name)
			}
		}
	}

	opts := potemkin.Options{
		Seed:           *seed,
		MonitoredSpace: *space,
		Servers:        *servers,
		GatewayShards:  *shards,
		Parallel:       *parallel,
		IdleTimeout:    *idle,
	}
	if *idle == 0 {
		opts.IdleTimeout = -1
	}
	switch *policy {
	case "open":
		opts.Policy = potemkin.Open
	case "drop-all":
		opts.Policy = potemkin.DropAll
	case "reflect-source":
		opts.Policy = potemkin.ReflectSource
	case "internal-reflect":
		opts.Policy = potemkin.InternalReflect
	default:
		badFlags("unknown policy %q (want open, drop-all, reflect-source, or internal-reflect)", *policy)
	}
	switch *guestN {
	case "winxp":
		opts.Guest = potemkin.GuestWindowsXP
	case "sqlserver":
		opts.Guest = potemkin.GuestSQLServer
	case "linux":
		opts.Guest = potemkin.GuestLinuxServer
	default:
		badFlags("unknown guest %q (want winxp, sqlserver, or linux)", *guestN)
	}
	if *listen != "" && !clusterMode {
		opts.Wire = &potemkin.WireOptions{
			Addr:      *listen,
			Shards:    *shardsIn,
			QueueLen:  *queueLen,
			PlainGRE:  *plainGRE,
			Speedup:   *speedup,
			ListenFor: *listenFor,
			Capture:   *wirePcap,
		}
	}
	var campaign *potemkin.Scenario
	if *scenarioF != "" {
		c, err := potemkin.LoadScenario(*scenarioF)
		if err != nil {
			badFlags("%v", err)
		} else {
			campaign = c
			opts.Scenario = campaign
		}
	}
	if !clusterMode {
		if err := opts.Validate(); err != nil {
			badFlags("%v", err)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "potemkind: %s\n", p)
		}
		os.Exit(1)
	}
	if *profileF != "" {
		f, err := os.Open(*profileF)
		if err != nil {
			fatalf("%v", err)
		}
		p, err := guest.LoadProfile(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		opts.GuestProfile = p
		fmt.Printf("loaded guest personality %q from %s\n", p.Name, *profileF)
	}

	// Cluster roles bypass the in-process facade: the coordinator owns
	// the feed, barrier, and merged output; workers host shard domains.
	if clusterMode {
		prof := opts.GuestProfile
		if prof == nil {
			switch *guestN {
			case "winxp":
				prof = guest.WindowsXP()
			case "sqlserver":
				prof = guest.SQLServer()
			case "linux":
				prof = guest.LinuxServer()
			}
		}
		sc := clusterScenario{
			Space: *space, Servers: *servers, Shards: *shards,
			Parallel: *parallel, Policy: *policy, Idle: *idle,
			Profile: prof, Seed: *seed, Campaign: campaign,
		}
		if *workerAddr != "" {
			os.Exit(runClusterWorker(sc, *workerAddr, *workerName, *heartbeat))
		}
		run := coordinatorRun{
			scenario: sc, addr: *coordAddr, workers: *workersN,
			heartbeat: *heartbeat, heartbeatTimeout: *hbTimeout, recoveryWait: *recWait,
			traceFile: *traceF, pcapFile: *pcapF, duration: *duration, rate: *rate,
			jsonOut: *jsonOut, snapOut: *snapOut, debugAddr: *debug,
			scorecardOut: *scoreOut,
		}
		if *eventLog != "" {
			f, err := os.Create(*eventLog)
			if err != nil {
				fatalf("%v", err)
			}
			run.eventLog = f
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatalf("%v", err)
			}
			run.traceOut = f
		}
		if *epochLog != "" {
			f, err := os.Create(*epochLog)
			if err != nil {
				fatalf("%v", err)
			}
			run.epochLog = f
		}
		code := runClusterCoordinator(run)
		if run.eventLog != nil {
			run.eventLog.Close()
		}
		if run.traceOut != nil {
			run.traceOut.Close()
		}
		if run.epochLog != nil {
			run.epochLog.Close()
		}
		os.Exit(code)
	}
	opts.OnDetected = func(addr string, n int) {
		fmt.Printf("  !! scan detector: VM %s attempted %d distinct targets\n", addr, n)
	}
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.EventLog = f
	}
	opts.CaptureDir = *capture
	opts.CapturePcap = *capPcap
	opts.CheckpointDir = *ckptDir
	// Trace files are registered for closing before the honeyfarm so the
	// deferred hf.Close() (which flushes open spans and terminates the
	// Chrome array) runs first.
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.TraceOut = f
	}
	if *traceChr != "" {
		f, err := os.Create(*traceChr)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.TraceChrome = f
	}
	if *epochLog != "" {
		f, err := os.Create(*epochLog)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.EpochLog = f
	}
	// The live /metrics scrape needs the telemetry registry; it costs
	// one atomic add per instrumented event, so turn it on whenever the
	// debug endpoint (its only consumer here) is requested.
	opts.Metrics = *debug != ""

	hf, err := potemkin.New(opts)
	if err != nil {
		fatalf("%v", err)
	}
	defer hf.Close()

	// Graceful shutdown: a signal flips the flag; the replay loop and
	// the wire listener both consult it, wind down, and fall through to
	// the normal epilogue so every writer is flushed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var interrupted atomic.Bool
	go func() {
		<-ctx.Done()
		interrupted.Store(true)
	}()

	// The live debug endpoint must never touch simulation state from the
	// HTTP goroutine (the sim is single-threaded): the periodic progress
	// callback below marshals a snapshot on the sim thread and stores the
	// bytes in an atomic pointer; HTTP handlers serve the stored bytes.
	var lastSnap atomic.Pointer[[]byte]
	publishSnap := func() {
		if b, err := hf.MarshalSnapshot(); err == nil {
			lastSnap.Store(&b)
		}
	}
	publishSnap()
	if *debug != "" {
		expvar.Publish("potemkin", varFunc(func() string {
			if b := lastSnap.Load(); b != nil {
				return string(*b)
			}
			return "{}"
		}))
		http.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if b := lastSnap.Load(); b != nil {
				w.Write(*b)
			} else {
				w.Write([]byte("{}"))
			}
		})
		// Unlike /snapshot, /metrics reads the registry live: every
		// series is an atomic, so the scrape never touches sim state and
		// needs no publish step.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(hf.MetricsText())
		})
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				fmt.Fprintf(os.Stderr, "potemkind: debug endpoint: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoint on http://%s (/snapshot, /metrics, /debug/vars, /debug/pprof)\n", *debug)
	}

	// Progress reporting rides the simulation clock. In -parallel mode
	// there is no single kernel to hang a ticker on (each shard owns
	// its own), so progress comes only from the final report.
	in := hf.Internals()
	if in.Kernel != nil {
		in.Kernel.Every(*interval, func(now sim.Time) {
			snap := hf.Snapshot()
			line := fmt.Sprintf("  t=%-8v live=%-5d infected=%-4d bindings=%d recycled=%d pending=%d mem=%dMiB",
				time.Duration(now).Truncate(time.Millisecond), snap.LiveVMs, snap.InfectedVMs,
				snap.BindingsCreated, snap.BindingsRecycled, snap.PendingQueued,
				snap.MemoryInUseBytes>>20)
			if snap.CloneMs.Count > 0 {
				line += fmt.Sprintf(" clone[p50=%.1fms p99=%.1fms]", snap.CloneMs.P50, snap.CloneMs.P99)
			}
			fmt.Println(line)
			publishSnap()
		})
	}

	var injected int
	var wireStats *potemkin.WireStats
	halt := interrupted.Load
	switch {
	case campaign != nil:
		fmt.Printf("scenario %q: replaying the compiled campaign\n", campaign.Name)
		card, err := hf.RunScenario(potemkin.WithHalt(halt))
		if err != nil {
			fatalf("scenario: %v", err)
		}
		injected = card.Facts.Steps
		if err := emitScorecard(card, *scoreOut, *jsonOut); err != nil {
			fatalf("%v", err)
		}
	case *listen != "":
		srv, err := hf.StartWire()
		if err != nil {
			fatalf("%v", err)
		}
		framing := "timestamped GRE"
		if *plainGRE {
			framing = "plain GRE"
		}
		fmt.Printf("listening for %s over UDP on %s (%d shard(s), queue %d)\n",
			framing, srv.Addr(), *shardsIn, *queueLen)
		if *wirePcap != "" {
			fmt.Printf("capturing wire injections to %s (replay with -pcap %s)\n", *wirePcap, *wirePcap)
		}
		// The feed stops on signal or after -listen-for (the facade owns
		// that timer); Serve then drains the queues, runs the epilogue,
		// and returns.
		go func() {
			<-ctx.Done()
			srv.Stop()
		}()
		ws, err := srv.Serve(potemkin.WithHalt(halt))
		if err != nil {
			fmt.Fprintf(os.Stderr, "potemkind: wire serve: %v\n", err)
		}
		injected = ws.Injected
		wireStats = &ws
	case *traceF != "" || *pcapF != "":
		name := *traceF
		var src telescope.Source
		f, err := os.Open(nameOr(*traceF, *pcapF))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if *pcapF != "" {
			name = *pcapF
			ps, err := ingest.NewPcapSource(f)
			if err != nil {
				fatalf("reading %s: %v", name, err)
			}
			src = ps
		} else {
			tr, err := telescope.NewReader(f)
			if err != nil {
				fatalf("reading %s: %v", name, err)
			}
			src = tr
		}
		fmt.Printf("streaming replay from %s\n", name)
		injected, err = hf.Replay(src, potemkin.WithHalt(halt))
		if err != nil {
			fmt.Fprintf(os.Stderr, "potemkind: replay: %v\n", err)
		}
	default:
		recs, err := hf.GenerateTrace(*duration, *rate)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("synthesized %d packets over %v at %.0f pps\n", len(recs), *duration, *rate)
		injected, _ = hf.Replay(potemkin.SliceSource(recs), potemkin.WithHalt(halt))
	}
	if interrupted.Load() {
		fmt.Println("\ninterrupted: flushing writers and reporting partial results")
	}
	publishSnap()

	st := hf.Stats()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("\nfinal after %v simulated:\n", st.Now.Truncate(time.Millisecond))
	fmt.Printf("  injected packets      %d\n", injected)
	fmt.Printf("  delivered to VMs      %d\n", st.DeliveredToVM)
	fmt.Printf("  bindings created      %d\n", st.BindingsCreated)
	fmt.Printf("  bindings recycled     %d\n", st.BindingsRecycled)
	fmt.Printf("  peak live VMs         %d\n", st.PeakVMs)
	fmt.Printf("  live VMs now          %d\n", st.LiveVMs)
	fmt.Printf("  infected VMs          %d (detector flagged %d)\n", st.InfectedVMs, st.DetectedInfected)
	fmt.Printf("  outbound: to-source=%d dns=%d reflected=%d dropped=%d\n",
		st.OutboundToSource, st.DNSProxied, st.OutboundReflected, st.OutboundDropped)
	fmt.Printf("  spawn failures        %d\n", st.SpawnFailures)
	fmt.Printf("  farm memory in use    %d MiB across %d servers\n", st.MemoryInUse>>20, *servers)

	if wireStats != nil {
		ig := wireStats.Ingest
		tab := metrics.NewTable("\nwire ingest",
			"datagrams", "decap-errors", "queue-drops", "seq-gaps", "delivered", "clamped", "queue-hwm")
		tab.AddRow(ig.Received, ig.FrameErrors, ig.Dropped,
			ig.SeqGaps, ig.Delivered, ig.Clamped, ig.QueueHWM)
		tab.Render(os.Stdout)
	}

	var gt guest.Stats
	if eng := hf.Internals().Engine; eng != nil {
		gt = eng.GuestTotals()
	} else {
		gt = hf.Internals().Farm.GuestTotals()
	}
	fmt.Printf("  guest activity (live VMs): conns=%d established=%d app-responses=%d dns=%d scans-out=%d\n",
		gt.ConnsAccepted, gt.ConnsEstablished, gt.AppResponses, gt.DNSQueries, gt.ScansOut)

	if tr := hf.Tracer(); tr != nil {
		tab := metrics.NewTable("\nper-stage latency (ms)",
			"stage", "count", "mean", "p50", "p90", "p99", "max")
		for _, name := range tr.StageNames() {
			h := tr.Stage(name)
			tab.AddRow(name, h.Count(), h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
		}
		tab.Render(os.Stdout)
	}
	if *snapOut != "" {
		b, err := hf.MarshalSnapshot()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*snapOut, b, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\n[snapshot] %s\n", *snapOut)
	}
}

// emitScorecard renders card on stdout (suppressed under -json, which
// owns stdout for the stats object) and writes the deterministic JSON
// form to path when set.
func emitScorecard(card *potemkin.Scorecard, path string, jsonOut bool) error {
	if !jsonOut {
		card.Render(os.Stdout)
	}
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := card.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("[scorecard] %s\n", path)
	}
	return nil
}

// moreThanOne reports whether more than one of the flags is set.
func moreThanOne(flags ...bool) bool {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n > 1
}

// nameOr returns a if non-empty, else b.
func nameOr(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// varFunc adapts a closure to expvar.Var, returning pre-marshaled JSON
// (expvar.Func would re-marshal, and must not touch sim state).
type varFunc func() string

func (f varFunc) String() string { return f() }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "potemkind: "+format+"\n", args...)
	os.Exit(1)
}
