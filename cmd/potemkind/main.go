// Command potemkind runs a simulated Potemkin honeyfarm against a
// telescope feed — either a trace file recorded by cmd/telescope or a
// freshly synthesized feed — and reports the gateway, farm, and memory
// statistics the paper's scalability argument is made of.
//
// Usage:
//
//	potemkind [flags]
//
//	-space CIDR      monitored address space (default 10.5.0.0/16)
//	-trace FILE      replay a recorded trace instead of synthesizing
//	-duration D      length of synthesized feed (default 2m)
//	-rate PPS        synthesized feed packet rate (default 200)
//	-servers N       physical servers (default 4)
//	-policy NAME     open|drop-all|reflect-source|internal-reflect
//	-idle D          VM idle-recycling timeout (default 60s; 0 disables)
//	-guest NAME      winxp|sqlserver|linux
//	-seed N          simulation seed
//	-interval D      progress report interval in simulated time (default 10s)
//	-trace-out F     write the binding-lifecycle span trace (JSONL; see cmd/tracetool)
//	-trace-chrome F  write the trace in Chrome trace-event format (Perfetto)
//	-debug-addr A    serve /snapshot, expvar and pprof on this HTTP address
//	-snapshot-out F  write the final JSON snapshot
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync/atomic"
	"time"

	"potemkin"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

func main() {
	var (
		space    = flag.String("space", "10.5.0.0/16", "monitored address space (CIDR)")
		traceF   = flag.String("trace", "", "trace file to replay (default: synthesize)")
		duration = flag.Duration("duration", 2*time.Minute, "synthesized feed duration")
		rate     = flag.Float64("rate", 200, "synthesized feed rate (packets/sec)")
		servers  = flag.Int("servers", 4, "physical servers")
		shards   = flag.Int("shards", 1, "gateway instances partitioning the monitored space")
		policy   = flag.String("policy", "internal-reflect", "containment policy")
		idle     = flag.Duration("idle", 60*time.Second, "VM idle-recycling timeout (0 disables)")
		guestN   = flag.String("guest", "winxp", "guest personality")
		profileF = flag.String("profile", "", "load a custom guest personality from a JSON profile file")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		interval = flag.Duration("interval", 10*time.Second, "progress interval (simulated)")
		eventLog = flag.String("eventlog", "", "write the gateway's forensic event log (JSONL) to this file")
		capture  = flag.String("capture", "", "record all gateway traffic into trace files under this directory")
		ckptDir  = flag.String("checkpoints", "", "save delta checkpoints of detected VMs into this directory")
		jsonOut  = flag.Bool("json", false, "emit the final stats as JSON on stdout")
		traceOut = flag.String("trace-out", "", "write the binding-lifecycle span trace (JSONL) to this file")
		traceChr = flag.String("trace-chrome", "", "write the trace in Chrome trace-event format (Perfetto-loadable) to this file")
		debug    = flag.String("debug-addr", "", "serve /snapshot, /debug/vars (expvar) and /debug/pprof on this address while running")
		snapOut  = flag.String("snapshot-out", "", "write the final JSON snapshot to this file")
	)
	flag.Parse()

	opts := potemkin.Options{
		Seed:           *seed,
		MonitoredSpace: *space,
		Servers:        *servers,
		GatewayShards:  *shards,
		IdleTimeout:    *idle,
	}
	if *idle == 0 {
		opts.IdleTimeout = -1
	}
	switch *policy {
	case "open":
		opts.Policy = potemkin.Open
	case "drop-all":
		opts.Policy = potemkin.DropAll
	case "reflect-source":
		opts.Policy = potemkin.ReflectSource
	case "internal-reflect":
		opts.Policy = potemkin.InternalReflect
	default:
		fatalf("unknown policy %q", *policy)
	}
	switch *guestN {
	case "winxp":
		opts.Guest = potemkin.GuestWindowsXP
	case "sqlserver":
		opts.Guest = potemkin.GuestSQLServer
	case "linux":
		opts.Guest = potemkin.GuestLinuxServer
	default:
		fatalf("unknown guest %q", *guestN)
	}
	if *profileF != "" {
		f, err := os.Open(*profileF)
		if err != nil {
			fatalf("%v", err)
		}
		p, err := guest.LoadProfile(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		opts.GuestProfile = p
		fmt.Printf("loaded guest personality %q from %s\n", p.Name, *profileF)
	}
	opts.OnDetected = func(addr string, n int) {
		fmt.Printf("  !! scan detector: VM %s attempted %d distinct targets\n", addr, n)
	}
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.EventLog = f
	}
	opts.CaptureDir = *capture
	opts.CheckpointDir = *ckptDir
	// Trace files are registered for closing before the honeyfarm so the
	// deferred hf.Close() (which flushes open spans and terminates the
	// Chrome array) runs first.
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.TraceOut = f
	}
	if *traceChr != "" {
		f, err := os.Create(*traceChr)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opts.TraceChrome = f
	}

	hf, err := potemkin.New(opts)
	if err != nil {
		fatalf("%v", err)
	}
	defer hf.Close()

	var recs []potemkin.TraceRecord
	if *traceF != "" {
		f, err := os.Open(*traceF)
		if err != nil {
			fatalf("%v", err)
		}
		all, err := telescope.ReadAll(f)
		f.Close()
		if err != nil {
			fatalf("reading %s: %v", *traceF, err)
		}
		recs = all
		fmt.Printf("replaying %d packets from %s\n", len(recs), *traceF)
	} else {
		recs, err = hf.GenerateTrace(*duration, *rate)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("synthesized %d packets over %v at %.0f pps\n", len(recs), *duration, *rate)
	}

	// The live debug endpoint must never touch simulation state from the
	// HTTP goroutine (the sim is single-threaded): the periodic progress
	// callback below marshals a snapshot on the sim thread and stores the
	// bytes in an atomic pointer; HTTP handlers serve the stored bytes.
	var lastSnap atomic.Pointer[[]byte]
	publishSnap := func() {
		if b, err := hf.MarshalSnapshot(); err == nil {
			lastSnap.Store(&b)
		}
	}
	publishSnap()
	if *debug != "" {
		expvar.Publish("potemkin", varFunc(func() string {
			if b := lastSnap.Load(); b != nil {
				return string(*b)
			}
			return "{}"
		}))
		http.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if b := lastSnap.Load(); b != nil {
				w.Write(*b)
			} else {
				w.Write([]byte("{}"))
			}
		})
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				fmt.Fprintf(os.Stderr, "potemkind: debug endpoint: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoint on http://%s (/snapshot, /debug/vars, /debug/pprof)\n", *debug)
	}

	// Progress reporting rides the simulation clock.
	in := hf.Internals()
	in.Kernel.Every(*interval, func(now sim.Time) {
		snap := hf.Snapshot()
		line := fmt.Sprintf("  t=%-8v live=%-5d infected=%-4d bindings=%d recycled=%d pending=%d mem=%dMiB",
			time.Duration(now).Truncate(time.Millisecond), snap.LiveVMs, snap.InfectedVMs,
			snap.BindingsCreated, snap.BindingsRecycled, snap.PendingQueued,
			snap.MemoryInUseBytes>>20)
		if snap.CloneMs.Count > 0 {
			line += fmt.Sprintf(" clone[p50=%.1fms p99=%.1fms]", snap.CloneMs.P50, snap.CloneMs.P99)
		}
		fmt.Println(line)
		publishSnap()
	})

	injected := hf.ReplayTrace(recs)
	publishSnap()

	st := hf.Stats()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("\nfinal after %v simulated:\n", st.Now.Truncate(time.Millisecond))
	fmt.Printf("  injected packets      %d\n", injected)
	fmt.Printf("  delivered to VMs      %d\n", st.DeliveredToVM)
	fmt.Printf("  bindings created      %d\n", st.BindingsCreated)
	fmt.Printf("  bindings recycled     %d\n", st.BindingsRecycled)
	fmt.Printf("  peak live VMs         %d\n", st.PeakVMs)
	fmt.Printf("  live VMs now          %d\n", st.LiveVMs)
	fmt.Printf("  infected VMs          %d (detector flagged %d)\n", st.InfectedVMs, st.DetectedInfected)
	fmt.Printf("  outbound: to-source=%d dns=%d reflected=%d dropped=%d\n",
		st.OutboundToSource, st.DNSProxied, st.OutboundReflected, st.OutboundDropped)
	fmt.Printf("  spawn failures        %d\n", st.SpawnFailures)
	fmt.Printf("  farm memory in use    %d MiB across %d servers\n", st.MemoryInUse>>20, *servers)

	gt := hf.Internals().Farm.GuestTotals()
	fmt.Printf("  guest activity (live VMs): conns=%d established=%d app-responses=%d dns=%d scans-out=%d\n",
		gt.ConnsAccepted, gt.ConnsEstablished, gt.AppResponses, gt.DNSQueries, gt.ScansOut)

	if tr := hf.Tracer(); tr != nil {
		tab := metrics.NewTable("\nper-stage latency (ms)",
			"stage", "count", "mean", "p50", "p90", "p99", "max")
		for _, name := range tr.StageNames() {
			h := tr.Stage(name)
			tab.AddRow(name, h.Count(), h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
		}
		tab.Render(os.Stdout)
	}
	if *snapOut != "" {
		b, err := hf.MarshalSnapshot()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*snapOut, b, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\n[snapshot] %s\n", *snapOut)
	}
}

// varFunc adapts a closure to expvar.Var, returning pre-marshaled JSON
// (expvar.Func would re-marshal, and must not touch sim state).
type varFunc func() string

func (f varFunc) String() string { return f() }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "potemkind: "+format+"\n", args...)
	os.Exit(1)
}
