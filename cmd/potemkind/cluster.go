package main

// Cluster mode: -coordinator runs the epoch barrier and feed driver;
// -worker hosts a subset of the shard domains. Both sides are launched
// with the same scenario flags (SPMD) and verify agreement during the
// handshake, so a worker started with a different seed or policy is
// rejected instead of silently diverging. The merged results are
// byte-identical to a single-process run of the same scenario.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"potemkin"
	"potemkin/internal/cluster"
	"potemkin/internal/core"
	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/ingest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/scenario"
	"potemkin/internal/score"
	"potemkin/internal/telescope"
)

// clusterScenario is everything both cluster roles must agree on.
type clusterScenario struct {
	Space    string
	Servers  int
	Shards   int
	Parallel bool // workers run their domains on goroutines
	Policy   string
	Idle     time.Duration
	Profile  *guest.Profile
	Seed     uint64
	// Campaign, when non-nil, runs a deterministic attacker scenario
	// (-scenario): it derives the guest profile and lateral-movement
	// topology, the coordinator feeds its compiled packet plan, and the
	// run is scored into an effectiveness scorecard. Both roles compile
	// the same plan from the same flags (SPMD).
	Campaign *potemkin.Scenario
}

// compile builds the campaign's packet plan. Deterministic: both roles,
// and every retry, compile identical plans from the same scenario.
func (sc clusterScenario) compile() (*scenario.Plan, error) {
	space, err := netsim.ParsePrefix(sc.Space)
	if err != nil {
		return nil, fmt.Errorf("invalid -space %q: %v", sc.Space, err)
	}
	return scenario.Compile(sc.Campaign, sc.Seed, space)
}

// engineConfig builds the shard engine configuration exactly as the
// potemkin facade would for the same Options, so cluster results stay
// byte-comparable with single-process runs.
func (sc clusterScenario) engineConfig() (core.ShardEngineConfig, error) {
	space, err := netsim.ParsePrefix(sc.Space)
	if err != nil {
		return core.ShardEngineConfig{}, fmt.Errorf("invalid -space %q: %v", sc.Space, err)
	}
	fc := farm.DefaultConfig()
	fc.Servers = sc.Servers
	fc.Profile = sc.Profile
	gc := gateway.DefaultConfig()
	gc.Space = space
	switch sc.Policy {
	case "open":
		gc.Policy = gateway.PolicyOpen
	case "drop-all":
		gc.Policy = gateway.PolicyDropAll
	case "reflect-source":
		gc.Policy = gateway.PolicyReflectSource
	case "internal-reflect":
		gc.Policy = gateway.PolicyInternalReflect
	default:
		return core.ShardEngineConfig{}, fmt.Errorf("unknown policy %q", sc.Policy)
	}
	gc.IdleTimeout = sc.Idle // 0 disables, matching Options.IdleTimeout < 0
	if sc.Campaign != nil {
		// Match the facade's scenario wiring exactly: the campaign
		// derives the guest personality and the P2P target picker.
		plan, err := sc.compile()
		if err != nil {
			return core.ShardEngineConfig{}, err
		}
		fc.Profile = plan.Profile
		fc.PickTargetFor = plan.PickTargetFor()
	}
	return core.ShardEngineConfig{
		Shards:   sc.Shards,
		Parallel: sc.Parallel,
		Seed:     sc.Seed,
		Gateway:  gc,
		Farm:     fc,
	}, nil
}

// tag canonically renders the scenario; coordinator and workers must
// produce the same string or the handshake fails.
func (sc clusterScenario) tag() string {
	t := fmt.Sprintf("space=%s servers=%d shards=%d policy=%s idle=%s guest=%s seed=%d",
		sc.Space, sc.Servers, sc.Shards, sc.Policy, sc.Idle, sc.Profile.Name, sc.Seed)
	if sc.Campaign != nil {
		// The content hash catches roles launched with divergent scenario
		// files that happen to share a name.
		t += fmt.Sprintf(" scenario=%s#%016x", sc.Campaign.Name, sc.Campaign.Hash())
	}
	return t
}

// clusterLogf writes cluster progress to stderr, keeping stdout clean
// for -json output.
func clusterLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "potemkind: "+format+"\n", args...)
}

type coordinatorRun struct {
	scenario clusterScenario
	addr     string
	workers  int

	heartbeat        time.Duration
	heartbeatTimeout time.Duration
	recoveryWait     time.Duration

	// Feed selection (mirrors the single-process modes minus -listen).
	traceFile string
	pcapFile  string
	duration  time.Duration
	rate      float64

	eventLog *os.File
	traceOut *os.File
	epochLog *os.File
	jsonOut  bool
	snapOut  string
	// scorecardOut receives the campaign scorecard (JSON) when the run
	// carries a -scenario.
	scorecardOut string
	// debugAddr serves the farm-wide /metrics and /cluster health views
	// (plus expvar/pprof) while the run is live.
	debugAddr string
}

// runClusterCoordinator drives one cluster run end to end and returns
// the process exit code. A SIGINT/SIGTERM halts the feed at the next
// epoch boundary and still merges and flushes everything collected so
// far — same graceful-flush contract as single-process mode.
func runClusterCoordinator(r coordinatorRun) int {
	ec, err := r.scenario.engineConfig()
	if err != nil {
		clusterLogf("%v", err)
		return 1
	}
	if r.eventLog != nil {
		ec.EventLog = r.eventLog
	}
	if r.traceOut != nil {
		ec.TraceOut = r.traceOut
	}
	if r.epochLog != nil {
		ec.EpochLog = r.epochLog
	}
	var plan *scenario.Plan
	if r.scenario.Campaign != nil {
		plan, err = r.scenario.compile()
		if err != nil {
			clusterLogf("%v", err)
			return 1
		}
	}
	if r.debugAddr != "" || r.epochLog != nil || plan != nil {
		// The registry turns on worker-side telemetry too (the assign
		// message carries the flag); heartbeats piggyback the snapshots
		// the farm-wide /metrics merge is built from. A scenario run
		// needs it unconditionally: the scorecard is computed from the
		// workers' merged final snapshots.
		ec.Metrics = metrics.NewRegistry()
	}
	c, err := cluster.New(cluster.Config{
		Engine:            ec,
		ConfigTag:         r.scenario.tag(),
		ListenAddr:        r.addr,
		Workers:           r.workers,
		HeartbeatInterval: r.heartbeat,
		HeartbeatTimeout:  r.heartbeatTimeout,
		RecoveryWait:      r.recoveryWait,
		RecoveryLog:       os.Stderr,
		Logf:              clusterLogf,
	})
	if err != nil {
		clusterLogf("%v", err)
		return 1
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		clusterLogf("%v", err)
		return 1
	}
	fmt.Printf("coordinator on %s: %d shards across %d workers, scenario %q\n",
		c.Addr(), r.scenario.Shards, r.workers, r.scenario.tag())
	if r.debugAddr != "" {
		// Both handlers read only atomics published by the driver and
		// read loops, so serving them from HTTP goroutines mid-run is
		// safe (same rule as the single-process /metrics).
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(c.MetricsText())
		})
		http.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(c.HealthJSON())
		})
		go func() {
			if err := http.ListenAndServe(r.debugAddr, nil); err != nil {
				clusterLogf("debug endpoint: %v", err)
			}
		}()
		fmt.Printf("debug endpoint on http://%s (/metrics, /cluster, /debug/pprof)\n", r.debugAddr)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var interrupted atomic.Bool
	go func() {
		<-ctx.Done()
		interrupted.Store(true)
	}()

	if err := c.WaitReady(5 * time.Minute); err != nil {
		clusterLogf("%v", err)
		return 1
	}
	fmt.Printf("workers ready; starting feed\n")

	var src telescope.Source
	// The feed epilogue: how long the farm keeps simulating after the
	// last packet. Scenario runs use the campaign's settle window so the
	// scorecard sees the same horizon as a facade run.
	epilogue := time.Millisecond
	switch {
	case plan != nil:
		src = &telescope.SliceSource{Recs: plan.Records}
		epilogue = plan.Settle
		fmt.Printf("scenario %q: replaying %d campaign packets, settling %v\n",
			r.scenario.Campaign.Name, len(plan.Records), plan.Settle)
	case r.traceFile != "":
		f, err := os.Open(r.traceFile)
		if err != nil {
			clusterLogf("%v", err)
			return 1
		}
		defer f.Close()
		tr, err := telescope.NewReader(f)
		if err != nil {
			clusterLogf("reading %s: %v", r.traceFile, err)
			return 1
		}
		src = tr
		fmt.Printf("streaming replay from %s\n", r.traceFile)
	case r.pcapFile != "":
		f, err := os.Open(r.pcapFile)
		if err != nil {
			clusterLogf("%v", err)
			return 1
		}
		defer f.Close()
		ps, err := ingest.NewPcapSource(f)
		if err != nil {
			clusterLogf("reading %s: %v", r.pcapFile, err)
			return 1
		}
		src = ps
		fmt.Printf("streaming replay from %s\n", r.pcapFile)
	default:
		gcfg := telescope.DefaultGenConfig()
		gcfg.Space = ec.Gateway.Space
		gcfg.Duration = r.duration
		gcfg.Rate = r.rate
		gcfg.Seed = r.scenario.Seed
		recs, err := telescope.Generate(gcfg)
		if err != nil {
			clusterLogf("%v", err)
			return 1
		}
		fmt.Printf("synthesized %d packets over %v at %.0f pps\n", len(recs), r.duration, r.rate)
		src = &telescope.SliceSource{Recs: recs}
	}

	injected, rerr := c.Replay(src, interrupted.Load, epilogue)
	if interrupted.Load() {
		fmt.Println("\ninterrupted: flushing writers and reporting partial results")
	}
	res, err := c.Results()
	if res == nil {
		clusterLogf("%v", err)
		return 1
	}
	// Flush collected output even when the run degraded: partial
	// results are the whole point of the clean-degrade path.
	if r.eventLog != nil {
		r.eventLog.Write(res.Events)
	}
	if r.traceOut != nil {
		r.traceOut.Write(res.Trace)
	}
	exit := 0
	if rerr != nil {
		clusterLogf("replay: %v", rerr)
		exit = 1
	} else if err != nil {
		clusterLogf("results: %v", err)
		exit = 1
	}
	for _, ev := range c.RecoveryEvents() {
		fmt.Fprintf(os.Stderr, "potemkind: recovery: %s\n", ev)
	}
	if plan != nil {
		// The merged worker snapshots carry the same counters a single
		// process would have accumulated, so this card is byte-identical
		// to the facade's for the same scenario, seed, and shard count.
		card := score.Compute(plan.Facts(r.scenario.Policy), res.Metrics)
		if err := emitScorecard(card, r.scorecardOut, r.jsonOut); err != nil {
			clusterLogf("%v", err)
			exit = 1
		}
	}

	st := clusterStats(res)
	if r.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			clusterLogf("%v", err)
			return 1
		}
		return exit
	}
	fmt.Printf("\nfinal after %v simulated (%d recoveries):\n", st.Now.Truncate(time.Millisecond), c.Recoveries())
	fmt.Printf("  injected packets      %d\n", injected)
	fmt.Printf("  delivered to VMs      %d\n", st.DeliveredToVM)
	fmt.Printf("  bindings created      %d\n", st.BindingsCreated)
	fmt.Printf("  bindings recycled     %d\n", st.BindingsRecycled)
	fmt.Printf("  peak live VMs         %d\n", st.PeakVMs)
	fmt.Printf("  live VMs now          %d\n", st.LiveVMs)
	fmt.Printf("  infected VMs          %d (detector flagged %d)\n", st.InfectedVMs, st.DetectedInfected)
	fmt.Printf("  outbound: to-source=%d dns=%d reflected=%d dropped=%d\n",
		st.OutboundToSource, st.DNSProxied, st.OutboundReflected, st.OutboundDropped)
	fmt.Printf("  spawn failures        %d\n", st.SpawnFailures)
	fmt.Printf("  farm memory in use    %d MiB across %d servers\n", st.MemoryInUse>>20, r.scenario.Servers)
	if r.snapOut != "" {
		b, err := json.MarshalIndent(st, "", "  ")
		if err == nil {
			err = os.WriteFile(r.snapOut, b, 0o644)
		}
		if err != nil {
			clusterLogf("%v", err)
			return 1
		}
		fmt.Printf("\n[snapshot] %s\n", r.snapOut)
	}
	return exit
}

// clusterStats shapes merged cluster results as the facade's Stats so
// -json output is directly comparable with a single-process run.
func clusterStats(res *cluster.Results) potemkin.Stats {
	return potemkin.Stats{
		Now:               time.Duration(res.Now),
		LiveVMs:           res.LiveVMs,
		PeakVMs:           res.Farm.PeakLiveVMs,
		InfectedVMs:       res.InfectedVMs,
		BindingsCreated:   res.Gateway.BindingsCreated,
		BindingsRecycled:  res.Gateway.BindingsRecycled,
		InboundPackets:    res.Gateway.InboundPackets,
		DeliveredToVM:     res.Gateway.DeliveredToVM,
		OutboundDropped:   res.Gateway.OutDropped,
		OutboundToSource:  res.Gateway.OutToSource,
		OutboundReflected: res.Gateway.OutReflected,
		DNSProxied:        res.Gateway.OutDNSProxied,
		SpawnFailures:     res.Gateway.SpawnFailures + res.Farm.SpawnFailures,
		DetectedInfected:  res.Gateway.DetectedInfected,
		ScanFiltered:      res.Gateway.ScanFiltered,
		MemoryInUse:       res.Memory,
	}
}

// runClusterWorker serves shards until the coordinator shuts the run
// down, and returns the process exit code. The first SIGINT/SIGTERM is
// deferred to the coordinator (which owns the run's lifecycle and the
// flush of everything this worker has buffered); a second one forces
// exit.
func runClusterWorker(scenario clusterScenario, addr, name string, heartbeat time.Duration) int {
	ec, err := scenario.engineConfig()
	if err != nil {
		clusterLogf("%v", err)
		return 1
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		clusterLogf("worker %s: interrupt deferred — the coordinator drives shutdown and flushes buffered output; ^C again to force", name)
		<-sigs
		os.Exit(1)
	}()
	err = cluster.RunWorker(cluster.WorkerConfig{
		Addr:              addr,
		Engine:            ec,
		ConfigTag:         scenario.tag(),
		Name:              name,
		HeartbeatInterval: heartbeat,
		// Die as abruptly as a SIGKILL: the whole point of the injected
		// fault is exercising the coordinator's crash recovery.
		OnKill: func(worker int) {
			clusterLogf("worker %s: killed by injected fault (worker slot %d)", name, worker)
			os.Exit(137)
		},
		Logf: clusterLogf,
	})
	if err != nil {
		clusterLogf("worker %s: %v", name, err)
		return 1
	}
	clusterLogf("worker %s: clean shutdown", name)
	return 0
}
