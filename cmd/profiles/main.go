// Command profiles lists the stock guest personalities and exports
// them as JSON templates for customization (see potemkind -profile).
//
// Usage:
//
//	profiles list
//	profiles dump NAME [> custom.json]
package main

import (
	"fmt"
	"os"

	"potemkin/internal/guest"
	"potemkin/internal/netsim"
)

func stock() map[string]*guest.Profile {
	return map[string]*guest.Profile{
		"winxp":                guest.WindowsXP(),
		"sqlserver":            guest.SQLServer(),
		"linux":                guest.LinuxServer(),
		"winxp-multistage":     guest.MultiStage(netsim.MustParseAddr("66.6.6.6")),
		"winxp-multistage-dns": guest.MultiStageDNS("update.evil.example"),
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for name, p := range stock() {
			vuln := "hardened"
			for _, s := range p.Services {
				if s.Vulnerable {
					vuln = fmt.Sprintf("vulnerable on %v/%d", s.Proto, s.Port)
				}
			}
			fmt.Printf("%-22s ttl=%-4d services=%-2d %s\n", name, p.TTL, len(p.Services), vuln)
		}
	case "dump":
		if len(os.Args) < 3 {
			usage()
		}
		p, ok := stock()[os.Args[2]]
		if !ok {
			fmt.Fprintf(os.Stderr, "profiles: unknown profile %q (try 'profiles list')\n", os.Args[2])
			os.Exit(1)
		}
		if err := guest.SaveProfile(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "profiles: %v\n", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: profiles {list | dump NAME}")
	os.Exit(2)
}
