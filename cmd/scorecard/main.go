// Command scorecard renders and merges the effectiveness scorecards a
// scenario run writes (potemkind -scenario ... -scorecard-out FILE, or
// the potemkin facade's RunScenario + WriteJSON).
//
// Usage:
//
//	scorecard [flags] FILE...
//
//	-merge   union the cards into one (counters add, first detection
//	         takes the earliest, rates rederive); all cards must come
//	         from partitions of the same logical run
//	-json    emit deterministic JSON instead of the human rendering
//
// With several files and no -merge, each card renders in argument
// order. Merging cards from different runs (different scenario, seed,
// space, policy, or guest) is an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"potemkin/internal/score"
)

func main() {
	merge := flag.Bool("merge", false, "merge all cards into one (they must describe the same run)")
	jsonOut := flag.Bool("json", false, "emit deterministic JSON instead of the human rendering")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: scorecard [-merge] [-json] FILE...")
		os.Exit(2)
	}

	cards := make([]*score.Scorecard, 0, flag.NArg())
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		var card score.Scorecard
		if err := json.Unmarshal(b, &card); err != nil {
			fatalf("%s: %v", path, err)
		}
		cards = append(cards, &card)
	}
	if *merge {
		merged, err := score.Merge(cards...)
		if err != nil {
			fatalf("%v", err)
		}
		cards = cards[:0]
		cards = append(cards, merged)
	}
	for i, card := range cards {
		if *jsonOut {
			if err := card.WriteJSON(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		card.Render(os.Stdout)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scorecard: "+format+"\n", args...)
	os.Exit(1)
}
