GO ?= go
FUZZTIME ?= 10s

.PHONY: check build test race vet fuzz bench bench-parallel bench-telemetry bench-all alloc-gate trace-demo apicheck api-snapshot scenarios

# The full pre-merge gate: static checks, the race detector over every
# package, and a short pass over every fuzz target.
check: vet race fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Each fuzz target needs its own invocation: `go test -fuzz` refuses to
# run more than one target per package.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadAll -fuzztime=$(FUZZTIME) ./internal/telescope
	$(GO) test -run=^$$ -fuzz=FuzzParse$$ -fuzztime=$(FUZZTIME) ./internal/dns
	$(GO) test -run=^$$ -fuzz=FuzzResolverServe -fuzztime=$(FUZZTIME) ./internal/dns
	$(GO) test -run=^$$ -fuzz=FuzzDecap -fuzztime=$(FUZZTIME) ./internal/gre
	$(GO) test -run=^$$ -fuzz=FuzzReadCheckpoint -fuzztime=$(FUZZTIME) ./internal/vmm
	$(GO) test -run=^$$ -fuzz=FuzzCheckpointRead -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME) ./internal/netsim
	$(GO) test -run=^$$ -fuzz=FuzzPcapRead -fuzztime=$(FUZZTIME) ./internal/ingest

# The core fast-path benchmarks (store alloc, CoW write, gateway scrub,
# flash clone, wire ingest, shard replay), compared against the
# recorded pre-slab baseline and written to BENCH_core.json as
# before/after ns/op + allocs/op. This is the single documented way to
# regenerate BENCH_core.json; -require makes the run fail loudly if a
# rename or pattern typo silently drops a benchmark.
bench:
	( $(GO) test -run '^$$' -bench 'BenchmarkE1FlashClone$$|BenchmarkE2DeltaVirt$$|BenchmarkE4Gateway|BenchmarkAblation|BenchmarkE11WireIngest$$|BenchmarkShardReplay' -benchmem -benchtime 1s . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkIngestDecap$$|BenchmarkWireSenderEncap$$' -benchmem -benchtime 1s ./internal/ingest ) \
		| $(GO) run ./cmd/benchjson -baseline results/bench_baseline.json -out BENCH_core.json \
			-require BenchmarkE1FlashClone,BenchmarkE2DeltaVirt,BenchmarkAblationScrub,BenchmarkE11WireIngest,BenchmarkShardReplaySequential,BenchmarkShardReplayParallel,BenchmarkIngestDecap,BenchmarkWireSenderEncap

# The multicore scaling table: the shard-replay pair at GOMAXPROCS
# 1/2/4, merged into BENCH_core.json's "multicore" section with the
# host CPU count recorded (the parallel/sequential ratio is only
# meaningful when host_cpus covers the -cpu values).
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkShardReplay(Sequential|Parallel)$$' -benchmem -benchtime 1s -cpu 1,2,4 . \
		| $(GO) run ./cmd/benchjson -multicore -out BENCH_core.json \
			-require BenchmarkShardReplaySequential,BenchmarkShardReplayParallel \
			-note "shard-replay pair at GOMAXPROCS 1/2/4; ratios are only meaningful when host_cpus >= GOMAXPROCS — with fewer cores parallel pays barrier overhead without real concurrency"

# The parallel-allocation gate: one measured pass over the shard-replay
# pair; fails if parallel allocs/op exceed sequential by more than 5%.
alloc-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkShardReplay(Sequential|Parallel)$$' -benchmem -benchtime 1x -count 1 . \
		| bash scripts/alloc_gate.sh

# The telemetry-off overhead gate: the hot-path benchmarks with
# Options.Metrics unset (the default), i.e. nil instrument handles on
# every instrumented site. Compare against the recorded samples in
# BENCH_trace.json — medians are expected within the noise band (≤2%).
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkE1FlashClone$$|BenchmarkE4GatewayMixed$$|BenchmarkShardReplaySequential$$' -benchtime 0.3s -count 5 .

bench-all:
	$(GO) test -bench . -benchmem ./...

# The public facade API is frozen in api.txt (the `go doc -all` output
# of the root package). apicheck fails when the surface drifts without
# the snapshot being regenerated — CI runs it, so API changes are
# always a reviewed diff. After an intentional change, run
# `make api-snapshot` and commit the result.
apicheck:
	@$(GO) doc -all . > /tmp/potemkin-api.txt
	@diff -u api.txt /tmp/potemkin-api.txt \
		|| { echo "apicheck: public API drifted from api.txt; run 'make api-snapshot' and commit"; exit 1; }
	@echo "apicheck: public API matches api.txt"

api-snapshot:
	$(GO) doc -all . > api.txt

# Run every shipped scenario family through all three execution modes
# (sequential, -parallel, cluster) and assert the effectiveness
# scorecards are byte-identical — the scenario engine's end-to-end gate.
scenarios:
	bash scripts/scenario_smoke.sh

# Produce a sample Chrome trace from the outbreak example: load
# outbreak.trace.json in Perfetto (ui.perfetto.dev) or chrome://tracing
# to see every binding's bind -> clone -> active -> recycle timeline.
trace-demo:
	$(GO) run ./examples/outbreak -chrome-trace outbreak.trace.json
