#!/usr/bin/env bash
# Live-parallel-ingest smoke test: run potemkind with -parallel AND
# -listen (the combination that used to be rejected), flood it with real
# GRE-over-UDP traffic from floodgen, capture the injected feed with
# -wire-pcap, then replay the capture on an identically-configured
# parallel honeyfarm. The final JSON stats of the live run and its
# replay must be byte-identical — a live parallel run is exactly
# re-simulable from its capture artifact. The live run's epoch timeline
# must also show the ingress-frame accounting in tracetool -epochs.
#
# Usage: scripts/wire_parallel_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"

seed=7
shards=4
servers=4
port=$((49640 + RANDOM % 1000))
addr="127.0.0.1:$port"
common=(-parallel -shards "$shards" -servers "$servers" -seed "$seed")

echo "== building potemkind, floodgen, and tracetool"
go build -o "$work/potemkind" ./cmd/potemkind
go build -o "$work/floodgen" ./cmd/floodgen
go build -o "$work/tracetool" ./cmd/tracetool

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

echo "== live -parallel -listen run on $addr"
"$work/potemkind" "${common[@]}" -listen "$addr" -listen-for 8s \
    -wire-pcap "$work/live.pcap" -epoch-log "$work/epochs.jsonl" \
    -json >"$work/live.raw" 2>&1 &
run=$!
pids+=("$run")

# Wait until the listener is bound before flooding (UDP has no
# handshake; frames sent earlier would silently miss the capture).
for _ in $(seq 1 100); do
    grep -q "listening for" "$work/live.raw" 2>/dev/null && break
    if ! kill -0 "$run" 2>/dev/null; then
        echo "FAIL: potemkind exited before listening" >&2
        cat "$work/live.raw" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q "listening for" "$work/live.raw" || {
    echo "FAIL: listener never came up" >&2
    cat "$work/live.raw" >&2
    exit 1
}

echo "== flooding $addr for 3s"
"$work/floodgen" -to "$addr" -duration 3s -rate 500 -report 0 >"$work/flood.out" 2>&1 || {
    echo "FAIL: floodgen exited non-zero" >&2
    cat "$work/flood.out" >&2
    exit 1
}

if ! wait "$run"; then
    echo "FAIL: live run exited non-zero" >&2
    cat "$work/live.raw" >&2
    exit 1
fi

echo "== replaying the capture on an identical parallel honeyfarm"
[ -s "$work/live.pcap" ] || { echo "FAIL: empty capture pcap" >&2; exit 1; }
"$work/potemkind" "${common[@]}" -pcap "$work/live.pcap" -json >"$work/replay.raw" 2>&1 || {
    echo "FAIL: replay run exited non-zero" >&2
    cat "$work/replay.raw" >&2
    exit 1
}

echo "== diffing final stats: live vs replay"
sed -n '/^{/,$p' "$work/live.raw" >"$work/live.json"
sed -n '/^{/,$p' "$work/replay.raw" >"$work/replay.json"
[ -s "$work/live.json" ] || { echo "FAIL: empty live stats JSON" >&2; exit 1; }
if ! diff -u "$work/live.json" "$work/replay.json"; then
    echo "FAIL: live parallel run not reproduced by its capture" >&2
    exit 1
fi

# The live run must not have been vacuous: the flood reached the farm.
inbound=$(awk -F'[:,]' '/"InboundPackets"/ { gsub(/[^0-9]/, "", $2); print $2 }' "$work/live.json")
[ "${inbound:-0}" -gt 0 ] 2>/dev/null || {
    echo "FAIL: live run saw no inbound packets (got '$inbound')" >&2
    cat "$work/live.json" >&2
    exit 1
}

echo "== tracetool -epochs shows ingress accounting"
[ -s "$work/epochs.jsonl" ] || { echo "FAIL: empty epoch timeline" >&2; exit 1; }
"$work/tracetool" -epochs -top 3 "$work/epochs.jsonl" >"$work/epochs.out"
grep -q "ingress:" "$work/epochs.out" || {
    echo "FAIL: tracetool -epochs missing ingress line" >&2
    cat "$work/epochs.out" >&2
    exit 1
}
ingress=$(awk '/^ingress:/ { print $2 }' "$work/epochs.out")
[ "${ingress:-0}" -gt 0 ] 2>/dev/null || {
    echo "FAIL: epoch timeline recorded no ingress frames (got '$ingress')" >&2
    cat "$work/epochs.out" >&2
    exit 1
}

echo "PASS: live -parallel -listen run byte-identical to its capture replay; $ingress ingress frames profiled"
