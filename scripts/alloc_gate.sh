#!/usr/bin/env bash
# alloc_gate.sh — fail if the parallel shard-replay path allocates more
# than the sequential oracle (beyond a 5% tolerance).
#
# Reads `go test -bench BenchmarkShardReplay... -benchmem` output on
# stdin. The parallel runner's whole point is that epoch exchange,
# cross-shard payloads, and sink appends reuse preallocated storage; a
# parallel allocs/op figure above sequential * 1.05 means a pooling
# regression slipped in.
set -euo pipefail

awk '
    { print }  # pass through so the CI log stays readable
    /^BenchmarkShardReplaySequential/ {
        for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") seq = $i
    }
    /^BenchmarkShardReplayParallel/ {
        for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") par = $i
    }
    END {
        if (seq == "" || par == "") {
            print "alloc-gate: missing benchmark output (need both ShardReplaySequential and ShardReplayParallel with -benchmem)" > "/dev/stderr"
            exit 1
        }
        limit = seq * 1.05
        printf "alloc-gate: sequential %.0f allocs/op, parallel %.0f allocs/op (limit %.0f)\n", seq, par, limit
        if (par + 0 > limit) {
            print "alloc-gate: FAIL — parallel allocates more than sequential * 1.05" > "/dev/stderr"
            exit 1
        }
        print "alloc-gate: OK"
    }
'
