#!/usr/bin/env bash
# Cluster-mode smoke test: a coordinator and two worker processes plus
# one hot standby run a 4-shard scenario over real TCP; one assigned
# worker is SIGKILLed mid-feed; the run must recover onto the standby
# and the merged -json stats must be byte-identical to the
# single-process oracle at the same seed.
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"

seed=5
shards=4
dur=30s
rate=200
addr="127.0.0.1:$((47540 + RANDOM % 1000))"
common=(-shards "$shards" -seed "$seed" -duration "$dur" -rate "$rate")

echo "== building potemkind"
go build -o "$work/potemkind" ./cmd/potemkind

echo "== single-process oracle"
"$work/potemkind" -parallel "${common[@]}" -json >"$work/oracle.raw"

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

echo "== coordinator on $addr + 2 workers + 1 standby"
"$work/potemkind" -coordinator "$addr" -workers 2 "${common[@]}" -json \
    >"$work/cluster.raw" 2>"$work/coord.err" &
coord=$!
pids+=("$coord")

start_worker() {
    "$work/potemkind" -worker "$addr" -name "$1" "${common[@]}" \
        >"$work/$1.out" 2>&1 &
    pids+=("$!")
    echo "$!"
}
# Sequenced startup so the first two connections (the assigned workers)
# are w0 and w1, and w2 is the standby.
victim=$(start_worker w0)
sleep 0.5
start_worker w1 >/dev/null
sleep 0.5
start_worker w2 >/dev/null

echo "== waiting for the feed to start"
for _ in $(seq 1 120); do
    grep -q "starting feed" "$work/cluster.raw" && break
    if ! kill -0 "$coord" 2>/dev/null; then
        echo "FAIL: coordinator died before the feed started" >&2
        cat "$work/coord.err" >&2
        exit 1
    fi
    sleep 0.25
done
grep -q "starting feed" "$work/cluster.raw" || {
    echo "FAIL: feed never started" >&2
    cat "$work/coord.err" >&2
    exit 1
}

sleep 1
echo "== SIGKILL worker w0 (pid $victim) mid-run"
kill -KILL "$victim"

if ! wait "$coord"; then
    echo "FAIL: coordinator exited non-zero" >&2
    cat "$work/coord.err" >&2
    exit 1
fi
wait || true

echo "== asserting recovery happened"
if ! grep -q "crash-detected" "$work/coord.err" || ! grep -q "restore-done" "$work/coord.err"; then
    echo "FAIL: no recovery in coordinator log" >&2
    cat "$work/coord.err" >&2
    exit 1
fi

echo "== diffing merged stats against the oracle"
# Both outputs carry informational lines before the JSON body.
sed -n '/^{/,$p' "$work/oracle.raw" >"$work/oracle.json"
sed -n '/^{/,$p' "$work/cluster.raw" >"$work/cluster.json"
if ! diff -u "$work/oracle.json" "$work/cluster.json"; then
    echo "FAIL: cluster stats differ from single-process oracle" >&2
    exit 1
fi
[ -s "$work/oracle.json" ] || { echo "FAIL: empty oracle JSON" >&2; exit 1; }

echo "PASS: recovered from SIGKILL; stats byte-identical to the oracle"
