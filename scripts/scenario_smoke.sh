#!/usr/bin/env bash
# Scenario-engine smoke test: every shipped scenario family runs through
# potemkind three ways — sequential shard engine, -parallel, and a real
# coordinator + two worker processes over TCP — and the three
# effectiveness scorecards must be byte-identical. This is the
# end-to-end form of the acceptance criterion asserted unit-side in
# scenario_run_test.go and internal/cluster's scorecard test.
#
# Usage: scripts/scenario_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"

seed=9
space="10.5.0.0/22"
shards=2
common=(-space "$space" -shards "$shards" -seed "$seed")

echo "== building potemkind"
go build -o "$work/potemkind" ./cmd/potemkind

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

for family in multistage fingerprint p2p; do
    scen="scenarios/$family.json"
    [ -f "$scen" ] || { echo "FAIL: missing $scen" >&2; exit 1; }
    echo "== scenario $family: sequential"
    "$work/potemkind" "${common[@]}" -scenario "$scen" \
        -scorecard-out "$work/$family.seq.json" >"$work/$family.seq.out"

    echo "== scenario $family: parallel"
    "$work/potemkind" "${common[@]}" -parallel -scenario "$scen" \
        -scorecard-out "$work/$family.par.json" >"$work/$family.par.out"

    echo "== scenario $family: cluster (coordinator + 2 workers)"
    addr="127.0.0.1:$((46540 + RANDOM % 1000))"
    "$work/potemkind" -coordinator "$addr" -workers 2 "${common[@]}" -scenario "$scen" \
        -scorecard-out "$work/$family.clu.json" >"$work/$family.clu.out" 2>"$work/$family.clu.err" &
    coord=$!
    pids+=("$coord")
    sleep 0.5
    "$work/potemkind" -worker "$addr" -name w0 "${common[@]}" -scenario "$scen" \
        >"$work/$family.w0.out" 2>&1 &
    pids+=("$!")
    sleep 0.3
    "$work/potemkind" -worker "$addr" -name w1 "${common[@]}" -scenario "$scen" \
        >"$work/$family.w1.out" 2>&1 &
    pids+=("$!")
    if ! wait "$coord"; then
        echo "FAIL: $family cluster coordinator exited non-zero" >&2
        cat "$work/$family.clu.err" >&2
        exit 1
    fi

    for mode in par clu; do
        if ! diff -u "$work/$family.seq.json" "$work/$family.$mode.json"; then
            echo "FAIL: $family scorecard differs between sequential and $mode" >&2
            exit 1
        fi
    done
    [ -s "$work/$family.seq.json" ] || { echo "FAIL: empty $family scorecard" >&2; exit 1; }
    grep -q '"scenario": "'"$family"'"' "$work/$family.seq.json" || {
        echo "FAIL: $family scorecard does not name its scenario" >&2
        exit 1
    }
    echo "   $family: sequential = parallel = cluster"
done

echo "== rendering with cmd/scorecard"
go run ./cmd/scorecard "$work"/multistage.seq.json >/dev/null
go run ./cmd/scorecard -merge -json "$work"/p2p.seq.json "$work"/p2p.seq.json >/dev/null

echo "PASS: all scenario families score byte-identically across execution modes"
