#!/usr/bin/env bash
# Live-telemetry smoke test: run potemkind with -debug-addr and an
# epoch timeline, scrape /metrics mid-run over real HTTP, and validate
# the exposition is Prometheus-text parseable with the key series
# present. Then prove telemetry does not perturb the simulation: two
# same-seed runs, one with the full telemetry stack and one without,
# must emit byte-identical final JSON stats. Finally the epoch
# timeline must feed tracetool -epochs a barrier-wait profile.
#
# Usage: scripts/metrics_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"

seed=5
shards=4
dur=60s
rate=300
port=$((48640 + RANDOM % 1000))
addr="127.0.0.1:$port"
common=(-parallel -shards "$shards" -seed "$seed" -duration "$dur" -rate "$rate")

echo "== building potemkind and tracetool"
go build -o "$work/potemkind" ./cmd/potemkind
go build -o "$work/tracetool" ./cmd/tracetool

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

echo "== telemetry run on $addr"
"$work/potemkind" "${common[@]}" -debug-addr "$addr" \
    -epoch-log "$work/epochs.jsonl" -json >"$work/telemetry.raw" 2>&1 &
run=$!
pids+=("$run")

echo "== scraping /metrics mid-run"
scrape=""
for _ in $(seq 1 100); do
    if scrape=$(curl -sf "http://$addr/metrics" 2>/dev/null) && [ -n "$scrape" ]; then
        break
    fi
    if ! kill -0 "$run" 2>/dev/null; then
        echo "FAIL: potemkind exited before /metrics came up" >&2
        cat "$work/telemetry.raw" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$scrape" ] || { echo "FAIL: /metrics never served" >&2; exit 1; }
printf '%s\n' "$scrape" >"$work/scrape.prom"

echo "== validating Prometheus text format"
# Every line is either a comment or exactly "series_name value" with a
# numeric value; metric names are [a-zA-Z_:][a-zA-Z0-9_:]* plus an
# optional {quantile="..."} label set.
awk '
/^#/ { next }
/^$/ { next }
{
    if (NF != 2) { print "malformed line (" NF " fields): " $0; bad = 1; next }
    if ($1 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="[0-9.]+"\})?$/) {
        print "bad series name: " $0; bad = 1
    }
    if ($2 !~ /^-?[0-9.]+([eE][-+]?[0-9]+)?$/ && $2 != "+Inf" && $2 != "NaN") {
        print "bad value: " $0; bad = 1
    }
    series++
}
END {
    if (series == 0) { print "no series in exposition"; bad = 1 }
    exit bad
}' "$work/scrape.prom" || { echo "FAIL: exposition not parseable" >&2; exit 1; }

echo "== asserting key series"
for want in \
    "# TYPE gateway_inbound_packets_total counter" \
    "# TYPE farm_live_vms gauge" \
    "# TYPE vmm_clones_total counter" \
    "# TYPE epoch_barrier_wait_ms summary" \
    "epochs_total"; do
    if ! grep -qF "$want" "$work/scrape.prom"; then
        echo "FAIL: /metrics missing '$want'" >&2
        cat "$work/scrape.prom" >&2
        exit 1
    fi
done
# Mid-run, the farm has seen traffic: the inbound counter is positive.
inbound=$(awk '$1 == "gateway_inbound_packets_total" { print $2 }' "$work/scrape.prom")
[ "${inbound:-0}" -gt 0 ] 2>/dev/null || {
    echo "FAIL: gateway_inbound_packets_total = '$inbound' mid-run" >&2
    exit 1
}

if ! wait "$run"; then
    echo "FAIL: telemetry run exited non-zero" >&2
    cat "$work/telemetry.raw" >&2
    exit 1
fi

echo "== same-seed run without telemetry"
"$work/potemkind" "${common[@]}" -json >"$work/plain.raw" 2>&1 || {
    echo "FAIL: plain run exited non-zero" >&2
    cat "$work/plain.raw" >&2
    exit 1
}

echo "== diffing final stats: telemetry on vs off"
sed -n '/^{/,$p' "$work/telemetry.raw" >"$work/telemetry.json"
sed -n '/^{/,$p' "$work/plain.raw" >"$work/plain.json"
[ -s "$work/plain.json" ] || { echo "FAIL: empty stats JSON" >&2; exit 1; }
if ! diff -u "$work/plain.json" "$work/telemetry.json"; then
    echo "FAIL: telemetry perturbed the simulation" >&2
    exit 1
fi

echo "== tracetool -epochs over the run's timeline"
[ -s "$work/epochs.jsonl" ] || { echo "FAIL: empty epoch timeline" >&2; exit 1; }
"$work/tracetool" -epochs -top 3 "$work/epochs.jsonl" >"$work/epochs.out"
for want in "barrier wait" "p99=" "slowest 3 epochs"; do
    if ! grep -qF "$want" "$work/epochs.out"; then
        echo "FAIL: tracetool -epochs output missing '$want'" >&2
        cat "$work/epochs.out" >&2
        exit 1
    fi
done

echo "PASS: /metrics parseable mid-run; telemetry-on stats byte-identical; epoch profile rendered"
