package potemkin_test

import (
	"fmt"
	"time"

	"potemkin"
)

// The smallest useful honeyfarm: one probe, one flash-cloned VM, one
// protocol-faithful reply.
func Example() {
	hf, err := potemkin.New(potemkin.Options{
		Seed:   42,
		Policy: potemkin.ReflectSource,
	})
	if err != nil {
		panic(err)
	}
	defer hf.Close()

	hf.InjectProbe("203.0.113.9", "10.5.77.1", 445)
	hf.RunFor(2 * time.Second)

	st := hf.Stats()
	fmt.Println("VMs:", st.LiveVMs)
	fmt.Println("replies to scanner:", st.OutboundToSource)
	// Output:
	// VMs: 1
	// replies to scanner: 1
}

// Capturing a live infection: the exploit compromises the honeypot, the
// worm starts scanning, the gateway's detector flags it — and drop-all
// containment keeps every scan inside.
func ExampleHoneyfarm_InjectExploit() {
	detected := ""
	hf := potemkin.MustNew(potemkin.Options{
		Seed:       7,
		Policy:     potemkin.DropAll,
		OnDetected: func(addr string, _ int) { detected = addr },
	})
	defer hf.Close()

	hf.InjectExploit("198.51.100.23", "10.5.1.2")
	hf.RunFor(5 * time.Second)

	fmt.Println("detected:", detected)
	fmt.Println("infected VMs:", hf.Stats().InfectedVMs)
	fmt.Println("leaked packets:", hf.Stats().OutboundToSource)
	// Output:
	// detected: 10.5.1.2
	// infected VMs: 1
	// leaked packets: 0
}

// Covering an address space: replay synthetic telescope traffic and let
// idle recycling multiplex a few VMs across many addresses.
func ExampleHoneyfarm_ReplayTrace() {
	hf := potemkin.MustNew(potemkin.Options{
		Seed:        3,
		IdleTimeout: 5 * time.Second,
	})
	defer hf.Close()

	recs, err := hf.GenerateTrace(time.Minute, 40)
	if err != nil {
		panic(err)
	}
	n := hf.ReplayTrace(recs)
	hf.RunFor(time.Minute) // drain

	st := hf.Stats()
	fmt.Println("packets injected:", n == len(recs))
	fmt.Println("addresses served > VMs alive at once:", st.BindingsCreated > uint64(st.PeakVMs))
	fmt.Println("everything recycled:", st.LiveVMs == 0)
	// Output:
	// packets injected: true
	// addresses served > VMs alive at once: true
	// everything recycled: true
}
