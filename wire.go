package potemkin

// Live wire ingest, declared like every other mode: Options.Wire names
// the listener, StartWire opens it, Serve blocks while the feed drives
// the honeyfarm — on either engine. Under Options.Parallel the wire
// source is quantized onto the epoch grid through the same conservative
// feeding machinery an offline replay uses (arrivals for epoch N become
// visible at the N→N+1 exchange), so a live parallel run with
// WireOptions.Capture set writes a pcap whose replay — sequential
// oracle or parallel — reproduces the live run's merged output byte for
// byte. See DESIGN.md "Live parallel ingest".

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"

	"potemkin/internal/ingest"
)

// WireOptions declares live GRE-over-UDP wire ingest (Options.Wire).
// The zero value of every field except Addr has a working default.
type WireOptions struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:4754" (or ":0"
	// to let the OS pick; see WireServer.Addr). Required.
	Addr string
	// Shards is the number of decap workers and bounded queues the feed
	// is partitioned across (by inner destination, so per-destination
	// order survives). Default 1. With several shards, cross-shard
	// arrival interleaving follows goroutine scheduling; the wire
	// source quantizes it onto a monotone virtual stream, so the run is
	// still exactly replayable from its capture — set Capture to keep
	// the artifact.
	Shards int
	// QueueLen bounds each shard's queue, in frames. Default 4096.
	QueueLen int
	// PlainGRE expects plain GRE framing (no 8-byte virtual-timestamp
	// prefix): arrival wall time maps onto virtual time, scaled by
	// Speedup. Default is timestamped framing, whose virtual time is
	// exact.
	PlainGRE bool
	// Speedup scales wall arrival offsets onto virtual time under
	// PlainGRE (a feed replayed onto the wire 10x faster than recorded
	// maps back to recorded spacing with Speedup=10). Zero means 1.
	// Only meaningful with PlainGRE.
	Speedup float64
	// ListenFor stops the listener after this much wall time; zero
	// serves until Stop is called.
	ListenFor time.Duration
	// Capture, when set, writes every injected record to this classic
	// pcap savefile at its injected virtual time — the live run's
	// replayable artifact. Replay(pcap) on an identically-configured
	// honeyfarm reproduces the live run byte for byte.
	Capture string
}

// WireStats summarizes a wire-serving run.
type WireStats struct {
	// Injected is the number of records scheduled into the simulation.
	Injected int
	// Ingest is the listener and delivery accounting (the same shape
	// Snapshot surfaces while the run is live).
	Ingest IngestSummary
}

// WireServer is a running wire listener bound to a honeyfarm. StartWire
// opens it; Serve drives the simulation from the feed; Stop (or
// WireOptions.ListenFor) ends the feed, after which Serve drains the
// queues, runs the epilogue, and returns.
type WireServer struct {
	hf       *Honeyfarm
	l        *ingest.Listener
	src      *ingest.WireSource
	capFile  *os.File
	timer    *time.Timer
	stopOnce sync.Once
}

// StartWire opens the listener declared by Options.Wire. Call Serve to
// start feeding the simulation. One wire server per honeyfarm.
func (hf *Honeyfarm) StartWire() (*WireServer, error) {
	w := hf.opts.Wire
	if w == nil {
		return nil, errors.New("potemkin: StartWire requires Options.Wire")
	}
	if hf.wire != nil {
		return nil, errors.New("potemkin: StartWire already called for this honeyfarm")
	}
	l, err := ingest.Listen(ingest.Config{
		Addr:        w.Addr,
		Shards:      w.Shards,
		QueueLen:    w.QueueLen,
		Timestamped: !w.PlainGRE,
		Metrics:     hf.metrics,
	})
	if err != nil {
		return nil, err
	}
	s := &WireServer{hf: hf, l: l}
	s.src = &ingest.WireSource{L: l, Speedup: w.Speedup, Metrics: hf.metrics}
	if w.Capture != "" {
		f, err := os.Create(w.Capture)
		if err != nil {
			l.Close()
			return nil, err
		}
		pw, err := ingest.NewPcapWriter(f)
		if err != nil {
			f.Close()
			l.Close()
			return nil, err
		}
		s.capFile = f
		s.src.Capture = pw
	}
	if w.ListenFor > 0 {
		s.timer = time.AfterFunc(w.ListenFor, s.Stop)
	}
	hf.wire = s
	return s, nil
}

// Addr returns the bound socket address (useful with ":0").
func (s *WireServer) Addr() net.Addr { return s.l.Addr() }

// Stop closes the listener; frames already queued are still drained by
// Serve before it returns. Idempotent and safe from any goroutine.
func (s *WireServer) Stop() {
	s.stopOnce.Do(func() {
		if s.timer != nil {
			s.timer.Stop()
		}
		s.l.Close()
	})
}

// Serve blocks while the wire feed drives the honeyfarm: each frame is
// injected at its virtual time through the engine's replay path —
// epoch-aligned under Options.Parallel, schedule-one/run-to-it on the
// sequential kernel. Virtual time advances only with arrivals (wall
// silence does not age the farm — the run would not replay otherwise).
// Serve returns after Stop or WireOptions.ListenFor ends the feed, the
// queues drain, and the epilogue (WithEpilogue; default 1 ms) settles.
func (s *WireServer) Serve(opts ...ReplayOption) (WireStats, error) {
	n, err := s.hf.Replay(s.src, opts...)
	s.Stop()
	if s.capFile != nil {
		if cerr := s.capFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.capFile = nil
	}
	st := s.Stats()
	st.Injected = n
	return st, err
}

// Stats snapshots the wire accounting; safe to call mid-serve from any
// goroutine (every counter is atomic).
func (s *WireServer) Stats() WireStats {
	ls := s.l.Stats()
	return WireStats{
		Injected: int(s.src.Emitted()),
		Ingest: IngestSummary{
			Received:    ls.Received,
			Bytes:       ls.Bytes,
			FrameErrors: ls.FrameErrors,
			Dropped:     ls.Dropped,
			SeqGaps:     ls.SeqGaps,
			Enqueued:    ls.Enqueued,
			Delivered:   s.src.Emitted(),
			Clamped:     s.src.Clamped(),
			QueueDepth:  ls.QueueDepth,
			QueueHWM:    ls.QueueHWM,
		},
	}
}
