module potemkin

go 1.24
