package potemkin

import (
	"encoding/json"

	"potemkin/internal/metrics"
)

// Snapshot is a single point-in-time view of the honeyfarm, designed
// to marshal to one JSON object: the live gauges an operator watches
// (bindings, VMs, queue depths), the cumulative counters, and latency
// summaries — clone latency merged across every server, plus the
// tracer's per-stage histograms when tracing is on. potemkind serves it
// from the live debug endpoint and cmd/analyze renders it offline.
type Snapshot struct {
	TSeconds float64 `json:"t_seconds"` // simulated time

	// Live gauges.
	LiveVMs       int `json:"live_vms"`
	BindingsLive  int `json:"bindings_live"`
	PendingQueued int `json:"pending_queued"` // packets waiting on in-flight clones
	OpenSpans     int `json:"open_spans,omitempty"`

	// Cumulative counters.
	PeakVMs          int    `json:"peak_vms"`
	InfectedVMs      int    `json:"infected_vms"`
	BindingsCreated  uint64 `json:"bindings_created"`
	BindingsRecycled uint64 `json:"bindings_recycled"`
	InboundPackets   uint64 `json:"inbound_packets"`
	DeliveredToVM    uint64 `json:"delivered_to_vm"`
	SpawnFailures    uint64 `json:"spawn_failures"`
	SpawnRetries     uint64 `json:"spawn_retries"`
	BindingsShed     uint64 `json:"bindings_shed"`
	DetectedInfected uint64 `json:"detected_infected"`
	MemoryInUseBytes uint64 `json:"memory_in_use_bytes"`

	// CloneMs summarizes flash-clone latency, merged across all servers
	// (metrics.Histogram.Merge over the per-host histograms).
	CloneMs LatencySummary `json:"clone_ms"`

	// StagesMs carries the tracer's per-stage latency summaries
	// (binding, spawn, place, clone, active, pending-wait, …), present
	// only when tracing is on. encoding/json sorts map keys, so the
	// rendered snapshot is deterministic.
	StagesMs map[string]LatencySummary `json:"stages_ms,omitempty"`

	// Ingest carries wire-listener loss accounting, present only when
	// live wire ingest is attached (Options.Wire via StartWire, or a
	// deprecated WireBridge pumping a listener).
	Ingest *IngestSummary `json:"ingest,omitempty"`
}

// IngestSummary is the wire-ingest side of a snapshot: what the
// GRE-over-UDP listener saw, lost, and handed to the simulation.
type IngestSummary struct {
	Received    uint64 `json:"received"`
	Bytes       uint64 `json:"bytes"`
	FrameErrors uint64 `json:"frame_errors"`
	Dropped     uint64 `json:"dropped"`
	SeqGaps     uint64 `json:"seq_gaps"`
	Enqueued    uint64 `json:"enqueued"`
	Delivered   uint64 `json:"delivered"`
	Clamped     uint64 `json:"clamped"`
	QueueDepth  int    `json:"queue_depth"`
	QueueHWM    int    `json:"queue_hwm"`
}

// LatencySummary condenses a histogram for JSON export. All latency
// fields are milliseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// summarize condenses h; an empty or nil histogram yields the zero
// summary.
func summarize(h *metrics.Histogram) LatencySummary {
	if h == nil || h.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// ingestSummary builds the wire-ingest view for a snapshot: the
// StartWire server when Options.Wire is live (either engine), else a
// deprecated WireBridge's listener, else nil. Every counter involved is
// atomic, so this is safe mid-serve.
func (hf *Honeyfarm) ingestSummary() *IngestSummary {
	if w := hf.wire; w != nil {
		st := w.Stats()
		return &st.Ingest
	}
	if br := hf.bridge; br != nil {
		if ls, ok := br.ListenerStats(); ok {
			return &IngestSummary{
				Received:    ls.Received,
				Bytes:       ls.Bytes,
				FrameErrors: ls.FrameErrors,
				Dropped:     ls.Dropped,
				SeqGaps:     ls.SeqGaps,
				Enqueued:    ls.Enqueued,
				Delivered:   br.Delivered,
				Clamped:     br.Clamped,
				QueueDepth:  ls.QueueDepth,
				QueueHWM:    ls.QueueHWM,
			}
		}
	}
	return nil
}

// Snapshot captures the current state.
func (hf *Honeyfarm) Snapshot() Snapshot {
	if hf.eng != nil {
		gs := hf.eng.GatewayStats()
		fs := hf.eng.FarmStats()
		clone := hf.eng.CloneLatency()
		// Per-stage tracer histograms are shard-private in Parallel
		// mode, so OpenSpans/StagesMs stay empty here.
		s := Snapshot{
			TSeconds:         hf.eng.Now().Seconds(),
			LiveVMs:          hf.eng.LiveVMs(),
			BindingsLive:     hf.eng.NumBindings(),
			PendingQueued:    gs.PendingQueued,
			PeakVMs:          fs.PeakLiveVMs,
			InfectedVMs:      hf.eng.InfectedVMs(),
			BindingsCreated:  gs.BindingsCreated,
			BindingsRecycled: gs.BindingsRecycled,
			InboundPackets:   gs.InboundPackets,
			DeliveredToVM:    gs.DeliveredToVM,
			SpawnFailures:    gs.SpawnFailures + fs.SpawnFailures,
			SpawnRetries:     gs.SpawnRetries + fs.SpawnRetries,
			BindingsShed:     gs.BindingsShed,
			DetectedInfected: gs.DetectedInfected,
			MemoryInUseBytes: hf.eng.MemoryInUse(),
			CloneMs:          summarize(&clone),
		}
		s.Ingest = hf.ingestSummary()
		return s
	}

	gs := hf.g.Stats()
	fs := hf.f.Stats()

	var clone metrics.Histogram
	for _, h := range hf.f.Hosts() {
		clone.Merge(&h.CloneLatency)
	}

	s := Snapshot{
		TSeconds:         hf.k.Now().Seconds(),
		LiveVMs:          hf.f.LiveVMs(),
		BindingsLive:     hf.g.NumBindings(),
		PendingQueued:    gs.PendingQueued,
		PeakVMs:          fs.PeakLiveVMs,
		InfectedVMs:      hf.f.InfectedVMs(),
		BindingsCreated:  gs.BindingsCreated,
		BindingsRecycled: gs.BindingsRecycled,
		InboundPackets:   gs.InboundPackets,
		DeliveredToVM:    gs.DeliveredToVM,
		SpawnFailures:    gs.SpawnFailures + fs.SpawnFailures,
		SpawnRetries:     gs.SpawnRetries + fs.SpawnRetries,
		BindingsShed:     gs.BindingsShed,
		DetectedInfected: gs.DetectedInfected,
		MemoryInUseBytes: hf.f.MemoryInUse(),
		CloneMs:          summarize(&clone),
	}
	if tr := hf.tracer; tr != nil {
		s.OpenSpans = tr.OpenSpans()
		names := tr.StageNames()
		if len(names) > 0 {
			s.StagesMs = make(map[string]LatencySummary, len(names))
			for _, n := range names {
				s.StagesMs[n] = summarize(tr.Stage(n))
			}
		}
	}
	s.Ingest = hf.ingestSummary()
	return s
}

// MarshalSnapshot renders the snapshot as indented JSON — the exact
// bytes potemkind's debug endpoint serves and cmd/analyze -snapshot
// reads.
func (hf *Honeyfarm) MarshalSnapshot() ([]byte, error) {
	return json.MarshalIndent(hf.Snapshot(), "", "  ")
}
