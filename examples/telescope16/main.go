// Telescope16: cover a full /16 (65,536 addresses) of telescope traffic
// with a handful of servers, and see how the idle-recycling knob trades
// VM count against liveness — the paper's scalability experiment as a
// runnable example.
//
//	go run ./examples/telescope16
package main

import (
	"fmt"
	"time"

	"potemkin"
)

func main() {
	fmt.Println("replaying 3 minutes of /16 telescope traffic at 200 pps under three recycling policies")
	fmt.Println()
	fmt.Printf("%-14s %10s %12s %12s %12s\n", "idle_timeout", "peak_vms", "bindings", "recycled", "mem_MiB")

	for _, idle := range []time.Duration{2 * time.Second, 30 * time.Second, -1} {
		hf := potemkin.MustNew(potemkin.Options{
			Seed:           3,
			MonitoredSpace: "10.5.0.0/16",
			Servers:        8,
			Policy:         potemkin.ReflectSource,
			IdleTimeout:    idle,
		})
		recs, err := hf.GenerateTrace(3*time.Minute, 200)
		if err != nil {
			panic(err)
		}
		if _, err := hf.Replay(potemkin.SliceSource(recs)); err != nil {
			panic(err)
		}
		st := hf.Stats()
		label := idle.String()
		if idle < 0 {
			label = "never"
		}
		fmt.Printf("%-14s %10d %12d %12d %12d\n",
			label, st.PeakVMs, st.BindingsCreated, st.BindingsRecycled, st.MemoryInUse>>20)
		hf.Close()
	}

	fmt.Println()
	fmt.Println("aggressive recycling covers the same address space with a fraction of the")
	fmt.Println("concurrent VMs — that ratio is what lets one rack impersonate a /16.")
}
