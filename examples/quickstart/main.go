// Quickstart: build a honeyfarm, poke it like a scanner would, and
// watch a VM get flash-cloned, reply, go idle, and be recycled.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"potemkin"
)

func main() {
	hf, err := potemkin.New(potemkin.Options{
		Seed:           42,
		MonitoredSpace: "10.5.0.0/16", // the honeyfarm answers for 65,536 addresses
		Servers:        2,
		Policy:         potemkin.ReflectSource,
		IdleTimeout:    5 * time.Second,
		OnEgress: func(pkt string) {
			fmt.Printf("  [egress] %s\n", pkt)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hf.Close()

	fmt.Println("== a scanner probes an address nobody is using ==")
	if err := hf.InjectProbe("203.0.113.9", "10.5.77.1", 445); err != nil {
		log.Fatal(err)
	}
	hf.RunFor(time.Second)
	fmt.Printf("after 1s: %s\n", hf.Stats())
	fmt.Println("   (the SYN-ACK above came from a VM that did not exist when the probe arrived —")
	fmt.Println("    the gateway flash-cloned it in ~0.5s of simulated time)")

	fmt.Println("\n== the same scanner probes two more addresses ==")
	hf.InjectProbe("203.0.113.9", "10.5.77.2", 445)
	hf.InjectProbe("203.0.113.9", "10.5.200.9", 80)
	hf.RunFor(time.Second)
	fmt.Printf("after 2s: %s\n", hf.Stats())

	fmt.Println("\n== everything goes quiet; idle VMs are recycled ==")
	hf.RunFor(30 * time.Second)
	fmt.Printf("after 32s: %s\n", hf.Stats())
	fmt.Printf("\n%d VMs served %d addresses and were reclaimed — that multiplexing is the\n",
		hf.Stats().BindingsRecycled, hf.Stats().BindingsCreated)
	fmt.Println("scalability story: physical memory is only committed while traffic flows.")
}
