// Chaos: release a worm outbreak into a 4-server honeyfarm and kill
// one server halfway through, with a window of flaky clones right
// after. The farm must degrade, not collapse: bindings stranded on the
// dead server are recycled, new clones land on the survivors, and when
// the server comes back its capacity rejoins the pool. Because every
// fault is drawn from the simulation's own seeded RNG, the run is
// replayed twice to show the whole failure sequence is deterministic.
//
//	go run ./examples/chaos
package main

import (
	"fmt"

	"potemkin/internal/core"
)

func main() {
	cfg := core.ChaosConfig{Seed: 7, Servers: 4, CrashServer: 0}
	res := core.RunChaos(cfg)

	fmt.Println(res.Table)
	fmt.Println("Fault schedule (faulted arm):")
	for _, line := range res.FaultLog {
		fmt.Println("  " + line)
	}
	fmt.Println()

	fmt.Printf("binding ledger balanced (created == live + recycled): %v\n",
		res.ConservationOK())
	f := res.Faulted
	fmt.Printf("stranded bindings recycled after crash: %d, farm-level retries onto survivors: %d\n",
		f.BackendLost, f.FarmRetries)
	fmt.Printf("gateway shed %d bindings and gave up on %d spawns while capacity was short\n",
		f.BindingsShed, f.SpawnFailures)

	// Replay with the same seed: the event log fingerprint must match
	// exactly — crashes, retries, sheds and all.
	again := core.RunChaos(cfg)
	same := res.Faulted.EventCount == again.Faulted.EventCount &&
		res.Faulted.EventHash == again.Faulted.EventHash
	fmt.Printf("replay with seed %d reproduces the identical event sequence: %v (%d events, hash %#x)\n",
		cfg.Seed, same, f.EventCount, f.EventHash)

	fmt.Println(`
Reading the table:
  The farm is sized with little headroom, so even the baseline feels
  some pressure as the epidemic grows (a fixed farm always saturates
  eventually — that is the paper's scalability limit). The crash arm
  additionally loses a quarter of its capacity for a quarter of the
  run: its stranded bindings are recycled (backend_lost), replacement
  clones go to the three survivors (farm_retries), and overflow is shed
  instead of corrupting state. Captures dip proportionally, not to
  zero, and once the server recovers the farm converges back toward
  baseline. The balanced ledger is the robustness claim: no binding is
  ever leaked, even across a crash.`)
}
