// Response: why build a honeyfarm at all? Because capture time bounds
// response time. This example races one worm outbreak against four
// response postures and shows the final damage for each — the E10
// experiment as a story.
//
//	go run ./examples/response
package main

import (
	"fmt"
	"time"

	"potemkin/internal/core"
)

func main() {
	fmt.Println("one worm (2^20 vulnerable hosts, 30 scans/s each), four response postures,")
	fmt.Println("2 simulated hours; the countermeasure immunizes 0.5% of remaining hosts/second")
	fmt.Println("once it deploys:")
	fmt.Println()

	res := core.RunE10(7, []core.E10Arm{
		{Name: "no honeyfarm, no response"},
		{Name: "/16 telescope, 1h to build+ship a fix", TelescopeBits: 16, ReactionDelay: time.Hour},
		{Name: "/16 telescope, 10min automated response", TelescopeBits: 16, ReactionDelay: 10 * time.Minute},
		{Name: "/8 telescope, 10min automated response", TelescopeBits: 8, ReactionDelay: 10 * time.Minute},
	}, 2*time.Hour, 0.005)

	fmt.Println(res.Table)
	fmt.Println(`Reading the table: every minute between outbreak and response deployment is
spent on the worm's exponential curve. A bigger telescope captures earlier;
automation reacts faster; both shrink the final infected population — that
difference is the honeyfarm's entire value proposition.`)
}
