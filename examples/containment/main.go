// Containment: release the same multi-stage worm into honeyfarms
// running each containment policy and compare what leaks and what gets
// captured. Internal reflection is the punchline — it captures the
// whole infection chain (stage-2 fetch included) without leaking a
// byte.
//
//	go run ./examples/containment
package main

import (
	"fmt"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func main() {
	tab := metrics.NewTable(
		"One worm, four policies (60s after first exploit)",
		"policy", "leaked_pkts", "vms_infected", "max_chain_depth", "stage2_captured")

	for _, pol := range []gateway.Policy{
		gateway.PolicyOpen,
		gateway.PolicyDropAll,
		gateway.PolicyReflectSource,
		gateway.PolicyInternalReflect,
	} {
		leaked, infected, depth, stage2 := run(pol)
		tab.AddRow(pol.String(), leaked, infected, depth, stage2)
	}
	fmt.Println(tab)
	fmt.Println(`Reading the table:
  open             leaks worm scans to the real network (the disaster case)
  drop-all         leaks nothing but also answers nothing — low fidelity
  reflect-source   replies reach the scanner, worm scans die — but the
                   second stage of the infection is never seen
  internal-reflect worm scans are redirected to fresh honeypot VMs: the
                   chain replays inside the farm, stage-2 fetch included,
                   and still nothing leaks`)
}

func run(pol gateway.Policy) (leaked uint64, infected, maxDepth, stage2 int) {
	k := sim.NewKernel(99)
	payloadServer := netsim.MustParseAddr("66.6.6.6")

	fc := farm.DefaultConfig()
	fc.Servers = 4
	fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 256, Seed: 42}
	fc.Profile = guest.MultiStage(payloadServer) // fetches stage 2 after compromise
	gc := gateway.DefaultConfig()
	gc.Policy = pol
	gc.IdleTimeout = 0
	gc.ReflectionLimit = 64
	// Worm targets are external (hitting your own /16 at random is a
	// one-in-65k event at Internet scale).
	fc.PickTarget = func(r *sim.RNG) netsim.Addr {
		for {
			a := netsim.Addr(r.Uint64n(1 << 32))
			if !gc.Space.Contains(a) && a != 0 {
				return a
			}
		}
	}
	f, err := farm.New(k, fc)
	if err != nil {
		panic(err)
	}
	gc.ExternalOut = func(_ sim.Time, pkt *netsim.Packet) {
		if len(pkt.Payload) > 0 { // exploit or stage-2 bytes leaving the farm
			leaked++
		}
	}
	g := gateway.New(k, gc, f)
	f.SetGateway(g)

	// Patient zero.
	exploit := netsim.TCPSyn(netsim.MustParseAddr("200.1.2.3"), gc.Space.Nth(99), 31337, 445, 1)
	exploit.Flags |= netsim.FlagPSH
	exploit.Payload = fc.Profile.ExploitPayload(0)
	g.HandleInbound(sim.Start, exploit)
	k.RunUntil(sim.Start.Add(60 * time.Second))
	g.Close()

	f.EachInstance(func(in *guest.Instance) {
		if in.Infected {
			infected++
			if in.Generation > maxDepth {
				maxDepth = in.Generation
			}
		}
	})
	// Stage-2 fetches captured: reflected bindings created for the
	// payload server's address.
	if pol == gateway.PolicyInternalReflect {
		stage2 = int(g.Stats().OutReflected)
	}
	return leaked, infected, maxDepth, stage2
}
