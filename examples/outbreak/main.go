// Outbreak: a worm epidemic rages on the (simulated) Internet; the
// honeyfarm's telescope space catches stray scans, captures a live
// infection within seconds, and its detector flags the compromised VM —
// while containment keeps every worm byte inside.
//
//	go run ./examples/outbreak [-chrome-trace FILE]
//
// With -chrome-trace, the run's binding-lifecycle trace is written in
// the Chrome trace-event format — load it in Perfetto (ui.perfetto.dev)
// or chrome://tracing to see every binding's bind → clone → active →
// recycle timeline. `make trace-demo` produces one.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"potemkin"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/worm"
)

func main() {
	chromeOut := flag.String("chrome-trace", "", "write a Chrome trace-event file of all binding lifecycles")
	flag.Parse()

	opts := potemkin.Options{
		Seed:   7,
		Policy: potemkin.DropAll,
		OnInfected: func(addr string, gen int) {
			fmt.Printf("  ** honeyfarm captured live malware on %s (chain depth %d)\n", addr, gen)
		},
		OnDetected: func(addr string, n int) {
			fmt.Printf("  !! detector: %s began scanning (%d distinct targets)\n", addr, n)
		},
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "outbreak: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.TraceChrome = f
	}
	hf := potemkin.MustNew(opts)
	defer hf.Close()
	in := hf.Internals()

	// An epidemic on the outside: 2,000 hosts already infected, each
	// scanning 50 addresses per second, out of a million vulnerable.
	wcfg := worm.DefaultConfig()
	wcfg.Seed = 7
	wcfg.InitialInfected = 2000
	wcfg.ScanRate = 50
	wcfg.ExploitPayload = guest.WindowsXP().ExploitPayload(0)
	wcfg.Deliver = func(now sim.Time, pkt *netsim.Packet) {
		in.Gateway.HandleInbound(now, pkt)
	}
	e := worm.New(in.Kernel, wcfg)

	fmt.Printf("outbreak begins: %d infected on the Internet, honeyfarm watching %s\n\n",
		e.Infected(), "10.5.0.0/16")
	e.Start()

	for minute := 1; minute <= 5; minute++ {
		hf.RunFor(time.Minute)
		st := hf.Stats()
		fmt.Printf("t=%dm: internet infected=%d | honeyfarm: vms=%d infected=%d dropped=%d\n",
			minute, e.Infected(), st.LiveVMs, st.InfectedVMs, st.OutboundDropped)
	}
	e.Stop()

	st := hf.Stats()
	fmt.Printf("\ncaptures: %d infected honeypots, %d flagged by the scan detector\n",
		st.InfectedVMs, st.DetectedInfected)
	fmt.Printf("containment: %d worm packets dropped at the gateway, zero escaped\n",
		st.OutboundDropped)
	fmt.Printf("first capture happened %v after patient zero's scan hit the telescope\n",
		time.Duration(e.Stats().FirstTelescopeHit).Truncate(time.Millisecond))
	if *chromeOut != "" {
		hf.Close() // flush open spans, terminate the trace array
		fmt.Printf("\n[trace] %s — open in Perfetto (ui.perfetto.dev) or chrome://tracing\n", *chromeOut)
	}
}
