// Forensics: the full incident workflow — run a honeyfarm with the
// event log, packet capture, and auto-checkpointing enabled while a
// multi-stage worm rampages inside it; then reconstruct the incident
// from the artifacts alone, the way an analyst who wasn't watching
// would.
//
//	go run ./examples/forensics
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"potemkin"
	"potemkin/internal/analysis"
	"potemkin/internal/telescope"
	"potemkin/internal/vmm"
)

func main() {
	workdir, err := os.MkdirTemp("", "potemkin-forensics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)

	var eventLog bytes.Buffer
	hf := potemkin.MustNew(potemkin.Options{
		Seed:          11,
		Guest:         potemkin.GuestMultiStage,
		Policy:        potemkin.InternalReflect,
		IdleTimeout:   -1,
		EventLog:      &eventLog,
		CaptureDir:    filepath.Join(workdir, "capture"),
		CheckpointDir: filepath.Join(workdir, "checkpoints"),
	})

	fmt.Println("== incident: a multi-stage worm hits 10.5.7.7; nobody is watching ==")
	hf.InjectExploit("198.51.100.23", "10.5.7.7")
	hf.RunFor(20 * time.Second)
	st := hf.Stats()
	hf.Close() // flush captures

	fmt.Printf("(live ground truth: %d VMs infected, %d reflections, %d DNS lookups proxied)\n\n",
		st.InfectedVMs, st.OutboundReflected, st.DNSProxied)

	fmt.Println("== afterwards: reconstruct the incident from the artifacts ==")

	// 1. The event log rebuilds the who/when/how-deep story.
	rep, err := analysis.Analyze(&eventLog)
	if err != nil {
		log.Fatal(err)
	}
	rep.Render(os.Stdout)

	// 2. The packet capture shows what the malware actually sent.
	f, err := os.Open(filepath.Join(workdir, "capture", "tovm.potm"))
	if err != nil {
		log.Fatal(err)
	}
	recs, err := telescope.ReadAll(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacket capture: %d packets delivered to VMs; first five:\n", len(recs))
	for i := 0; i < len(recs) && i < 5; i++ {
		fmt.Printf("  t=%-10v %s\n", time.Duration(recs[i].At).Truncate(time.Microsecond), recs[i].Packet())
	}

	// 3. The checkpoints preserve each compromised VM's memory delta.
	entries, err := os.ReadDir(filepath.Join(workdir, "checkpoints"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoints: %d compromised VMs preserved:\n", len(entries))
	for i, e := range entries {
		if i == 4 {
			fmt.Printf("  … and %d more\n", len(entries)-4)
			break
		}
		cf, err := os.Open(filepath.Join(workdir, "checkpoints", e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		ck, err := vmm.ReadCheckpoint(cf)
		cf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d dirty pages (%d KiB of malware-touched state)\n",
			ck.IP, len(ck.Pages), ck.Bytes()>>10)
	}

	fmt.Println("\nthe log said who and when, the capture said what, the checkpoints kept the evidence.")
}
