package potemkin

// Scenario-driven campaigns through the facade: Options.Scenario arms
// a compiled attacker campaign, RunScenario replays it and returns the
// effectiveness scorecard. The same (scenario, seed, options) always
// produces a byte-identical scorecard — across the sequential engine,
// Options.Parallel, and potemkind's cluster mode — because the plan is
// pure data, the engines are deterministic, and the card reads only
// deterministic telemetry series.

import (
	"errors"

	"potemkin/internal/scenario"
	"potemkin/internal/score"
)

// Scenario is a declarative attacker campaign: versioned JSON (or a
// builtin family) describing staged recon and exploit waves plus the
// guest behavior they trigger — C2 beaconing, honeypot-fingerprinting
// canaries, structured P2P lateral movement. See internal/scenario.
type Scenario = scenario.Scenario

// Scorecard is a scenario run's effectiveness report: time to
// detection, containment leak rate, deception survival, and resource
// cost per captured sample. See internal/score.
type Scorecard = score.Scorecard

// ScorecardFacts identifies the run a Scorecard describes.
type ScorecardFacts = score.Facts

// LoadScenario resolves arg as a builtin scenario family
// (ScenarioNames lists them) or as a path to a scenario JSON file.
func LoadScenario(arg string) (*Scenario, error) {
	return scenario.Lookup(arg)
}

// ScenarioNames lists the builtin scenario families, sorted.
func ScenarioNames() []string { return scenario.Names() }

// MergeScorecards unions cards from partitions of one logical run
// (counters add, first detection takes the earliest, rates rederive).
// All cards must carry identical Facts.
func MergeScorecards(cards ...*Scorecard) (*Scorecard, error) {
	return score.Merge(cards...)
}

// RunScenario replays the farm's compiled campaign — every packet
// scheduled by Options.Scenario, then the scenario's settle period —
// and scores the run. Replay options (WithHalt for signal handling)
// pass through; the epilogue is the scenario's settle period unless an
// explicit WithEpilogue overrides it. Requires Options.Scenario.
func (hf *Honeyfarm) RunScenario(opts ...ReplayOption) (*Scorecard, error) {
	if hf.plan == nil {
		return nil, errors.New("potemkin: RunScenario requires Options.Scenario")
	}
	ropts := append([]ReplayOption{WithEpilogue(hf.plan.Settle)}, opts...)
	if _, err := hf.Replay(SliceSource(hf.plan.Records), ropts...); err != nil {
		return nil, err
	}
	return score.Compute(hf.plan.Facts(hf.opts.Policy.String()), hf.metrics.Snapshot()), nil
}

// RunScenario builds a honeyfarm from opts (which must set Scenario),
// runs the campaign end to end, closes the farm, and returns the
// scorecard.
func RunScenario(opts Options) (*Scorecard, error) {
	hf, err := New(opts)
	if err != nil {
		return nil, err
	}
	defer hf.Close()
	return hf.RunScenario()
}
