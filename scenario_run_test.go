package potemkin

import (
	"bytes"
	"testing"

	"potemkin/internal/guest"
)

// scenarioCard runs one scenario end to end and returns the rendered
// scorecard JSON.
func scenarioCard(t *testing.T, opts Options) (*Scorecard, []byte) {
	t.Helper()
	hf, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	card, err := hf.RunScenario()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := card.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return card, buf.Bytes()
}

// Every builtin family must produce byte-identical scorecards from the
// sequential scenario engine and the parallel one at the same shard
// count — the facade half of the acceptance criterion (the cluster
// half lives in internal/cluster).
func TestScenarioSequentialMatchesParallel(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			sc, err := LoadScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			base := Options{
				Seed:           9,
				MonitoredSpace: "10.5.0.0/22",
				Servers:        4,
				GatewayShards:  2,
				Policy:         InternalReflect,
				Scenario:       sc,
			}
			par := base
			par.Parallel = true
			seqCard, seqJSON := scenarioCard(t, base)
			_, parJSON := scenarioCard(t, par)
			if !bytes.Equal(seqJSON, parJSON) {
				t.Errorf("scorecards differ between sequential and parallel:\n--- sequential\n%s--- parallel\n%s", seqJSON, parJSON)
			}
			if seqCard.Infections == 0 {
				t.Errorf("scenario %s captured no infections:\n%s", name, seqJSON)
			}
			// Same options, same seed: running it again reproduces the bytes.
			_, again := scenarioCard(t, base)
			if !bytes.Equal(seqJSON, again) {
				t.Error("same-seed rerun changed the scorecard")
			}
		})
	}
}

func TestMultistageScoresDetectionAndC2(t *testing.T) {
	sc, err := LoadScenario("multistage")
	if err != nil {
		t.Fatal(err)
	}
	card, js := scenarioCard(t, Options{Seed: 3, MonitoredSpace: "10.5.0.0/22", Policy: InternalReflect, Scenario: sc})
	if card.Detections == 0 || card.FirstDetectMS < 0 {
		t.Errorf("campaign should be detected:\n%s", js)
	}
	if card.Beacons == 0 {
		t.Errorf("infected guests should beacon C2:\n%s", js)
	}
	if card.EgressAttempted == 0 {
		t.Errorf("beacons and scans should attempt egress:\n%s", js)
	}
	if card.Facts.Policy != "internal-reflect" || card.Facts.Scenario != "multistage" {
		t.Errorf("facts: %+v", card.Facts)
	}
}

// Under drop-all every canary vanishes, so fingerprinting malware
// concludes it is jailed; under internal reflection the canaries are
// answered by impersonating VMs and the deception survives longer.
func TestFingerprintScenarioScoresDeception(t *testing.T) {
	sc, err := LoadScenario("fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	drop, dropJS := scenarioCard(t, Options{Seed: 3, MonitoredSpace: "10.5.0.0/22", Policy: DropAll, Scenario: sc})
	if drop.Fingerprints == 0 {
		t.Errorf("drop-all should be fingerprinted:\n%s", dropJS)
	}
	if drop.Canaries == 0 {
		t.Errorf("no canaries went out:\n%s", dropJS)
	}
	refl, _ := scenarioCard(t, Options{Seed: 3, MonitoredSpace: "10.5.0.0/22", Policy: InternalReflect, Scenario: sc})
	if refl.Fingerprints > drop.Fingerprints {
		t.Errorf("internal reflection should survive fingerprinting at least as long as drop-all (refl %d, drop %d)",
			refl.Fingerprints, drop.Fingerprints)
	}
}

func TestP2PScenarioPropagatesInternally(t *testing.T) {
	sc, err := LoadScenario("p2p")
	if err != nil {
		t.Fatal(err)
	}
	card, js := scenarioCard(t, Options{Seed: 3, MonitoredSpace: "10.5.0.0/22", Policy: DropAll, Scenario: sc})
	// 4 seed exploits; overlay lateral movement must spread beyond them.
	if card.Infections <= 4 {
		t.Errorf("overlay propagation should spread past the %d seeds:\n%s", 4, js)
	}
}

func TestRunScenarioRequiresScenario(t *testing.T) {
	hf := MustNew(Options{})
	defer hf.Close()
	if _, err := hf.RunScenario(); err == nil {
		t.Fatal("RunScenario without Options.Scenario should fail")
	}
}

func TestScenarioOptionConflicts(t *testing.T) {
	sc, err := LoadScenario("p2p")
	if err != nil {
		t.Fatal(err)
	}
	if err := (Options{Scenario: sc, GuestProfile: guest.WindowsXP()}).Validate(); err == nil {
		t.Fatal("Scenario+GuestProfile should not validate")
	}
	if err := (Options{Scenario: sc, Guest: GuestSQLServer}).Validate(); err == nil {
		t.Fatal("Scenario+Guest should not validate")
	}
	bad := *sc
	bad.Stages = nil
	if err := (Options{Scenario: &bad}).Validate(); err == nil {
		t.Fatal("invalid scenario should not validate")
	}
}
