package potemkin

import (
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// TraceRecord is one telescope packet arrival (re-exported for trace
// replay through the facade). At is relative to the replay start.
type TraceRecord = telescope.Record

// SliceSource wraps an in-memory trace as a replay source for Replay.
func SliceSource(recs []TraceRecord) telescope.Source {
	return &telescope.SliceSource{Recs: recs}
}

// replayConfig collects the option knobs for Replay.
type replayConfig struct {
	halt     func() bool
	epilogue time.Duration
}

// ReplayOption customizes a Replay call.
type ReplayOption func(*replayConfig)

// WithHalt installs an early-exit hook, consulted before each record
// (potemkind's signal handler uses it so ^C ends the replay cleanly
// instead of truncating output files mid-record).
func WithHalt(halt func() bool) ReplayOption {
	return func(rc *replayConfig) { rc.halt = halt }
}

// WithEpilogue sets how long the simulation keeps running after the
// last record, so in-flight spawns and reflections settle. Default
// 1 ms.
func WithEpilogue(d time.Duration) ReplayOption {
	return func(rc *replayConfig) { rc.epilogue = d }
}

// Replay streams a record source (a trace file reader, a pcap source,
// an in-memory slice via SliceSource) into the honeyfarm in bounded
// memory: one record is scheduled and run at a time, so multi-GB
// traces stream without being slurped. Record times are offset from
// the current clock; records that sort before the clock (out-of-order
// traces) are injected immediately rather than in the past. After the
// last record the simulation runs for the epilogue (1 ms unless
// WithEpilogue says otherwise). Returns the packets injected and the
// first source error, if any.
//
// Replay subsumes the deprecated ReplayTrace, ReplayStream, and
// ReplayStreamHalt entry points, and is the only replay path that
// works with Options.Parallel.
func (hf *Honeyfarm) Replay(src telescope.Source, opts ...ReplayOption) (int, error) {
	rc := replayConfig{epilogue: time.Millisecond}
	for _, opt := range opts {
		opt(&rc)
	}
	if hf.eng != nil {
		return hf.eng.Replay(src, rc.halt, rc.epilogue)
	}
	rp := &telescope.StreamReplayer{
		K: hf.k, Src: src, Base: hf.k.Now(), Halt: rc.halt,
		Emit: func(now sim.Time, pkt *netsim.Packet) {
			hf.g.HandleInbound(now, pkt)
		},
	}
	err := rp.Run()
	hf.k.RunFor(rc.epilogue)
	return rp.Injected, err
}

// ReplayTrace schedules an in-memory telescope trace into the
// honeyfarm, then runs until it completes (plus a 1 ms epilogue). It
// returns the number of packets injected.
//
// Deprecated: use Replay(SliceSource(recs)).
func (hf *Honeyfarm) ReplayTrace(recs []TraceRecord) int {
	if len(recs) == 0 {
		return 0
	}
	n, _ := hf.Replay(SliceSource(recs))
	return n
}

// ReplayStream replays a record source into the honeyfarm.
//
// Deprecated: use Replay(src).
func (hf *Honeyfarm) ReplayStream(src telescope.Source) (int, error) {
	return hf.Replay(src)
}

// ReplayStreamHalt is ReplayStream with an early-exit hook.
//
// Deprecated: use Replay(src, WithHalt(halt)).
func (hf *Honeyfarm) ReplayStreamHalt(src telescope.Source, halt func() bool) (int, error) {
	return hf.Replay(src, WithHalt(halt))
}
