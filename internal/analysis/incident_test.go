package analysis

import (
	"testing"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// newIncidentFarm runs a contained multi-stage outbreak with the event
// log attached and returns the live reflection count for
// cross-checking.
func newIncidentFarm(t *testing.T, sink gateway.EventSink) (*farm.Farm, uint64) {
	t.Helper()
	k := sim.NewKernel(17)
	fc := farm.DefaultConfig()
	fc.Servers = 4
	fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 256, Seed: 42}
	fc.Profile = guest.WindowsXP()
	gc := gateway.DefaultConfig()
	gc.Policy = gateway.PolicyInternalReflect
	gc.IdleTimeout = 0
	gc.DetectThreshold = 5
	gc.ReflectionLimit = 32
	gc.EventSink = sink
	fc.PickTarget = func(r *sim.RNG) netsim.Addr {
		for {
			a := netsim.Addr(r.Uint64n(1 << 32))
			if !gc.Space.Contains(a) && a != 0 {
				return a
			}
		}
	}
	f := farm.MustNew(k, fc)
	g := gateway.New(k, gc, f)
	f.SetGateway(g)

	exploit := netsim.TCPSyn(netsim.MustParseAddr("200.1.2.3"), gc.Space.Nth(99), 31337, 445, 1)
	exploit.Flags |= netsim.FlagPSH
	exploit.Payload = fc.Profile.ExploitPayload(0)
	g.HandleInbound(sim.Start, exploit)
	k.RunUntil(sim.Start.Add(15 * time.Second))
	g.Close()
	return f, g.Stats().OutReflected
}

func TestIncidentChainDepthMatchesGuests(t *testing.T) {
	var events []gateway.Event
	f, _ := newIncidentFarm(t, func(ev gateway.Event) { events = append(events, ev) })

	// Reconstruct depth from the log and compare with ground truth
	// (guest generations) for every live infected VM.
	var buf = jsonl(events...)
	rep, err := Analyze(buf)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	f.EachInstance(func(in *guest.Instance) {
		if !in.Infected {
			return
		}
		got := rep.ChainDepth[in.IP.String()]
		if got != in.Generation {
			t.Errorf("%s: log depth %d != guest generation %d", in.IP, got, in.Generation)
		}
		checked++
	})
	if checked < 3 {
		t.Errorf("only %d infected VMs to check", checked)
	}
}
