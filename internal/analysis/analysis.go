// Package analysis reconstructs incidents from the gateway's forensic
// event log: per-address binding timelines, detection latencies, and —
// the honeyfarm's signature artifact — infection chains stitched from
// internal-reflection events (VM A attacked external host X, the
// gateway impersonated X with VM B, B got infected and attacked Y…).
//
// It consumes the JSONL stream produced by gateway.JSONLSink (or the
// potemkind -eventlog flag) after the fact; nothing here runs inside
// the simulation.
package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"potemkin/internal/gateway"
	"potemkin/internal/metrics"
)

// Timeline is the reconstructed life of one honeyfarm address.
type Timeline struct {
	Addr       string
	BoundAt    float64 // -1 when the event is missing
	ActiveAt   float64
	DetectedAt float64
	RecycledAt float64
	// Reboots counts how many times the address was re-bound.
	Reboots int
	// ReflectedFrom is the peer recorded on a reflected binding.
	ReflectedFrom string
	Reflected     bool
	SpawnFailed   bool
}

// Lifetime returns the bound→recycled span, or -1 if unknown.
func (tl *Timeline) Lifetime() float64 {
	if tl.BoundAt < 0 || tl.RecycledAt < 0 {
		return -1
	}
	return tl.RecycledAt - tl.BoundAt
}

// DetectLatency returns active→detected, or -1 if not detected.
func (tl *Timeline) DetectLatency() float64 {
	if tl.DetectedAt < 0 || tl.ActiveAt < 0 {
		return -1
	}
	return tl.DetectedAt - tl.ActiveAt
}

// ChainEdge is one reflected attack: the VM at From contacted the
// external address Ext, which the gateway impersonated at To.
type ChainEdge struct {
	T    float64
	From string // attacking honeyfarm VM
	Ext  string // external destination the malware intended
	To   string // honeyfarm address that played Ext
}

// Report is the reconstructed incident.
type Report struct {
	Events      int
	Bindings    int // bound events
	Recycled    int
	SpawnFails  int
	Detections  int
	Reflections int
	DNSLookups  int

	Timelines map[string]*Timeline
	Edges     []ChainEdge

	// ChainDepth maps each address to its depth in the reflection
	// forest (1 = attacked directly from outside or never attacked).
	ChainDepth map[string]int
	// MaxChainDepth is the deepest captured chain.
	MaxChainDepth int
}

// Analyze parses a JSONL event stream and reconstructs the incident.
func Analyze(r io.Reader) (*Report, error) {
	rep := &Report{
		Timelines:  make(map[string]*Timeline),
		ChainDepth: make(map[string]int),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev gateway.Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("analysis: line %d: %w", line, err)
		}
		rep.Events++
		rep.apply(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.buildChains()
	return rep, nil
}

func (rep *Report) timeline(addr string) *Timeline {
	tl, ok := rep.Timelines[addr]
	if !ok {
		tl = &Timeline{Addr: addr, BoundAt: -1, ActiveAt: -1, DetectedAt: -1, RecycledAt: -1}
		rep.Timelines[addr] = tl
	}
	return tl
}

func (rep *Report) apply(ev gateway.Event) {
	switch ev.Kind {
	case gateway.EvBound:
		rep.Bindings++
		tl := rep.timeline(ev.Addr)
		if tl.BoundAt >= 0 {
			tl.Reboots++
			// Re-binding starts a fresh life; keep the most recent.
			*tl = Timeline{Addr: ev.Addr, BoundAt: ev.T, ActiveAt: -1,
				DetectedAt: -1, RecycledAt: -1, Reboots: tl.Reboots}
		} else {
			tl.BoundAt = ev.T
		}
		if ev.Detail == "reflected" {
			tl.Reflected = true
			tl.ReflectedFrom = ev.Peer
		}
	case gateway.EvActive:
		rep.timeline(ev.Addr).ActiveAt = ev.T
	case gateway.EvDetected:
		rep.Detections++
		rep.timeline(ev.Addr).DetectedAt = ev.T
	case gateway.EvRecycled:
		rep.Recycled++
		rep.timeline(ev.Addr).RecycledAt = ev.T
	case gateway.EvSpawnFail:
		rep.SpawnFails++
		rep.timeline(ev.Addr).SpawnFailed = true
	case gateway.EvReflected:
		rep.Reflections++
		to := strings.TrimPrefix(ev.Detail, "to ")
		rep.Edges = append(rep.Edges, ChainEdge{T: ev.T, From: ev.Addr, Ext: ev.Peer, To: to})
	case gateway.EvDNSProxied:
		rep.DNSLookups++
	}
}

// buildChains computes reflection-forest depths: depth(child) =
// depth(parent) + 1, where an edge parent→child exists when parent's
// reflected traffic landed on child. Addresses that are never a
// reflection target have depth 1.
func (rep *Report) buildChains() {
	parents := make(map[string]string) // child addr -> attacking addr
	for _, e := range rep.Edges {
		if _, taken := parents[e.To]; !taken {
			parents[e.To] = e.From
		}
	}
	var depthOf func(addr string, hops int) int
	depthOf = func(addr string, hops int) int {
		if hops > 512 {
			return hops // cycle guard; reflections can be mutual
		}
		p, ok := parents[addr]
		if !ok || p == addr {
			return 1
		}
		return depthOf(p, hops+1) + 1
	}
	for addr := range rep.Timelines {
		d := depthOf(addr, 0)
		rep.ChainDepth[addr] = d
		if d > rep.MaxChainDepth {
			rep.MaxChainDepth = d
		}
	}
}

// MeanLifetime returns the average bound→recycled span across
// completed bindings, or -1 when none completed.
func (rep *Report) MeanLifetime() float64 {
	sum, n := 0.0, 0
	for _, tl := range rep.Timelines {
		if lt := tl.Lifetime(); lt >= 0 {
			sum += lt
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// Render writes a human-readable incident report.
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "incident report (%d events)\n", rep.Events)
	fmt.Fprintf(w, "  bindings     %d (%d recycled, %d spawn failures)\n",
		rep.Bindings, rep.Recycled, rep.SpawnFails)
	fmt.Fprintf(w, "  detections   %d\n", rep.Detections)
	fmt.Fprintf(w, "  reflections  %d (max chain depth %d)\n", rep.Reflections, rep.MaxChainDepth)
	fmt.Fprintf(w, "  dns lookups  %d\n", rep.DNSLookups)
	if lt := rep.MeanLifetime(); lt >= 0 {
		fmt.Fprintf(w, "  mean binding lifetime %.1fs\n", lt)
	}

	// Detected VMs, in detection order.
	var detected []*Timeline
	for _, tl := range rep.Timelines {
		if tl.DetectedAt >= 0 {
			detected = append(detected, tl)
		}
	}
	sort.Slice(detected, func(i, j int) bool { return detected[i].DetectedAt < detected[j].DetectedAt })
	if len(detected) > 0 {
		fmt.Fprintf(w, "\ncompromised VMs:\n")
		for _, tl := range detected {
			line := fmt.Sprintf("  t=%-8.3f %s depth=%d", tl.DetectedAt, tl.Addr, rep.ChainDepth[tl.Addr])
			if tl.Reflected {
				line += " (reflected from " + tl.ReflectedFrom + ")"
			}
			fmt.Fprintln(w, line)
		}
	}
}

// TimelinesTable renders every address's reconstructed timeline as a
// metrics table (for CSV export and spreadsheet triage), sorted by
// bind time.
func (rep *Report) TimelinesTable() *metrics.Table {
	tab := metrics.NewTable("binding timelines",
		"addr", "bound_s", "active_s", "detected_s", "recycled_s",
		"lifetime_s", "chain_depth", "reflected", "reboots")
	var rows []*Timeline
	for _, tl := range rep.Timelines {
		rows = append(rows, tl)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].BoundAt != rows[j].BoundAt {
			return rows[i].BoundAt < rows[j].BoundAt
		}
		return rows[i].Addr < rows[j].Addr
	})
	cell := func(v float64) any {
		if v < 0 {
			return ""
		}
		return v
	}
	for _, tl := range rows {
		tab.AddRow(tl.Addr, cell(tl.BoundAt), cell(tl.ActiveAt), cell(tl.DetectedAt),
			cell(tl.RecycledAt), cell(tl.Lifetime()), rep.ChainDepth[tl.Addr],
			fmt.Sprint(tl.Reflected), tl.Reboots)
	}
	return tab
}

// DumpChains writes the reflection edges in time order (forensic view
// of how the infection moved).
func (rep *Report) DumpChains(w io.Writer) {
	edges := append([]ChainEdge(nil), rep.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].T < edges[j].T })
	for _, e := range edges {
		fmt.Fprintf(w, "t=%-8.3f %s -> %s (impersonated by %s)\n", e.T, e.From, e.Ext, e.To)
	}
}
