package analysis

import (
	"bytes"
	"strings"
	"testing"

	"potemkin/internal/gateway"
)

// jsonl builds a log from events.
func jsonl(events ...gateway.Event) *bytes.Buffer {
	var buf bytes.Buffer
	sink := gateway.JSONLSink(&buf, nil)
	for _, ev := range events {
		sink(ev)
	}
	return &buf
}

func TestAnalyzeTimeline(t *testing.T) {
	rep, err := Analyze(jsonl(
		gateway.Event{T: 1.0, Kind: gateway.EvBound, Addr: "10.5.0.1", Peer: "6.6.6.6"},
		gateway.Event{T: 1.5, Kind: gateway.EvActive, Addr: "10.5.0.1"},
		gateway.Event{T: 3.0, Kind: gateway.EvDetected, Addr: "10.5.0.1", Peer: "9.9.9.9"},
		gateway.Event{T: 9.0, Kind: gateway.EvRecycled, Addr: "10.5.0.1"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 4 || rep.Bindings != 1 || rep.Detections != 1 || rep.Recycled != 1 {
		t.Errorf("counts: %+v", rep)
	}
	tl := rep.Timelines["10.5.0.1"]
	if tl == nil {
		t.Fatal("no timeline")
	}
	if tl.Lifetime() != 8.0 {
		t.Errorf("lifetime = %v", tl.Lifetime())
	}
	if tl.DetectLatency() != 1.5 {
		t.Errorf("detect latency = %v", tl.DetectLatency())
	}
	if rep.MeanLifetime() != 8.0 {
		t.Errorf("mean lifetime = %v", rep.MeanLifetime())
	}
}

func TestAnalyzeRebinding(t *testing.T) {
	rep, err := Analyze(jsonl(
		gateway.Event{T: 1, Kind: gateway.EvBound, Addr: "a"},
		gateway.Event{T: 2, Kind: gateway.EvRecycled, Addr: "a"},
		gateway.Event{T: 5, Kind: gateway.EvBound, Addr: "a"},
	))
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timelines["a"]
	if tl.Reboots != 1 || tl.BoundAt != 5 || tl.RecycledAt != -1 {
		t.Errorf("rebinding timeline: %+v", tl)
	}
}

func TestAnalyzeChains(t *testing.T) {
	rep, err := Analyze(jsonl(
		// Patient zero at .1, reflected to .2, which reflects to .3.
		gateway.Event{T: 1, Kind: gateway.EvBound, Addr: "10.5.0.1", Peer: "6.6.6.6"},
		gateway.Event{T: 2, Kind: gateway.EvReflected, Addr: "10.5.0.1", Peer: "99.0.0.1", Detail: "to 10.5.0.2"},
		gateway.Event{T: 2, Kind: gateway.EvBound, Addr: "10.5.0.2", Peer: "10.5.0.1", Detail: "reflected"},
		gateway.Event{T: 4, Kind: gateway.EvReflected, Addr: "10.5.0.2", Peer: "99.0.0.2", Detail: "to 10.5.0.3"},
		gateway.Event{T: 4, Kind: gateway.EvBound, Addr: "10.5.0.3", Peer: "10.5.0.2", Detail: "reflected"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reflections != 2 {
		t.Errorf("reflections = %d", rep.Reflections)
	}
	want := map[string]int{"10.5.0.1": 1, "10.5.0.2": 2, "10.5.0.3": 3}
	for addr, depth := range want {
		if rep.ChainDepth[addr] != depth {
			t.Errorf("depth[%s] = %d, want %d", addr, rep.ChainDepth[addr], depth)
		}
	}
	if rep.MaxChainDepth != 3 {
		t.Errorf("max depth = %d", rep.MaxChainDepth)
	}
	if tl := rep.Timelines["10.5.0.2"]; !tl.Reflected || tl.ReflectedFrom != "10.5.0.1" {
		t.Errorf("reflected timeline: %+v", tl)
	}
}

func TestAnalyzeCycleGuard(t *testing.T) {
	rep, err := Analyze(jsonl(
		gateway.Event{T: 1, Kind: gateway.EvReflected, Addr: "a", Detail: "to b"},
		gateway.Event{T: 2, Kind: gateway.EvReflected, Addr: "b", Detail: "to a"},
		gateway.Event{T: 3, Kind: gateway.EvBound, Addr: "a"},
		gateway.Event{T: 3, Kind: gateway.EvBound, Addr: "b"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxChainDepth < 2 {
		t.Errorf("cycle produced depth %d", rep.MaxChainDepth)
	}
	// Terminates: reaching here is the test.
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := Analyze(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	rep, err := Analyze(strings.NewReader("\n\n"))
	if err != nil || rep.Events != 0 {
		t.Errorf("blank lines: %v %v", rep, err)
	}
}

func TestRenderReport(t *testing.T) {
	rep, _ := Analyze(jsonl(
		gateway.Event{T: 1, Kind: gateway.EvBound, Addr: "10.5.0.1"},
		gateway.Event{T: 1.5, Kind: gateway.EvActive, Addr: "10.5.0.1"},
		gateway.Event{T: 3, Kind: gateway.EvDetected, Addr: "10.5.0.1"},
		gateway.Event{T: 4, Kind: gateway.EvDNSProxied, Addr: "10.5.0.1", Peer: "8.8.8.8"},
	))
	var out bytes.Buffer
	rep.Render(&out)
	s := out.String()
	for _, want := range []string{"detections   1", "dns lookups  1", "compromised VMs", "10.5.0.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestTimelinesTable(t *testing.T) {
	rep, _ := Analyze(jsonl(
		gateway.Event{T: 2, Kind: gateway.EvBound, Addr: "10.5.0.2"},
		gateway.Event{T: 1, Kind: gateway.EvBound, Addr: "10.5.0.1"},
		gateway.Event{T: 1.5, Kind: gateway.EvActive, Addr: "10.5.0.1"},
		gateway.Event{T: 9, Kind: gateway.EvRecycled, Addr: "10.5.0.1"},
	))
	tab := rep.TimelinesTable()
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Sorted by bind time: .1 first.
	if tab.Row(0)[0] != "10.5.0.1" || tab.Row(1)[0] != "10.5.0.2" {
		t.Errorf("order: %v / %v", tab.Row(0), tab.Row(1))
	}
	if tab.Row(0)[5] != "8" { // lifetime
		t.Errorf("lifetime cell = %q", tab.Row(0)[5])
	}
	if tab.Row(1)[4] != "" { // never recycled
		t.Errorf("recycled cell = %q", tab.Row(1)[4])
	}
}

// End to end: run a real incident through the honeyfarm, analyze its
// log, and verify the reconstruction matches the live stats.
func TestAnalyzeRealIncident(t *testing.T) {
	var logBuf bytes.Buffer
	_, liveReflections := newIncidentFarm(t, gateway.JSONLSink(&logBuf, nil))

	rep, err := Analyze(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detections == 0 {
		t.Error("no detections reconstructed")
	}
	if rep.Reflections == 0 || rep.MaxChainDepth < 2 {
		t.Errorf("chains not reconstructed: refl=%d depth=%d", rep.Reflections, rep.MaxChainDepth)
	}
	if uint64(rep.Reflections) != liveReflections {
		t.Errorf("reflections %d != live %d", rep.Reflections, liveReflections)
	}
	var out bytes.Buffer
	rep.Render(&out)
	rep.DumpChains(&out)
	if !strings.Contains(out.String(), "impersonated by") {
		t.Error("chain dump empty")
	}
}
