package mem

import "fmt"

// Image is an immutable memory snapshot — the "reference image" flash
// cloning starts from. Clones attach to it as overlays: creating one
// costs nothing per page, and a clone pays for a page only when it
// writes it (delta virtualization). The image must outlive its clones;
// Release enforces that.
type Image struct {
	store    *Store
	pages    map[uint64]PTE // Private is always false in an image
	numPages uint64
	clones   uint64 // total clones ever created
	live     int64  // clones currently attached
	released bool
}

// Snapshot freezes the current contents of a scratch address space as
// an Image. The source space remains usable; its pages become shared,
// so its next write to each page will CoW. Snapshotting an overlay
// (cloned) space is not supported.
func Snapshot(a *AddressSpace) *Image {
	if a.released {
		panic("mem: snapshot of released space")
	}
	if a.base != nil {
		panic("mem: snapshot of cloned space not supported")
	}
	img := &Image{
		store:    a.store,
		pages:    make(map[uint64]PTE, len(a.pages)),
		numPages: a.numPages,
	}
	for vpn, pte := range a.pages {
		a.store.IncRef(pte.Frame)
		img.pages[vpn] = PTE{Frame: pte.Frame}
		if pte.Private {
			a.pages[vpn] = PTE{Frame: pte.Frame} // now shared
		}
	}
	return img
}

// BuildImage synthesizes a reference image directly: residentPages
// pattern pages (deterministic content derived from seed) out of
// numPages total. This stands in for a booted guest OS snapshot without
// holding its bytes in host RAM.
func BuildImage(store *Store, numPages, residentPages, seed uint64) *Image {
	if residentPages > numPages {
		panic(fmt.Sprintf("mem: resident %d > total %d", residentPages, numPages))
	}
	img := &Image{
		store:    store,
		pages:    make(map[uint64]PTE, residentPages),
		numPages: numPages,
	}
	for i := uint64(0); i < residentPages; i++ {
		img.pages[i] = PTE{Frame: store.AllocPattern(seed + i + 1)}
	}
	return img
}

// NewPatternSpace builds a private (unshared) scratch space with the
// same synthetic content BuildImage(store, numPages, residentPages,
// seed) would produce. It is the full-copy baseline against which delta
// virtualization is compared: every resident page costs a frame.
func NewPatternSpace(store *Store, numPages, residentPages, seed uint64) *AddressSpace {
	if residentPages > numPages {
		panic(fmt.Sprintf("mem: resident %d > total %d", residentPages, numPages))
	}
	a := NewAddressSpace(store, numPages)
	for i := uint64(0); i < residentPages; i++ {
		a.setPage(i, PTE{Frame: store.AllocPattern(seed + i + 1), Private: true})
	}
	return a
}

// NumPages returns the guest-physical size in pages.
func (img *Image) NumPages() uint64 { return img.numPages }

// ResidentPages returns the number of pages the image actually backs.
func (img *Image) ResidentPages() int { return len(img.pages) }

// Clones returns how many address spaces have been cloned from the
// image over its lifetime.
func (img *Image) Clones() uint64 { return img.clones }

// LiveClones returns how many clones are currently attached.
func (img *Image) LiveClones() int64 { return img.live }

// NewClone attaches a new overlay address space to the image. This is
// the memory half of flash cloning: O(1) work, zero frame copies, zero
// new page-table entries until the clone writes.
func (img *Image) NewClone() *AddressSpace {
	if img.released {
		panic("mem: clone of released image")
	}
	a := NewAddressSpace(img.store, img.numPages)
	a.base = img
	img.clones++
	img.live++
	return a
}

// Release drops the image's frame references. All clones must be
// released first; Release panics otherwise, because overlay clones read
// through the image.
func (img *Image) Release() {
	if img.released {
		return
	}
	if img.live > 0 {
		panic(fmt.Sprintf("mem: releasing image with %d live clones", img.live))
	}
	for vpn, pte := range img.pages {
		img.store.DecRef(pte.Frame)
		delete(img.pages, vpn)
	}
	img.released = true
}

// frameRefs accumulates the image's references per frame.
func (img *Image) frameRefs(into map[FrameID]int64) {
	for _, pte := range img.pages {
		into[pte.Frame]++
	}
}
