package mem

import (
	"bytes"
	"testing"

	"potemkin/internal/sim"
)

func TestSharePassMergesIdenticalPages(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 64, 16, 7)
	a := img.NewClone()
	b := img.NewClone()
	c := img.NewClone()

	// All three write the same content to page 3 (CoW divergence that
	// re-converges — e.g. the same patch applied everywhere).
	same := page(0xAB)
	a.Write(3, 0, same)
	b.Write(3, 0, same)
	c.Write(3, 0, same)
	// And distinct content to page 4.
	a.Write(4, 0, page(1))
	b.Write(4, 0, page(2))

	framesBefore := s.FrameCount()
	res := SharePass(s, []*AddressSpace{a, b, c})
	if res.PagesMerged != 2 {
		t.Errorf("merged = %d, want 2", res.PagesMerged)
	}
	if res.BytesFreed != 2*PageSize {
		t.Errorf("freed = %d", res.BytesFreed)
	}
	if got := framesBefore - s.FrameCount(); got != 2 {
		t.Errorf("frames reclaimed = %d, want 2", got)
	}
	// Content is intact everywhere.
	for _, sp := range []*AddressSpace{a, b, c} {
		if !bytes.Equal(sp.Read(3, 0, PageSize), same) {
			t.Fatal("merged page content corrupted")
		}
	}
	// Distinct pages untouched.
	if a.Read(4, 0, 1)[0] != 1 || b.Read(4, 0, 1)[0] != 2 {
		t.Error("distinct pages merged")
	}
	// Refcount invariants hold.
	if err := s.CheckRefs(ExternalRefs([]*AddressSpace{a, b, c}, []*Image{img})); err != nil {
		t.Fatal(err)
	}
}

func TestSharePassWriteAfterMergeIsolates(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 16, 4, 1)
	a := img.NewClone()
	b := img.NewClone()
	same := page(0x42)
	a.Write(0, 0, same)
	b.Write(0, 0, same)
	SharePass(s, []*AddressSpace{a, b})

	// Post-merge write must CoW, not corrupt the sibling.
	a.Write(0, 10, []byte{0xFF})
	if b.Read(0, 10, 1)[0] != 0x42 {
		t.Fatal("write after merge leaked to sibling")
	}
	if a.Read(0, 10, 1)[0] != 0xFF {
		t.Fatal("writer lost its own write")
	}
	if err := s.CheckRefs(ExternalRefs([]*AddressSpace{a, b}, []*Image{img})); err != nil {
		t.Fatal(err)
	}
}

func TestSharePassIdempotent(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 16, 4, 1)
	a := img.NewClone()
	b := img.NewClone()
	same := page(9)
	a.Write(0, 0, same)
	b.Write(0, 0, same)
	first := SharePass(s, []*AddressSpace{a, b})
	second := SharePass(s, []*AddressSpace{a, b})
	if first.PagesMerged != 1 || second.PagesMerged != 0 {
		t.Errorf("merges = %d then %d, want 1 then 0", first.PagesMerged, second.PagesMerged)
	}
}

func TestSharePassSkipsSharedAndZero(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 16, 8, 1)
	a := img.NewClone()
	b := img.NewClone()
	// Zero writes to pages the image never backed land on the shared
	// zero frame; untouched image pages stay shared. Neither is merge
	// material.
	a.Write(10, 0, make([]byte, PageSize))
	b.Write(10, 0, make([]byte, PageSize))
	res := SharePass(s, []*AddressSpace{a, b})
	if res.PagesMerged != 0 {
		t.Errorf("merged = %d over zero/shared pages", res.PagesMerged)
	}
	if res.PagesScanned != 0 {
		t.Errorf("scanned = %d shared frames", res.PagesScanned)
	}
}

func TestSharePassRandomizedInvariant(t *testing.T) {
	r := sim.NewRNG(3)
	s := NewStore()
	img := BuildImage(s, 64, 32, 5)
	var spaces []*AddressSpace
	for i := 0; i < 6; i++ {
		spaces = append(spaces, img.NewClone())
	}
	// Random writes drawn from a small content alphabet (lots of
	// accidental duplication, like real guests).
	for i := 0; i < 2000; i++ {
		sp := spaces[r.Intn(len(spaces))]
		sp.Write(uint64(r.Intn(64)), 0, page(byte(r.Intn(4))))
	}
	before := s.ModeledBytes()
	res := SharePass(s, spaces)
	if res.PagesMerged == 0 {
		t.Fatal("no merges on duplicate-heavy workload")
	}
	if s.ModeledBytes() != before-res.BytesFreed {
		t.Errorf("accounting: %d != %d - %d", s.ModeledBytes(), before, res.BytesFreed)
	}
	if err := s.CheckRefs(ExternalRefs(spaces, []*Image{img})); err != nil {
		t.Fatal(err)
	}
	// Content correctness: all spaces still read what they last wrote —
	// verified indirectly by a second pass finding nothing new wrong and
	// by the refcount census above; do a spot write/read too.
	spaces[0].Write(1, 100, []byte("post-merge"))
	if got := spaces[0].Read(1, 100, 10); string(got) != "post-merge" {
		t.Error("post-merge write lost")
	}
}
