// Package mem is the page-granularity memory substrate underneath the
// simulated VMM. It implements the mechanisms Potemkin's "delta
// virtualization" relies on: a machine-wide frame store with reference
// counting, zero-page sharing, optional content-based sharing, per-VM
// address spaces with copy-on-write semantics, and immutable snapshots
// (reference images) that new VMs flash-clone from.
//
// Sharing here is real: clones reference the same frames, a write to a
// shared frame genuinely copies bytes, and accounting is derived from the
// frame table — so the memory-savings experiments (E2) measure mechanism
// behaviour, not a formula.
//
// The frame table is a dense slab ([]frame) with an intrusive free list
// rather than a map of heap-allocated frames: allocation is a free-list
// pop (or append), freeing is a push, and FrameIDs carry a generation
// number so dangling IDs are caught when a slot is reused. Page buffers
// of freed frames are recycled through a bounded pool, so steady-state
// VM churn allocates no garbage on the alloc/CoW hot paths.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// PageSize is the page granularity in bytes, matching x86.
const PageSize = 4096

// FrameID names a machine frame in a Store. The zero FrameID is invalid.
//
// IDs pack a slab index (low 32 bits) with the slot's generation (high
// 32 bits). The generation is bumped every time a slot is freed, so an
// ID held across a free/reuse cycle no longer matches its slot and any
// use panics instead of silently aliasing the new tenant.
type FrameID uint64

func makeFrameID(idx, gen uint32) FrameID {
	return FrameID(uint64(gen)<<32 | uint64(idx))
}

func (id FrameID) index() uint32      { return uint32(id) }
func (id FrameID) generation() uint32 { return uint32(id >> 32) }

// frame is one machine page slot in the slab. Content is either explicit
// bytes, a deterministic pattern (materialized lazily, so large synthetic
// reference images do not occupy host RAM), or all-zeroes (data == nil,
// pattern == 0). refs == 0 marks a free slot.
type frame struct {
	refs    int64
	data    []byte
	pattern uint64 // nonzero: content is pattern-generated until materialized
	hash    uint64
	hashed  bool

	// gen is the slot generation FrameIDs must match; bumped on free.
	gen uint32
	// nextFree links free slots (intrusive free list); meaningful only
	// while refs == 0.
	nextFree uint32

	// Private-page accounting (see Store.updatePrivate): holder/extra
	// form the multiset of address spaces currently mapping this frame
	// (one entry per mapping; the single-holder common case costs one
	// pointer, no allocation). priv is the space currently counting this
	// frame as private, i.e. the sole holder of a refs==1 frame.
	holder      *AddressSpace
	extra       []*AddressSpace
	holderCount int32
	priv        *AddressSpace
}

// StoreStats counts frame-store activity.
type StoreStats struct {
	Allocs      uint64 // frames created
	Frees       uint64 // frames destroyed
	CowCopies   uint64 // frames created by copy-on-write faults
	DedupHits   uint64 // allocations satisfied by content sharing
	ZeroHits    uint64 // allocations satisfied by the zero page
	PeakFrames  int    // high-water mark of live frames
	PeakModeled uint64 // high-water mark of modeled bytes
}

// noFreeSlot terminates the intrusive free list.
const noFreeSlot = ^uint32(0)

// bufPoolCap bounds the recycled page-buffer pool (4 MiB of 4 KiB
// pages). Churn beyond the cap falls back to the allocator, exactly the
// pre-slab behaviour.
const bufPoolCap = 1024

// Store is a machine-wide refcounted frame table shared by every VM on a
// simulated physical host. It is not safe for concurrent use; the VMM is
// single-threaded under the sim kernel.
type Store struct {
	// slab[0] is a permanently-dead sentinel so index 0 (and hence
	// FrameID 0) is never valid.
	slab     []frame
	freeHead uint32
	live     int // live frames, maintained incrementally

	// ShareContent enables content-based page sharing: AllocData and
	// snapshot registration coalesce identical pages. Zero pages are
	// always shared regardless.
	ShareContent bool

	zero  FrameID
	dedup map[uint64][]FrameID

	bufPool [][]byte

	stats StoreStats
}

// NewStore returns an empty store with a preallocated shared zero frame.
func NewStore() *Store {
	s := &Store{
		slab:     make([]frame, 1, 64), // slot 0 reserved
		freeHead: noFreeSlot,
		dedup:    make(map[uint64][]FrameID),
	}
	// The canonical zero frame holds one permanent self-reference so VM
	// churn can never free it.
	s.zero, _ = s.alloc()
	return s
}

// alloc carves a fresh frame slot (free-list pop or slab append) with
// refs == 1 and updates the incremental live/peak counters. The returned
// pointer is valid only until the next alloc (the slab may move).
func (s *Store) alloc() (FrameID, *frame) {
	var idx uint32
	if s.freeHead != noFreeSlot {
		idx = s.freeHead
		s.freeHead = s.slab[idx].nextFree
	} else {
		s.slab = append(s.slab, frame{gen: 1})
		idx = uint32(len(s.slab) - 1)
	}
	f := &s.slab[idx]
	f.refs = 1
	s.live++
	s.stats.Allocs++
	if s.live > s.stats.PeakFrames {
		s.stats.PeakFrames = s.live
		s.stats.PeakModeled = uint64(s.live) * PageSize
	}
	return makeFrameID(idx, f.gen), f
}

// free returns a slot to the free list, bumping its generation so stale
// FrameIDs are caught, and recycles its page buffer.
func (s *Store) free(idx uint32) {
	f := &s.slab[idx]
	if f.data != nil {
		s.putBuf(f.data)
		f.data = nil
	}
	f.pattern = 0
	f.hash = 0
	f.hashed = false
	f.holder = nil
	if f.extra != nil {
		clear(f.extra)
		f.extra = f.extra[:0]
	}
	f.holderCount = 0
	f.priv = nil
	f.gen++
	f.nextFree = s.freeHead
	s.freeHead = idx
	s.live--
	s.stats.Frees++
}

func (s *Store) getBuf() []byte {
	if n := len(s.bufPool); n > 0 {
		b := s.bufPool[n-1]
		s.bufPool[n-1] = nil
		s.bufPool = s.bufPool[:n-1]
		return b
	}
	return make([]byte, PageSize)
}

func (s *Store) putBuf(b []byte) {
	if len(s.bufPool) < bufPoolCap {
		s.bufPool = append(s.bufPool, b)
	}
}

// Stats returns a copy of the store counters.
func (s *Store) Stats() StoreStats { return s.stats }

// ZeroFrame returns the canonical all-zero frame with an added reference.
func (s *Store) ZeroFrame() FrameID {
	s.must(s.zero).refs++
	s.stats.ZeroHits++
	return s.zero
}

// IsZeroFrame reports whether id is the canonical zero frame.
func (s *Store) IsZeroFrame(id FrameID) bool { return id == s.zero }

// FrameCount returns the number of live frames (including the zero
// frame). O(1): the count is maintained as frames come and go.
func (s *Store) FrameCount() int { return s.live }

// ModeledBytes returns the machine memory the frames would occupy on real
// hardware: one PageSize per live frame. This is the quantity the
// paper's VMs-per-server arithmetic is about. O(1): derived from the
// incremental live-frame counter, so sampling it in a loop (E2 does)
// costs nothing.
func (s *Store) ModeledBytes() uint64 { return uint64(s.live) * PageSize }

// Refs returns the reference count of a frame.
func (s *Store) Refs(id FrameID) int64 {
	return s.must(id).refs
}

func (s *Store) must(id FrameID) *frame {
	idx := id.index()
	if idx == 0 || int(idx) >= len(s.slab) {
		panic(fmt.Sprintf("mem: dangling frame %d", id))
	}
	f := &s.slab[idx]
	if f.gen != id.generation() || f.refs <= 0 {
		panic(fmt.Sprintf("mem: dangling frame %d", id))
	}
	return f
}

// alive reports whether a frame id is still present.
func (s *Store) alive(id FrameID) bool {
	idx := id.index()
	if idx == 0 || int(idx) >= len(s.slab) {
		return false
	}
	f := &s.slab[idx]
	return f.gen == id.generation() && f.refs > 0
}

// IncRef adds a reference to a frame.
func (s *Store) IncRef(id FrameID) {
	f := s.must(id)
	f.refs++
	s.updatePrivate(f)
}

// DecRef drops a reference, freeing the frame at zero.
func (s *Store) DecRef(id FrameID) {
	f := s.must(id)
	f.refs--
	if f.refs < 0 {
		panic(fmt.Sprintf("mem: negative refcount on frame %d", id))
	}
	s.updatePrivate(f)
	if f.refs == 0 {
		if f.hashed {
			s.dropDedup(f.hash, id)
		}
		s.free(id.index())
	}
}

// addHolder records that space a maps frame id (one call per mapping).
// The zero frame is exempt: it is never private and its holder multiset
// would be as large as the page tables mapping it.
func (s *Store) addHolder(id FrameID, a *AddressSpace) {
	if id == s.zero {
		return
	}
	f := s.must(id)
	if f.holderCount == 0 {
		f.holder = a
	} else {
		f.extra = append(f.extra, a)
	}
	f.holderCount++
	s.updatePrivate(f)
}

// dropHolder removes one mapping of frame id by space a. Must be called
// before the mapping's DecRef.
func (s *Store) dropHolder(id FrameID, a *AddressSpace) {
	if id == s.zero {
		return
	}
	f := s.must(id)
	if f.holder == a {
		if n := len(f.extra); n > 0 {
			f.holder = f.extra[n-1]
			f.extra[n-1] = nil
			f.extra = f.extra[:n-1]
		} else {
			f.holder = nil
		}
	} else {
		for i, h := range f.extra {
			if h == a {
				n := len(f.extra)
				f.extra[i] = f.extra[n-1]
				f.extra[n-1] = nil
				f.extra = f.extra[:n-1]
				break
			}
		}
	}
	f.holderCount--
	s.updatePrivate(f)
}

// updatePrivate maintains the per-space private-page counters: a frame
// is private to a space exactly when that space holds the frame's only
// reference. Called after every refcount or holder change, it moves the
// frame's private attribution in O(1), which is what lets
// AddressSpace.PrivatePages stop scanning.
func (s *Store) updatePrivate(f *frame) {
	var p *AddressSpace
	if f.refs == 1 && f.holderCount == 1 {
		p = f.holder
	}
	if p == f.priv {
		return
	}
	if f.priv != nil {
		f.priv.private--
	}
	if p != nil {
		p.private++
	}
	f.priv = p
}

func (s *Store) dropDedup(hash uint64, id FrameID) {
	list := s.dedup[hash]
	for i, v := range list {
		if v == id {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(s.dedup, hash)
	} else {
		s.dedup[hash] = list
	}
}

// materialize ensures f.data holds explicit bytes.
func (s *Store) materialize(f *frame) []byte {
	if f.data == nil {
		buf := s.getBuf()
		if f.pattern != 0 {
			fillPattern(buf, f.pattern)
			f.pattern = 0
		} else {
			clear(buf) // recycled buffers carry stale content
		}
		f.data = buf
	}
	return f.data
}

// fillPattern writes a deterministic, seed-dependent byte pattern.
func fillPattern(dst []byte, seed uint64) {
	x := seed
	for i := 0; i+8 <= len(dst); i += 8 {
		// splitmix64 step
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		binary.LittleEndian.PutUint64(dst[i:], z^(z>>31))
	}
}

// isAllZero scans a word (uint64) at a time; pages are 8-byte aligned in
// length so the tail loop is for short slices only.
func isAllZero(b []byte) bool {
	for len(b) >= 8 {
		if binary.LittleEndian.Uint64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// AllocData allocates a frame holding a copy of b (which must be
// PageSize long), returning the zero frame for all-zero content and a
// deduplicated frame when ShareContent is on.
func (s *Store) AllocData(b []byte) FrameID {
	if len(b) != PageSize {
		panic(fmt.Sprintf("mem: AllocData with %d bytes", len(b)))
	}
	if isAllZero(b) {
		return s.ZeroFrame()
	}
	if s.ShareContent {
		h := contentHash(b)
		for _, cand := range s.dedup[h] {
			f := s.must(cand)
			if bytes.Equal(s.materialize(f), b) {
				f.refs++
				s.updatePrivate(f)
				s.stats.DedupHits++
				return cand
			}
		}
		id, f := s.alloc()
		f.data = s.getBuf()
		copy(f.data, b)
		f.hash = h
		f.hashed = true
		s.dedup[h] = append(s.dedup[h], id)
		return id
	}
	id, f := s.alloc()
	f.data = s.getBuf()
	copy(f.data, b)
	return id
}

// AllocZeroFill allocates a frame whose content is all-zero except b
// written at off — the zero-fill fault path for writes to unmapped
// pages. It avoids building a scratch page: small writes of zeroes still
// coalesce onto the zero frame, and under ShareContent the constructed
// page participates in dedup exactly as AllocData would.
func (s *Store) AllocZeroFill(off int, b []byte) FrameID {
	if off < 0 || off+len(b) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page", off, off+len(b)))
	}
	if isAllZero(b) {
		return s.ZeroFrame()
	}
	if s.ShareContent {
		// Dedup needs the full page bytes to hash; build it in a pooled
		// buffer and hand it to the regular dedup path.
		buf := s.getBuf()
		clear(buf)
		copy(buf[off:], b)
		id := s.AllocData(buf)
		s.putBuf(buf)
		return id
	}
	id, f := s.alloc()
	buf := s.getBuf()
	clear(buf)
	copy(buf[off:], b)
	f.data = buf
	return id
}

// contentHash hashes a page a word (uint64) at a time: FNV-style
// combine per word with a final avalanche. Only used as a dedup bucket
// key (matches are verified byte-for-byte), so the exact function may
// change; it must only be deterministic within a process.
func contentHash(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 0x100000001b3
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	// splitmix64 finalizer: the FNV word loop alone mixes high bytes
	// poorly.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func bytesEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// AllocCopyWrite allocates a new private frame holding a copy of src's
// content with b applied at off — the copy-on-write fault path for
// image-backed pages. src's reference count is untouched (the image
// keeps its reference).
func (s *Store) AllocCopyWrite(src FrameID, off int, b []byte) FrameID {
	if off < 0 || off+len(b) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page", off, off+len(b)))
	}
	s.must(src) // validate before the slab may move
	id, nf := s.alloc()
	buf := s.getBuf()
	nf.data = buf
	copy(buf, s.View(src))
	copy(buf[off:], b)
	s.stats.CowCopies++
	return id
}

// AllocPattern allocates a frame whose content is a deterministic
// function of seed, without materializing bytes. Synthetic reference
// images use this so a 128 MiB guest image costs a few MiB of host RAM.
// seed must be nonzero.
func (s *Store) AllocPattern(seed uint64) FrameID {
	if seed == 0 {
		panic("mem: AllocPattern with zero seed")
	}
	id, f := s.alloc()
	f.pattern = seed
	return id
}

// View returns the frame's content for reading. The returned slice must
// not be modified; use CowWrite for writes. Pattern frames are
// materialized on first view.
func (s *Store) View(id FrameID) []byte {
	f := s.must(id)
	if f.data == nil && f.pattern == 0 {
		return zeroPage[:]
	}
	return s.materialize(f)
}

var zeroPage [PageSize]byte

// CowWrite writes b at offset off into the page, performing
// copy-on-write: if the frame is shared (refs > 1) a private copy is
// created and returned; otherwise the write happens in place. The
// (possibly new) frame ID is returned along with whether a copy happened.
func (s *Store) CowWrite(id FrameID, off int, b []byte) (FrameID, bool) {
	if off < 0 || off+len(b) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page", off, off+len(b)))
	}
	f := s.must(id)
	if f.refs > 1 {
		// Shared: copy, drop our reference on the original. The refs
		// drop happens before alloc so private accounting settles while
		// f is still addressable (alloc may move the slab).
		f.refs--
		s.updatePrivate(f)
		nid, nf := s.alloc()
		buf := s.getBuf()
		nf.data = buf
		copy(buf, s.View(id))
		copy(buf[off:], b)
		s.stats.CowCopies++
		return nid, true
	}
	// Exclusive. A frame that was registered for dedup changes content,
	// so its hash entry must be dropped.
	if f.hashed {
		s.dropDedup(f.hash, id)
		f.hashed = false
	}
	copy(s.materialize(f)[off:], b)
	return id, false
}

// CheckRefs verifies that every frame's reference count equals the
// number of external references reported by refs (plus the zero frame's
// permanent self-reference). It returns an error describing the first
// discrepancy. Tests use it as the leak detector.
func (s *Store) CheckRefs(external map[FrameID]int64) error {
	seen := make(map[FrameID]int64, len(external))
	for id, n := range external {
		seen[id] = n
	}
	seen[s.zero]++ // permanent self-reference
	for idx := 1; idx < len(s.slab); idx++ {
		f := &s.slab[idx]
		if f.refs <= 0 {
			continue // free slot
		}
		id := makeFrameID(uint32(idx), f.gen)
		if f.refs != seen[id] {
			return fmt.Errorf("mem: frame %d has %d refs, expected %d", id, f.refs, seen[id])
		}
		delete(seen, id)
	}
	for id, n := range seen {
		if n != 0 {
			return fmt.Errorf("mem: %d external refs to missing frame %d", n, id)
		}
	}
	return nil
}
