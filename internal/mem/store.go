// Package mem is the page-granularity memory substrate underneath the
// simulated VMM. It implements the mechanisms Potemkin's "delta
// virtualization" relies on: a machine-wide frame store with reference
// counting, zero-page sharing, optional content-based sharing, per-VM
// address spaces with copy-on-write semantics, and immutable snapshots
// (reference images) that new VMs flash-clone from.
//
// Sharing here is real: clones reference the same frames, a write to a
// shared frame genuinely copies bytes, and accounting is derived from the
// frame table — so the memory-savings experiments (E2) measure mechanism
// behaviour, not a formula.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the page granularity in bytes, matching x86.
const PageSize = 4096

// FrameID names a machine frame in a Store. The zero FrameID is invalid.
type FrameID uint64

// frame is one machine page. Content is either explicit bytes, a
// deterministic pattern (materialized lazily, so large synthetic
// reference images do not occupy host RAM), or all-zeroes (data == nil,
// pattern == 0).
type frame struct {
	refs    int64
	data    []byte
	pattern uint64 // nonzero: content is pattern-generated until materialized
	hash    uint64
	hashed  bool
}

// StoreStats counts frame-store activity.
type StoreStats struct {
	Allocs      uint64 // frames created
	Frees       uint64 // frames destroyed
	CowCopies   uint64 // frames created by copy-on-write faults
	DedupHits   uint64 // allocations satisfied by content sharing
	ZeroHits    uint64 // allocations satisfied by the zero page
	PeakFrames  int    // high-water mark of live frames
	PeakModeled uint64 // high-water mark of modeled bytes
}

// Store is a machine-wide refcounted frame table shared by every VM on a
// simulated physical host. It is not safe for concurrent use; the VMM is
// single-threaded under the sim kernel.
type Store struct {
	frames map[FrameID]*frame
	next   FrameID

	// ShareContent enables content-based page sharing: AllocData and
	// snapshot registration coalesce identical pages. Zero pages are
	// always shared regardless.
	ShareContent bool

	zero  FrameID
	dedup map[uint64][]FrameID

	stats StoreStats
}

// NewStore returns an empty store with a preallocated shared zero frame.
func NewStore() *Store {
	s := &Store{
		frames: make(map[FrameID]*frame),
		next:   1,
		dedup:  make(map[uint64][]FrameID),
	}
	// The canonical zero frame holds one permanent self-reference so VM
	// churn can never free it.
	s.zero = s.alloc(&frame{refs: 1})
	return s
}

func (s *Store) alloc(f *frame) FrameID {
	id := s.next
	s.next++
	s.frames[id] = f
	s.stats.Allocs++
	if n := len(s.frames); n > s.stats.PeakFrames {
		s.stats.PeakFrames = n
	}
	if b := s.ModeledBytes(); b > s.stats.PeakModeled {
		s.stats.PeakModeled = b
	}
	return id
}

// Stats returns a copy of the store counters.
func (s *Store) Stats() StoreStats { return s.stats }

// ZeroFrame returns the canonical all-zero frame with an added reference.
func (s *Store) ZeroFrame() FrameID {
	s.frames[s.zero].refs++
	s.stats.ZeroHits++
	return s.zero
}

// IsZeroFrame reports whether id is the canonical zero frame.
func (s *Store) IsZeroFrame(id FrameID) bool { return id == s.zero }

// FrameCount returns the number of live frames (including the zero frame).
func (s *Store) FrameCount() int { return len(s.frames) }

// ModeledBytes returns the machine memory the frames would occupy on real
// hardware: one PageSize per live frame. This is the quantity the
// paper's VMs-per-server arithmetic is about.
func (s *Store) ModeledBytes() uint64 { return uint64(len(s.frames)) * PageSize }

// Refs returns the reference count of a frame.
func (s *Store) Refs(id FrameID) int64 {
	f := s.must(id)
	return f.refs
}

func (s *Store) must(id FrameID) *frame {
	f, ok := s.frames[id]
	if !ok {
		panic(fmt.Sprintf("mem: dangling frame %d", id))
	}
	return f
}

// IncRef adds a reference to a frame.
func (s *Store) IncRef(id FrameID) {
	s.must(id).refs++
}

// DecRef drops a reference, freeing the frame at zero.
func (s *Store) DecRef(id FrameID) {
	f := s.must(id)
	f.refs--
	if f.refs < 0 {
		panic(fmt.Sprintf("mem: negative refcount on frame %d", id))
	}
	if f.refs == 0 {
		if f.hashed {
			s.dropDedup(f.hash, id)
		}
		delete(s.frames, id)
		s.stats.Frees++
	}
}

func (s *Store) dropDedup(hash uint64, id FrameID) {
	list := s.dedup[hash]
	for i, v := range list {
		if v == id {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(s.dedup, hash)
	} else {
		s.dedup[hash] = list
	}
}

// materialize ensures f.data holds explicit bytes.
func materialize(f *frame) []byte {
	if f.data == nil {
		f.data = make([]byte, PageSize)
		if f.pattern != 0 {
			fillPattern(f.data, f.pattern)
			f.pattern = 0
		}
	}
	return f.data
}

// fillPattern writes a deterministic, seed-dependent byte pattern.
func fillPattern(dst []byte, seed uint64) {
	x := seed
	for i := 0; i+8 <= len(dst); i += 8 {
		// splitmix64 step
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		binary.LittleEndian.PutUint64(dst[i:], z^(z>>31))
	}
}

func isAllZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// AllocData allocates a frame holding a copy of b (which must be
// PageSize long), returning the zero frame for all-zero content and a
// deduplicated frame when ShareContent is on.
func (s *Store) AllocData(b []byte) FrameID {
	if len(b) != PageSize {
		panic(fmt.Sprintf("mem: AllocData with %d bytes", len(b)))
	}
	if isAllZero(b) {
		return s.ZeroFrame()
	}
	if s.ShareContent {
		h := contentHash(b)
		for _, cand := range s.dedup[h] {
			f := s.frames[cand]
			if bytesEqual(materialize(f), b) {
				f.refs++
				s.stats.DedupHits++
				return cand
			}
		}
		f := &frame{refs: 1, data: append([]byte(nil), b...), hash: h, hashed: true}
		id := s.alloc(f)
		s.dedup[h] = append(s.dedup[h], id)
		return id
	}
	return s.alloc(&frame{refs: 1, data: append([]byte(nil), b...)})
}

func contentHash(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllocCopyWrite allocates a new private frame holding a copy of src's
// content with b applied at off — the copy-on-write fault path for
// image-backed pages. src's reference count is untouched (the image
// keeps its reference).
func (s *Store) AllocCopyWrite(src FrameID, off int, b []byte) FrameID {
	if off < 0 || off+len(b) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page", off, off+len(b)))
	}
	nf := &frame{refs: 1, data: make([]byte, PageSize)}
	copy(nf.data, s.View(src))
	copy(nf.data[off:], b)
	s.stats.CowCopies++
	return s.alloc(nf)
}

// AllocPattern allocates a frame whose content is a deterministic
// function of seed, without materializing bytes. Synthetic reference
// images use this so a 128 MiB guest image costs a few MiB of host RAM.
// seed must be nonzero.
func (s *Store) AllocPattern(seed uint64) FrameID {
	if seed == 0 {
		panic("mem: AllocPattern with zero seed")
	}
	return s.alloc(&frame{refs: 1, pattern: seed})
}

// View returns the frame's content for reading. The returned slice must
// not be modified; use CowWrite for writes. Pattern frames are
// materialized on first view.
func (s *Store) View(id FrameID) []byte {
	f := s.must(id)
	if f.data == nil && f.pattern == 0 {
		return zeroPage[:]
	}
	return materialize(f)
}

var zeroPage [PageSize]byte

// CowWrite writes b at offset off into the page, performing
// copy-on-write: if the frame is shared (refs > 1) a private copy is
// created and returned; otherwise the write happens in place. The
// (possibly new) frame ID is returned along with whether a copy happened.
func (s *Store) CowWrite(id FrameID, off int, b []byte) (FrameID, bool) {
	if off < 0 || off+len(b) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page", off, off+len(b)))
	}
	f := s.must(id)
	if f.refs > 1 {
		// Shared: copy, drop our reference on the original.
		nf := &frame{refs: 1, data: make([]byte, PageSize)}
		copy(nf.data, s.View(id))
		copy(nf.data[off:], b)
		f.refs--
		s.stats.CowCopies++
		return s.alloc(nf), true
	}
	// Exclusive. A frame that was registered for dedup changes content,
	// so its hash entry must be dropped.
	if f.hashed {
		s.dropDedup(f.hash, id)
		f.hashed = false
	}
	copy(materialize(f)[off:], b)
	return id, false
}

// CheckRefs verifies that every frame's reference count equals the
// number of external references reported by refs (plus the zero frame's
// permanent self-reference). It returns an error describing the first
// discrepancy. Tests use it as the leak detector.
func (s *Store) CheckRefs(external map[FrameID]int64) error {
	seen := make(map[FrameID]int64, len(external))
	for id, n := range external {
		seen[id] = n
	}
	seen[s.zero]++ // permanent self-reference
	for id, f := range s.frames {
		if f.refs != seen[id] {
			return fmt.Errorf("mem: frame %d has %d refs, expected %d", id, f.refs, seen[id])
		}
		delete(seen, id)
	}
	for id, n := range seen {
		if n != 0 {
			return fmt.Errorf("mem: %d external refs to missing frame %d", n, id)
		}
	}
	return nil
}
