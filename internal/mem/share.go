package mem

// SharePass is the offline half of content-based sharing: a periodic
// scanner (KSM-style) that walks the owned pages of a set of address
// spaces and merges frames with identical content, the way the paper's
// delta virtualization proposal recovers sharing that copy-on-write
// divergence has destroyed. Inline dedup (Store.ShareContent) only
// catches identical pages at allocation time; the pass catches pages
// that *became* identical later, at the cost of a scan.
//
// Merged frames become shared: the next write through any mapping
// copy-on-write-faults as usual, so correctness does not depend on the
// pass at all — only memory footprint does.

// SharePassResult reports what a pass accomplished.
type SharePassResult struct {
	PagesScanned int
	PagesMerged  int
	BytesFreed   uint64
}

// SharePass merges identical exclusively-owned frames across spaces.
// Frames already shared (refcount > 1) are left alone: they are either
// image pages or prior merge canonicals.
func SharePass(store *Store, spaces []*AddressSpace) SharePassResult {
	var res SharePassResult
	type canon struct {
		frame FrameID
	}
	byHash := make(map[uint64][]canon)

	for _, a := range spaces {
		if a == nil || a.released {
			continue
		}
		for vpn, pte := range a.pages {
			if store.IsZeroFrame(pte.Frame) {
				continue
			}
			if store.Refs(pte.Frame) != 1 {
				continue // already shared
			}
			res.PagesScanned++
			content := store.View(pte.Frame)
			h := contentHash(content)
			merged := false
			for _, c := range byHash[h] {
				// The candidate may have been freed if its sole owner
				// merged away; guard by liveness via refs lookup.
				if c.frame == pte.Frame {
					continue
				}
				if !store.alive(c.frame) {
					continue
				}
				if bytesEqual(store.View(c.frame), content) {
					store.IncRef(c.frame)
					a.setPage(vpn, PTE{Frame: c.frame})
					store.DecRef(pte.Frame)
					res.PagesMerged++
					res.BytesFreed += PageSize
					merged = true
					break
				}
			}
			if !merged {
				byHash[h] = append(byHash[h], canon{frame: pte.Frame})
			}
		}
	}
	return res
}
