package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// Tests for the slab frame table: slot reuse, generation-tagged
// dangling-ID detection, recycled-buffer hygiene, and the incremental
// O(1) accounting counters against a brute-force recount.

func testPage(fill byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestSlabReusesFreedSlots(t *testing.T) {
	s := NewStore()
	id1 := s.AllocData(testPage(1))
	s.DecRef(id1)
	id2 := s.AllocData(testPage(2))
	if id1.index() != id2.index() {
		t.Errorf("freed slot %d not reused: new alloc went to slot %d", id1.index(), id2.index())
	}
	if id1 == id2 {
		t.Error("reused slot did not change generation: stale IDs would alias")
	}
	if got := s.View(id2); got[0] != 2 {
		t.Errorf("reused frame content = %d, want 2", got[0])
	}
}

func TestStaleFrameIDPanicsAfterReuse(t *testing.T) {
	s := NewStore()
	stale := s.AllocData(testPage(1))
	s.DecRef(stale)
	fresh := s.AllocData(testPage(2)) // reoccupies the slot
	if stale.index() != fresh.index() {
		t.Fatal("test setup: slot not reused")
	}
	for name, op := range map[string]func(){
		"View":   func() { s.View(stale) },
		"Refs":   func() { s.Refs(stale) },
		"IncRef": func() { s.IncRef(stale) },
		"DecRef": func() { s.DecRef(stale) },
		"CowWrite": func() {
			s.CowWrite(stale, 0, []byte{9})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a stale (reused) FrameID did not panic", name)
				}
			}()
			op()
		}()
	}
	if got := s.View(fresh); got[0] != 2 {
		t.Errorf("live frame corrupted by stale-ID probes: %d", got[0])
	}
}

func TestZeroFrameIDNeverValid(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Error("FrameID(0) did not panic")
		}
	}()
	s.View(FrameID(0))
}

// TestRecycledBufferHygiene churns buffers through the pool and checks
// that zero-fill and pattern materialization never expose a previous
// tenant's bytes.
func TestRecycledBufferHygiene(t *testing.T) {
	s := NewStore()
	dirty := s.AllocData(testPage(0xAB))
	s.DecRef(dirty) // 0xAB-filled buffer goes to the pool

	zf := s.AllocZeroFill(100, []byte{7})
	got := s.View(zf)
	want := make([]byte, PageSize)
	want[100] = 7
	if !bytes.Equal(got, want) {
		t.Error("AllocZeroFill through a recycled buffer leaked stale bytes")
	}
	s.DecRef(zf)

	s.DecRef(s.AllocData(testPage(0xCD))) // re-dirty the pool
	pat := s.AllocPattern(99)
	a := append([]byte(nil), s.View(pat)...)
	s2 := NewStore()
	pat2 := s2.AllocPattern(99)
	if !bytes.Equal(a, s2.View(pat2)) {
		t.Error("pattern materialized through a recycled buffer diverged from a fresh store")
	}
}

func TestAllocZeroFillMatchesAllocData(t *testing.T) {
	for _, share := range []bool{false, true} {
		s := NewStore()
		s.ShareContent = share
		// Zero content coalesces onto the zero frame either way.
		if id := s.AllocZeroFill(50, []byte{0, 0}); !s.IsZeroFrame(id) {
			t.Errorf("share=%v: all-zero fill did not hit the zero frame", share)
		}
		// Identical content dedups under ShareContent, exactly like the
		// AllocData path.
		a := s.AllocZeroFill(10, []byte{1, 2, 3})
		page := make([]byte, PageSize)
		copy(page[10:], []byte{1, 2, 3})
		b := s.AllocData(page)
		if share && a != b {
			t.Error("share=true: AllocZeroFill content missed dedup against AllocData")
		}
		if !share && a == b {
			t.Error("share=false: unexpected frame sharing")
		}
		if !bytes.Equal(s.View(a), page) {
			t.Error("AllocZeroFill content wrong")
		}
	}
}

// slowPrivatePages is the pre-slab O(pages) recount of
// AddressSpace.PrivatePages, kept as the oracle for the incremental
// counter.
func slowPrivatePages(a *AddressSpace) int {
	n := 0
	for _, pte := range a.pages {
		if !a.store.IsZeroFrame(pte.Frame) && a.store.Refs(pte.Frame) == 1 {
			n++
		}
	}
	return n
}

// slowResidentPages is the pre-slab recount of ResidentPages.
func slowResidentPages(a *AddressSpace) int {
	n := len(a.pages)
	if a.base != nil {
		n = len(a.base.pages)
		for vpn := range a.pages {
			if _, inBase := a.base.pages[vpn]; !inBase {
				n++
			}
		}
	}
	return n
}

// TestIncrementalAccountingMatchesRecount is the accounting property
// test: across random clone/write/share/release workloads — including
// inline dedup, KSM-style merge passes, and snapshotting, all of which
// move frames between private and shared from *outside* the owning
// space — the O(1) counters must always equal the brute-force recount.
func TestIncrementalAccountingMatchesRecount(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := NewStore()
		s.ShareContent = trial%2 == 0

		const numPages = 64
		img := BuildImage(s, numPages, 16, 1000*uint64(trial)+1)
		var spaces []*AddressSpace

		check := func(step int) {
			t.Helper()
			for si, a := range spaces {
				if a == nil || a.released {
					continue
				}
				if got, want := a.PrivatePages(), slowPrivatePages(a); got != want {
					t.Fatalf("trial %d step %d space %d: PrivatePages=%d, recount=%d", trial, step, si, got, want)
				}
				if got, want := a.ResidentPages(), slowResidentPages(a); got != want {
					t.Fatalf("trial %d step %d space %d: ResidentPages=%d, recount=%d", trial, step, si, got, want)
				}
			}
			if got, want := s.ModeledBytes(), uint64(s.FrameCount())*PageSize; got != want {
				t.Fatalf("trial %d step %d: ModeledBytes=%d, FrameCount*PageSize=%d", trial, step, got, want)
			}
		}

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 2: // new clone or scratch space
				if rng.Intn(2) == 0 {
					spaces = append(spaces, img.NewClone())
				} else {
					spaces = append(spaces, NewAddressSpace(s, numPages))
				}
			case op < 8: // write somewhere
				if len(spaces) == 0 {
					continue
				}
				a := spaces[rng.Intn(len(spaces))]
				if a.released {
					continue
				}
				vpn := uint64(rng.Intn(numPages))
				// Small content alphabet so dedup and SharePass really
				// fire; include zeroes so writes land on the zero frame.
				content := []byte{byte(rng.Intn(4)), byte(rng.Intn(2))}
				a.Write(vpn, rng.Intn(PageSize-2), content)
			case op < 9: // KSM-style merge pass across everything
				SharePass(s, spaces)
			default: // release one space
				if len(spaces) == 0 {
					continue
				}
				spaces[rng.Intn(len(spaces))].Release()
			}
			check(step)
		}

		// Snapshot a scratch space mid-life: its private pages all become
		// shared in one external stroke.
		scratch := NewAddressSpace(s, numPages)
		spaces = append(spaces, scratch)
		for i := 0; i < 10; i++ {
			scratch.Write(uint64(i), 0, []byte{byte(100 + i)})
		}
		check(-1)
		snap := Snapshot(scratch)
		check(-2)
		if got := scratch.PrivatePages(); got != 0 {
			t.Fatalf("trial %d: snapshot left %d private pages in source", trial, got)
		}

		// Drain and verify the refcount census end-to-end.
		for _, a := range spaces {
			a.Release()
		}
		snap.Release()
		img.Release()
		if err := s.CheckRefs(ExternalRefs(nil, nil)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := s.FrameCount(); got != 1 { // zero frame only
			t.Fatalf("trial %d: %d frames leaked", trial, got-1)
		}
	}
}
