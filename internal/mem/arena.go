package mem

// Arena is a grow-once append buffer for the shard engine's buffered
// sinks (event log, span trace, Chrome records). Unlike bytes.Buffer it
// exposes its backing slice, so encoders can append records in place
// with zero per-record allocations: capacity grows amortized-once to
// the run's high-water mark and is reused for the rest of the run.
//
// The flush contract matches the per-domain sink discipline: exactly
// one domain goroutine appends during an epoch, the barrier orders
// those appends, and Bytes is read single-threaded at shard-order flush
// time. Arena itself is not synchronized.
type Arena struct {
	buf []byte
}

// NewArena returns an arena with the given initial capacity.
func NewArena(capacity int) *Arena {
	return &Arena{buf: make([]byte, 0, capacity)}
}

// Write appends p, implementing io.Writer for encoders that stream
// (the span-trace JSONL sink). It never fails.
func (a *Arena) Write(p []byte) (int, error) {
	a.buf = append(a.buf, p...)
	return len(p), nil
}

// Buf returns the backing slice for in-place append encoding; pair with
// SetBuf: a.SetBuf(appendRecord(a.Buf(), rec)).
func (a *Arena) Buf() []byte { return a.buf }

// SetBuf installs the slice returned by an append encoder.
func (a *Arena) SetBuf(b []byte) { a.buf = b }

// Bytes returns the accumulated contents. The slice aliases the arena:
// valid until the next append or Reset.
func (a *Arena) Bytes() []byte { return a.buf }

// Len returns the accumulated length in bytes.
func (a *Arena) Len() int { return len(a.buf) }

// Reset empties the arena, keeping its capacity for reuse.
func (a *Arena) Reset() { a.buf = a.buf[:0] }
