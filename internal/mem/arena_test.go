package mem

import (
	"bytes"
	"testing"
)

func TestArenaBasics(t *testing.T) {
	a := NewArena(8)
	if a.Len() != 0 {
		t.Fatalf("new arena len = %d", a.Len())
	}
	n, err := a.Write([]byte("hello "))
	if n != 6 || err != nil {
		t.Fatalf("Write = %d,%v", n, err)
	}
	a.SetBuf(append(a.Buf(), "world"...))
	if !bytes.Equal(a.Bytes(), []byte("hello world")) {
		t.Fatalf("contents = %q", a.Bytes())
	}
	if a.Len() != 11 {
		t.Fatalf("len = %d", a.Len())
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("len after reset = %d", a.Len())
	}
}

// TestArenaGrowOnce: after reaching its high-water mark once, the
// append/reset cycle must stop allocating — that is the whole point of
// the grow-once sink discipline.
func TestArenaGrowOnce(t *testing.T) {
	a := NewArena(4)
	record := bytes.Repeat([]byte("x"), 100)
	fill := func() {
		for i := 0; i < 50; i++ {
			a.Write(record)
		}
		a.Reset()
	}
	fill() // grow to the high-water mark
	if avg := testing.AllocsPerRun(50, fill); avg != 0 {
		t.Fatalf("warm arena allocates %.1f objects per cycle, want 0", avg)
	}
}
