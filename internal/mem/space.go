package mem

import "fmt"

// PTE is a page-table entry: which frame backs a virtual page and
// whether the mapping is private (exclusively owned, writable in place)
// or shared (writes fault and copy).
type PTE struct {
	Frame   FrameID
	Private bool
}

// SpaceStats counts per-address-space memory events.
type SpaceStats struct {
	CowFaults  uint64 // writes that triggered a page copy
	ZeroFills  uint64 // writes that promoted an unmapped page
	WritesDone uint64 // total write operations
	ReadsDone  uint64 // total read operations
}

// AddressSpace is one VM's guest-physical memory: a sparse overlay of
// owned pages over an optional base Image, on a shared Store.
//
// A flash-cloned space starts as a pure overlay — zero owned pages, all
// reads falling through to the reference image — so cloning costs O(1)
// regardless of image size, exactly like attaching copy-on-write shadow
// page tables. The first write to an image-backed page copies that page
// into the overlay (a CoW fault); writes to pages the image never
// populated allocate zero-filled frames on demand. Unmapped pages read
// as zero.
type AddressSpace struct {
	store    *Store
	base     *Image // nil for scratch (non-cloned) spaces
	pages    map[uint64]PTE
	numPages uint64 // guest-physical size in pages
	released bool

	// Incremental accounting, maintained by setPage/dropPage and the
	// store's updatePrivate hook so PrivatePages/ResidentPages are O(1):
	// private counts frames this space is the sole holder of (refs ==
	// 1); shadowed counts owned vpns that also exist in the base image.
	private  int
	shadowed int

	stats SpaceStats
}

// NewAddressSpace creates an empty scratch space of numPages
// guest-physical pages over store. All pages initially read as zero.
func NewAddressSpace(store *Store, numPages uint64) *AddressSpace {
	if numPages == 0 {
		panic("mem: zero-size address space")
	}
	return &AddressSpace{store: store, pages: make(map[uint64]PTE), numPages: numPages}
}

// Store returns the backing frame store.
func (a *AddressSpace) Store() *Store { return a.store }

// NumPages returns the guest-physical size in pages.
func (a *AddressSpace) NumPages() uint64 { return a.numPages }

// Base returns the reference image this space overlays, or nil.
func (a *AddressSpace) Base() *Image { return a.base }

// Stats returns a copy of the space's counters.
func (a *AddressSpace) Stats() SpaceStats { return a.stats }

func (a *AddressSpace) checkPage(vpn uint64) {
	if a.released {
		panic("mem: use of released address space")
	}
	if vpn >= a.numPages {
		panic(fmt.Sprintf("mem: page %d outside space of %d pages", vpn, a.numPages))
	}
}

// setPage installs or replaces the mapping for vpn, keeping holder
// registration and the shadowed counter consistent. Reference counts
// are the caller's business.
func (a *AddressSpace) setPage(vpn uint64, pte PTE) {
	if old, ok := a.pages[vpn]; ok {
		if old.Frame != pte.Frame {
			a.store.dropHolder(old.Frame, a)
			a.store.addHolder(pte.Frame, a)
		}
		a.pages[vpn] = pte
		return
	}
	a.pages[vpn] = pte
	a.store.addHolder(pte.Frame, a)
	if a.base != nil {
		if _, inBase := a.base.pages[vpn]; inBase {
			a.shadowed++
		}
	}
}

// Read copies n bytes at (vpn, off) into a fresh slice. Unmapped pages
// read as zeroes.
func (a *AddressSpace) Read(vpn uint64, off, n int) []byte {
	a.checkPage(vpn)
	if off < 0 || off+n > PageSize {
		panic(fmt.Sprintf("mem: read [%d,%d) outside page", off, off+n))
	}
	a.stats.ReadsDone++
	out := make([]byte, n)
	if pte, ok := a.pages[vpn]; ok {
		copy(out, a.store.View(pte.Frame)[off:off+n])
		return out
	}
	if a.base != nil {
		if pte, ok := a.base.pages[vpn]; ok {
			copy(out, a.store.View(pte.Frame)[off:off+n])
		}
	}
	return out
}

// Write stores b at (vpn, off), faulting in a private copy if the page
// is backed by the base image or by a shared frame (delta
// virtualization's CoW), or a fresh frame if unmapped. It reports
// whether a fault (copy or fill) occurred — the VMM's latency model
// charges faults, not in-place writes.
func (a *AddressSpace) Write(vpn uint64, off int, b []byte) bool {
	a.checkPage(vpn)
	if off < 0 || off+len(b) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside page", off, off+len(b)))
	}
	a.stats.WritesDone++
	if pte, ok := a.pages[vpn]; ok {
		newID, copied := a.store.CowWrite(pte.Frame, off, b)
		if copied {
			a.setPage(vpn, PTE{Frame: newID, Private: true})
			a.stats.CowFaults++
			return true
		}
		if !pte.Private {
			a.pages[vpn] = PTE{Frame: pte.Frame, Private: true}
		}
		return false
	}
	if a.base != nil {
		if bpte, ok := a.base.pages[vpn]; ok {
			// CoW fault against the reference image: copy its content
			// into a frame this space owns.
			id := a.store.AllocCopyWrite(bpte.Frame, off, b)
			a.setPage(vpn, PTE{Frame: id, Private: true})
			a.stats.CowFaults++
			return true
		}
	}
	// Unmapped: writing to fresh zero-backed memory.
	id := a.store.AllocZeroFill(off, b) // may return the zero frame for zero writes
	private := !a.store.IsZeroFrame(id) && a.store.Refs(id) == 1
	a.setPage(vpn, PTE{Frame: id, Private: private})
	a.stats.ZeroFills++
	return true
}

// MapPattern maps vpn to a fresh pattern frame (synthetic image
// content). Replaces any owned mapping and shadows any base mapping.
func (a *AddressSpace) MapPattern(vpn, seed uint64) {
	a.checkPage(vpn)
	old, replaced := a.pages[vpn]
	a.setPage(vpn, PTE{Frame: a.store.AllocPattern(seed), Private: true})
	if replaced {
		a.store.DecRef(old.Frame)
	}
}

// EachOwnedPage visits every page the space maps directly (private
// copies, zero-fills, dedup-shared frames), in unspecified order.
// Checkpointing uses it to enumerate the VM's delta.
func (a *AddressSpace) EachOwnedPage(fn func(vpn uint64)) {
	for vpn := range a.pages {
		fn(vpn)
	}
}

// OwnedPages returns the number of pages this space maps directly
// (private copies, zero-fills, and dedup-shared frames), excluding
// base-image fall-through.
func (a *AddressSpace) OwnedPages() int { return len(a.pages) }

// ResidentPages returns the number of pages with backing content:
// owned pages plus base pages not shadowed by an owned copy. O(1): the
// shadow count is maintained as mappings change.
func (a *AddressSpace) ResidentPages() int {
	if a.base == nil {
		return len(a.pages)
	}
	return len(a.base.pages) + len(a.pages) - a.shadowed
}

// PrivatePages returns the number of pages backed by frames this space
// holds exclusively — the VM's incremental memory cost, the quantity
// delta virtualization minimizes. O(1): the store attributes private
// frames to their sole holder as reference counts change, so sampling
// this in a loop (E2 does) no longer scans the page table.
func (a *AddressSpace) PrivatePages() int { return a.private }

// PrivateBytes is PrivatePages in bytes.
func (a *AddressSpace) PrivateBytes() uint64 { return uint64(a.PrivatePages()) * PageSize }

// SharedPages returns the number of resident pages backed by shared
// frames (base-image pages, the zero frame, dedup hits).
func (a *AddressSpace) SharedPages() int { return a.ResidentPages() - a.PrivatePages() }

// Release unmaps everything, dropping frame references and detaching
// from the base image. The space is unusable afterwards.
func (a *AddressSpace) Release() {
	if a.released {
		return
	}
	for vpn, pte := range a.pages {
		a.store.dropHolder(pte.Frame, a)
		a.store.DecRef(pte.Frame)
		delete(a.pages, vpn)
	}
	a.shadowed = 0
	if a.base != nil {
		a.base.live--
		a.base = nil
	}
	a.released = true
}

// frameRefs accumulates this space's references per frame, for
// CheckRefs-based leak tests.
func (a *AddressSpace) frameRefs(into map[FrameID]int64) {
	for _, pte := range a.pages {
		into[pte.Frame]++
	}
}

// ExternalRefs builds the frame-reference census across spaces and
// images for Store.CheckRefs.
func ExternalRefs(spaces []*AddressSpace, images []*Image) map[FrameID]int64 {
	refs := make(map[FrameID]int64)
	for _, a := range spaces {
		if a != nil && !a.released {
			a.frameRefs(refs)
		}
	}
	for _, img := range images {
		if img != nil && !img.released {
			img.frameRefs(refs)
		}
	}
	return refs
}
