package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"potemkin/internal/sim"
)

func page(fill byte) []byte {
	b := make([]byte, PageSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestZeroFrameShared(t *testing.T) {
	s := NewStore()
	a := s.ZeroFrame()
	b := s.ZeroFrame()
	if a != b {
		t.Fatal("zero frames differ")
	}
	if s.Refs(a) != 3 { // permanent + 2
		t.Errorf("refs = %d, want 3", s.Refs(a))
	}
	s.DecRef(a)
	s.DecRef(b)
	if s.FrameCount() != 1 {
		t.Errorf("FrameCount = %d, want 1 (zero frame survives)", s.FrameCount())
	}
}

func TestAllocDataZeroContentUsesZeroFrame(t *testing.T) {
	s := NewStore()
	id := s.AllocData(make([]byte, PageSize))
	if !s.IsZeroFrame(id) {
		t.Error("all-zero page did not map to zero frame")
	}
}

func TestAllocDataCopies(t *testing.T) {
	s := NewStore()
	src := page(7)
	id := s.AllocData(src)
	src[0] = 99 // caller mutation must not leak in
	if s.View(id)[0] != 7 {
		t.Error("AllocData aliased caller bytes")
	}
}

func TestDedupSharing(t *testing.T) {
	s := NewStore()
	s.ShareContent = true
	a := s.AllocData(page(5))
	b := s.AllocData(page(5))
	if a != b {
		t.Fatal("identical pages not shared")
	}
	if s.Refs(a) != 2 {
		t.Errorf("refs = %d", s.Refs(a))
	}
	c := s.AllocData(page(6))
	if c == a {
		t.Error("different pages shared")
	}
	if s.Stats().DedupHits != 1 {
		t.Errorf("DedupHits = %d", s.Stats().DedupHits)
	}
}

func TestDedupDisabled(t *testing.T) {
	s := NewStore()
	a := s.AllocData(page(5))
	b := s.AllocData(page(5))
	if a == b {
		t.Error("sharing happened with ShareContent off")
	}
}

func TestCowWriteSharedCopies(t *testing.T) {
	s := NewStore()
	s.ShareContent = true
	a := s.AllocData(page(1))
	b := s.AllocData(page(1)) // same frame, refs 2
	id, copied := s.CowWrite(a, 0, []byte{9})
	if !copied {
		t.Fatal("shared write did not copy")
	}
	if id == a {
		t.Fatal("copy returned same frame")
	}
	if s.View(id)[0] != 9 || s.View(id)[1] != 1 {
		t.Error("copy content wrong")
	}
	if s.View(b)[0] != 1 {
		t.Error("original mutated")
	}
	if s.Refs(b) != 1 || s.Refs(id) != 1 {
		t.Errorf("refs: orig=%d copy=%d", s.Refs(b), s.Refs(id))
	}
}

func TestCowWriteExclusiveInPlace(t *testing.T) {
	s := NewStore()
	a := s.AllocData(page(1))
	id, copied := s.CowWrite(a, 10, []byte{42})
	if copied || id != a {
		t.Fatal("exclusive write should be in place")
	}
	if s.View(a)[10] != 42 {
		t.Error("write lost")
	}
}

func TestCowWriteOnDedupedFrameDropsHash(t *testing.T) {
	s := NewStore()
	s.ShareContent = true
	a := s.AllocData(page(3)) // refs 1, hashed
	s.CowWrite(a, 0, []byte{4})
	// Allocating the original content again must NOT return frame a.
	b := s.AllocData(page(3))
	if b == a {
		t.Error("stale dedup entry matched mutated frame")
	}
	// And allocating the mutated content must not match either (hash was
	// dropped, frame no longer registered).
	mut := page(3)
	mut[0] = 4
	c := s.AllocData(mut)
	if c == a {
		t.Error("mutated frame still registered for dedup")
	}
}

func TestPatternFrameLazyAndStable(t *testing.T) {
	s := NewStore()
	a := s.AllocPattern(123)
	v1 := append([]byte(nil), s.View(a)...)
	v2 := s.View(a)
	if !bytes.Equal(v1, v2) {
		t.Error("pattern view unstable")
	}
	b := s.AllocPattern(123)
	if !bytes.Equal(s.View(b), v1) {
		t.Error("same seed produced different content")
	}
	c := s.AllocPattern(124)
	if bytes.Equal(s.View(c), v1) {
		t.Error("different seeds produced same content")
	}
}

func TestDecRefFrees(t *testing.T) {
	s := NewStore()
	a := s.AllocData(page(1))
	before := s.FrameCount()
	s.DecRef(a)
	if s.FrameCount() != before-1 {
		t.Error("frame not freed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("use after free did not panic")
		}
	}()
	s.View(a)
}

func TestNegativeRefPanics(t *testing.T) {
	s := NewStore()
	a := s.AllocData(page(1))
	s.DecRef(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	s.DecRef(a)
}

func TestSpaceReadUnmappedZero(t *testing.T) {
	s := NewStore()
	a := NewAddressSpace(s, 100)
	got := a.Read(5, 100, 16)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped read nonzero")
		}
	}
	if a.ResidentPages() != 0 {
		t.Error("read faulted a page in")
	}
}

func TestSpaceWriteReadBack(t *testing.T) {
	s := NewStore()
	a := NewAddressSpace(s, 100)
	a.Write(3, 10, []byte("hello"))
	if got := a.Read(3, 10, 5); string(got) != "hello" {
		t.Errorf("read back %q", got)
	}
	if got := a.Read(3, 0, 10); !bytes.Equal(got, make([]byte, 10)) {
		t.Error("rest of page not zero")
	}
	if a.ResidentPages() != 1 || a.PrivatePages() != 1 {
		t.Errorf("resident=%d private=%d", a.ResidentPages(), a.PrivatePages())
	}
}

func TestSpaceBoundsPanic(t *testing.T) {
	s := NewStore()
	a := NewAddressSpace(s, 10)
	for _, fn := range []func(){
		func() { a.Read(10, 0, 1) },
		func() { a.Write(11, 0, []byte{1}) },
		func() { a.Read(0, PageSize, 1) },
		func() { a.Write(0, PageSize-1, []byte{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-bounds access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotCloneSharing(t *testing.T) {
	s := NewStore()
	src := NewAddressSpace(s, 64)
	for vpn := uint64(0); vpn < 8; vpn++ {
		src.Write(vpn, 0, page(byte(vpn+1)))
	}
	img := Snapshot(src)
	framesAfterSnap := s.FrameCount()

	c1 := img.NewClone()
	c2 := img.NewClone()
	if s.FrameCount() != framesAfterSnap {
		t.Errorf("cloning allocated frames: %d -> %d", framesAfterSnap, s.FrameCount())
	}
	if c1.ResidentPages() != 8 || c1.PrivatePages() != 0 {
		t.Errorf("clone resident=%d private=%d", c1.ResidentPages(), c1.PrivatePages())
	}
	// Clone reads see image content.
	if got := c1.Read(3, 0, 4); !bytes.Equal(got, []byte{4, 4, 4, 4}) {
		t.Errorf("clone read %v", got)
	}
	// Clone write CoWs without touching the other clone or the image.
	c1.Write(3, 0, []byte{0xAA})
	if c2.Read(3, 0, 1)[0] != 4 {
		t.Error("clone write leaked to sibling")
	}
	if src.Read(3, 0, 1)[0] != 4 {
		t.Error("clone write leaked to source")
	}
	if c1.PrivatePages() != 1 {
		t.Errorf("private = %d after one write", c1.PrivatePages())
	}
	if c1.Stats().CowFaults != 1 {
		t.Errorf("CowFaults = %d", c1.Stats().CowFaults)
	}
}

func TestSnapshotMakesSourceCow(t *testing.T) {
	s := NewStore()
	src := NewAddressSpace(s, 16)
	src.Write(0, 0, []byte{1})
	img := Snapshot(src)
	src.Write(0, 0, []byte{2}) // must CoW, not mutate the image
	c := img.NewClone()
	if c.Read(0, 0, 1)[0] != 1 {
		t.Error("source write after snapshot mutated image")
	}
	if src.Read(0, 0, 1)[0] != 2 {
		t.Error("source lost its own write")
	}
}

func TestBuildImageClone(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 1024, 100, 7)
	if img.ResidentPages() != 100 || img.NumPages() != 1024 {
		t.Fatalf("resident=%d num=%d", img.ResidentPages(), img.NumPages())
	}
	c := img.NewClone()
	if c.ResidentPages() != 100 {
		t.Errorf("clone resident = %d", c.ResidentPages())
	}
	// Content deterministic across clones.
	d := img.NewClone()
	if !bytes.Equal(c.Read(5, 0, 32), d.Read(5, 0, 32)) {
		t.Error("clones disagree on image content")
	}
	if img.Clones() != 2 {
		t.Errorf("Clones() = %d", img.Clones())
	}
}

func TestReleaseFreesFrames(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 256, 50, 1)
	clones := make([]*AddressSpace, 10)
	for i := range clones {
		clones[i] = img.NewClone()
		clones[i].Write(uint64(i), 0, []byte{byte(i)})
	}
	for _, c := range clones {
		c.Release()
	}
	img.Release()
	if s.FrameCount() != 1 { // zero frame only
		t.Errorf("FrameCount = %d after full release", s.FrameCount())
	}
	if err := s.CheckRefs(map[FrameID]int64{}); err != nil {
		t.Error(err)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s := NewStore()
	a := NewAddressSpace(s, 8)
	a.Write(0, 0, []byte{1})
	a.Release()
	a.Release() // must not double-free
	if s.FrameCount() != 1 {
		t.Errorf("FrameCount = %d", s.FrameCount())
	}
}

func TestUseAfterReleasePanics(t *testing.T) {
	s := NewStore()
	a := NewAddressSpace(s, 8)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.Write(0, 0, []byte{1})
}

func TestCloneOfReleasedImagePanics(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 8, 4, 1)
	img.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	img.NewClone()
}

func TestCheckRefsDetectsLeak(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 8, 4, 1)
	c := img.NewClone()
	refs := ExternalRefs([]*AddressSpace{c}, nil) // image refs omitted on purpose
	if err := s.CheckRefs(refs); err == nil {
		t.Error("CheckRefs missed unaccounted references")
	}
	refs = ExternalRefs([]*AddressSpace{c}, []*Image{img})
	if err := s.CheckRefs(refs); err != nil {
		t.Errorf("CheckRefs on consistent state: %v", err)
	}
}

// Property: after any sequence of writes across clones, (1) refcounts are
// consistent, (2) no clone sees another clone's writes, (3) unwritten
// pages still read as image content.
func TestCloneIsolationProperty(t *testing.T) {
	err := quick.Check(func(ops []uint32, shareContent bool) bool {
		s := NewStore()
		s.ShareContent = shareContent
		img := BuildImage(s, 64, 32, 99)
		clones := []*AddressSpace{img.NewClone(), img.NewClone(), img.NewClone()}
		type wr struct{ val byte }
		written := make([]map[uint64]wr, len(clones))
		for i := range written {
			written[i] = map[uint64]wr{}
		}
		for _, op := range ops {
			ci := int(op % 3)
			vpn := uint64(op>>2) % 64
			val := byte(op >> 8)
			clones[ci].Write(vpn, 0, []byte{val})
			written[ci][vpn] = wr{val}
		}
		// Refcount consistency.
		refs := ExternalRefs(clones, []*Image{img})
		if err := s.CheckRefs(refs); err != nil {
			return false
		}
		// Isolation + image fidelity.
		ref := img.NewClone()
		for ci, c := range clones {
			for vpn := uint64(0); vpn < 64; vpn++ {
				got := c.Read(vpn, 0, 1)[0]
				if w, ok := written[ci][vpn]; ok {
					if got != w.val {
						return false
					}
				} else if got != ref.Read(vpn, 0, 1)[0] {
					return false
				}
			}
		}
		ref.Release()
		for _, c := range clones {
			c.Release()
		}
		img.Release()
		return s.FrameCount() == 1 // only the zero frame survives
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// Property: a frame with refcount > 1 is never mutated by writes.
func TestSharedFrameImmutableProperty(t *testing.T) {
	r := sim.NewRNG(5)
	s := NewStore()
	img := BuildImage(s, 32, 32, 3)
	snapshotContent := make([][]byte, 32)
	c0 := img.NewClone()
	for i := range snapshotContent {
		snapshotContent[i] = append([]byte(nil), c0.Read(uint64(i), 0, PageSize)...)
	}
	clones := []*AddressSpace{c0, img.NewClone(), img.NewClone()}
	for i := 0; i < 2000; i++ {
		c := clones[r.Intn(len(clones))]
		vpn := uint64(r.Intn(32))
		off := r.Intn(PageSize)
		c.Write(vpn, off, []byte{byte(r.Uint64())})
	}
	// Image content unchanged.
	fresh := img.NewClone()
	for i := range snapshotContent {
		if !bytes.Equal(fresh.Read(uint64(i), 0, PageSize), snapshotContent[i]) {
			t.Fatalf("image page %d mutated by clone writes", i)
		}
	}
}

func TestPrivateSharedAccounting(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 64, 10, 1)
	c := img.NewClone()
	if c.SharedPages() != 10 || c.PrivatePages() != 0 {
		t.Fatalf("initial shared=%d private=%d", c.SharedPages(), c.PrivatePages())
	}
	c.Write(0, 0, []byte{1})
	c.Write(1, 0, []byte{2})
	if c.PrivatePages() != 2 || c.SharedPages() != 8 {
		t.Errorf("after writes shared=%d private=%d", c.SharedPages(), c.PrivatePages())
	}
	if c.PrivateBytes() != 2*PageSize {
		t.Errorf("PrivateBytes = %d", c.PrivateBytes())
	}
}

func TestModeledBytes(t *testing.T) {
	s := NewStore()
	base := s.ModeledBytes() // zero frame
	s.AllocData(page(1))
	if s.ModeledBytes() != base+PageSize {
		t.Errorf("ModeledBytes = %d", s.ModeledBytes())
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore()
	img := BuildImage(s, 16, 8, 1)
	c := img.NewClone()
	c.Write(0, 0, []byte{1}) // CoW fault
	c.Write(9, 0, []byte{1}) // zero-fill (page 9 not in image)
	st := c.Stats()
	if st.CowFaults != 1 || st.ZeroFills != 1 || st.WritesDone != 2 {
		t.Errorf("stats = %+v", st)
	}
	if s.Stats().CowCopies != 1 {
		t.Errorf("store CowCopies = %d", s.Stats().CowCopies)
	}
}
