package score

import (
	"bytes"
	"strings"
	"testing"

	"potemkin/internal/metrics"
)

// snapshotFor builds a registry snapshot with the scorecard's series
// populated from small synthetic runs.
func snapshotFor(detectAtMS float64, detections, attempted, permitted, fp int, acts []float64) []metrics.Point {
	r := metrics.NewRegistry()
	for i := 0; i < detections; i++ {
		r.Counter("gateway_detected_infected_total").Inc()
	}
	if detections > 0 {
		r.Hist("gateway_detect_time_ms").Observe(detectAtMS)
	}
	r.Counter("gateway_egress_attempted_total").Add(uint64(attempted))
	r.Counter("gateway_egress_permitted_total").Add(uint64(permitted))
	for i := 0; i < fp; i++ {
		r.Counter("guest_fingerprints_total").Inc()
	}
	for _, a := range acts {
		r.Hist("guest_deception_actions").Observe(a)
	}
	r.Counter("guest_canaries_total").Add(7)
	r.Counter("farm_infections_total").Add(3)
	r.Counter("vmm_clones_total").Add(12)
	// A wall-clock series the scorecard must ignore.
	r.Hist("epoch_advance_ms").Observe(123.456)
	return r.Snapshot()
}

func TestComputeReadsOnlyNamedSeries(t *testing.T) {
	facts := Facts{Scenario: "t", Version: 1, Seed: 9, Space: "10.5.0.0/16", Policy: "internal-reflect", Guest: "winxp", Steps: 10, HorizonMS: 5000}
	c := Compute(facts, snapshotFor(250, 2, 40, 8, 1, []float64{30}))
	if c.Detections != 2 || c.FirstDetectMS != 250 {
		t.Fatalf("detection: %+v", c)
	}
	if c.EgressAttempted != 40 || c.EgressPermitted != 8 || c.LeakRatePct != 20 {
		t.Fatalf("containment: %+v", c)
	}
	if c.Fingerprints != 1 || c.DeceptionSteps != 30 || c.MeanSurvivalActs != 30 {
		t.Fatalf("deception: %+v", c)
	}
	if c.Clones != 12 || c.ClonesPerCapture != 6 {
		t.Fatalf("capture: %+v", c)
	}
}

func TestNoDetectionsScoresMinusOne(t *testing.T) {
	c := Compute(Facts{Scenario: "quiet"}, snapshotFor(0, 0, 0, 0, 0, nil))
	if c.FirstDetectMS != -1 {
		t.Fatalf("FirstDetectMS = %v, want -1", c.FirstDetectMS)
	}
	if c.LeakRatePct != 0 || c.ClonesPerCapture != 0 {
		t.Fatalf("derived rates should be 0 with empty denominators: %+v", c)
	}
}

// The MergePoints-union property the cluster path relies on: scoring a
// merged snapshot equals merging per-partition scorecards.
func TestMergeMatchesMergedSnapshot(t *testing.T) {
	facts := Facts{Scenario: "u", Version: 1, Seed: 4}
	a := snapshotFor(400, 1, 30, 3, 1, []float64{12})
	b := snapshotFor(150, 1, 10, 2, 2, []float64{5, 9})

	fromMergedPoints := Compute(facts, metrics.MergePoints(a, b))
	merged, err := Merge(Compute(facts, a), Compute(facts, b))
	if err != nil {
		t.Fatal(err)
	}
	if *merged != *fromMergedPoints {
		t.Fatalf("Merge(cards) = %+v\nCompute(MergePoints) = %+v", merged, fromMergedPoints)
	}
	if merged.FirstDetectMS != 150 {
		t.Fatalf("first detect should take the earliest partition: %v", merged.FirstDetectMS)
	}
}

func TestMergeRejectsDifferentRuns(t *testing.T) {
	a := Compute(Facts{Scenario: "a"}, nil)
	b := Compute(Facts{Scenario: "b"}, nil)
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merging cards with different facts should fail")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("merging nothing should fail")
	}
}

func TestWriteJSONDeterministicAndRenders(t *testing.T) {
	c := Compute(Facts{Scenario: "t", Version: 1}, snapshotFor(250, 2, 40, 8, 1, []float64{30}))
	var b1, b2 bytes.Buffer
	if err := c.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteJSON is not deterministic")
	}
	var txt strings.Builder
	if err := c.Render(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"leak rate", "time to first detect", "clones per sample"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("Render missing %q:\n%s", want, txt.String())
		}
	}
}
