// Package score turns a scenario run's deterministic telemetry into an
// effectiveness scorecard: how fast the farm detected the campaign, how
// much egress the containment policy leaked, how long the deception
// survived before guests fingerprinted the farm, and what the capture
// cost in cloned VMs. The card is computed from metrics snapshots only
// — never from wall-clock series — so the same seed yields the same
// bytes under sequential, parallel, and cluster execution, and cluster
// runs score identically because metrics.MergePoints is a union over
// the same deterministic counters.
package score

import (
	"encoding/json"
	"fmt"
	"io"

	"potemkin/internal/metrics"
)

// The deterministic series a scorecard reads. Everything else in a
// snapshot — epoch_* wall-clock profiles especially — is execution-mode
// detail and must never leak into the card, or the byte-identity
// guarantee across sequential/parallel/cluster dies.
const (
	seriesDetections      = "gateway_detected_infected_total"
	seriesDetectTime      = "gateway_detect_time_ms"
	seriesEgressAttempted = "gateway_egress_attempted_total"
	seriesEgressPermitted = "gateway_egress_permitted_total"
	seriesFingerprints    = "guest_fingerprints_total"
	seriesDeception       = "guest_deception_actions"
	seriesCanaries        = "guest_canaries_total"
	seriesBeacons         = "guest_beacons_total"
	seriesInfections      = "farm_infections_total"
	seriesClones          = "vmm_clones_total"
)

// Facts identifies the run being scored: scenario, seed, space, policy,
// and the campaign's shape. Facts must stay a pure function of the
// scenario and options — no shard counts, worker names, or other
// execution-mode details — so cards from different modes compare equal.
type Facts struct {
	Scenario  string `json:"scenario"`
	Version   int    `json:"version"`
	Seed      uint64 `json:"seed"`
	Space     string `json:"space"`
	Policy    string `json:"policy"`
	Guest     string `json:"guest"`
	Steps     int    `json:"steps"`      // attacker packets scheduled
	HorizonMS int64  `json:"horizon_ms"` // last step + settle time
}

// Scorecard is the effectiveness report for one scenario run. Raw
// fields are sums of deterministic counters; Derived fields are pure
// functions of the raw ones, recomputed by Compute and Merge so a
// merged card is exactly the card of the merged run.
type Scorecard struct {
	Facts Facts `json:"facts"`

	// Detection: how the gateway's scan detector fared.
	Detections    uint64  `json:"detections"`
	FirstDetectMS float64 `json:"first_detect_ms"` // -1 when nothing was detected

	// Containment: egress the policy permitted vs what VMs attempted.
	EgressAttempted uint64 `json:"egress_attempted"`
	EgressPermitted uint64 `json:"egress_permitted"`

	// Deception: guests probing for the farm and the C2 they ran.
	Canaries        uint64 `json:"canaries"`
	Beacons         uint64 `json:"beacons"`
	Fingerprints    uint64 `json:"fingerprints"`
	DeceptionSteps  uint64 `json:"deception_steps"` // malicious actions observed before guests went quiet

	// Capture: what the farm caught and what it spent.
	Infections uint64 `json:"infections"`
	Clones     uint64 `json:"clones"`

	// Derived rates (recomputed from the raw fields above).
	LeakRatePct      float64 `json:"leak_rate_pct"`      // permitted/attempted
	MeanSurvivalActs float64 `json:"mean_survival_acts"` // deception steps per fingerprint
	ClonesPerCapture float64 `json:"clones_per_capture"` // clones per detected sample
}

// counterOf returns the value of a named counter in a Snapshot-style
// point list, 0 when absent (telemetry off or path never taken).
func counterOf(pts []metrics.Point, name string) uint64 {
	for _, p := range pts {
		if p.Name == name && p.Kind == "counter" {
			return uint64(p.Value)
		}
	}
	return 0
}

// histOf returns a named histogram point and whether it was found.
func histOf(pts []metrics.Point, name string) (metrics.Point, bool) {
	for _, p := range pts {
		if p.Name == name && p.Kind == "hist" {
			return p, true
		}
	}
	return metrics.Point{}, false
}

// Compute builds a scorecard from a metrics snapshot. pts may come from
// a live Registry.Snapshot, or from cluster.Results.Metrics (already a
// MergePoints union of every worker's final snapshot) — both score
// identically because only deterministic event-driven series are read.
func Compute(facts Facts, pts []metrics.Point) *Scorecard {
	c := &Scorecard{
		Facts:           facts,
		Detections:      counterOf(pts, seriesDetections),
		FirstDetectMS:   -1,
		EgressAttempted: counterOf(pts, seriesEgressAttempted),
		EgressPermitted: counterOf(pts, seriesEgressPermitted),
		Canaries:        counterOf(pts, seriesCanaries),
		Beacons:         counterOf(pts, seriesBeacons),
		Fingerprints:    counterOf(pts, seriesFingerprints),
		Infections:      counterOf(pts, seriesInfections),
		Clones:          counterOf(pts, seriesClones),
	}
	if h, ok := histOf(pts, seriesDetectTime); ok && h.Count > 0 {
		// Min of the detect-time histogram is the first detection: the
		// observed values are simulated milliseconds, and MergePoints
		// takes the min across shards/workers, so this is mode-stable.
		c.FirstDetectMS = h.Min
	}
	if h, ok := histOf(pts, seriesDeception); ok {
		// Observed values are integer action counts, so SumMicro is an
		// exact integer multiple of 1e6 — no float drift across merges.
		c.DeceptionSteps = uint64(h.SumMicro / 1e6)
	}
	c.derive()
	return c
}

// derive recomputes the rate fields from the raw sums.
func (c *Scorecard) derive() {
	c.LeakRatePct, c.MeanSurvivalActs, c.ClonesPerCapture = 0, 0, 0
	if c.EgressAttempted > 0 {
		c.LeakRatePct = 100 * float64(c.EgressPermitted) / float64(c.EgressAttempted)
	}
	if c.Fingerprints > 0 {
		c.MeanSurvivalActs = float64(c.DeceptionSteps) / float64(c.Fingerprints)
	}
	if c.Detections > 0 {
		c.ClonesPerCapture = float64(c.Clones) / float64(c.Detections)
	}
}

// Merge unions cards from partitions of one logical run (the
// MergePoints analogue at scorecard level): counters add, first
// detection takes the earliest, rates are rederived from the merged
// sums. All cards must describe the same run — identical Facts.
func Merge(cards ...*Scorecard) (*Scorecard, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("score: nothing to merge")
	}
	out := *cards[0]
	for _, c := range cards[1:] {
		if c.Facts != out.Facts {
			return nil, fmt.Errorf("score: merging cards from different runs: %+v vs %+v", out.Facts, c.Facts)
		}
		out.Detections += c.Detections
		out.EgressAttempted += c.EgressAttempted
		out.EgressPermitted += c.EgressPermitted
		out.Canaries += c.Canaries
		out.Beacons += c.Beacons
		out.Fingerprints += c.Fingerprints
		out.DeceptionSteps += c.DeceptionSteps
		out.Infections += c.Infections
		out.Clones += c.Clones
		if c.FirstDetectMS >= 0 && (out.FirstDetectMS < 0 || c.FirstDetectMS < out.FirstDetectMS) {
			out.FirstDetectMS = c.FirstDetectMS
		}
	}
	out.derive()
	return &out, nil
}

// WriteJSON renders the card as indented JSON with a trailing newline.
// The encoding is deterministic (fixed field order, no maps), so
// scorecards from different execution modes can be diffed byte-for-byte
// — the scenario smoke test does exactly that.
func (c *Scorecard) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Render writes the human-readable scorecard.
func (c *Scorecard) Render(w io.Writer) error {
	f := c.Facts
	first := "never"
	if c.FirstDetectMS >= 0 {
		first = fmt.Sprintf("%.3f ms", c.FirstDetectMS)
	}
	_, err := fmt.Fprintf(w, `scenario %q (v%d)  seed=%d  space=%s  policy=%s  guest=%s
campaign: %d attacker steps over %d ms

  detection
    samples detected       %d
    time to first detect   %s
  containment
    egress attempted       %d
    egress permitted       %d
    leak rate              %.2f%%
  deception
    canary probes          %d
    c2 beacons             %d
    farms fingerprinted    %d
    survival (mean acts)   %.1f
  capture cost
    infections captured    %d
    VMs cloned             %d
    clones per sample      %.1f
`,
		f.Scenario, f.Version, f.Seed, f.Space, f.Policy, f.Guest,
		f.Steps, f.HorizonMS,
		c.Detections, first,
		c.EgressAttempted, c.EgressPermitted, c.LeakRatePct,
		c.Canaries, c.Beacons, c.Fingerprints, c.MeanSurvivalActs,
		c.Infections, c.Clones, c.ClonesPerCapture)
	return err
}
