package netsim

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	b := p.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", p, err)
	}
	return got
}

func TestTCPRoundTrip(t *testing.T) {
	p := &Packet{
		Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("5.6.7.8"),
		Proto: ProtoTCP, TTL: 61, ID: 777,
		SrcPort: 31337, DstPort: 445, Seq: 0xdeadbeef, Ack: 42,
		Flags: FlagSYN | FlagACK, Window: 8192,
		Payload: []byte("exploit bytes"),
	}
	got := roundTrip(t, p)
	if got.Src != p.Src || got.Dst != p.Dst || got.Proto != p.Proto || got.TTL != p.TTL ||
		got.ID != p.ID || got.SrcPort != p.SrcPort || got.DstPort != p.DstPort ||
		got.Seq != p.Seq || got.Ack != p.Ack || got.Flags != p.Flags || got.Window != p.Window ||
		!bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := UDPDatagram(MustParseAddr("9.9.9.9"), MustParseAddr("10.0.0.1"), 1434, 1434, []byte{0x04, 0x01, 0x01})
	p.ID = 3
	got := roundTrip(t, p)
	if got.SrcPort != 1434 || got.DstPort != 1434 || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("udp mismatch: %+v", got)
	}
}

func TestUDPEmptyPayload(t *testing.T) {
	p := UDPDatagram(1, 2, 53, 53, nil)
	got := roundTrip(t, p)
	if got.Payload != nil {
		t.Errorf("payload = %v, want nil", got.Payload)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	p := ICMPEcho(MustParseAddr("8.8.8.8"), MustParseAddr("10.1.2.3"), true)
	p.ICMPCode = 0
	p.Payload = []byte("ping")
	got := roundTrip(t, p)
	if got.ICMPType != 8 || got.ICMPCode != 0 || !bytes.Equal(got.Payload, []byte("ping")) {
		t.Errorf("icmp mismatch: %+v", got)
	}
}

func TestUnmarshalRejectsCorruptIPChecksum(t *testing.T) {
	b := TCPSyn(1, 2, 3, 4, 5).Marshal()
	b[10] ^= 0xff
	if _, err := Unmarshal(b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalRejectsCorruptTCPChecksum(t *testing.T) {
	p := TCPSyn(1, 2, 3, 4, 5)
	p.Payload = []byte("data")
	b := p.Marshal()
	b[len(b)-1] ^= 0x01 // flip payload bit; TCP checksum now wrong
	if _, err := Unmarshal(b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalRejectsCorruptUDPChecksum(t *testing.T) {
	b := UDPDatagram(1, 2, 3, 4, []byte("xy")).Marshal()
	b[len(b)-1] ^= 0x80
	if _, err := Unmarshal(b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUnmarshalAcceptsUDPNoChecksum(t *testing.T) {
	b := UDPDatagram(1, 2, 3, 4, []byte("xy")).Marshal()
	// Zero the UDP checksum field: RFC 768 "no checksum".
	b[ipHeaderLen+6], b[ipHeaderLen+7] = 0, 0
	if _, err := Unmarshal(b); err != nil {
		t.Errorf("zero-checksum UDP rejected: %v", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	b := TCPSyn(1, 2, 3, 4, 5).Marshal()
	for _, n := range []int{0, 1, 19} {
		if _, err := Unmarshal(b[:n]); err != ErrTruncated {
			t.Errorf("len %d: err = %v, want ErrTruncated", n, err)
		}
	}
	// Total length claims more than available.
	c := append([]byte(nil), b...)
	binary.BigEndian.PutUint16(c[2:], uint16(len(c)+4))
	// Fix IP checksum so truncation is what trips.
	c[10], c[11] = 0, 0
	s := checksum(0, c[:ipHeaderLen])
	binary.BigEndian.PutUint16(c[10:], s)
	if _, err := Unmarshal(c); err != ErrTruncated {
		t.Errorf("oversize total: err = %v, want ErrTruncated", err)
	}
}

func TestUnmarshalRejectsIPv6(t *testing.T) {
	b := TCPSyn(1, 2, 3, 4, 5).Marshal()
	b[0] = 0x65
	if _, err := Unmarshal(b); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestMarshalIntoMatchesMarshal(t *testing.T) {
	p := TCPSyn(100, 200, 300, 400, 500)
	p.Payload = []byte("abcdef")
	buf := make([]byte, 2048)
	n := p.MarshalInto(buf)
	if !bytes.Equal(buf[:n], p.Marshal()) {
		t.Error("MarshalInto differs from Marshal")
	}
}

func TestMarshalIntoShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TCPSyn(1, 2, 3, 4, 5).MarshalInto(make([]byte, 10))
}

// Property: marshal then unmarshal is the identity on header fields and
// payload for all three transports.
func TestWireRoundTripProperty(t *testing.T) {
	err := quick.Check(func(src, dst uint32, sp, dp uint16, seq, ack uint32, flags byte, proto byte, payload []byte) bool {
		p := &Packet{
			Src: Addr(src), Dst: Addr(dst), TTL: 64, ID: uint16(seq),
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, Window: dp,
			Payload: payload,
		}
		switch proto % 3 {
		case 0:
			p.Proto = ProtoTCP
		case 1:
			p.Proto = ProtoUDP
		case 2:
			p.Proto = ProtoICMP
			p.ICMPType = flags
			p.ICMPCode = byte(sp)
		}
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if got.Src != p.Src || got.Dst != p.Dst || got.Proto != p.Proto {
			return false
		}
		if !bytes.Equal(got.Payload, p.Payload) {
			return false
		}
		switch p.Proto {
		case ProtoTCP:
			return got.SrcPort == p.SrcPort && got.DstPort == p.DstPort &&
				got.Seq == p.Seq && got.Ack == p.Ack && got.Flags == p.Flags
		case ProtoUDP:
			return got.SrcPort == p.SrcPort && got.DstPort == p.DstPort
		case ProtoICMP:
			return got.ICMPType == p.ICMPType && got.ICMPCode == p.ICMPCode
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// Property: single-bit corruption anywhere in a TCP packet is detected by
// either the IP or TCP checksum (headers and payload are both covered).
func TestChecksumDetectsBitFlips(t *testing.T) {
	p := &Packet{
		Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("4.3.2.1"),
		Proto: ProtoTCP, TTL: 64, SrcPort: 80, DstPort: 8080,
		Payload: []byte("some payload for coverage"),
	}
	orig := p.Marshal()
	for i := 0; i < len(orig)*8; i++ {
		b := append([]byte(nil), orig...)
		b[i/8] ^= 1 << (i % 8)
		got, err := Unmarshal(b)
		if err != nil {
			continue // detected, good
		}
		// A flip in the length field can change semantics without failing
		// checksum only if it produced a shorter-but-valid packet; the
		// fixed-size headers make that impossible here, so any successful
		// parse must equal the original in every field we compare.
		if got.Src != p.Src || got.Dst != p.Dst || got.SrcPort != p.SrcPort ||
			got.DstPort != p.DstPort || !bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("bit flip %d undetected and changed packet", i)
		}
	}
}

func TestFlowKeyReverse(t *testing.T) {
	p := TCPSyn(MustParseAddr("1.1.1.1"), MustParseAddr("2.2.2.2"), 1000, 80, 1)
	k := p.Flow()
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Errorf("Reverse() = %v", r)
	}
	if r.Reverse() != k {
		t.Error("Reverse not involutive")
	}
}

func TestFlagString(t *testing.T) {
	if s := FlagString(FlagSYN | FlagACK); s != "SA" {
		t.Errorf("FlagString(SYN|ACK) = %q", s)
	}
	if s := FlagString(0); s != "." {
		t.Errorf("FlagString(0) = %q", s)
	}
}
