package netsim

import (
	"time"

	"potemkin/internal/sim"
)

// Station models a single-server FIFO service point — the gateway box
// itself, as opposed to the wires around it. Packets arrive, wait for
// the server, occupy it for a fixed service time, and are then handed
// to Serve. It is the substrate for the load-vs-latency experiment:
// offered load beyond 1/Service collapses the queue exactly the way a
// saturated middlebox does.
type Station struct {
	K *sim.Kernel
	// Service is the per-packet service time (deterministic).
	Service time.Duration
	// QueueLimit bounds waiting packets (the in-service one excluded);
	// 0 means unbounded.
	QueueLimit int
	// Serve consumes each packet at its service completion.
	Serve func(now sim.Time, pkt *Packet)

	busyUntil sim.Time
	waiting   int

	Stats StationStats
}

// StationStats counts station activity.
type StationStats struct {
	Arrivals uint64
	Served   uint64
	Dropped  uint64 // queue overflow
}

// Depth returns the number of packets waiting (excluding in service).
func (s *Station) Depth() int { return s.waiting }

// Arrive offers a packet to the station, returning false if the queue
// is full. The completion callback fires at now + wait + Service.
func (s *Station) Arrive(pkt *Packet) bool {
	s.Stats.Arrivals++
	if s.QueueLimit > 0 && s.waiting >= s.QueueLimit {
		s.Stats.Dropped++
		return false
	}
	now := s.K.Now()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
		s.waiting++
	}
	done := start.Add(s.Service)
	s.busyUntil = done
	queued := start > now
	s.K.At(done, func(at sim.Time) {
		if queued {
			s.waiting--
		}
		s.Stats.Served++
		if s.Serve != nil {
			s.Serve(at, pkt)
		}
	})
	return true
}

// Utilization estimates the busy fraction so far: served work over
// elapsed time.
func (s *Station) Utilization() float64 {
	elapsed := s.K.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	u := float64(s.Stats.Served+1) * s.Service.Seconds() / elapsed
	if u > 1 {
		return 1
	}
	return u
}
