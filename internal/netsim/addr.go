// Package netsim is the packet-level network substrate the honeyfarm runs
// on: IPv4/TCP/UDP/ICMP headers that marshal to and from real wire bytes
// (with real checksums), simulated links with latency and finite queues,
// and simple node plumbing driven by the sim kernel.
//
// The gateway and GRE code operate on these wire bytes directly, so their
// throughput benchmarks measure genuine parsing and encapsulation work
// rather than struct copying.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. Arithmetic on addresses
// (telescope ranges, scan sweeps) is ordinary integer arithmetic.
type Addr uint32

// AddrFrom assembles an address from its dotted-quad octets.
func AddrFrom(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// ParseAddr parses dotted-quad notation ("10.1.2.3").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netsim: bad address %q", s)
	}
	var a Addr
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netsim: bad address %q", s)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for constants in tests and examples; it
// panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Octets returns the four dotted-quad bytes, most significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// Prefix is a CIDR block: every address whose top Bits bits equal those of
// Base. The honeyfarm's monitored space, the worm simulator's vulnerable
// population, and gateway routing tables are all Prefixes.
type Prefix struct {
	Base Addr
	Bits int
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netsim: bad prefix %q", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netsim: bad prefix length in %q", s)
	}
	p := Prefix{Base: a, Bits: bits}
	return p.Canonical(), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the netmask for the prefix length.
func (p Prefix) Mask() Addr {
	if p.Bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Canonical returns the prefix with host bits of Base cleared.
func (p Prefix) Canonical() Prefix {
	p.Base &= p.Mask()
	return p
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&p.Mask() == p.Base&p.Mask()
}

// Size returns the number of addresses covered (2^(32-Bits)).
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// Nth returns the i'th address in the block. i must be < Size().
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic(fmt.Sprintf("netsim: index %d out of %s", i, p))
	}
	return p.Base&p.Mask() | Addr(i)
}

// Index returns a's offset within the block. a must be contained.
func (p Prefix) Index(a Addr) uint64 {
	if !p.Contains(a) {
		panic(fmt.Sprintf("netsim: %s not in %s", a, p))
	}
	return uint64(a &^ p.Mask())
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Base&p.Mask(), p.Bits)
}
