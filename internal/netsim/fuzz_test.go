package netsim

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the wire parser against hostile bytes: the
// gateway feeds it raw telescope traffic, so it must never panic and
// must only accept packets whose re-marshalling is consistent.
func FuzzUnmarshal(f *testing.F) {
	f.Add(TCPSyn(1, 2, 3, 445, 5).Marshal())
	udp := UDPDatagram(9, 8, 53, 53, []byte("q")).Marshal()
	f.Add(udp)
	f.Add(ICMPEcho(1, 2, true).Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted packets must survive a marshal/unmarshal round trip
		// with identical header fields.
		out, err := Unmarshal(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if out.Src != pkt.Src || out.Dst != pkt.Dst || out.Proto != pkt.Proto ||
			out.SrcPort != pkt.SrcPort || out.DstPort != pkt.DstPort ||
			!bytes.Equal(out.Payload, pkt.Payload) {
			t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", pkt, out)
		}
	})
}
