package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire codec: Packet <-> real IPv4 bytes with correct Internet checksums.
// Headers are fixed-size (no IP or TCP options), which matches the traffic
// the honeyfarm synthesizes and keeps parsing branch-free.

const (
	ipHeaderLen   = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 8
)

// Wire errors.
var (
	ErrTruncated   = errors.New("netsim: truncated packet")
	ErrBadVersion  = errors.New("netsim: not IPv4")
	ErrBadChecksum = errors.New("netsim: bad checksum")
	ErrBadHeader   = errors.New("netsim: malformed header")
)

// checksum computes the Internet checksum (RFC 1071) over data, folding in
// an initial partial sum (for pseudo-headers).
func checksum(sum uint32, data []byte) uint16 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoSum folds the TCP/UDP pseudo-header into a partial sum.
func pseudoSum(src, dst Addr, proto Proto, length int) uint32 {
	var sum uint32
	sum += uint32(src>>16) + uint32(src&0xffff)
	sum += uint32(dst>>16) + uint32(dst&0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// WireLen returns the marshalled size of p in bytes.
func (p *Packet) WireLen() int {
	n := ipHeaderLen + len(p.Payload)
	switch p.Proto {
	case ProtoTCP:
		n += tcpHeaderLen
	case ProtoUDP:
		n += udpHeaderLen
	case ProtoICMP:
		n += icmpHeaderLen
	}
	return n
}

// Marshal serializes p into wire bytes, computing all checksums.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, p.WireLen())
	p.MarshalInto(buf)
	return buf
}

// MarshalInto serializes p into buf, which must be at least WireLen()
// long, and returns the number of bytes written. The gateway's fast path
// uses this to avoid per-packet allocation.
func (p *Packet) MarshalInto(buf []byte) int {
	total := p.WireLen()
	if len(buf) < total {
		panic(fmt.Sprintf("netsim: MarshalInto buffer %d < %d", len(buf), total))
	}
	b := buf[:total]

	// IPv4 header.
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	binary.BigEndian.PutUint16(b[6:], 0) // no fragmentation
	b[8] = p.TTL
	b[9] = byte(p.Proto)
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:], uint32(p.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(p.Dst))
	ipsum := checksum(0, b[:ipHeaderLen])
	binary.BigEndian.PutUint16(b[10:], ipsum)

	seg := b[ipHeaderLen:]
	switch p.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(seg[0:], p.SrcPort)
		binary.BigEndian.PutUint16(seg[2:], p.DstPort)
		binary.BigEndian.PutUint32(seg[4:], p.Seq)
		binary.BigEndian.PutUint32(seg[8:], p.Ack)
		seg[12] = 5 << 4 // data offset 5 words
		seg[13] = p.Flags
		binary.BigEndian.PutUint16(seg[14:], p.Window)
		seg[16], seg[17] = 0, 0 // checksum
		seg[18], seg[19] = 0, 0 // urgent pointer
		copy(seg[tcpHeaderLen:], p.Payload)
		segLen := tcpHeaderLen + len(p.Payload)
		sum := checksum(pseudoSum(p.Src, p.Dst, ProtoTCP, segLen), seg[:segLen])
		binary.BigEndian.PutUint16(seg[16:], sum)
	case ProtoUDP:
		binary.BigEndian.PutUint16(seg[0:], p.SrcPort)
		binary.BigEndian.PutUint16(seg[2:], p.DstPort)
		segLen := udpHeaderLen + len(p.Payload)
		binary.BigEndian.PutUint16(seg[4:], uint16(segLen))
		seg[6], seg[7] = 0, 0
		copy(seg[udpHeaderLen:], p.Payload)
		sum := checksum(pseudoSum(p.Src, p.Dst, ProtoUDP, segLen), seg[:segLen])
		if sum == 0 {
			sum = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		binary.BigEndian.PutUint16(seg[6:], sum)
	case ProtoICMP:
		seg[0] = p.ICMPType
		seg[1] = p.ICMPCode
		seg[2], seg[3] = 0, 0
		binary.BigEndian.PutUint16(seg[4:], p.ID)
		binary.BigEndian.PutUint16(seg[6:], 0) // sequence
		copy(seg[icmpHeaderLen:], p.Payload)
		sum := checksum(0, seg[:icmpHeaderLen+len(p.Payload)])
		binary.BigEndian.PutUint16(seg[2:], sum)
	default:
		copy(seg, p.Payload)
	}
	return total
}

// Unmarshal parses wire bytes into a Packet, verifying the IP header
// checksum and transport checksums. The payload slice aliases b.
func Unmarshal(b []byte) (*Packet, error) {
	var p Packet
	if err := p.Unmarshal(b); err != nil {
		return nil, err
	}
	return &p, nil
}

// Unmarshal parses into an existing Packet, for allocation-free paths.
func (p *Packet) Unmarshal(b []byte) error {
	if len(b) < ipHeaderLen {
		return ErrTruncated
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	if b[0]&0x0f != 5 {
		return ErrBadHeader // options unsupported
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ipHeaderLen || total > len(b) {
		return ErrTruncated
	}
	if checksum(0, b[:ipHeaderLen]) != 0 {
		return ErrBadChecksum
	}
	b = b[:total]
	*p = Packet{} // reset: reused packets must not leak prior fields
	p.ID = binary.BigEndian.Uint16(b[4:])
	p.TTL = b[8]
	p.Proto = Proto(b[9])
	p.Src = Addr(binary.BigEndian.Uint32(b[12:]))
	p.Dst = Addr(binary.BigEndian.Uint32(b[16:]))
	seg := b[ipHeaderLen:]

	switch p.Proto {
	case ProtoTCP:
		if len(seg) < tcpHeaderLen {
			return ErrTruncated
		}
		off := int(seg[12]>>4) * 4
		if off < tcpHeaderLen || off > len(seg) {
			return ErrBadHeader
		}
		if checksum(pseudoSum(p.Src, p.Dst, ProtoTCP, len(seg)), seg) != 0 {
			return ErrBadChecksum
		}
		p.SrcPort = binary.BigEndian.Uint16(seg[0:])
		p.DstPort = binary.BigEndian.Uint16(seg[2:])
		p.Seq = binary.BigEndian.Uint32(seg[4:])
		p.Ack = binary.BigEndian.Uint32(seg[8:])
		p.Flags = seg[13]
		p.Window = binary.BigEndian.Uint16(seg[14:])
		p.Payload = seg[off:]
	case ProtoUDP:
		if len(seg) < udpHeaderLen {
			return ErrTruncated
		}
		ulen := int(binary.BigEndian.Uint16(seg[4:]))
		if ulen < udpHeaderLen || ulen > len(seg) {
			return ErrTruncated
		}
		if binary.BigEndian.Uint16(seg[6:]) != 0 {
			if checksum(pseudoSum(p.Src, p.Dst, ProtoUDP, ulen), seg[:ulen]) != 0 {
				return ErrBadChecksum
			}
		}
		p.SrcPort = binary.BigEndian.Uint16(seg[0:])
		p.DstPort = binary.BigEndian.Uint16(seg[2:])
		p.Payload = seg[udpHeaderLen:ulen]
	case ProtoICMP:
		if len(seg) < icmpHeaderLen {
			return ErrTruncated
		}
		if checksum(0, seg) != 0 {
			return ErrBadChecksum
		}
		p.ICMPType = seg[0]
		p.ICMPCode = seg[1]
		p.ID = binary.BigEndian.Uint16(seg[4:])
		p.Payload = seg[icmpHeaderLen:]
	default:
		p.Payload = seg
	}
	if len(p.Payload) == 0 {
		p.Payload = nil
	}
	return nil
}
