package netsim

import (
	"time"

	"potemkin/internal/sim"
)

// Node consumes packets delivered by links. Gateways, farm servers, and
// traffic sources all implement Node.
type Node interface {
	// Receive is called by the kernel when a packet arrives. The packet
	// is owned by the receiver; senders must not retain it.
	Receive(now sim.Time, pkt *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(now sim.Time, pkt *Packet)

// Receive implements Node.
func (f NodeFunc) Receive(now sim.Time, pkt *Packet) { f(now, pkt) }

// LinkStats counts traffic through a link.
type LinkStats struct {
	Sent    uint64 // packets accepted for transmission
	Dropped uint64 // packets dropped by queue overflow
	Expired uint64 // packets discarded by TTL expiry
	Bytes   uint64 // wire bytes accepted
}

// Link is a unidirectional point-to-point pipe with propagation latency,
// a serialization rate, and a bounded queue. A zero Rate means infinite
// bandwidth; a zero QueueLimit means an unbounded queue.
type Link struct {
	K          *sim.Kernel
	To         Node
	Latency    time.Duration
	Rate       uint64 // bytes per second; 0 = infinite
	QueueLimit int    // packets in flight cap; 0 = unbounded
	// DecrementTTL makes the link behave as a router hop: each packet's
	// TTL drops by one, and packets expiring (TTL 0) are discarded.
	DecrementTTL bool

	Stats LinkStats

	// busyUntil tracks when the transmitter finishes serializing the
	// packet currently on the wire.
	busyUntil sim.Time
	inFlight  int
}

// NewLink wires a link from nowhere to dst. Callers hand packets to Send.
func NewLink(k *sim.Kernel, dst Node, latency time.Duration, rate uint64, queueLimit int) *Link {
	return &Link{K: k, To: dst, Latency: latency, Rate: rate, QueueLimit: queueLimit}
}

// Send enqueues pkt for delivery, returning false if the queue is full.
// Delivery happens at now + serialization + latency via the kernel.
func (l *Link) Send(pkt *Packet) bool {
	if l.DecrementTTL {
		if pkt.TTL <= 1 {
			l.Stats.Expired++
			return false
		}
		pkt.TTL--
	}
	if l.QueueLimit > 0 && l.inFlight >= l.QueueLimit {
		l.Stats.Dropped++
		return false
	}
	size := uint64(pkt.WireLen())
	start := l.K.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var serialize time.Duration
	if l.Rate > 0 {
		serialize = time.Duration(size * uint64(time.Second) / l.Rate)
	}
	done := start.Add(serialize)
	l.busyUntil = done
	l.inFlight++
	l.Stats.Sent++
	l.Stats.Bytes += size
	l.K.At(done.Add(l.Latency), func(now sim.Time) {
		l.inFlight--
		l.To.Receive(now, pkt)
	})
	return true
}

// Duplex bundles the two directions of a point-to-point link.
type Duplex struct {
	AB *Link // a -> b
	BA *Link // b -> a
}

// NewDuplex creates a symmetric pair of links between a and b.
func NewDuplex(k *sim.Kernel, a, b Node, latency time.Duration, rate uint64, queueLimit int) *Duplex {
	return &Duplex{
		AB: NewLink(k, b, latency, rate, queueLimit),
		BA: NewLink(k, a, latency, rate, queueLimit),
	}
}

// Sink is a Node that counts and optionally records packets. Tests and
// the benchmark harness use it as a traffic terminator.
type Sink struct {
	Count   uint64
	Bytes   uint64
	Keep    bool // retain packets in Packets
	Last    *Packet
	Packets []*Packet
}

// Receive implements Node.
func (s *Sink) Receive(_ sim.Time, pkt *Packet) {
	s.Count++
	s.Bytes += uint64(pkt.WireLen())
	s.Last = pkt
	if s.Keep {
		s.Packets = append(s.Packets, pkt)
	}
}
