package netsim

import "fmt"

// Proto is an IP protocol number.
type Proto byte

// Protocol numbers used by the honeyfarm.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
	ProtoGRE  Proto = 47
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoGRE:
		return "gre"
	default:
		return fmt.Sprintf("proto(%d)", byte(p))
	}
}

// TCP header flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// FlagString renders TCP flags as "SA", "R", etc.
func FlagString(flags byte) string {
	const names = "FSRPAU"
	var b []byte
	for i := 0; i < len(names); i++ {
		if flags&(1<<i) != 0 {
			b = append(b, names[i])
		}
	}
	if len(b) == 0 {
		return "."
	}
	return string(b)
}

// Packet is a parsed IPv4 datagram plus the transport header fields the
// honeyfarm cares about. The wire codec in wire.go converts between
// Packet and real bytes.
type Packet struct {
	Src, Dst Addr
	Proto    Proto
	TTL      byte
	ID       uint16 // IP identification

	// Transport fields; which are meaningful depends on Proto.
	SrcPort, DstPort uint16 // TCP/UDP
	Seq, Ack         uint32 // TCP
	Flags            byte   // TCP
	Window           uint16 // TCP
	ICMPType         byte   // ICMP
	ICMPCode         byte   // ICMP

	Payload []byte

	// Ephemeral marks a packet whose storage (typically a pooled wire
	// frame) is reclaimed when the current dispatch returns: consumers
	// may read it synchronously but must Clone before retaining it —
	// queueing it, capturing it into a closure. It is a transient
	// dispatch property, not part of the packet's identity: Clone
	// clears it and the wire and cluster codecs do not carry it.
	Ephemeral bool
}

// Clone returns a deep copy (payload included). The copy is always
// retainable: Ephemeral is cleared.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	q.Ephemeral = false
	return &q
}

// FlowKey identifies a transport flow by 5-tuple.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Flow returns the packet's 5-tuple.
func (p *Packet) Flow() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the key of the opposite direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// String formats the key like "tcp 1.2.3.4:80 > 5.6.7.8:1234".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// String summarizes the packet for logs.
func (p *Packet) String() string {
	switch p.Proto {
	case ProtoTCP:
		return fmt.Sprintf("tcp %s:%d > %s:%d [%s] seq=%d ack=%d len=%d",
			p.Src, p.SrcPort, p.Dst, p.DstPort, FlagString(p.Flags), p.Seq, p.Ack, len(p.Payload))
	case ProtoUDP:
		return fmt.Sprintf("udp %s:%d > %s:%d len=%d", p.Src, p.SrcPort, p.Dst, p.DstPort, len(p.Payload))
	case ProtoICMP:
		return fmt.Sprintf("icmp %s > %s type=%d code=%d", p.Src, p.Dst, p.ICMPType, p.ICMPCode)
	default:
		return fmt.Sprintf("%s %s > %s len=%d", p.Proto, p.Src, p.Dst, len(p.Payload))
	}
}

// TCPSyn builds a connection-opening probe, the telescope's most common
// packet.
func TCPSyn(src, dst Addr, srcPort, dstPort uint16, seq uint32) *Packet {
	return &Packet{
		Src: src, Dst: dst, Proto: ProtoTCP, TTL: 64,
		SrcPort: srcPort, DstPort: dstPort, Seq: seq,
		Flags: FlagSYN, Window: 65535,
	}
}

// UDPDatagram builds a UDP packet with the given payload.
func UDPDatagram(src, dst Addr, srcPort, dstPort uint16, payload []byte) *Packet {
	return &Packet{
		Src: src, Dst: dst, Proto: ProtoUDP, TTL: 64,
		SrcPort: srcPort, DstPort: dstPort, Payload: payload,
	}
}

// ICMPEcho builds an echo request (type 8) or reply (type 0).
func ICMPEcho(src, dst Addr, request bool) *Packet {
	t := byte(0)
	if request {
		t = 8
	}
	return &Packet{Src: src, Dst: dst, Proto: ProtoICMP, TTL: 64, ICMPType: t}
}
