package netsim

import (
	"testing"
	"time"

	"potemkin/internal/sim"
)

func TestStationServiceDelay(t *testing.T) {
	k := sim.NewKernel(1)
	var served []sim.Time
	s := &Station{K: k, Service: 10 * time.Millisecond,
		Serve: func(now sim.Time, _ *Packet) { served = append(served, now) }}
	// Two back-to-back arrivals: second waits for the first.
	s.Arrive(TCPSyn(1, 2, 3, 4, 1))
	s.Arrive(TCPSyn(1, 2, 3, 4, 2))
	k.Run()
	if len(served) != 2 {
		t.Fatalf("served %d", len(served))
	}
	if served[0] != sim.Start.Add(10*time.Millisecond) || served[1] != sim.Start.Add(20*time.Millisecond) {
		t.Errorf("completion times %v", served)
	}
}

func TestStationIdleServerNoWait(t *testing.T) {
	k := sim.NewKernel(1)
	var at sim.Time
	s := &Station{K: k, Service: 5 * time.Millisecond,
		Serve: func(now sim.Time, _ *Packet) { at = now }}
	k.At(sim.Start.Add(time.Second), func(sim.Time) { s.Arrive(TCPSyn(1, 2, 3, 4, 1)) })
	k.Run()
	if at != sim.Start.Add(1005*time.Millisecond) {
		t.Errorf("served at %v", at)
	}
}

func TestStationQueueLimit(t *testing.T) {
	k := sim.NewKernel(1)
	s := &Station{K: k, Service: time.Second, QueueLimit: 2}
	accepted := 0
	for i := 0; i < 10; i++ {
		if s.Arrive(TCPSyn(1, 2, 3, 4, uint32(i))) {
			accepted++
		}
	}
	// 1 in service + 2 queued.
	if accepted != 3 {
		t.Errorf("accepted %d, want 3", accepted)
	}
	if s.Stats.Dropped != 7 {
		t.Errorf("dropped %d", s.Stats.Dropped)
	}
	if s.Depth() != 2 {
		t.Errorf("depth %d", s.Depth())
	}
	k.Run()
	if s.Depth() != 0 || s.Stats.Served != 3 {
		t.Errorf("after drain: depth=%d served=%d", s.Depth(), s.Stats.Served)
	}
}

func TestStationLatencyGrowsWithLoad(t *testing.T) {
	// Deterministic service 1ms (capacity 1000 pps); compare mean
	// sojourn at 30% vs 95% load with Poisson arrivals.
	run := func(rate float64) float64 {
		k := sim.NewKernel(9)
		r := k.Stream("arrivals")
		var sum time.Duration
		var n int
		s := &Station{K: k, Service: time.Millisecond}
		stamps := map[*Packet]sim.Time{}
		s.Serve = func(now sim.Time, pkt *Packet) {
			sum += now.Sub(stamps[pkt])
			n++
		}
		var gen func(now sim.Time)
		gen = func(now sim.Time) {
			pkt := TCPSyn(1, 2, 3, 4, 1)
			stamps[pkt] = now
			s.Arrive(pkt)
			k.After(time.Duration(r.Exp(1e9/rate)), gen)
		}
		k.After(0, gen)
		k.RunUntil(sim.Start.Add(20 * time.Second))
		if n == 0 {
			return 0
		}
		return (sum / time.Duration(n)).Seconds() * 1000 // ms
	}
	low := run(300)
	high := run(950)
	if high < 2*low {
		t.Errorf("queueing knee missing: 30%% load %.3fms vs 95%% load %.3fms", low, high)
	}
	if low < 1.0 || low > 2.0 {
		t.Errorf("low-load sojourn %.3fms, want ~1-1.6ms", low)
	}
}
