package netsim

import (
	"testing"
	"time"

	"potemkin/internal/sim"
)

func TestLinkDeliversAfterLatency(t *testing.T) {
	k := sim.NewKernel(1)
	var at sim.Time
	dst := NodeFunc(func(now sim.Time, _ *Packet) { at = now })
	l := NewLink(k, dst, 10*time.Millisecond, 0, 0)
	l.Send(TCPSyn(1, 2, 3, 4, 5))
	k.Run()
	if want := sim.Start.Add(10 * time.Millisecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	k := sim.NewKernel(1)
	var times []sim.Time
	dst := NodeFunc(func(now sim.Time, _ *Packet) { times = append(times, now) })
	// 40-byte SYN at 40 bytes/sec => 1 s serialization each.
	l := NewLink(k, dst, 0, 40, 0)
	l.Send(TCPSyn(1, 2, 3, 4, 5))
	l.Send(TCPSyn(1, 2, 3, 4, 6))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != sim.Start.Add(time.Second) || times[1] != sim.Start.Add(2*time.Second) {
		t.Errorf("times = %v, want 1s and 2s", times)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	k := sim.NewKernel(1)
	var sink Sink
	l := NewLink(k, &sink, time.Millisecond, 0, 2)
	sent := 0
	for i := 0; i < 5; i++ {
		if l.Send(TCPSyn(1, 2, 3, 4, uint32(i))) {
			sent++
		}
	}
	if sent != 2 {
		t.Errorf("accepted %d, want 2", sent)
	}
	if l.Stats.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", l.Stats.Dropped)
	}
	k.Run()
	if sink.Count != 2 {
		t.Errorf("delivered %d, want 2", sink.Count)
	}
	// Queue drained: sends succeed again.
	if !l.Send(TCPSyn(1, 2, 3, 4, 9)) {
		t.Error("send after drain failed")
	}
}

func TestLinkStatsBytes(t *testing.T) {
	k := sim.NewKernel(1)
	var sink Sink
	l := NewLink(k, &sink, 0, 0, 0)
	p := TCPSyn(1, 2, 3, 4, 5)
	l.Send(p)
	k.Run()
	if l.Stats.Bytes != uint64(p.WireLen()) {
		t.Errorf("Bytes = %d, want %d", l.Stats.Bytes, p.WireLen())
	}
	if sink.Bytes != l.Stats.Bytes {
		t.Errorf("sink bytes %d != link bytes %d", sink.Bytes, l.Stats.Bytes)
	}
}

func TestDuplexBothDirections(t *testing.T) {
	k := sim.NewKernel(1)
	var a, b Sink
	d := NewDuplex(k, &a, &b, time.Millisecond, 0, 0)
	d.AB.Send(TCPSyn(1, 2, 3, 4, 5))
	d.BA.Send(TCPSyn(2, 1, 4, 3, 6))
	k.Run()
	if a.Count != 1 || b.Count != 1 {
		t.Errorf("a=%d b=%d, want 1 each", a.Count, b.Count)
	}
}

func TestLinkTTLDecrement(t *testing.T) {
	k := sim.NewKernel(1)
	var sink Sink
	l := NewLink(k, &sink, 0, 0, 0)
	l.DecrementTTL = true
	p := TCPSyn(1, 2, 3, 4, 5)
	p.TTL = 3
	l.Send(p)
	k.Run()
	if sink.Last.TTL != 2 {
		t.Errorf("TTL = %d, want 2", sink.Last.TTL)
	}
	// Expiry at TTL 1.
	p2 := TCPSyn(1, 2, 3, 4, 6)
	p2.TTL = 1
	if l.Send(p2) {
		t.Error("expired packet accepted")
	}
	if l.Stats.Expired != 1 {
		t.Errorf("Expired = %d", l.Stats.Expired)
	}
	k.Run()
	if sink.Count != 1 {
		t.Errorf("delivered %d", sink.Count)
	}
}

func TestSinkKeep(t *testing.T) {
	k := sim.NewKernel(1)
	s := &Sink{Keep: true}
	l := NewLink(k, s, 0, 0, 0)
	for i := 0; i < 3; i++ {
		l.Send(TCPSyn(1, 2, 3, 4, uint32(i)))
	}
	k.Run()
	if len(s.Packets) != 3 {
		t.Fatalf("kept %d", len(s.Packets))
	}
	if s.Packets[2].Seq != 2 || s.Last.Seq != 2 {
		t.Error("packet order wrong")
	}
}
