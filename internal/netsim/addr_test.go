package netsim

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", 0x0a000001, true},
		{"192.168.1.2", 0xc0a80102, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"1.2.3.256", 0, false},
		{"1.2.3.-1", 0, false},
		{"01.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	err := quick.Check(func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAddrFromOctets(t *testing.T) {
	a := AddrFrom(10, 20, 30, 40)
	if a.String() != "10.20.30.40" {
		t.Errorf("got %s", a)
	}
	if o := a.Octets(); o != [4]byte{10, 20, 30, 40} {
		t.Errorf("Octets() = %v", o)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	for _, a := range []string{"10.1.0.0", "10.1.255.255", "10.1.128.7"} {
		if !p.Contains(MustParseAddr(a)) {
			t.Errorf("%s should contain %s", p, a)
		}
	}
	for _, a := range []string{"10.0.255.255", "10.2.0.0", "11.1.0.0"} {
		if p.Contains(MustParseAddr(a)) {
			t.Errorf("%s should not contain %s", p, a)
		}
	}
}

func TestPrefixCanonicalizesHostBits(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/16")
	if p.Base != MustParseAddr("10.1.0.0") {
		t.Errorf("Base = %s, want 10.1.0.0", p.Base)
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String() = %s", p)
	}
}

func TestPrefixSizeNthIndex(t *testing.T) {
	p := MustParsePrefix("192.168.4.0/24")
	if p.Size() != 256 {
		t.Errorf("Size() = %d", p.Size())
	}
	for _, i := range []uint64{0, 1, 17, 255} {
		a := p.Nth(i)
		if !p.Contains(a) {
			t.Errorf("Nth(%d) = %s outside prefix", i, a)
		}
		if got := p.Index(a); got != i {
			t.Errorf("Index(Nth(%d)) = %d", i, got)
		}
	}
}

func TestPrefixNthOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParsePrefix("10.0.0.0/24").Nth(256)
}

func TestPrefixEdgeLengths(t *testing.T) {
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.1.2.3")) {
		t.Error("/0 should contain everything")
	}
	if all.Size() != 1<<32 {
		t.Errorf("/0 size = %d", all.Size())
	}
	host := MustParsePrefix("1.2.3.4/32")
	if host.Size() != 1 {
		t.Errorf("/32 size = %d", host.Size())
	}
	if !host.Contains(MustParseAddr("1.2.3.4")) || host.Contains(MustParseAddr("1.2.3.5")) {
		t.Error("/32 containment wrong")
	}
}

func TestParsePrefixRejectsBad(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "bad/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", s)
		}
	}
}

func TestPrefixNthIndexProperty(t *testing.T) {
	p := MustParsePrefix("172.16.0.0/12")
	err := quick.Check(func(raw uint32) bool {
		i := uint64(raw) % p.Size()
		return p.Index(p.Nth(i)) == i
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
