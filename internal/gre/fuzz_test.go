package gre

import (
	"bytes"
	"testing"
)

// FuzzDecap: GRE frames arrive straight off the (simulated) wire from
// telescope routers; decap must never panic and accepted frames must
// re-encapsulate identically.
func FuzzDecap(f *testing.F) {
	f.Add(Encap(&Header{}, []byte("payload")))
	f.Add(Encap(&Header{HasKey: true, Key: 42}, []byte{1, 2, 3}))
	f.Add(Encap(&Header{HasChecksum: true, HasKey: true, HasSequence: true, Key: 7, Sequence: 9}, nil))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := Decap(data)
		if err != nil {
			return
		}
		re := Encap(&h, payload)
		h2, payload2, err := Decap(re)
		if err != nil {
			t.Fatalf("re-decap failed: %v", err)
		}
		if h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", h, h2)
		}
	})
}
