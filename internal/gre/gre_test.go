package gre

import (
	"bytes"
	"testing"
	"testing/quick"

	"potemkin/internal/netsim"
)

func TestEncapDecapMinimal(t *testing.T) {
	inner := []byte("inner ip bytes")
	b := Encap(&Header{}, inner)
	if len(b) != 4+len(inner) {
		t.Fatalf("len = %d", len(b))
	}
	h, got, err := Decap(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.HasKey || h.HasChecksum || h.HasSequence {
		t.Errorf("unexpected flags: %+v", h)
	}
	if !bytes.Equal(got, inner) {
		t.Error("payload mismatch")
	}
}

func TestEncapDecapAllFields(t *testing.T) {
	inner := []byte{1, 2, 3, 4, 5}
	in := Header{HasChecksum: true, HasKey: true, HasSequence: true, Key: 0xabcd1234, Sequence: 99}
	b := Encap(&in, inner)
	if len(b) != 16+len(inner) {
		t.Fatalf("len = %d, want %d", len(b), 16+len(inner))
	}
	h, got, err := Decap(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Key != in.Key || h.Sequence != in.Sequence || !h.HasChecksum {
		t.Errorf("header = %+v", h)
	}
	if !bytes.Equal(got, inner) {
		t.Error("payload mismatch")
	}
}

func TestDecapDetectsCorruption(t *testing.T) {
	b := Encap(&Header{HasChecksum: true, HasKey: true, Key: 7}, []byte("payload"))
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x10
		h, payload, err := Decap(c)
		if err != nil {
			continue // detected
		}
		// The only undetectable flips would have to leave the checksum
		// valid AND the payload identical, which a single-bit flip cannot.
		if h.Key == 7 && bytes.Equal(payload, []byte("payload")) {
			t.Fatalf("flip at byte %d undetected", i)
		}
	}
}

func TestDecapRejects(t *testing.T) {
	okBytes := Encap(&Header{HasKey: true, Key: 1}, []byte("x"))

	trunc := okBytes[:3]
	if _, _, err := Decap(trunc); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}

	short := append([]byte(nil), okBytes[:4]...) // claims key but has none
	if _, _, err := Decap(short); err != ErrTruncated {
		t.Errorf("short options: %v", err)
	}

	badVer := append([]byte(nil), okBytes...)
	badVer[1] = 0x01
	if _, _, err := Decap(badVer); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}

	badProto := append([]byte(nil), okBytes...)
	badProto[2], badProto[3] = 0x86, 0xdd // IPv6
	if _, _, err := Decap(badProto); err != ErrBadProto {
		t.Errorf("bad proto: %v", err)
	}

	reserved := append([]byte(nil), okBytes...)
	reserved[0] |= 0x40 // routing flag
	if _, _, err := Decap(reserved); err != ErrReserved {
		t.Errorf("reserved flag: %v", err)
	}
}

// Property: decap(encap(h, p)) == (h, p) for all flag combinations.
func TestEncapDecapProperty(t *testing.T) {
	err := quick.Check(func(flags byte, key, seqn uint32, payload []byte) bool {
		in := Header{
			HasChecksum: flags&1 != 0,
			HasKey:      flags&2 != 0,
			HasSequence: flags&4 != 0,
		}
		if in.HasKey {
			in.Key = key
		}
		if in.HasSequence {
			in.Sequence = seqn
		}
		h, got, err := Decap(Encap(&in, payload))
		return err == nil && h == in && bytes.Equal(got, payload)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestTunnelWrapUnwrap(t *testing.T) {
	local := netsim.MustParseAddr("10.0.0.1")
	remote := netsim.MustParseAddr("10.0.0.2")
	tun := NewTunnel(local, remote, 42)
	tun.WithChecksum = true

	inner := netsim.TCPSyn(netsim.MustParseAddr("6.6.6.6"), netsim.MustParseAddr("10.5.1.2"), 4444, 445, 1)
	inner.Payload = []byte("probe")

	outer := tun.Wrap(inner)
	if outer.Proto != netsim.ProtoGRE || outer.Src != local || outer.Dst != remote {
		t.Fatalf("outer = %s", outer)
	}
	// Outer packet survives its own wire round trip.
	reparsed, err := netsim.Unmarshal(outer.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	h, got, err := Unwrap(reparsed)
	if err != nil {
		t.Fatal(err)
	}
	if h.Key != 42 || !h.HasSequence || h.Sequence != 0 {
		t.Errorf("header = %+v", h)
	}
	if got.Src != inner.Src || got.Dst != inner.Dst || got.DstPort != 445 ||
		!bytes.Equal(got.Payload, []byte("probe")) {
		t.Errorf("inner = %s", got)
	}
}

func TestTunnelSequenceIncrements(t *testing.T) {
	tun := NewTunnel(1, 2, 9)
	inner := netsim.TCPSyn(3, 4, 5, 6, 7)
	for want := uint32(0); want < 3; want++ {
		h, _, err := Unwrap(tun.Wrap(inner))
		if err != nil {
			t.Fatal(err)
		}
		if h.Sequence != want {
			t.Errorf("seq = %d, want %d", h.Sequence, want)
		}
	}
}

func TestUnwrapRejectsNonGRE(t *testing.T) {
	if _, _, err := Unwrap(netsim.TCPSyn(1, 2, 3, 4, 5)); err != ErrBadProto {
		t.Errorf("err = %v, want ErrBadProto", err)
	}
}

func TestHeaderLen(t *testing.T) {
	cases := []struct {
		h    Header
		want int
	}{
		{Header{}, 4},
		{Header{HasKey: true}, 8},
		{Header{HasChecksum: true, HasKey: true}, 12},
		{Header{HasChecksum: true, HasKey: true, HasSequence: true}, 16},
	}
	for _, c := range cases {
		if got := c.h.Len(); got != c.want {
			t.Errorf("Len(%+v) = %d, want %d", c.h, got, c.want)
		}
	}
}
