// Package gre implements GRE encapsulation (RFC 2784) with the key and
// sequence-number extensions (RFC 2890), over real bytes.
//
// Potemkin's gateway receives telescope traffic tunnelled from border
// routers and forwards bound packets to farm servers over further GRE
// tunnels; the key field carries the tunnel/VM binding ID. This package
// provides the header codec and a Tunnel helper that wraps inner IPv4
// packets in an outer IPv4+GRE envelope on the netsim substrate.
package gre

import (
	"encoding/binary"
	"errors"

	"potemkin/internal/netsim"
)

// Header field flags (first byte of the header).
const (
	flagChecksum = 0x80
	flagKey      = 0x20
	flagSequence = 0x10
	// Routing (0x40) and all RFC 1701 extensions beyond key/sequence are
	// obsolete; packets carrying them are rejected.
	reservedMask = 0x4f
)

// protoIPv4 is the EtherType GRE uses for encapsulated IPv4.
const protoIPv4 = 0x0800

// Codec errors.
var (
	ErrTruncated   = errors.New("gre: truncated header")
	ErrBadVersion  = errors.New("gre: unsupported version")
	ErrBadProto    = errors.New("gre: unsupported payload protocol")
	ErrReserved    = errors.New("gre: reserved flag set")
	ErrBadChecksum = errors.New("gre: bad checksum")
)

// Header is the parsed GRE header.
type Header struct {
	HasChecksum bool
	HasKey      bool
	HasSequence bool
	Key         uint32
	Sequence    uint32
}

// Len returns the encoded header size in bytes.
func (h *Header) Len() int {
	n := 4
	if h.HasChecksum {
		n += 4
	}
	if h.HasKey {
		n += 4
	}
	if h.HasSequence {
		n += 4
	}
	return n
}

// internetChecksum is the RFC 1071 checksum over data.
func internetChecksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Encap prepends a GRE header to an inner IPv4 payload and returns the
// GRE packet bytes.
func Encap(h *Header, inner []byte) []byte {
	buf := make([]byte, h.Len()+len(inner))
	EncapInto(h, buf, inner)
	return buf
}

// EncapInto serializes the GRE packet into buf, which must be at least
// h.Len()+len(inner) bytes, and returns the number of bytes written. The
// wire-send fast paths (cmd/floodgen, the ingest replayer) use this to
// encapsulate without per-packet allocation.
func EncapInto(h *Header, buf, inner []byte) int {
	total := h.Len() + len(inner)
	if len(buf) < total {
		panic("gre: EncapInto buffer too small")
	}
	buf = buf[:total]
	var flags byte
	if h.HasChecksum {
		flags |= flagChecksum
	}
	if h.HasKey {
		flags |= flagKey
	}
	if h.HasSequence {
		flags |= flagSequence
	}
	buf[0] = flags
	buf[1] = 0 // version 0
	binary.BigEndian.PutUint16(buf[2:], protoIPv4)
	off := 4
	ckOff := -1
	if h.HasChecksum {
		ckOff = off
		off += 4 // checksum + reserved1, filled below
	}
	if h.HasKey {
		binary.BigEndian.PutUint32(buf[off:], h.Key)
		off += 4
	}
	if h.HasSequence {
		binary.BigEndian.PutUint32(buf[off:], h.Sequence)
		off += 4
	}
	copy(buf[off:], inner)
	if ckOff >= 0 {
		sum := internetChecksum(buf)
		binary.BigEndian.PutUint16(buf[ckOff:], sum)
	}
	return total
}

// Decap parses a GRE packet, returning the header and the inner payload
// (aliasing b). The checksum, if present, is verified.
func Decap(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < 4 {
		return h, nil, ErrTruncated
	}
	flags := b[0]
	if b[1]&0x07 != 0 {
		return h, nil, ErrBadVersion
	}
	if flags&reservedMask != 0 || b[1]&0xf8 != 0 {
		return h, nil, ErrReserved
	}
	if binary.BigEndian.Uint16(b[2:]) != protoIPv4 {
		return h, nil, ErrBadProto
	}
	h.HasChecksum = flags&flagChecksum != 0
	h.HasKey = flags&flagKey != 0
	h.HasSequence = flags&flagSequence != 0
	if len(b) < h.Len() {
		return Header{}, nil, ErrTruncated
	}
	off := 4
	if h.HasChecksum {
		if internetChecksum(b) != 0 {
			return Header{}, nil, ErrBadChecksum
		}
		off += 4
	}
	if h.HasKey {
		h.Key = binary.BigEndian.Uint32(b[off:])
		off += 4
	}
	if h.HasSequence {
		h.Sequence = binary.BigEndian.Uint32(b[off:])
		off += 4
	}
	return h, b[off:], nil
}

// Tunnel encapsulates inner packets for one GRE tunnel endpoint pair on
// the netsim substrate. Each outgoing packet carries the tunnel key and a
// monotonically increasing sequence number.
type Tunnel struct {
	Local, Remote netsim.Addr
	Key           uint32
	WithChecksum  bool

	seq uint32
}

// NewTunnel returns a tunnel from local to remote using key.
func NewTunnel(local, remote netsim.Addr, key uint32) *Tunnel {
	return &Tunnel{Local: local, Remote: remote, Key: key}
}

// Wrap encapsulates inner (an IPv4 packet) into an outer IPv4/GRE packet
// addressed to the tunnel remote.
func (t *Tunnel) Wrap(inner *netsim.Packet) *netsim.Packet {
	h := Header{HasKey: true, HasSequence: true, HasChecksum: t.WithChecksum, Key: t.Key, Sequence: t.seq}
	t.seq++
	return &netsim.Packet{
		Src: t.Local, Dst: t.Remote, Proto: netsim.ProtoGRE, TTL: 64,
		Payload: Encap(&h, inner.Marshal()),
	}
}

// Unwrap decapsulates an outer GRE packet produced by Wrap (by any
// tunnel), returning the GRE header and inner packet.
func Unwrap(outer *netsim.Packet) (Header, *netsim.Packet, error) {
	if outer.Proto != netsim.ProtoGRE {
		return Header{}, nil, ErrBadProto
	}
	h, innerBytes, err := Decap(outer.Payload)
	if err != nil {
		return Header{}, nil, err
	}
	inner, err := netsim.Unmarshal(innerBytes)
	if err != nil {
		return Header{}, nil, err
	}
	return h, inner, nil
}
