// Package pace is the closed-loop rate pacing shared by the wall-clock
// load generators (cmd/floodgen) and the deterministic schedulers (the
// scenario compiler's stage spacing). The core is one piece of
// arithmetic — the absolute schedule of a constant-rate event stream —
// used two ways: Schedule computes ideal offsets for virtual-time
// planning, and Governor sleeps a real send loop onto the same
// schedule so pacing error never accumulates.
package pace

import "time"

// Schedule returns the ideal offset of event n (0-based) in a stream of
// perSec events per second: n/perSec seconds. Pure arithmetic — no
// clock — so deterministic planners can space virtual events with
// exactly the spacing the wall-clock Governor paces real ones.
func Schedule(n uint64, perSec float64) time.Duration {
	if perSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / perSec * float64(time.Second))
}

// Governor paces a send loop toward a target rate. Sleeps happen every
// batch events rather than every event, so high rates are not limited
// by timer granularity, and always toward the absolute schedule from
// start, so a slow stretch is caught up rather than compounded.
type Governor struct {
	start time.Time
	rate  float64 // events/second; <= 0 disables pacing
	batch uint64
	n     uint64
}

// NewGovernor builds a governor for perSec events per second measured
// from start. batch <= 0 defaults to 64 (floodgen's historical batch).
func NewGovernor(start time.Time, perSec float64, batch int) *Governor {
	if batch <= 0 {
		batch = 64
	}
	return &Governor{start: start, rate: perSec, batch: uint64(batch)}
}

// Pace records one event and, at batch boundaries, sleeps until the
// schedule says the loop may continue.
func (g *Governor) Pace() {
	g.n++
	if g.rate <= 0 || g.n%g.batch != 0 {
		return
	}
	if d := time.Until(g.start.Add(Schedule(g.n, g.rate))); d > 0 {
		time.Sleep(d)
	}
}

// Sent returns how many events the governor has paced.
func (g *Governor) Sent() uint64 { return g.n }
