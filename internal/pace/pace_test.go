package pace

import (
	"testing"
	"time"
)

func TestScheduleArithmetic(t *testing.T) {
	if got := Schedule(0, 100); got != 0 {
		t.Fatalf("Schedule(0) = %v", got)
	}
	if got := Schedule(50, 100); got != 500*time.Millisecond {
		t.Fatalf("Schedule(50, 100/s) = %v, want 500ms", got)
	}
	if got := Schedule(10, 0); got != 0 {
		t.Fatalf("unpaced schedule should be 0, got %v", got)
	}
}

// Schedule must space events exactly like the legacy floodgen loop:
// start + n/rate seconds.
func TestScheduleMatchesLegacyFloodgenArithmetic(t *testing.T) {
	for _, n := range []uint64{1, 64, 1000, 999999} {
		rate := 48000.0
		legacy := time.Duration(float64(n) / rate * float64(time.Second))
		if got := Schedule(n, rate); got != legacy {
			t.Fatalf("Schedule(%d) = %v, legacy = %v", n, got, legacy)
		}
	}
}

func TestGovernorPacesTowardSchedule(t *testing.T) {
	start := time.Now()
	g := NewGovernor(start, 2000, 10)
	for i := 0; i < 100; i++ {
		g.Pace()
	}
	if g.Sent() != 100 {
		t.Fatalf("Sent = %d", g.Sent())
	}
	// 100 events at 2000/s schedule out to 50 ms; allow generous slack
	// below but insist the governor actually slept most of it.
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("governor finished in %v, schedule says >= ~50ms", el)
	}
}

func TestGovernorUnpacedNeverSleeps(t *testing.T) {
	g := NewGovernor(time.Now(), 0, 4)
	done := time.Now().Add(50 * time.Millisecond)
	for i := 0; i < 1_000_000; i++ {
		g.Pace()
	}
	if time.Now().After(done) {
		t.Fatal("unpaced governor took suspiciously long")
	}
}
