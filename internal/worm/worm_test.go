package worm

import (
	"math"
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func TestEpidemicGrowsLogistically(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.Susceptible = 1 << 20
	cfg.InitialInfected = 100
	cfg.ScanRate = 100
	e := New(k, cfg)
	e.Start()
	k.RunUntil(sim.Start.Add(10 * time.Minute))
	e.Stop()

	st := e.Stats()
	if st.Infected <= cfg.InitialInfected {
		t.Fatalf("no growth: %d", st.Infected)
	}
	// Conservation.
	if st.Infected+st.Susceptible != cfg.Susceptible {
		t.Errorf("population leak: %d + %d != %d", st.Infected, st.Susceptible, cfg.Susceptible)
	}
	// Growth-curve shape: monotone non-decreasing, slow-fast-slow.
	prev := 0.0
	for i, v := range e.Curve.V {
		if v < prev {
			t.Fatalf("infected decreased at sample %d", i)
		}
		prev = v
	}
}

func TestEpidemicMatchesAnalyticEarlyGrowth(t *testing.T) {
	// Early phase: I(t) ≈ I0 * exp(r*S0/2^32 * t). With S0 = 2^24,
	// r = 256 scans/s: rate const = 256 * 2^24 / 2^32 = 1 per second.
	k := sim.NewKernel(2)
	cfg := DefaultConfig()
	cfg.Susceptible = 1 << 24
	cfg.InitialInfected = 1000
	cfg.ScanRate = 256
	cfg.Deliver = nil
	e := New(k, cfg)
	e.Start()
	k.RunUntil(sim.Start.Add(4 * time.Second))
	e.Stop()
	got := float64(e.Infected())
	want := 1000 * math.Exp(4)
	if got < want*0.7 || got > want*1.4 {
		t.Errorf("I(4s) = %.0f, analytic ~%.0f", got, want)
	}
}

func TestTelescopeHitRate(t *testing.T) {
	// 1000 infected × 100 scans/s × (2^16/2^32) = ~1.5 hits/s.
	k := sim.NewKernel(3)
	cfg := DefaultConfig()
	cfg.Susceptible = 1 << 20
	cfg.InitialInfected = 1000
	cfg.ScanRate = 100
	// Freeze growth to keep the rate interpretable.
	cfg.Susceptible = cfg.InitialInfected + 1
	var delivered int
	cfg.Deliver = func(_ sim.Time, _ *netsim.Packet) { delivered++ }
	e := New(k, cfg)
	e.Start()
	k.RunUntil(sim.Start.Add(100 * time.Second))
	e.Stop()
	want := 1000.0 * 100 * 100 * float64(cfg.Telescope.Size()) / (1 << 32)
	got := float64(e.Stats().TelescopeHits)
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("telescope hits = %.0f, want ~%.0f", got, want)
	}
	if delivered == 0 {
		t.Error("no packets delivered")
	}
}

func TestDeliveredPacketsAreValidProbes(t *testing.T) {
	k := sim.NewKernel(4)
	cfg := DefaultConfig()
	cfg.InitialInfected = 5000
	cfg.ScanRate = 500
	cfg.ExploitPayload = []byte("sig\x00")
	var pkts []*netsim.Packet
	cfg.Deliver = func(_ sim.Time, p *netsim.Packet) { pkts = append(pkts, p) }
	e := New(k, cfg)
	e.Start()
	k.RunUntil(sim.Start.Add(20 * time.Second))
	e.Stop()
	if len(pkts) == 0 {
		t.Fatal("no packets")
	}
	for _, p := range pkts {
		if !cfg.Telescope.Contains(p.Dst) {
			t.Fatalf("probe dst %s outside telescope", p.Dst)
		}
		if cfg.Telescope.Contains(p.Src) {
			t.Fatalf("probe src %s inside telescope", p.Src)
		}
		if p.DstPort != 445 || string(p.Payload) != "sig\x00" {
			t.Fatalf("probe malformed: %s", p)
		}
		// Survives the wire.
		if _, err := netsim.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFirstTelescopeHitScalesWithTelescopeSize(t *testing.T) {
	detect := func(bits int) sim.Time {
		k := sim.NewKernel(5)
		cfg := DefaultConfig()
		cfg.Telescope = netsim.Prefix{Base: netsim.MustParseAddr("10.0.0.0"), Bits: bits}
		cfg.InitialInfected = 10
		cfg.ScanRate = 10
		cfg.Susceptible = 1 << 20
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(time.Hour))
		e.Stop()
		if !e.Stats().SeenTelescope {
			return sim.End
		}
		return e.Stats().FirstTelescopeHit
	}
	t8 := detect(8)
	t16 := detect(16)
	t24 := detect(24)
	if !(t8 < t16 && t16 < t24) {
		t.Errorf("detection times not ordered: /8=%v /16=%v /24=%v", t8, t16, t24)
	}
}

func TestHitlistHeadStart(t *testing.T) {
	run := func(s Strategy) int {
		k := sim.NewKernel(6)
		cfg := DefaultConfig()
		cfg.Strategy = s
		cfg.InitialInfected = 50
		cfg.ScanRate = 50
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(time.Minute))
		e.Stop()
		return e.Infected()
	}
	if uni, hl := run(Uniform), run(Hitlist); hl <= uni {
		t.Errorf("hitlist (%d) not ahead of uniform (%d)", hl, uni)
	}
}

func TestLocalPrefSpreadsFaster(t *testing.T) {
	run := func(s Strategy) int {
		k := sim.NewKernel(7)
		cfg := DefaultConfig()
		cfg.Strategy = s
		cfg.Susceptible = 1 << 22
		cfg.InitialInfected = 500
		cfg.ScanRate = 100
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(2 * time.Minute))
		e.Stop()
		return e.Infected()
	}
	if uni, lp := run(Uniform), run(LocalPref); lp <= uni {
		t.Errorf("local-pref infected %d <= uniform %d", lp, uni)
	}
}

func TestLocalPrefHitsTelescopeLessPerScan(t *testing.T) {
	// Freeze growth so both strategies field the same scan volume; the
	// local fraction of local-pref scans never reaches the (dark)
	// telescope, so its hit count should be roughly halved.
	run := func(s Strategy) uint64 {
		k := sim.NewKernel(7)
		cfg := DefaultConfig()
		cfg.Strategy = s
		cfg.InitialInfected = 2000
		cfg.Susceptible = cfg.InitialInfected + 1
		cfg.ScanRate = 100
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(time.Minute))
		e.Stop()
		return e.Stats().TelescopeHits
	}
	uni, lp := run(Uniform), run(LocalPref)
	ratio := float64(lp) / float64(uni)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("local-pref/uniform hit ratio = %.2f, want ~0.5 (%d vs %d)", ratio, lp, uni)
	}
}

func TestPermutationScanning(t *testing.T) {
	// A coordinated worm with enough aggregate scan capacity to sweep
	// 2^32 addresses: 100k infected × 1000 scans/s = 1e8/s → full sweep
	// in ~43 s. After the sweep: saturation and telescope silence.
	run := func(s Strategy) (int, uint64, uint64) {
		k := sim.NewKernel(13)
		cfg := DefaultConfig()
		cfg.Strategy = s
		cfg.Susceptible = 1 << 20
		cfg.InitialInfected = 100000
		cfg.ScanRate = 1000
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(50 * time.Second))
		infAt50 := e.Infected()
		hitsAt50 := e.Stats().TelescopeHits
		k.RunUntil(sim.Start.Add(2 * time.Minute))
		e.Stop()
		return infAt50, hitsAt50, e.Stats().TelescopeHits
	}
	permAt50Inf, permAt50, permFinal := run(Permutation)
	uniAt50Inf, _, uniFinal := run(Uniform)

	// Just past one full sweep (~43 s) the permutation worm has
	// saturated; random-with-replacement has covered only ~1-1/e.
	if permAt50Inf != 1<<20 {
		t.Errorf("permutation infected %d at 50s, want full saturation", permAt50Inf)
	}
	if uniAt50Inf >= permAt50Inf {
		t.Errorf("uniform at 50s (%d) should trail permutation (%d)", uniAt50Inf, permAt50Inf)
	}
	// Telescope signature: permutation goes quiet after the sweep.
	permAfter := permFinal - permAt50
	if permAfter > permAt50/20 {
		t.Errorf("telescope not quiet after sweep: %d hits before, %d after", permAt50, permAfter)
	}
	if uniFinal <= permFinal {
		t.Errorf("uniform (%d hits) should out-hit a retired permutation worm (%d)", uniFinal, permFinal)
	}
}

func TestAggregateScanCapLinearizesGrowth(t *testing.T) {
	run := func(cap float64) (early, late int) {
		k := sim.NewKernel(13)
		cfg := DefaultConfig()
		cfg.Susceptible = 1 << 22
		cfg.InitialInfected = 1000
		cfg.ScanRate = 50
		cfg.AggregateScanCap = cap
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(30 * time.Second))
		early = e.Infected()
		k.RunUntil(sim.Start.Add(60 * time.Second))
		late = e.Infected()
		e.Stop()
		return early, late
	}
	// Uncapped: exponential — far more growth in the second half-minute.
	uEarly, uLate := run(0)
	// Tightly capped: linear — roughly equal growth in both halves.
	capRate := 50.0 * 1000 // binds immediately (initial population rate)
	cEarly, cLate := run(capRate)

	if uLate <= cLate {
		t.Errorf("uncapped (%d) not ahead of capped (%d)", uLate, cLate)
	}
	uGrow2 := float64(uLate - uEarly)
	uGrow1 := float64(uEarly - 1000)
	if uGrow2 < 2*uGrow1 {
		t.Errorf("uncapped growth not accelerating: %+v then %+v", uGrow1, uGrow2)
	}
	cGrow1 := float64(cEarly - 1000)
	cGrow2 := float64(cLate - cEarly)
	if ratio := cGrow2 / cGrow1; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("capped growth not linear: %.0f then %.0f (ratio %.2f)", cGrow1, cGrow2, ratio)
	}
}

func TestDeliveryCapSuppresses(t *testing.T) {
	k := sim.NewKernel(8)
	cfg := DefaultConfig()
	cfg.InitialInfected = 100000
	cfg.ScanRate = 1000
	cfg.MaxDeliverPerStep = 5
	delivered := 0
	cfg.Deliver = func(sim.Time, *netsim.Packet) { delivered++ }
	e := New(k, cfg)
	e.Start()
	k.RunUntil(sim.Start.Add(5 * time.Second))
	e.Stop()
	if e.Stats().SuppressedPackets == 0 {
		t.Error("no suppression under extreme load")
	}
	st := e.Stats()
	if uint64(delivered) != st.DeliveredPackets {
		t.Errorf("delivered %d != stat %d", delivered, st.DeliveredPackets)
	}
	if st.DeliveredPackets+st.SuppressedPackets != st.TelescopeHits {
		t.Errorf("hit accounting: %d + %d != %d",
			st.DeliveredPackets, st.SuppressedPackets, st.TelescopeHits)
	}
}

func TestInjectLeakInfects(t *testing.T) {
	k := sim.NewKernel(9)
	cfg := DefaultConfig()
	cfg.Susceptible = 1 << 30 // dense: leaks likely to land
	cfg.InitialInfected = 10
	e := New(k, cfg)
	before := e.Infected()
	leak := netsim.TCPSyn(netsim.MustParseAddr("10.5.0.1"), netsim.MustParseAddr("99.0.0.1"), 1, 445, 1)
	leak.Payload = []byte("sig")
	for i := 0; i < 1000; i++ {
		e.InjectLeak(leak)
	}
	if e.Infected() <= before {
		t.Error("leaks never infected anyone")
	}
	if e.Stats().LeakInfections == 0 {
		t.Error("LeakInfections not counted")
	}
}

func TestInjectLeakIgnoresBenignAndInternal(t *testing.T) {
	k := sim.NewKernel(10)
	cfg := DefaultConfig()
	cfg.Susceptible = 1 << 30
	e := New(k, cfg)
	before := e.Infected()
	// No payload: not an exploit.
	for i := 0; i < 1000; i++ {
		e.InjectLeak(netsim.TCPSyn(1, netsim.MustParseAddr("99.0.0.1"), 1, 445, 1))
	}
	// Telescope-internal destination: not a leak.
	internal := netsim.TCPSyn(1, netsim.MustParseAddr("10.5.0.9"), 1, 445, 1)
	internal.Payload = []byte("sig")
	for i := 0; i < 1000; i++ {
		e.InjectLeak(internal)
	}
	if e.Infected() != before {
		t.Error("benign or internal packets caused infections")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, uint64) {
		k := sim.NewKernel(11)
		cfg := DefaultConfig()
		cfg.InitialInfected = 200
		cfg.ScanRate = 200
		e := New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(time.Minute))
		e.Stop()
		return e.Infected(), e.Stats().TelescopeHits
	}
	i1, h1 := run()
	i2, h2 := run()
	if i1 != i2 || h1 != h2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", i1, h1, i2, h2)
	}
}

func TestBadConfigPanics(t *testing.T) {
	k := sim.NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(k, Config{Susceptible: 0, InitialInfected: 1})
}
