package worm

import (
	"testing"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// TestTargeterDeterminism pins the target-sequence contract of the
// strategy seam: for every strategy, the same seed yields the same
// destination sequence draw for draw. A regression here would silently
// break byte-identical scenario replay, so the test is table-driven
// over every declared Strategy value — adding a strategy without
// covering it fails the completeness check below.
func TestTargeterDeterminism(t *testing.T) {
	tel := netsim.MustParsePrefix("10.5.0.0/16")
	strategies := []Strategy{Uniform, LocalPref, Hitlist, Permutation, P2P}
	for _, s := range strategies {
		if s.String() == "unknown" {
			t.Fatalf("strategy %d has no name", int(s))
		}
		t.Run(s.String(), func(t *testing.T) {
			const n = 512
			seq := func(seed uint64) []netsim.Addr {
				tg := NewTargeter(s, tel, seed)
				r := sim.NewRNG(seed ^ 0x776f726d)
				out := make([]netsim.Addr, n)
				for i := range out {
					out[i] = tg.Next(r)
					if !tel.Contains(out[i]) {
						t.Fatalf("draw %d: %v outside telescope", i, out[i])
					}
				}
				return out
			}
			a, b := seq(7), seq(7)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("draw %d differs for same seed: %v vs %v", i, a[i], b[i])
				}
			}
			c := seq(8)
			same := 0
			for i := range a {
				if a[i] == c[i] {
					same++
				}
			}
			if same == n {
				t.Fatalf("seed change did not perturb the %s sequence", s)
			}
		})
	}
	// Completeness: the table above must cover every named strategy.
	for s := Uniform; s.String() != "unknown"; s++ {
		found := false
		for _, in := range strategies {
			if in == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("strategy %s missing from the determinism table", s)
		}
	}
}

// TestUniformTargeterMatchesLegacyDraw pins that the seam did not move
// the uniform draw: a targeter destination equals the inline
// Nth(Uint64n(Size())) expression the epidemic used before the seam
// existed, for the same RNG state.
func TestUniformTargeterMatchesLegacyDraw(t *testing.T) {
	tel := netsim.MustParsePrefix("10.9.0.0/18")
	tg := NewTargeter(Uniform, tel, 99)
	a, b := sim.NewRNG(4242), sim.NewRNG(4242)
	for i := 0; i < 256; i++ {
		want := tel.Nth(a.Uint64n(tel.Size()))
		if got := tg.Next(b); got != want {
			t.Fatalf("draw %d: targeter %v, legacy %v", i, got, want)
		}
	}
}

// TestP2PTargeterWorkingSet checks the structural property that makes
// P2P a distinct scenario family: all traffic lands on the fixed peer
// table, so the distinct-destination count is bounded by the table
// size no matter how many packets are drawn.
func TestP2PTargeterWorkingSet(t *testing.T) {
	tel := netsim.MustParsePrefix("10.5.0.0/16")
	tg := NewP2PTargeter(tel, 5, 16)
	r := sim.NewRNG(5)
	seen := map[netsim.Addr]bool{}
	for i := 0; i < 4096; i++ {
		seen[tg.Next(r)] = true
	}
	if len(seen) > 16 {
		t.Fatalf("p2p working set %d exceeds peer table size 16", len(seen))
	}
	if len(seen) < 8 {
		t.Fatalf("p2p working set %d suspiciously small for 16 peers", len(seen))
	}
}
