// Package worm simulates an Internet-scale scanning epidemic coupled to
// the honeyfarm — the substrate for the paper's containment and
// detection-time experiments. The susceptible population is modeled in
// aggregate (an SI process advanced in small time steps with binomially
// sampled infections), while every scan that lands inside the monitored
// telescope prefix is materialized as a real packet and delivered to the
// gateway, so the honeyfarm side runs the genuine binding / cloning /
// containment machinery.
//
// Coupling in the other direction is what the containment experiment
// measures: packets the gateway lets escape (leaks) carry the exploit to
// the outside population and accelerate the epidemic; contained policies
// contribute nothing.
package worm

import (
	"math"
	"time"

	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Strategy is a worm target-selection strategy.
type Strategy int

// Scan strategies.
const (
	// Uniform picks targets uniformly from the 2^32 address space
	// (Code Red / Slammer style).
	Uniform Strategy = iota
	// LocalPref scans the local neighbourhood with higher probability,
	// raising the effective hit rate on susceptibles but never hitting
	// the telescope with local scans (the telescope space is dark).
	LocalPref
	// Hitlist starts with a precomputed target list: the initial phase
	// is instantaneous, modeled as a larger initial infected count.
	Hitlist
	// Permutation coordinates instances over a shared pseudorandom
	// permutation of the address space (Warhol-worm style): the
	// population collectively scans without replacement, saturates the
	// susceptible pool in finite time, and then goes quiet — including
	// at the telescope, a distinctive signature.
	Permutation
	// P2P propagates over a structured overlay: instances pick targets
	// from a shared peer table (Chord-style fingers over the telescope
	// space) instead of drawing uniformly, so the materialized traffic
	// concentrates on a small stable working set of addresses — the
	// botnet-shaped load the paper's uniform-scanning experiments never
	// exercise.
	P2P
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case LocalPref:
		return "local-pref"
	case Hitlist:
		return "hitlist"
	case Permutation:
		return "permutation"
	case P2P:
		return "p2p"
	default:
		return "unknown"
	}
}

// Targeter materializes the destination sequence of telescope-bound
// scans for one strategy. Every implementation draws exactly once from
// the caller's RNG per packet, so switching strategies never shifts
// the shared stream consumed by the rest of the epidemic — and the
// same seed pins the same target sequence (see TestTargeterDeterminism).
type Targeter interface {
	// Next returns the next scan destination inside the telescope.
	Next(r *sim.RNG) netsim.Addr
}

// NewTargeter builds the materialization targeter for a strategy.
// Uniform, LocalPref, Hitlist, and Permutation all materialize
// telescope hits uniformly (their structure lives in the aggregate SI
// model — local scans never reach the dark telescope, and hitlist /
// permutation phases only change who scans, not where telescope hits
// land), so they share one implementation whose draw sequence is
// byte-identical to the pre-seam code. P2P scans from a peer table
// derived from the seed.
func NewTargeter(s Strategy, tel netsim.Prefix, seed uint64) Targeter {
	if s == P2P {
		return NewP2PTargeter(tel, seed, 0)
	}
	return uniformTargeter{tel: tel}
}

// uniformTargeter draws uniformly over the telescope prefix.
type uniformTargeter struct {
	tel netsim.Prefix
}

func (t uniformTargeter) Next(r *sim.RNG) netsim.Addr {
	return t.tel.Nth(r.Uint64n(t.tel.Size()))
}

// p2pTargeter scans a fixed peer table: `peers` addresses placed by a
// seed-keyed hash over the telescope space, one uniform index draw per
// packet. The working set is tiny and stable, so the gateway sees the
// same bindings hit over and over — overlay maintenance traffic, not a
// sweep.
type p2pTargeter struct {
	peers []netsim.Addr
}

// NewP2PTargeter builds a peer-table targeter with the given table
// size (<= 0 selects the default of 64 peers).
func NewP2PTargeter(tel netsim.Prefix, seed uint64, peers int) Targeter {
	if peers <= 0 {
		peers = 64
	}
	if u := tel.Size(); uint64(peers) > u {
		peers = int(u)
	}
	t := &p2pTargeter{peers: make([]netsim.Addr, peers)}
	for i := range t.peers {
		x := seed + uint64(i+1)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		t.peers[i] = tel.Nth(x % tel.Size())
	}
	return t
}

func (t *p2pTargeter) Next(r *sim.RNG) netsim.Addr {
	return t.peers[r.Uint64n(uint64(len(t.peers)))]
}

// Config parameterizes an epidemic.
type Config struct {
	// Susceptible is the vulnerable population size.
	Susceptible int
	// InitialInfected seeds the epidemic.
	InitialInfected int
	// ScanRate is scans/second per infected host.
	ScanRate float64
	// AggregateScanCap, when positive, bounds the population's total
	// scans/second — Slammer-style bandwidth limiting, where access
	// links saturate long before every instance reaches its nominal
	// rate. Growth turns from exponential to linear once the cap binds.
	AggregateScanCap float64
	// Strategy selects targeting.
	Strategy Strategy
	// LocalFraction (LocalPref only): fraction of scans aimed at the
	// local neighbourhood.
	LocalFraction float64
	// LocalDensityBoost (LocalPref only): how much denser susceptibles
	// are in an infected host's neighbourhood than globally.
	LocalDensityBoost float64

	// Telescope is the honeyfarm's monitored space; scans landing there
	// become packets delivered to Deliver.
	Telescope netsim.Prefix
	// Deliver receives materialized telescope-bound scans. Nil for
	// pure-epidemic runs.
	Deliver func(now sim.Time, pkt *netsim.Packet)
	// MaxDeliverPerStep caps materialized packets per step so a huge
	// epidemic cannot melt the gateway simulation; the overflow is
	// counted, not silently lost.
	MaxDeliverPerStep int

	// ExploitPayload is carried by scan packets (so honeyfarm guests
	// actually get infected). Port/proto describe the probe.
	ExploitPayload []byte
	Port           uint16
	Proto          netsim.Proto

	// Step is the integration step.
	Step time.Duration

	// SampleEvery controls how often the infected count is recorded.
	SampleEvery time.Duration

	Seed uint64
}

// DefaultConfig returns a Blaster-like epidemic: 1M susceptibles, 10
// scans/s, uniform targeting, against a /16 telescope.
func DefaultConfig() Config {
	return Config{
		Susceptible:       1 << 20,
		InitialInfected:   10,
		ScanRate:          10,
		Strategy:          Uniform,
		LocalFraction:     0.5,
		LocalDensityBoost: 8,
		Telescope:         netsim.MustParsePrefix("10.5.0.0/16"),
		MaxDeliverPerStep: 64,
		Port:              445,
		Proto:             netsim.ProtoTCP,
		Step:              100 * time.Millisecond,
		SampleEvery:       time.Second,
		Seed:              1,
	}
}

// Stats summarizes an epidemic run.
type Stats struct {
	Infected          int
	Susceptible       int
	TelescopeHits     uint64
	DeliveredPackets  uint64
	SuppressedPackets uint64 // telescope hits over the per-step cap
	LeakInfections    uint64 // infections caused by honeyfarm leakage
	FirstTelescopeHit sim.Time
	SeenTelescope     bool
}

// Epidemic is a running worm outbreak.
type Epidemic struct {
	Cfg Config
	K   *sim.Kernel

	// Curve records (seconds, infected count) over time.
	Curve metrics.Series

	susceptible float64
	infected    float64
	stats       Stats
	rng         *sim.RNG
	targeter    Targeter
	srcSeq      uint32
	ticker      *sim.Ticker
	sampler     *sim.Ticker

	// Permutation-scanning state: total scans issued and the
	// susceptible pool at start (coverage-based infection accounting).
	totalScans  float64
	initialSusc float64

	// Response state: once a countermeasure deploys, susceptibles are
	// immunized at patchRate fraction/second.
	patchRate float64
	immunized float64
}

// New prepares an epidemic on kernel k. Call Start to begin.
func New(k *sim.Kernel, cfg Config) *Epidemic {
	if cfg.Susceptible <= 0 || cfg.InitialInfected <= 0 {
		panic("worm: empty population")
	}
	if cfg.Step <= 0 {
		cfg.Step = 100 * time.Millisecond
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	if cfg.MaxDeliverPerStep <= 0 {
		cfg.MaxDeliverPerStep = 64
	}
	initial := cfg.InitialInfected
	if cfg.Strategy == Hitlist {
		// The hitlist phase compromises its list near-instantly; model
		// it as a 100x head start (bounded by the population).
		initial *= 100
		if initial > cfg.Susceptible/2 {
			initial = cfg.Susceptible / 2
		}
	}
	e := &Epidemic{
		Cfg:         cfg,
		K:           k,
		susceptible: float64(cfg.Susceptible - initial),
		infected:    float64(initial),
		rng:         sim.NewRNG(cfg.Seed ^ 0x776f726d),
		targeter:    NewTargeter(cfg.Strategy, cfg.Telescope, cfg.Seed),
	}
	e.initialSusc = e.susceptible
	e.Curve.Name = "infected"
	return e
}

// Stats returns a snapshot of the epidemic state.
func (e *Epidemic) Stats() Stats {
	s := e.stats
	s.Infected = int(e.infected)
	s.Susceptible = int(e.susceptible)
	return s
}

// Infected returns the current infected count.
func (e *Epidemic) Infected() int { return int(e.infected) }

// Start begins stepping the epidemic.
func (e *Epidemic) Start() {
	e.Curve.Add(e.K.Now().Seconds(), e.infected)
	e.ticker = e.K.Every(e.Cfg.Step, e.step)
	e.sampler = e.K.Every(e.Cfg.SampleEvery, func(now sim.Time) {
		e.Curve.Add(now.Seconds(), e.infected)
	})
}

// Stop halts the epidemic.
func (e *Epidemic) Stop() {
	if e.ticker != nil {
		e.ticker.Stop()
	}
	if e.sampler != nil {
		e.sampler.Stop()
	}
}

const universe = float64(1 << 32)

// step advances the SI process by one interval and materializes
// telescope-bound scans.
func (e *Epidemic) step(now sim.Time) {
	dt := e.Cfg.Step.Seconds()
	scanRate := e.infected * e.Cfg.ScanRate
	if cap := e.Cfg.AggregateScanCap; cap > 0 && scanRate > cap {
		scanRate = cap
	}
	scans := scanRate * dt
	if scans <= 0 {
		return
	}

	// Partition scans between global and local targeting.
	globalScans := scans
	localScans := 0.0
	if e.Cfg.Strategy == LocalPref {
		localScans = scans * e.Cfg.LocalFraction
		globalScans = scans - localScans
	}

	var newInf float64
	sweepDone := false
	if e.Cfg.Strategy == Permutation {
		// Coordinated scanning without replacement: after N total scans
		// the population has covered N/2^32 of the space exactly once,
		// so cumulative infections track coverage linearly and the sweep
		// ends when coverage reaches 1.
		before := math.Min(1, e.totalScans/universe)
		e.totalScans += scans
		after := math.Min(1, e.totalScans/universe)
		newInf = e.sampleCount(e.initialSusc * (after - before))
		sweepDone = before >= 1
	} else {
		// Random with replacement: global scans hit susceptibles at
		// density S/2^32; local scans at boosted density.
		pGlobal := e.susceptible / universe
		newInf = e.sampleCount(globalScans * pGlobal)
		if localScans > 0 {
			pLocal := math.Min(1, pGlobal*e.Cfg.LocalDensityBoost)
			newInf += e.sampleCount(localScans * pLocal)
		}
	}
	if newInf > e.susceptible {
		newInf = e.susceptible
	}
	e.susceptible -= newInf
	e.infected += newInf

	// Countermeasure: immunize remaining susceptibles.
	if e.patchRate > 0 && e.susceptible > 0 {
		patched := e.susceptible * e.patchRate * dt
		if patched > e.susceptible {
			patched = e.susceptible
		}
		e.susceptible -= patched
		e.immunized += patched
	}

	// Telescope hits come only from globally-targeted scans — and a
	// completed permutation sweep stops scanning altogether.
	if sweepDone {
		return
	}
	pTel := float64(e.Cfg.Telescope.Size()) / universe
	hits := int(e.sampleCount(globalScans * pTel))
	if hits == 0 {
		return
	}
	e.stats.TelescopeHits += uint64(hits)
	if !e.stats.SeenTelescope {
		e.stats.SeenTelescope = true
		e.stats.FirstTelescopeHit = now
	}
	if e.Cfg.Deliver == nil {
		return
	}
	deliver := hits
	if deliver > e.Cfg.MaxDeliverPerStep {
		e.stats.SuppressedPackets += uint64(deliver - e.Cfg.MaxDeliverPerStep)
		deliver = e.Cfg.MaxDeliverPerStep
	}
	for i := 0; i < deliver; i++ {
		e.stats.DeliveredPackets++
		e.Cfg.Deliver(now, e.scanPacket())
	}
}

// sampleCount draws an integer-valued realization of a rate with mean m
// (Poisson for small means, normal approximation for large).
func (e *Epidemic) sampleCount(m float64) float64 {
	switch {
	case m <= 0:
		return 0
	case m < 30:
		// Knuth's Poisson.
		l := math.Exp(-m)
		k, p := 0, 1.0
		for p > l {
			k++
			p *= e.rng.Float64()
		}
		return float64(k - 1)
	default:
		v := e.rng.Normal(m, math.Sqrt(m))
		if v < 0 {
			return 0
		}
		return math.Round(v)
	}
}

// scanPacket materializes one telescope-bound probe from a random
// infected host, with the destination drawn by the strategy's targeter.
func (e *Epidemic) scanPacket() *netsim.Packet {
	src := e.randomExternal()
	dst := e.targeter.Next(e.rng)
	e.srcSeq++
	switch e.Cfg.Proto {
	case netsim.ProtoUDP:
		return netsim.UDPDatagram(src, dst, uint16(1024+e.rng.Intn(60000)), e.Cfg.Port, e.Cfg.ExploitPayload)
	default:
		p := netsim.TCPSyn(src, dst, uint16(1024+e.rng.Intn(60000)), e.Cfg.Port, e.srcSeq)
		if len(e.Cfg.ExploitPayload) > 0 {
			p.Flags |= netsim.FlagPSH
			p.Payload = e.Cfg.ExploitPayload
		}
		return p
	}
}

func (e *Epidemic) randomExternal() netsim.Addr {
	for {
		a := netsim.Addr(e.rng.Uint64n(1 << 32))
		if !e.Cfg.Telescope.Contains(a) && a != 0 {
			return a
		}
	}
}

// StartResponse deploys a countermeasure (signature push, patch
// rollout): from this call on, the remaining susceptible population is
// immunized at fracPerSec fraction per second. This is what a honeyfarm
// buys — the earlier the capture, the earlier this fires, the smaller
// the epidemic.
func (e *Epidemic) StartResponse(fracPerSec float64) {
	e.patchRate = fracPerSec
}

// Immunized returns how many hosts the response has protected.
func (e *Epidemic) Immunized() int { return int(e.immunized) }

// InjectLeak feeds a packet that escaped the honeyfarm back into the
// outside world. A leaked exploit hits a susceptible host with the
// global density probability; that is how an open honeyfarm accelerates
// the epidemic it is meant to observe.
func (e *Epidemic) InjectLeak(pkt *netsim.Packet) {
	if len(pkt.Payload) == 0 || e.Cfg.Telescope.Contains(pkt.Dst) {
		return
	}
	if e.rng.Float64() < e.susceptible/universe {
		e.susceptible--
		e.infected++
		e.stats.LeakInfections++
	}
}
