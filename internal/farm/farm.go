// Package farm is the honeyfarm control plane: a pool of simulated
// physical servers (internal/vmm hosts) behind the gateway. It
// implements gateway.Backend — flash-cloning a VM whenever the gateway
// binds a new address, attaching a guest personality to it, wiring the
// guest's outbound traffic back through the gateway's containment
// engine, and reclaiming VMs the gateway recycles.
package farm

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
	"potemkin/internal/vmm"
)

// ImageSpec describes the reference image every server registers.
type ImageSpec struct {
	Name          string
	NumPages      uint64
	ResidentPages uint64
	DiskBlocks    uint64
	Seed          uint64
}

// DefaultImage is a 128 MiB guest of which 32 MiB is resident after
// boot — small enough to simulate densely, large enough that full-copy
// baselines visibly exhaust hosts.
func DefaultImage() ImageSpec {
	return ImageSpec{
		Name:          "winxp",
		NumPages:      32768, // 128 MiB
		ResidentPages: 8192,  // 32 MiB
		DiskBlocks:    16384, // 1 GiB
		Seed:          42,
	}
}

// Placement selects how VMs map onto servers.
type Placement int

// Placement policies.
const (
	// PlaceLeastLoaded puts each VM on the server with the most free
	// memory.
	PlaceLeastLoaded Placement = iota
	// PlaceFirstFit fills servers in order.
	PlaceFirstFit
)

// Config parameterizes a farm.
type Config struct {
	Servers    int
	HostConfig vmm.HostConfig // template; Name is suffixed per server
	Image      ImageSpec
	Profile    *guest.Profile
	// Profiles, when non-empty, runs a heterogeneous population:
	// each address deterministically picks one of these personalities
	// (by address hash), overriding Profile. The paper's farm mixed
	// guest images the same way to present a believable population.
	Profiles  []*guest.Profile
	Placement Placement

	// FullBoot switches to the no-flash-cloning baseline.
	FullBoot bool

	// UplinkLatency delays guest-originated packets on their way to the
	// gateway (intra-farm network hop).
	UplinkLatency time.Duration
	// DownlinkLatency delays gateway-to-VM delivery (the same hop,
	// inbound).
	DownlinkLatency time.Duration

	// RetryBudget is how many extra clone attempts a VM request gets on
	// other healthy servers after a failed spawn before the failure is
	// reported to the gateway. Zero disables retries.
	RetryBudget int
	// RetryBackoff is the delay before the first retry; it doubles on
	// each subsequent attempt. Zero defaults to 100 ms when RetryBudget
	// is positive.
	RetryBackoff time.Duration

	// PickTarget chooses scan destinations for infected guests; nil
	// defaults to uniform over the IPv4 space.
	PickTarget guest.TargetPicker

	// PickTargetFor, when set, builds a self-aware target picker per
	// guest address and takes precedence over PickTarget. Structured
	// propagation (P2P overlays, lateral movement) needs the picker to
	// know who is asking: each infected guest scans its own peer table
	// rather than one shared distribution.
	PickTargetFor func(self netsim.Addr) guest.TargetPicker

	// OnInfected observes guest compromises (experiments hook this).
	OnInfected func(now sim.Time, in *guest.Instance)

	// Metrics, when set, registers live telemetry (farm_* series,
	// passed down to every server's VMM for the vmm_* series). Nil
	// disables telemetry at one nil check per site.
	Metrics *metrics.Registry
}

// DefaultConfig returns a 4-server farm of 16 GiB hosts running the
// default image with the Windows XP personality.
func DefaultConfig() Config {
	return Config{
		Servers:         4,
		HostConfig:      vmm.DefaultHostConfig("server"),
		Image:           DefaultImage(),
		Profile:         guest.WindowsXP(),
		UplinkLatency:   100 * time.Microsecond,
		DownlinkLatency: 100 * time.Microsecond,
		RetryBudget:     2,
		RetryBackoff:    100 * time.Millisecond,
	}
}

// Stats aggregates farm-level counters.
type Stats struct {
	Spawns        uint64
	SpawnFailures uint64 // requests that exhausted their retry budget (once per request)
	SpawnRetries  uint64 // failed clone attempts re-placed on another server
	Reclaims      uint64
	Infections    uint64
	CrashRecycles uint64 // bindings stranded by server crashes, reported to the gateway
	LinkDrops     uint64 // packets lost to farm<->gateway link outages
	PeakLiveVMs   int
}

// ErrFarmFull reports that no healthy server could admit a VM. It
// matches gateway.ErrBackendFull under errors.Is, so the gateway's
// shed mode recognizes farm exhaustion.
var ErrFarmFull error = farmFullError{}

type farmFullError struct{}

func (farmFullError) Error() string { return "farm: all servers at capacity" }

func (farmFullError) Is(target error) bool { return target == gateway.ErrBackendFull }

// farmMetrics are the registry handles, resolved once in New (all nil
// — no-op — when Config.Metrics is nil).
type farmMetrics struct {
	spawns        *metrics.Counter
	spawnRetries  *metrics.Counter
	spawnFailures *metrics.Counter
	reclaims      *metrics.Counter
	infections    *metrics.Counter
	crashRecycles *metrics.Counter
	linkDrops     *metrics.Counter
	liveVMs       *metrics.Gauge
}

// Farm is the server pool. It implements gateway.Backend.
type Farm struct {
	Cfg Config
	K   *sim.Kernel

	hosts []*vmm.VMHost
	gw    gateway.Egress

	// byAddr tracks the live VM for each bound address.
	byAddr map[netsim.Addr]*FarmVM

	// inflight holds VM requests whose clone has not completed, in
	// insertion order (a slice, not a map, so crash handling visits
	// them deterministically).
	inflight []*spawnReq
	// linkDown, while set, drops data-plane traffic between farm and
	// gateway (see SetLinkDown).
	linkDown bool

	stats Stats
	met   farmMetrics
	gi    *guest.Instruments
	rr    int // round-robin cursor for tie-breaking
	// tr, when non-nil, records placement spans under the gateway's
	// binding trace (shared via the tracer's per-address context).
	tr *trace.Tracer
}

// New builds the server pool. Call SetGateway before traffic flows.
// Configuration problems — no servers, no guest personality — are
// returned, not panicked: they come from callers, not internal bugs.
func New(k *sim.Kernel, cfg Config) (*Farm, error) {
	if cfg.Servers <= 0 {
		return nil, errors.New("farm: no servers")
	}
	if cfg.Profile == nil && len(cfg.Profiles) == 0 {
		return nil, errors.New("farm: nil guest profile")
	}
	if cfg.PickTarget == nil {
		cfg.PickTarget = func(r *sim.RNG) netsim.Addr { return netsim.Addr(r.Uint64n(1 << 32)) }
	}
	f := &Farm{Cfg: cfg, K: k, byAddr: make(map[netsim.Addr]*FarmVM)}
	f.gi = guest.NewInstruments(cfg.Metrics)
	if m := cfg.Metrics; m != nil {
		f.met = farmMetrics{
			spawns:        m.Counter("farm_spawns_total"),
			spawnRetries:  m.Counter("farm_spawn_retries_total"),
			spawnFailures: m.Counter("farm_spawn_failures_total"),
			reclaims:      m.Counter("farm_reclaims_total"),
			infections:    m.Counter("farm_infections_total"),
			crashRecycles: m.Counter("farm_crash_recycles_total"),
			linkDrops:     m.Counter("farm_link_drops_total"),
			liveVMs:       m.Gauge("farm_live_vms"),
		}
	}
	for i := 0; i < cfg.Servers; i++ {
		hc := cfg.HostConfig
		hc.Name = fmt.Sprintf("%s-%d", cfg.HostConfig.Name, i)
		hc.Metrics = cfg.Metrics
		h := vmm.NewHost(k, hc)
		h.RegisterImage(cfg.Image.Name, cfg.Image.NumPages, cfg.Image.ResidentPages,
			cfg.Image.DiskBlocks, cfg.Image.Seed)
		f.hosts = append(f.hosts, h)
	}
	return f, nil
}

// MustNew is New that panics on error (experiments and tests whose
// configs are hardcoded).
func MustNew(k *sim.Kernel, cfg Config) *Farm {
	f, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// SetGateway wires the gateway (or sharded gateway set) guests send
// their traffic through.
func (f *Farm) SetGateway(g gateway.Egress) { f.gw = g }

// SetTracer wires span tracing through the farm and down into every
// server's VMM. A nil tracer (the default) disables tracing.
func (f *Farm) SetTracer(t *trace.Tracer) {
	f.tr = t
	for _, h := range f.hosts {
		h.SetTracer(t)
	}
}

// Hosts returns the server pool.
func (f *Farm) Hosts() []*vmm.VMHost { return f.hosts }

// Stats returns a copy of the farm counters.
func (f *Farm) Stats() Stats { return f.stats }

// LiveVMs returns the number of VMs currently running across servers.
func (f *Farm) LiveVMs() int {
	n := 0
	for _, h := range f.hosts {
		n += h.NumVMs()
	}
	return n
}

// MemoryInUse sums modeled memory across servers.
func (f *Farm) MemoryInUse() uint64 {
	var b uint64
	for _, h := range f.hosts {
		b += h.MemoryInUse()
	}
	return b
}

// InfectedVMs counts live guests in the infected state.
func (f *Farm) InfectedVMs() int {
	n := 0
	for _, fv := range f.byAddr {
		if fv.Guest.Infected {
			n++
		}
	}
	return n
}

// Instance returns the live guest bound to addr, or nil.
func (f *Farm) Instance(addr netsim.Addr) *guest.Instance {
	if fv, ok := f.byAddr[addr]; ok {
		return fv.Guest
	}
	return nil
}

// VMAt returns the live VM bound to addr, or nil (checkpointing and
// forensics).
func (f *Farm) VMAt(addr netsim.Addr) *vmm.VM {
	if fv, ok := f.byAddr[addr]; ok {
		return fv.VM
	}
	return nil
}

// EachInstance visits every live guest.
func (f *Farm) EachInstance(fn func(*guest.Instance)) {
	for _, fv := range f.byAddr {
		fn(fv.Guest)
	}
}

// GuestTotals sums the per-guest counters across live instances
// (recycled guests' counters leave with them).
func (f *Farm) GuestTotals() guest.Stats {
	var sum guest.Stats
	for _, fv := range f.byAddr {
		st := fv.Guest.Stats()
		sum.PacketsIn += st.PacketsIn
		sum.RepliesOut += st.RepliesOut
		sum.ScansOut += st.ScansOut
		sum.PagesDirty += st.PagesDirty
		sum.ExploitHits += st.ExploitHits
		sum.ConnsAccepted += st.ConnsAccepted
		sum.ConnsEstablished += st.ConnsEstablished
		sum.ConnsClosed += st.ConnsClosed
		sum.ExploitsSent += st.ExploitsSent
		sum.AppResponses += st.AppResponses
		sum.DNSQueries += st.DNSQueries
		sum.DNSResponses += st.DNSResponses
		sum.Stage2Fetches += st.Stage2Fetches
		sum.CanariesOut += st.CanariesOut
		sum.BeaconsOut += st.BeaconsOut
		sum.Fingerprinted += st.Fingerprinted
	}
	return sum
}

// pickHost selects a healthy server with capacity, preferring one
// other than avoid (the server whose clone attempt just failed).
func (f *Farm) pickHost(avoid *vmm.VMHost) *vmm.VMHost {
	if h := f.pickFrom(avoid); h != nil {
		return h
	}
	if avoid != nil && !avoid.Down() {
		// Only the just-failed server remains; better to hit it again
		// than to give up while capacity may be freeing.
		return f.pickFrom(nil)
	}
	return nil
}

// pickFrom applies the placement policy over up servers, skipping avoid.
func (f *Farm) pickFrom(avoid *vmm.VMHost) *vmm.VMHost {
	switch f.Cfg.Placement {
	case PlaceFirstFit:
		for _, h := range f.hosts {
			if h == avoid || h.Down() {
				continue
			}
			if h.MemoryFree() > h.Cfg.PerVMOverheadBytes {
				return h
			}
		}
		return nil
	default: // least loaded
		var best *vmm.VMHost
		for i := range f.hosts {
			h := f.hosts[(f.rr+i)%len(f.hosts)]
			if h == avoid || h.Down() {
				continue
			}
			if best == nil || h.MemoryFree() > best.MemoryFree() {
				best = h
			}
		}
		f.rr++
		if best != nil && best.MemoryFree() <= best.Cfg.PerVMOverheadBytes {
			return nil
		}
		return best
	}
}

// PrepareSnapshotImages runs the paper's image-preparation flow on
// every server: full-boot a reference VM, run the guest personality's
// workload for warmup (so the snapshot contains a *settled* system, not
// a freshly-booted one), snapshot it as name, destroy the reference VM,
// and switch the farm to clone from the snapshot. It must run before
// traffic flows and advances the simulation clock by roughly
// boot+warmup.
func (f *Farm) PrepareSnapshotImages(name string, warmup time.Duration) error {
	if len(f.byAddr) != 0 {
		return errors.New("farm: PrepareSnapshotImages after traffic started")
	}
	type prep struct {
		h  *vmm.VMHost
		vm *vmm.VM
		in *guest.Instance
	}
	var preps []prep
	for _, h := range f.hosts {
		vm, err := h.FullBoot(f.Cfg.Image.Name, 0, nil)
		if err != nil {
			return fmt.Errorf("farm: reference boot on %s: %w", h.Cfg.Name, err)
		}
		preps = append(preps, prep{h: h, vm: vm})
	}
	// Let every boot complete, then run the guest workload to settle.
	f.K.RunFor(f.Cfg.HostConfig.Latency.FullBoot * 2)
	for i := range preps {
		profile := f.Cfg.Profile
		if profile == nil {
			profile = f.Cfg.Profiles[0]
		}
		preps[i].in = guest.New(f.K, preps[i].vm, profile, func(*netsim.Packet) {}, nil, guest.Hooks{})
		preps[i].in.Start()
	}
	f.K.RunFor(warmup)
	for _, p := range preps {
		p.in.Stop()
		if _, err := p.h.SnapshotVM(p.vm.ID, name); err != nil {
			return fmt.Errorf("farm: snapshot on %s: %w", p.h.Cfg.Name, err)
		}
		p.h.Destroy(p.vm.ID)
	}
	f.Cfg.Image.Name = name
	return nil
}

// spawnReq tracks one gateway VM request through retries and server
// failures until its ready callback has fired.
type spawnReq struct {
	addr    netsim.Addr
	hint    gateway.SpawnHint
	ready   func(gateway.VMRef, error)
	attempt int         // retries already spent
	host    *vmm.VMHost // server currently cloning for this request
	done    bool

	// parent is the caller's span at request time (the gateway's spawn
	// span); span is the current attempt's placement span. Nil when
	// tracing is off.
	parent *trace.Span
	span   *trace.Span
}

// RequestVM implements gateway.Backend: flash-clone (or full-boot) a VM
// for addr and hand the gateway a reference when it is runnable. A
// failed clone is retried on another healthy server with exponential
// backoff, up to Cfg.RetryBudget extra attempts; ready fires exactly
// once either way.
func (f *Farm) RequestVM(now sim.Time, addr netsim.Addr, hint gateway.SpawnHint, ready func(gateway.VMRef, error)) {
	req := &spawnReq{addr: addr, hint: hint, ready: ready}
	if f.tr != nil {
		req.parent = f.tr.Current(uint64(addr))
	}
	f.inflight = append(f.inflight, req)
	f.trySpawn(now, req, nil)
}

// trySpawn places req's clone on a server, avoiding the one that just
// failed it.
func (f *Farm) trySpawn(now sim.Time, req *spawnReq, avoid *vmm.VMHost) {
	if f.tr != nil {
		req.span = f.tr.StartChild(now, req.parent, "place",
			trace.Attr{K: "attempt", V: strconv.Itoa(req.attempt)})
	}
	ps := req.span
	h := f.pickHost(avoid)
	if h == nil {
		f.failOrRetry(now, req, nil, ErrFarmFull)
		return
	}
	ps.SetAttr("server", h.Cfg.Name)
	req.host = h
	onReady := func(vm *vmm.VM) {
		if req.done {
			// The request already concluded elsewhere (crash-triggered
			// retry); never resurrect a superseded clone.
			h.Destroy(vm.ID)
			return
		}
		ps.Finish(f.K.Now())
		f.finish(req)
		fv := f.attachGuest(h, vm, req.addr)
		f.stats.Spawns++
		f.met.spawns.Inc()
		f.met.liveVMs.Add(1)
		if live := f.LiveVMs(); live > f.stats.PeakLiveVMs {
			f.stats.PeakLiveVMs = live
		}
		req.ready(fv, nil)
	}
	// The VMM parents its clone span under this attempt's placement span.
	f.tr.Push(uint64(req.addr), ps)
	var err error
	if f.Cfg.FullBoot {
		_, err = h.FullBoot(f.Cfg.Image.Name, req.addr, onReady)
	} else {
		_, err = h.FlashClone(f.Cfg.Image.Name, req.addr, onReady)
	}
	f.tr.Pop(uint64(req.addr), ps)
	if err != nil {
		req.host = nil
		f.failOrRetry(now, req, h, err)
		return
	}
	// Count VMs still mid-clone toward the peak: they hold memory.
	if live := f.LiveVMs(); live > f.stats.PeakLiveVMs {
		f.stats.PeakLiveVMs = live
	}
}

// failOrRetry retries a failed spawn after backoff while budget
// remains, otherwise reports the failure — SpawnFailures counts it
// exactly once per request, however many attempts it took.
func (f *Farm) failOrRetry(now sim.Time, req *spawnReq, failed *vmm.VMHost, err error) {
	req.host = nil
	if req.span != nil && !req.span.Done() {
		req.span.Event(now, "place-fail", err.Error())
		req.span.Finish(now)
	}
	if req.attempt >= f.Cfg.RetryBudget {
		f.finish(req)
		f.stats.SpawnFailures++
		f.met.spawnFailures.Inc()
		f.K.After(0, func(sim.Time) { req.ready(nil, err) })
		return
	}
	req.attempt++
	f.stats.SpawnRetries++
	f.met.spawnRetries.Inc()
	if req.parent != nil {
		req.parent.Event(now, "clone-retry", err.Error())
	}
	backoff := f.Cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	f.K.After(backoff<<(req.attempt-1), func(then sim.Time) {
		if req.done {
			return
		}
		f.trySpawn(then, req, failed)
	})
}

// finish marks req concluded and drops it from the in-flight list.
func (f *Farm) finish(req *spawnReq) {
	req.done = true
	for i, r := range f.inflight {
		if r == req {
			f.inflight = append(f.inflight[:i], f.inflight[i+1:]...)
			return
		}
	}
}

// attachGuest builds the guest instance for a freshly-ready VM.
func (f *Farm) attachGuest(h *vmm.VMHost, vm *vmm.VM, addr netsim.Addr) *FarmVM {
	fv := &FarmVM{farm: f, VM: vm, Host: h}
	send := func(pkt *netsim.Packet) {
		if f.linkDown {
			f.stats.LinkDrops++
			f.met.linkDrops.Inc()
			return
		}
		f.K.After(f.Cfg.UplinkLatency, func(now sim.Time) {
			if f.gw != nil {
				f.gw.HandleOutbound(now, pkt)
			}
		})
	}
	hooks := guest.Hooks{
		OnInfected: func(in *guest.Instance) {
			f.stats.Infections++
			f.met.infections.Inc()
			if f.Cfg.OnInfected != nil {
				f.Cfg.OnInfected(f.K.Now(), in)
			}
		},
		Metrics: f.gi,
	}
	pick := f.Cfg.PickTarget
	if f.Cfg.PickTargetFor != nil {
		pick = f.Cfg.PickTargetFor(addr)
	}
	fv.Guest = guest.New(f.K, vm, f.profileFor(addr), send, pick, hooks)
	fv.Guest.Start()
	// A late clone for a recycled-and-rebound address must not displace
	// the current holder's registration; it will be destroyed right after
	// the gateway sees it.
	if _, taken := f.byAddr[addr]; !taken {
		f.byAddr[addr] = fv
	}
	return fv
}

// profileFor picks the guest personality for an address: the fixed
// Profile, or — for heterogeneous populations — a deterministic,
// address-keyed choice from Profiles (the same address always presents
// the same personality, as a real population would).
func (f *Farm) profileFor(addr netsim.Addr) *guest.Profile {
	if len(f.Cfg.Profiles) == 0 {
		return f.Cfg.Profile
	}
	h := uint64(addr) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return f.Cfg.Profiles[h%uint64(len(f.Cfg.Profiles))]
}

// FarmVM adapts a (VM, guest) pair to gateway.VMRef.
type FarmVM struct {
	VM    *vmm.VM
	Host  *vmm.VMHost
	Guest *guest.Instance

	farm *Farm
}

// Deliver implements gateway.VMRef: the packet crosses the intra-farm
// hop, then the guest handles it (if the VM is still running by then).
func (fv *FarmVM) Deliver(now sim.Time, pkt *netsim.Packet) {
	if fv.VM.State != vmm.StateRunning {
		return
	}
	if fv.farm.linkDown {
		fv.farm.stats.LinkDrops++
		fv.farm.met.linkDrops.Inc()
		return
	}
	fv.Host.ChargeCPU(now, fv.Host.Cfg.CPU.PerPacket)
	if d := fv.farm.Cfg.DownlinkLatency; d > 0 {
		if pkt.Ephemeral {
			pkt = pkt.Clone() // held by the timer past this dispatch
		}
		fv.farm.K.After(d, func(then sim.Time) {
			if fv.VM.State == vmm.StateRunning {
				fv.Guest.HandlePacket(then, pkt)
			}
		})
		return
	}
	fv.Guest.HandlePacket(now, pkt)
}

// Destroy implements gateway.VMRef: stop the guest and reclaim the VM.
func (fv *FarmVM) Destroy(_ sim.Time) {
	fv.Guest.Stop()
	fv.Host.Destroy(fv.VM.ID)
	// Another VM may already hold this address (a late clone destroyed
	// after its binding was recycled and re-bound); only unregister if
	// the entry is ours.
	if cur, ok := fv.farm.byAddr[fv.VM.IP]; ok && cur == fv {
		delete(fv.farm.byAddr, fv.VM.IP)
	}
	fv.farm.stats.Reclaims++
	fv.farm.met.reclaims.Inc()
	fv.farm.met.liveVMs.Add(-1)
}

// CheckInvariants verifies memory refcount consistency on every server.
func (f *Farm) CheckInvariants() error {
	for _, h := range f.hosts {
		if err := h.CheckMemoryInvariants(); err != nil {
			return fmt.Errorf("%s: %w", h.Cfg.Name, err)
		}
	}
	return nil
}

// ServersNeeded is the provisioning arithmetic the paper's scalability
// argument rests on: how many servers of memBytes cover peakVMs
// concurrent VMs at the measured per-VM footprint (private bytes +
// hypervisor overhead), with the reference image charged once per
// server.
func ServersNeeded(peakVMs int, perVMFootprint, imageBytes, memBytes uint64) int {
	if peakVMs <= 0 {
		return 0
	}
	usable := int64(memBytes) - int64(imageBytes)
	if usable <= 0 || perVMFootprint == 0 {
		return -1 // image alone does not fit, or degenerate input
	}
	perServer := usable / int64(perVMFootprint)
	if perServer <= 0 {
		return -1
	}
	n := (int64(peakVMs) + perServer - 1) / perServer
	return int(n)
}
