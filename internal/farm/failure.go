package farm

import (
	"sort"

	"potemkin/internal/gateway"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// Farm-level failure handling: server crashes kill resident VMs, strand
// their gateway bindings, and orphan clones in flight. CrashServer
// cleans all three up — bindings are reported back to the gateway for
// recycling, and in-flight clone requests are re-placed on surviving
// servers through the normal retry path.

// CrashServer crashes server i (0-based): every VM on it dies, its
// stranded bindings are recycled through the gateway, and clones in
// flight on it are retried on healthy servers. Placement skips the
// server until RecoverServer. Returns the number of VMs killed;
// crashing an already-down server is a no-op.
func (f *Farm) CrashServer(now sim.Time, i int) int {
	h := f.hosts[i]
	if h.Down() {
		return 0
	}
	// Collect the addresses resident on the dying server before its VM
	// table is wiped, sorted so the gateway sees a deterministic
	// recycle order (map iteration is randomized).
	var addrs []netsim.Addr
	for a, fv := range f.byAddr {
		if fv.Host == h {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(x, y int) bool { return addrs[x] < addrs[y] })
	killed := h.Crash()

	// Report stranded bindings so the gateway frees the addresses; the
	// recycle path runs FarmVM.Destroy, which cleans byAddr. Without a
	// Recycler frontend (or for a binding the gateway no longer holds),
	// clean up farm-side directly.
	rec, _ := f.gw.(gateway.Recycler)
	for _, a := range addrs {
		fv := f.byAddr[a]
		if fv == nil {
			continue
		}
		if rec != nil && rec.RecycleBinding(now, a, "server crash: "+h.Cfg.Name) {
			f.stats.CrashRecycles++
			f.met.crashRecycles.Inc()
			continue
		}
		fv.Destroy(now)
	}

	// Clones in flight on the dead server will never call ready; retry
	// them on the survivors. Iterate over a copy: failOrRetry may
	// splice the in-flight list.
	reqs := make([]*spawnReq, len(f.inflight))
	copy(reqs, f.inflight)
	for _, req := range reqs {
		if req.host == h && !req.done {
			f.failOrRetry(now, req, h, vmm.ErrHostDown)
		}
	}
	return killed
}

// RecoverServer returns a crashed server to service, empty. Placement
// sees it again immediately.
func (f *Farm) RecoverServer(i int) { f.hosts[i].Recover() }

// UpServers counts servers currently in service.
func (f *Farm) UpServers() int {
	n := 0
	for _, h := range f.hosts {
		if !h.Down() {
			n++
		}
	}
	return n
}

// SetLinkDown cuts (true) or restores (false) the farm<->gateway data
// link. While cut, guest-originated packets and gateway-to-VM
// deliveries are dropped and counted as LinkDrops. The control channel
// — clone requests and completions — stays up, so the gateway.Backend
// contract (ready fires exactly once) holds through an outage.
func (f *Farm) SetLinkDown(down bool) { f.linkDown = down }

// LinkDown reports whether the farm<->gateway data link is cut.
func (f *Farm) LinkDown() bool { return f.linkDown }
