package farm

import (
	"testing"
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// testRig builds a small farm + gateway pair.
type testRig struct {
	k *sim.Kernel
	f *Farm
	g *gateway.Gateway
}

func newRig(t *testing.T, mutateFarm func(*Config), mutateGW func(*gateway.Config)) *testRig {
	t.Helper()
	k := sim.NewKernel(21)
	fc := DefaultConfig()
	fc.Servers = 2
	fc.HostConfig.MemoryBytes = 2 << 30
	fc.Image = ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 512, Seed: 42}
	if mutateFarm != nil {
		mutateFarm(&fc)
	}
	f, err := New(k, fc)
	if err != nil {
		t.Fatal(err)
	}
	gc := gateway.DefaultConfig()
	gc.IdleTimeout = 0
	if mutateGW != nil {
		mutateGW(&gc)
	}
	g := gateway.New(k, gc, f)
	f.SetGateway(g)
	return &testRig{k: k, f: f, g: g}
}

func probe(src, dst netsim.Addr) *netsim.Packet {
	return netsim.TCPSyn(src, dst, 40000, 445, 1)
}

var (
	scanner = netsim.MustParseAddr("200.7.7.7")
	victim  = netsim.MustParseAddr("10.5.1.2")
)

func TestProbeSpawnsVMAndGetsReply(t *testing.T) {
	var replies []*netsim.Packet
	r := newRig(t, nil, func(c *gateway.Config) {
		c.Policy = gateway.PolicyReflectSource
		c.ExternalOut = func(_ sim.Time, p *netsim.Packet) { replies = append(replies, p) }
	})
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)

	if r.f.LiveVMs() != 1 {
		t.Fatalf("live VMs = %d", r.f.LiveVMs())
	}
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want SYN-ACK back to scanner", len(replies))
	}
	got := replies[0]
	if got.Src != victim || got.Dst != scanner {
		t.Errorf("reply %s", got)
	}
	if got.Flags != netsim.FlagSYN|netsim.FlagACK {
		t.Errorf("flags = %s", netsim.FlagString(got.Flags))
	}
}

func TestReplyLatencyIncludesCloneTime(t *testing.T) {
	var replyAt sim.Time
	r := newRig(t, nil, func(c *gateway.Config) {
		c.Policy = gateway.PolicyReflectSource
		c.ExternalOut = func(now sim.Time, _ *netsim.Packet) { replyAt = now }
	})
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	// Flash clone budget ~0.5 s: the scanner sees a delayed SYN-ACK,
	// not silence.
	if replyAt < sim.Start.Add(300*time.Millisecond) || replyAt > sim.Start.Add(time.Second) {
		t.Errorf("reply at %v, want ~0.5s", replyAt)
	}
}

func TestSecondProbeFastPath(t *testing.T) {
	var replyTimes []sim.Time
	r := newRig(t, nil, func(c *gateway.Config) {
		c.Policy = gateway.PolicyReflectSource
		c.ExternalOut = func(now sim.Time, _ *netsim.Packet) { replyTimes = append(replyTimes, now) }
	})
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	t1 := r.k.Now()
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	if len(replyTimes) != 2 {
		t.Fatalf("replies = %d", len(replyTimes))
	}
	// Second reply only pays the uplink latency, not a clone.
	if d := replyTimes[1].Sub(t1); d > 10*time.Millisecond {
		t.Errorf("second reply took %v", d)
	}
}

func TestVMsShareMemoryAcrossFarm(t *testing.T) {
	r := newRig(t, nil, nil)
	for i := 0; i < 40; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner+netsim.Addr(i), victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 40 {
		t.Fatalf("live = %d", r.f.LiveVMs())
	}
	// Memory: 2 servers × image (2048 pages ≈ 8 MiB) + per-VM overhead
	// + small private footprints. Full copies would need 40 × 8 MiB.
	perVM := uint64(0)
	for _, h := range r.f.Hosts() {
		perVM += h.MemoryInUse()
	}
	fullCopy := uint64(40) * 2048 * 4096
	if perVM >= fullCopy {
		t.Errorf("farm memory %d not below full-copy %d", perVM, fullCopy)
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Placement = PlaceLeastLoaded }, nil)
	for i := 0; i < 20; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	a, b := r.f.Hosts()[0].NumVMs(), r.f.Hosts()[1].NumVMs()
	if a == 0 || b == 0 {
		t.Errorf("least-loaded placement left a server empty: %d/%d", a, b)
	}
	if diff := a - b; diff < -2 || diff > 2 {
		t.Errorf("imbalance: %d vs %d", a, b)
	}
}

func TestFirstFitFillsInOrder(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Placement = PlaceFirstFit }, nil)
	for i := 0; i < 10; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	if r.f.Hosts()[0].NumVMs() != 10 || r.f.Hosts()[1].NumVMs() != 0 {
		t.Errorf("first-fit spread: %d/%d", r.f.Hosts()[0].NumVMs(), r.f.Hosts()[1].NumVMs())
	}
}

func TestFarmFullFailsSpawn(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Servers = 1
		c.HostConfig.MemoryBytes = 16 << 20 // tiny: image 8 MiB + ~8 VMs
		c.HostConfig.PerVMOverheadBytes = 1 << 20
	}, nil)
	for i := 0; i < 50; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	if r.f.Stats().SpawnFailures == 0 {
		t.Error("no spawn failures on a full farm")
	}
	if r.g.Stats().SpawnFailures == 0 {
		t.Error("gateway did not observe failures")
	}
	if r.f.LiveVMs() >= 50 {
		t.Errorf("live = %d, expected capacity limit", r.f.LiveVMs())
	}
}

func TestRecycleFreesCapacity(t *testing.T) {
	r := newRig(t, nil, nil)
	for i := 0; i < 10; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 10 {
		t.Fatalf("live = %d", r.f.LiveVMs())
	}
	r.g.RecycleAll(r.k.Now())
	if r.f.LiveVMs() != 0 {
		t.Errorf("live after recycle = %d", r.f.LiveVMs())
	}
	if r.f.Stats().Reclaims != 10 {
		t.Errorf("reclaims = %d", r.f.Stats().Reclaims)
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Capacity is reusable.
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 1 {
		t.Errorf("respawn failed: live = %d", r.f.LiveVMs())
	}
}

func TestEndToEndInfectionDetection(t *testing.T) {
	var infectedAt sim.Time
	var detectedAddr netsim.Addr
	r := newRig(t, func(c *Config) {
		c.OnInfected = func(now sim.Time, in *guest.Instance) { infectedAt = now }
	}, func(c *gateway.Config) {
		c.Policy = gateway.PolicyDropAll
		c.DetectThreshold = 5
		c.OnDetected = func(_ sim.Time, a netsim.Addr, _ int) { detectedAddr = a }
	})
	// Deliver the exploit.
	exploit := probe(scanner, victim)
	exploit.Payload = guest.WindowsXP().ExploitPayload(0)
	r.g.HandleInbound(r.k.Now(), exploit)
	r.k.RunFor(5 * time.Second)

	if infectedAt == 0 {
		t.Fatal("guest never infected")
	}
	if r.f.InfectedVMs() != 1 {
		t.Errorf("infected VMs = %d", r.f.InfectedVMs())
	}
	// The infected guest scans; the gateway's detector flags it.
	if detectedAddr != victim {
		t.Errorf("detected = %s, want %s", detectedAddr, victim)
	}
	// Containment: nothing escaped (drop-all, no ExternalOut set).
	if r.g.Stats().OutDropped == 0 {
		t.Error("no outbound drops recorded while worm scanned")
	}
}

func TestInternalReflectionSpreadsInsideFarm(t *testing.T) {
	r := newRig(t, nil, func(c *gateway.Config) {
		c.Policy = gateway.PolicyInternalReflect
		c.DetectThreshold = 0
		c.ReflectionLimit = 48 // bound the contained epidemic's size
	})
	exploit := probe(scanner, victim)
	exploit.Payload = guest.WindowsXP().ExploitPayload(0)
	r.g.HandleInbound(r.k.Now(), exploit)
	r.k.RunFor(12 * time.Second)

	// The worm's scans were reflected to new honeyfarm VMs, some of
	// which got infected in turn: a contained epidemic.
	if r.f.InfectedVMs() < 2 {
		t.Errorf("infected VMs = %d, want chain", r.f.InfectedVMs())
	}
	if r.g.Stats().OutReflected == 0 {
		t.Error("no reflections")
	}
	// Chain depth: someone is at generation >= 2.
	maxGen := 0
	r.f.EachInstance(func(in *guest.Instance) {
		if in.Generation > maxGen {
			maxGen = in.Generation
		}
	})
	if maxGen < 2 {
		t.Errorf("max generation = %d, want >= 2", maxGen)
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFullBootBaselineSlow(t *testing.T) {
	var replyAt sim.Time
	r := newRig(t, func(c *Config) { c.FullBoot = true }, func(c *gateway.Config) {
		c.Policy = gateway.PolicyReflectSource
		c.ExternalOut = func(now sim.Time, _ *netsim.Packet) { replyAt = now }
	})
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(60 * time.Second)
	if replyAt < sim.Start.Add(10*time.Second) {
		t.Errorf("full-boot reply at %v, want tens of seconds", replyAt)
	}
}

func TestServersNeeded(t *testing.T) {
	const MiB = 1 << 20
	cases := []struct {
		peak  int
		perVM uint64
		image uint64
		mem   uint64
		want  int
	}{
		{0, 2 * MiB, 32 * MiB, 16384 * MiB, 0},
		{100, 2 * MiB, 32 * MiB, 16384 * MiB, 1},
		{65536, 2 * MiB, 32 * MiB, 16384 * MiB, 9},
		{10, 2 * MiB, 32 * MiB, 16 * MiB, -1}, // image does not fit
	}
	for _, c := range cases {
		if got := ServersNeeded(c.peak, c.perVM, c.image, c.mem); got != c.want {
			t.Errorf("ServersNeeded(%d,%d,%d,%d) = %d, want %d",
				c.peak, c.perVM, c.image, c.mem, got, c.want)
		}
	}
}

func TestInstanceLookup(t *testing.T) {
	r := newRig(t, nil, nil)
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	if in := r.f.Instance(victim); in == nil || in.IP != victim {
		t.Error("Instance lookup failed")
	}
	if in := r.f.Instance(victim + 1); in != nil {
		t.Error("phantom instance")
	}
	n := 0
	r.f.EachInstance(func(*guest.Instance) { n++ })
	if n != 1 {
		t.Errorf("EachInstance visited %d", n)
	}
}

func TestGuestWorkloadRunsOnFarmVMs(t *testing.T) {
	r := newRig(t, nil, nil)
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(30 * time.Second)
	fv := r.f.byAddr[victim]
	if fv == nil {
		t.Fatal("no VM")
	}
	if fv.VM.PrivateBytes() == 0 {
		t.Error("guest workload dirtied no memory")
	}
	if fv.VM.PrivateBytes() > 8<<20 {
		t.Errorf("private footprint %d suspiciously large", fv.VM.PrivateBytes())
	}
}

func TestDefaultHostOverheadCounted(t *testing.T) {
	r := newRig(t, nil, nil)
	base := r.f.MemoryInUse()
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	grew := r.f.MemoryInUse() - base
	if grew < r.f.Cfg.HostConfig.PerVMOverheadBytes {
		t.Errorf("memory grew %d, less than per-VM overhead", grew)
	}
}

func TestFarmBehindShardedGateway(t *testing.T) {
	k := sim.NewKernel(21)
	fc := DefaultConfig()
	fc.Servers = 2
	fc.HostConfig.MemoryBytes = 2 << 30
	fc.Image = ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 512, Seed: 42}
	f := MustNew(k, fc)
	gc := gateway.DefaultConfig()
	gc.IdleTimeout = 0
	gc.Policy = gateway.PolicyInternalReflect
	gc.DetectThreshold = 0
	gc.ReflectionLimit = 16
	s, err := gateway.NewSharded(k, gc, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.SetGateway(s)

	exploit := probe(scanner, victim)
	exploit.Payload = guest.WindowsXP().ExploitPayload(0)
	s.HandleInbound(k.Now(), exploit)
	k.RunFor(8 * time.Second)

	if f.InfectedVMs() < 2 {
		t.Errorf("infected = %d, want contained chain across shards", f.InfectedVMs())
	}
	if err := s.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.NumBindings() != f.LiveVMs() {
		t.Errorf("bindings %d != live VMs %d", s.NumBindings(), f.LiveVMs())
	}
	s.Close()
}

func TestPrepareSnapshotImages(t *testing.T) {
	r := newRig(t, nil, nil)
	if err := r.f.PrepareSnapshotImages("winxp-settled", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Reference VMs are gone; the farm now clones from the snapshot.
	if r.f.LiveVMs() != 0 {
		t.Fatalf("reference VMs leaked: %d", r.f.LiveVMs())
	}
	if r.f.Cfg.Image.Name != "winxp-settled" {
		t.Errorf("image name = %q", r.f.Cfg.Image.Name)
	}
	start := r.k.Now()
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 1 {
		t.Fatalf("clone from snapshot failed: live = %d", r.f.LiveVMs())
	}
	// It was a flash clone (sub-second), not a boot.
	fv := r.f.byAddr[victim]
	if lat := fv.VM.ReadyAt.Sub(start); lat > time.Second {
		t.Errorf("clone from snapshot took %v", lat)
	}
	// The snapshot contains the warmed-up guest's dirtied pages (the
	// settled working set), visible as image content beyond what the
	// synthetic image had: cloning it costs no private pages.
	if fv.VM.Mem.PrivateBytes() > 1<<20 {
		t.Errorf("snapshot clone started with %d private bytes", fv.VM.Mem.PrivateBytes())
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Preparing twice after traffic is rejected.
	if err := r.f.PrepareSnapshotImages("again", time.Second); err == nil {
		t.Error("re-prepare after traffic accepted")
	}
}

func TestHeterogeneousPopulation(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Profile = nil
		c.Profiles = []*guest.Profile{guest.WindowsXP(), guest.LinuxServer(), guest.SQLServer()}
	}, nil)
	// Probe many addresses; the population should include more than one
	// personality, and the same address must always present the same one.
	for i := 0; i < 60; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	seen := map[string]bool{}
	r.f.EachInstance(func(in *guest.Instance) { seen[in.Profile.Name] = true })
	if len(seen) < 2 {
		t.Errorf("population not heterogeneous: %v", seen)
	}
	// Stability: recycle and re-probe one address; same personality.
	name := r.f.Instance(victim).Profile.Name
	r.g.RecycleAll(r.k.Now())
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	if got := r.f.Instance(victim).Profile.Name; got != name {
		t.Errorf("personality changed across recycle: %q -> %q", name, got)
	}
}

func TestFarmConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.Profile = nil },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if f, err := New(k, cfg); err == nil || f != nil {
			t.Errorf("bad config accepted: farm=%v err=%v", f, err)
		}
	}
	// MustNew panics on the same bad configs.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew did not panic on bad config")
			}
		}()
		cfg := DefaultConfig()
		cfg.Servers = 0
		MustNew(k, cfg)
	}()
	_ = vmm.DefaultHostConfig // keep import
}
