package farm

import (
	"testing"
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

func TestCrashServerRecyclesBindings(t *testing.T) {
	r := newRig(t, nil, nil)
	for i := 0; i < 10; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 10 {
		t.Fatalf("live = %d", r.f.LiveVMs())
	}
	onCrashed := r.f.Hosts()[0].NumVMs()
	if onCrashed == 0 {
		t.Fatal("server 0 empty; test needs VMs to strand")
	}

	killed := r.f.CrashServer(r.k.Now(), 0)
	if killed != onCrashed {
		t.Errorf("killed = %d, want %d", killed, onCrashed)
	}
	if r.f.UpServers() != 1 {
		t.Errorf("UpServers = %d", r.f.UpServers())
	}
	// Every stranded binding went back through the gateway for recycling
	// — none leaked, none survived pointing at a dead VM.
	gs := r.g.Stats()
	if gs.BackendLost != uint64(killed) {
		t.Errorf("BackendLost = %d, want %d", gs.BackendLost, killed)
	}
	if r.f.Stats().CrashRecycles != uint64(killed) {
		t.Errorf("CrashRecycles = %d, want %d", r.f.Stats().CrashRecycles, killed)
	}
	if gs.BindingsCreated != uint64(r.g.NumBindings())+gs.BindingsRecycled {
		t.Error("binding ledger unbalanced after crash")
	}
	if r.f.LiveVMs() != 10-killed {
		t.Errorf("live = %d, want %d survivors", r.f.LiveVMs(), 10-killed)
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// New traffic places on the survivor, including re-probes of the
	// crashed addresses.
	for i := 0; i < 10; i++ {
		r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(i)))
	}
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 10 {
		t.Errorf("live after re-probe = %d, want 10", r.f.LiveVMs())
	}
	if got := r.f.Hosts()[0].NumVMs(); got != 0 {
		t.Errorf("down server hosts %d VMs", got)
	}

	// Recovery restores placement.
	r.f.RecoverServer(0)
	if r.f.UpServers() != 2 {
		t.Errorf("UpServers after recovery = %d", r.f.UpServers())
	}
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim+netsim.Addr(50)))
	r.k.RunFor(2 * time.Second)
	if r.f.Hosts()[0].NumVMs()+r.f.Hosts()[1].NumVMs() != 11 {
		t.Error("spawn after recovery failed")
	}
}

func TestCrashWhileClonePendingRetriesOnSurvivor(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Placement = PlaceFirstFit }, nil)
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	// First-fit sends the clone to server 0; crash it mid-flight.
	r.k.RunFor(50 * time.Millisecond)
	if r.f.Hosts()[0].NumVMs() == 0 {
		t.Fatal("no clone in flight on server 0")
	}
	r.f.CrashServer(r.k.Now(), 0)
	r.k.RunFor(5 * time.Second)

	// The in-flight request was re-placed on the survivor; the late
	// ready from the dead host resurrected nothing.
	if got := r.f.Hosts()[0].NumVMs(); got != 0 {
		t.Errorf("dead server hosts %d VMs", got)
	}
	if got := r.f.Hosts()[1].NumVMs(); got != 1 {
		t.Errorf("survivor hosts %d VMs, want the re-placed clone", got)
	}
	if r.f.Stats().SpawnRetries == 0 {
		t.Error("no farm-level retry recorded")
	}
	if r.f.Stats().SpawnFailures != 0 {
		t.Errorf("SpawnFailures = %d; retry should have saved the request", r.f.Stats().SpawnFailures)
	}
	if b := r.g.Binding(victim); b == nil || b.State != gateway.BindingActive {
		t.Error("binding never became active after re-placement")
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCrashWithNoSurvivorFailsOnce(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Servers = 1
		c.Placement = PlaceFirstFit
		c.RetryBudget = 3
	}, nil)
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(50 * time.Millisecond)
	r.f.CrashServer(r.k.Now(), 0)
	r.k.RunFor(10 * time.Second)

	// No host to retry on: the request fails exactly once, the binding
	// is cleaned up, and no VM exists anywhere.
	if r.f.Stats().SpawnFailures != 1 {
		t.Errorf("SpawnFailures = %d, want 1", r.f.Stats().SpawnFailures)
	}
	if r.f.LiveVMs() != 0 {
		t.Errorf("live = %d on a dead farm", r.f.LiveVMs())
	}
	if r.g.NumBindings() != 0 {
		t.Error("binding survived total farm loss")
	}
	gs := r.g.Stats()
	if gs.BindingsCreated != gs.BindingsRecycled {
		t.Error("binding ledger unbalanced after total loss")
	}
}

func TestCloneFaultRetriesTransparently(t *testing.T) {
	r := newRig(t, nil, nil)
	// Both servers fail their first clone attempt, then heal.
	faults := 2
	for _, h := range r.f.Hosts() {
		h.SetCloneFault(func() error {
			if faults > 0 {
				faults--
				return vmm.ErrCloneFault
			}
			return nil
		})
	}
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(5 * time.Second)
	if r.f.Stats().SpawnRetries == 0 {
		t.Error("no retries recorded")
	}
	if r.f.Stats().SpawnFailures != 0 {
		t.Errorf("SpawnFailures = %d; budget should have absorbed the faults", r.f.Stats().SpawnFailures)
	}
	if r.f.LiveVMs() != 1 {
		t.Errorf("live = %d, want the retried VM", r.f.LiveVMs())
	}
}

func TestLinkDownDropsDataNotControl(t *testing.T) {
	var replies int
	r := newRig(t, nil, func(c *gateway.Config) {
		c.Policy = gateway.PolicyReflectSource
		c.ExternalOut = func(sim.Time, *netsim.Packet) { replies++ }
	})
	r.f.SetLinkDown(true)
	// Clones still complete while the data link is down (control plane is
	// separate), but no honeypot reply crosses the link.
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(2 * time.Second)
	if r.f.LiveVMs() != 1 {
		t.Fatalf("live = %d; clone must survive a data-link outage", r.f.LiveVMs())
	}
	if replies != 0 {
		t.Errorf("%d replies crossed a down link", replies)
	}
	if r.f.Stats().LinkDrops == 0 {
		t.Error("no link drops counted")
	}
	// Restore and re-probe: traffic flows again.
	r.f.SetLinkDown(false)
	r.g.HandleInbound(r.k.Now(), probe(scanner, victim))
	r.k.RunFor(time.Second)
	if replies == 0 {
		t.Error("no reply after link restore")
	}
}
