package farm

import (
	"testing"
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// TestRandomTrafficInvariants storms the full gateway+farm stack with
// random traffic (probes, exploits, garbage, recycling races) and
// checks the global invariants afterward: frame refcounts consistent,
// binding count bounded, no VM leaks, byte accounting sane.
func TestRandomTrafficInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		k := sim.NewKernel(seed)
		fc := DefaultConfig()
		fc.Servers = 2
		fc.HostConfig.MemoryBytes = 512 << 20 // small enough to hit capacity
		fc.Image = ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 512, Seed: 42}
		f := MustNew(k, fc)
		gc := gateway.DefaultConfig()
		gc.Policy = gateway.PolicyInternalReflect
		gc.IdleTimeout = 3 * time.Second
		// Infected VMs scan forever and so never go idle; the lifetime
		// cap is what actually drains them.
		gc.MaxLifetime = 20 * time.Second
		gc.ReflectionLimit = 32
		gc.ScanFilter = 20
		g := gateway.New(k, gc, f)
		f.SetGateway(g)

		r := sim.NewRNG(seed * 77)
		exploit := fc.Profile.ExploitPayload(0)
		for i := 0; i < 3000; i++ {
			dst := gc.Space.Nth(r.Uint64n(gc.Space.Size()) % 512) // concentrate on 512 addrs
			src := netsim.Addr(r.Uint64n(1<<32) | 1)
			var pkt *netsim.Packet
			switch r.Intn(5) {
			case 0: // plain SYN
				pkt = netsim.TCPSyn(src, dst, uint16(1024+r.Intn(60000)), 445, uint32(i))
			case 1: // exploit
				pkt = netsim.TCPSyn(src, dst, uint16(1024+r.Intn(60000)), 445, uint32(i))
				pkt.Flags |= netsim.FlagPSH
				pkt.Payload = exploit
			case 2: // UDP
				pkt = netsim.UDPDatagram(src, dst, 1434, 1434, []byte{4, 1})
			case 3: // ICMP
				pkt = netsim.ICMPEcho(src, dst, true)
			default: // stray ACK
				pkt = netsim.TCPSyn(src, dst, 1000, 80, 5)
				pkt.Flags = netsim.FlagACK
			}
			g.HandleInbound(k.Now(), pkt)
			k.RunFor(time.Duration(r.Intn(40)) * time.Millisecond)
		}
		k.RunFor(time.Second)

		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every live VM is reachable through a binding: a VM without a
		// binding would never be recycled (a leak).
		if f.LiveVMs() > g.NumBindings() {
			t.Errorf("seed %d: %d VMs but only %d bindings", seed, f.LiveVMs(), g.NumBindings())
		}
		// Drain. Under internal reflection a contained epidemic is
		// self-sustaining (infected VMs keep reinfecting reflected
		// VMs), so model the operator response: flip to drop-all, then
		// let the lifetime cap age everything out.
		g.Cfg.Policy = gateway.PolicyDropAll
		k.RunFor(2 * time.Minute)
		g.Close()
		if pinned := g.NumBindings(); pinned != 0 {
			t.Errorf("seed %d: %d bindings survived idle-out", seed, pinned)
		}
		if f.LiveVMs() != 0 {
			t.Errorf("seed %d: %d VMs leaked", seed, f.LiveVMs())
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("seed %d after drain: %v", seed, err)
		}
		// All memory except images + zero frames reclaimed.
		for _, h := range f.Hosts() {
			if got := h.Store().FrameCount(); got > 2048+1+64 {
				t.Errorf("seed %d: %s holds %d frames after drain", seed, h.Cfg.Name, got)
			}
		}
	}
}
