package guest

import "potemkin/internal/netsim"

// Stock profiles approximating the guest populations the paper's
// honeyfarm hosted. Page counts assume the 4 KiB pages of internal/mem;
// rates are calibrated so a freshly-cloned idle guest stays within a few
// MiB of private memory — the premise of delta virtualization.

// WindowsXP returns a Windows-XP-like personality: common SMB/NetBIOS
// ports open, vulnerable on 445/tcp (Blaster/Sasser-era), moderate
// memory churn.
func WindowsXP() *Profile {
	return &Profile{
		Name:      "winxp",
		TTL:       128,   // Windows stack fingerprint
		TCPWindow: 64240, // XP's default window
		Services: []ServiceSpec{
			{Port: 135, Proto: netsim.ProtoTCP},
			{Port: 139, Proto: netsim.ProtoTCP, App: AppSMB},
			{Port: 445, Proto: netsim.ProtoTCP, Vulnerable: true, ExploitSig: []byte("\x90\x90MS04-011"), App: AppSMB},
			{Port: 80, Proto: netsim.ProtoTCP, App: AppHTTP},
		},
		InitialBurstPages:   48,
		TouchRatePerSec:     4,
		WorkingSetPages:     96,
		WidePageProb:        0.05,
		InfectionBurstPages: 220,
		ScanRatePerSec:      20,
		ScanDstPort:         445,
		ScanProto:           netsim.ProtoTCP,
	}
}

// SQLServer returns a Slammer-style personality: UDP 1434 vulnerable,
// very high scan rate after infection (Slammer was bandwidth-limited).
func SQLServer() *Profile {
	return &Profile{
		Name:      "sqlserver",
		TTL:       128, // Windows Server 2000 stack
		TCPWindow: 17520,
		Services: []ServiceSpec{
			{Port: 1433, Proto: netsim.ProtoTCP},
			{Port: 1434, Proto: netsim.ProtoUDP, Vulnerable: true, ExploitSig: []byte{0x04, 0x01, 0x01, 0x01}},
		},
		InitialBurstPages:   64,
		TouchRatePerSec:     8,
		WorkingSetPages:     128,
		WidePageProb:        0.04,
		InfectionBurstPages: 40,
		ScanRatePerSec:      400,
		ScanDstPort:         1434,
		ScanProto:           netsim.ProtoUDP,
	}
}

// LinuxServer returns a hardened personality with no vulnerability —
// useful as a control population and for fidelity tests (correct RST /
// port-unreachable behaviour).
func LinuxServer() *Profile {
	return &Profile{
		Name:      "linux",
		TTL:       64,   // Linux stack fingerprint
		TCPWindow: 5840, // 2.4/2.6-era default window
		Services: []ServiceSpec{
			{Port: 22, Proto: netsim.ProtoTCP, App: AppSSH},
			{Port: 25, Proto: netsim.ProtoTCP, App: AppSMTP},
			{Port: 80, Proto: netsim.ProtoTCP, App: AppHTTP},
			{Port: 53, Proto: netsim.ProtoUDP},
		},
		InitialBurstPages: 24,
		TouchRatePerSec:   2,
		WorkingSetPages:   64,
		WidePageProb:      0.03,
	}
}

// MultiStage returns a personality whose malware fetches a second stage
// from payloadServer after compromise — the workload for the
// internal-reflection experiment (E8).
func MultiStage(payloadServer netsim.Addr) *Profile {
	p := WindowsXP()
	p.Name = "winxp-multistage"
	p.PayloadServer = payloadServer
	p.PayloadPort = 8080
	// Reflected VMs impersonating the payload server answer the fetch
	// with a plausible HTTP response — deeper fidelity for the chain.
	p.Services = append(p.Services, ServiceSpec{Port: 8080, Proto: netsim.ProtoTCP, App: AppHTTP})
	return p
}

// MultiStageDNS returns a personality whose malware resolves host via
// DNS before its second-stage fetch — exercising the gateway's safe
// resolver end to end.
func MultiStageDNS(host string) *Profile {
	p := WindowsXP()
	p.Name = "winxp-multistage-dns"
	p.PayloadHost = host
	p.PayloadPort = 8080
	p.Services = append(p.Services, ServiceSpec{Port: 8080, Proto: netsim.ProtoTCP, App: AppHTTP})
	return p
}
