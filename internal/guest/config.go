package guest

import (
	"encoding/json"
	"fmt"
	"io"

	"potemkin/internal/netsim"
)

// Profile serialization: operators describe custom guest personalities
// as JSON and load them into potemkind, rather than recompiling. The
// wire format is the Profile struct itself; Validate gates what a
// loaded profile may claim.

// SaveProfile writes p as indented JSON.
func SaveProfile(w io.Writer, p *Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadProfile reads and validates a JSON profile.
func LoadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("guest: parsing profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks a profile for internal consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("guest: profile has no name")
	}
	seen := map[[2]uint16]bool{}
	vulns := 0
	for i, s := range p.Services {
		if s.Port == 0 {
			return fmt.Errorf("guest: profile %q service %d has port 0", p.Name, i)
		}
		if s.Proto != netsim.ProtoTCP && s.Proto != netsim.ProtoUDP {
			return fmt.Errorf("guest: profile %q service %d has protocol %v", p.Name, i, s.Proto)
		}
		key := [2]uint16{uint16(s.Proto), s.Port}
		if seen[key] {
			return fmt.Errorf("guest: profile %q duplicates %v/%d", p.Name, s.Proto, s.Port)
		}
		seen[key] = true
		if s.Vulnerable {
			vulns++
			if len(s.ExploitSig) == 0 {
				return fmt.Errorf("guest: profile %q vulnerable service %v/%d has no exploit signature",
					p.Name, s.Proto, s.Port)
			}
		}
	}
	if vulns > 1 {
		return fmt.Errorf("guest: profile %q has %d vulnerable services; at most one is supported", p.Name, vulns)
	}
	if p.TouchRatePerSec < 0 || p.ScanRatePerSec < 0 || p.WidePageProb < 0 || p.WidePageProb > 1 {
		return fmt.Errorf("guest: profile %q has out-of-range rates", p.Name)
	}
	if p.ScanRatePerSec > 0 {
		if p.ScanDstPort == 0 {
			return fmt.Errorf("guest: profile %q scans but has no scan port", p.Name)
		}
		if p.ExploitPayload(0) == nil {
			return fmt.Errorf("guest: profile %q scans but has no vulnerability to propagate", p.Name)
		}
	}
	if p.PayloadHost != "" && p.PayloadServer != 0 {
		return fmt.Errorf("guest: profile %q sets both PayloadHost and PayloadServer", p.Name)
	}
	if p.CanaryRatePerSec < 0 || p.CanaryTimeoutMS < 0 || p.FingerprintThreshold < 0 {
		return fmt.Errorf("guest: profile %q has negative fingerprinting parameters", p.Name)
	}
	if p.BeaconPeriodMS < 0 {
		return fmt.Errorf("guest: profile %q has negative beacon period", p.Name)
	}
	if p.C2Server == 0 && (p.C2Port != 0 || p.BeaconPeriodMS != 0) {
		return fmt.Errorf("guest: profile %q configures C2 beaconing without a C2Server", p.Name)
	}
	return nil
}
