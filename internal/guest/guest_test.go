package guest

import (
	"bytes"
	"testing"
	"time"

	"potemkin/internal/dns"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// rig bundles a kernel, host, VM, and guest instance with a captured
// outbound packet list.
type rig struct {
	k   *sim.Kernel
	h   *vmm.VMHost
	vm  *vmm.VM
	in  *Instance
	out []*netsim.Packet
}

func newRig(t *testing.T, profile *Profile, hooks Hooks) *rig {
	t.Helper()
	k := sim.NewKernel(7)
	h := vmm.NewHost(k, vmm.DefaultHostConfig("guest-test"))
	h.RegisterImage(profile.Name, 8192, 1024, 128, 11)
	r := &rig{k: k, h: h}
	vm, err := h.FlashClone(profile.Name, netsim.MustParseAddr("10.1.2.3"), nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run() // finish clone
	r.vm = vm
	pick := func(rng *sim.RNG) netsim.Addr { return netsim.Addr(rng.Uint64n(1 << 32)) }
	r.in = New(k, vm, profile, func(p *netsim.Packet) { r.out = append(r.out, p) }, pick, hooks)
	return r
}

func (r *rig) deliver(pkt *netsim.Packet) { r.in.HandlePacket(r.k.Now(), pkt) }

func TestSynToOpenPortGetsSynAck(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.deliver(netsim.TCPSyn(netsim.MustParseAddr("6.6.6.6"), r.in.IP, 1234, 445, 100))
	if len(r.out) != 1 {
		t.Fatalf("replies = %d", len(r.out))
	}
	resp := r.out[0]
	if resp.Flags != netsim.FlagSYN|netsim.FlagACK {
		t.Errorf("flags = %s", netsim.FlagString(resp.Flags))
	}
	if resp.Ack != 101 {
		t.Errorf("ack = %d, want 101", resp.Ack)
	}
	if resp.Src != r.in.IP || resp.Dst != netsim.MustParseAddr("6.6.6.6") {
		t.Errorf("addresses wrong: %s", resp)
	}
	if resp.SrcPort != 445 || resp.DstPort != 1234 {
		t.Errorf("ports wrong: %s", resp)
	}
}

func TestSynToClosedPortGetsRst(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.deliver(netsim.TCPSyn(1, r.in.IP, 1234, 9999, 5))
	if len(r.out) != 1 || r.out[0].Flags&netsim.FlagRST == 0 {
		t.Fatalf("expected RST, got %v", r.out)
	}
}

func TestICMPEchoReply(t *testing.T) {
	r := newRig(t, LinuxServer(), Hooks{})
	r.deliver(netsim.ICMPEcho(1, r.in.IP, true))
	if len(r.out) != 1 || r.out[0].Proto != netsim.ProtoICMP || r.out[0].ICMPType != 0 {
		t.Fatalf("expected echo reply, got %v", r.out)
	}
}

func TestUDPClosedPortUnreachable(t *testing.T) {
	r := newRig(t, LinuxServer(), Hooks{})
	r.deliver(netsim.UDPDatagram(1, r.in.IP, 1000, 1434, []byte{1}))
	if len(r.out) != 1 || r.out[0].ICMPType != 3 || r.out[0].ICMPCode != 3 {
		t.Fatalf("expected port unreachable, got %v", r.out)
	}
}

func TestExploitInfectsAndScans(t *testing.T) {
	var infected *Instance
	r := newRig(t, WindowsXP(), Hooks{OnInfected: func(in *Instance) { infected = in }})
	exploit := netsim.TCPSyn(1, r.in.IP, 1234, 445, 5)
	exploit.Payload = WindowsXP().ExploitPayload(0)
	r.deliver(exploit)

	if infected != r.in || !r.in.Infected {
		t.Fatal("exploit did not infect")
	}
	if r.in.Generation != 1 {
		t.Errorf("generation = %d, want 1", r.in.Generation)
	}
	// Infection burst dirtied pages.
	if r.vm.PrivateBytes() == 0 {
		t.Error("infection did not dirty memory")
	}
	// Let the scanner run for 2s of sim time: WindowsXP scans 20/s.
	before := len(r.out)
	r.k.RunFor(2 * time.Second)
	scans := len(r.out) - before
	if scans < 20 || scans > 60 {
		t.Errorf("scans in 2s = %d, want ~40", scans)
	}
	// Scan probes carry the exploit payload with bumped generation.
	probe := r.out[len(r.out)-1]
	if probe.DstPort != 445 {
		t.Errorf("scan port = %d", probe.DstPort)
	}
	wantPayload := WindowsXP().ExploitPayload(1)
	if !bytes.Equal(probe.Payload, wantPayload) {
		t.Errorf("scan payload = %x, want %x", probe.Payload, wantPayload)
	}
}

func TestExploitWrongPortIgnored(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	pkt := netsim.TCPSyn(1, r.in.IP, 1234, 80, 5) // open but not vulnerable
	pkt.Payload = WindowsXP().ExploitPayload(0)
	r.deliver(pkt)
	if r.in.Infected {
		t.Error("infected via non-vulnerable port")
	}
}

func TestExploitWrongSigIgnored(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	pkt := netsim.TCPSyn(1, r.in.IP, 1234, 445, 5)
	pkt.Payload = []byte("just a normal request")
	r.deliver(pkt)
	if r.in.Infected {
		t.Error("infected by benign payload")
	}
}

func TestReinfectionCounted(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	pkt := netsim.TCPSyn(1, r.in.IP, 1234, 445, 5)
	pkt.Payload = WindowsXP().ExploitPayload(0)
	r.deliver(pkt)
	r.deliver(pkt)
	if r.in.Stats().ExploitHits != 1 {
		t.Errorf("ExploitHits = %d", r.in.Stats().ExploitHits)
	}
	if r.in.Generation != 1 {
		t.Errorf("generation changed on reinfection: %d", r.in.Generation)
	}
}

func TestGenerationChains(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	pkt := netsim.TCPSyn(1, r.in.IP, 1234, 445, 5)
	pkt.Payload = WindowsXP().ExploitPayload(3) // attacker at generation 3
	r.deliver(pkt)
	if r.in.Generation != 4 {
		t.Errorf("generation = %d, want 4", r.in.Generation)
	}
}

func TestUDPExploit(t *testing.T) {
	r := newRig(t, SQLServer(), Hooks{})
	pkt := netsim.UDPDatagram(1, r.in.IP, 1000, 1434, SQLServer().ExploitPayload(0))
	r.deliver(pkt)
	if !r.in.Infected {
		t.Fatal("slammer-style UDP exploit did not infect")
	}
}

func TestMultiStageFetchesPayload(t *testing.T) {
	server := netsim.MustParseAddr("66.6.6.6")
	r := newRig(t, MultiStage(server), Hooks{})
	pkt := netsim.TCPSyn(1, r.in.IP, 1234, 445, 5)
	pkt.Payload = r.in.Profile.ExploitPayload(0)
	r.deliver(pkt)
	var fetch *netsim.Packet
	for _, p := range r.out {
		if p.Dst == server {
			fetch = p
		}
	}
	if fetch == nil {
		t.Fatal("no second-stage fetch emitted")
	}
	if fetch.DstPort != 8080 || !bytes.Contains(fetch.Payload, []byte("stage2")) {
		t.Errorf("fetch = %s", fetch)
	}
}

func TestMultiStageDNSLookupThenFetch(t *testing.T) {
	r := newRig(t, MultiStageDNS("stage2.evil.example"), Hooks{})
	r.in.ForceInfect(0)

	// First outbound packet: a DNS query for the payload host.
	var query *netsim.Packet
	for _, p := range r.out {
		if p.Proto == netsim.ProtoUDP && p.DstPort == 53 {
			query = p
		}
	}
	if query == nil {
		t.Fatal("no DNS query emitted")
	}
	m, err := dns.Parse(query.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "stage2.evil.example" {
		t.Fatalf("query: %+v", m.Questions)
	}
	if r.in.Stats().DNSQueries != 1 {
		t.Errorf("DNSQueries = %d", r.in.Stats().DNSQueries)
	}

	// Answer it from a safe resolver; the guest must fetch stage 2 from
	// the answered address.
	resolver := dns.NewResolver(netsim.MustParsePrefix("10.5.0.0/16"))
	resp := resolver.ServePacket(query)
	if resp == nil {
		t.Fatal("resolver refused query")
	}
	r.out = nil
	r.deliver(resp)
	if r.in.Stats().DNSResponses != 1 || r.in.Stats().Stage2Fetches != 1 {
		t.Fatalf("stats = %+v", r.in.Stats())
	}
	if len(r.out) != 1 {
		t.Fatalf("fetch packets = %d", len(r.out))
	}
	fetch := r.out[0]
	want, _ := resolver.Lookup("stage2.evil.example")
	if fetch.Dst != want || fetch.DstPort != 8080 {
		t.Errorf("fetch = %s, want dst %s:8080", fetch, want)
	}
	// A duplicate response is ignored (pending cleared).
	r.out = nil
	r.deliver(resp)
	if len(r.out) != 0 || r.in.Stats().Stage2Fetches != 1 {
		t.Error("duplicate DNS response refetched")
	}
}

func TestDNSResponseWithWrongIDIgnored(t *testing.T) {
	r := newRig(t, MultiStageDNS("x.example"), Hooks{})
	r.in.ForceInfect(0)
	forged := &dns.Message{
		ID: 0x9999, Flags: dns.FlagQR,
		Answers: []dns.Answer{{Name: "x.example", TTL: 1, Addr: 0x01020304}},
	}
	b, _ := forged.Marshal()
	r.out = nil
	r.deliver(netsim.UDPDatagram(8, r.in.IP, 53, 5353, b))
	if r.in.Stats().Stage2Fetches != 0 {
		t.Error("forged DNS response accepted")
	}
}

func TestMemoryWorkloadGrowsThenPlateaus(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.in.Start()
	afterBurst := r.vm.Mem.PrivatePages()
	if afterBurst == 0 {
		t.Fatal("initial burst dirtied nothing")
	}
	r.k.RunFor(30 * time.Second)
	after30 := r.vm.Mem.PrivatePages()
	r.k.RunFor(30 * time.Second)
	after60 := r.vm.Mem.PrivatePages()
	if after30 <= afterBurst {
		t.Error("steady workload did not grow footprint")
	}
	// Working-set concentration: second 30 s adds far fewer pages than
	// the first.
	grow1 := after30 - afterBurst
	grow2 := after60 - after30
	if grow2*2 > grow1 {
		t.Errorf("no plateau: first 30s +%d pages, second +%d", grow1, grow2)
	}
	// Footprint stays small relative to the 1024-page resident image.
	if after60 > 600 {
		t.Errorf("footprint %d pages, want well under resident 1024", after60)
	}
}

func TestStopHaltsActivity(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.in.Start()
	r.k.RunFor(time.Second)
	r.in.Stop()
	dirty := r.in.Stats().PagesDirty
	r.k.RunFor(10 * time.Second)
	if r.in.Stats().PagesDirty != dirty {
		t.Error("touches continued after Stop")
	}
}

func TestForceInfect(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.in.ForceInfect(0)
	if !r.in.Infected || r.in.Generation != 0 {
		t.Errorf("infected=%v gen=%d", r.in.Infected, r.in.Generation)
	}
	r.in.ForceInfect(5) // no-op when already infected
	if r.in.Generation != 0 {
		t.Error("ForceInfect overwrote generation")
	}
}

func TestPauseFreezesGuestActivity(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.in.Start()
	r.in.ForceInfect(0)
	r.k.RunFor(time.Second)
	scans := r.in.Stats().ScansOut
	dirty := r.in.Stats().PagesDirty
	if scans == 0 || dirty == 0 {
		t.Fatal("no activity before pause")
	}
	if err := r.h.Pause(r.vm.ID); err != nil {
		t.Fatal(err)
	}
	r.k.RunFor(10 * time.Second)
	if r.in.Stats().ScansOut != scans || r.in.Stats().PagesDirty != dirty {
		t.Error("paused VM made progress")
	}
	// Resume: activity continues.
	if err := r.h.Resume(r.vm.ID); err != nil {
		t.Fatal(err)
	}
	r.k.RunFor(2 * time.Second)
	if r.in.Stats().ScansOut <= scans {
		t.Error("resumed VM never scanned again")
	}
	// State errors.
	if err := r.h.Resume(r.vm.ID); err == nil {
		t.Error("resume of running VM accepted")
	}
	if err := r.h.Pause(9999); err == nil {
		t.Error("pause of missing VM accepted")
	}
}

func TestScanStopsWhenStopped(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.in.ForceInfect(0)
	r.k.RunFor(time.Second)
	n := r.in.Stats().ScansOut
	if n == 0 {
		t.Fatal("no scans after infection")
	}
	r.in.Stop()
	r.k.RunFor(5 * time.Second)
	if r.in.Stats().ScansOut != n {
		t.Error("scans continued after Stop")
	}
}

func TestExploitPayloadNoVulnerability(t *testing.T) {
	if LinuxServer().ExploitPayload(0) != nil {
		t.Error("invulnerable profile produced exploit payload")
	}
}

func TestRepliesHaveDistinctIPIDs(t *testing.T) {
	r := newRig(t, LinuxServer(), Hooks{})
	r.deliver(netsim.ICMPEcho(1, r.in.IP, true))
	r.deliver(netsim.ICMPEcho(1, r.in.IP, true))
	if r.out[0].ID == r.out[1].ID {
		t.Error("replies share IP ID")
	}
}
