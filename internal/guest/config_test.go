package guest

import (
	"bytes"
	"strings"
	"testing"

	"potemkin/internal/netsim"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range []*Profile{WindowsXP(), SQLServer(), LinuxServer(), MultiStageDNS("x.example")} {
		var buf bytes.Buffer
		if err := SaveProfile(&buf, p); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := LoadProfile(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got.Name != p.Name || len(got.Services) != len(p.Services) ||
			got.ScanRatePerSec != p.ScanRatePerSec || got.TTL != p.TTL ||
			got.PayloadHost != p.PayloadHost {
			t.Errorf("%s round trip diverged: %+v", p.Name, got)
		}
		for i := range p.Services {
			if !bytes.Equal(got.Services[i].ExploitSig, p.Services[i].ExploitSig) {
				t.Errorf("%s: service %d signature lost", p.Name, i)
			}
		}
	}
}

func TestStockProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{WindowsXP(), SQLServer(), LinuxServer(),
		MultiStage(1), MultiStageDNS("x.example")} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
		want   string
	}{
		{"no name", func(p *Profile) { p.Name = "" }, "no name"},
		{"port zero", func(p *Profile) { p.Services[0].Port = 0 }, "port 0"},
		{"bad proto", func(p *Profile) { p.Services[0].Proto = netsim.ProtoGRE }, "protocol"},
		{"duplicate service", func(p *Profile) { p.Services = append(p.Services, p.Services[0]) }, "duplicates"},
		{"vuln no sig", func(p *Profile) { p.Services[2].ExploitSig = nil }, "no exploit signature"},
		{"two vulns", func(p *Profile) {
			p.Services[0].Vulnerable = true
			p.Services[0].ExploitSig = []byte("x")
		}, "at most one"},
		{"negative rate", func(p *Profile) { p.TouchRatePerSec = -1 }, "out-of-range"},
		{"bad prob", func(p *Profile) { p.WidePageProb = 1.5 }, "out-of-range"},
		{"scan no port", func(p *Profile) { p.ScanDstPort = 0 }, "no scan port"},
		{"both payload fields", func(p *Profile) {
			p.PayloadHost = "a.b"
			p.PayloadServer = 1
		}, "both"},
	}
	for _, c := range cases {
		p := WindowsXP()
		c.mutate(p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestLoadProfileRejectsGarbage(t *testing.T) {
	if _, err := LoadProfile(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadProfile(strings.NewReader(`{"Name":"x","Bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadProfile(strings.NewReader(`{"Name":""}`)); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestLoadedProfileWorksEndToEnd(t *testing.T) {
	// A custom personality defined entirely via JSON.
	js := `{
		"Name": "custom-ftp",
		"TTL": 255,
		"TCPWindow": 4096,
		"Services": [
			{"Port": 21, "Proto": 6, "Vulnerable": true, "ExploitSig": "RlRQIG92ZXJmbG93"}
		],
		"InitialBurstPages": 4,
		"ScanRatePerSec": 10,
		"ScanDstPort": 21,
		"ScanProto": 6
	}`
	p, err := LoadProfile(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, p, Hooks{})
	// Fingerprint honored.
	r.deliver(netsim.TCPSyn(6, r.in.IP, 1000, 21, 1))
	if got := r.out[0]; got.TTL != 255 || got.Window != 4096 {
		t.Errorf("fingerprint: ttl=%d win=%d", got.TTL, got.Window)
	}
	// Exploit signature (base64 of "FTP overflow") infects.
	exploit := netsim.TCPSyn(6, r.in.IP, 1000, 21, 2)
	exploit.Payload = p.ExploitPayload(0)
	r.deliver(exploit)
	if !r.in.Infected {
		t.Error("custom profile exploit did not infect")
	}
}
