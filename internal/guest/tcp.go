package guest

import (
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// TCP fidelity: honeypots must look indistinguishable from real hosts
// to a scanner that completes handshakes, so each guest runs a
// connection table with a real (if compact) TCP state machine —
// SYN-cookieless SYN_RCVD, sequence/ack tracking, graceful FIN
// teardown, RST on bad state, bounded table with oldest-idle eviction.
//
// Two exploit deliveries are supported, mirroring 2003-2005 malware:
//
//   - single-packet ("Slammer-style" over UDP, or TCP fast-path where
//     the probe carries SYN|PSH+payload in one segment — the worm
//     simulator's abstraction of a completed dialogue), and
//   - full-dialogue ("Blaster-style"): SYN, SYN-ACK, ACK+payload. The
//     client side of that dialogue is what infected guests use when
//     they attack, so reflected VMs observe a genuine handshake.

// tcpState is a server- or client-side connection state.
type tcpState int

const (
	tcpSynRcvd tcpState = iota // server: SYN seen, SYN-ACK sent
	tcpEstablished
	tcpFinWait // we sent FIN, awaiting final ACK
	// Client-side states for outbound exploit dialogues.
	tcpSynSent
)

func (s tcpState) String() string {
	switch s {
	case tcpSynRcvd:
		return "syn-rcvd"
	case tcpEstablished:
		return "established"
	case tcpFinWait:
		return "fin-wait"
	case tcpSynSent:
		return "syn-sent"
	default:
		return "unknown"
	}
}

// tcpConn is one tracked connection.
type tcpConn struct {
	key        netsim.FlowKey // remote->local for server conns, local->remote for client conns
	state      tcpState
	iss        uint32 // our initial sequence number
	sndNxt     uint32 // next sequence we will send
	rcvNxt     uint32 // next sequence we expect
	lastActive sim.Time
	client     bool // we initiated (exploit dialogue or canary probe)
	canary     bool // fingerprinting probe: SYN-ACK means the world answered
	rxBytes    int
}

// maxConns bounds each guest's connection table, like a small server's
// backlog; the oldest-idle connection is evicted when full.
const maxConns = 256

// connTable is the guest's connection state, keyed by the REMOTE
// endpoint's flow key as seen in inbound packets (src=remote,
// dst=local).
type connTable struct {
	conns map[netsim.FlowKey]*tcpConn
}

func newConnTable() *connTable {
	return &connTable{conns: make(map[netsim.FlowKey]*tcpConn)}
}

func (ct *connTable) lookup(key netsim.FlowKey) *tcpConn { return ct.conns[key] }

func (ct *connTable) insert(now sim.Time, c *tcpConn) {
	if len(ct.conns) >= maxConns {
		var oldestKey netsim.FlowKey
		var oldest *tcpConn
		for k, v := range ct.conns {
			if oldest == nil || v.lastActive < oldest.lastActive {
				oldestKey, oldest = k, v
			}
		}
		delete(ct.conns, oldestKey)
	}
	c.lastActive = now
	ct.conns[c.key] = c
}

func (ct *connTable) remove(key netsim.FlowKey) { delete(ct.conns, key) }

func (ct *connTable) len() int { return len(ct.conns) }

// connIdleTimeout reaps half-open and abandoned connections, like a
// server's keepalive/SYN-timeout machinery.
const connIdleTimeout = 2 * time.Minute

// pruneIdle drops connections idle past the timeout.
func (ct *connTable) pruneIdle(now sim.Time) int {
	n := 0
	for k, c := range ct.conns {
		if now.Sub(c.lastActive) >= connIdleTimeout {
			delete(ct.conns, k)
			n++
		}
	}
	return n
}

// handleTCP is the guest's TCP input processing.
func (in *Instance) handleTCP(pkt *netsim.Packet) {
	now := in.K.Now()
	key := pkt.Flow()

	// Reap abandoned connections every so often (cheap amortization).
	in.tcpSeen++
	if in.tcpSeen%64 == 0 {
		in.conns.pruneIdle(now)
	}

	// Client-side dialogue: is this a reply to a connection we opened?
	if c := in.conns.lookup(key.Reverse()); c != nil && c.client {
		in.handleClientTCP(now, c, pkt)
		return
	}

	open := in.Profile.openPort(netsim.ProtoTCP, pkt.DstPort)
	c := in.conns.lookup(key)

	switch {
	case pkt.Flags&netsim.FlagRST != 0:
		if c != nil {
			in.conns.remove(key)
		}
		return

	case pkt.Flags&netsim.FlagSYN != 0 && pkt.Flags&netsim.FlagACK == 0:
		if !open {
			in.sendRST(pkt)
			return
		}
		if c == nil {
			c = &tcpConn{
				key:    key,
				state:  tcpSynRcvd,
				iss:    uint32(in.rng.Uint64()) | 1,
				rcvNxt: pkt.Seq + 1,
			}
			c.sndNxt = c.iss + 1
			in.conns.insert(now, c)
			in.stats.ConnsAccepted++
		}
		// SYN (or retransmitted SYN): (re)send SYN-ACK.
		c.lastActive = now
		in.sendSegment(pkt.Src, pkt.DstPort, pkt.SrcPort,
			c.iss, c.rcvNxt, netsim.FlagSYN|netsim.FlagACK, nil)

		// Fast-path exploit: a lone SYN|PSH probe carrying payload is
		// the worm simulator's single-packet abstraction.
		if len(pkt.Payload) > 0 {
			c.state = tcpEstablished
			c.rxBytes += len(pkt.Payload)
			in.checkExploit(netsim.ProtoTCP, pkt)
			in.serveApp(c, pkt)
		}

	case c == nil:
		// Stray non-SYN segment: hosts answer with RST (unless it is a
		// bare ACK to a closed port, which also gets RST).
		if open || pkt.Flags&netsim.FlagACK != 0 {
			in.sendRST(pkt)
		}

	default:
		c.lastActive = now
		switch c.state {
		case tcpSynRcvd:
			if pkt.Flags&netsim.FlagACK != 0 && pkt.Ack == c.sndNxt {
				c.state = tcpEstablished
				in.stats.ConnsEstablished++
			}
			fallthrough
		case tcpEstablished:
			if len(pkt.Payload) > 0 && pkt.Seq == c.rcvNxt {
				c.rcvNxt += uint32(len(pkt.Payload))
				c.rxBytes += len(pkt.Payload)
				in.sendSegment(pkt.Src, pkt.DstPort, pkt.SrcPort,
					c.sndNxt, c.rcvNxt, netsim.FlagACK, nil)
				in.checkExploit(netsim.ProtoTCP, pkt)
				in.serveApp(c, pkt)
			}
			if pkt.Flags&netsim.FlagFIN != 0 {
				// Passive close: ACK the FIN and send our own.
				c.rcvNxt++
				in.sendSegment(pkt.Src, pkt.DstPort, pkt.SrcPort,
					c.sndNxt, c.rcvNxt, netsim.FlagFIN|netsim.FlagACK, nil)
				c.sndNxt++
				c.state = tcpFinWait
			}
		case tcpFinWait:
			if pkt.Flags&netsim.FlagACK != 0 && pkt.Ack == c.sndNxt {
				in.conns.remove(key)
				in.stats.ConnsClosed++
			}
		}
	}
}

// handleClientTCP advances an exploit dialogue this guest initiated.
func (in *Instance) handleClientTCP(now sim.Time, c *tcpConn, pkt *netsim.Packet) {
	c.lastActive = now
	switch {
	case pkt.Flags&netsim.FlagRST != 0:
		in.conns.remove(c.key)
	case c.state == tcpSynSent && pkt.Flags&(netsim.FlagSYN|netsim.FlagACK) == netsim.FlagSYN|netsim.FlagACK:
		if c.canary {
			// A canary got its SYN-ACK: something answered, so the
			// guest's honeypot suspicion resets. No payload follows.
			c.rcvNxt = pkt.Seq + 1
			in.canaryAnswered(c)
			return
		}
		// Handshake completes: ACK and fire the exploit payload.
		c.state = tcpEstablished
		c.rcvNxt = pkt.Seq + 1
		payload := in.Profile.ExploitPayload(in.Generation)
		in.sendSegment(pkt.Src, c.key.SrcPort, c.key.DstPort,
			c.sndNxt, c.rcvNxt, netsim.FlagACK|netsim.FlagPSH, payload)
		c.sndNxt += uint32(len(payload))
		in.stats.ExploitsSent++
		// Dialogue done; drop our state (fire and forget, like the
		// malware it models).
		in.conns.remove(c.key)
	}
}

// openExploitDialogue begins a full client-side handshake toward dst.
func (in *Instance) openExploitDialogue(dst netsim.Addr, dstPort uint16) {
	now := in.K.Now()
	srcPort := in.ephemeralPort()
	c := &tcpConn{
		key: netsim.FlowKey{
			Src: in.IP, Dst: dst, SrcPort: srcPort, DstPort: dstPort,
			Proto: netsim.ProtoTCP,
		},
		state:  tcpSynSent,
		iss:    uint32(in.rng.Uint64()) | 1,
		client: true,
	}
	c.sndNxt = c.iss + 1
	in.conns.insert(now, c)
	in.sendSegment(dst, srcPort, dstPort, c.iss, 0, netsim.FlagSYN, nil)
}

// sendSegment emits one TCP segment from this guest, stamped with the
// profile's stack fingerprint.
func (in *Instance) sendSegment(dst netsim.Addr, srcPort, dstPort uint16,
	seq, ack uint32, flags byte, payload []byte) {
	in.reply(&netsim.Packet{
		Src: in.IP, Dst: dst, Proto: netsim.ProtoTCP, TTL: in.Profile.ttl(),
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack, Flags: flags, Window: in.Profile.window(),
		Payload: payload,
	})
}

// sendRST answers an unacceptable segment.
func (in *Instance) sendRST(pkt *netsim.Packet) {
	ack := pkt.Seq + uint32(len(pkt.Payload))
	if pkt.Flags&netsim.FlagSYN != 0 {
		ack++
	}
	in.sendSegment(pkt.Src, pkt.DstPort, pkt.SrcPort, pkt.Ack, ack,
		netsim.FlagRST|netsim.FlagACK, nil)
}

// Conns returns the current connection-table size (tests, stats).
func (in *Instance) Conns() int { return in.conns.len() }
