package guest

import (
	"bytes"
	"time"

	"potemkin/internal/dns"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// HandlePacket processes an inbound packet addressed to this guest,
// emitting protocol-faithful replies and, on an exploit hit against a
// vulnerable service, transitioning to the infected state.
func (in *Instance) HandlePacket(now sim.Time, pkt *netsim.Packet) {
	in.stats.PacketsIn++
	in.VM.Touch(now)
	switch pkt.Proto {
	case netsim.ProtoICMP:
		if pkt.ICMPType == 8 { // echo request
			echo := netsim.ICMPEcho(in.IP, pkt.Src, false)
			echo.TTL = in.Profile.ttl()
			in.reply(echo)
		}
	case netsim.ProtoTCP:
		in.handleTCP(pkt)
	case netsim.ProtoUDP:
		in.handleUDP(pkt)
	}
}

func (in *Instance) handleUDP(pkt *netsim.Packet) {
	// Responses to our own stage-2 lookup come back from port 53.
	if pkt.SrcPort == 53 && len(pkt.Payload) > 0 {
		in.handleDNSResponse(pkt)
		return
	}
	if !in.Profile.openPort(netsim.ProtoUDP, pkt.DstPort) {
		// Port unreachable.
		in.reply(&netsim.Packet{
			Src: in.IP, Dst: pkt.Src, Proto: netsim.ProtoICMP, TTL: in.Profile.ttl(),
			ICMPType: 3, ICMPCode: 3,
		})
		return
	}
	if len(pkt.Payload) > 0 {
		in.checkExploit(netsim.ProtoUDP, pkt)
		in.serveApp(nil, pkt)
	}
}

func (in *Instance) checkExploit(proto netsim.Proto, pkt *netsim.Packet) {
	v := in.Profile.vulnerable()
	if v == nil || v.Proto != proto || v.Port != pkt.DstPort {
		return
	}
	if len(pkt.Payload) < len(v.ExploitSig) || !bytes.HasPrefix(pkt.Payload, v.ExploitSig) {
		return
	}
	if in.Infected {
		in.stats.ExploitHits++
		return
	}
	in.becomeInfected(parseGeneration(v.ExploitSig, pkt.Payload) + 1)
}

func (in *Instance) becomeInfected(generation int) {
	in.Infected = true
	in.InfectedAt = in.K.Now()
	in.Generation = generation

	// The worm unpacks: a burst of dirty pages.
	for i := 0; i < in.Profile.InfectionBurstPages; i++ {
		in.touchPage()
	}

	// Multi-stage malware: fetch the second stage from a third party,
	// resolving a hostname first when the profile names one.
	switch {
	case in.Profile.PayloadHost != "":
		in.sendStage2Query()
	case in.Profile.PayloadServer != 0:
		in.fetchStage2(in.Profile.PayloadServer)
	}

	if in.hooks.OnInfected != nil {
		in.hooks.OnInfected(in)
	}
	in.scheduleScan()
	in.startDeception()
}

// ForceInfect compromises the guest directly (the worm simulator's
// patient zero, and tests).
func (in *Instance) ForceInfect(generation int) {
	if in.Infected {
		return
	}
	in.becomeInfected(generation)
}

func (in *Instance) scheduleScan() {
	if in.Profile.ScanRatePerSec <= 0 || in.pick == nil {
		return
	}
	gap := time.Duration(in.rng.Exp(1e9 / in.Profile.ScanRatePerSec))
	in.K.After(gap, func(sim.Time) {
		// quiet only ever flips for fingerprinting profiles, so the
		// check cannot perturb existing non-fingerprinting runs.
		if in.stopped || !in.Infected || in.quiet || in.VM.State == vmm.StateDead {
			return
		}
		if in.VM.State == vmm.StateRunning {
			in.emitScan()
		}
		// Paused VMs stop scanning but resume when unfrozen.
		in.scheduleScan()
	})
}

func (in *Instance) emitScan() {
	dst := in.pick(in.rng)
	proto := in.Profile.ScanProto
	if proto == 0 {
		proto = netsim.ProtoTCP
	}
	in.stats.ScansOut++
	in.actions++
	in.VM.Touch(in.K.Now())
	switch {
	case proto == netsim.ProtoUDP:
		in.send(netsim.UDPDatagram(in.IP, dst, in.ephemeralPort(),
			in.Profile.ScanDstPort, in.Profile.ExploitPayload(in.Generation)))
	case in.Profile.FullDialogue:
		// Blaster-style: complete a real handshake before delivering the
		// payload (handleClientTCP finishes the dialogue when the
		// SYN-ACK comes back).
		in.openExploitDialogue(dst, in.Profile.ScanDstPort)
	default:
		// Single-packet abstraction of the completed dialogue.
		probe := netsim.TCPSyn(in.IP, dst, in.ephemeralPort(), in.Profile.ScanDstPort, uint32(in.rng.Uint64()))
		probe.Flags |= netsim.FlagPSH
		probe.Payload = in.Profile.ExploitPayload(in.Generation)
		in.send(probe)
	}
}

// sendStage2Query issues the DNS lookup for the payload host.
func (in *Instance) sendStage2Query() {
	server := in.Profile.DNSServer
	if server == 0 {
		server = netsim.MustParseAddr("198.41.0.4") // any external resolver; the gateway rewrites it
	}
	id := uint16(in.rng.Uint64()) | 1
	q, err := dns.NewQuery(id, in.Profile.PayloadHost)
	if err != nil {
		return
	}
	in.dnsPending = id
	in.stats.DNSQueries++
	in.reply(netsim.UDPDatagram(in.IP, server, in.ephemeralPort(), 53, q))
}

// handleDNSResponse consumes the answer to a pending stage-2 lookup.
func (in *Instance) handleDNSResponse(pkt *netsim.Packet) {
	if in.dnsPending == 0 {
		return
	}
	m, err := dns.Parse(pkt.Payload)
	if err != nil || !m.Response() || m.ID != in.dnsPending {
		return
	}
	in.dnsPending = 0
	in.stats.DNSResponses++
	if len(m.Answers) == 0 {
		return
	}
	in.fetchStage2(m.Answers[0].Addr)
}

// fetchStage2 opens the second-stage download connection.
func (in *Instance) fetchStage2(server netsim.Addr) {
	port := in.Profile.PayloadPort
	if port == 0 {
		port = 80
	}
	in.stats.Stage2Fetches++
	req := netsim.TCPSyn(in.IP, server, in.ephemeralPort(), port, uint32(in.rng.Uint64()))
	req.Payload = []byte("GET /stage2")
	req.Flags |= netsim.FlagPSH
	in.reply(req)
}

func (in *Instance) ephemeralPort() uint16 {
	return uint16(49152 + in.rng.Intn(16384))
}

func (in *Instance) reply(pkt *netsim.Packet) {
	in.ipid++
	pkt.ID = in.ipid
	in.stats.RepliesOut++
	in.send(pkt)
}
