package guest

import (
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// Honeypot fingerprinting and C2 beaconing: the adversary behaviours
// ROADMAP item 4 asks for. A fingerprinting guest probes canary
// destinations after infection and counts consecutive silences; a
// contained farm either answers nothing (drop-all — fast fingerprint)
// or answers everything through internal reflection (slow or never —
// the deception holds, at clone cost). A C2 guest beacons its
// controller on a fixed period, giving the containment policy a
// steady stream of egress attempts to score. Both stop the moment the
// guest goes quiet, which is what the scorecard's deception-survival
// metric measures.

// active reports whether the guest should still run attacker behaviour.
func (in *Instance) active() bool {
	return !in.stopped && in.Infected && !in.quiet && in.VM.State != vmm.StateDead
}

// startDeception launches the canary and beacon processes; called once
// on infection.
func (in *Instance) startDeception() {
	in.scheduleCanary()
	in.scheduleBeacon()
}

func (in *Instance) scheduleCanary() {
	if in.Profile.CanaryRatePerSec <= 0 || in.pick == nil {
		return
	}
	gap := time.Duration(in.rng.Exp(1e9 / in.Profile.CanaryRatePerSec))
	in.K.After(gap, func(sim.Time) {
		if !in.active() {
			return
		}
		if in.VM.State == vmm.StateRunning {
			in.emitCanary()
		}
		in.scheduleCanary()
	})
}

// emitCanary opens a canary connection: a plain SYN to a picked
// address on the canary port, tracked client-side so the SYN-ACK (if
// any) clears suspicion. The timeout fires on the kernel, so the whole
// check is deterministic.
func (in *Instance) emitCanary() {
	dst := in.pick(in.rng)
	srcPort := in.ephemeralPort()
	now := in.K.Now()
	c := &tcpConn{
		key: netsim.FlowKey{
			Src: in.IP, Dst: dst, SrcPort: srcPort, DstPort: in.Profile.canaryPort(),
			Proto: netsim.ProtoTCP,
		},
		state:  tcpSynSent,
		iss:    uint32(in.rng.Uint64()) | 1,
		client: true,
		canary: true,
	}
	c.sndNxt = c.iss + 1
	in.conns.insert(now, c)
	in.stats.CanariesOut++
	in.actions++
	in.inst.Canaries.Inc()
	in.VM.Touch(now)
	in.sendSegment(dst, srcPort, c.key.DstPort, c.iss, 0, netsim.FlagSYN, nil)

	key := c.key
	in.K.After(in.Profile.canaryTimeout(), func(sim.Time) {
		cc := in.conns.lookup(key)
		if cc == nil || !cc.canary || cc.state != tcpSynSent {
			return // answered (or evicted); answered canaries reset suspicion
		}
		in.conns.remove(key)
		if in.stopped || !in.Infected || in.quiet {
			return
		}
		in.suspicion++
		if in.suspicion >= in.Profile.fingerprintThreshold() {
			in.goQuiet()
		}
	})
}

// canaryAnswered handles a SYN-ACK on a canary connection: something
// out there talks back, so the world looks real again.
func (in *Instance) canaryAnswered(c *tcpConn) {
	in.suspicion = 0
	// Be polite: reset the probe connection like a scanner would.
	in.sendSegment(c.key.Dst, c.key.SrcPort, c.key.DstPort,
		c.sndNxt, c.rcvNxt, netsim.FlagRST, nil)
	in.conns.remove(c.key)
}

// goQuiet is the fingerprint decision: the guest concludes it is in a
// honeypot and ceases all attacker behaviour. The deception-survival
// histogram records how many actions the farm extracted first.
func (in *Instance) goQuiet() {
	if in.quiet {
		return
	}
	in.quiet = true
	in.stats.Fingerprinted++
	in.inst.Fingerprints.Inc()
	in.inst.Deception.Observe(float64(in.actions))
}

func (in *Instance) scheduleBeacon() {
	if in.Profile.C2Server == 0 {
		return
	}
	in.K.After(in.Profile.beaconPeriod(), func(sim.Time) {
		if !in.active() {
			return
		}
		if in.VM.State == vmm.StateRunning {
			in.emitBeacon()
		}
		in.scheduleBeacon()
	})
}

// emitBeacon sends one C2 check-in: a SYN|PSH to the controller
// carrying a recognizable marker, egress for the containment policy to
// allow, reflect, or drop.
func (in *Instance) emitBeacon() {
	in.stats.BeaconsOut++
	in.actions++
	in.inst.Beacons.Inc()
	now := in.K.Now()
	in.VM.Touch(now)
	b := netsim.TCPSyn(in.IP, in.Profile.C2Server, in.ephemeralPort(),
		in.Profile.c2Port(), uint32(in.rng.Uint64()))
	b.Flags |= netsim.FlagPSH
	b.Payload = []byte("C2 beacon gen" + string([]byte{byte('0' + in.Generation%10)}))
	in.reply(b)
}
