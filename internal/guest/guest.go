// Package guest models what runs inside a honeypot VM: network services
// that respond with protocol fidelity (SYN-ACK, RST, echo replies), a
// memory workload that dirties pages over time (driving delta
// virtualization's CoW costs), and an infection state machine — a
// vulnerable service that, on receiving an exploit payload, turns the VM
// into a scanner, exactly the behaviour the containment experiments need
// to observe and contain.
//
// No real malware is involved: "exploit" is a payload prefix match and
// "infection" is a state flip plus behavioural change (page-dirtying
// burst, outbound scanning, optional second-stage fetch).
package guest

import (
	"time"

	"potemkin/internal/mem"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// AppKind selects an application-layer responder for a service.
type AppKind int

// Application responders. Each parses just enough of the request to
// answer plausibly — the fidelity a scanner's banner-grab sees.
const (
	AppNone AppKind = iota
	AppHTTP
	AppSMB
	AppSMTP
	AppSSH
)

// ServiceSpec describes one listening service on a guest.
type ServiceSpec struct {
	Port       uint16
	Proto      netsim.Proto
	Vulnerable bool
	// ExploitSig is the payload prefix that compromises a vulnerable
	// service. Ignored unless Vulnerable.
	ExploitSig []byte
	// App selects the application-layer responder for non-exploit
	// payloads on this service.
	App AppKind
}

// Profile is a guest personality: its services, its memory behaviour,
// and what it does once infected.
type Profile struct {
	Name     string
	Services []ServiceSpec

	// Stack fingerprint: the TTL and TCP window a scanner's passive
	// OS-fingerprinting would check. Zero values default to 64/65535.
	TTL       byte
	TCPWindow uint16

	// Memory workload.
	InitialBurstPages   int     // pages dirtied immediately after start (process state)
	TouchRatePerSec     float64 // steady-state page-touch rate
	WorkingSetPages     int     // hot pages touches concentrate on
	WidePageProb        float64 // probability a touch lands outside the working set
	InfectionBurstPages int     // pages dirtied when the worm unpacks

	// Post-infection behaviour.
	ScanRatePerSec float64 // outbound probe rate once infected
	ScanDstPort    uint16  // port the worm targets
	ScanProto      netsim.Proto
	// FullDialogue makes TCP scans complete a real three-way handshake
	// before delivering the exploit (Blaster-style), instead of the
	// single-packet abstraction.
	FullDialogue bool
	// PayloadServer, if nonzero, is a third-party host the infected
	// guest contacts for its second stage (multi-stage malware; E8).
	PayloadServer netsim.Addr
	PayloadPort   uint16
	// PayloadHost, if set, is resolved via DNS before the second-stage
	// fetch (most real droppers look a name up first); it takes
	// precedence over PayloadServer. The lookup goes to DNSServer,
	// which the gateway rewrites to its safe resolver.
	PayloadHost string
	DNSServer   netsim.Addr

	// Honeypot fingerprinting: an infected guest that suspects it is
	// jailed probes "canary" destinations and counts the silences. Real
	// internet hosts answer some canaries; a contained honeyfarm
	// answers none (drop-all) or answers with its own impersonations
	// (internal reflection). CanaryRatePerSec > 0 enables the check:
	// each canary is a TCP SYN to a picked address on CanaryPort; if no
	// SYN-ACK arrives within CanaryTimeoutMS the guest's suspicion
	// rises, and at FingerprintThreshold consecutive silences it
	// decides it is in a honeypot and goes quiet — no more scans,
	// beacons, or canaries. Deception survival time is the number of
	// attacker actions executed before that happens.
	CanaryRatePerSec     float64
	CanaryPort           uint16 // default 80
	CanaryTimeoutMS      int    // default 2000
	FingerprintThreshold int    // default 3 consecutive unanswered canaries

	// Command-and-control: an infected guest beacons C2Server on
	// C2Port every BeaconPeriodMS (defaults 443/30000). Beacons are
	// egress the containment policy must score: every one that leaves
	// is a leak, every one reflected or dropped is containment working.
	C2Server       netsim.Addr
	C2Port         uint16
	BeaconPeriodMS int
}

// ttl returns the profile's IP TTL fingerprint.
func (p *Profile) ttl() byte {
	if p.TTL == 0 {
		return 64
	}
	return p.TTL
}

// window returns the profile's TCP window fingerprint.
func (p *Profile) window() uint16 {
	if p.TCPWindow == 0 {
		return 65535
	}
	return p.TCPWindow
}

// canaryPort returns the port fingerprinting canaries probe.
func (p *Profile) canaryPort() uint16 {
	if p.CanaryPort == 0 {
		return 80
	}
	return p.CanaryPort
}

// canaryTimeout returns how long a canary waits for its SYN-ACK.
func (p *Profile) canaryTimeout() time.Duration {
	if p.CanaryTimeoutMS <= 0 {
		return 2 * time.Second
	}
	return time.Duration(p.CanaryTimeoutMS) * time.Millisecond
}

// fingerprintThreshold returns the consecutive-silence count at which
// the guest concludes it is jailed.
func (p *Profile) fingerprintThreshold() int {
	if p.FingerprintThreshold <= 0 {
		return 3
	}
	return p.FingerprintThreshold
}

// c2Port returns the beacon destination port.
func (p *Profile) c2Port() uint16 {
	if p.C2Port == 0 {
		return 443
	}
	return p.C2Port
}

// beaconPeriod returns the C2 beacon interval.
func (p *Profile) beaconPeriod() time.Duration {
	if p.BeaconPeriodMS <= 0 {
		return 30 * time.Second
	}
	return time.Duration(p.BeaconPeriodMS) * time.Millisecond
}

// service returns the spec listening on (proto, port), or nil.
func (p *Profile) service(proto netsim.Proto, port uint16) *ServiceSpec {
	for i := range p.Services {
		if p.Services[i].Proto == proto && p.Services[i].Port == port {
			return &p.Services[i]
		}
	}
	return nil
}

// vulnerable returns the vulnerable service spec, if any.
func (p *Profile) vulnerable() *ServiceSpec {
	for i := range p.Services {
		if p.Services[i].Vulnerable {
			return &p.Services[i]
		}
	}
	return nil
}

// openPort reports whether the guest listens on (proto, port).
func (p *Profile) openPort(proto netsim.Proto, port uint16) bool {
	for i := range p.Services {
		if p.Services[i].Proto == proto && p.Services[i].Port == port {
			return true
		}
	}
	return false
}

// ExploitPayload builds the wire payload that compromises profile p's
// vulnerable service, tagging it with the sender's infection generation
// so chain depth is measurable end to end. It returns nil if p has no
// vulnerability.
func (p *Profile) ExploitPayload(generation int) []byte {
	v := p.vulnerable()
	if v == nil {
		return nil
	}
	if generation < 0 || generation > 255 {
		generation = 255
	}
	out := make([]byte, 0, len(v.ExploitSig)+1)
	out = append(out, v.ExploitSig...)
	return append(out, byte(generation))
}

// parseGeneration extracts the generation tag from an exploit payload.
func parseGeneration(sig, payload []byte) int {
	if len(payload) > len(sig) {
		return int(payload[len(sig)])
	}
	return 0
}

// Sender transmits a packet originated by the guest. The farm wires this
// to the host's uplink toward the gateway.
type Sender func(pkt *netsim.Packet)

// TargetPicker chooses a scan destination for an infected guest.
type TargetPicker func(r *sim.RNG) netsim.Addr

// Hooks are observation points the farm and experiments attach to.
type Hooks struct {
	// OnInfected fires when the guest transitions to infected.
	OnInfected func(in *Instance)
	// Metrics receives deception telemetry (canaries, beacons,
	// fingerprint events). Nil disables, at nil-handle cost.
	Metrics *Instruments
}

// Instruments are the guest-side live telemetry handles, shared across
// every instance the farm runs (the registry's atomics do the
// aggregation). All handles are nil-safe, so a zero Instruments is a
// valid telemetry-off value.
type Instruments struct {
	Canaries     *metrics.Counter // guest_canaries_total
	Beacons      *metrics.Counter // guest_beacons_total
	Fingerprints *metrics.Counter // guest_fingerprints_total
	Deception    *metrics.Hist    // guest_deception_actions: attacker actions executed before going quiet
}

// NewInstruments registers the guest telemetry series on m (nil m
// yields nil-handle no-op instruments).
func NewInstruments(m *metrics.Registry) *Instruments {
	return &Instruments{
		Canaries:     m.Counter("guest_canaries_total"),
		Beacons:      m.Counter("guest_beacons_total"),
		Fingerprints: m.Counter("guest_fingerprints_total"),
		Deception:    m.Hist("guest_deception_actions"),
	}
}

// Stats counts guest activity.
type Stats struct {
	PacketsIn        uint64
	RepliesOut       uint64
	ScansOut         uint64
	PagesDirty       uint64 // page-touch operations issued
	ExploitHits      uint64 // exploit payloads received while already infected
	ConnsAccepted    uint64 // inbound SYNs that created connection state
	ConnsEstablished uint64 // handshakes completed by the remote
	ConnsClosed      uint64 // graceful FIN teardowns
	ExploitsSent     uint64 // client-side dialogues that delivered payload
	AppResponses     uint64 // application-layer responses served
	DNSQueries       uint64 // lookups issued (second-stage resolution)
	DNSResponses     uint64 // answers consumed
	Stage2Fetches    uint64 // second-stage fetch connections opened
	CanariesOut      uint64 // fingerprinting probes issued
	BeaconsOut       uint64 // C2 beacons issued
	Fingerprinted    uint64 // guests that concluded they are jailed and went quiet
}

// Instance is one running guest bound to a VM.
type Instance struct {
	K       *sim.Kernel
	VM      *vmm.VM
	Profile *Profile
	IP      netsim.Addr

	Infected   bool
	InfectedAt sim.Time
	// Generation is the infection chain depth: 0 for never-infected, 1
	// for guests hit by the original attacker, 2 for guests hit by a
	// generation-1 guest, and so on.
	Generation int

	send    Sender
	pick    TargetPicker
	hooks   Hooks
	inst    *Instruments
	rng     *sim.RNG
	stats   Stats
	stopped bool
	ipid    uint16
	conns   *connTable
	tcpSeen uint64

	// dnsPending is the outstanding second-stage lookup ID (0 = none).
	dnsPending uint16

	// Fingerprinting state: consecutive unanswered canaries, whether
	// the guest has concluded it is jailed, and the attacker actions
	// (scans, canaries, beacons) executed so far — the deception
	// survival clock.
	suspicion int
	quiet     bool
	actions   uint64
}

// New binds a guest instance to a VM. send must be non-nil; pick may be
// nil if the profile never scans.
func New(k *sim.Kernel, vm *vmm.VM, profile *Profile, send Sender, pick TargetPicker, hooks Hooks) *Instance {
	if send == nil {
		panic("guest: nil sender")
	}
	inst := hooks.Metrics
	if inst == nil {
		inst = &Instruments{}
	}
	return &Instance{
		K: k, VM: vm, Profile: profile, IP: vm.IP,
		send: send, pick: pick, hooks: hooks, inst: inst,
		rng:   k.Stream("guest").Fork(vm.IP.String()),
		conns: newConnTable(),
	}
}

// Stats returns a copy of the counters.
func (in *Instance) Stats() Stats { return in.stats }

// Quiet reports whether the guest has fingerprinted the farm and shut
// its attacker behaviour down.
func (in *Instance) Quiet() bool { return in.quiet }

// Start begins the guest's memory workload: an initial burst of dirty
// pages followed by a steady touch process.
func (in *Instance) Start() {
	for i := 0; i < in.Profile.InitialBurstPages; i++ {
		in.touchPage()
	}
	in.scheduleTouch()
}

// Stop halts background activity (the VM is being reclaimed).
func (in *Instance) Stop() { in.stopped = true }

func (in *Instance) scheduleTouch() {
	if in.Profile.TouchRatePerSec <= 0 {
		return
	}
	gap := time.Duration(in.rng.Exp(1e9 / in.Profile.TouchRatePerSec))
	in.K.After(gap, func(sim.Time) {
		if in.stopped || in.VM.State == vmm.StateDead {
			return
		}
		if in.VM.State == vmm.StateRunning {
			in.touchPage()
		}
		// Paused VMs make no progress but resume where they left off.
		in.scheduleTouch()
	})
}

func (in *Instance) touchPage() {
	p := in.Profile
	resident := int(in.VM.Image.ResidentPages)
	if resident == 0 {
		return
	}
	ws := p.WorkingSetPages
	if ws <= 0 || ws > resident {
		ws = resident
	}
	var vpn uint64
	if p.WidePageProb > 0 && in.rng.Bool(p.WidePageProb) {
		vpn = uint64(in.rng.Intn(resident))
	} else {
		vpn = uint64(in.rng.Intn(ws))
	}
	off := in.rng.Intn(mem.PageSize - 8)
	var buf [8]byte
	v := in.rng.Uint64()
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	in.VM.WriteMemory(vpn, off, buf[:])
	in.stats.PagesDirty++
	in.VM.Touch(in.K.Now())
}
