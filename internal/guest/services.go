package guest

import (
	"bytes"
	"fmt"

	"potemkin/internal/netsim"
)

// Application-layer responders. A honeypot that SYN-ACKs but serves
// nothing is trivially fingerprinted; these responders parse just
// enough of each request to answer the way the advertised software
// would, so banner grabs and simple probes see a live machine.

// serveApp dispatches a data payload to the service's application
// responder. For TCP, c carries sequence state so the response rides
// the established connection; for UDP c is nil.
func (in *Instance) serveApp(c *tcpConn, pkt *netsim.Packet) {
	svc := in.Profile.service(pkt.Proto, pkt.DstPort)
	if svc == nil || svc.App == AppNone {
		return
	}
	var resp []byte
	switch svc.App {
	case AppHTTP:
		resp = httpResponse(pkt.Payload)
	case AppSMB:
		resp = smbResponse(pkt.Payload)
	case AppSMTP:
		resp = smtpResponse(pkt.Payload)
	case AppSSH:
		resp = sshResponse(pkt.Payload)
	}
	if resp == nil {
		return
	}
	in.stats.AppResponses++
	if pkt.Proto == netsim.ProtoTCP && c != nil {
		in.sendSegment(pkt.Src, pkt.DstPort, pkt.SrcPort,
			c.sndNxt, c.rcvNxt, netsim.FlagACK|netsim.FlagPSH, resp)
		c.sndNxt += uint32(len(resp))
		return
	}
	in.reply(netsim.UDPDatagram(in.IP, pkt.Src, pkt.DstPort, pkt.SrcPort, resp))
}

// httpResponse answers an HTTP/1.x request. GET and HEAD get 200 with
// an IIS-flavoured banner; anything else recognizable gets 405; garbage
// gets 400 — exactly the graduation a scanner checks for.
func httpResponse(req []byte) []byte {
	line := req
	if i := bytes.IndexByte(line, '\r'); i >= 0 {
		line = line[:i]
	} else if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	fields := bytes.Fields(line)
	if len(fields) < 2 {
		return []byte("HTTP/1.1 400 Bad Request\r\nServer: Microsoft-IIS/5.1\r\nContent-Length: 0\r\n\r\n")
	}
	method := string(fields[0])
	switch method {
	case "GET", "HEAD":
		body := "<html><body>It works!</body></html>"
		if method == "HEAD" {
			body = ""
		}
		return []byte(fmt.Sprintf(
			"HTTP/1.1 200 OK\r\nServer: Microsoft-IIS/5.1\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n%s",
			len("<html><body>It works!</body></html>"), body))
	case "POST", "PUT", "DELETE", "OPTIONS", "TRACE":
		return []byte("HTTP/1.1 405 Method Not Allowed\r\nServer: Microsoft-IIS/5.1\r\nAllow: GET, HEAD\r\nContent-Length: 0\r\n\r\n")
	default:
		return []byte("HTTP/1.1 400 Bad Request\r\nServer: Microsoft-IIS/5.1\r\nContent-Length: 0\r\n\r\n")
	}
}

// smbMagic is the SMB protocol identifier (0xFF "SMB").
var smbMagic = []byte{0xff, 'S', 'M', 'B'}

// smbResponse answers an SMB negotiate-protocol request with a
// negotiate response (same command byte, status success), which is all
// the era's scanners checked before firing exploits.
func smbResponse(req []byte) []byte {
	// NetBIOS session header (4 bytes) may precede the SMB header.
	body := req
	if len(body) >= 4 && body[0] == 0x00 {
		body = body[4:]
	}
	if len(body) < 8 || !bytes.Equal(body[:4], smbMagic) {
		return nil // not SMB: a real server just hangs up; we stay silent
	}
	cmd := body[4]
	resp := make([]byte, 36)
	resp[0] = 0x00 // NetBIOS session message
	resp[3] = 32   // length
	copy(resp[4:], smbMagic)
	resp[8] = cmd
	// status bytes 9..12 zero = STATUS_SUCCESS; flags bit 7 = reply
	resp[13] = 0x80
	return resp
}

// smtpResponse speaks just enough SMTP for a HELO/EHLO exchange.
func smtpResponse(req []byte) []byte {
	verb := req
	if i := bytes.IndexAny(verb, " \r\n"); i >= 0 {
		verb = verb[:i]
	}
	switch string(bytes.ToUpper(verb)) {
	case "HELO", "EHLO":
		return []byte("250 mail.corp.example Hello\r\n")
	case "MAIL", "RCPT":
		return []byte("250 OK\r\n")
	case "DATA":
		return []byte("354 Start mail input\r\n")
	case "QUIT":
		return []byte("221 Bye\r\n")
	default:
		return []byte("502 Command not implemented\r\n")
	}
}

// sshResponse sends the version banner on any client bytes, as sshd
// does when the client speaks first.
func sshResponse([]byte) []byte {
	return []byte("SSH-2.0-OpenSSH_3.9p1\r\n")
}
