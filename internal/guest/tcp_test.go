package guest

import (
	"bytes"
	"strings"
	"testing"

	"potemkin/internal/netsim"
)

// handshake completes a 3-way handshake from a remote client and
// returns the guest's SYN-ACK.
func handshake(t *testing.T, r *rig, src netsim.Addr, srcPort, dstPort uint16) *netsim.Packet {
	t.Helper()
	r.out = nil
	r.deliver(netsim.TCPSyn(src, r.in.IP, srcPort, dstPort, 1000))
	if len(r.out) != 1 {
		t.Fatalf("SYN got %d replies", len(r.out))
	}
	synack := r.out[0]
	if synack.Flags != netsim.FlagSYN|netsim.FlagACK {
		t.Fatalf("expected SYN-ACK, got %s", synack)
	}
	ack := &netsim.Packet{
		Src: src, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: srcPort, DstPort: dstPort,
		Seq: 1001, Ack: synack.Seq + 1, Flags: netsim.FlagACK,
	}
	r.deliver(ack)
	return synack
}

func TestThreeWayHandshakeEstablishes(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	handshake(t, r, 6, 1234, 445)
	if r.in.Stats().ConnsEstablished != 1 {
		t.Errorf("ConnsEstablished = %d", r.in.Stats().ConnsEstablished)
	}
	if r.in.Conns() != 1 {
		t.Errorf("Conns = %d", r.in.Conns())
	}
}

func TestRetransmittedSynGetsSameSynAck(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.deliver(netsim.TCPSyn(6, r.in.IP, 1234, 445, 1000))
	first := r.out[0]
	r.deliver(netsim.TCPSyn(6, r.in.IP, 1234, 445, 1000))
	second := r.out[1]
	if first.Seq != second.Seq {
		t.Errorf("retransmitted SYN got different ISN: %d vs %d", first.Seq, second.Seq)
	}
	if r.in.Conns() != 1 {
		t.Errorf("duplicate SYN created extra connection state: %d", r.in.Conns())
	}
}

func TestDataSegmentAckedWithSequence(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	synack := handshake(t, r, 6, 1234, 80)
	r.out = nil
	data := &netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80,
		Seq: 1001, Ack: synack.Seq + 1,
		Flags:   netsim.FlagACK | netsim.FlagPSH,
		Payload: []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
	}
	r.deliver(data)
	if len(r.out) < 1 {
		t.Fatal("no replies to data")
	}
	ack := r.out[0]
	if ack.Flags&netsim.FlagACK == 0 {
		t.Errorf("first reply not an ACK: %s", ack)
	}
	wantAck := uint32(1001 + len(data.Payload))
	if ack.Ack != wantAck {
		t.Errorf("ack = %d, want %d (sequence tracking)", ack.Ack, wantAck)
	}
}

func TestOutOfOrderDataNotAcked(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	synack := handshake(t, r, 6, 1234, 80)
	r.out = nil
	data := &netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80,
		Seq: 5000, Ack: synack.Seq + 1, // wrong sequence
		Flags:   netsim.FlagACK | netsim.FlagPSH,
		Payload: []byte("x"),
	}
	r.deliver(data)
	if len(r.out) != 0 {
		t.Errorf("out-of-order data produced %d replies", len(r.out))
	}
}

func TestFinTeardown(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	synack := handshake(t, r, 6, 1234, 80)
	r.out = nil
	fin := &netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80,
		Seq: 1001, Ack: synack.Seq + 1,
		Flags: netsim.FlagFIN | netsim.FlagACK,
	}
	r.deliver(fin)
	if len(r.out) != 1 || r.out[0].Flags&netsim.FlagFIN == 0 {
		t.Fatalf("expected FIN-ACK, got %v", r.out)
	}
	finack := r.out[0]
	// Final ACK releases the connection.
	last := &netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80,
		Seq: 1002, Ack: finack.Seq + 1, Flags: netsim.FlagACK,
	}
	r.deliver(last)
	if r.in.Conns() != 0 {
		t.Errorf("connection not released: %d", r.in.Conns())
	}
	if r.in.Stats().ConnsClosed != 1 {
		t.Errorf("ConnsClosed = %d", r.in.Stats().ConnsClosed)
	}
}

func TestRSTClearsConnection(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	handshake(t, r, 6, 1234, 80)
	rst := &netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80, Seq: 1001, Flags: netsim.FlagRST,
	}
	r.deliver(rst)
	if r.in.Conns() != 0 {
		t.Errorf("RST did not clear connection: %d", r.in.Conns())
	}
}

func TestStrayAckGetsRST(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	stray := &netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: 80, Seq: 9, Ack: 99, Flags: netsim.FlagACK,
	}
	r.deliver(stray)
	if len(r.out) != 1 || r.out[0].Flags&netsim.FlagRST == 0 {
		t.Errorf("stray ACK: %v", r.out)
	}
}

func TestConnTablePrunesIdle(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	r.deliver(netsim.TCPSyn(6, r.in.IP, 1000, 445, 1))
	if r.in.Conns() != 1 {
		t.Fatal("no connection")
	}
	// 5 minutes of silence, then a burst of packets to trigger the
	// amortized reaper.
	r.k.RunFor(5 * 60 * 1e9)
	for i := 0; i < 70; i++ {
		r.deliver(netsim.TCPSyn(7, r.in.IP, uint16(2000+i), 80, 1))
	}
	// Exactly the 70 fresh connections remain: the stale one was reaped.
	if got := r.in.Conns(); got != 70 {
		t.Errorf("Conns = %d, want 70 (stale connection reaped)", got)
	}
}

func TestConnTableEvictsOldest(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	for i := 0; i < maxConns+10; i++ {
		r.deliver(netsim.TCPSyn(netsim.Addr(100+i), r.in.IP, uint16(2000+i), 445, 1))
	}
	if got := r.in.Conns(); got != maxConns {
		t.Errorf("Conns = %d, want %d", got, maxConns)
	}
}

func TestFullDialogueExploitChain(t *testing.T) {
	// Attacker guest uses a full handshake; victim guest gets infected
	// only after the dialogue completes.
	prof := WindowsXP()
	prof.FullDialogue = true
	attacker := newRig(t, prof, Hooks{})
	victim := newRig(t, WindowsXP(), Hooks{})
	attacker.in.ForceInfect(0)

	// Pump packets between the two by hand: attacker scans, we route
	// its probes to the victim and the victim's replies back.
	attacker.k.RunFor(500 * 1e6) // 500ms: at 20 scans/s expect ~10 SYNs
	if len(attacker.out) == 0 {
		t.Fatal("no scans emitted")
	}
	syn := attacker.out[0]
	if syn.Flags != netsim.FlagSYN {
		t.Fatalf("dialogue scan should be bare SYN, got %s", syn)
	}
	if len(syn.Payload) != 0 {
		t.Fatal("dialogue SYN carries payload")
	}
	// Deliver SYN to victim (retarget to victim's IP).
	syn2 := syn.Clone()
	syn2.Dst = victim.in.IP
	victim.deliver(syn2)
	synack := victim.out[len(victim.out)-1]
	if synack.Flags != netsim.FlagSYN|netsim.FlagACK {
		t.Fatalf("victim reply: %s", synack)
	}
	// Route SYN-ACK back to attacker, faking the source as the original
	// scan target so the attacker's connection key matches.
	back := synack.Clone()
	back.Src = syn.Dst
	back.Dst = attacker.in.IP
	attacker.out = nil
	attacker.deliver(back)
	if len(attacker.out) != 1 {
		t.Fatalf("attacker sent %d packets after SYN-ACK", len(attacker.out))
	}
	final := attacker.out[0]
	if final.Flags&netsim.FlagPSH == 0 || len(final.Payload) == 0 {
		t.Fatalf("dialogue completion should carry exploit: %s", final)
	}
	// Deliver exploit to victim.
	hit := final.Clone()
	hit.Src = synack.Dst
	hit.Dst = victim.in.IP
	victim.deliver(hit)
	if !victim.in.Infected {
		t.Error("victim not infected after full dialogue")
	}
	if attacker.in.Stats().ExploitsSent != 1 {
		t.Errorf("ExploitsSent = %d", attacker.in.Stats().ExploitsSent)
	}
}

// --- application responders ---

func establishAndSend(t *testing.T, r *rig, port uint16, payload []byte) []*netsim.Packet {
	t.Helper()
	synack := handshake(t, r, 6, 1234, port)
	r.out = nil
	r.deliver(&netsim.Packet{
		Src: 6, Dst: r.in.IP, Proto: netsim.ProtoTCP, TTL: 64,
		SrcPort: 1234, DstPort: port,
		Seq: 1001, Ack: synack.Seq + 1,
		Flags:   netsim.FlagACK | netsim.FlagPSH,
		Payload: payload,
	})
	return r.out
}

func TestHTTPResponder(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	out := establishAndSend(t, r, 80, []byte("GET / HTTP/1.1\r\nHost: a\r\n\r\n"))
	if len(out) != 2 {
		t.Fatalf("want ACK + response, got %d", len(out))
	}
	resp := string(out[1].Payload)
	if !strings.HasPrefix(resp, "HTTP/1.1 200") || !strings.Contains(resp, "IIS") {
		t.Errorf("response = %q", resp)
	}
	// Response sequence follows the SYN-ACK's ISN+1.
	if out[1].Seq == 0 {
		t.Error("response sequence not tracked")
	}
}

func TestHTTPResponderMethods(t *testing.T) {
	cases := []struct {
		req  string
		want string
	}{
		{"POST /x HTTP/1.1\r\n\r\n", "405"},
		{"BOGUS\r\n", "400"},
		{"HEAD / HTTP/1.0\r\n\r\n", "200"},
	}
	for _, c := range cases {
		r := newRig(t, WindowsXP(), Hooks{})
		out := establishAndSend(t, r, 80, []byte(c.req))
		if len(out) != 2 || !strings.Contains(string(out[1].Payload), c.want) {
			t.Errorf("%q: got %v", c.req, out)
		}
	}
}

func TestSMBResponder(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	// NetBIOS header + SMB negotiate (command 0x72).
	req := append([]byte{0, 0, 0, 32}, 0xff, 'S', 'M', 'B', 0x72)
	req = append(req, make([]byte, 27)...)
	out := establishAndSend(t, r, 445, req)
	if len(out) != 2 {
		t.Fatalf("want ACK + SMB response, got %d", len(out))
	}
	resp := out[1].Payload
	if !bytes.Equal(resp[4:8], smbMagic) || resp[8] != 0x72 {
		t.Errorf("SMB response = %x", resp)
	}
}

func TestSMBResponderIgnoresGarbage(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	out := establishAndSend(t, r, 445, []byte("not smb at all"))
	// Just the ACK; no app response.
	if len(out) != 1 {
		t.Errorf("garbage SMB got %d replies", len(out))
	}
}

func TestSMTPResponder(t *testing.T) {
	r := newRig(t, LinuxServer(), Hooks{})
	out := establishAndSend(t, r, 25, []byte("EHLO scanner\r\n"))
	if len(out) != 2 || !strings.HasPrefix(string(out[1].Payload), "250") {
		t.Errorf("SMTP: %v", out)
	}
	r2 := newRig(t, LinuxServer(), Hooks{})
	out2 := establishAndSend(t, r2, 25, []byte("WHAT\r\n"))
	if len(out2) != 2 || !strings.HasPrefix(string(out2[1].Payload), "502") {
		t.Errorf("SMTP unknown verb: %v", out2)
	}
}

func TestSSHBanner(t *testing.T) {
	r := newRig(t, LinuxServer(), Hooks{})
	out := establishAndSend(t, r, 22, []byte("SSH-2.0-scanner\r\n"))
	if len(out) != 2 || !strings.HasPrefix(string(out[1].Payload), "SSH-2.0-OpenSSH") {
		t.Errorf("SSH: %v", out)
	}
}

func TestStackFingerprints(t *testing.T) {
	winxp := newRig(t, WindowsXP(), Hooks{})
	winxp.deliver(netsim.TCPSyn(6, winxp.in.IP, 1234, 445, 1))
	if got := winxp.out[0]; got.TTL != 128 || got.Window != 64240 {
		t.Errorf("winxp fingerprint: ttl=%d win=%d", got.TTL, got.Window)
	}
	linux := newRig(t, LinuxServer(), Hooks{})
	linux.deliver(netsim.TCPSyn(6, linux.in.IP, 1234, 22, 1))
	if got := linux.out[0]; got.TTL != 64 || got.Window != 5840 {
		t.Errorf("linux fingerprint: ttl=%d win=%d", got.TTL, got.Window)
	}
	// ICMP echo replies carry the profile TTL too.
	linux.out = nil
	linux.deliver(netsim.ICMPEcho(6, linux.in.IP, true))
	if got := linux.out[0]; got.TTL != 64 {
		t.Errorf("icmp ttl = %d", got.TTL)
	}
}

func TestAppResponsesCounted(t *testing.T) {
	r := newRig(t, WindowsXP(), Hooks{})
	establishAndSend(t, r, 80, []byte("GET / HTTP/1.1\r\n\r\n"))
	if r.in.Stats().AppResponses != 1 {
		t.Errorf("AppResponses = %d", r.in.Stats().AppResponses)
	}
}
