package vmm

import (
	"bytes"
	"testing"
)

// FuzzReadCheckpoint: checkpoint files come from disk and may be
// corrupted or hostile; the reader must never panic or over-allocate
// unboundedly on garbage.
func FuzzReadCheckpoint(f *testing.F) {
	ck := &Checkpoint{
		ImageName:  "winxp",
		IP:         0x0a050102,
		Pages:      map[uint64][]byte{3: make([]byte, 4096)},
		DiskBlocks: map[uint64]byte{9: 0x66},
	}
	var buf bytes.Buffer
	ck.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("POTK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted checkpoints round trip.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadCheckpoint(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if again.ImageName != got.ImageName || again.IP != got.IP ||
			len(again.Pages) != len(got.Pages) || len(again.DiskBlocks) != len(got.DiskBlocks) {
			t.Fatal("round trip diverged")
		}
	})
}
