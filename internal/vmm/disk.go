package vmm

import "fmt"

// DiskBlockSize is the block granularity of the copy-on-write virtual
// disk, in bytes.
const DiskBlockSize = 64 * 1024

// DiskImage is an immutable block image an Overlay can sit on: either
// a synthetic BaseDisk or a FrozenOverlay (a snapshotted VM's disk).
type DiskImage interface {
	// Blocks returns the image size in blocks.
	Blocks() uint64
	// BlockByte returns the first byte of a block (the substrate tracks
	// per-block identity, not 64 KiB of content).
	BlockByte(block uint64) byte
}

// BaseDisk is an immutable disk image shared by every clone. Content is
// synthetic (seed-derived) and materialized only when read, mirroring
// the memory substrate's pattern frames.
type BaseDisk struct {
	Name      string
	NumBlocks uint64
	seed      uint64
}

// NewBaseDisk creates a base image of numBlocks blocks.
func NewBaseDisk(name string, numBlocks, seed uint64) *BaseDisk {
	return &BaseDisk{Name: name, NumBlocks: numBlocks, seed: seed}
}

// Blocks implements DiskImage.
func (d *BaseDisk) Blocks() uint64 { return d.NumBlocks }

// BlockByte implements DiskImage.
func (d *BaseDisk) BlockByte(block uint64) byte {
	x := d.seed ^ (block+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	return byte(x)
}

// FrozenOverlay is a snapshotted VM disk: its base image plus the
// writes the VM had made, frozen immutable. New overlays stack on top,
// which is how a configured-and-snapshotted reference VM becomes the
// base for a whole farm.
type FrozenOverlay struct {
	base  DiskImage
	owned map[uint64]byte
}

// Blocks implements DiskImage.
func (f *FrozenOverlay) Blocks() uint64 { return f.base.Blocks() }

// BlockByte implements DiskImage.
func (f *FrozenOverlay) BlockByte(block uint64) byte {
	if v, ok := f.owned[block]; ok {
		return v
	}
	return f.base.BlockByte(block)
}

// OwnedBlocks returns how many blocks the frozen layer carries.
func (f *FrozenOverlay) OwnedBlocks() int { return len(f.owned) }

// OverlayStats counts copy-on-write disk activity.
type OverlayStats struct {
	Reads       uint64
	Writes      uint64
	BlocksOwned int // blocks copied into the overlay
}

// Overlay is one VM's copy-on-write view of a DiskImage: reads fall
// through to the base until a block is written, after which the VM owns
// a private copy of that block. Only ownership (not 64 KiB of bytes) is
// tracked; the experiments need block counts, and correctness is
// verified through ReadBlockByte.
type Overlay struct {
	Base  DiskImage
	owned map[uint64]byte // block -> first byte of private content
	stats OverlayStats
}

// NewOverlay attaches a fresh overlay to base. This is O(1): the cheap
// attach is what makes disk flash-cloning fast.
func NewOverlay(base DiskImage) *Overlay {
	return &Overlay{Base: base, owned: make(map[uint64]byte)}
}

// Freeze turns the overlay's current state into an immutable DiskImage
// that new overlays can stack on — the disk half of snapshotting a
// configured VM. The overlay remains usable; the frozen layer copies
// its block set.
func (o *Overlay) Freeze() *FrozenOverlay {
	owned := make(map[uint64]byte, len(o.owned))
	for k, v := range o.owned {
		owned[k] = v
	}
	return &FrozenOverlay{base: o.Base, owned: owned}
}

func (o *Overlay) checkBlock(block uint64) {
	if block >= o.Base.Blocks() {
		panic(fmt.Sprintf("vmm: block %d outside disk of %d blocks", block, o.Base.Blocks()))
	}
}

// ReadBlockByte returns the first byte of a block as the VM sees it.
func (o *Overlay) ReadBlockByte(block uint64) byte {
	o.checkBlock(block)
	o.stats.Reads++
	if b, ok := o.owned[block]; ok {
		return b
	}
	return o.Base.BlockByte(block)
}

// WriteByte writes the first byte of a block, copying the block into the
// overlay if the VM does not own it yet. It reports whether a copy
// happened.
func (o *Overlay) WriteBlockByte(block uint64, val byte) bool {
	o.checkBlock(block)
	o.stats.Writes++
	_, owned := o.owned[block]
	o.owned[block] = val
	if !owned {
		o.stats.BlocksOwned = len(o.owned)
		return true
	}
	return false
}

// OwnedBlocks returns the number of privately-owned blocks — the VM's
// incremental disk cost.
func (o *Overlay) OwnedBlocks() int { return len(o.owned) }

// EachOwnedBlock visits every privately-owned block with its first
// byte, in unspecified order (checkpoint enumeration).
func (o *Overlay) EachOwnedBlock(fn func(block uint64, firstByte byte)) {
	for b, v := range o.owned {
		fn(b, v)
	}
}

// OwnedBytes is OwnedBlocks in bytes.
func (o *Overlay) OwnedBytes() uint64 { return uint64(len(o.owned)) * DiskBlockSize }

// Stats returns a copy of the overlay counters.
func (o *Overlay) Stats() OverlayStats {
	s := o.stats
	s.BlocksOwned = len(o.owned)
	return s
}
