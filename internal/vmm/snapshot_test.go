package vmm

import (
	"bytes"
	"testing"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// bootAndConfigure full-boots a reference VM and "configures" it with
// recognizable memory and disk writes.
func bootAndConfigure(t *testing.T, k *sim.Kernel, h *VMHost) *VM {
	t.Helper()
	vm, err := h.FullBoot("winxp", 0x0a000001, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	vm.WriteMemory(7, 0, []byte("configured service state"))
	vm.Disk.WriteBlockByte(5, 0xC0)
	return vm
}

func TestSnapshotVMAndCloneFleet(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	ref := bootAndConfigure(t, k, h)

	img, err := h.SnapshotVM(ref.ID, "winxp-configured")
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "winxp-configured" || img.ResidentPages == 0 {
		t.Fatalf("image: %+v", img)
	}

	// Flash-clone a fleet off the snapshot; each clone sees the
	// configured state in memory and on disk.
	for i := 0; i < 5; i++ {
		clone, err := h.FlashClone("winxp-configured", netsim.Addr(i+10), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := clone.Mem.Read(7, 0, 24); string(got) != "configured service state" {
			t.Fatalf("clone %d memory = %q", i, got)
		}
		if clone.Disk.ReadBlockByte(5) != 0xC0 {
			t.Fatalf("clone %d disk missing configuration", i)
		}
		// Pristine image content beyond the configuration is intact.
		if !bytes.Equal(clone.Mem.Read(100, 0, 32), ref.Mem.Read(100, 0, 32)) {
			t.Fatalf("clone %d diverges from reference", i)
		}
	}
	k.Run()

	// Clone writes never leak back to the reference or the image.
	c, _ := h.FlashClone("winxp-configured", 99, nil)
	c.WriteMemory(7, 0, []byte("tampered"))
	c.Disk.WriteBlockByte(5, 0xEE)
	if got := ref.Mem.Read(7, 0, 8); string(got) != "configu"+"r" {
		t.Errorf("reference memory mutated: %q", got)
	}
	c2, _ := h.FlashClone("winxp-configured", 100, nil)
	if got := c2.Mem.Read(7, 0, 10); string(got) != "configured" {
		t.Errorf("image mutated: %q", got)
	}
	if c2.Disk.ReadBlockByte(5) != 0xC0 {
		t.Error("image disk mutated")
	}
}

func TestSnapshotSourceKeepsRunning(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	ref := bootAndConfigure(t, k, h)
	if _, err := h.SnapshotVM(ref.ID, "snap"); err != nil {
		t.Fatal(err)
	}
	// Source writes after the snapshot CoW away from the image.
	ref.WriteMemory(7, 0, []byte("drifted"))
	clone, _ := h.FlashClone("snap", 50, nil)
	if got := clone.Mem.Read(7, 0, 10); string(got) != "configured" {
		t.Errorf("post-snapshot source write leaked into image: %q", got)
	}
}

func TestSnapshotRejectsClones(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	clone, err := h.FlashClone("winxp", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if _, err := h.SnapshotVM(clone.ID, "bad"); err == nil {
		t.Error("snapshot of a clone accepted")
	}
}

func TestSnapshotRejectsNonRunning(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm, err := h.FullBoot("winxp", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Still booting.
	if _, err := h.SnapshotVM(vm.ID, "bad"); err == nil {
		t.Error("snapshot of a booting VM accepted")
	}
	if _, err := h.SnapshotVM(9999, "bad"); err == nil {
		t.Error("snapshot of a missing VM accepted")
	}
}

func TestFullBootRejectsSnapshotImages(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	ref := bootAndConfigure(t, k, h)
	if _, err := h.SnapshotVM(ref.ID, "snap"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.FullBoot("snap", 2, nil); err == nil {
		t.Error("full boot from a snapshot image accepted (content not reproducible)")
	}
}

func TestFrozenOverlayStacking(t *testing.T) {
	base := NewBaseDisk("img", 100, 7)
	o1 := NewOverlay(base)
	o1.WriteBlockByte(3, 0x11)
	frozen := o1.Freeze()
	if frozen.OwnedBlocks() != 1 || frozen.Blocks() != 100 {
		t.Fatalf("frozen: %d blocks owned, %d total", frozen.OwnedBlocks(), frozen.Blocks())
	}
	// Post-freeze writes to o1 do not alter the frozen layer.
	o1.WriteBlockByte(3, 0x99)
	if frozen.BlockByte(3) != 0x11 {
		t.Error("freeze aliased live overlay")
	}
	// Second-level overlay sees frozen content and CoWs independently.
	o2 := NewOverlay(frozen)
	if o2.ReadBlockByte(3) != 0x11 {
		t.Error("stacked overlay missed frozen block")
	}
	if o2.ReadBlockByte(4) != base.BlockByte(4) {
		t.Error("stacked overlay missed base fall-through")
	}
	o2.WriteBlockByte(4, 0x22)
	if frozen.BlockByte(4) == 0x22 || base.BlockByte(4) == 0x22 {
		t.Error("stacked overlay write leaked down")
	}
}
