package vmm

import (
	"testing"
	"time"

	"potemkin/internal/mem"
	"potemkin/internal/sim"
)

func newTestHost(t *testing.T, k *sim.Kernel) *VMHost {
	t.Helper()
	cfg := DefaultHostConfig("test")
	cfg.MemoryBytes = 1 << 30
	h := NewHost(k, cfg)
	// 32 MiB image: 8192 pages, 2048 resident.
	h.RegisterImage("winxp", 8192, 2048, 512, 42)
	return h
}

func TestFlashCloneLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	var readyVM *VM
	vm, err := h.FlashClone("winxp", 0x0a000001, func(v *VM) { readyVM = v })
	if err != nil {
		t.Fatal(err)
	}
	if vm.State != StateCloning {
		t.Errorf("state = %v, want cloning", vm.State)
	}
	k.Run()
	if readyVM != vm {
		t.Fatal("ready callback not invoked with the VM")
	}
	if vm.State != StateRunning {
		t.Errorf("state = %v, want running", vm.State)
	}
	// Clone latency budget: roughly 0.4-0.6 s of modeled time.
	lat := vm.ReadyAt.Sub(vm.CreatedAt)
	if lat < 300*time.Millisecond || lat > 700*time.Millisecond {
		t.Errorf("clone latency = %v, want ~0.5s", lat)
	}
}

func TestFlashCloneSharesMemory(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	before := h.Store().FrameCount()
	var vms []*VM
	for i := 0; i < 50; i++ {
		vm, err := h.FlashClone("winxp", 0x0a000001, nil)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	if got := h.Store().FrameCount(); got != before {
		t.Errorf("cloning 50 VMs allocated %d frames", got-before)
	}
	if vms[0].PrivateBytes() != 0 {
		t.Errorf("fresh clone has %d private bytes", vms[0].PrivateBytes())
	}
}

func TestFullBootAllocatesPrivate(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	before := h.Store().FrameCount()
	vm, err := h.FullBoot("winxp", 0x0a000001, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Store().FrameCount() - before; got != 2048 {
		t.Errorf("full boot allocated %d frames, want 2048", got)
	}
	if vm.Mem.PrivatePages() != 2048 {
		t.Errorf("private pages = %d", vm.Mem.PrivatePages())
	}
	k.Run()
	if vm.State != StateRunning {
		t.Errorf("state = %v", vm.State)
	}
	if lat := vm.ReadyAt.Sub(vm.CreatedAt); lat < 10*time.Second {
		t.Errorf("full boot latency = %v, want tens of seconds", lat)
	}
}

func TestFullBootContentMatchesClone(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	cl, err := h.FlashClone("winxp", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := h.FullBoot("winxp", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, vpn := range []uint64{0, 1, 1000, 2047} {
		a := cl.Mem.Read(vpn, 0, 64)
		b := fb.Mem.Read(vpn, 0, 64)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("page %d differs between clone and full boot", vpn)
			}
		}
	}
}

func TestCloneWriteIsolation(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	a, _ := h.FlashClone("winxp", 1, nil)
	b, _ := h.FlashClone("winxp", 2, nil)
	orig := b.Mem.Read(5, 0, 4)
	a.WriteMemory(5, 0, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	after := b.Mem.Read(5, 0, 4)
	for i := range orig {
		if orig[i] != after[i] {
			t.Fatal("write in one clone visible in another")
		}
	}
	if a.PrivateBytes() != mem.PageSize {
		t.Errorf("PrivateBytes = %d", a.PrivateBytes())
	}
	if h.Stats().CowFaults != 1 {
		t.Errorf("CowFaults = %d", h.Stats().CowFaults)
	}
}

func TestAdmissionMemoryLimit(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultHostConfig("small")
	cfg.MemoryBytes = 64 << 20 // 64 MiB
	cfg.PerVMOverheadBytes = 1 << 20
	h := NewHost(k, cfg)
	h.RegisterImage("img", 8192, 2048, 512, 1) // 8 MiB resident

	// Image itself consumes 2048 frames = 8 MiB. Each clone adds ~1 MiB
	// overhead, so roughly (64-8)/1 = ~56 clones fit.
	n := 0
	for {
		_, err := h.FlashClone("img", 1, nil)
		if err != nil {
			if err != ErrNoMemory {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
		if n > 1000 {
			t.Fatal("admission never rejected")
		}
	}
	if n < 40 || n > 60 {
		t.Errorf("admitted %d clones, want ~55", n)
	}
	if h.Stats().CloneRejects == 0 {
		t.Error("no rejects counted")
	}
}

func TestAdmissionMaxVMs(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultHostConfig("capped")
	cfg.MaxVMs = 3
	h := NewHost(k, cfg)
	h.RegisterImage("img", 1024, 128, 16, 1)
	for i := 0; i < 3; i++ {
		if _, err := h.FlashClone("img", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.FlashClone("img", 1, nil); err != ErrTooMany {
		t.Errorf("err = %v, want ErrTooMany", err)
	}
}

func TestCloneUnknownImage(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	if _, err := h.FlashClone("nope", 1, nil); err == nil {
		t.Error("unknown image accepted")
	}
}

func TestDestroyReclaimsMemory(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm, _ := h.FlashClone("winxp", 1, nil)
	k.Run()
	for i := uint64(0); i < 100; i++ {
		vm.WriteMemory(i, 0, []byte{1})
	}
	used := h.MemoryInUse()
	h.Destroy(vm.ID)
	if h.NumVMs() != 0 {
		t.Error("VM still listed")
	}
	reclaimed := used - h.MemoryInUse()
	if want := uint64(100*mem.PageSize) + h.Cfg.PerVMOverheadBytes; reclaimed != want {
		t.Errorf("reclaimed %d, want %d", reclaimed, want)
	}
	if err := h.CheckMemoryInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDestroyMidCloneCancelsReady(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	called := false
	vm, _ := h.FlashClone("winxp", 1, func(*VM) { called = true })
	h.Destroy(vm.ID)
	k.Run()
	if called {
		t.Error("ready fired for destroyed VM")
	}
	if err := h.CheckMemoryInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDestroyUnknownIsNoop(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	h.Destroy(9999) // must not panic
}

func TestChurnInvariant(t *testing.T) {
	k := sim.NewKernel(3)
	h := newTestHost(t, k)
	r := k.Stream("churn")
	var live []*VM
	for i := 0; i < 500; i++ {
		switch {
		case len(live) == 0 || r.Bool(0.6):
			vm, err := h.FlashClone("winxp", 1, nil)
			if err == nil {
				live = append(live, vm)
			}
		default:
			i := r.Intn(len(live))
			vm := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			// Dirty some pages before death.
			for j := 0; j < r.Intn(20); j++ {
				vm.WriteMemory(uint64(r.Intn(2048)), 0, []byte{byte(j)})
			}
			h.Destroy(vm.ID)
		}
		k.RunFor(10 * time.Millisecond)
	}
	if err := h.CheckMemoryInvariants(); err != nil {
		t.Fatal(err)
	}
	h.DestroyAll()
	if err := h.CheckMemoryInvariants(); err != nil {
		t.Fatal(err)
	}
	// Only image frames + zero frame remain.
	if got := h.Store().FrameCount(); got != 2048+1 {
		t.Errorf("FrameCount = %d, want 2049", got)
	}
}

func TestStepLatencyHistograms(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	for i := 0; i < 20; i++ {
		if _, err := h.FlashClone("winxp", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	for step := CloneStep(0); step < NumCloneSteps; step++ {
		if h.StepLatency[step].Count() != 20 {
			t.Errorf("step %v count = %d", step, h.StepLatency[step].Count())
		}
	}
	if h.CloneLatency.Count() != 20 {
		t.Errorf("CloneLatency count = %d", h.CloneLatency.Count())
	}
	// Device+network steps dominate the memory-map step, as in the paper.
	if h.StepLatency[StepDeviceClone].Mean() < h.StepLatency[StepMemMap].Mean() {
		t.Error("device clone should dominate memory map clone")
	}
}

func TestOverlayDisk(t *testing.T) {
	base := NewBaseDisk("img", 100, 7)
	a := NewOverlay(base)
	b := NewOverlay(base)
	orig := a.ReadBlockByte(5)
	if copied := a.WriteBlockByte(5, orig+1); !copied {
		t.Error("first write should copy")
	}
	if copied := a.WriteBlockByte(5, orig+2); copied {
		t.Error("second write should not copy")
	}
	if a.ReadBlockByte(5) != orig+2 {
		t.Error("overlay read wrong")
	}
	if b.ReadBlockByte(5) != orig {
		t.Error("overlay write leaked to sibling")
	}
	if a.OwnedBlocks() != 1 || b.OwnedBlocks() != 0 {
		t.Errorf("owned: a=%d b=%d", a.OwnedBlocks(), b.OwnedBlocks())
	}
	if a.OwnedBytes() != DiskBlockSize {
		t.Errorf("OwnedBytes = %d", a.OwnedBytes())
	}
}

func TestOverlayBounds(t *testing.T) {
	o := NewOverlay(NewBaseDisk("img", 10, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	o.ReadBlockByte(10)
}

func TestVMIdle(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm, _ := h.FlashClone("winxp", 1, nil)
	k.Run()
	start := k.Now()
	k.RunUntil(start.Add(5 * time.Second))
	if vm.Idle(k.Now()) != 5*time.Second {
		t.Errorf("Idle = %v", vm.Idle(k.Now()))
	}
	vm.Touch(k.Now())
	if vm.Idle(k.Now()) != 0 {
		t.Errorf("Idle after touch = %v", vm.Idle(k.Now()))
	}
}

func TestPeakStats(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	a, _ := h.FlashClone("winxp", 1, nil)
	b, _ := h.FlashClone("winxp", 2, nil)
	h.Destroy(a.ID)
	h.Destroy(b.ID)
	if h.Stats().PeakVMs != 2 {
		t.Errorf("PeakVMs = %d", h.Stats().PeakVMs)
	}
	if h.Stats().Destroys != 2 || h.Stats().Clones != 2 {
		t.Errorf("stats = %+v", h.Stats())
	}
}
