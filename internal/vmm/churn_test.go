package vmm

import (
	"testing"

	"potemkin/internal/mem"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// TestChurnReusesFrameSlots churns VMs through FlashClone/Destroy and
// checks the slab frame store against the workload: slots freed by one
// generation of VMs are reused by the next (the store does not grow
// without bound), the refcount census stays exact, and a FrameID that
// survived its frame panics instead of aliasing the new tenant.
func TestChurnReusesFrameSlots(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	s := h.Store()

	var peakFrames int
	for round := 0; round < 20; round++ {
		var vms []*VM
		for i := 0; i < 8; i++ {
			vm, err := h.FlashClone("winxp", netsim.Addr(uint32(round*8+i+1)), nil)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			vms = append(vms, vm)
		}
		k.Run()
		for _, vm := range vms {
			// Diverge some pages so real frames churn, not just PTEs.
			for p := uint64(0); p < 32; p++ {
				vm.Mem.Write(p, int(p), []byte{byte(round), byte(p)})
			}
		}
		if round == 0 {
			peakFrames = s.FrameCount()
		}
		if err := h.CheckMemoryInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, vm := range vms {
			h.Destroy(vm.ID)
		}
		if err := h.CheckMemoryInvariants(); err != nil {
			t.Fatalf("round %d after destroy: %v", round, err)
		}
	}
	// Steady-state churn must not grow the frame table: every round
	// frees what it allocated, so the slab's free list absorbs the next
	// round. Allow slack for accounting frames the host keeps live.
	if got := s.FrameCount(); got > peakFrames+8 {
		t.Errorf("frame count grew across churn: %d live after, %d at first round", got, peakFrames)
	}

	// A stale FrameID from a destroyed VM's era must panic once its slot
	// is reoccupied, not silently read the new tenant.
	page := make([]byte, mem.PageSize)
	page[0] = 1
	stale := s.AllocData(page)
	s.DecRef(stale)
	vm, err := h.FlashClone("winxp", netsim.Addr(0xFFFF), nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	vm.Mem.Write(0, 0, []byte{42}) // reoccupies the freed slot
	defer func() {
		if recover() == nil {
			t.Error("stale FrameID use did not panic after slot reuse")
		}
	}()
	s.View(stale)
}
