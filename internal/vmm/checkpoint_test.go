package vmm

import (
	"bytes"
	"testing"

	"potemkin/internal/mem"
	"potemkin/internal/sim"
)

func infectedVM(t *testing.T, h *VMHost) *VM {
	t.Helper()
	vm, err := h.FlashClone("winxp", 0x0a050102, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a recognizable delta.
	vm.WriteMemory(3, 100, []byte("malware unpacked here"))
	vm.WriteMemory(1700, 0, []byte{0xde, 0xad})
	vm.Disk.WriteBlockByte(9, 0x66)
	vm.Disk.WriteBlockByte(200, 0x77)
	return vm
}

func TestCheckpointCapturesDelta(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm := infectedVM(t, h)
	ck := TakeCheckpoint(vm)
	if ck.ImageName != "winxp" || ck.IP != 0x0a050102 {
		t.Errorf("identity: %q %v", ck.ImageName, ck.IP)
	}
	if len(ck.Pages) != 2 {
		t.Errorf("pages = %d, want 2", len(ck.Pages))
	}
	if len(ck.DiskBlocks) != 2 {
		t.Errorf("blocks = %d, want 2", len(ck.DiskBlocks))
	}
	if !bytes.Contains(ck.Pages[3], []byte("malware unpacked here")) {
		t.Error("page content missing")
	}
	if ck.Bytes() != 2*mem.PageSize+2*DiskBlockSize {
		t.Errorf("Bytes = %d", ck.Bytes())
	}
}

func TestCheckpointSerializationRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm := infectedVM(t, h)
	ck := TakeCheckpoint(vm)

	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ImageName != ck.ImageName || got.IP != ck.IP {
		t.Errorf("identity: %+v", got)
	}
	if len(got.Pages) != len(ck.Pages) {
		t.Fatalf("pages = %d", len(got.Pages))
	}
	for vpn, content := range ck.Pages {
		if !bytes.Equal(got.Pages[vpn], content) {
			t.Errorf("page %d content differs", vpn)
		}
	}
	for b, v := range ck.DiskBlocks {
		if got.DiskBlocks[b] != v {
			t.Errorf("block %d = %x, want %x", b, got.DiskBlocks[b], v)
		}
	}
}

func TestCheckpointDeterministicBytes(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm := infectedVM(t, h)
	ck := TakeCheckpoint(vm)
	var a, b bytes.Buffer
	ck.WriteTo(&a)
	ck.WriteTo(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization not deterministic")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("short garbage accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(make([]byte, 64))); err != ErrBadCheckpoint {
		t.Error("bad magic accepted")
	}
}

func TestRestoreReproducesVM(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm := infectedVM(t, h)
	ck := TakeCheckpoint(vm)
	h.Destroy(vm.ID)

	restored, err := h.Restore(ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Delta pages match.
	if got := restored.Mem.Read(3, 100, 21); string(got) != "malware unpacked here" {
		t.Errorf("restored page = %q", got)
	}
	// Untouched image pages match too.
	origClone, _ := h.FlashClone("winxp", 1, nil)
	if !bytes.Equal(restored.Mem.Read(50, 0, 64), origClone.Mem.Read(50, 0, 64)) {
		t.Error("restored image pages differ")
	}
	// Disk delta.
	if restored.Disk.ReadBlockByte(9) != 0x66 {
		t.Error("disk delta lost")
	}
	// Checkpointing the restore reproduces the checkpoint.
	ck2 := TakeCheckpoint(restored)
	if len(ck2.Pages) != len(ck.Pages) || len(ck2.DiskBlocks) != len(ck.DiskBlocks) {
		t.Errorf("re-checkpoint delta differs: %d/%d pages, %d/%d blocks",
			len(ck2.Pages), len(ck.Pages), len(ck2.DiskBlocks), len(ck.DiskBlocks))
	}
	if err := h.CheckMemoryInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRestoreUnknownImageFails(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	ck := &Checkpoint{ImageName: "missing", Pages: map[uint64][]byte{}, DiskBlocks: map[uint64]byte{}}
	if _, err := h.Restore(ck, nil); err == nil {
		t.Error("restore of unknown image succeeded")
	}
}

// TestRestoreRejectsOutOfRangeDelta: a structurally valid checkpoint
// whose delta addresses pages or blocks the image doesn't have must
// fail with an error (and no leaked VM), not a panic from the memory
// or disk layer.
func TestRestoreRejectsOutOfRangeDelta(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm := infectedVM(t, h)
	base := TakeCheckpoint(vm)
	h.Destroy(vm.ID)
	before := h.NumVMs()

	cases := []struct {
		name   string
		mutate func(ck *Checkpoint)
	}{
		{"page out of range", func(ck *Checkpoint) {
			ck.Pages[1<<40] = make([]byte, mem.PageSize)
		}},
		{"short page content", func(ck *Checkpoint) {
			ck.Pages[3] = []byte{1, 2, 3}
		}},
		{"block out of range", func(ck *Checkpoint) {
			ck.DiskBlocks[1<<40] = 0xcc
		}},
	}
	for _, tc := range cases {
		ck := &Checkpoint{
			ImageName: base.ImageName, IP: base.IP,
			Pages:      map[uint64][]byte{},
			DiskBlocks: map[uint64]byte{},
		}
		for vpn, c := range base.Pages {
			ck.Pages[vpn] = c
		}
		for b, v := range base.DiskBlocks {
			ck.DiskBlocks[b] = v
		}
		tc.mutate(ck)
		if _, err := h.Restore(ck, nil); err == nil {
			t.Errorf("%s: restore succeeded", tc.name)
		}
		if h.NumVMs() != before {
			t.Errorf("%s: leaked VM (have %d, want %d)", tc.name, h.NumVMs(), before)
		}
	}
	if err := h.CheckMemoryInvariants(); err != nil {
		t.Error(err)
	}
}

// TestReadCheckpointTruncation: every proper prefix of a valid
// checkpoint errors cleanly.
func TestReadCheckpointTruncation(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm := infectedVM(t, h)
	var buf bytes.Buffer
	TakeCheckpoint(vm).WriteTo(&buf)
	enc := buf.Bytes()
	for i := 0; i < len(enc); i++ {
		if _, err := ReadCheckpoint(bytes.NewReader(enc[:i])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", i, len(enc))
		}
	}
}

// TestReadCheckpointAbsurdCounts: corrupt count fields fail fast
// instead of driving a multi-billion-iteration read loop.
func TestReadCheckpointAbsurdCounts(t *testing.T) {
	k := sim.NewKernel(1)
	h := newTestHost(t, k)
	vm, err := h.FlashClone("winxp", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	TakeCheckpoint(vm).WriteTo(&buf)
	enc := buf.Bytes()
	// Page count sits right after magic, version, name length+bytes, IP.
	off := 4 + 4 + 4 + len("winxp") + 4
	for _, v := range []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} {
		enc[off] = v
		off++
	}
	if _, err := ReadCheckpoint(bytes.NewReader(enc)); err == nil {
		t.Error("absurd page count accepted")
	}
}
