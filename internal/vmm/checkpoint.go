package vmm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"potemkin/internal/mem"
	"potemkin/internal/netsim"
)

// Checkpointing captures what makes an infected VM worth keeping: its
// *delta* from the reference image — the privately-owned memory pages
// and disk blocks the malware dirtied — plus identity metadata. Because
// the image itself is content-addressed by name/seed, a checkpoint plus
// the image reconstructs the full VM, so checkpoints are small (a few
// MiB for a freshly-infected guest) and cheap to take at detection
// time, before the binding is recycled.

// Checkpoint file format constants.
const (
	checkpointMagic   = 0x504f544b // "POTK"
	checkpointVersion = 1
)

// Checkpoint errors.
var (
	ErrBadCheckpoint = errors.New("vmm: not a checkpoint")
	ErrBadCkptVer    = errors.New("vmm: unsupported checkpoint version")
)

// Caps applied while reading untrusted checkpoint bytes, far above any
// checkpoint a real VM produces (2^24 4 KiB pages is 64 GiB of delta).
// A corrupt count field must fail fast, not drive a 2^60-iteration read
// loop.
const (
	maxCkptPages  = 1 << 24
	maxCkptBlocks = 1 << 24
)

// Checkpoint is a VM's captured delta state.
type Checkpoint struct {
	ImageName string
	IP        netsim.Addr
	// Pages maps guest page number -> page content for every page the
	// VM owns (CoW copies and zero-fills).
	Pages map[uint64][]byte
	// DiskBlocks maps block number -> first byte for owned disk blocks.
	DiskBlocks map[uint64]byte
}

// TakeCheckpoint captures vm's delta state. The VM keeps running; the
// captured pages are copies.
func TakeCheckpoint(vm *VM) *Checkpoint {
	ck := &Checkpoint{
		ImageName:  vm.Image.Name,
		IP:         vm.IP,
		Pages:      make(map[uint64][]byte),
		DiskBlocks: make(map[uint64]byte),
	}
	vm.Mem.EachOwnedPage(func(vpn uint64) {
		ck.Pages[vpn] = vm.Mem.Read(vpn, 0, mem.PageSize)
	})
	vm.Disk.EachOwnedBlock(func(block uint64, firstByte byte) {
		ck.DiskBlocks[block] = firstByte
	})
	vm.host.met.checkpoints.Inc()
	return ck
}

// Bytes returns the checkpoint's payload size (page + block content).
func (ck *Checkpoint) Bytes() uint64 {
	return uint64(len(ck.Pages))*mem.PageSize + uint64(len(ck.DiskBlocks))*DiskBlockSize
}

// WriteTo serializes the checkpoint.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		m, err := bw.Write(b[:])
		n += int64(m)
		return err
	}
	put64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		m, err := bw.Write(b[:])
		n += int64(m)
		return err
	}
	if err := put32(checkpointMagic); err != nil {
		return n, err
	}
	if err := put32(checkpointVersion); err != nil {
		return n, err
	}
	if err := put32(uint32(len(ck.ImageName))); err != nil {
		return n, err
	}
	m, err := bw.WriteString(ck.ImageName)
	n += int64(m)
	if err != nil {
		return n, err
	}
	if err := put32(uint32(ck.IP)); err != nil {
		return n, err
	}
	// Pages, sorted for deterministic output.
	vpns := make([]uint64, 0, len(ck.Pages))
	for vpn := range ck.Pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	if err := put64(uint64(len(vpns))); err != nil {
		return n, err
	}
	for _, vpn := range vpns {
		if err := put64(vpn); err != nil {
			return n, err
		}
		m, err := bw.Write(ck.Pages[vpn])
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	// Disk blocks.
	blocks := make([]uint64, 0, len(ck.DiskBlocks))
	for b := range ck.DiskBlocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	if err := put64(uint64(len(blocks))); err != nil {
		return n, err
	}
	for _, b := range blocks {
		if err := put64(b); err != nil {
			return n, err
		}
		if err := bw.WriteByte(ck.DiskBlocks[b]); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	get64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != checkpointMagic {
		return nil, ErrBadCheckpoint
	}
	ver, err := get32()
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, ErrBadCkptVer
	}
	nameLen, err := get32()
	if err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("vmm: absurd image name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	ip, err := get32()
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		ImageName:  string(name),
		IP:         netsim.Addr(ip),
		Pages:      make(map[uint64][]byte),
		DiskBlocks: make(map[uint64]byte),
	}
	nPages, err := get64()
	if err != nil {
		return nil, err
	}
	if nPages > maxCkptPages {
		return nil, fmt.Errorf("vmm: absurd checkpoint page count %d", nPages)
	}
	for i := uint64(0); i < nPages; i++ {
		vpn, err := get64()
		if err != nil {
			return nil, fmt.Errorf("vmm: truncated checkpoint at page %d of %d: %w", i, nPages, err)
		}
		page := make([]byte, mem.PageSize)
		if _, err := io.ReadFull(br, page); err != nil {
			return nil, fmt.Errorf("vmm: truncated checkpoint at page %d of %d: %w", i, nPages, err)
		}
		ck.Pages[vpn] = page
	}
	nBlocks, err := get64()
	if err != nil {
		return nil, fmt.Errorf("vmm: truncated checkpoint before disk blocks: %w", err)
	}
	if nBlocks > maxCkptBlocks {
		return nil, fmt.Errorf("vmm: absurd checkpoint block count %d", nBlocks)
	}
	for i := uint64(0); i < nBlocks; i++ {
		block, err := get64()
		if err != nil {
			return nil, fmt.Errorf("vmm: truncated checkpoint at block %d of %d: %w", i, nBlocks, err)
		}
		val, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("vmm: truncated checkpoint at block %d of %d: %w", i, nBlocks, err)
		}
		ck.DiskBlocks[block] = val
	}
	return ck, nil
}

// Restore instantiates the checkpoint as a new VM on host h: a flash
// clone of the same image with the delta pages and blocks replayed on
// top. The restored VM is created paused-equivalent (StateCloning) and
// becomes runnable through the usual clone completion.
func (h *VMHost) Restore(ck *Checkpoint, ready func(*VM)) (*VM, error) {
	vm, err := h.FlashClone(ck.ImageName, ck.IP, ready)
	if err != nil {
		return nil, err
	}
	// Validate the delta against the clone's actual geometry before
	// applying any of it: a checkpoint whose counts parsed fine can
	// still address pages or blocks the image doesn't have, and that
	// must come back as an error, not a panic from the memory or disk
	// layer mid-apply.
	for vpn, content := range ck.Pages {
		if vpn >= vm.Mem.NumPages() {
			h.Destroy(vm.ID)
			return nil, fmt.Errorf("vmm: checkpoint page %d outside image %q of %d pages",
				vpn, ck.ImageName, vm.Mem.NumPages())
		}
		if len(content) != mem.PageSize {
			h.Destroy(vm.ID)
			return nil, fmt.Errorf("vmm: checkpoint page %d has %d bytes, want %d",
				vpn, len(content), mem.PageSize)
		}
	}
	for block := range ck.DiskBlocks {
		if block >= vm.Disk.Base.Blocks() {
			h.Destroy(vm.ID)
			return nil, fmt.Errorf("vmm: checkpoint block %d outside image %q of %d blocks",
				block, ck.ImageName, vm.Disk.Base.Blocks())
		}
	}
	for vpn, content := range ck.Pages {
		vm.Mem.Write(vpn, 0, content)
	}
	for block, val := range ck.DiskBlocks {
		vm.Disk.WriteBlockByte(block, val)
	}
	return vm, nil
}
