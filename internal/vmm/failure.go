package vmm

import (
	"errors"
	"strconv"
	"time"

	"potemkin/internal/trace"
)

// Host failure model. A host can be crashed (all resident VMs die, new
// clones are rejected) and later recovered, and the fault layer can
// inject transient clone failures and clone-latency spikes. All hooks
// are deterministic: the injector draws from its own named RNG stream,
// so a faulty run replays identically under the same seed.

// ErrHostDown reports a clone attempt against a crashed host.
var ErrHostDown = errors.New("vmm: host is down")

// ErrCloneFault reports an injected transient flash-clone failure.
var ErrCloneFault = errors.New("vmm: injected clone fault")

// Crash takes the host down: every resident VM dies immediately
// (mid-clone VMs included — their ready callbacks never fire) and
// further clone and boot requests fail with ErrHostDown until Recover.
// Returns the number of VMs killed. Crashing a down host is a no-op.
func (h *VMHost) Crash() int {
	if h.down {
		return 0
	}
	h.down = true
	h.stats.Crashes++
	h.met.crashes.Inc()
	killed := len(h.vms)
	h.stats.CrashKilledVMs += uint64(killed)
	h.tr.Instant(h.K.Now(), "host-crash",
		trace.Attr{K: "server", V: h.Cfg.Name},
		trace.Attr{K: "killed", V: strconv.Itoa(killed)})
	h.DestroyAll()
	return killed
}

// Recover brings a crashed host back into service, empty. Recovering an
// up host is a no-op.
func (h *VMHost) Recover() {
	if !h.down {
		return
	}
	h.down = false
	h.stats.Recoveries++
	h.tr.Instant(h.K.Now(), "host-recover", trace.Attr{K: "server", V: h.Cfg.Name})
}

// Down reports whether the host is crashed.
func (h *VMHost) Down() bool { return h.down }

// SetCloneFault installs a hook consulted at the start of every flash
// clone; a non-nil return fails the clone with that error (counted as
// a CloneFaults reject). Pass nil to clear. The fault injector uses
// this for transient-failure windows.
func (h *VMHost) SetCloneFault(fn func() error) { h.cloneFault = fn }

// SetCloneLatencyFactor scales modeled flash-clone latency by factor
// (values > 1 model a latency spike: contended storage, a busy control
// plane). Factors <= 0 or == 1 restore normal latency.
func (h *VMHost) SetCloneLatencyFactor(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	h.cloneSlow = factor
}

// checkFault applies the down state and the injected-fault hook to an
// admission decision.
func (h *VMHost) checkFault() error {
	if h.down {
		h.stats.CloneRejects++
		return ErrHostDown
	}
	if h.cloneFault != nil {
		if err := h.cloneFault(); err != nil {
			h.stats.CloneFaults++
			h.met.cloneFaults.Inc()
			return err
		}
	}
	return nil
}

// slowed applies the clone-latency spike factor to a modeled duration.
func (h *VMHost) slowed(d time.Duration) time.Duration {
	if h.cloneSlow > 0 && h.cloneSlow != 1 {
		return time.Duration(float64(d) * h.cloneSlow)
	}
	return d
}
