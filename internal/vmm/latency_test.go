package vmm

import (
	"testing"
	"time"

	"potemkin/internal/sim"
)

func TestCloneStepNames(t *testing.T) {
	want := map[CloneStep]string{
		StepDescriptor:  "descriptor-setup",
		StepMemMap:      "memory-map-clone",
		StepDeviceClone: "device-clone",
		StepNetConfig:   "network-config",
		StepUnpause:     "unpause",
	}
	for step, name := range want {
		if step.String() != name {
			t.Errorf("%d.String() = %q, want %q", step, step.String(), name)
		}
	}
	if CloneStep(99).String() != "unknown" {
		t.Error("out-of-range step not unknown")
	}
}

func TestJitterBounds(t *testing.T) {
	m := DefaultLatencies()
	r := sim.NewRNG(1)
	base := 100 * time.Millisecond
	lo := time.Duration(float64(base) * (1 - m.Jitter))
	hi := time.Duration(float64(base) * (1 + m.Jitter))
	for i := 0; i < 10000; i++ {
		d := m.jittered(base, r)
		if d < lo || d > hi {
			t.Fatalf("jittered %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestZeroJitterIsDeterministic(t *testing.T) {
	m := DefaultLatencies()
	m.Jitter = 0
	r := sim.NewRNG(1)
	if got := m.jittered(time.Second, r); got != time.Second {
		t.Errorf("jittered = %v", got)
	}
}

func TestMemMapCostScalesWithResidentPages(t *testing.T) {
	m := DefaultLatencies()
	m.Jitter = 0
	r := sim.NewRNG(1)
	small := m.cloneStepCost(StepMemMap, 1024, r)
	large := m.cloneStepCost(StepMemMap, 65536, r)
	if large <= small {
		t.Errorf("memory-map cost not increasing: %v vs %v", small, large)
	}
	want := m.MemMapBase + 65536*m.MemMapPerPage
	if large != want {
		t.Errorf("cost = %v, want %v", large, want)
	}
}

func TestDefaultBudgetShape(t *testing.T) {
	m := DefaultLatencies()
	m.Jitter = 0
	r := sim.NewRNG(1)
	var total time.Duration
	for s := CloneStep(0); s < NumCloneSteps; s++ {
		total += m.cloneStepCost(s, 8192, r)
	}
	// The paper's flash clone lands around half a second.
	if total < 300*time.Millisecond || total > 700*time.Millisecond {
		t.Errorf("default clone budget = %v, want ~0.5s", total)
	}
	// Full boot dwarfs it by more than an order of magnitude.
	if m.FullBoot < 10*total {
		t.Errorf("full boot %v not >> clone %v", m.FullBoot, total)
	}
	// Control plane (descriptor+device+net) dominates memory work, the
	// paper's key observation about where flash-clone time goes.
	controlPlane := m.DescriptorSetup + m.DeviceClone + m.NetConfig
	memWork := m.MemMapBase + 8192*m.MemMapPerPage
	if controlPlane < 10*memWork {
		t.Errorf("control plane %v not >> memory work %v", controlPlane, memWork)
	}
}
