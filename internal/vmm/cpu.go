package vmm

import (
	"errors"
	"time"

	"potemkin/internal/sim"
)

// Memory bounds how many *idle* VMs a server holds; CPU bounds how many
// *active* ones. The CPU model charges per-packet and per-clone costs
// against a per-host core budget in virtual time, exposes a utilization
// gauge, and (optionally) rejects clones when the host is saturated —
// the second axis of the paper's provisioning argument.

// CPUModel parameterizes per-host compute.
type CPUModel struct {
	// Cores is the host's parallelism. Zero disables CPU accounting.
	Cores int
	// PerPacket is guest-side service time per delivered packet.
	PerPacket time.Duration
	// PerClone is the control-plane compute of a flash clone.
	PerClone time.Duration
	// MaxUtil, when positive, rejects clones while utilization exceeds
	// it (admission control; 0 disables).
	MaxUtil float64
}

// DefaultCPUModel matches the era's servers: 4 cores, ~40 µs of
// processing per honeypot packet, ~30 ms of control-plane CPU per clone.
func DefaultCPUModel() CPUModel {
	return CPUModel{Cores: 4, PerPacket: 40 * time.Microsecond, PerClone: 30 * time.Millisecond}
}

// ErrNoCPU reports clone rejection due to CPU saturation.
var ErrNoCPU = errors.New("vmm: host CPU saturated")

// cpuAccount tracks busy time in one-second buckets: the previous
// complete second is the utilization gauge (stable within a bucket,
// cheap to maintain, no decay math).
type cpuAccount struct {
	curSec   int64
	curBusy  time.Duration
	prevBusy time.Duration
	total    time.Duration
}

func (c *cpuAccount) charge(now sim.Time, d time.Duration) {
	sec := int64(now / sim.Time(time.Second))
	switch {
	case sec == c.curSec:
		c.curBusy += d
	case sec == c.curSec+1:
		c.prevBusy = c.curBusy
		c.curSec = sec
		c.curBusy = d
	default: // skipped ahead: the missed seconds were idle
		c.prevBusy = 0
		c.curSec = sec
		c.curBusy = d
	}
	c.total += d
}

// utilization returns busy fraction of the last complete second.
func (c *cpuAccount) utilization(now sim.Time, cores int) float64 {
	if cores <= 0 {
		return 0
	}
	sec := int64(now / sim.Time(time.Second))
	busy := c.prevBusy
	switch {
	case sec == c.curSec:
		// prevBusy is the gauge.
	case sec == c.curSec+1:
		busy = c.curBusy
	default:
		busy = 0
	}
	u := busy.Seconds() / float64(cores)
	if u > 1 {
		u = 1
	}
	return u
}

// ChargeCPU accounts d of compute against the host at virtual time now.
// The farm charges per-packet costs through this.
func (h *VMHost) ChargeCPU(now sim.Time, d time.Duration) {
	if h.Cfg.CPU.Cores <= 0 || d <= 0 {
		return
	}
	h.cpu.charge(now, d)
}

// CPUUtilization returns the host's busy fraction over the last
// complete second (0 when accounting is disabled).
func (h *VMHost) CPUUtilization() float64 {
	return h.cpu.utilization(h.K.Now(), h.Cfg.CPU.Cores)
}

// CPUSeconds returns total compute consumed since host creation.
func (h *VMHost) CPUSeconds() float64 { return h.cpu.total.Seconds() }

// cpuAdmit rejects clones on saturated hosts.
func (h *VMHost) cpuAdmit() error {
	m := h.Cfg.CPU
	if m.Cores <= 0 || m.MaxUtil <= 0 {
		return nil
	}
	if h.CPUUtilization() > m.MaxUtil {
		return ErrNoCPU
	}
	return nil
}

// MaxActiveVMs is the analytic CPU bound the paper's provisioning
// argument uses: how many VMs each receiving ppsPerVM packets/second
// one host sustains.
func (m CPUModel) MaxActiveVMs(ppsPerVM float64) int {
	if m.Cores <= 0 || m.PerPacket <= 0 || ppsPerVM <= 0 {
		return 0
	}
	perVM := ppsPerVM * m.PerPacket.Seconds() // CPU-seconds per second per VM
	return int(float64(m.Cores)/perVM + 0.5)
}
