package vmm

import (
	"time"

	"potemkin/internal/sim"
)

// LatencyModel parameterizes the modeled cost of VMM control-plane
// operations. Potemkin's prototype ran on Xen, where flash cloning was
// dominated by control-plane work (domain creation, device attach,
// network reconfiguration) rather than memory copying — delta
// virtualization makes the memory step nearly free. The defaults below
// reproduce that cost *structure*: a total flash-clone budget of roughly
// half a second, dominated by device and network setup, versus a
// tens-of-seconds full boot.
//
// These are modeled latencies (they advance the sim clock, not the wall
// clock); EXPERIMENTS.md discusses how they map onto the paper's
// reported breakdown.
type LatencyModel struct {
	// Flash-clone steps, charged in order.
	DescriptorSetup time.Duration // allocate + copy the domain descriptor
	MemMapBase      time.Duration // set up the CoW memory map
	MemMapPerPage   time.Duration // per resident page: PTE copy cost
	DeviceClone     time.Duration // disk CoW overlay + virtual device attach
	NetConfig       time.Duration // bind IP, install gateway filter state
	Unpause         time.Duration // scheduler unpause

	// FullBoot is the baseline cost of booting the image from scratch.
	FullBoot time.Duration

	// CowFault is the service time charged per copy-on-write fault while
	// the VM runs.
	CowFault time.Duration

	// Destroy is the cost of tearing a VM down and reclaiming memory.
	Destroy time.Duration

	// Jitter, if nonzero, scales each charged step by a uniform factor in
	// [1-Jitter, 1+Jitter] so repeated clones produce a distribution
	// rather than a constant.
	Jitter float64
}

// DefaultLatencies returns the model used by the experiments.
func DefaultLatencies() LatencyModel {
	return LatencyModel{
		DescriptorSetup: 124 * time.Millisecond,
		MemMapBase:      2 * time.Millisecond,
		MemMapPerPage:   60 * time.Nanosecond,
		DeviceClone:     149 * time.Millisecond,
		NetConfig:       135 * time.Millisecond,
		Unpause:         6 * time.Millisecond,
		FullBoot:        24 * time.Second,
		CowFault:        25 * time.Microsecond,
		Destroy:         40 * time.Millisecond,
		Jitter:          0.08,
	}
}

// CloneStep identifies one stage of the flash-clone path, in execution
// order. The E1 experiment reports a latency row per step.
type CloneStep int

// Flash-clone stages.
const (
	StepDescriptor CloneStep = iota
	StepMemMap
	StepDeviceClone
	StepNetConfig
	StepUnpause
	NumCloneSteps
)

// String names the step as it appears in the E1 table.
func (s CloneStep) String() string {
	switch s {
	case StepDescriptor:
		return "descriptor-setup"
	case StepMemMap:
		return "memory-map-clone"
	case StepDeviceClone:
		return "device-clone"
	case StepNetConfig:
		return "network-config"
	case StepUnpause:
		return "unpause"
	default:
		return "unknown"
	}
}

// jittered scales d by the model's jitter using stream r.
func (m *LatencyModel) jittered(d time.Duration, r *sim.RNG) time.Duration {
	if m.Jitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + m.Jitter*(2*r.Float64()-1)
	return time.Duration(float64(d) * f)
}

// cloneStepCost returns the modeled duration of one step for an image
// with residentPages pages.
func (m *LatencyModel) cloneStepCost(step CloneStep, residentPages int, r *sim.RNG) time.Duration {
	var d time.Duration
	switch step {
	case StepDescriptor:
		d = m.DescriptorSetup
	case StepMemMap:
		d = m.MemMapBase + time.Duration(residentPages)*m.MemMapPerPage
	case StepDeviceClone:
		d = m.DeviceClone
	case StepNetConfig:
		d = m.NetConfig
	case StepUnpause:
		d = m.Unpause
	}
	return m.jittered(d, r)
}
