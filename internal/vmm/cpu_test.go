package vmm

import (
	"testing"
	"time"

	"potemkin/internal/sim"
)

func cpuHost(t *testing.T, m CPUModel) (*sim.Kernel, *VMHost) {
	t.Helper()
	k := sim.NewKernel(1)
	cfg := DefaultHostConfig("cpu")
	cfg.CPU = m
	h := NewHost(k, cfg)
	h.RegisterImage("winxp", 8192, 2048, 512, 42)
	return k, h
}

func TestCPUAccountingDisabledByDefault(t *testing.T) {
	k, h := cpuHost(t, CPUModel{})
	h.ChargeCPU(k.Now(), time.Second)
	if h.CPUUtilization() != 0 || h.CPUSeconds() != 0 {
		t.Error("accounting active with zero model")
	}
}

func TestCPUUtilizationGauge(t *testing.T) {
	k, h := cpuHost(t, CPUModel{Cores: 2, PerPacket: time.Millisecond})
	// Burn 1 CPU-second during second 0 (out of 2 cores).
	for i := 0; i < 10; i++ {
		k.At(sim.Time(i)*sim.Time(100*time.Millisecond), func(now sim.Time) {
			h.ChargeCPU(now, 100*time.Millisecond)
		})
	}
	// Gauge reads the completed second from within second 1.
	k.At(sim.Start.Add(1500*time.Millisecond), func(sim.Time) {
		if u := h.CPUUtilization(); u < 0.45 || u > 0.55 {
			t.Errorf("utilization = %v, want ~0.5", u)
		}
	})
	k.Run()
	if got := h.CPUSeconds(); got < 0.99 || got > 1.01 {
		t.Errorf("CPUSeconds = %v", got)
	}
}

func TestCPUUtilizationDecaysWhenIdle(t *testing.T) {
	k, h := cpuHost(t, CPUModel{Cores: 1, PerPacket: time.Millisecond})
	h.ChargeCPU(k.Now(), 500*time.Millisecond)
	k.RunUntil(sim.Start.Add(10 * time.Second))
	if u := h.CPUUtilization(); u != 0 {
		t.Errorf("utilization after idle = %v", u)
	}
}

func TestCPUAdmissionRejectsWhenSaturated(t *testing.T) {
	k, h := cpuHost(t, CPUModel{Cores: 1, PerPacket: time.Millisecond,
		PerClone: 10 * time.Millisecond, MaxUtil: 0.8})
	// Saturate second 0.
	h.ChargeCPU(k.Now(), time.Second)
	// From second 1, the gauge shows 100% and clones are rejected.
	var err1, err2 error
	k.At(sim.Start.Add(1100*time.Millisecond), func(sim.Time) {
		_, err1 = h.FlashClone("winxp", 1, nil)
	})
	// By second 3 the busy window has passed; clones admitted again.
	k.At(sim.Start.Add(3*time.Second), func(sim.Time) {
		_, err2 = h.FlashClone("winxp", 2, nil)
	})
	k.RunUntil(sim.Start.Add(5 * time.Second))
	if err1 != ErrNoCPU {
		t.Errorf("saturated clone err = %v, want ErrNoCPU", err1)
	}
	if err2 != nil {
		t.Errorf("post-idle clone err = %v", err2)
	}
	if h.Stats().CloneRejects == 0 {
		t.Error("reject not counted")
	}
}

func TestCloneChargesCPU(t *testing.T) {
	k, h := cpuHost(t, DefaultCPUModel())
	before := h.CPUSeconds()
	if _, err := h.FlashClone("winxp", 1, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got := h.CPUSeconds() - before; got != DefaultCPUModel().PerClone.Seconds() {
		t.Errorf("clone charged %v CPU-seconds", got)
	}
}

func TestMaxActiveVMs(t *testing.T) {
	m := DefaultCPUModel() // 4 cores, 40µs/pkt
	// At 10 pps per VM: each VM needs 400µs/s => 0.0004 cores; 4 cores
	// sustain 10000 VMs.
	if got := m.MaxActiveVMs(10); got != 10000 {
		t.Errorf("MaxActiveVMs(10) = %d", got)
	}
	if got := m.MaxActiveVMs(1000); got != 100 {
		t.Errorf("MaxActiveVMs(1000) = %d", got)
	}
	if (CPUModel{}).MaxActiveVMs(10) != 0 {
		t.Error("disabled model returned nonzero bound")
	}
}

func TestUtilizationClampsAtOne(t *testing.T) {
	k, h := cpuHost(t, CPUModel{Cores: 1, PerPacket: time.Millisecond})
	h.ChargeCPU(k.Now(), 10*time.Second) // oversubscribed second
	k.RunUntil(sim.Start.Add(1200 * time.Millisecond))
	if u := h.CPUUtilization(); u != 1 {
		t.Errorf("utilization = %v, want clamp at 1", u)
	}
}
