// Package vmm is the simulated hypervisor substrate: physical hosts with
// bounded machine memory, VM lifecycle management, reference images, and
// the paper's two headline mechanisms — flash cloning (sub-second VM
// instantiation from a snapshot) and delta virtualization (copy-on-write
// memory sharing between clones, built on internal/mem).
//
// Time inside the VMM is modeled: control-plane operations advance the
// simulation clock according to a LatencyModel. Memory behaviour is
// real: clones share actual frames and faults actually copy pages.
package vmm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"potemkin/internal/mem"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// VMID names a VM within one Host. IDs are never reused.
type VMID uint64

// State is a VM lifecycle state.
type State int

// VM lifecycle states.
const (
	StateCloning State = iota // flash clone in progress
	StateBooting              // full boot in progress
	StateRunning
	StatePaused // frozen: holds resources, makes no progress
	StateDead
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateCloning:
		return "cloning"
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Image is a cloneable reference snapshot: memory image + disk image +
// the synthetic-content parameters needed to build full-copy baselines.
type Image struct {
	Name string
	Mem  *mem.Image
	Disk DiskImage

	// Synthetic-content parameters (page counts and seed) so the
	// full-boot baseline can reconstruct private content.
	NumPages      uint64
	ResidentPages uint64
	Seed          uint64
	// synthetic marks images whose content is reproducible from Seed
	// (RegisterImage); only those support the FullBoot baseline.
	synthetic bool
}

// VM is one virtual machine on a Host.
type VM struct {
	ID    VMID
	Image *Image
	Mem   *mem.AddressSpace
	Disk  *Overlay
	IP    netsim.Addr
	State State

	CreatedAt  sim.Time
	ReadyAt    sim.Time // when the clone/boot completed
	LastActive sim.Time

	// Tag is free-form owner state (the farm stores its binding here).
	Tag any

	host *VMHost
	// span covers the in-flight clone/boot; finished when the VM comes
	// up or is destroyed mid-flight. Nil when tracing is off.
	span *trace.Span
}

// Touch records guest activity for idle-reclamation decisions.
func (vm *VM) Touch(now sim.Time) { vm.LastActive = now }

// Idle returns how long the VM has been inactive.
func (vm *VM) Idle(now sim.Time) time.Duration { return now.Sub(vm.LastActive) }

// PrivateBytes returns the VM's incremental memory cost (private frames).
func (vm *VM) PrivateBytes() uint64 { return vm.Mem.PrivateBytes() }

// WriteMemory performs a guest memory write, charging the host's CoW
// fault cost when the write faults. It returns whether a fault occurred.
func (vm *VM) WriteMemory(vpn uint64, off int, b []byte) bool {
	if vm.State == StateDead {
		panic("vmm: write to dead VM")
	}
	faulted := vm.Mem.Write(vpn, off, b)
	if faulted {
		vm.host.stats.CowFaults++
		vm.host.met.cowFaults.Inc()
	}
	return faulted
}

// HostConfig sizes a simulated physical server.
type HostConfig struct {
	Name        string
	MemoryBytes uint64 // machine memory capacity
	MaxVMs      int    // domain descriptor limit; 0 = unlimited

	// PerVMOverheadBytes models fixed per-VM hypervisor state (shadow
	// page tables, descriptor, device state) counted against capacity.
	PerVMOverheadBytes uint64

	// ShareContent enables content-based page sharing in the frame store
	// (delta virtualization always shares image pages; this additionally
	// coalesces identical private pages).
	ShareContent bool

	Latency LatencyModel

	// CPU models per-host compute; the zero value disables CPU
	// accounting and admission.
	CPU CPUModel

	// Metrics, when set, registers live telemetry (vmm_* series) shared
	// across hosts — the instruments are atomic and commutative, so
	// many hosts (or shard domains) updating one registry is safe. Nil
	// disables telemetry.
	Metrics *metrics.Registry
}

// DefaultHostConfig matches the experiments' standard server: 16 GiB of
// RAM and Xen-era per-VM overhead.
func DefaultHostConfig(name string) HostConfig {
	return HostConfig{
		Name:               name,
		MemoryBytes:        16 << 30,
		PerVMOverheadBytes: 1 << 20,
		Latency:            DefaultLatencies(),
	}
}

// HostStats counts host-level activity.
type HostStats struct {
	Clones         uint64
	FullBoots      uint64
	Destroys       uint64
	CloneRejects   uint64 // admission failures
	CloneFaults    uint64 // injected transient clone failures
	CowFaults      uint64
	Crashes        uint64 // host failures (fault injection)
	Recoveries     uint64
	CrashKilledVMs uint64 // VMs lost to host crashes
	PeakVMs        int
	PeakMemory     uint64
}

// Admission errors.
var (
	ErrNoMemory = errors.New("vmm: host memory exhausted")
	ErrTooMany  = errors.New("vmm: VM descriptor limit reached")
	ErrNoImage  = errors.New("vmm: unknown image")
)

// VMHost is a simulated physical server running VMs over one shared
// frame store.
type VMHost struct {
	Cfg HostConfig
	K   *sim.Kernel

	store  *mem.Store
	images map[string]*Image
	vms    map[VMID]*VM
	nextID VMID
	rng    *sim.RNG

	stats HostStats
	cpu   cpuAccount
	// tr, when non-nil, records clone/boot spans and lifecycle events
	// under the binding trace registered for the VM's address.
	tr *trace.Tracer

	// Failure model (see failure.go).
	down       bool
	cloneFault func() error
	cloneSlow  float64

	// Per-step clone latency distributions (E1).
	StepLatency [NumCloneSteps]metrics.Histogram
	// End-to-end clone latency distribution, in milliseconds.
	CloneLatency metrics.Histogram

	// met holds live-telemetry handles (nil/no-op without Cfg.Metrics).
	met hostMetrics
}

// hostMetrics are the registry handles, resolved once in NewHost.
type hostMetrics struct {
	clones      *metrics.Counter
	fullBoots   *metrics.Counter
	destroys    *metrics.Counter
	cowFaults   *metrics.Counter
	crashes     *metrics.Counter
	cloneFaults *metrics.Counter
	checkpoints *metrics.Counter
	cloneMs     *metrics.Hist
}

// NewHost creates a host on kernel k.
func NewHost(k *sim.Kernel, cfg HostConfig) *VMHost {
	if cfg.MemoryBytes == 0 {
		panic("vmm: host with no memory")
	}
	store := mem.NewStore()
	store.ShareContent = cfg.ShareContent
	h := &VMHost{
		Cfg:    cfg,
		K:      k,
		store:  store,
		images: make(map[string]*Image),
		vms:    make(map[VMID]*VM),
		nextID: 1,
		rng:    k.Stream("vmm/" + cfg.Name),
	}
	if m := cfg.Metrics; m != nil {
		h.met = hostMetrics{
			clones:      m.Counter("vmm_clones_total"),
			fullBoots:   m.Counter("vmm_full_boots_total"),
			destroys:    m.Counter("vmm_destroys_total"),
			cowFaults:   m.Counter("vmm_cow_faults_total"),
			crashes:     m.Counter("vmm_crashes_total"),
			cloneFaults: m.Counter("vmm_clone_faults_total"),
			checkpoints: m.Counter("vmm_checkpoints_total"),
			cloneMs:     m.Hist("vmm_clone_ms"),
		}
	}
	return h
}

// Store exposes the host's frame store (tests and experiments read
// accounting off it).
func (h *VMHost) Store() *mem.Store { return h.store }

// SetTracer wires span tracing for clone/boot operations and VM
// lifecycle events. A nil tracer (the default) disables tracing.
func (h *VMHost) SetTracer(t *trace.Tracer) { h.tr = t }

// Stats returns a copy of the host counters.
func (h *VMHost) Stats() HostStats { return h.stats }

// NumVMs returns the number of live (cloning/booting/running) VMs.
func (h *VMHost) NumVMs() int { return len(h.vms) }

// VMs calls fn for every live VM.
func (h *VMHost) VMs(fn func(*VM)) {
	for _, vm := range h.vms {
		fn(vm)
	}
}

// Lookup returns a VM by ID, or nil.
func (h *VMHost) Lookup(id VMID) *VM { return h.vms[id] }

// MemoryInUse returns modeled machine-memory consumption: shared frames
// plus fixed per-VM overhead.
func (h *VMHost) MemoryInUse() uint64 {
	return h.store.ModeledBytes() + uint64(len(h.vms))*h.Cfg.PerVMOverheadBytes
}

// MemoryFree returns remaining capacity (0 when overcommitted).
func (h *VMHost) MemoryFree() uint64 {
	used := h.MemoryInUse()
	if used >= h.Cfg.MemoryBytes {
		return 0
	}
	return h.Cfg.MemoryBytes - used
}

// RegisterImage synthesizes and registers a reference image. numPages is
// the guest-physical size; residentPages the portion the booted guest
// actually occupies. Returns the image for direct use.
func (h *VMHost) RegisterImage(name string, numPages, residentPages, diskBlocks, seed uint64) *Image {
	img := &Image{
		Name:          name,
		Mem:           mem.BuildImage(h.store, numPages, residentPages, seed),
		Disk:          NewBaseDisk(name, diskBlocks, seed),
		NumPages:      numPages,
		ResidentPages: residentPages,
		Seed:          seed,
		synthetic:     true,
	}
	h.images[name] = img
	return img
}

// ImageNames returns the registered image names.
func (h *VMHost) ImageNames() []string {
	names := make([]string, 0, len(h.images))
	for n := range h.images {
		names = append(names, n)
	}
	return names
}

// admit checks capacity for one more VM with the given incremental
// memory need.
func (h *VMHost) admit(extraBytes uint64) error {
	if h.Cfg.MaxVMs > 0 && len(h.vms) >= h.Cfg.MaxVMs {
		return ErrTooMany
	}
	if h.MemoryInUse()+extraBytes+h.Cfg.PerVMOverheadBytes > h.Cfg.MemoryBytes {
		return ErrNoMemory
	}
	return nil
}

// FlashClone starts a flash clone of image for IP ip, invoking ready
// when the VM is runnable. The returned VM is in StateCloning until
// then. Admission is checked synchronously; the error return covers
// capacity and unknown images.
//
// Memory cost at clone time is page-table-only (no frame copies): this
// is delta virtualization. The modeled latency is the sum of the
// per-step costs, recorded into the E1 histograms.
func (h *VMHost) FlashClone(imageName string, ip netsim.Addr, ready func(*VM)) (*VM, error) {
	img, ok := h.images[imageName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoImage, imageName)
	}
	if err := h.checkFault(); err != nil {
		return nil, err
	}
	if err := h.admit(0); err != nil {
		h.stats.CloneRejects++
		return nil, err
	}
	if err := h.cpuAdmit(); err != nil {
		h.stats.CloneRejects++
		return nil, err
	}
	h.ChargeCPU(h.K.Now(), h.Cfg.CPU.PerClone)
	vm := h.newVM(img, ip, StateCloning)
	vm.Mem = img.Mem.NewClone()
	vm.Disk = NewOverlay(img.Disk)
	if h.tr != nil {
		vm.span = h.tr.StartChild(h.K.Now(), h.tr.Current(uint64(ip)), "clone",
			trace.Attr{K: "server", V: h.Cfg.Name}, trace.Attr{K: "image", V: img.Name})
	}

	var total time.Duration
	for step := CloneStep(0); step < NumCloneSteps; step++ {
		d := h.slowed(h.Cfg.Latency.cloneStepCost(step, img.Mem.ResidentPages(), h.rng))
		h.StepLatency[step].Observe(float64(d) / float64(time.Millisecond))
		total += d
	}
	h.CloneLatency.Observe(float64(total) / float64(time.Millisecond))
	h.met.cloneMs.Observe(float64(total) / float64(time.Millisecond))
	h.stats.Clones++
	h.met.clones.Inc()

	h.K.After(total, func(now sim.Time) {
		if vm.State != StateCloning {
			return // destroyed mid-clone
		}
		vm.State = StateRunning
		vm.ReadyAt = now
		vm.LastActive = now
		vm.span.Finish(now)
		if ready != nil {
			ready(vm)
		}
	})
	return vm, nil
}

// FullBoot starts a from-scratch boot of image for IP ip — the
// no-flash-cloning baseline. Every resident page is private, so the
// admission check requires the image's full footprint.
func (h *VMHost) FullBoot(imageName string, ip netsim.Addr, ready func(*VM)) (*VM, error) {
	img, ok := h.images[imageName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoImage, imageName)
	}
	if !img.synthetic {
		return nil, fmt.Errorf("vmm: image %q is a VM snapshot; full boot requires a synthetic image", imageName)
	}
	if err := h.checkFault(); err != nil {
		return nil, err
	}
	footprint := img.ResidentPages * mem.PageSize
	if err := h.admit(footprint); err != nil {
		h.stats.CloneRejects++
		return nil, err
	}
	vm := h.newVM(img, ip, StateBooting)
	vm.Mem = mem.NewPatternSpace(h.store, img.NumPages, img.ResidentPages, img.Seed)
	vm.Disk = NewOverlay(img.Disk)
	h.stats.FullBoots++
	h.met.fullBoots.Inc()
	if h.tr != nil {
		vm.span = h.tr.StartChild(h.K.Now(), h.tr.Current(uint64(ip)), "boot",
			trace.Attr{K: "server", V: h.Cfg.Name}, trace.Attr{K: "image", V: img.Name})
	}

	d := h.Cfg.Latency.jittered(h.Cfg.Latency.FullBoot, h.rng)
	h.K.After(d, func(now sim.Time) {
		if vm.State != StateBooting {
			return
		}
		vm.State = StateRunning
		vm.ReadyAt = now
		vm.LastActive = now
		vm.span.Finish(now)
		if ready != nil {
			ready(vm)
		}
	})
	return vm, nil
}

func (h *VMHost) newVM(img *Image, ip netsim.Addr, st State) *VM {
	vm := &VM{
		ID:         h.nextID,
		Image:      img,
		IP:         ip,
		State:      st,
		CreatedAt:  h.K.Now(),
		LastActive: h.K.Now(),
		host:       h,
	}
	h.nextID++
	h.vms[vm.ID] = vm
	if len(h.vms) > h.stats.PeakVMs {
		h.stats.PeakVMs = len(h.vms)
	}
	if m := h.MemoryInUse(); m > h.stats.PeakMemory {
		h.stats.PeakMemory = m
	}
	return vm
}

// Destroy tears a VM down immediately, releasing its memory. The modeled
// teardown latency is charged to the host but completion is not
// observable (Potemkin reclaims asynchronously).
func (h *VMHost) Destroy(id VMID) {
	vm, ok := h.vms[id]
	if !ok {
		return
	}
	if vm.span != nil && !vm.span.Done() {
		// Torn down mid-clone/boot: close the span so the trace shows
		// the aborted instantiation rather than leaking an open span.
		vm.span.Event(h.K.Now(), "destroyed-in-flight", vm.State.String())
		vm.span.Finish(h.K.Now())
	}
	vm.State = StateDead
	vm.Mem.Release()
	delete(h.vms, id)
	h.stats.Destroys++
	h.met.destroys.Inc()
}

// DestroyAll tears down every VM (end-of-experiment cleanup and host
// crashes), in VMID order so teardown — and any trace output it emits —
// is a pure function of the seed.
func (h *VMHost) DestroyAll() {
	ids := make([]VMID, 0, len(h.vms))
	for id := range h.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h.Destroy(id)
	}
}

// Pause freezes a running VM: it keeps its memory and binding but
// receives no packets and makes no guest progress until Resume — how an
// analyst holds a compromised VM still while inspecting it.
func (h *VMHost) Pause(id VMID) error {
	vm, ok := h.vms[id]
	if !ok {
		return fmt.Errorf("vmm: no VM %d", id)
	}
	if vm.State != StateRunning {
		return fmt.Errorf("vmm: VM %d is %v, not running", id, vm.State)
	}
	vm.State = StatePaused
	if h.tr != nil {
		if sp := h.tr.Current(uint64(vm.IP)); sp != nil {
			sp.Event(h.K.Now(), "vm-paused", h.Cfg.Name)
		}
	}
	return nil
}

// Resume unfreezes a paused VM.
func (h *VMHost) Resume(id VMID) error {
	vm, ok := h.vms[id]
	if !ok {
		return fmt.Errorf("vmm: no VM %d", id)
	}
	if vm.State != StatePaused {
		return fmt.Errorf("vmm: VM %d is %v, not paused", id, vm.State)
	}
	vm.State = StateRunning
	vm.LastActive = h.K.Now()
	if h.tr != nil {
		if sp := h.tr.Current(uint64(vm.IP)); sp != nil {
			sp.Event(h.K.Now(), "vm-resumed", h.Cfg.Name)
		}
	}
	return nil
}

// SnapshotVM freezes a running VM's current state as a new reference
// image named name — the paper's actual image-preparation flow: boot a
// reference VM once, install and configure the personality, then
// snapshot it and flash-clone the whole farm from the result. The
// source VM keeps running (its memory pages become copy-on-write).
//
// The source must be a scratch (full-boot) VM: snapshotting a clone
// would chain memory images, which the substrate does not support.
func (h *VMHost) SnapshotVM(id VMID, name string) (*Image, error) {
	vm, ok := h.vms[id]
	if !ok {
		return nil, fmt.Errorf("vmm: no VM %d", id)
	}
	if vm.State != StateRunning {
		return nil, fmt.Errorf("vmm: VM %d is %v, not running", id, vm.State)
	}
	if vm.Mem.Base() != nil {
		return nil, fmt.Errorf("vmm: VM %d is a clone; snapshot a full-boot VM", id)
	}
	img := &Image{
		Name:          name,
		Mem:           mem.Snapshot(vm.Mem),
		Disk:          vm.Disk.Freeze(),
		NumPages:      vm.Mem.NumPages(),
		ResidentPages: uint64(vm.Mem.ResidentPages()),
		Seed:          vm.Image.Seed,
	}
	h.images[name] = img
	return img, nil
}

// MemorySharePass runs one KSM-style content-sharing scan over all live
// VMs' owned pages (see mem.SharePass), charging the scan's CPU cost.
func (h *VMHost) MemorySharePass() mem.SharePassResult {
	spaces := make([]*mem.AddressSpace, 0, len(h.vms))
	for _, vm := range h.vms {
		spaces = append(spaces, vm.Mem)
	}
	res := mem.SharePass(h.store, spaces)
	// ~150 ns to hash-and-compare a page is a reasonable 2005-era cost.
	h.ChargeCPU(h.K.Now(), time.Duration(res.PagesScanned)*150*time.Nanosecond)
	return res
}

// StartSharePasses runs MemorySharePass every interval until the
// returned ticker is stopped.
func (h *VMHost) StartSharePasses(interval time.Duration) *sim.Ticker {
	return h.K.Every(interval, func(sim.Time) { h.MemorySharePass() })
}

// CheckMemoryInvariants verifies frame refcount consistency across all
// live VMs and images on the host. Tests call this after churn.
func (h *VMHost) CheckMemoryInvariants() error {
	var spaces []*mem.AddressSpace
	for _, vm := range h.vms {
		spaces = append(spaces, vm.Mem)
	}
	var images []*mem.Image
	for _, img := range h.images {
		images = append(images, img.Mem)
	}
	return h.store.CheckRefs(mem.ExternalRefs(spaces, images))
}
