// Package trace is a deterministic span tracer for the simulated
// honeyfarm: it records the full lifecycle of every binding — telescope
// arrival, gateway bind, farm placement, VMM flash clone, guest
// activity, recycle — as a tree of spans stamped with *simulated* time.
//
// Design constraints, in order:
//
//   - Determinism. Span and trace IDs are sequential counters, times
//     come from the sim clock, and attributes are ordered slices, so a
//     run with a fixed seed produces a byte-identical trace. Chaos
//     replays (internal/fault) can therefore be diffed span-by-span.
//   - Zero overhead when off. Every method is safe on a nil *Tracer and
//     a nil *Span and returns immediately; instrumentation sites pay one
//     nil check when tracing is disabled.
//   - One source of truth. The gateway's forensic event log is folded
//     into span events (gateway.logEvent feeds both sinks), so the
//     trace subsumes the flat log rather than drifting from it.
//
// Finished spans stream to a Sink in finish order; exporters for JSONL
// and the Chrome trace-event format live in export.go. Per-stage
// latencies (one metrics.Histogram per span name, plus explicit
// ObserveStage calls like the gateway's pending-queue wait) accumulate
// on the tracer for live snapshots and end-of-run tables.
package trace

import (
	"sort"
	"time"

	"potemkin/internal/metrics"
	"potemkin/internal/sim"
)

// TraceID groups the spans of one binding lifecycle.
type TraceID uint64

// SpanID identifies one span within a tracer.
type SpanID uint64

// Attr is one typed key/value annotation. Attrs are an ordered slice,
// not a map: insertion order is part of the deterministic output.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// SpanEvent is a point-in-time annotation on a span — the trace-side
// form of a gateway forensic-log record.
type SpanEvent struct {
	TNS    int64  `json:"t_ns"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

// Span is one timed operation. Fields are exported for exporters and
// tests; mutate only through the methods so nil-safety holds.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Start  sim.Time
	End    sim.Time
	Attrs  []Attr
	Events []SpanEvent

	tracer *Tracer
	prev   *Span // context-stack predecessor (see Tracer.Push)
	done   bool
}

// Sink consumes finished spans, already flattened to Records.
type Sink func(Record)

// Tracer mints spans and streams finished ones to its sinks. The zero
// value is not usable; a nil *Tracer is the "tracing off" state and
// every method on it is a no-op.
type Tracer struct {
	sinks []Sink

	nextSpan  SpanID
	nextTrace TraceID

	// current maps an address (or any uint64 key) to the innermost live
	// span for it, so lower layers (farm, vmm) can parent their spans
	// under the caller's without API plumbing through every interface.
	current map[uint64]*Span

	// open tracks unfinished spans for FlushOpen.
	open map[SpanID]*Span

	stages map[string]*metrics.Histogram
}

// New returns a tracer streaming finished spans to the given sinks.
func New(sinks ...Sink) *Tracer {
	return &Tracer{
		sinks:     sinks,
		nextSpan:  1,
		nextTrace: 1,
		current:   make(map[uint64]*Span),
		open:      make(map[SpanID]*Span),
		stages:    make(map[string]*metrics.Histogram),
	}
}

// Enabled reports whether tracing is on (t is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) newSpan(now sim.Time, trace TraceID, parent SpanID, name string, attrs []Attr) *Span {
	s := &Span{
		Trace:  trace,
		ID:     t.nextSpan,
		Parent: parent,
		Name:   name,
		Start:  now,
		Attrs:  attrs,
		tracer: t,
	}
	t.nextSpan++
	t.open[s.ID] = s
	return s
}

// StartTrace begins a new root span under a fresh trace ID — one per
// binding lifecycle.
func (t *Tracer) StartTrace(now sim.Time, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := t.nextTrace
	t.nextTrace++
	return t.newSpan(now, id, 0, name, attrs)
}

// StartChild begins a span under parent. A nil parent starts a new
// root trace instead, so instrumentation never has to special-case a
// missing context.
func (t *Tracer) StartChild(now sim.Time, parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if parent == nil {
		return t.StartTrace(now, name, attrs...)
	}
	return t.newSpan(now, parent.Trace, parent.ID, name, attrs)
}

// Instant records a zero-duration standalone span (host crash/recover,
// shed refusals — events with no binding to hang off).
func (t *Tracer) Instant(now sim.Time, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	s := t.StartTrace(now, name, attrs...)
	s.Finish(now)
}

// Push makes s the current span for key (an address, typically), so
// lower layers can find it with Current. Pop restores the predecessor.
func (t *Tracer) Push(key uint64, s *Span) {
	if t == nil || s == nil {
		return
	}
	s.prev = t.current[key]
	t.current[key] = s
}

// Pop removes s as the current span for key, restoring whatever was
// current when s was pushed. Popping a span that is not current is a
// no-op (the binding was torn down out from under the caller).
func (t *Tracer) Pop(key uint64, s *Span) {
	if t == nil || s == nil {
		return
	}
	if t.current[key] == s {
		if s.prev != nil {
			t.current[key] = s.prev
		} else {
			delete(t.current, key)
		}
	}
}

// Clear drops the entire context stack for key. Call when the object
// the key stands for is gone (a binding recycled): any spans still on
// the stack belong to a lifecycle that has ended, and leaving them
// would hand stale parents to the next lifecycle on the same key.
func (t *Tracer) Clear(key uint64) {
	if t == nil {
		return
	}
	delete(t.current, key)
}

// Current returns the innermost live span for key, or nil.
func (t *Tracer) Current(key uint64) *Span {
	if t == nil {
		return nil
	}
	return t.current[key]
}

// SetAttr appends an attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{K: k, V: v})
}

// Event appends a point-in-time event.
func (s *Span) Event(now sim.Time, name, detail string) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, SpanEvent{TNS: int64(now), Name: name, Detail: detail})
}

// Done reports whether the span has finished. A nil span is done.
func (s *Span) Done() bool { return s == nil || s.done }

// Finish ends the span at now, records its duration into the tracer's
// stage histogram named after the span, and streams it to the sinks.
// Finishing twice is a no-op, so teardown races (a binding recycled
// while its clone is in flight) stay simple at the call sites.
func (s *Span) Finish(now sim.Time) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.End = now
	t := s.tracer
	delete(t.open, s.ID)
	t.ObserveStage(s.Name, float64(now.Sub(s.Start))/float64(time.Millisecond))
	rec := s.Record()
	for _, sink := range t.sinks {
		sink(rec)
	}
}

// Record flattens the span for export.
func (s *Span) Record() Record {
	return Record{
		Trace:   uint64(s.Trace),
		Span:    uint64(s.ID),
		Parent:  uint64(s.Parent),
		Name:    s.Name,
		StartNS: int64(s.Start),
		EndNS:   int64(s.End),
		Attrs:   s.Attrs,
		Events:  s.Events,
	}
}

// ObserveStage records one latency sample (milliseconds) into the named
// stage histogram, creating it on first use. Span durations land here
// automatically via Finish; call sites add stages with no span of their
// own (per-packet pending-queue wait).
func (t *Tracer) ObserveStage(name string, ms float64) {
	if t == nil {
		return
	}
	h := t.stages[name]
	if h == nil {
		h = &metrics.Histogram{}
		t.stages[name] = h
	}
	h.Observe(ms)
}

// Stage returns the named stage histogram, or nil.
func (t *Tracer) Stage(name string) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.stages[name]
}

// StageNames returns the recorded stage names, sorted (deterministic
// report order).
func (t *Tracer) StageNames() []string {
	if t == nil {
		return nil
	}
	names := make([]string, 0, len(t.stages))
	for n := range t.stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OpenSpans returns the number of unfinished spans.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// FlushOpen finishes every unfinished span at now, in SpanID order
// (deterministic), marking each with an "unfinished" event. Call at end
// of run so bindings still live when the simulation stops appear in the
// trace.
func (t *Tracer) FlushOpen(now sim.Time) {
	if t == nil {
		return
	}
	ids := make([]SpanID, 0, len(t.open))
	for id := range t.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := t.open[id]
		s.Event(now, "unfinished", "")
		s.Finish(now)
	}
	t.current = make(map[uint64]*Span)
}
