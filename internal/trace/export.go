package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Record is the serialized form of a finished span: what the JSONL
// exporter writes, what ReadAll parses back, and what the Chrome
// exporter converts. All times are simulated nanoseconds, as exact
// integers, so a fixed-seed run serializes byte-identically.
type Record struct {
	Trace   uint64      `json:"trace"`
	Span    uint64      `json:"span"`
	Parent  uint64      `json:"parent,omitempty"`
	Name    string      `json:"name"`
	StartNS int64       `json:"start_ns"`
	EndNS   int64       `json:"end_ns"`
	Attrs   []Attr      `json:"attrs,omitempty"`
	Events  []SpanEvent `json:"events,omitempty"`
}

// DurationNS returns the span length in nanoseconds.
func (r Record) DurationNS() int64 { return r.EndNS - r.StartNS }

// Attr returns the value of the named attribute, or "".
func (r Record) Attr(k string) string {
	for _, a := range r.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// JSONL returns a sink writing one JSON object per finished span to w,
// in finish order. Write errors are reported through errFn (nil to
// ignore) — exporting must never take the simulation down.
func JSONL(w io.Writer, errFn func(error)) Sink {
	enc := json.NewEncoder(w)
	return func(rec Record) {
		if err := enc.Encode(rec); err != nil && errFn != nil {
			errFn(err)
		}
	}
}

// ReadAll parses a JSONL trace back into records (cmd/tracetool).
func ReadAll(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ChromeWriter emits the Chrome trace-event format (the JSON array
// loadable in Perfetto or chrome://tracing). Each span becomes a
// complete ("X") event on pid 1 with tid = trace ID, so every binding
// lifecycle renders as its own row; span events become instant ("i")
// events on the same row, and the first span of each trace emits a
// thread_name metadata record naming the row after the binding.
type ChromeWriter struct {
	w     *bufio.Writer
	n     int
	named map[uint64]bool
	err   error
}

// NewChromeWriter starts the JSON array on w. Call Close to terminate
// it — a truncated array loads in neither viewer.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{w: bufio.NewWriter(w), named: make(map[uint64]bool)}
	cw.raw("[\n")
	return cw
}

// Sink adapts the writer for Tracer sinks.
func (cw *ChromeWriter) Sink() Sink { return func(rec Record) { cw.Write(rec) } }

// chromeEvent is one trace-event object. Timestamps are microseconds;
// they are emitted as exact decimals of the nanosecond clock so output
// stays byte-stable.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   jsonMicros        `json:"ts"`
	Dur  *jsonMicros       `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// jsonMicros renders nanoseconds as fixed-point microseconds ("12.345")
// without float formatting, keeping the encoding exact and stable.
type jsonMicros int64

func (m jsonMicros) MarshalJSON() ([]byte, error) {
	ns := int64(m)
	neg := ns < 0
	if neg {
		ns = -ns
	}
	b := make([]byte, 0, 24)
	if neg {
		b = append(b, '-')
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	b = append(b, '.')
	frac := ns % 1000
	b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b, nil
}

// Write converts one span record to trace events.
func (cw *ChromeWriter) Write(rec Record) {
	if cw.err != nil {
		return
	}
	if !cw.named[rec.Trace] {
		cw.named[rec.Trace] = true
		name := rec.Name
		if addr := rec.Attr("addr"); addr != "" {
			name = name + " " + addr
		}
		cw.event(chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: rec.Trace,
			Args: map[string]string{"name": name},
		})
	}
	args := make(map[string]string, len(rec.Attrs))
	for _, a := range rec.Attrs {
		args[a.K] = a.V
	}
	dur := jsonMicros(rec.DurationNS())
	cw.event(chromeEvent{
		Name: rec.Name, Cat: rec.Name, Ph: "X",
		TS: jsonMicros(rec.StartNS), Dur: &dur,
		PID: 1, TID: rec.Trace, Args: args,
	})
	for _, ev := range rec.Events {
		var evArgs map[string]string
		if ev.Detail != "" {
			evArgs = map[string]string{"detail": ev.Detail}
		}
		cw.event(chromeEvent{
			Name: ev.Name, Cat: "event", Ph: "i",
			TS: jsonMicros(ev.TNS), PID: 1, TID: rec.Trace,
			S: "t", Args: evArgs,
		})
	}
}

func (cw *ChromeWriter) event(ev chromeEvent) {
	b, err := json.Marshal(ev)
	if err != nil {
		cw.err = err
		return
	}
	if cw.n > 0 {
		cw.raw(",\n")
	}
	cw.n++
	cw.raw("  ")
	cw.rawBytes(b)
}

func (cw *ChromeWriter) raw(s string) {
	if cw.err == nil {
		_, cw.err = cw.w.WriteString(s)
	}
}

func (cw *ChromeWriter) rawBytes(b []byte) {
	if cw.err == nil {
		_, cw.err = cw.w.Write(b)
	}
}

// Close terminates the JSON array and flushes. Returns the first error
// encountered while writing.
func (cw *ChromeWriter) Close() error {
	cw.raw("\n]\n")
	if cw.err != nil {
		return cw.err
	}
	return cw.w.Flush()
}
