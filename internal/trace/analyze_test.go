package trace

import (
	"strings"
	"testing"
)

// buildAnalysis records two binding traces — one fast, one slow with a
// deeper tree — and returns their analysis.
func buildAnalysis(t *testing.T) *Analysis {
	t.Helper()
	var recs []Record
	tr := New(func(r Record) { recs = append(recs, r) })

	fast := tr.StartTrace(0, "binding", Attr{K: "addr", V: "10.5.0.1"})
	fs := tr.StartChild(0, fast, "spawn")
	fs.Finish(10e6) // 10 ms
	fast.Finish(20e6)

	slow := tr.StartTrace(0, "binding", Attr{K: "addr", V: "10.5.0.2"})
	ss := tr.StartChild(0, slow, "spawn")
	pl := tr.StartChild(0, ss, "place", Attr{K: "server", V: "s1"})
	cl := tr.StartChild(0, pl, "clone")
	cl.Finish(700e6)
	pl.Finish(750e6)
	ss.Finish(800e6)
	ac := tr.StartChild(800e6, slow, "active")
	ac.Finish(850e6)
	slow.Finish(900e6)

	return Analyze(recs)
}

func TestAnalyzeStageTable(t *testing.T) {
	a := buildAnalysis(t)
	if a.Spans != 7 || a.Traces != 2 || len(a.Roots) != 2 {
		t.Fatalf("spans=%d traces=%d roots=%d", a.Spans, a.Traces, len(a.Roots))
	}
	if got := a.StageNames(); len(got) != 5 || got[0] != "active" || got[1] != "binding" {
		t.Fatalf("stage names %v", got)
	}
	if a.Stage("binding").Count() != 2 || a.Stage("clone").Count() != 1 {
		t.Fatal("stage counts wrong")
	}
	out := a.StageTable().String()
	for _, want := range []string{"binding", "spawn", "place", "clone", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stage table missing %q:\n%s", want, out)
		}
	}
}

func TestSlowestRootsAndCriticalPath(t *testing.T) {
	a := buildAnalysis(t)
	slow := a.SlowestRoots("binding", 10)
	if len(slow) != 2 {
		t.Fatalf("slowest = %d", len(slow))
	}
	if slow[0].Attr("addr") != "10.5.0.2" || slow[1].Attr("addr") != "10.5.0.1" {
		t.Fatalf("order wrong: %s, %s", slow[0].Attr("addr"), slow[1].Attr("addr"))
	}
	if capped := a.SlowestRoots("binding", 1); len(capped) != 1 {
		t.Fatalf("cap ignored: %d", len(capped))
	}

	// The slow binding's critical path descends through the
	// latest-finishing children: binding > active would stop there,
	// but spawn (end 800ms) is... active ends at 850ms, so the path is
	// binding > active. Verify exactly that, then check the deep chain
	// from the spawn span.
	path := a.CriticalPath(slow[0])
	if len(path) != 2 || path[0].Name != "binding" || path[1].Name != "active" {
		t.Fatalf("critical path: %s", FormatPath(path))
	}
	spawn := a.Children(slow[0].Span)[0]
	deep := a.CriticalPath(spawn)
	if len(deep) != 3 || deep[0].Name != "spawn" || deep[1].Name != "place" || deep[2].Name != "clone" {
		t.Fatalf("spawn chain: %s", FormatPath(deep))
	}
	line := FormatPath(deep)
	if !strings.Contains(line, "place[s1]") || !strings.Contains(line, "750.0ms") {
		t.Fatalf("formatted path: %s", line)
	}
}
