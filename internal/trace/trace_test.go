package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"potemkin/internal/sim"
)

// A nil tracer (tracing off) must absorb every call without allocating
// or panicking — this is the zero-overhead-when-disabled contract the
// hot-path instrumentation relies on.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.StartTrace(0, "binding")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	c := tr.StartChild(0, s, "clone")
	if c != nil {
		t.Fatal("nil tracer returned a child span")
	}
	s.SetAttr("k", "v")
	s.Event(1, "ev", "")
	s.Finish(2)
	if !s.Done() {
		t.Fatal("nil span must report done")
	}
	tr.Push(1, s)
	tr.Pop(1, s)
	tr.Clear(1)
	if tr.Current(1) != nil {
		t.Fatal("nil tracer has a current span")
	}
	tr.ObserveStage("x", 1)
	tr.Instant(0, "crash")
	tr.FlushOpen(0)
	if tr.Stage("x") != nil || tr.StageNames() != nil || tr.OpenSpans() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}

func TestSpanTreeAndSinkOrder(t *testing.T) {
	var got []Record
	tr := New(func(r Record) { got = append(got, r) })

	root := tr.StartTrace(10, "binding", Attr{K: "addr", V: "10.5.0.1"})
	child := tr.StartChild(20, root, "spawn")
	grand := tr.StartChild(30, child, "clone")
	if root.Trace != child.Trace || child.Trace != grand.Trace {
		t.Fatalf("trace IDs diverge: %d %d %d", root.Trace, child.Trace, grand.Trace)
	}
	if child.Parent != root.ID || grand.Parent != child.ID {
		t.Fatal("parent links wrong")
	}
	root.Event(15, "queued", "1 pkt")

	grand.Finish(40)
	child.Finish(45)
	root.Finish(50)
	root.Finish(60) // double finish must be a no-op

	if len(got) != 3 {
		t.Fatalf("sink saw %d records, want 3", len(got))
	}
	// Finish order, not start order.
	if got[0].Name != "clone" || got[1].Name != "spawn" || got[2].Name != "binding" {
		t.Fatalf("finish order wrong: %s %s %s", got[0].Name, got[1].Name, got[2].Name)
	}
	if got[2].EndNS != 50 {
		t.Fatalf("double Finish moved End to %d", got[2].EndNS)
	}
	if got[2].Attr("addr") != "10.5.0.1" {
		t.Fatal("attr lost")
	}
	if len(got[2].Events) != 1 || got[2].Events[0].Name != "queued" {
		t.Fatal("event lost")
	}

	// Stage histograms: one sample per finished span, keyed by name.
	if n := tr.Stage("binding").Count(); n != 1 {
		t.Fatalf("binding stage count %d", n)
	}
	if got := tr.Stage("binding").Max(); got != 40.0/1e6 { // 40 ns as ms
		t.Fatalf("binding stage ms %v", got)
	}
	names := tr.StageNames()
	if len(names) != 3 || names[0] != "binding" || names[1] != "clone" || names[2] != "spawn" {
		t.Fatalf("stage names %v", names)
	}
}

func TestContextStack(t *testing.T) {
	tr := New()
	const key = 42
	root := tr.StartTrace(0, "binding")
	tr.Push(key, root)
	if tr.Current(key) != root {
		t.Fatal("current != root")
	}
	child := tr.StartChild(1, tr.Current(key), "spawn")
	tr.Push(key, child)
	if tr.Current(key) != child {
		t.Fatal("current != child")
	}
	tr.Pop(key, child)
	if tr.Current(key) != root {
		t.Fatal("pop did not restore root")
	}
	// Popping out of order (teardown race) must not corrupt the stack.
	tr.Pop(key, child)
	if tr.Current(key) != root {
		t.Fatal("stray pop removed root")
	}
	tr.Pop(key, root)
	if tr.Current(key) != nil {
		t.Fatal("stack not empty")
	}

	// Clear drops a whole stack at once (binding recycled with a spawn
	// span still pushed above its root).
	r2 := tr.StartTrace(5, "binding")
	c2 := tr.StartChild(6, r2, "spawn")
	tr.Push(key, r2)
	tr.Push(key, c2)
	tr.Clear(key)
	if tr.Current(key) != nil {
		t.Fatal("clear left context behind")
	}
}

func TestFlushOpenDeterministicOrder(t *testing.T) {
	var got []Record
	tr := New(func(r Record) { got = append(got, r) })
	a := tr.StartTrace(0, "a")
	b := tr.StartTrace(1, "b")
	c := tr.StartChild(2, b, "c")
	_ = a
	_ = c
	if tr.OpenSpans() != 3 {
		t.Fatalf("open %d", tr.OpenSpans())
	}
	tr.FlushOpen(100)
	if tr.OpenSpans() != 0 {
		t.Fatalf("open after flush %d", tr.OpenSpans())
	}
	if len(got) != 3 || got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "c" {
		t.Fatalf("flush order wrong: %+v", got)
	}
	for _, r := range got {
		if len(r.Events) == 0 || r.Events[len(r.Events)-1].Name != "unfinished" {
			t.Fatalf("span %s missing unfinished marker", r.Name)
		}
	}
}

// Identical call sequences must produce byte-identical JSONL output —
// the property the chaos-replay diffing rests on.
func TestJSONLDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := New(JSONL(&buf, func(err error) { t.Fatal(err) }))
		root := tr.StartTrace(1000, "binding", Attr{K: "addr", V: "10.5.0.9"})
		tr.Instant(1500, "shed", Attr{K: "addr", V: "10.5.0.10"})
		clone := tr.StartChild(2000, root, "clone", Attr{K: "server", V: "s0"})
		clone.Event(2500, "retry", "fault")
		clone.Finish(3000)
		root.Finish(4000)
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same calls, different JSONL:\n%s\n---\n%s", a, b)
	}
	recs, err := ReadAll(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("round-trip %d records", len(recs))
	}
	if recs[2].Name != "binding" || recs[2].StartNS != 1000 || recs[2].EndNS != 4000 {
		t.Fatalf("round-trip mangled root: %+v", recs[2])
	}
}

func TestChromeExport(t *testing.T) {
	var jsonl, chrome bytes.Buffer
	cw := NewChromeWriter(&chrome)
	tr := New(JSONL(&jsonl, nil), cw.Sink())
	root := tr.StartTrace(sim.Time(1*time.Millisecond), "binding", Attr{K: "addr", V: "10.5.0.1"})
	root.Event(sim.Time(1500*time.Microsecond), "active", "")
	root.Finish(sim.Time(2 * time.Millisecond))
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, chrome.String())
	}
	// thread_name metadata + complete span + instant event.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3:\n%s", len(events), chrome.String())
	}
	if events[0]["ph"] != "M" || events[1]["ph"] != "X" || events[2]["ph"] != "i" {
		t.Fatalf("phases wrong: %v %v %v", events[0]["ph"], events[1]["ph"], events[2]["ph"])
	}
	if events[1]["ts"].(float64) != 1000 || events[1]["dur"].(float64) != 1000 {
		t.Fatalf("ts/dur wrong: %v/%v", events[1]["ts"], events[1]["dur"])
	}

	// Converting the JSONL back through a second ChromeWriter must give
	// identical bytes (tracetool's conversion path).
	recs, err := ReadAll(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var chrome2 bytes.Buffer
	cw2 := NewChromeWriter(&chrome2)
	for _, r := range recs {
		cw2.Write(r)
	}
	if err := cw2.Close(); err != nil {
		t.Fatal(err)
	}
	if chrome.String() != chrome2.String() {
		t.Fatalf("JSONL->chrome conversion differs from direct export:\n%s\n---\n%s",
			chrome.String(), chrome2.String())
	}
}

func TestJSONMicrosFormatting(t *testing.T) {
	cases := map[int64]string{
		0:       "0.000",
		1:       "0.001",
		999:     "0.999",
		1000:    "1.000",
		1234567: "1234.567",
		-1500:   "-1.500",
	}
	for ns, want := range cases {
		b, err := jsonMicros(ns).MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Errorf("jsonMicros(%d) = %s, want %s", ns, b, want)
		}
	}
}
