package trace

import (
	"fmt"
	"sort"
	"strings"

	"potemkin/internal/metrics"
)

// Analysis is the offline view of a recorded trace: per-stage latency
// distributions keyed by span name, and the span trees reassembled per
// trace ID. cmd/tracetool renders it; tests drive it directly.
type Analysis struct {
	Spans  int
	Traces int

	// Roots are the top-level spans (Parent == 0) in stream order.
	Roots []*Record

	children map[uint64][]*Record // span id -> children, stream order
	stages   map[string]*metrics.Histogram
}

// Analyze reassembles records (as read by ReadAll) into an Analysis.
func Analyze(recs []Record) *Analysis {
	a := &Analysis{
		Spans:    len(recs),
		children: make(map[uint64][]*Record),
		stages:   make(map[string]*metrics.Histogram),
	}
	traces := make(map[uint64]struct{})
	for i := range recs {
		r := &recs[i]
		traces[r.Trace] = struct{}{}
		if r.Parent == 0 {
			a.Roots = append(a.Roots, r)
		} else {
			a.children[r.Parent] = append(a.children[r.Parent], r)
		}
		h := a.stages[r.Name]
		if h == nil {
			h = &metrics.Histogram{}
			a.stages[r.Name] = h
		}
		h.Observe(float64(r.DurationNS()) / 1e6)
	}
	a.Traces = len(traces)
	return a
}

// Children returns the direct children of span id, in stream order.
func (a *Analysis) Children(id uint64) []*Record { return a.children[id] }

// StageNames returns the span names seen, sorted.
func (a *Analysis) StageNames() []string {
	names := make([]string, 0, len(a.stages))
	for n := range a.stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stage returns the latency histogram (milliseconds) for the named
// span, or nil.
func (a *Analysis) Stage(name string) *metrics.Histogram { return a.stages[name] }

// StageTable renders the per-stage latency percentiles, one row per
// span name, sorted by name.
func (a *Analysis) StageTable() *metrics.Table {
	t := metrics.NewTable("Per-stage latency (ms)",
		"stage", "count", "mean", "p50", "p90", "p99", "max")
	for _, name := range a.StageNames() {
		h := a.stages[name]
		t.AddRow(name, h.Count(), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
	}
	return t
}

// SlowestRoots returns the n slowest roots with the given span name
// (longest duration first; ties broken by trace ID so the order is
// deterministic).
func (a *Analysis) SlowestRoots(name string, n int) []*Record {
	var roots []*Record
	for _, r := range a.Roots {
		if r.Name == name {
			roots = append(roots, r)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		di, dj := roots[i].DurationNS(), roots[j].DurationNS()
		if di != dj {
			return di > dj
		}
		return roots[i].Trace < roots[j].Trace
	})
	if n > 0 && len(roots) > n {
		roots = roots[:n]
	}
	return roots
}

// CriticalPath walks from root down through the latest-finishing child
// at each level — the chain of spans that determined when the root
// could end. For a binding that is bind → spawn → place → clone, or
// bind → active, whichever ran longest.
func (a *Analysis) CriticalPath(root *Record) []*Record {
	path := []*Record{root}
	cur := root
	for {
		kids := a.children[cur.Span]
		if len(kids) == 0 {
			return path
		}
		next := kids[0]
		for _, k := range kids[1:] {
			if k.EndNS > next.EndNS || (k.EndNS == next.EndNS && k.Span < next.Span) {
				next = k
			}
		}
		path = append(path, next)
		cur = next
	}
}

// FormatPath renders a critical path on one line:
//
//	binding[10.5.0.9] 812.4ms > spawn 795.0ms > place[s1] 790.2ms > clone 780.0ms
func FormatPath(path []*Record) string {
	var sb strings.Builder
	for i, r := range path {
		if i > 0 {
			sb.WriteString(" > ")
		}
		sb.WriteString(r.Name)
		if v := r.Attr("addr"); v != "" {
			fmt.Fprintf(&sb, "[%s]", v)
		} else if v := r.Attr("server"); v != "" {
			fmt.Fprintf(&sb, "[%s]", v)
		}
		fmt.Fprintf(&sb, " %.1fms", float64(r.DurationNS())/1e6)
	}
	return sb.String()
}
