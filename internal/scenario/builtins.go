package scenario

// The three shipped scenario families (EXPERIMENTS.md E14). Each is a
// function returning a value, not a shared pointer, so callers can
// mutate their copy; scenarios/*.json carries the same three campaigns
// in file form for the CLI and smoke scripts.
var builtins = map[string]func() Scenario{
	// multistage: the classic kill chain. A recon sweep maps the space,
	// an exploit wave compromises hosts, the infected guests beacon an
	// external C2 server and scan onward (uniform lateral movement).
	// Scores detection speed and C2 containment.
	"multistage": func() Scenario {
		return Scenario{
			Version: Version,
			Name:    "multistage",
			Notes:   "recon sweep, exploit wave, C2 beaconing, uniform lateral movement",
			Guest: GuestSpec{
				Base: "winxp",
				// Slow the worm down from the stock profile's 20 pps: under
				// internal reflection every lateral scan becomes a fresh
				// honeypot, so an unthrottled epidemic saturates the
				// reflection budget within seconds and the rest of the run
				// measures only drops.
				ScanRatePerSec: 2,
				C2Server:       "198.51.100.77",
				C2Port:         443,
				BeaconPeriodMS: 4000,
			},
			Stages: []Stage{
				{AtMS: 0, Kind: "recon", Count: 48, Sources: 4, SpreadMS: 2000},
				{AtMS: 3000, Kind: "exploit", Count: 6, Sources: 2, SpreadMS: 1000},
			},
			SettleMS: 12000,
		}
	},
	// fingerprint: deception-aware malware. Compromised guests probe
	// random external addresses with canary connections; a farm whose
	// containment swallows them is fingerprinted and the malware goes
	// quiet. Scores deception survival time against the containment
	// policy (internal reflection answers canaries; drop-all does not).
	"fingerprint": func() Scenario {
		return Scenario{
			Version: Version,
			Name:    "fingerprint",
			Notes:   "exploit wave, then canary probes that fingerprint the farm and go quiet",
			Guest: GuestSpec{
				Base: "winxp",
				// Canary-only malware: scanning off isolates the deception
				// signal from worm noise.
				ScanRatePerSec:       -1,
				CanaryRatePerSec:     2,
				CanaryTimeoutMS:      800,
				FingerprintThreshold: 3,
			},
			Stages: []Stage{
				{AtMS: 0, Kind: "exploit", Count: 8, Sources: 4, SpreadMS: 1000},
			},
			SettleMS: 12000,
		}
	},
	// p2p: structured overlay propagation. A few seed infections spread
	// through a Chord-style finger table inside the monitored space
	// instead of uniform scanning — the traffic stays internal, so the
	// farm sees the whole epidemic. Scores capture cost as the overlay
	// saturates.
	"p2p": func() Scenario {
		return Scenario{
			Version: Version,
			Name:    "p2p",
			Notes:   "seed exploits, then peer-table lateral movement through a Chord-style overlay",
			Guest: GuestSpec{
				Base: "winxp",
				// Propagation rides the scan loop; 4 pps through 16 fingers
				// saturates the reachable overlay without flooding.
				ScanRatePerSec: 4,
				P2PPeers:       16,
			},
			Stages: []Stage{
				{AtMS: 0, Kind: "exploit", Count: 4, Sources: 4, SpreadMS: 500},
			},
			SettleMS: 12000,
		}
	},
}
