package scenario

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func space(t *testing.T) netsim.Prefix {
	t.Helper()
	p, err := netsim.ParsePrefix("10.5.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuiltinsCompileDeterministically(t *testing.T) {
	sp := space(t)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := Compile(Builtin(name), 7, sp)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Compile(Builtin(name), 7, sp)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Records) == 0 {
				t.Fatal("no records compiled")
			}
			if len(a.Records) != len(b.Records) {
				t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
			}
			for i := range a.Records {
				if !a.Records[i].Equal(&b.Records[i]) {
					t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
				}
			}
			// Time-sorted, sources external, destinations monitored.
			for i, r := range a.Records {
				if i > 0 && r.At < a.Records[i-1].At {
					t.Fatalf("records not time-sorted at %d", i)
				}
				if sp.Contains(r.Src) {
					t.Fatalf("attacker source %s inside monitored space", r.Src)
				}
				if !sp.Contains(r.Dst) {
					t.Fatalf("campaign target %s outside monitored space", r.Dst)
				}
			}
			// A different seed perturbs the draw.
			c, err := Compile(Builtin(name), 8, sp)
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for i := range a.Records {
				if !a.Records[i].Equal(&c.Records[i]) {
					same = false
					break
				}
			}
			if same {
				t.Fatal("seed change did not perturb the plan")
			}
		})
	}
}

func TestExploitRecordsCarryPayload(t *testing.T) {
	p, err := Compile(Builtin("multistage"), 1, space(t))
	if err != nil {
		t.Fatal(err)
	}
	exploits := 0
	for _, r := range p.Records {
		if len(r.Payload) == 0 {
			continue
		}
		exploits++
		if r.PayLen != uint16(len(r.Payload)) {
			t.Fatalf("PayLen %d != len(Payload) %d", r.PayLen, len(r.Payload))
		}
		if !bytes.Contains(r.Payload, []byte("MS04-011")) {
			t.Fatalf("exploit payload missing signature: %q", r.Payload)
		}
		if r.Flags != netsim.FlagSYN|netsim.FlagPSH {
			t.Fatalf("exploit flags = %x", r.Flags)
		}
	}
	if exploits != 6 {
		t.Fatalf("multistage should compile 6 exploit records, got %d", exploits)
	}
}

func TestLoadRoundTripAndRejects(t *testing.T) {
	s := Builtin("fingerprint")
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != s.Hash() {
		t.Fatal("round-trip changed the scenario")
	}

	for name, body := range map[string]string{
		"unknown field": `{"version":1,"name":"x","stagez":[]}`,
		"bad version":   `{"version":9,"name":"x","stages":[{"at_ms":0,"kind":"recon","count":1}]}`,
		"bad kind":      `{"version":1,"name":"x","stages":[{"at_ms":0,"kind":"ddos","count":1}]}`,
		"no stages":     `{"version":1,"name":"x","stages":[]}`,
		"bad base":      `{"version":1,"name":"x","guest":{"base":"plan9"},"stages":[{"at_ms":0,"kind":"recon","count":1}]}`,
		"c2-less port":  `{"version":1,"name":"x","guest":{"c2_port":443},"stages":[{"at_ms":0,"kind":"recon","count":1}]}`,
		"too many p2p":  `{"version":1,"name":"x","guest":{"p2p_peers":900},"stages":[{"at_ms":0,"kind":"recon","count":1}]}`,
	} {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s: Load accepted %s", name, body)
		}
	}
}

func TestExploitNeedsVulnerability(t *testing.T) {
	s := Builtin("multistage")
	s.Guest.Base = "linux"
	s.Guest.C2Server, s.Guest.C2Port, s.Guest.BeaconPeriodMS = "", 0, 0
	if _, err := Compile(s, 1, space(t)); err == nil {
		t.Fatal("compiling an exploit stage against an invulnerable guest should fail")
	}
}

func TestLookupBuiltinAndFile(t *testing.T) {
	if _, err := Lookup("multistage"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup should reject unknown names")
	}
	path := t.TempDir() + "/s.json"
	var buf bytes.Buffer
	if err := Save(&buf, Builtin("p2p")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Lookup(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "p2p" {
		t.Fatalf("loaded %q", s.Name)
	}
}

func TestP2PFingerTables(t *testing.T) {
	sp := space(t)
	p, err := Compile(Builtin("p2p"), 3, sp)
	if err != nil {
		t.Fatal(err)
	}
	factory := p.PickTargetFor()
	if factory == nil {
		t.Fatal("p2p scenario should build a picker factory")
	}
	self := sp.Nth(100)
	pick := factory(self)
	rng := sim.NewRNG(5)
	seen := map[netsim.Addr]bool{}
	for i := 0; i < 4096; i++ {
		a := pick(rng)
		if !sp.Contains(a) {
			t.Fatalf("peer %s outside monitored space", a)
		}
		if a == self {
			t.Fatal("guest picked itself")
		}
		seen[a] = true
	}
	if len(seen) == 0 || len(seen) > 16 {
		t.Fatalf("finger table should bound the working set to <= 16 peers, saw %d", len(seen))
	}
	// Uniform scenarios keep the default pick.
	u, err := Compile(Builtin("multistage"), 3, sp)
	if err != nil {
		t.Fatal(err)
	}
	if u.PickTargetFor() != nil {
		t.Fatal("non-p2p scenario should not override the target picker")
	}
}

func TestFactsAreModeFree(t *testing.T) {
	p, err := Compile(Builtin("multistage"), 11, space(t))
	if err != nil {
		t.Fatal(err)
	}
	f := p.Facts("internal-reflect")
	if f.Scenario != "multistage" || f.Seed != 11 || f.Steps != len(p.Records) {
		t.Fatalf("facts: %+v", f)
	}
	last := time.Duration(p.Records[len(p.Records)-1].At).Milliseconds()
	if want := last + p.Settle.Milliseconds(); f.HorizonMS != want {
		t.Fatalf("horizon = %d, want last record %d + settle %d", f.HorizonMS, last, p.Settle.Milliseconds())
	}
}
