package scenario

import (
	"fmt"
	"sort"
	"time"

	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/pace"
	"potemkin/internal/score"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// attackerBase is where campaign sources live: 198.18.0.0/16 (the
// RFC 2544 benchmarking block — guaranteed disjoint from anything the
// farm would monitor in practice, and checked against the space).
const attackerBase = netsim.Addr(0xC6120000)

// seedSalt separates the scenario compiler's stream from every other
// consumer of the run seed ("scen" in ASCII).
const seedSalt = 0x7363656e

// Plan is a compiled campaign: every externally-driven packet with its
// arrival time, plus the guest personality and lateral-movement
// topology the stages trigger. A Plan is pure data derived from
// (scenario, seed, space) — replaying it through any engine, in any
// execution mode, produces the same simulation.
type Plan struct {
	Scenario *Scenario
	Profile  *guest.Profile
	Space    netsim.Prefix
	Seed     uint64
	// Records is the attacker's packet schedule, time-sorted. Exploit
	// records carry the actual payload bytes (trace format v2), so the
	// plan round-trips through trace files and the cluster codec.
	Records []telescope.Record
	// Settle is how long the simulation keeps running after the last
	// record.
	Settle time.Duration
}

// Compile turns a scenario into a packet plan. All randomness comes
// from one RNG seeded by (seed, scenario content), drawn in a fixed
// order — the compiler is the single source of nondeterminism for a
// campaign, and it has none.
func Compile(s *Scenario, seed uint64, space netsim.Prefix) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	profile, err := s.Profile()
	if err != nil {
		return nil, err
	}
	if space.Contains(attackerBase) {
		return nil, fmt.Errorf("scenario: monitored space %s contains the attacker source block %s/16", space, attackerBase)
	}
	if profile.C2Server != 0 && space.Contains(profile.C2Server) {
		return nil, fmt.Errorf("scenario: %q places its C2 server %s inside the monitored space %s", s.Name, profile.C2Server, space)
	}

	var vuln *guest.ServiceSpec
	for i := range profile.Services {
		if profile.Services[i].Vulnerable {
			vuln = &profile.Services[i]
		}
	}

	rng := sim.NewRNG(seed ^ seedSalt ^ s.Hash())
	p := &Plan{
		Scenario: s,
		Profile:  profile,
		Space:    space,
		Seed:     seed,
		Settle:   time.Duration(s.SettleMS) * time.Millisecond,
	}
	if s.SettleMS == 0 {
		p.Settle = 20 * time.Second
	}

	for i, st := range s.Stages {
		srcs := attackerSources(rng, max(st.Sources, 1))
		// Constant-rate spacing over the spread window, via the same
		// schedule arithmetic the wall-clock pacing governor uses.
		rate := 0.0
		if st.SpreadMS > 0 {
			rate = float64(st.Count) / (float64(st.SpreadMS) / 1000)
		}
		start := time.Duration(st.AtMS) * time.Millisecond
		for n := 0; n < st.Count; n++ {
			rec := telescope.Record{
				At:      sim.Time(start + pace.Schedule(uint64(n), rate)),
				Src:     srcs[n%len(srcs)],
				Dst:     space.Nth(rng.Uint64n(space.Size())),
				SrcPort: uint16(32768 + rng.Uint64n(28232)),
			}
			switch st.Kind {
			case "recon":
				rec.Proto = netsim.ProtoTCP
				rec.Flags = netsim.FlagSYN
				rec.DstPort = st.Port
				if rec.DstPort == 0 {
					if vuln != nil {
						rec.DstPort = vuln.Port
					} else {
						rec.DstPort = 445
					}
				}
			case "exploit":
				if vuln == nil {
					return nil, fmt.Errorf("scenario: %q stage %d exploits, but guest %q has no vulnerability", s.Name, i, profile.Name)
				}
				payload := profile.ExploitPayload(0)
				rec.Proto = vuln.Proto
				rec.DstPort = vuln.Port
				rec.Payload = payload
				rec.PayLen = uint16(len(payload))
				if vuln.Proto == netsim.ProtoTCP {
					rec.Flags = netsim.FlagSYN | netsim.FlagPSH
				}
			}
			p.Records = append(p.Records, rec)
		}
	}
	sort.SliceStable(p.Records, func(i, j int) bool { return p.Records[i].At < p.Records[j].At })
	return p, nil
}

// attackerSources draws n distinct campaign source addresses.
func attackerSources(rng *sim.RNG, n int) []netsim.Addr {
	srcs := make([]netsim.Addr, 0, n)
	seen := make(map[netsim.Addr]bool, n)
	for len(srcs) < n {
		a := attackerBase + netsim.Addr(rng.Uint64n(1<<16))
		if seen[a] {
			continue
		}
		seen[a] = true
		srcs = append(srcs, a)
	}
	return srcs
}

// Facts describes the compiled run for the scorecard. policy is the
// containment mode the run executes under — an option, not part of the
// scenario — and nothing here depends on execution mode, so cards from
// sequential, parallel, and cluster runs carry identical Facts.
func (p *Plan) Facts(policy string) score.Facts {
	horizon := p.Settle.Milliseconds()
	if n := len(p.Records); n > 0 {
		horizon += time.Duration(p.Records[n-1].At).Milliseconds()
	}
	return score.Facts{
		Scenario:  p.Scenario.Name,
		Version:   p.Scenario.Version,
		Seed:      p.Seed,
		Space:     p.Space.String(),
		Policy:    policy,
		Guest:     p.Profile.Name,
		Steps:     len(p.Records),
		HorizonMS: horizon,
	}
}

// PickTargetFor returns the per-guest lateral-movement picker for
// scenarios with a P2P overlay, nil otherwise (keeping the engine's
// default uniform pick). Each guest's peer table is its Chord-style
// finger set — the addresses at power-of-two distances around the
// monitored space — so propagation follows overlay structure instead
// of uniform scanning, and every table is a pure function of the
// guest's own address.
func (p *Plan) PickTargetFor() func(self netsim.Addr) guest.TargetPicker {
	n := p.Scenario.Guest.P2PPeers
	if n <= 0 {
		return nil
	}
	space := p.Space
	return func(self netsim.Addr) guest.TargetPicker {
		size := space.Size()
		base := space.Index(self)
		fingers := make([]netsim.Addr, 0, n)
		for k := 0; k < n; k++ {
			idx := (base + 1<<(uint(k)%63)) % size
			if idx == base {
				idx = (base + 1) % size
			}
			fingers = append(fingers, space.Nth(idx))
		}
		return func(r *sim.RNG) netsim.Addr {
			return fingers[r.Uint64n(uint64(len(fingers)))]
		}
	}
}
