// Package scenario is the deterministic attacker-campaign engine: a
// declarative, versioned description of a multi-stage attack — recon
// sweeps, exploit waves, and the guest-side behavior they trigger
// (C2 beaconing, honeypot fingerprinting, structured P2P lateral
// movement) — compiled into a time-sorted packet plan that replays
// byte-identically under the sequential, parallel, and cluster
// engines. Scenario files are plain JSON (stdlib-parseable, no schema
// tooling); three builtin families ship compiled in so the CLI and
// tests never depend on file paths.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"potemkin/internal/guest"
	"potemkin/internal/netsim"
)

// Version is the scenario format version this package reads and the
// builtins declare. Bump only with a migration path: files carry their
// version and Load rejects ones this code does not understand.
const Version = 1

// Stage is one externally-driven wave of the campaign. Steps are
// spaced over [AtMS, AtMS+SpreadMS) at a constant rate (all at AtMS
// when SpreadMS is 0), rotating across Sources distinct attacker
// addresses.
type Stage struct {
	// AtMS is the stage's start, in milliseconds from campaign start.
	AtMS int64 `json:"at_ms"`
	// Kind is "recon" (SYN probes, no payload) or "exploit" (the guest
	// profile's exploit payload at its vulnerable service).
	Kind string `json:"kind"`
	// Count is how many packets the stage sends.
	Count int `json:"count"`
	// Sources is how many distinct attacker addresses the stage rotates
	// through (default 1).
	Sources int `json:"sources,omitempty"`
	// Port overrides the destination port for recon stages; 0 probes
	// the guest's vulnerable port.
	Port uint16 `json:"port,omitempty"`
	// SpreadMS spaces the stage's packets over this window.
	SpreadMS int64 `json:"spread_ms,omitempty"`
}

// GuestSpec derives the campaign's guest personality from a stock base
// profile plus behavioral overrides. The zero value means "the base
// profile, unchanged".
type GuestSpec struct {
	// Base names the stock personality: "winxp" (default), "sqlserver",
	// or "linux".
	Base string `json:"base,omitempty"`
	// ScanRatePerSec overrides the base scan rate when > 0; < 0
	// disables scanning; 0 keeps the base rate.
	ScanRatePerSec float64 `json:"scan_rate_per_sec,omitempty"`

	// Fingerprinting: infected guests probe random external addresses
	// with canary connections and go quiet once FingerprintThreshold
	// consecutive canaries vanish (see guest.Profile).
	CanaryRatePerSec     float64 `json:"canary_rate_per_sec,omitempty"`
	CanaryPort           uint16  `json:"canary_port,omitempty"`
	CanaryTimeoutMS      int     `json:"canary_timeout_ms,omitempty"`
	FingerprintThreshold int     `json:"fingerprint_threshold,omitempty"`

	// C2: infected guests beacon this external server until quiet.
	C2Server       string `json:"c2_server,omitempty"`
	C2Port         uint16 `json:"c2_port,omitempty"`
	BeaconPeriodMS int    `json:"beacon_period_ms,omitempty"`

	// P2PPeers > 0 switches lateral movement from uniform scanning to a
	// structured overlay: each infected guest targets a Chord-style
	// finger table of this many peers inside the monitored space.
	P2PPeers int `json:"p2p_peers,omitempty"`
}

// Scenario is one declarative attacker campaign.
type Scenario struct {
	Version int       `json:"version"`
	Name    string    `json:"name"`
	Notes   string    `json:"notes,omitempty"`
	Guest   GuestSpec `json:"guest"`
	Stages  []Stage   `json:"stages"`
	// SettleMS keeps the simulation running after the last stage so
	// infections propagate, beacons fire, and detections land. Default
	// 20000.
	SettleMS int64 `json:"settle_ms,omitempty"`
}

// Validate reports every problem with the scenario at once, one per
// line, in the collect-all style of potemkin.Options.Validate.
func (s *Scenario) Validate() error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("scenario: "+format, args...))
	}
	if s.Version != Version {
		add("version %d is not supported (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		add("scenario has no name")
	}
	if len(s.Stages) == 0 {
		add("%q has no stages", s.Name)
	}
	for i, st := range s.Stages {
		switch st.Kind {
		case "recon", "exploit":
		default:
			add("%q stage %d has unknown kind %q (want recon or exploit)", s.Name, i, st.Kind)
		}
		if st.Count <= 0 {
			add("%q stage %d has count %d", s.Name, i, st.Count)
		}
		if st.AtMS < 0 || st.SpreadMS < 0 {
			add("%q stage %d has negative timing", s.Name, i)
		}
		if st.Sources < 0 {
			add("%q stage %d has negative sources", s.Name, i)
		}
		if st.Kind == "exploit" && st.Port != 0 {
			add("%q stage %d sets a port on an exploit stage (the vulnerable service decides)", s.Name, i)
		}
	}
	g := s.Guest
	switch g.Base {
	case "", "winxp", "sqlserver", "linux":
	default:
		add("%q names unknown guest base %q (want winxp, sqlserver, or linux)", s.Name, g.Base)
	}
	if g.CanaryRatePerSec < 0 || g.CanaryTimeoutMS < 0 || g.FingerprintThreshold < 0 {
		add("%q has negative fingerprinting parameters", s.Name)
	}
	if g.C2Server != "" {
		if _, err := netsim.ParseAddr(g.C2Server); err != nil {
			add("%q has unparseable c2_server: %v", s.Name, err)
		}
	} else if g.C2Port != 0 || g.BeaconPeriodMS != 0 {
		add("%q configures C2 beaconing without a c2_server", s.Name)
	}
	if g.BeaconPeriodMS < 0 {
		add("%q has negative beacon period", s.Name)
	}
	if g.P2PPeers < 0 || g.P2PPeers > 64 {
		add("%q has p2p_peers %d (want 0..64)", s.Name, g.P2PPeers)
	}
	if s.SettleMS < 0 {
		add("%q has negative settle_ms", s.Name)
	}
	return errors.Join(errs...)
}

// Hash is a stable identity of the scenario's full content (FNV-1a
// over its canonical JSON). Cluster handshakes fold it into the config
// tag so a coordinator and worker loaded from divergent scenario files
// are rejected instead of silently diverging; the compiler folds it
// into the RNG seed so different campaigns draw different streams.
func (s *Scenario) Hash() uint64 {
	b, err := json.Marshal(s)
	if err != nil {
		// A Scenario is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("scenario: hashing %q: %v", s.Name, err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Load parses and validates a scenario from JSON. Unknown fields are
// rejected so typos fail loudly instead of silently meaning defaults.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile loads a scenario from a JSON file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Save writes the scenario as indented JSON (the same form Load reads).
func Save(w io.Writer, s *Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Lookup resolves arg as a builtin family name first, then as a file
// path — so `-scenario multistage` and `-scenario ./my.json` both work.
func Lookup(arg string) (*Scenario, error) {
	if s := Builtin(arg); s != nil {
		return s, nil
	}
	if _, err := os.Stat(arg); err != nil {
		return nil, fmt.Errorf("scenario: %q is neither a builtin (%v) nor a readable file", arg, Names())
	}
	return LoadFile(arg)
}

// Names lists the builtin scenario families, sorted.
func Names() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin returns a fresh copy of a builtin scenario, nil if unknown.
func Builtin(name string) *Scenario {
	f, ok := builtins[name]
	if !ok {
		return nil
	}
	s := f()
	return &s
}

// baseProfile returns the stock guest personality a spec builds on.
func baseProfile(base string) *guest.Profile {
	switch base {
	case "sqlserver":
		return guest.SQLServer()
	case "linux":
		return guest.LinuxServer()
	default:
		return guest.WindowsXP()
	}
}

// Profile derives the guest personality the scenario runs: the base
// profile with the spec's behavioral overrides applied and validated.
func (s *Scenario) Profile() (*guest.Profile, error) {
	g := s.Guest
	p := baseProfile(g.Base)
	p.Name = p.Name + "+" + s.Name
	switch {
	case g.ScanRatePerSec > 0:
		p.ScanRatePerSec = g.ScanRatePerSec
	case g.ScanRatePerSec < 0:
		p.ScanRatePerSec = 0
	}
	p.CanaryRatePerSec = g.CanaryRatePerSec
	p.CanaryPort = g.CanaryPort
	p.CanaryTimeoutMS = g.CanaryTimeoutMS
	p.FingerprintThreshold = g.FingerprintThreshold
	if g.C2Server != "" {
		c2, err := netsim.ParseAddr(g.C2Server)
		if err != nil {
			return nil, fmt.Errorf("scenario: %q: %w", s.Name, err)
		}
		p.C2Server = c2
		p.C2Port = g.C2Port
		p.BeaconPeriodMS = g.BeaconPeriodMS
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %q derives an invalid guest: %w", s.Name, err)
	}
	return p, nil
}
