package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"potemkin/internal/core"
	"potemkin/internal/farm"
	"potemkin/internal/fault"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// TestMain doubles as the worker-process entry point for the SIGKILL
// recovery test: when the env var is set, this test binary IS a cluster
// worker (re-exec'd by the test), not a test run.
func TestMain(m *testing.M) {
	if addr := os.Getenv("POTEMKIN_CLUSTER_WORKER_ADDR"); addr != "" {
		runWorkerChild(addr)
		return
	}
	os.Exit(m.Run())
}

func runWorkerChild(addr string) {
	var seed uint64
	fmt.Sscanf(os.Getenv("POTEMKIN_CLUSTER_WORKER_SEED"), "%d", &seed)
	err := RunWorker(WorkerConfig{
		Addr:      addr,
		Engine:    testEngineConfig(seed, nil),
		ConfigTag: testTag,
		Name:      os.Getenv("POTEMKIN_CLUSTER_WORKER_NAME"),
	})
	if err != nil && !errors.Is(err, ErrKilled) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

const testTag = "cluster-test-scenario"

// testEngineConfig is the shared SPMD scenario: both the oracle engine
// and every worker (in-process or re-exec'd) build exactly this.
func testEngineConfig(seed uint64, faults *fault.Config) core.ShardEngineConfig {
	gc := gateway.DefaultConfig()
	gc.IdleTimeout = 2 * time.Second
	gc.ReflectionLimit = 128
	fc := farm.DefaultConfig()
	fc.Servers = 8
	fc.Profile = guest.MultiStageDNS("update.evil.example")
	return core.ShardEngineConfig{
		Shards:   4,
		Parallel: true, // workers run their domains on goroutines (-race exercises isolation)
		Seed:     seed,
		Gateway:  gc,
		Farm:     fc,
		Fault:    faults,
		// Markers only: the coordinator requests event/trace collection
		// when these are non-nil; workers buffer and ship the bytes.
		EventLog: io.Discard,
		TraceOut: io.Discard,
	}
}

// exploitPackets seeds four infections spread across the shards so
// reflection traffic crosses domain (and process) boundaries.
func exploitPackets(p *guest.Profile) []*netsim.Packet {
	payload := p.ExploitPayload(0)
	var pkts []*netsim.Packet
	for i := 0; i < 4; i++ {
		src := netsim.MustParseAddr(fmt.Sprintf("198.51.100.%d", 10+i))
		dst := netsim.MustParseAddr(fmt.Sprintf("10.5.7.%d", 20+i))
		pkt := netsim.TCPSyn(src, dst, 40000, p.ScanDstPort, 1)
		pkt.Flags |= netsim.FlagPSH
		pkt.Payload = payload
		pkts = append(pkts, pkt)
	}
	return pkts
}

func testRecords(t *testing.T, seed uint64) []telescope.Record {
	t.Helper()
	gcfg := telescope.DefaultGenConfig()
	gcfg.Space = gateway.DefaultConfig().Space
	gcfg.Duration = time.Second
	gcfg.Rate = 300
	gcfg.Seed = seed
	recs, err := telescope.Generate(gcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return recs
}

// runOut is everything observable a run produces, cluster or oracle.
type runOut struct {
	gw       gateway.Stats
	fm       farm.Stats
	gs       guest.Stats
	live     int
	infected int
	bindings int
	mem      uint64
	dns      uint64
	injected int
	now      sim.Time
	faults   []string
	events   []byte
	trace    []byte
}

// runOracle executes the scenario on a single-process sequential
// ShardEngine — the byte-equality baseline.
func runOracle(t *testing.T, seed uint64, faults *fault.Config, extra time.Duration) runOut {
	t.Helper()
	cfg := testEngineConfig(seed, faults)
	cfg.Parallel = false
	var ev, tr bytes.Buffer
	cfg.EventLog, cfg.TraceOut = &ev, &tr
	eng, err := core.NewShardEngine(cfg)
	if err != nil {
		t.Fatalf("NewShardEngine: %v", err)
	}
	eng.StartFaults()
	for _, pkt := range exploitPackets(cfg.Farm.Profile) {
		eng.InjectBarrier(pkt)
	}
	injected, err := eng.Replay(&telescope.SliceSource{Recs: testRecords(t, seed)}, nil, time.Millisecond)
	if err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	eng.RunFor(extra)
	out := runOut{
		gw: eng.GatewayStats(), fm: eng.FarmStats(), gs: eng.GuestTotals(),
		live: eng.LiveVMs(), infected: eng.InfectedVMs(), bindings: eng.NumBindings(),
		mem: eng.MemoryInUse(), dns: eng.DNSQueries(),
		injected: injected, now: eng.Now(), faults: eng.FaultLog(),
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("oracle close: %v", err)
	}
	out.events, out.trace = ev.Bytes(), tr.Bytes()
	return out
}

// clusterHarness runs a coordinator plus in-process workers over TCP
// loopback.
type clusterHarness struct {
	c       *Coordinator
	wg      sync.WaitGroup
	errs    []error
	workers int
}

func startCluster(t *testing.T, seed uint64, faults *fault.Config, workers, standbys int, tweak func(cfg *Config)) *clusterHarness {
	t.Helper()
	cfg := Config{
		Engine:            testEngineConfig(seed, faults),
		ConfigTag:         testTag,
		ListenAddr:        "127.0.0.1:0",
		Workers:           workers,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		RecoveryWait:      10 * time.Second,
		Logf:              t.Logf,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h := &clusterHarness{c: c, errs: make([]error, workers+standbys), workers: workers}
	for i := 0; i < workers+standbys; i++ {
		i := i
		wc := WorkerConfig{
			Addr:              c.Addr().String(),
			Engine:            testEngineConfig(seed, faults),
			ConfigTag:         testTag,
			Name:              fmt.Sprintf("w%d", i),
			HeartbeatInterval: 50 * time.Millisecond,
			Logf:              t.Logf,
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.errs[i] = RunWorker(wc)
		}()
	}
	if err := c.WaitReady(30 * time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return h
}

// drive runs the standard scenario through the cluster and merges the
// results into the comparable form.
func (h *clusterHarness) drive(t *testing.T, seed uint64, extra time.Duration) (runOut, error) {
	t.Helper()
	for _, pkt := range exploitPackets(testEngineConfig(seed, nil).Farm.Profile) {
		h.c.Inject(pkt)
	}
	injected, err := h.c.Replay(&telescope.SliceSource{Recs: testRecords(t, seed)}, nil, time.Millisecond)
	if err != nil {
		return runOut{}, err
	}
	h.c.RunFor(extra)
	res, err := h.c.Results()
	if err != nil {
		return runOut{}, err
	}
	return runOut{
		gw: res.Gateway, fm: res.Farm, gs: res.Guest,
		live: res.LiveVMs, infected: res.InfectedVMs, bindings: res.Bindings,
		mem: res.Memory, dns: res.DNSQueries,
		injected: injected, now: res.Now, faults: res.FaultLog,
		events: res.Events, trace: res.Trace,
	}, nil
}

func (h *clusterHarness) shutdown(t *testing.T) {
	t.Helper()
	h.c.Close()
	h.wg.Wait()
}

// compareRuns asserts two runs are observably identical, bytes
// included.
func compareRuns(t *testing.T, want, got runOut, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.gw, got.gw) {
		t.Errorf("%s: gateway stats differ:\nwant %+v\ngot  %+v", label, want.gw, got.gw)
	}
	if !reflect.DeepEqual(want.fm, got.fm) {
		t.Errorf("%s: farm stats differ:\nwant %+v\ngot  %+v", label, want.fm, got.fm)
	}
	if !reflect.DeepEqual(want.gs, got.gs) {
		t.Errorf("%s: guest totals differ:\nwant %+v\ngot  %+v", label, want.gs, got.gs)
	}
	if want.live != got.live || want.infected != got.infected || want.bindings != got.bindings {
		t.Errorf("%s: live/infected/bindings differ: want %d/%d/%d got %d/%d/%d", label,
			want.live, want.infected, want.bindings, got.live, got.infected, got.bindings)
	}
	if want.mem != got.mem || want.dns != got.dns {
		t.Errorf("%s: memory/dns differ: want %d/%d got %d/%d", label, want.mem, want.dns, got.mem, got.dns)
	}
	if want.injected != got.injected {
		t.Errorf("%s: injected packets differ: want %d got %d", label, want.injected, got.injected)
	}
	if want.now != got.now {
		t.Errorf("%s: final clock differs: want %v got %v", label, want.now, got.now)
	}
	if !reflect.DeepEqual(want.faults, got.faults) {
		t.Errorf("%s: fault logs differ:\nwant %q\ngot  %q", label, want.faults, got.faults)
	}
	if !bytes.Equal(want.events, got.events) {
		t.Errorf("%s: event-log bytes differ (%d vs %d bytes)", label, len(want.events), len(got.events))
	}
	if !bytes.Equal(want.trace, got.trace) {
		t.Errorf("%s: trace bytes differ (%d vs %d bytes)", label, len(want.trace), len(got.trace))
	}
}

// TestClusterMatchesSequential is the tentpole equivalence proof: the
// same scenario split across two worker processes (in-process here,
// but over real TCP and the real protocol) produces byte-identical
// stats, event log, and trace to the single-process sequential oracle.
func TestClusterMatchesSequential(t *testing.T) {
	const seed = 7
	oracle := runOracle(t, seed, nil, 2*time.Second)

	h := startCluster(t, seed, nil, 2, 0, nil)
	got, err := h.drive(t, seed, 2*time.Second)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	h.shutdown(t)
	for i, werr := range h.errs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	compareRuns(t, oracle, got, "cluster vs sequential")
	if h.c.Recoveries() != 0 {
		t.Errorf("unexpected recoveries: %d", h.c.Recoveries())
	}
}

// chaosFaults is a fault schedule touching every injector path:
// scripted crash/recovery, clone failure and latency windows, a link
// cut, and Poisson background crashes.
func chaosFaults() *fault.Config {
	return &fault.Config{
		Script: []fault.Action{
			{At: 100 * time.Millisecond, Kind: fault.KindCloneFail, Prob: 0.5, Duration: 300 * time.Millisecond},
			{At: 200 * time.Millisecond, Kind: fault.KindCrash, Server: 1, Duration: 500 * time.Millisecond},
			{At: 400 * time.Millisecond, Kind: fault.KindLinkDown, Duration: 100 * time.Millisecond},
			{At: 600 * time.Millisecond, Kind: fault.KindCloneSlow, Factor: 4, Duration: 200 * time.Millisecond},
		},
		CrashRate:  0.2,
		MeanOutage: time.Second,
	}
}

// TestFaultScheduleAcrossModes locks the fault layer to the seed: the
// same configuration produces an identical applied-fault schedule —
// and identical downstream bytes — in single-process sequential,
// single-process parallel, and cluster execution.
func TestFaultScheduleAcrossModes(t *testing.T) {
	const seed = 13
	faults := chaosFaults()
	seq := runOracle(t, seed, faults, time.Second)
	if len(seq.faults) == 0 {
		t.Fatal("fault schedule empty; the scenario is not exercising the injectors")
	}

	// Parallel in-process engine.
	cfg := testEngineConfig(seed, faults)
	var ev, tr bytes.Buffer
	cfg.EventLog, cfg.TraceOut = &ev, &tr
	eng, err := core.NewShardEngine(cfg)
	if err != nil {
		t.Fatalf("NewShardEngine: %v", err)
	}
	eng.StartFaults()
	for _, pkt := range exploitPackets(cfg.Farm.Profile) {
		eng.InjectBarrier(pkt)
	}
	if _, err := eng.Replay(&telescope.SliceSource{Recs: testRecords(t, seed)}, nil, time.Millisecond); err != nil {
		t.Fatalf("parallel replay: %v", err)
	}
	eng.RunFor(time.Second)
	parFaults := eng.FaultLog()
	eng.Close()

	if !reflect.DeepEqual(seq.faults, parFaults) {
		t.Errorf("parallel fault schedule diverged:\nseq %q\npar %q", seq.faults, parFaults)
	}

	// Cluster.
	h := startCluster(t, seed, faults, 2, 0, nil)
	got, err := h.drive(t, seed, time.Second)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	h.shutdown(t)
	compareRuns(t, seq, got, "cluster vs sequential (faulty)")
}

// killFaults schedules a fault-injected worker-process kill mid-run.
func killFaults(at time.Duration, worker int) *fault.Config {
	return &fault.Config{Script: []fault.Action{
		{At: at, Kind: fault.KindKillWorker, Server: worker},
	}}
}

// TestClusterKillWorkerRecovery injects a kill-worker fault: worker 0
// dies mid-epoch, the standby adopts its shards from the epoch-boundary
// checkpoint, and the finished run still matches the sequential oracle
// byte for byte (where the kill is the recorded no-op it is everywhere
// outside a cluster).
func TestClusterKillWorkerRecovery(t *testing.T) {
	const seed = 17
	faults := killFaults(300*time.Millisecond, 0)
	oracle := runOracle(t, seed, faults, time.Second)

	h := startCluster(t, seed, faults, 2, 1, nil)
	got, err := h.drive(t, seed, time.Second)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	h.shutdown(t)

	compareRuns(t, oracle, got, "cluster-with-kill vs sequential")
	if h.c.Recoveries() < 1 {
		t.Fatalf("expected at least one recovery, got %d", h.c.Recoveries())
	}
	events := strings.Join(h.c.RecoveryEvents(), "\n")
	for _, want := range []string{"event=crash-detected", "event=restore-begin", "event=restore-done"} {
		if !strings.Contains(events, want) {
			t.Errorf("recovery log missing %q:\n%s", want, events)
		}
	}
	killed := 0
	for _, werr := range h.errs {
		if errors.Is(werr, ErrKilled) {
			killed++
		}
	}
	if killed != 1 {
		t.Errorf("expected exactly one worker killed, got %d (errs %v)", killed, h.errs)
	}
}

// TestClusterDegradesWithoutStandby proves the failure mode the barrier
// must never have: with no replacement available, a crashed worker ends
// the run with a clean error and partial results instead of a hang.
func TestClusterDegradesWithoutStandby(t *testing.T) {
	const seed = 19
	faults := killFaults(100*time.Millisecond, 0)
	h := startCluster(t, seed, faults, 2, 0, func(cfg *Config) {
		cfg.RecoveryWait = 300 * time.Millisecond
	})
	_, err := h.drive(t, seed, time.Second)
	if err == nil {
		t.Fatal("degraded run reported no error")
	}
	if !strings.Contains(err.Error(), "no replacement") {
		t.Errorf("unexpected degrade error: %v", err)
	}
	if h.c.Err() == nil {
		t.Error("coordinator has no terminal error")
	}
	// Partial results from the surviving worker are still reachable.
	res, rerr := h.c.Results()
	if rerr == nil {
		t.Error("partial results did not carry the terminal error")
	}
	if res == nil || len(res.Events) == 0 {
		t.Error("no partial results from the surviving worker")
	}
	events := strings.Join(h.c.RecoveryEvents(), "\n")
	if !strings.Contains(events, "event=degraded") {
		t.Errorf("recovery log missing degraded event:\n%s", events)
	}
	h.shutdown(t)
}

// TestClusterWorkerSIGKILLRecovery is the acceptance demo with real
// processes: 4 shards across 2 worker processes (re-exec'd test
// binary), SIGKILL one mid-run, and the recovered run's merged output
// still matches the single-process sequential oracle byte for byte.
func TestClusterWorkerSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const seed = 11
	oracle := runOracle(t, seed, nil, time.Second)

	var killOnce sync.Once
	var victim *exec.Cmd
	procs := map[string]*exec.Cmd{}

	cfg := Config{
		Engine:            testEngineConfig(seed, nil),
		ConfigTag:         testTag,
		ListenAddr:        "127.0.0.1:0",
		Workers:           2,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		RecoveryWait:      20 * time.Second,
		Logf:              t.Logf,
	}
	// SIGKILL worker 0's process mid-run, from the epoch dispatch hook
	// so the kill always lands while epochs are in flight.
	cfg.OnEpoch = func(seq uint64, start, end sim.Time) {
		if seq == 150 {
			killOnce.Do(func() {
				if victim != nil && victim.Process != nil {
					t.Logf("SIGKILL worker process pid %d at epoch %d", victim.Process.Pid, seq)
					victim.Process.Kill()
				}
			})
		}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	spawn := func(name string) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"POTEMKIN_CLUSTER_WORKER_ADDR="+c.Addr().String(),
			"POTEMKIN_CLUSTER_WORKER_NAME="+name,
			fmt.Sprintf("POTEMKIN_CLUSTER_WORKER_SEED=%d", seed),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %s: %v", name, err)
		}
		procs[name] = cmd
		return cmd
	}
	for _, name := range []string{"w0", "w1", "w2"} {
		spawn(name)
	}
	defer func() {
		c.Close()
		for _, cmd := range procs {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	if err := c.WaitReady(60 * time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	victim = procs[c.assigned[0].name]

	for _, pkt := range exploitPackets(testEngineConfig(seed, nil).Farm.Profile) {
		c.Inject(pkt)
	}
	injected, err := c.Replay(&telescope.SliceSource{Recs: testRecords(t, seed)}, nil, time.Millisecond)
	if err != nil {
		t.Fatalf("cluster replay: %v", err)
	}
	c.RunFor(time.Second)
	res, err := c.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if c.Recoveries() < 1 {
		t.Fatalf("expected a recovery after SIGKILL, got none (events: %v)", c.RecoveryEvents())
	}
	got := runOut{
		gw: res.Gateway, fm: res.Farm, gs: res.Guest,
		live: res.LiveVMs, infected: res.InfectedVMs, bindings: res.Bindings,
		mem: res.Memory, dns: res.DNSQueries,
		injected: injected, now: res.Now, faults: res.FaultLog,
		events: res.Events, trace: res.Trace,
	}
	compareRuns(t, oracle, got, "SIGKILL-recovered cluster vs sequential")
	events := strings.Join(c.RecoveryEvents(), "\n")
	for _, want := range []string{"event=crash-detected", "event=restore-done"} {
		if !strings.Contains(events, want) {
			t.Errorf("recovery log missing %q:\n%s", want, events)
		}
	}
}
