package cluster

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// sampleCheckpoint builds a small but fully-populated checkpoint: two
// non-empty epochs carrying one cross packet and one replay record.
func sampleCheckpoint() *Checkpoint {
	pkt := netsim.TCPSyn(netsim.MustParseAddr("198.51.100.9"), netsim.MustParseAddr("10.5.0.9"), 4000, 445, 7)
	pkt.Payload = []byte{0xde, 0xad, 0xbe, 0xef}
	rec := telescope.Record{
		At: sim.Time(2500 * time.Microsecond), Src: pkt.Src, Dst: pkt.Dst,
		Proto: netsim.ProtoTCP, SrcPort: 4000, DstPort: 445, Flags: netsim.FlagSYN, PayLen: 0,
	}
	ep1 := appendCross(nil, sim.Time(time.Millisecond), pkt)
	ep2 := appendRecord(nil, rec.At, rec)
	return &Checkpoint{
		Shard: 1, Shards: 4, Seed: 42, ConfigHash: 0xabcdef,
		Base: 0, Through: sim.Time(3 * time.Millisecond),
		Epochs: []EpochInputs{
			{Start: sim.Time(time.Millisecond), End: sim.Time(2 * time.Millisecond), Inputs: ep1},
			{Start: sim.Time(2 * time.Millisecond), End: sim.Time(3 * time.Millisecond), Inputs: ep2},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	enc := ck.Encode()
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", ck, got)
	}
	// Reader path too.
	got2, err := ReadCheckpoint(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(ck, got2) {
		t.Error("ReadCheckpoint disagrees with DecodeCheckpoint")
	}
}

// TestCheckpointTruncation decodes every proper prefix of a valid
// checkpoint: all must error, none may panic.
func TestCheckpointTruncation(t *testing.T) {
	enc := sampleCheckpoint().Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeCheckpoint(enc[:i]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", i, len(enc))
		}
	}
}

func TestCheckpointCorruption(t *testing.T) {
	base := sampleCheckpoint().Encode()
	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), base...))
		if _, err := DecodeCheckpoint(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad version", func(b []byte) []byte { b[7] = 99; return b })
	corrupt("shard out of range", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[8:], 9)
		binary.BigEndian.PutUint32(b[12:], 4)
		return b
	})
	corrupt("absurd shard count", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[12:], 1<<24)
		return b
	})
	corrupt("through before base", func(b []byte) []byte {
		binary.BigEndian.PutUint64(b[32:], 100)
		binary.BigEndian.PutUint64(b[40:], 50)
		return b
	})
	corrupt("absurd epoch count", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[48:], 1<<30)
		return b
	})
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xcc) })
	corrupt("epoch beyond through", func(b []byte) []byte {
		// First epoch end (offset 48+4+8) pushed past Through.
		binary.BigEndian.PutUint64(b[60:], uint64(time.Hour))
		return b
	})
	corrupt("garbage inputs", func(b []byte) []byte {
		// First byte of the first epoch's input list (offset: 52-byte
		// header + 16-byte epoch bounds + 4-byte length). 0xff is both
		// an unknown input kind and a negative timestamp high byte, so
		// eager decoding must reject it under either field order.
		b[72] = 0xff
		return b
	})
}

func TestShardLogElidesEmptyEpochs(t *testing.T) {
	var l shardLog
	l.commit(0, sim.Time(time.Millisecond), nil)
	l.commit(sim.Time(time.Millisecond), sim.Time(2*time.Millisecond), appendCross(nil, sim.Time(time.Millisecond), netsim.TCPSyn(1, 2, 3, 4, 5)))
	l.commit(sim.Time(2*time.Millisecond), sim.Time(3*time.Millisecond), nil)
	ck := l.checkpoint(0, 4, 1, 2, 0)
	if len(ck.Epochs) != 1 {
		t.Fatalf("expected 1 logged epoch, got %d", len(ck.Epochs))
	}
	if ck.Through != sim.Time(3*time.Millisecond) {
		t.Errorf("through = %v, want 3ms", ck.Through)
	}
	if _, err := DecodeCheckpoint(ck.Encode()); err != nil {
		t.Errorf("log-derived checkpoint does not round trip: %v", err)
	}
}

// FuzzCheckpointRead hammers the untrusted-input path: any byte string
// either errors cleanly or yields a checkpoint whose re-encoding decodes
// back to the same value.
func FuzzCheckpointRead(f *testing.F) {
	valid := sampleCheckpoint().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte{})
	empty := (&Checkpoint{Shard: 0, Shards: 1}).Encode()
	f.Add(empty)
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc := ck.Encode()
		ck2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-encoding of accepted checkpoint rejected: %v", err)
		}
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatalf("re-encode round trip changed the checkpoint:\n%+v\n%+v", ck, ck2)
		}
	})
}
