package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"potemkin/internal/core"
	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Engine is the shared scenario. Coordinator and workers are
	// launched with the same configuration (SPMD-style: the config
	// holds closures and cannot cross the wire); the handshake verifies
	// agreement via ConfigTag + shards + seed + lookahead. The
	// coordinator builds no domains itself — it only needs the shard
	// count, monitored space, seed, and lookahead.
	Engine core.ShardEngineConfig
	// ConfigTag is the caller's canonical rendering of the scenario
	// (flag string, options dump); both sides must present the same tag.
	ConfigTag string

	// ListenAddr is the TCP address to accept workers on (":0" picks a
	// port; see Addr).
	ListenAddr string
	// Workers is the number of worker processes the shards are split
	// across (capped at the shard count). Workers that connect beyond
	// this count form the standby pool for crash recovery.
	Workers int

	// SnapshotName and SnapshotWarmup run the paper's image-preparation
	// flow on every domain before traffic (empty name skips it).
	SnapshotName   string
	SnapshotWarmup time.Duration

	// Heartbeat/deadline knobs (zero takes the default).
	HeartbeatInterval time.Duration // outgoing ping period (1s)
	HeartbeatTimeout  time.Duration // silence that declares a worker dead (5s)
	EpochTimeout      time.Duration // wall-clock bound on one epoch (2m)
	RestoreTimeout    time.Duration // wall-clock bound on a checkpoint restore (2m)
	RecoveryWait      time.Duration // how long to wait for a replacement worker (10s)
	AcceptTimeout     time.Duration // WaitReady bound on initial worker arrival (30s)

	// RecoveryLog, when non-nil, receives one line per crash-detection
	// and recovery step (also kept in memory; see RecoveryEvents).
	RecoveryLog io.Writer
	// Logf, when non-nil, receives coordinator progress logging.
	Logf func(format string, args ...any)

	// OnEpoch, when non-nil, observes every epoch dispatch (sequence
	// number and simulated bounds). Tests use it to time fault
	// injection against epoch progress; it runs on the driver
	// goroutine, so keep it fast.
	OnEpoch func(seq uint64, start, end sim.Time)
}

func (cfg Config) withDefaults() Config {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.EpochTimeout <= 0 {
		cfg.EpochTimeout = 2 * time.Minute
	}
	if cfg.RestoreTimeout <= 0 {
		cfg.RestoreTimeout = 2 * time.Minute
	}
	if cfg.RecoveryWait <= 0 {
		cfg.RecoveryWait = 10 * time.Second
	}
	if cfg.AcceptTimeout <= 0 {
		cfg.AcceptTimeout = 30 * time.Second
	}
	return cfg
}

// Results is the shard-order merge of every worker's output — the same
// totals, event-log bytes, and trace bytes a single-process run of the
// same scenario produces.
type Results struct {
	Gateway     gateway.Stats
	Farm        farm.Stats
	Guest       guest.Stats
	LiveVMs     int
	InfectedVMs int
	Bindings    int
	Memory      uint64
	DNSQueries  uint64
	FaultLog    []string
	Events      []byte
	Trace       []byte
	Now         sim.Time
	Recoveries  int
	// Metrics is every worker's final registry snapshot merged (empty
	// when the scenario ran without telemetry). The same merge feeds
	// MetricsText, so a post-run scrape equals these points exactly.
	Metrics []metrics.Point
}

// wconn is the coordinator's view of one worker connection.
type wconn struct {
	*conn
	name string
	id   int // assigned worker slot, or -1 while standby
	dead bool
	stop chan struct{} // closed on death; stops the heartbeat sender
	// stash holds frames that arrived from this worker while the driver
	// was awaiting a different worker (e.g. broadcast results replies
	// completing out of order). Driver goroutine only.
	stash []frame

	// Telemetry mirrors, written by the read loop and read by the HTTP
	// health/metrics endpoints — atomics only, never the driver state.
	lastRecv    atomic.Int64                    // wall nanos of the last frame
	lastSeq     atomic.Uint64                   // last epoch the worker completed
	lastMetrics atomic.Pointer[[]metrics.Point] // latest registry snapshot
	stashN      atomic.Int64                    // live mirror of len(stash)
}

// wevent is one item on the coordinator's single event stream: a frame
// from a worker, or its read error (death).
type wevent struct {
	w   *wconn
	fr  frame
	err error
}

// Coordinator runs the epoch barrier over remote workers. It implements
// sim.Barrier; all methods are for a single driver goroutine.
type Coordinator struct {
	cfg       Config
	shards    int
	workers   int
	lookahead time.Duration
	space     netsim.Prefix
	hash      uint64

	ln     net.Listener
	events chan wevent

	mu         sync.Mutex // guards standby (appended from accept goroutines)
	standby    []*wconn
	standbySig chan struct{}

	assigned []*wconn
	logs     []*shardLog
	now      sim.Time
	base     sim.Time
	seq      uint64
	ready    bool

	beforeEpoch func(start, end sim.Time)
	curInputs   [][]byte // live only inside the beforeEpoch hook

	pendingCross  []outboxEntry    // decoded-valid, delivered at the next barrier
	pendingInject []*netsim.Packet // queued by Inject, delivered at the next barrier

	// In-flight epoch state.
	curStart, curEnd sim.Time
	curShardInputs   [][]byte
	donePending      map[int]bool
	doneOutbox       []outboxEntry

	err        error
	recoveries int
	recLines   []string
	closed     bool

	// Telemetry. reg/prof come from Engine.Metrics / Engine.EpochLog;
	// the profiler times each epoch with workers in the shard role. The
	// pub* atomics and the published worker list are the driver's health
	// mirror, refreshed at epoch boundaries and recovery events so the
	// HTTP endpoints never read driver-owned state.
	reg           *metrics.Registry
	prof          *metrics.EpochProfiler
	epochT0       time.Time
	epochDoneNS   []int64
	epochInBytes  int64
	pubSeq        atomic.Uint64
	pubNow        atomic.Int64
	pubRecoveries atomic.Int64
	pubDegraded   atomic.Bool
	pubWorkers    atomic.Pointer[[]workerRef]
}

// workerRef is one published worker-slot entry behind the health view.
type workerRef struct {
	id   int
	name string
	w    *wconn // nil for an empty (crashed, unrecovered) slot
}

// New builds a coordinator (call Start to listen).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ecfg := cfg.Engine
	if ecfg.Lookahead <= 0 {
		ecfg.Lookahead = time.Millisecond
	}
	var errs []error
	if err := ecfg.Validate(); err != nil {
		errs = append(errs, err)
	}
	if cfg.Workers < 1 {
		errs = append(errs, fmt.Errorf("cluster: need at least 1 worker, got %d", cfg.Workers))
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		shards:     ecfg.Shards,
		lookahead:  ecfg.Lookahead,
		space:      ecfg.Gateway.Space,
		hash:       configHash(cfg.ConfigTag, ecfg.Shards, ecfg.Seed, ecfg.Lookahead),
		events:     make(chan wevent, 1024),
		standbySig: make(chan struct{}, 1),
	}
	c.workers = cfg.Workers
	if c.workers > c.shards {
		c.workers = c.shards
	}
	c.reg = ecfg.Metrics
	if c.reg != nil || ecfg.EpochLog != nil {
		c.prof = metrics.NewEpochProfiler(c.reg, ecfg.EpochLog)
		c.epochDoneNS = make([]int64, c.workers)
	}
	c.assigned = make([]*wconn, c.workers)
	c.logs = make([]*shardLog, c.shards)
	for i := range c.logs {
		c.logs[i] = &shardLog{}
	}
	return c, nil
}

// Start begins accepting workers.
func (c *Coordinator) Start() error {
	ln, err := net.Listen("tcp", c.cfg.ListenAddr)
	if err != nil {
		return err
	}
	c.ln = ln
	go c.acceptLoop()
	return nil
}

// Addr returns the listen address (useful with ListenAddr ":0").
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Shards returns the total shard count.
func (c *Coordinator) Shards() int { return c.shards }

// Workers returns the assigned worker-slot count.
func (c *Coordinator) Workers() int { return c.workers }

// Space returns the monitored prefix.
func (c *Coordinator) Space() netsim.Prefix { return c.space }

// shardsOf lists the global shard indices worker id owns (round-robin,
// like the in-process engine splits farm servers).
func (c *Coordinator) shardsOf(id int) []int {
	var out []int
	for s := id; s < c.shards; s += c.workers {
		out = append(out, s)
	}
	return out
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// recoveryf records one crash-detection / recovery step.
func (c *Coordinator) recoveryf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	c.recLines = append(c.recLines, line)
	if c.cfg.RecoveryLog != nil {
		fmt.Fprintln(c.cfg.RecoveryLog, line)
	}
	c.logf("%s", line)
}

// RecoveryEvents returns every recorded detection/recovery line.
func (c *Coordinator) RecoveryEvents() []string {
	return append([]string(nil), c.recLines...)
}

// Recoveries returns how many worker crashes were recovered.
func (c *Coordinator) Recoveries() int { return c.recoveries }

// Err returns the terminal error, if the run degraded.
func (c *Coordinator) Err() error { return c.err }

func (c *Coordinator) fail(err error) {
	if c.err == nil {
		c.err = err
		c.pubDegraded.Store(true)
		c.recoveryf("event=degraded err=%q", err.Error())
	}
}

// acceptLoop admits workers: handshake, then the connection becomes a
// standby (WaitReady and crash recovery both draw from the pool).
func (c *Coordinator) acceptLoop() {
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.handshake(nc)
	}
}

func (c *Coordinator) handshake(nc net.Conn) {
	w := &wconn{conn: newConn(nc), id: -1, stop: make(chan struct{})}
	w.lastRecv.Store(time.Now().UnixNano())
	nc.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
	fr, err := readFrame(nc)
	if err != nil || fr.typ != msgHello {
		nc.Close()
		return
	}
	var hello helloMsg
	if err := unmarshal(fr.payload, &hello); err != nil {
		nc.Close()
		return
	}
	if hello.Version != ProtoVersion || hello.ConfigHash != c.hash {
		c.logf("cluster: rejecting worker %q: version=%d hash=%#x (want %d/%#x)",
			hello.Name, hello.Version, hello.ConfigHash, ProtoVersion, c.hash)
		w.send(msgError, errorMsg{Text: fmt.Sprintf(
			"cluster: version/config mismatch: coordinator v%d hash %#x, worker v%d hash %#x",
			ProtoVersion, c.hash, hello.Version, hello.ConfigHash)})
		nc.Close()
		return
	}
	w.name = hello.Name
	c.logf("cluster: worker %q connected from %v", w.name, nc.RemoteAddr())

	c.mu.Lock()
	c.standby = append(c.standby, w)
	c.mu.Unlock()
	select {
	case c.standbySig <- struct{}{}:
	default:
	}

	go c.heartbeatLoop(w)
	c.readLoop(w)
}

// readLoop pumps decoded frames onto the coordinator's event stream.
// Heartbeats refresh the read deadline and unload their telemetry
// piggyback (epoch progress + registry snapshot) into the connection's
// atomic mirrors without ever reaching the driver.
func (c *Coordinator) readLoop(w *wconn) {
	for {
		w.c.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
		fr, err := readFrame(w.c)
		if err != nil {
			c.events <- wevent{w: w, err: err}
			return
		}
		w.lastRecv.Store(time.Now().UnixNano())
		if fr.typ == msgHeartbeat {
			var hb heartbeatMsg
			if unmarshal(fr.payload, &hb) == nil {
				w.lastSeq.Store(hb.Seq)
				if hb.Metrics != nil {
					w.lastMetrics.Store(&hb.Metrics)
				}
			}
			continue
		}
		c.events <- wevent{w: w, fr: fr}
	}
}

func (c *Coordinator) heartbeatLoop(w *wconn) {
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if err := w.send(msgHeartbeat, struct{}{}); err != nil {
				// Close the socket so the read loop surfaces the death.
				w.close()
				return
			}
		}
	}
}

// markDead retires a connection: the heartbeat sender stops, the socket
// closes, and an assigned slot empties (recovery fills it).
func (c *Coordinator) markDead(w *wconn, reason string) {
	if w.dead {
		return
	}
	w.dead = true
	close(w.stop)
	w.close()
	if w.id >= 0 && c.assigned[w.id] == w {
		c.assigned[w.id] = nil
		if !c.closed { // deliberate shutdown is not a crash
			c.recoveryf("epoch=%d t=%s event=crash-detected worker=%d name=%q shards=%v reason=%q",
				c.seq, c.now, w.id, w.name, c.shardsOf(w.id), reason)
		}
	}
}

// nextEvent pops one event, or false on deadline.
func (c *Coordinator) nextEvent(deadline time.Time) (wevent, bool) {
	select {
	case ev := <-c.events:
		return ev, true
	default:
	}
	wait := time.Until(deadline)
	if wait <= 0 {
		return wevent{}, false
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case ev := <-c.events:
		return ev, true
	case <-t.C:
		return wevent{}, false
	}
}

// processEvent handles bookkeeping events (deaths, epoch completions,
// worker-fatal errors); frames the caller should match are returned.
func (c *Coordinator) processEvent(ev wevent) (frame, bool) {
	if ev.w.dead {
		return frame{}, false
	}
	if ev.err != nil {
		c.markDead(ev.w, ev.err.Error())
		return frame{}, false
	}
	switch ev.fr.typ {
	case msgError:
		var em errorMsg
		unmarshal(ev.fr.payload, &em)
		c.markDead(ev.w, "worker error: "+em.Text)
		return frame{}, false
	case msgEpochDone:
		c.handleEpochDone(ev.w, ev.fr.payload)
		return frame{}, false
	}
	return ev.fr, true
}

// handleEpochDone records a worker's epoch completion and validates its
// outbox (a malformed outbox is a protocol violation, treated as death).
func (c *Coordinator) handleEpochDone(w *wconn, payload []byte) {
	if w.id < 0 || c.assigned[w.id] != w || !c.donePending[w.id] {
		return // stale completion from a retired epoch or connection
	}
	var m epochDoneMsg
	if err := unmarshal(payload, &m); err != nil {
		c.markDead(w, "bad epoch-done: "+err.Error())
		return
	}
	if m.Seq != c.seq {
		return
	}
	for _, e := range m.Outbox {
		if e.Dst < 0 || e.Dst >= c.shards || e.At < c.curEnd {
			c.markDead(w, fmt.Sprintf("outbox entry dst=%d at=%v violates barrier (epoch end %v)", e.Dst, e.At, c.curEnd))
			return
		}
		br := &byteReader{b: e.Pkt}
		if _, err := decodePacket(br); err != nil || !br.done() {
			c.markDead(w, "undecodable outbox packet")
			return
		}
	}
	c.doneOutbox = append(c.doneOutbox, m.Outbox...)
	delete(c.donePending, w.id)
	if c.prof != nil && w.id < len(c.epochDoneNS) {
		c.epochDoneNS[w.id] = time.Since(c.epochT0).Nanoseconds()
	}
}

// awaitFrom waits for a specific frame type from a specific worker,
// processing unrelated events (deaths, epoch completions) as they
// arrive. Returns an error on the worker's death or the deadline.
func (c *Coordinator) awaitFrom(w *wconn, typ msgType, deadline time.Time) (frame, error) {
	for {
		for i, fr := range w.stash {
			if fr.typ == typ {
				w.stash = append(w.stash[:i], w.stash[i+1:]...)
				w.stashN.Store(int64(len(w.stash)))
				return fr, nil
			}
		}
		if w.dead {
			return frame{}, fmt.Errorf("cluster: worker %q died awaiting %v", w.name, typ)
		}
		ev, ok := c.nextEvent(deadline)
		if !ok {
			return frame{}, fmt.Errorf("cluster: timed out awaiting %v from worker %q", typ, w.name)
		}
		fr, match := c.processEvent(ev)
		if !match {
			continue
		}
		if ev.w == w && fr.typ == typ {
			return fr, nil
		}
		// A reply meant for a different pending await (broadcasts
		// complete out of order) — keep it for its own connection
		// rather than dropping it on the floor.
		ev.w.stash = append(ev.w.stash, fr)
		ev.w.stashN.Store(int64(len(ev.w.stash)))
	}
}

// waitStandby pulls the next live standby connection, draining events
// while it waits. Returns nil at the deadline.
func (c *Coordinator) waitStandby(deadline time.Time) *wconn {
	for {
		c.mu.Lock()
		for len(c.standby) > 0 {
			w := c.standby[0]
			c.standby = c.standby[1:]
			if !w.dead {
				c.mu.Unlock()
				return w
			}
		}
		c.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil
		}
		t := time.NewTimer(wait)
		select {
		case <-c.standbySig:
		case ev := <-c.events:
			c.processEvent(ev)
		case <-t.C:
			t.Stop()
			return nil
		}
		t.Stop()
	}
}

// WaitReady blocks until every worker slot is assigned, warmed up, and
// aligned on a common base clock; the run may then be driven through
// the Barrier methods. The timeout falls back to Config.AcceptTimeout.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = c.cfg.AcceptTimeout
	}
	deadline := time.Now().Add(timeout)

	assign := func(id int) (*wconn, sim.Time, error) {
		for {
			w := c.waitStandby(deadline)
			if w == nil {
				return nil, 0, fmt.Errorf("cluster: worker slot %d: no worker connected in time", id)
			}
			msg := assignMsg{
				Worker: id, Shards: c.shardsOf(id),
				WarmupNs: int64(c.cfg.SnapshotWarmup), SnapName: c.cfg.SnapshotName,
				Events: c.cfg.Engine.EventLog != nil, Trace: c.cfg.Engine.TraceOut != nil,
				Metrics: c.reg != nil,
			}
			if err := w.send(msgAssign, msg); err != nil {
				c.markDead(w, "assign write: "+err.Error())
				continue
			}
			w.id = id
			c.assigned[id] = w
			fr, err := c.awaitFrom(w, msgPrepared, deadline)
			if err != nil {
				c.markDead(w, err.Error())
				c.assigned[id] = nil
				continue
			}
			var p preparedMsg
			if err := unmarshal(fr.payload, &p); err != nil || len(p.Clocks) != len(msg.Shards) {
				c.markDead(w, "bad prepared reply")
				c.assigned[id] = nil
				continue
			}
			var clock sim.Time
			for _, t := range p.Clocks {
				if t > clock {
					clock = t
				}
			}
			c.logf("cluster: worker %d (%q) prepared shards %v, clock %v", id, w.name, msg.Shards, clock)
			return w, clock, nil
		}
	}

	for id := 0; id < c.workers; id++ {
		_, clock, err := assign(id)
		if err != nil {
			c.fail(err)
			return err
		}
		if clock > c.base {
			c.base = clock
		}
	}
	// Align every worker on the common base and wait for readiness.
	for id := 0; id < c.workers; id++ {
		w := c.assigned[id]
		if err := w.send(msgAlign, alignMsg{Base: c.base}); err != nil {
			c.markDead(w, "align write: "+err.Error())
		}
	}
	for id := 0; id < c.workers; id++ {
		w := c.assigned[id]
		if w == nil {
			err := fmt.Errorf("cluster: worker %d died during alignment", id)
			c.fail(err)
			return err
		}
		if _, err := c.awaitFrom(w, msgReady, deadline); err != nil {
			c.fail(err)
			return err
		}
	}
	c.now = c.base
	for _, l := range c.logs {
		l.through = c.base
	}
	c.ready = true
	c.publishHealth()
	c.logf("cluster: %d workers ready, %d shards, base clock %v", c.workers, c.shards, c.base)
	return nil
}

// Barrier interface.

// Now returns the barrier clock.
func (c *Coordinator) Now() sim.Time { return c.now }

// Lookahead returns the epoch length.
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// SetBeforeEpoch installs the single-threaded pre-epoch hook (replay
// feeders schedule through it via ScheduleRecord).
func (c *Coordinator) SetBeforeEpoch(fn func(start, end sim.Time)) { c.beforeEpoch = fn }

// RunUntil advances every worker to deadline in epochs of at most the
// lookahead. On worker death it recovers onto a standby; if recovery is
// impossible it stops advancing and records the terminal error (Err).
func (c *Coordinator) RunUntil(deadline sim.Time) { c.RunEpochs(deadline, nil) }

// RunEpochs advances like RunUntil but consults stop (when non-nil)
// after each committed epoch and returns once it reports true. The
// cluster keeps fixed lookahead-sized epochs — every skipped barrier an
// adaptive in-process run proves empty is an epoch the fixed schedule
// executes as a no-op, so the merged output stays byte-identical either
// way.
func (c *Coordinator) RunEpochs(deadline sim.Time, stop func() bool) {
	if !c.ready {
		c.fail(errors.New("cluster: RunUntil before WaitReady"))
		return
	}
	for c.err == nil && c.now < deadline {
		end := c.now.Add(c.lookahead)
		if end > deadline {
			end = deadline
		}
		if !c.runEpoch(c.now, end) {
			return
		}
		c.now = end
		if stop != nil && stop() {
			return
		}
	}
}

// RunFor is RunUntil(Now()+d).
func (c *Coordinator) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }

// ScheduleRecord routes a telescope record to its owning shard for the
// epoch being opened. Only valid inside the pre-epoch hook (Replay
// wires it up).
func (c *Coordinator) ScheduleRecord(at sim.Time, rec telescope.Record) {
	if c.curInputs == nil {
		panic("cluster: ScheduleRecord outside the pre-epoch hook")
	}
	s := core.OwnerOf(c.space, c.shards, rec.Dst)
	c.curInputs[s] = appendRecord(c.curInputs[s], at, rec)
}

// Inject queues pkt for delivery to its owning shard at the opening
// barrier of the next epoch, ahead of cross-shard deliveries and
// freshly fed records. ShardEngine.InjectBarrier is the single-process
// equivalent with identical event ordering — use that as the oracle
// when comparing runs. Call between runs (driver goroutine).
func (c *Coordinator) Inject(pkt *netsim.Packet) {
	c.pendingInject = append(c.pendingInject, pkt)
}

// Replay streams src through the cluster with the exact semantics of
// ShardEngine.Replay. Returns packets injected and the first error
// (source error, or the coordinator's terminal error).
func (c *Coordinator) Replay(src telescope.Source, halt func() bool, epilogue time.Duration) (int, error) {
	n, err := core.ReplayOver(c, src, halt, epilogue, c.ScheduleRecord)
	if err == nil {
		err = c.err
	}
	return n, err
}

// runEpoch drives one epoch [start, end): deliver pending cross-shard
// packets and freshly fed records at the opening barrier, run every
// worker, collect outboxes, commit the epoch to the shard logs. False
// means the run degraded.
func (c *Coordinator) runEpoch(start, end sim.Time) bool {
	if c.cfg.OnEpoch != nil {
		c.cfg.OnEpoch(c.seq, start, end)
	}
	if c.prof != nil {
		c.epochT0 = time.Now()
		for i := range c.epochDoneNS {
			c.epochDoneNS[i] = 0
		}
	}
	// Fill worker slots emptied by deaths noticed between epochs.
	for id := 0; id < c.workers; id++ {
		if c.assigned[id] == nil {
			if !c.recover(id, false) {
				return false
			}
		}
	}

	inputs := make([][]byte, c.shards)
	for _, pkt := range c.pendingInject {
		s := core.OwnerOf(c.space, c.shards, pkt.Dst)
		inputs[s] = appendCross(inputs[s], start, pkt)
	}
	c.pendingInject = nil
	for _, e := range c.pendingCross {
		inputs[e.Dst] = appendCrossRaw(inputs[e.Dst], e.At, e.Pkt)
	}
	c.pendingCross = nil
	if c.beforeEpoch != nil {
		c.curInputs = inputs
		c.beforeEpoch(start, end)
		c.curInputs = nil
	}

	c.curStart, c.curEnd, c.curShardInputs = start, end, inputs
	c.donePending = make(map[int]bool, c.workers)
	c.doneOutbox = c.doneOutbox[:0]
	if c.prof != nil {
		c.epochInBytes = 0
		for _, in := range inputs {
			c.epochInBytes += int64(len(in))
		}
	}
	for id := 0; id < c.workers; id++ {
		c.donePending[id] = true
		c.sendEpoch(id)
	}

	deadline := time.Now().Add(c.cfg.EpochTimeout)
	for len(c.donePending) > 0 {
		// Recover any pending worker whose connection died; the
		// replacement replays its checkpoint and reruns this epoch.
		for id := range c.donePending {
			if c.assigned[id] == nil {
				if !c.recover(id, true) {
					return false
				}
			}
		}
		ev, ok := c.nextEvent(deadline)
		if !ok {
			for id := range c.donePending {
				if w := c.assigned[id]; w != nil {
					c.markDead(w, "epoch timeout")
				}
			}
			deadline = time.Now().Add(c.cfg.EpochTimeout)
			continue
		}
		c.processEvent(ev)
	}

	for s := range inputs {
		c.logs[s].commit(start, end, inputs[s])
	}
	// Stable sort restores the global (source shard, send order)
	// delivery order the in-process runner's exchange produces: each
	// worker reports its outbox grouped by source shard in send order,
	// and source shards are disjoint across workers.
	sort.SliceStable(c.doneOutbox, func(i, j int) bool { return c.doneOutbox[i].Src < c.doneOutbox[j].Src })
	c.pendingCross = append([]outboxEntry(nil), c.doneOutbox...)
	c.curShardInputs = nil
	c.seq++
	if c.prof != nil {
		c.recordEpoch(start, end, len(c.doneOutbox))
	}
	c.publishHealth()
	return true
}

// recordEpoch folds the finished epoch into the profiler, workers in
// the shard role: AdvanceNS[i] is worker i's dispatch-to-completion
// wall time, barrier wait the idle tail behind the slowest worker, and
// ExchangeBytes the encoded epoch-input payloads shipped.
func (c *Coordinator) recordEpoch(start, end sim.Time, outMsgs int) {
	wall := time.Since(c.epochT0).Nanoseconds()
	adv := append([]int64(nil), c.epochDoneNS...)
	var maxAdv int64
	slowest := 0
	for i, ns := range adv {
		if ns > maxAdv {
			maxAdv, slowest = ns, i
		}
	}
	wait := make([]int64, len(adv))
	for i, ns := range adv {
		wait[i] = maxAdv - ns
	}
	c.prof.Record(metrics.EpochSample{
		Seq:     c.seq, // 1-based: runEpoch already advanced it
		StartNS: int64(start), EndNS: int64(end),
		WallNS:        wall,
		ExchangeNS:    wall - maxAdv, // input encode/ship + outbox merge around the advances
		ExchangeMsgs:  outMsgs,
		ExchangeBytes: c.epochInBytes,
		AdvanceNS:     adv,
		BarrierWaitNS: wait,
		SlowestShard:  slowest,
	})
}

// publishHealth refreshes the atomic mirror the HTTP /cluster endpoint
// reads: run progress plus the current worker-slot assignments. Driver
// goroutine only; called at every epoch boundary and recovery.
func (c *Coordinator) publishHealth() {
	c.pubSeq.Store(c.seq)
	c.pubNow.Store(int64(c.now))
	c.pubRecoveries.Store(int64(c.recoveries))
	c.pubDegraded.Store(c.err != nil)
	refs := make([]workerRef, c.workers)
	for id := 0; id < c.workers; id++ {
		refs[id] = workerRef{id: id, w: c.assigned[id]}
		if w := c.assigned[id]; w != nil {
			refs[id].name = w.name
		}
	}
	c.pubWorkers.Store(&refs)
}

// sendEpoch ships the current epoch to worker id (its shards' inputs
// only). A write failure marks the connection dead; the await loop
// recovers it.
func (c *Coordinator) sendEpoch(id int) {
	w := c.assigned[id]
	if w == nil {
		return
	}
	msg := epochMsg{Seq: c.seq, Start: c.curStart, End: c.curEnd}
	for _, s := range c.shardsOf(id) {
		if len(c.curShardInputs[s]) > 0 {
			msg.Inputs = append(msg.Inputs, shardInputs{Shard: s, Inputs: c.curShardInputs[s]})
		}
	}
	if err := w.send(msgEpoch, msg); err != nil {
		c.markDead(w, "epoch write: "+err.Error())
	}
}

// recover restores worker id's shards onto a standby (or a restarted
// worker dialing back in) from the last epoch-boundary checkpoint.
// resend re-ships the in-flight epoch after the restore. False means no
// replacement appeared in time and the run has degraded.
func (c *Coordinator) recover(id int, resend bool) bool {
	c.recoveries++
	shards := c.shardsOf(id)
	cks := make([][]byte, len(shards))
	epochs := 0
	for i, s := range shards {
		ck := c.logs[s].checkpoint(s, c.shards, c.cfg.Engine.Seed, c.hash, c.base)
		epochs += len(ck.Epochs)
		cks[i] = ck.Encode()
	}
	c.recoveryf("epoch=%d t=%s event=restore-begin worker=%d shards=%v logged_epochs=%d resend=%v",
		c.seq, c.now, id, shards, epochs, resend)

	deadline := time.Now().Add(c.cfg.RecoveryWait)
	for {
		w := c.waitStandby(deadline)
		if w == nil {
			c.fail(fmt.Errorf("cluster: worker %d (shards %v) crashed at epoch %d and no replacement connected within %v",
				id, shards, c.seq, c.cfg.RecoveryWait))
			return false
		}
		msg := restoreMsg{
			Worker: id, Shards: shards,
			WarmupNs: int64(c.cfg.SnapshotWarmup), SnapName: c.cfg.SnapshotName,
			Events: c.cfg.Engine.EventLog != nil, Trace: c.cfg.Engine.TraceOut != nil,
			Metrics: c.reg != nil,
			Base:    c.base, Seq: c.seq, Checkpoints: cks,
		}
		if err := w.send(msgRestore, msg); err != nil {
			c.markDead(w, "restore write: "+err.Error())
			continue
		}
		w.id = id
		c.assigned[id] = w
		if _, err := c.awaitFrom(w, msgReady, time.Now().Add(c.cfg.RestoreTimeout)); err != nil {
			c.markDead(w, err.Error())
			c.assigned[id] = nil
			continue
		}
		c.recoveryf("epoch=%d t=%s event=restore-done worker=%d name=%q", c.seq, c.now, id, w.name)
		c.publishHealth()
		if resend {
			c.sendEpoch(id)
		}
		return true
	}
}

// Checkpoints snapshots every shard's input log as of the last
// completed epoch boundary (the daemon flushes these on shutdown).
func (c *Coordinator) Checkpoints() []*Checkpoint {
	out := make([]*Checkpoint, c.shards)
	for s := range c.logs {
		out[s] = c.logs[s].checkpoint(s, c.shards, c.cfg.Engine.Seed, c.hash, c.base)
	}
	return out
}

// Results fetches and merges every worker's output in shard order. With
// a degraded run it returns whatever the surviving workers report,
// alongside Err's terminal error.
func (c *Coordinator) Results() (*Results, error) {
	res := &Results{Now: c.now, Recoveries: c.recoveries}
	perShard := make([]*shardResult, c.shards)
	for id := 0; id < c.workers; id++ {
		w := c.assigned[id]
		if w == nil {
			continue
		}
		if err := w.send(msgResults, struct{}{}); err != nil {
			c.markDead(w, "results write: "+err.Error())
		}
	}
	deadline := time.Now().Add(c.cfg.EpochTimeout)
	for id := 0; id < c.workers; id++ {
		w := c.assigned[id]
		if w == nil {
			continue
		}
		fr, err := c.awaitFrom(w, msgResults, deadline)
		if err != nil {
			c.fail(err)
			continue
		}
		var m resultsMsg
		if err := unmarshal(fr.payload, &m); err != nil {
			c.markDead(w, "bad results: "+err.Error())
			continue
		}
		if m.Metrics != nil {
			// Supersede the heartbeat-lagged snapshot with the final
			// one, so a post-run /metrics scrape equals Results.Metrics.
			w.lastMetrics.Store(&m.Metrics)
			res.Metrics = metrics.MergePoints(res.Metrics, m.Metrics)
		}
		for i := range m.Shards {
			sr := &m.Shards[i]
			if sr.Shard >= 0 && sr.Shard < c.shards {
				perShard[sr.Shard] = sr
			}
		}
	}
	missing := 0
	for s, sr := range perShard {
		if sr == nil {
			missing++
			continue
		}
		core.AddGatewayStats(&res.Gateway, &sr.Gateway)
		core.AddFarmStats(&res.Farm, &sr.Farm)
		core.AddGuestStats(&res.Guest, &sr.Guest)
		res.LiveVMs += sr.LiveVMs
		res.InfectedVMs += sr.InfectedVMs
		res.Bindings += sr.Bindings
		res.Memory += sr.Memory
		res.DNSQueries += sr.DNSQueries
		res.FaultLog = append(res.FaultLog, sr.FaultLog...)
		res.Events = append(res.Events, sr.Events...)
		res.Trace = append(res.Trace, sr.Trace...)
		_ = s
	}
	if missing > 0 && c.err == nil {
		c.fail(fmt.Errorf("cluster: results missing for %d of %d shards", missing, c.shards))
	}
	return res, c.err
}

// Close shuts the cluster down: workers receive a shutdown message,
// every connection closes, and the listener stops. Idempotent.
func (c *Coordinator) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, w := range c.assigned {
		if w != nil && !w.dead {
			w.send(msgShutdown, struct{}{})
			c.markDead(w, "shutdown")
		}
	}
	c.mu.Lock()
	standby := append([]*wconn(nil), c.standby...)
	c.standby = nil
	c.mu.Unlock()
	for _, w := range standby {
		if !w.dead {
			w.send(msgShutdown, struct{}{})
			w.dead = true
			close(w.stop)
			w.close()
		}
	}
	if c.ln != nil {
		c.ln.Close()
	}
	if err := c.prof.FlushTimeline(); err != nil {
		c.logf("cluster: epoch timeline: %v", err)
	}
	return nil
}

// Profiler exposes the coordinator's epoch profiler (nil without
// Engine.Metrics / Engine.EpochLog).
func (c *Coordinator) Profiler() *metrics.EpochProfiler { return c.prof }

// MetricsText renders the farm-wide metric view in the Prometheus text
// exposition format: the coordinator's own registry (epoch_* series)
// merged with the latest snapshot each worker piggybacked on its
// heartbeats — or its final results snapshot once the run ended. Safe
// from any goroutine at any time; reads atomics only.
func (c *Coordinator) MetricsText() []byte {
	merged := c.reg.Snapshot()
	if refs := c.pubWorkers.Load(); refs != nil {
		for _, ref := range *refs {
			if ref.w == nil {
				continue
			}
			if pts := ref.w.lastMetrics.Load(); pts != nil {
				merged = metrics.MergePoints(merged, *pts)
			}
		}
	}
	var buf bytes.Buffer
	metrics.WriteProm(&buf, merged)
	return buf.Bytes()
}

// WorkerHealth is one worker slot in the /cluster health view.
type WorkerHealth struct {
	ID      int    `json:"id"`
	Name    string `json:"name,omitempty"`
	Live    bool   `json:"live"`
	LastSeq uint64 `json:"last_seq"`
	// EpochLag is how many epochs the worker's last completion trails
	// the coordinator's dispatched epoch count.
	EpochLag uint64 `json:"epoch_lag"`
	// HeartbeatAgeMs is wall milliseconds since the worker's last frame.
	HeartbeatAgeMs int64 `json:"heartbeat_age_ms"`
	// StashDepth counts out-of-order frames parked for this connection.
	StashDepth int64 `json:"stash_depth"`
}

// ClusterHealth is the /cluster health document.
type ClusterHealth struct {
	Epoch      uint64         `json:"epoch"`
	TSeconds   float64        `json:"t_seconds"`
	Shards     int            `json:"shards"`
	Slots      int            `json:"worker_slots"`
	Recoveries int64          `json:"recoveries"`
	Degraded   bool           `json:"degraded"`
	Workers    []WorkerHealth `json:"workers"`
}

// Health assembles the cluster health view from the driver's published
// mirror. Safe from any goroutine; progress fields refresh at epoch
// boundaries, heartbeat ages are live.
func (c *Coordinator) Health() ClusterHealth {
	h := ClusterHealth{
		Epoch:      c.pubSeq.Load(),
		TSeconds:   sim.Time(c.pubNow.Load()).Seconds(),
		Shards:     c.shards,
		Slots:      c.workers,
		Recoveries: c.pubRecoveries.Load(),
		Degraded:   c.pubDegraded.Load(),
	}
	refs := c.pubWorkers.Load()
	if refs == nil {
		return h
	}
	now := time.Now().UnixNano()
	for _, ref := range *refs {
		wh := WorkerHealth{ID: ref.id, Name: ref.name}
		if ref.w != nil {
			wh.Live = true
			wh.LastSeq = ref.w.lastSeq.Load()
			if h.Epoch > wh.LastSeq {
				wh.EpochLag = h.Epoch - wh.LastSeq
			}
			wh.HeartbeatAgeMs = (now - ref.w.lastRecv.Load()) / 1e6
			wh.StashDepth = ref.w.stashN.Load()
		}
		h.Workers = append(h.Workers, wh)
	}
	return h
}

// HealthJSON renders Health as indented JSON for the /cluster debug
// endpoint.
func (c *Coordinator) HealthJSON() []byte {
	b, err := json.MarshalIndent(c.Health(), "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return b
}

// appendCrossRaw appends a cross input whose packet is already encoded
// (validated at epoch-done receipt; appendPacket framing is
// self-delimiting so straight concatenation is safe).
func appendCrossRaw(b []byte, at sim.Time, pkt []byte) []byte {
	b = append(b, inputCross)
	b = appendU64(b, uint64(at))
	return append(b, pkt...)
}
