package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"potemkin/internal/core"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// ErrKilled is returned by RunWorker when a fault-injected
// kill-worker action aborts this worker (WorkerConfig.OnKill nil).
var ErrKilled = errors.New("cluster: worker killed by injected fault")

// WorkerConfig parameterizes one worker process (or in-process worker,
// as the tests run them).
type WorkerConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Engine is the shared scenario — the same configuration the
	// coordinator was launched with (SPMD). EventLog and TraceOut serve
	// only as collection markers here: the worker buffers per-domain
	// output and ships it to the coordinator when asked, regardless of
	// where those writers point.
	Engine core.ShardEngineConfig
	// ConfigTag must match the coordinator's (see Config.ConfigTag).
	ConfigTag string
	// Name identifies the worker in logs and recovery events.
	Name string

	// DialAttempts bounds connection retries (default 8), starting at
	// DialBackoff (default 200ms) and doubling up to 3s per wait.
	DialAttempts int
	DialBackoff  time.Duration

	// HeartbeatInterval is the outgoing ping period (default 1s);
	// IdleTimeout declares the coordinator dead after that much read
	// silence (default 2m — epochs ship continuously, and the
	// coordinator pings while idle).
	HeartbeatInterval time.Duration
	IdleTimeout       time.Duration

	// OnKill, when non-nil, replaces the default kill behaviour (abort
	// the epoch, close the connection, return ErrKilled). The daemon
	// installs os.Exit so the process dies as abruptly as a SIGKILL.
	OnKill func(worker int)

	// Logf, when non-nil, receives worker progress logging.
	Logf func(format string, args ...any)
}

func (cfg WorkerConfig) withDefaults() WorkerConfig {
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 8
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 200 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	return cfg
}

// killPanic is the sentinel a fault-injected kill raises to abort the
// in-flight epoch from inside a kernel event.
type killPanic struct{ worker int }

// worker is the run state behind RunWorker.
type worker struct {
	cfg       WorkerConfig
	ecfg      core.ShardEngineConfig
	lookahead time.Duration
	cn        *conn

	id      int
	shards  []int
	domains map[int]*core.ShardDomain
	// outbox holds each owned shard's cross-shard emissions for the
	// in-flight epoch. Slots are allocated at assignment and the cross
	// closures write through their own slot pointer, so parallel domain
	// goroutines never touch the map itself.
	outbox map[int]*[]outboxEntry

	replaying bool
	// killed is atomic: under Parallel every owned domain runs its kill
	// action in the same epoch, so multiple goroutines set it at once.
	killed atomic.Bool

	// metrics is the worker's live registry (one across all owned
	// domains; nil unless the coordinator asked for telemetry). It is
	// an atomic pointer because buildDomains publishes it on the serve
	// goroutine while the heartbeat goroutine snapshots it. lastSeq is
	// the last completed epoch, read by the heartbeat goroutine.
	metrics atomic.Pointer[metrics.Registry]
	lastSeq atomic.Uint64
}

// RunWorker dials the coordinator (bounded retry with backoff), offers
// itself for shard assignment — fresh or restored-from-checkpoint — and
// serves epochs until shutdown. It returns nil on a clean shutdown,
// ErrKilled when an injected kill-worker fault aborted it, and the
// transport or protocol error otherwise.
func RunWorker(cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	ecfg := cfg.Engine
	if ecfg.Lookahead <= 0 {
		ecfg.Lookahead = time.Millisecond
	}
	if err := ecfg.Validate(); err != nil {
		return err
	}
	w := &worker{
		cfg: cfg, ecfg: ecfg, lookahead: ecfg.Lookahead,
		id: -1, domains: map[int]*core.ShardDomain{}, outbox: map[int]*[]outboxEntry{},
	}

	nc, err := w.dial()
	if err != nil {
		return err
	}
	w.cn = newConn(nc)
	defer w.cn.close()

	hello := helloMsg{
		Version:    ProtoVersion,
		ConfigHash: configHash(cfg.ConfigTag, ecfg.Shards, ecfg.Seed, ecfg.Lookahead),
		Name:       cfg.Name,
	}
	if err := w.cn.send(msgHello, hello); err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}

	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeatLoop(stop)

	return w.serve()
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// dial connects with bounded retry-with-backoff: transient refusals
// while the coordinator boots (or a worker restarts into a running
// cluster) resolve themselves; a persistently absent coordinator is an
// error, not a hang.
func (w *worker) dial() (net.Conn, error) {
	backoff := w.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < w.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 3*time.Second {
				backoff = 3 * time.Second
			}
		}
		nc, err := net.DialTimeout("tcp", w.cfg.Addr, 5*time.Second)
		if err == nil {
			return nc, nil
		}
		lastErr = err
		w.logf("cluster: dial %s attempt %d/%d: %v", w.cfg.Addr, attempt+1, w.cfg.DialAttempts, err)
	}
	return nil, fmt.Errorf("cluster: dialing coordinator %s: %w", w.cfg.Addr, lastErr)
}

func (w *worker) heartbeatLoop(stop chan struct{}) {
	t := time.NewTicker(w.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Piggyback the live registry snapshot and epoch progress on
			// the liveness ping: the coordinator's farm-wide /metrics and
			// /cluster health view are fed entirely by frames it already
			// needs. Snapshot reads atomics only, so racing the domain
			// goroutines is safe.
			hb := heartbeatMsg{Seq: w.lastSeq.Load(), Metrics: w.metrics.Load().Snapshot()}
			if err := w.cn.send(msgHeartbeat, hb); err != nil {
				return
			}
		}
	}
}

// serve is the worker's message loop.
func (w *worker) serve() error {
	for {
		w.cn.c.SetReadDeadline(time.Now().Add(w.cfg.IdleTimeout))
		fr, err := readFrame(w.cn.c)
		if err != nil {
			if w.killed.Load() {
				return ErrKilled
			}
			return fmt.Errorf("cluster: coordinator connection: %w", err)
		}
		switch fr.typ {
		case msgHeartbeat:
			continue
		case msgAssign:
			err = w.handleAssign(fr.payload)
		case msgRestore:
			err = w.handleRestore(fr.payload)
		case msgAlign:
			err = w.handleAlign(fr.payload)
		case msgEpoch:
			err = w.handleEpoch(fr.payload)
		case msgResults:
			err = w.handleResults()
		case msgShutdown:
			return nil
		case msgError:
			var em errorMsg
			unmarshal(fr.payload, &em)
			return fmt.Errorf("cluster: coordinator: %s", em.Text)
		default:
			err = fmt.Errorf("cluster: unexpected %v message", fr.typ)
		}
		if err != nil {
			if errors.Is(err, ErrKilled) {
				return ErrKilled
			}
			w.cn.send(msgError, errorMsg{Text: err.Error()})
			return err
		}
	}
}

// buildDomains constructs the owned shard domains exactly as the
// in-process engine would, with cross-shard emissions serialized into
// the per-shard epoch outbox instead of a runner send.
func (w *worker) buildDomains(id int, shards []int, events, trace, metricsOn bool, snapName string, warmup time.Duration) error {
	if len(w.domains) > 0 {
		return errors.New("cluster: worker assigned twice")
	}
	w.id = id
	w.shards = append([]int(nil), shards...)
	ecfg := w.ecfg
	// The writers only mark that output should be collected; the
	// domains buffer and the coordinator merges. The registry is the
	// worker's own — the coordinator's cannot cross the wire.
	ecfg.EventLog, ecfg.TraceOut, ecfg.Metrics, ecfg.EpochLog = nil, nil, nil, nil
	if events {
		ecfg.EventLog = io.Discard
	}
	if trace {
		ecfg.TraceOut = io.Discard
	}
	if metricsOn {
		reg := metrics.NewRegistry()
		w.metrics.Store(reg)
		ecfg.Metrics = reg
	}
	for _, s := range shards {
		s := s
		slot := new([]outboxEntry)
		w.outbox[s] = slot
		d, err := core.NewShardDomain(ecfg, s, func(now sim.Time, dst int, pkt *netsim.Packet) {
			if w.replaying {
				return // the coordinator already delivered these once
			}
			*slot = append(*slot, outboxEntry{
				Src: s, Dst: dst, At: now.Add(w.lookahead), Pkt: appendPacket(nil, pkt),
			})
		})
		if err != nil {
			return fmt.Errorf("cluster: building shard %d: %w", s, err)
		}
		if snapName != "" {
			if err := d.F.PrepareSnapshotImages(snapName, warmup); err != nil {
				return fmt.Errorf("cluster: preparing shard %d: %w", s, err)
			}
		}
		w.domains[s] = d
	}
	return nil
}

// armFaults starts the per-domain fault injectors. The kill hook only
// arms on fresh assignment: restored domains replay any kill action as
// the recorded no-op it is everywhere else, so the fault log stays
// byte-identical without crash-looping the recovery.
func (w *worker) armFaults(withKillHook bool) {
	for _, s := range w.shards {
		d := w.domains[s]
		if d.Fault == nil {
			continue
		}
		if withKillHook {
			d.Fault.OnKillWorker = func(now sim.Time, target int) {
				if target == w.id {
					if w.cfg.OnKill != nil {
						w.cfg.OnKill(target)
						return
					}
					panic(killPanic{worker: target})
				}
			}
		}
		d.Fault.Start()
	}
}

func (w *worker) handleAssign(payload []byte) error {
	var m assignMsg
	if err := unmarshal(payload, &m); err != nil {
		return err
	}
	if err := w.buildDomains(m.Worker, m.Shards, m.Events, m.Trace, m.Metrics, m.SnapName, time.Duration(m.WarmupNs)); err != nil {
		return err
	}
	reply := preparedMsg{}
	for _, s := range w.shards {
		reply.Clocks = append(reply.Clocks, w.domains[s].K.Now())
	}
	w.logf("cluster: assigned worker %d, shards %v", w.id, w.shards)
	return w.cn.send(msgPrepared, reply)
}

func (w *worker) handleAlign(payload []byte) error {
	var m alignMsg
	if err := unmarshal(payload, &m); err != nil {
		return err
	}
	if len(w.domains) == 0 {
		return errors.New("cluster: align before assignment")
	}
	for _, s := range w.shards {
		w.domains[s].K.RunUntil(m.Base)
	}
	w.armFaults(true)
	return w.cn.send(msgReady, readyMsg{})
}

// handleRestore adopts a crashed worker's shards: rebuild the domains
// from the shared configuration, run the warmup, align to the recorded
// base, arm faults (sans kill hook), then replay the checkpointed epoch
// inputs — each epoch's inputs scheduled while the kernel sits at that
// epoch's opening barrier, reproducing event-heap insertion order — up
// to the last completed boundary.
func (w *worker) handleRestore(payload []byte) error {
	var m restoreMsg
	if err := unmarshal(payload, &m); err != nil {
		return err
	}
	if len(m.Checkpoints) != len(m.Shards) {
		return fmt.Errorf("cluster: restore with %d checkpoints for %d shards", len(m.Checkpoints), len(m.Shards))
	}
	if err := w.buildDomains(m.Worker, m.Shards, m.Events, m.Trace, m.Metrics, m.SnapName, time.Duration(m.WarmupNs)); err != nil {
		return err
	}
	for _, s := range w.shards {
		w.domains[s].K.RunUntil(m.Base)
	}
	w.armFaults(false)

	w.replaying = true
	defer func() { w.replaying = false }()
	hash := configHash(w.cfg.ConfigTag, w.ecfg.Shards, w.ecfg.Seed, w.lookahead)
	for i, s := range m.Shards {
		ck, err := DecodeCheckpoint(m.Checkpoints[i])
		if err != nil {
			return fmt.Errorf("cluster: shard %d checkpoint: %w", s, err)
		}
		if ck.Shard != s || ck.Shards != w.ecfg.Shards || ck.ConfigHash != hash {
			return fmt.Errorf("cluster: shard %d checkpoint identity mismatch (shard=%d shards=%d)", s, ck.Shard, ck.Shards)
		}
		d := w.domains[s]
		for _, ep := range ck.Epochs {
			d.K.RunUntil(ep.Start)
			ins, err := decodeInputs(ep.Inputs)
			if err != nil {
				return fmt.Errorf("cluster: shard %d replay: %w", s, err)
			}
			w.scheduleInputs(d, ins)
			d.K.RunUntil(ep.End)
		}
		d.K.RunUntil(ck.Through)
		w.logf("cluster: restored shard %d through %v (%d logged epochs)", s, ck.Through, len(ck.Epochs))
	}
	return w.cn.send(msgReady, readyMsg{})
}

// scheduleInputs schedules decoded barrier inputs on a domain's kernel
// in delivery order.
func (w *worker) scheduleInputs(d *core.ShardDomain, ins []input) {
	for _, in := range ins {
		in := in
		switch in.Kind {
		case inputCross:
			d.K.At(in.At, func(now sim.Time) { d.G.HandleInbound(now, in.Pkt) })
		case inputRecord:
			d.K.At(in.At, func(now sim.Time) { d.G.HandleInbound(now, in.Rec.Packet()) })
		}
	}
}

func (w *worker) handleEpoch(payload []byte) error {
	var m epochMsg
	if err := unmarshal(payload, &m); err != nil {
		return err
	}
	if len(w.domains) == 0 {
		return errors.New("cluster: epoch before assignment")
	}
	for _, si := range m.Inputs {
		d := w.domains[si.Shard]
		if d == nil {
			return fmt.Errorf("cluster: epoch inputs for shard %d this worker does not own", si.Shard)
		}
		ins, err := decodeInputs(si.Inputs)
		if err != nil {
			return fmt.Errorf("cluster: epoch %d shard %d inputs: %w", m.Seq, si.Shard, err)
		}
		for _, in := range ins {
			if in.At < m.Start {
				return fmt.Errorf("cluster: epoch %d input at %v before epoch start %v", m.Seq, in.At, m.Start)
			}
		}
		w.scheduleInputs(d, ins)
	}
	if err := w.runEpoch(m.End); err != nil {
		return err
	}
	reply := epochDoneMsg{Seq: m.Seq}
	for _, s := range w.shards {
		slot := w.outbox[s]
		reply.Outbox = append(reply.Outbox, *slot...)
		*slot = (*slot)[:0]
	}
	w.lastSeq.Store(m.Seq)
	return w.cn.send(msgEpochDone, reply)
}

// runEpoch advances every owned domain to end — on goroutines when the
// scenario asks for parallelism, else sequentially in shard order (the
// result is byte-identical either way; see sim.ParallelRunner). A
// fault-injected kill aborts the epoch mid-event via the sentinel
// panic and surfaces as ErrKilled.
func (w *worker) runEpoch(end sim.Time) (err error) {
	run := func(d *core.ShardDomain) {
		defer func() {
			if r := recover(); r != nil {
				if kp, ok := r.(killPanic); ok {
					w.killed.Store(true)
					w.logf("cluster: worker %d killed by injected fault at %v", kp.worker, d.K.Now())
					return
				}
				panic(r)
			}
		}()
		d.K.RunUntil(end)
	}
	if w.ecfg.Parallel && len(w.shards) > 1 {
		var wg sync.WaitGroup
		for _, s := range w.shards {
			d := w.domains[s]
			wg.Add(1)
			go func() {
				defer wg.Done()
				run(d)
			}()
		}
		wg.Wait()
	} else {
		for _, s := range w.shards {
			run(w.domains[s])
		}
	}
	if w.killed.Load() {
		// Die like the real thing: drop the connection mid-epoch with
		// no farewell; the coordinator's crash detection takes it from
		// here.
		w.cn.close()
		return ErrKilled
	}
	return nil
}

// handleResults snapshots stats (pre-close, matching when a
// single-process run reads its facade stats), closes the domains to
// flush open trace spans, and ships everything in one reply.
func (w *worker) handleResults() error {
	var m resultsMsg
	m.Metrics = w.metrics.Load().Snapshot()
	for _, s := range w.shards {
		d := w.domains[s]
		sr := shardResult{
			Shard:       s,
			Gateway:     d.G.Stats(),
			Farm:        d.F.Stats(),
			Guest:       d.F.GuestTotals(),
			LiveVMs:     d.F.LiveVMs(),
			InfectedVMs: d.F.InfectedVMs(),
			Bindings:    d.G.NumBindings(),
			Memory:      d.F.MemoryInUse(),
			DNSQueries:  d.Resolver.Queries,
		}
		if d.Fault != nil {
			for _, ev := range d.Fault.Log() {
				sr.FaultLog = append(sr.FaultLog, fmt.Sprintf("shard=%d %s", s, ev))
			}
		}
		d.Close()
		if d.EventBuf != nil {
			sr.Events = d.EventBuf.Bytes()
		}
		if d.TraceBuf != nil {
			sr.Trace = d.TraceBuf.Bytes()
		}
		m.Shards = append(m.Shards, sr)
	}
	return w.cn.send(msgResults, m)
}
