package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"potemkin/internal/core"
	"potemkin/internal/metrics"
	"potemkin/internal/telescope"
)

// filterSim drops the wall-clock epoch_* profiler series so snapshots
// can be compared across execution modes.
func filterSim(pts []metrics.Point) []metrics.Point {
	var out []metrics.Point
	for _, p := range pts {
		if strings.HasPrefix(p.Name, "epoch") {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TestClusterMetricsAggregation is the farm-wide telemetry acceptance
// test: with a registry on the coordinator, workers piggyback their
// snapshots on heartbeats, the merged /metrics view equals the merged
// end-of-run Results.Metrics, and both equal what a single sequential
// registry would have recorded for the same seed.
func TestClusterMetricsAggregation(t *testing.T) {
	const seed = 23

	// Oracle: the same scenario in one process, one registry.
	oracleReg := metrics.NewRegistry()
	ocfg := testEngineConfig(seed, nil)
	ocfg.Parallel = false
	ocfg.Metrics = oracleReg
	oeng, err := core.NewShardEngine(ocfg)
	if err != nil {
		t.Fatalf("NewShardEngine: %v", err)
	}
	oeng.StartFaults()
	for _, pkt := range exploitPackets(ocfg.Farm.Profile) {
		oeng.InjectBarrier(pkt)
	}
	if _, err := oeng.Replay(&telescope.SliceSource{Recs: testRecords(t, seed)}, nil, time.Millisecond); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	oeng.RunFor(time.Second)
	oraclePts := filterSim(oracleReg.Snapshot())
	oracleGw := oeng.GatewayStats()
	oeng.Close()
	if len(oraclePts) == 0 {
		t.Fatal("oracle registry empty; scenario records no metrics")
	}

	// Cluster: two workers, coordinator registry + epoch timeline.
	var timeline bytes.Buffer
	h := startCluster(t, seed, nil, 2, 0, func(cfg *Config) {
		cfg.Engine.Metrics = metrics.NewRegistry()
		cfg.Engine.EpochLog = &timeline
	})
	got, err := h.drive(t, seed, time.Second)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	res, err := h.c.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	_ = got

	// Merged worker registries must equal the oracle registry exactly:
	// counters, gauges, and histogram buckets are all order-independent
	// integer accumulations over the same simulated run.
	clusterPts := filterSim(res.Metrics)
	a, _ := json.Marshal(oraclePts)
	b, _ := json.Marshal(clusterPts)
	if !bytes.Equal(a, b) {
		t.Errorf("cluster metrics diverge from sequential oracle:\noracle:  %s\ncluster: %s", a, b)
	}

	// The live scrape after the run reflects the exact final snapshots
	// (results supersede the heartbeat-lagged copies).
	text := string(h.c.MetricsText())
	for _, want := range []string{
		"# TYPE gateway_inbound_packets_total counter",
		"# TYPE farm_live_vms gauge",
		"# TYPE epoch_barrier_wait_ms summary",
		"epochs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("farm-wide exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if n := len(strings.Fields(line)); n != 2 {
			t.Errorf("malformed series line: %q", line)
		}
	}
	// Scraped counter equals the merged gateway stats.
	var inbound int64 = -1
	for _, p := range metrics.MergePoints(nil, res.Metrics) {
		if p.Name == "gateway_inbound_packets_total" {
			inbound = p.Value
		}
	}
	if uint64(inbound) != got.gw.InboundPackets || got.gw.InboundPackets != oracleGw.InboundPackets {
		t.Errorf("inbound: metrics=%d cluster-stats=%d oracle=%d",
			inbound, got.gw.InboundPackets, oracleGw.InboundPackets)
	}

	// Cluster health: both workers live, caught up, no recoveries.
	health := h.c.Health()
	if len(health.Workers) != 2 {
		t.Fatalf("health lists %d workers, want 2", len(health.Workers))
	}
	for _, w := range health.Workers {
		if !w.Live {
			t.Errorf("worker %d (%s) not live: %+v", w.ID, w.Name, w)
		}
		if w.EpochLag < 0 {
			t.Errorf("worker %d negative epoch lag: %+v", w.ID, w)
		}
	}
	if health.Epoch == 0 || health.Shards != 4 || health.Degraded {
		t.Errorf("health: %+v", health)
	}
	var parsed ClusterHealth
	if err := json.Unmarshal(h.c.HealthJSON(), &parsed); err != nil {
		t.Fatalf("HealthJSON: %v", err)
	}
	if parsed.Slots != 2 {
		t.Errorf("parsed health: %+v", parsed)
	}

	h.shutdown(t)

	// The coordinator's epoch timeline profiled the worker barrier:
	// per-epoch samples with one advance/wait entry per worker.
	samples, err := metrics.ReadEpochs(&timeline)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(samples)) != health.Epoch {
		t.Errorf("timeline has %d epochs, health says %d", len(samples), health.Epoch)
	}
	if len(samples) == 0 {
		t.Fatal("empty coordinator epoch timeline")
	}
	s := samples[0]
	if len(s.AdvanceNS) != 2 || len(s.BarrierWaitNS) != 2 {
		t.Errorf("per-worker arrays not 2-wide: %+v", s)
	}
}

// TestClusterMetricsOffByDefault: without a coordinator registry no
// metric bytes cross the wire and the scrape endpoints degrade
// gracefully.
func TestClusterMetricsOffByDefault(t *testing.T) {
	const seed = 29
	h := startCluster(t, seed, nil, 2, 0, nil)
	got, err := h.drive(t, seed, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	res, err := h.c.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if res.Metrics != nil {
		t.Errorf("metrics shipped without a registry: %d points", len(res.Metrics))
	}
	if text := h.c.MetricsText(); len(text) != 0 {
		t.Errorf("MetricsText without registry: %q", text)
	}
	// Health still works — it reads connection state, not the registry.
	if health := h.c.Health(); len(health.Workers) != 2 {
		t.Errorf("health workers = %d", len(health.Workers))
	}
	_ = got
	h.shutdown(t)
}
