package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"potemkin"
	"potemkin/internal/core"
	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/scenario"
	"potemkin/internal/score"
	"potemkin/internal/telescope"
)

const (
	scenarioSeed  = 9
	scenarioSpace = "10.5.0.0/22"
)

// scenarioEngineConfig mirrors the facade's scenario wiring (and
// potemkind's cluster engineConfig) for one campaign, so the cluster
// run below is configured exactly as the facade oracle.
func scenarioEngineConfig(t *testing.T, sc *scenario.Scenario) (core.ShardEngineConfig, *scenario.Plan) {
	t.Helper()
	space, err := netsim.ParsePrefix(scenarioSpace)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := scenario.Compile(sc, scenarioSeed, space)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	gc := gateway.DefaultConfig()
	gc.Space = space
	gc.Policy = gateway.PolicyInternalReflect
	fc := farm.DefaultConfig()
	fc.Servers = 4
	fc.Profile = plan.Profile
	fc.PickTargetFor = plan.PickTargetFor()
	return core.ShardEngineConfig{
		Shards:   2,
		Parallel: true,
		Seed:     scenarioSeed,
		Gateway:  gc,
		Farm:     fc,
	}, plan
}

// startScenarioCluster is startCluster for campaign runs: both the
// coordinator and the workers build the scenario engine config (SPMD,
// like potemkind's cluster mode).
func startScenarioCluster(t *testing.T, name string) *clusterHarness {
	t.Helper()
	const workers = 2
	ec, _ := scenarioEngineConfig(t, scenario.Builtin(name))
	ec.Metrics = metrics.NewRegistry()
	tag := "scenario-test-" + name
	c, err := New(Config{
		Engine:            ec,
		ConfigTag:         tag,
		ListenAddr:        "127.0.0.1:0",
		Workers:           workers,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		RecoveryWait:      10 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h := &clusterHarness{c: c, errs: make([]error, workers), workers: workers}
	for i := 0; i < workers; i++ {
		i := i
		wec, _ := scenarioEngineConfig(t, scenario.Builtin(name))
		wc := WorkerConfig{
			Addr:              c.Addr().String(),
			Engine:            wec,
			ConfigTag:         tag,
			Name:              fmt.Sprintf("w%d", i),
			HeartbeatInterval: 50 * time.Millisecond,
			Logf:              t.Logf,
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.errs[i] = RunWorker(wc)
		}()
	}
	if err := c.WaitReady(30 * time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return h
}

// TestClusterScorecardMatchesFacade closes the acceptance loop on the
// scenario engine: the same campaign at the same seed and shard count,
// run once through the potemkin facade (sequential shard engine) and
// once through a real coordinator + two workers over TCP loopback, must
// emit byte-identical scorecards.
func TestClusterScorecardMatchesFacade(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			campaign, err := potemkin.LoadScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			hf, err := potemkin.New(potemkin.Options{
				Seed:           scenarioSeed,
				MonitoredSpace: scenarioSpace,
				Servers:        4,
				GatewayShards:  2,
				Policy:         potemkin.InternalReflect,
				Scenario:       campaign,
			})
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := hf.RunScenario()
			hf.Close()
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := oracle.WriteJSON(&want); err != nil {
				t.Fatal(err)
			}

			_, plan := scenarioEngineConfig(t, scenario.Builtin(name))
			h := startScenarioCluster(t, name)
			defer h.shutdown(t)
			if _, err := h.c.Replay(&telescope.SliceSource{Recs: plan.Records}, nil, plan.Settle); err != nil {
				t.Fatalf("cluster replay: %v", err)
			}
			res, err := h.c.Results()
			if err != nil {
				t.Fatalf("cluster results: %v", err)
			}
			card := score.Compute(plan.Facts("internal-reflect"), res.Metrics)
			var got bytes.Buffer
			if err := card.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("cluster scorecard differs from facade:\n--- facade\n%s--- cluster\n%s", want.Bytes(), got.Bytes())
			}
		})
	}
}
