// Package cluster distributes core.ShardEngine domains across worker
// processes under a coordinator that runs the conservative epoch
// barrier over TCP. The coordinator implements sim.Barrier, so replay
// drivers and experiment code run unchanged whether the shards live on
// goroutines (sim.ParallelRunner) or in other processes; with the same
// configuration and seed the merged stats, event log, and trace bytes
// are identical to a single-process sequential run.
//
// Robustness is the point of the package: every worker connection
// carries heartbeats with deadlines, dial/handshake retries with
// bounded backoff, and the coordinator detects a crashed worker (EOF,
// missed heartbeat, stalled epoch, or a fault-injected kill via
// internal/fault), restores its shards from the last epoch-boundary
// checkpoint onto a standby or restarted worker, and resumes the run —
// or, when no replacement appears, fails cleanly with partial results
// instead of hanging the barrier. See DESIGN.md "Cluster execution".
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// ProtoVersion is bumped on any wire-format change; coordinator and
// worker refuse to pair across versions. v2 added metric piggybacks:
// worker heartbeats carry a registry snapshot and results frames carry
// the final one, feeding the coordinator's farm-wide /metrics. v3
// extends replay-record inputs with payload content so scenario
// exploit packets cross the cluster boundary losslessly.
const ProtoVersion = 3

// maxFrame bounds a single frame payload. Results frames carry whole
// buffered event logs, so the bound is generous; everything else is
// tiny.
const maxFrame = 256 << 20

// Message types. The payload of every control message is JSON; epoch
// input lists and packets use the binary codec below (nested in JSON as
// base64 []byte fields).
type msgType byte

const (
	msgHello     msgType = 1  // worker -> coordinator: version, config hash, name
	msgAssign    msgType = 2  // coordinator -> worker: id, shards, warmup
	msgRestore   msgType = 3  // coordinator -> worker: id, shards, checkpoints
	msgPrepared  msgType = 4  // worker -> coordinator: per-shard kernel clocks
	msgAlign     msgType = 5  // coordinator -> worker: run every kernel to base
	msgReady     msgType = 6  // worker -> coordinator: domains aligned / restored
	msgEpoch     msgType = 7  // coordinator -> worker: epoch bounds + inputs
	msgEpochDone msgType = 8  // worker -> coordinator: epoch outbox
	msgHeartbeat msgType = 9  // both directions, empty payload
	msgResults   msgType = 10 // coordinator -> worker (request, empty) and reply
	msgShutdown  msgType = 11 // coordinator -> worker: run over, exit cleanly
	msgError     msgType = 12 // either direction: fatal error text, then close
)

func (t msgType) String() string {
	switch t {
	case msgHello:
		return "hello"
	case msgAssign:
		return "assign"
	case msgRestore:
		return "restore"
	case msgPrepared:
		return "prepared"
	case msgAlign:
		return "align"
	case msgReady:
		return "ready"
	case msgEpoch:
		return "epoch"
	case msgEpochDone:
		return "epoch-done"
	case msgHeartbeat:
		return "heartbeat"
	case msgResults:
		return "results"
	case msgShutdown:
		return "shutdown"
	case msgError:
		return "error"
	}
	return fmt.Sprintf("msg(%d)", byte(t))
}

// frame is one decoded wire frame.
type frame struct {
	typ     msgType
	payload []byte
}

// writeFrame emits one frame: u32 big-endian payload length, u8 type,
// payload.
func writeFrame(w io.Writer, typ msgType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame %v payload %d exceeds limit", typ, len(payload))
	}
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = byte(typ)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting oversized payloads before
// allocating.
func readFrame(r io.Reader) (frame, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFrame {
		return frame{}, fmt.Errorf("cluster: frame payload %d exceeds limit", n)
	}
	f := frame{typ: msgType(hdr[4]), payload: make([]byte, n)}
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return frame{}, err
	}
	return f, nil
}

// unmarshal decodes a JSON control payload.
func unmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

// appendU64 appends a big-endian uint64 (codec shorthand).
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// writeMsg JSON-encodes v and writes it as one frame.
func writeMsg(w io.Writer, typ msgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

// Control message payloads.

type helloMsg struct {
	Version    int
	ConfigHash uint64
	Name       string
}

type assignMsg struct {
	Worker   int
	Shards   []int
	WarmupNs int64  // snapshot-image warmup to run before aligning
	SnapName string // snapshot image name
	Events   bool   // collect per-domain event logs for the coordinator
	Trace    bool   // collect per-domain span traces
	Metrics  bool   // run a live telemetry registry, piggyback on heartbeats
}

type restoreMsg struct {
	Worker      int
	Shards      []int
	WarmupNs    int64
	SnapName    string
	Events      bool
	Trace       bool
	Metrics     bool
	Base        sim.Time
	Seq         uint64   // next epoch the worker will receive
	Checkpoints [][]byte // one serialized Checkpoint per entry of Shards
}

type preparedMsg struct {
	Clocks []sim.Time // per owned shard, after local warmup
}

type alignMsg struct {
	Base sim.Time
}

type readyMsg struct{}

type epochMsg struct {
	Seq    uint64
	Start  sim.Time
	End    sim.Time
	Inputs []shardInputs // only shards with inputs appear
}

type shardInputs struct {
	Shard  int
	Inputs []byte // binary input-list codec
}

type epochDoneMsg struct {
	Seq    uint64
	Outbox []outboxEntry
}

// heartbeatMsg is the worker->coordinator heartbeat payload: the last
// epoch the worker completed plus a live registry snapshot (empty
// without metrics). Coordinator->worker heartbeats stay empty; the
// worker ignores the payload either way, so the frame doubles as the
// liveness signal it always was.
type heartbeatMsg struct {
	Seq     uint64          `json:",omitempty"`
	Metrics []metrics.Point `json:",omitempty"`
}

// outboxEntry is one cross-shard packet emitted during an epoch. Src
// entries from one worker arrive grouped by source shard in send order;
// the coordinator's stable merge across workers reproduces the
// in-process (src, send order) delivery order exactly.
type outboxEntry struct {
	Src int
	Dst int
	At  sim.Time
	Pkt []byte // binary packet codec
}

type shardResult struct {
	Shard       int
	Gateway     gateway.Stats
	Farm        farm.Stats
	Guest       guest.Stats
	LiveVMs     int
	InfectedVMs int
	Bindings    int
	Memory      uint64
	DNSQueries  uint64
	FaultLog    []string
	Events      []byte
	Trace       []byte
}

type resultsMsg struct {
	Shards []shardResult
	// Metrics is the worker's final registry snapshot (the worker runs
	// one registry across its domains), so the coordinator's end-of-run
	// aggregation is exact rather than heartbeat-lagged.
	Metrics []metrics.Point
}

type errorMsg struct {
	Text string
}

// configHash digests the scenario identity both sides must agree on.
// The tag is the caller's canonical rendering of the scenario (the
// facade options or the daemon flag set); shards, seed, and lookahead
// are hashed explicitly because the barrier math depends on them.
func configHash(tag string, shards int, seed uint64, lookahead time.Duration) uint64 {
	h := fnv.New64a()
	io.WriteString(h, tag)
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(shards))
	binary.BigEndian.PutUint64(buf[8:], seed)
	binary.BigEndian.PutUint64(buf[16:], uint64(lookahead))
	h.Write(buf[:])
	return h.Sum64()
}

// Binary input codec. An input is one packet the coordinator injects
// into a shard at an epoch barrier: either a cross-shard delivery
// (full packet) or a telescope replay record. The same encoding is the
// checkpoint payload, so the fuzz target covers both paths.

const (
	inputCross  = 1
	inputRecord = 2
)

// maxPayload bounds a cross-packet payload (the wire layer never
// carries more than 64 KiB either).
const maxPayload = 1 << 20

// input is one decoded barrier injection.
type input struct {
	Kind byte
	At   sim.Time
	Pkt  *netsim.Packet   // Kind == inputCross
	Rec  telescope.Record // Kind == inputRecord
}

// appendCross appends a cross-delivery input.
func appendCross(b []byte, at sim.Time, pkt *netsim.Packet) []byte {
	b = append(b, inputCross)
	b = binary.BigEndian.AppendUint64(b, uint64(at))
	return appendPacket(b, pkt)
}

// appendRecord appends a replay-record input. The stored-payload
// length is separate from PayLen: most telescope records carry only a
// size, but scenario exploit records carry content that must survive
// the trip to the owning worker.
func appendRecord(b []byte, at sim.Time, rec telescope.Record) []byte {
	b = append(b, inputRecord)
	b = binary.BigEndian.AppendUint64(b, uint64(at))
	b = binary.BigEndian.AppendUint32(b, uint32(rec.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(rec.Dst))
	b = append(b, byte(rec.Proto), rec.Flags)
	b = binary.BigEndian.AppendUint16(b, rec.SrcPort)
	b = binary.BigEndian.AppendUint16(b, rec.DstPort)
	b = binary.BigEndian.AppendUint16(b, rec.PayLen)
	b = binary.BigEndian.AppendUint16(b, uint16(len(rec.Payload)))
	return append(b, rec.Payload...)
}

// appendPacket appends a lossless packet encoding (every netsim.Packet
// field; the on-the-wire GRE marshal is deliberately not reused — it
// recomputes checksums and truncates models the simulator keeps exact).
func appendPacket(b []byte, p *netsim.Packet) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(p.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(p.Dst))
	b = append(b, byte(p.Proto), p.TTL)
	b = binary.BigEndian.AppendUint16(b, p.ID)
	b = binary.BigEndian.AppendUint16(b, p.SrcPort)
	b = binary.BigEndian.AppendUint16(b, p.DstPort)
	b = binary.BigEndian.AppendUint32(b, p.Seq)
	b = binary.BigEndian.AppendUint32(b, p.Ack)
	b = append(b, p.Flags)
	b = binary.BigEndian.AppendUint16(b, p.Window)
	b = append(b, p.ICMPType, p.ICMPCode)
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Payload)))
	return append(b, p.Payload...)
}

// byteReader tracks a decode offset with bounds checking.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, fmt.Errorf("cluster: truncated input at offset %d (want %d of %d)", r.off, n, len(r.b))
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s, nil
}

func (r *byteReader) u8() (byte, error) {
	s, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return s[0], nil
}

func (r *byteReader) u16() (uint16, error) {
	s, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(s), nil
}

func (r *byteReader) u32() (uint32, error) {
	s, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(s), nil
}

func (r *byteReader) u64() (uint64, error) {
	s, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(s), nil
}

func (r *byteReader) done() bool { return r.off >= len(r.b) }

// decodePacket reads one packet encoded by appendPacket.
func decodePacket(r *byteReader) (*netsim.Packet, error) {
	p := &netsim.Packet{}
	src, err := r.u32()
	if err != nil {
		return nil, err
	}
	dst, err := r.u32()
	if err != nil {
		return nil, err
	}
	p.Src, p.Dst = netsim.Addr(src), netsim.Addr(dst)
	proto, err := r.u8()
	if err != nil {
		return nil, err
	}
	p.Proto = netsim.Proto(proto)
	if p.TTL, err = r.u8(); err != nil {
		return nil, err
	}
	if p.ID, err = r.u16(); err != nil {
		return nil, err
	}
	if p.SrcPort, err = r.u16(); err != nil {
		return nil, err
	}
	if p.DstPort, err = r.u16(); err != nil {
		return nil, err
	}
	if p.Seq, err = r.u32(); err != nil {
		return nil, err
	}
	if p.Ack, err = r.u32(); err != nil {
		return nil, err
	}
	if p.Flags, err = r.u8(); err != nil {
		return nil, err
	}
	if p.Window, err = r.u16(); err != nil {
		return nil, err
	}
	if p.ICMPType, err = r.u8(); err != nil {
		return nil, err
	}
	if p.ICMPCode, err = r.u8(); err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxPayload {
		return nil, fmt.Errorf("cluster: packet payload %d exceeds limit", n)
	}
	if n > 0 {
		s, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		p.Payload = append([]byte(nil), s...)
	}
	return p, nil
}

// decodeInput reads one input encoded by appendCross / appendRecord.
func decodeInput(r *byteReader) (input, error) {
	var in input
	kind, err := r.u8()
	if err != nil {
		return in, err
	}
	at, err := r.u64()
	if err != nil {
		return in, err
	}
	in.Kind, in.At = kind, sim.Time(at)
	if in.At < 0 {
		return in, fmt.Errorf("cluster: input with negative time %d", in.At)
	}
	switch kind {
	case inputCross:
		if in.Pkt, err = decodePacket(r); err != nil {
			return in, err
		}
	case inputRecord:
		src, err := r.u32()
		if err != nil {
			return in, err
		}
		dst, err := r.u32()
		if err != nil {
			return in, err
		}
		proto, err := r.u8()
		if err != nil {
			return in, err
		}
		flags, err := r.u8()
		if err != nil {
			return in, err
		}
		sport, err := r.u16()
		if err != nil {
			return in, err
		}
		dport, err := r.u16()
		if err != nil {
			return in, err
		}
		paylen, err := r.u16()
		if err != nil {
			return in, err
		}
		stored, err := r.u16()
		if err != nil {
			return in, err
		}
		var payload []byte
		if stored > 0 {
			s, err := r.take(int(stored))
			if err != nil {
				return in, err
			}
			payload = append([]byte(nil), s...)
		}
		in.Rec = telescope.Record{
			At: in.At, Src: netsim.Addr(src), Dst: netsim.Addr(dst),
			Proto: netsim.Proto(proto), Flags: flags,
			SrcPort: sport, DstPort: dport, PayLen: paylen, Payload: payload,
		}
	default:
		return in, fmt.Errorf("cluster: unknown input kind %d", kind)
	}
	return in, nil
}

// decodeInputs decodes a whole input list.
func decodeInputs(b []byte) ([]input, error) {
	r := &byteReader{b: b}
	var ins []input
	for !r.done() {
		in, err := decodeInput(r)
		if err != nil {
			return nil, err
		}
		ins = append(ins, in)
	}
	return ins, nil
}

// conn wraps a worker connection with serialized writes and heartbeat
// bookkeeping. Reads happen on a single reader goroutine per conn (the
// coordinator side) or the worker's main loop.
type conn struct {
	c       net.Conn
	writeMu chMutex
}

// chMutex is a channel-based mutex so writes can be serialized from
// both the heartbeat goroutine and the main loop without a sync.Mutex
// held across network writes blocking shutdown forever (the conn close
// unblocks the writer, which releases the slot).
type chMutex chan struct{}

func newConn(c net.Conn) *conn {
	w := &conn{c: c, writeMu: make(chMutex, 1)}
	w.writeMu <- struct{}{}
	return w
}

func (w *conn) send(typ msgType, v any) error {
	<-w.writeMu
	defer func() { w.writeMu <- struct{}{} }()
	return writeMsg(w.c, typ, v)
}

func (w *conn) sendRaw(typ msgType, payload []byte) error {
	<-w.writeMu
	defer func() { w.writeMu <- struct{}{} }()
	return writeFrame(w.c, typ, payload)
}

func (w *conn) close() { w.c.Close() }
