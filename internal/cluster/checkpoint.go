package cluster

// Epoch-boundary checkpoints by deterministic replay. The simulator's
// kernels hold closures, so shard state cannot be serialized directly;
// what CAN be serialized is everything the coordinator ever injected
// into a shard — the per-epoch barrier inputs (cross-shard deliveries
// and telescope replay records, in delivery order). Rebuilding the
// domain from the same seed and replaying that log epoch-by-epoch
// reproduces the shard's state at the last completed barrier exactly,
// byte for byte, which is what lets a standby worker adopt a crashed
// worker's shards mid-run. Empty epochs are elided: running a kernel
// to time T in one step or in many is equivalent, as long as each
// non-empty epoch's inputs are scheduled while the kernel clock sits
// at that epoch's start (preserving event-heap insertion order against
// the domain's internal events).

import (
	"encoding/binary"
	"fmt"
	"io"

	"potemkin/internal/sim"
)

// Checkpoint magic/version ("PCLU", cluster replay checkpoint). v2
// tracks the protocol's v3 record codec: epoch input lists embed
// stored payload bytes, so a v1 reader would misparse them.
const (
	checkpointMagic   = 0x50434c55
	checkpointVersion = 2
)

// Bounds applied before allocating while reading untrusted checkpoint
// bytes.
const (
	maxCheckpointEpochs = 1 << 22
	maxEpochInputs      = 1 << 22
)

// EpochInputs records one non-empty epoch: its bounds and the inputs
// the coordinator injected at its opening barrier, in delivery order.
type EpochInputs struct {
	Start, End sim.Time
	Inputs     []byte // binary input-list codec (proto.go)
}

// Checkpoint is a shard's deterministic-replay checkpoint through the
// last completed epoch barrier.
type Checkpoint struct {
	Shard      int
	Shards     int
	Seed       uint64
	ConfigHash uint64
	Base       sim.Time // aligned clock at which traffic started
	Through    sim.Time // last completed epoch boundary
	Epochs     []EpochInputs
}

// WriteTo serializes the checkpoint.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, checkpointMagic)
	b = binary.BigEndian.AppendUint32(b, checkpointVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(ck.Shard))
	b = binary.BigEndian.AppendUint32(b, uint32(ck.Shards))
	b = binary.BigEndian.AppendUint64(b, ck.Seed)
	b = binary.BigEndian.AppendUint64(b, ck.ConfigHash)
	b = binary.BigEndian.AppendUint64(b, uint64(ck.Base))
	b = binary.BigEndian.AppendUint64(b, uint64(ck.Through))
	b = binary.BigEndian.AppendUint32(b, uint32(len(ck.Epochs)))
	for _, ep := range ck.Epochs {
		b = binary.BigEndian.AppendUint64(b, uint64(ep.Start))
		b = binary.BigEndian.AppendUint64(b, uint64(ep.End))
		b = binary.BigEndian.AppendUint32(b, uint32(len(ep.Inputs)))
		b = append(b, ep.Inputs...)
	}
	n, err := w.Write(b)
	return int64(n), err
}

// Encode returns the serialized checkpoint bytes.
func (ck *Checkpoint) Encode() []byte {
	var buf countingBuffer
	ck.WriteTo(&buf)
	return buf.b
}

type countingBuffer struct{ b []byte }

func (c *countingBuffer) Write(p []byte) (int, error) {
	c.b = append(c.b, p...)
	return len(p), nil
}

// ReadCheckpoint parses a serialized shard checkpoint, validating
// structure and bounds so truncated or corrupt input yields an error,
// never a panic or an absurd allocation. Every decoded input is run
// through the input codec, so a checkpoint that reads back cleanly is
// replayable.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxFrame+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading checkpoint: %w", err)
	}
	if len(data) > maxFrame {
		return nil, fmt.Errorf("cluster: checkpoint exceeds %d bytes", maxFrame)
	}
	return DecodeCheckpoint(data)
}

// DecodeCheckpoint is ReadCheckpoint over in-memory bytes.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	br := &byteReader{b: data}
	magic, err := br.u32()
	if err != nil {
		return nil, fmt.Errorf("cluster: checkpoint too short: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("cluster: bad checkpoint magic %#x", magic)
	}
	ver, err := br.u32()
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("cluster: unsupported checkpoint version %d", ver)
	}
	ck := &Checkpoint{}
	shard, err := br.u32()
	if err != nil {
		return nil, err
	}
	shards, err := br.u32()
	if err != nil {
		return nil, err
	}
	if shards == 0 || shards > 1<<20 || shard >= shards {
		return nil, fmt.Errorf("cluster: checkpoint shard %d of %d out of range", shard, shards)
	}
	ck.Shard, ck.Shards = int(shard), int(shards)
	if ck.Seed, err = br.u64(); err != nil {
		return nil, err
	}
	if ck.ConfigHash, err = br.u64(); err != nil {
		return nil, err
	}
	base, err := br.u64()
	if err != nil {
		return nil, err
	}
	through, err := br.u64()
	if err != nil {
		return nil, err
	}
	ck.Base, ck.Through = sim.Time(base), sim.Time(through)
	if ck.Base < 0 || ck.Through < ck.Base {
		return nil, fmt.Errorf("cluster: checkpoint time range [%d, %d] invalid", ck.Base, ck.Through)
	}
	nEpochs, err := br.u32()
	if err != nil {
		return nil, err
	}
	if nEpochs > maxCheckpointEpochs {
		return nil, fmt.Errorf("cluster: checkpoint epoch count %d exceeds limit", nEpochs)
	}
	prevEnd := ck.Base
	for i := uint32(0); i < nEpochs; i++ {
		start, err := br.u64()
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated epoch %d header: %w", i, err)
		}
		end, err := br.u64()
		if err != nil {
			return nil, err
		}
		ep := EpochInputs{Start: sim.Time(start), End: sim.Time(end)}
		if ep.Start < prevEnd || ep.End <= ep.Start || ep.End > ck.Through {
			return nil, fmt.Errorf("cluster: epoch %d bounds [%v, %v] out of order", i, ep.Start, ep.End)
		}
		prevEnd = ep.End
		n, err := br.u32()
		if err != nil {
			return nil, err
		}
		blob, err := br.take(int(n))
		if err != nil {
			return nil, fmt.Errorf("cluster: truncated epoch %d inputs: %w", i, err)
		}
		// Decode eagerly: corrupt inputs must surface at load time, not
		// as a replay panic later.
		ins, err := decodeInputs(blob)
		if err != nil {
			return nil, fmt.Errorf("cluster: epoch %d: %w", i, err)
		}
		if len(ins) > maxEpochInputs {
			return nil, fmt.Errorf("cluster: epoch %d input count %d exceeds limit", i, len(ins))
		}
		for _, in := range ins {
			// Replay records land inside their epoch; cross-shard
			// deliveries are merely scheduled at its barrier and may be
			// due later (the kernel holds them). Either way nothing may
			// sort before the barrier, or replay would panic.
			if in.At < ep.Start {
				return nil, fmt.Errorf("cluster: epoch %d input at %v before epoch start %v", i, in.At, ep.Start)
			}
		}
		ep.Inputs = append([]byte(nil), blob...)
		ck.Epochs = append(ck.Epochs, ep)
	}
	if !br.done() {
		return nil, fmt.Errorf("cluster: %d trailing bytes after checkpoint", len(data)-br.off)
	}
	return ck, nil
}

// shardLog accumulates one shard's completed-epoch inputs during a run
// — the live form of a Checkpoint. The coordinator keeps one per shard
// and snapshots them on demand (worker crash, shutdown flush).
type shardLog struct {
	epochs  []EpochInputs
	through sim.Time
}

// commit records a completed epoch (empty epochs advance `through`
// without an entry).
func (l *shardLog) commit(start, end sim.Time, inputs []byte) {
	if len(inputs) > 0 {
		l.epochs = append(l.epochs, EpochInputs{Start: start, End: end, Inputs: inputs})
	}
	l.through = end
}

// checkpoint snapshots the log as a serializable Checkpoint.
func (l *shardLog) checkpoint(shard, shards int, seed, hash uint64, base sim.Time) *Checkpoint {
	through := l.through
	if through < base {
		through = base
	}
	return &Checkpoint{
		Shard: shard, Shards: shards, Seed: seed, ConfigHash: hash,
		Base: base, Through: through,
		Epochs: append([]EpochInputs(nil), l.epochs...),
	}
}
