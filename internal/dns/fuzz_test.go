package dns

import (
	"testing"

	"potemkin/internal/netsim"
)

// FuzzParse: the resolver parses queries straight from (simulated)
// malware; hostile bytes must neither panic nor hang (compression
// pointer loops are the classic DNS parser trap).
func FuzzParse(f *testing.F) {
	q, _ := NewQuery(1, "evil.example.com")
	f.Add(q)
	m := &Message{ID: 2, Flags: FlagQR, Questions: []Question{{Name: "a.b", Type: TypeA, Class: ClassIN}},
		Answers: []Answer{{Name: "a.b", TTL: 60, Addr: 0x0a050001}}}
	resp, _ := m.Marshal()
	f.Add(resp)
	f.Add([]byte{0xc0, 0x0c})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted messages must re-marshal and re-parse to the same
		// question/answer structure (names may differ only if the
		// original used compression, which Marshal does not emit).
		re, err := msg.Marshal()
		if err != nil {
			// Parsed names can be unmarshalable only if a label came in
			// oversized — the parser must not have allowed that.
			for _, q := range msg.Questions {
				for _, label := range splitLabels(q.Name) {
					if len(label) > 63 {
						t.Fatalf("parser admitted oversize label %q", label)
					}
				}
			}
			return
		}
		m2, err := Parse(re)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(m2.Questions) != len(msg.Questions) || len(m2.Answers) != len(msg.Answers) {
			t.Fatalf("structure diverged: %+v vs %+v", msg, m2)
		}
	})
}

func splitLabels(name string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			out = append(out, name[start:i])
			start = i + 1
		}
	}
	return out
}

// FuzzResolverServe: end-to-end resolver robustness.
func FuzzResolverServe(f *testing.F) {
	q, _ := NewQuery(7, "x.example")
	f.Add(q)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewResolver(netsim.MustParsePrefix("10.5.0.0/16"))
		resp, err := r.Serve(data)
		if err != nil {
			return
		}
		m, err := Parse(resp)
		if err != nil {
			t.Fatalf("resolver emitted unparsable response: %v", err)
		}
		if !m.Response() {
			t.Fatal("resolver response without QR bit")
		}
		for _, a := range m.Answers {
			if !r.Sinkhole.Contains(a.Addr) {
				t.Fatalf("resolver leaked address outside sinkhole: %v", a.Addr)
			}
		}
	})
}
