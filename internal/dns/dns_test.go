package dns

import (
	"strings"
	"testing"
	"testing/quick"

	"potemkin/internal/netsim"
)

func TestQueryRoundTrip(t *testing.T) {
	q, err := NewQuery(0x1234, "evil.example.com")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x1234 || m.Response() {
		t.Errorf("header: %+v", m)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "evil.example.com" ||
		m.Questions[0].Type != TypeA {
		t.Errorf("questions: %+v", m.Questions)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	m := &Message{
		ID:    7,
		Flags: FlagQR | FlagAA,
		Questions: []Question{
			{Name: "a.b.c", Type: TypeA, Class: ClassIN},
		},
		Answers: []Answer{
			{Name: "a.b.c", TTL: 300, Addr: netsim.MustParseAddr("10.5.1.2")},
		},
	}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response() || len(got.Answers) != 1 {
		t.Fatalf("parsed: %+v", got)
	}
	a := got.Answers[0]
	if a.Name != "a.b.c" || a.TTL != 300 || a.Addr != netsim.MustParseAddr("10.5.1.2") {
		t.Errorf("answer: %+v", a)
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		// Build a plausible name from raw bytes.
		var labels []string
		for i := 0; i < len(raw) && len(labels) < 5; i += 4 {
			end := i + 4
			if end > len(raw) {
				end = len(raw)
			}
			label := strings.Map(func(r rune) rune {
				if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
					return r
				}
				return 'x'
			}, strings.ToLower(string(raw[i:end])))
			if label != "" {
				labels = append(labels, label)
			}
		}
		if len(labels) == 0 {
			return true
		}
		name := strings.Join(labels, ".")
		q, err := NewQuery(1, name)
		if err != nil {
			return false
		}
		m, err := Parse(q)
		return err == nil && m.Questions[0].Name == name
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestRejectsBadLabels(t *testing.T) {
	if _, err := NewQuery(1, "a..b"); err != ErrBadName {
		t.Errorf("empty label: %v", err)
	}
	if _, err := NewQuery(1, strings.Repeat("a", 64)+".com"); err != ErrBadName {
		t.Errorf("oversize label: %v", err)
	}
}

func TestCompressionPointerParse(t *testing.T) {
	// Hand-built response with a compressed answer name pointing at the
	// question name (offset 12).
	var b []byte
	b = put16(b, 9)                 // ID
	b = put16(b, FlagQR)            // flags
	b = put16(b, 1)                 // qdcount
	b = put16(b, 1)                 // ancount
	b = put16(b, 0)                 // ns
	b = put16(b, 0)                 // ar
	b, _ = encodeName(b, "foo.com") // at offset 12
	b = put16(b, TypeA)
	b = put16(b, ClassIN)
	b = append(b, 0xc0, 12) // pointer to offset 12
	b = put16(b, TypeA)
	b = put16(b, ClassIN)
	b = put32(b, 60)
	b = put16(b, 4)
	b = append(b, 10, 5, 0, 1)

	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Name != "foo.com" {
		t.Errorf("answers: %+v", m.Answers)
	}
	if m.Answers[0].Addr != netsim.MustParseAddr("10.5.0.1") {
		t.Errorf("addr: %v", m.Answers[0].Addr)
	}
}

func TestPointerLoopRejected(t *testing.T) {
	var b []byte
	b = put16(b, 9)
	b = put16(b, 0)
	b = put16(b, 1)
	b = put16(b, 0)
	b = put16(b, 0)
	b = put16(b, 0)
	// Name at 12 that points at itself... forward/self pointers are
	// rejected outright.
	b = append(b, 0xc0, 12)
	b = put16(b, TypeA)
	b = put16(b, ClassIN)
	if _, err := Parse(b); err == nil {
		t.Error("self-pointer accepted")
	}
}

func TestParseTruncated(t *testing.T) {
	q, _ := NewQuery(3, "x.y")
	for _, n := range []int{0, 5, 11, len(q) - 1} {
		if _, err := Parse(q[:n]); err == nil {
			t.Errorf("truncated at %d accepted", n)
		}
	}
}

func TestResolverZoneAndSynthesis(t *testing.T) {
	space := netsim.MustParsePrefix("10.5.0.0/16")
	r := NewResolver(space)
	r.Zone["known.example"] = netsim.MustParseAddr("10.5.9.9")

	if a, ok := r.Lookup("KNOWN.example."); !ok || a != netsim.MustParseAddr("10.5.9.9") {
		t.Errorf("zone lookup: %v %v", a, ok)
	}
	a1, ok := r.Lookup("unknown.evil.com")
	if !ok || !space.Contains(a1) {
		t.Errorf("synthesis: %v %v", a1, ok)
	}
	a2, _ := r.Lookup("unknown.evil.com")
	if a1 != a2 {
		t.Error("synthesis not deterministic")
	}
	b, _ := r.Lookup("other.evil.com")
	if b == a1 {
		t.Error("distinct names collided (unlucky but suspicious)")
	}
}

func TestResolverNXDomainWhenNotSynthesizing(t *testing.T) {
	r := NewResolver(netsim.MustParsePrefix("10.5.0.0/16"))
	r.Synthesize = false
	q, _ := NewQuery(5, "nope.example")
	resp, err := r.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Parse(resp)
	if m.RCode() != RCodeNXDomain || len(m.Answers) != 0 {
		t.Errorf("rcode=%d answers=%d", m.RCode(), len(m.Answers))
	}
}

func TestResolverServeEndToEnd(t *testing.T) {
	space := netsim.MustParsePrefix("10.5.0.0/16")
	r := NewResolver(space)
	q, _ := NewQuery(0xbeef, "stage2.evil.com")
	resp, err := r.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0xbeef || !m.Response() || m.RCode() != RCodeOK {
		t.Fatalf("header: %+v", m)
	}
	if len(m.Answers) != 1 || !space.Contains(m.Answers[0].Addr) {
		t.Errorf("answers: %+v", m.Answers)
	}
	if r.Queries != 1 {
		t.Errorf("Queries = %d", r.Queries)
	}
}

func TestResolverRejectsResponses(t *testing.T) {
	r := NewResolver(netsim.MustParsePrefix("10.5.0.0/16"))
	m := &Message{ID: 1, Flags: FlagQR, Questions: []Question{{Name: "x", Type: TypeA, Class: ClassIN}}}
	b, _ := m.Marshal()
	if _, err := r.Serve(b); err == nil {
		t.Error("resolver answered a response")
	}
	if _, err := r.Serve([]byte("garbage")); err == nil {
		t.Error("resolver answered garbage")
	}
}

func TestServePacket(t *testing.T) {
	r := NewResolver(netsim.MustParsePrefix("10.5.0.0/16"))
	q, _ := NewQuery(1, "x.example")
	pkt := netsim.UDPDatagram(netsim.MustParseAddr("10.5.1.1"), netsim.MustParseAddr("172.16.0.53"), 5353, 53, q)
	resp := r.ServePacket(pkt)
	if resp == nil {
		t.Fatal("no response packet")
	}
	if resp.Src != pkt.Dst || resp.Dst != pkt.Src || resp.SrcPort != 53 || resp.DstPort != 5353 {
		t.Errorf("response addressing: %s", resp)
	}
	if m, err := Parse(resp.Payload); err != nil || len(m.Answers) != 1 {
		t.Errorf("response payload: %v %v", m, err)
	}
	if r.ServePacket(netsim.TCPSyn(1, 2, 3, 53, 1)) != nil {
		t.Error("TCP packet answered")
	}
}
