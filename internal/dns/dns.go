// Package dns implements the small slice of the DNS protocol the
// honeyfarm's containment story needs, on real wire bytes: queries and
// responses with A records, label encoding with compression-pointer
// parsing, and a safe Resolver that answers every name with an address
// the operator controls.
//
// Potemkin's gateway must let captured malware resolve names (much
// malware does a lookup before its second-stage fetch) without letting
// it reach real infrastructure. The trick is to answer truthfully-shaped
// lies: the resolver maps every name into the monitored address space,
// so the follow-up connection lands on a honeyfarm VM and the next stage
// is captured.
package dns

import (
	"errors"
	"fmt"
	"strings"

	"potemkin/internal/netsim"
)

// Codec errors.
var (
	ErrTruncated = errors.New("dns: truncated message")
	ErrBadName   = errors.New("dns: malformed name")
	ErrPointer   = errors.New("dns: bad compression pointer")
)

// Record types and classes (the subset used).
const (
	TypeA   = 1
	ClassIN = 1
)

// Header flag bits (within the 16-bit flags field).
const (
	FlagQR = 1 << 15 // response
	FlagAA = 1 << 10 // authoritative
	FlagRD = 1 << 8  // recursion desired
	FlagRA = 1 << 7  // recursion available
)

// RCode values.
const (
	RCodeOK       = 0
	RCodeNXDomain = 3
)

// Question is one query entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Answer is one A-record answer.
type Answer struct {
	Name string
	TTL  uint32
	Addr netsim.Addr
}

// Message is a parsed DNS message (questions + A answers; other record
// types are skipped on parse).
type Message struct {
	ID        uint16
	Flags     uint16
	Questions []Question
	Answers   []Answer
}

// Response reports whether the message is a response.
func (m *Message) Response() bool { return m.Flags&FlagQR != 0 }

// RCode extracts the response code.
func (m *Message) RCode() int { return int(m.Flags & 0xf) }

// encodeName appends a DNS-encoded name (no compression on output).
func encodeName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, ErrBadName
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// decodeName reads a possibly-compressed name starting at off,
// returning the name and the offset just past it (in the uncompressed
// stream).
func decodeName(msg []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 63 {
			return "", 0, ErrPointer // pointer loop
		}
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		l := int(msg[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := (l&0x3f)<<8 | int(msg[off+1])
			if !jumped {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, ErrPointer // forward pointers are invalid
			}
			off = ptr
			jumped = true
		case l&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

func put16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	b := make([]byte, 0, 64)
	b = put16(b, m.ID)
	b = put16(b, m.Flags)
	b = put16(b, uint16(len(m.Questions)))
	b = put16(b, uint16(len(m.Answers)))
	b = put16(b, 0) // authority
	b = put16(b, 0) // additional
	var err error
	for _, q := range m.Questions {
		if b, err = encodeName(b, q.Name); err != nil {
			return nil, err
		}
		b = put16(b, q.Type)
		b = put16(b, q.Class)
	}
	for _, a := range m.Answers {
		if b, err = encodeName(b, a.Name); err != nil {
			return nil, err
		}
		b = put16(b, TypeA)
		b = put16(b, ClassIN)
		b = put32(b, a.TTL)
		b = put16(b, 4)
		o := a.Addr.Octets()
		b = append(b, o[0], o[1], o[2], o[3])
	}
	return b, nil
}

// Parse decodes a DNS message. Non-A answers are skipped.
func Parse(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncated
	}
	get16 := func(off int) uint16 { return uint16(b[off])<<8 | uint16(b[off+1]) }
	m := &Message{ID: get16(0), Flags: get16(2)}
	qd, an := int(get16(4)), int(get16(6))
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(b) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name: name, Type: get16(next), Class: get16(next + 2),
		})
		off = next + 4
	}
	for i := 0; i < an; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(b) {
			return nil, ErrTruncated
		}
		typ := get16(next)
		rdlen := int(get16(next + 8))
		rdata := next + 10
		if rdata+rdlen > len(b) {
			return nil, ErrTruncated
		}
		if typ == TypeA && rdlen == 4 {
			m.Answers = append(m.Answers, Answer{
				Name: name,
				TTL:  uint32(b[next+4])<<24 | uint32(b[next+5])<<16 | uint32(b[next+6])<<8 | uint32(b[next+7]),
				Addr: netsim.AddrFrom(b[rdata], b[rdata+1], b[rdata+2], b[rdata+3]),
			})
		}
		off = rdata + rdlen
	}
	return m, nil
}

// NewQuery builds an A query for name.
func NewQuery(id uint16, name string) ([]byte, error) {
	m := &Message{
		ID:        id,
		Flags:     FlagRD,
		Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
	}
	return m.Marshal()
}

// Resolver is the honeyfarm's safe DNS server: fixed zone entries plus
// a synthesis rule that maps every other name deterministically into
// Sinkhole — typically the monitored space itself, so follow-up
// connections are captured by fresh honeypot VMs.
type Resolver struct {
	// Zone holds explicit name -> address entries (names lower-case,
	// no trailing dot).
	Zone map[string]netsim.Addr
	// Sinkhole receives synthesized answers for names not in Zone.
	// A zero prefix (Bits 0 and Base 0) with Synthesize false returns
	// NXDOMAIN instead.
	Sinkhole   netsim.Prefix
	Synthesize bool
	TTL        uint32

	// Queries counts lookups served.
	Queries uint64
}

// NewResolver returns a resolver that sinkholes every unknown name into
// space.
func NewResolver(space netsim.Prefix) *Resolver {
	return &Resolver{
		Zone:       make(map[string]netsim.Addr),
		Sinkhole:   space,
		Synthesize: true,
		TTL:        60,
	}
}

// Lookup resolves one name.
func (r *Resolver) Lookup(name string) (netsim.Addr, bool) {
	key := strings.ToLower(strings.TrimSuffix(name, "."))
	if a, ok := r.Zone[key]; ok {
		return a, true
	}
	if !r.Synthesize {
		return 0, false
	}
	// Deterministic synthesis: same name, same sinkhole address.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return r.Sinkhole.Nth(h % r.Sinkhole.Size()), true
}

// Serve answers a raw query message, returning the raw response.
func (r *Resolver) Serve(query []byte) ([]byte, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Response() || len(q.Questions) == 0 {
		return nil, fmt.Errorf("dns: not a query")
	}
	r.Queries++
	resp := &Message{
		ID:        q.ID,
		Flags:     FlagQR | FlagAA | FlagRA | (q.Flags & FlagRD),
		Questions: q.Questions,
	}
	for _, question := range q.Questions {
		if question.Type != TypeA || question.Class != ClassIN {
			continue
		}
		if addr, ok := r.Lookup(question.Name); ok {
			resp.Answers = append(resp.Answers, Answer{Name: question.Name, TTL: r.TTL, Addr: addr})
		}
	}
	if len(resp.Answers) == 0 {
		resp.Flags |= RCodeNXDomain
	}
	return resp.Marshal()
}

// ServePacket answers a UDP/53 packet, returning the response packet
// (source and destination swapped). Non-DNS payloads return nil.
func (r *Resolver) ServePacket(pkt *netsim.Packet) *netsim.Packet {
	if pkt.Proto != netsim.ProtoUDP {
		return nil
	}
	respPayload, err := r.Serve(pkt.Payload)
	if err != nil {
		return nil
	}
	return netsim.UDPDatagram(pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, respPayload)
}
