// Package metrics provides the measurement plumbing shared by the
// honeyfarm and the benchmark harness: counters, log-bucketed histograms
// with percentile queries, time series, and fixed-width table / CSV
// rendering for the experiment reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records a distribution of non-negative values in logarithmic
// buckets (16 sub-buckets per octave), giving percentile queries with
// bounded relative error (~±3%) in O(1) memory regardless of sample
// count. Exact min, max, sum, and count are tracked on the side.
type Histogram struct {
	buckets [64 * subBuckets]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

const subBuckets = 16

// bucketIndex maps v (>= 0) to its bucket.
func bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	exp := math.Floor(math.Log2(v))
	base := math.Exp2(exp)
	sub := int((v - base) / base * subBuckets)
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	idx := int(exp)*subBuckets + sub
	if idx >= len(Histogram{}.buckets) {
		idx = len(Histogram{}.buckets) - 1
	}
	return idx
}

// bucketValue returns a representative (geometric midpoint) value for a
// bucket index.
func bucketValue(idx int) float64 {
	if idx == 0 {
		return 0.5
	}
	exp := idx / subBuckets
	sub := idx % subBuckets
	base := math.Exp2(float64(exp))
	lo := base + base*float64(sub)/subBuckets
	hi := base + base*float64(sub+1)/subBuckets
	return (lo + hi) / 2
}

// Observe records one sample. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the approximate q-quantile (q in [0, 1]); exact min
// and max are returned at the extremes.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary formats count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Series is an append-only time series of (time-seconds, value) samples.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample. Times should be non-decreasing.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Max returns the largest value, or 0 if empty.
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.V {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// Quantile returns the exact q-quantile of the values (nearest-rank).
func (s *Series) Quantile(q float64) float64 {
	if len(s.V) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.V...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Downsample returns a copy with at most n points, keeping every k'th
// sample. Used to keep experiment CSV outputs readable.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || len(s.T) <= n {
		c := &Series{Name: s.Name}
		c.T = append(c.T, s.T...)
		c.V = append(c.V, s.V...)
		return c
	}
	out := &Series{Name: s.Name}
	step := float64(len(s.T)) / float64(n)
	for i := 0; i < n; i++ {
		j := int(float64(i) * step)
		out.Add(s.T[j], s.V[j])
	}
	return out
}
