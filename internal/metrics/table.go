package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows for an experiment report and renders them as an
// aligned text table (for terminals) or CSV (for plotting). All benchtab
// experiment outputs go through Table so the harness's "same rows the
// paper reports" promise has one implementation.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values get
// a compact fixed-point rendering.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i as formatted cells.
func (t *Table) Row(i int) []string { return t.rows[i] }

func formatFloat(f float64) string {
	switch {
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return fmt.Sprintf("%.0f", f)
	case f >= 1000 || f <= -1000:
		return fmt.Sprintf("%.0f", f)
	case f >= 10 || f <= -10:
		return fmt.Sprintf("%.1f", f)
	default:
		return fmt.Sprintf("%.3f", f)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	header := strings.TrimRight(sb.String(), " ")
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// WriteCSV writes the table as RFC 4180-ish CSV (quoting cells containing
// commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// SeriesTable converts one or more series sharing a time axis into a
// table with a "t" column followed by one column per series. Series are
// sampled at the union of their time points; missing values render empty.
func SeriesTable(title string, series ...*Series) *Table {
	cols := []string{"t_seconds"}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	tab := NewTable(title, cols...)

	seen := map[float64]bool{}
	var times []float64
	for _, s := range series {
		for _, ti := range s.T {
			if !seen[ti] {
				seen[ti] = true
				times = append(times, ti)
			}
		}
	}
	sort.Float64s(times)

	idx := make([]int, len(series))
	for _, ti := range times {
		row := make([]any, 0, len(series)+1)
		row = append(row, ti)
		for si, s := range series {
			val := ""
			for idx[si] < len(s.T) && s.T[idx[si]] <= ti {
				if s.T[idx[si]] == ti {
					val = formatFloat(s.V[idx[si]])
				}
				idx[si]++
			}
			row = append(row, val)
		}
		tab.AddRow(row...)
	}
	return tab
}
