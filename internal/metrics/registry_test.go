package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsTelemetryOff: a nil registry hands out nil
// instruments whose every method is a no-op — the telemetry-off path
// must never allocate, panic, or record.
func TestNilRegistryIsTelemetryOff(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Hist("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(-3)
	h.Observe(1.5)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Error("nil instruments recorded values")
	}
	if pts := r.Snapshot(); pts != nil {
		t.Errorf("nil registry snapshot = %v", pts)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry WriteProm: err=%v len=%d", err, buf.Len())
	}
}

// TestRegistryGetOrCreate: the same name returns the same instrument,
// so call sites resolved at construction all feed one series.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Error("aliased counter did not share state")
	}
	if r.Hist("h") != r.Hist("h") {
		t.Error("same name returned distinct hists")
	}
}

// TestSnapshotDeterministicOrder: snapshots are sorted by name then
// kind regardless of registration order, so two same-seed runs emit
// byte-identical snapshots.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Hist("zeta").Observe(1)
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(-7)
	r.Counter("beta").Inc()
	pts := r.Snapshot()
	var names []string
	for _, p := range pts {
		names = append(names, p.Name)
	}
	want := []string{"alpha", "beta", "mid", "zeta"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("snapshot order = %v, want %v", names, want)
	}
	if pts[2].Kind != "gauge" || pts[2].Value != -7 {
		t.Errorf("gauge point = %+v", pts[2])
	}
}

// TestHistPointRoundTrip: a histogram's snapshot Point reproduces
// count, sum, min, max and a sane quantile from the sparse buckets.
func TestHistPointRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("lat_ms")
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Observe(v)
	}
	h.Observe(-5) // clamps to 0
	pts := r.Snapshot()
	p := pts[0]
	if p.Count != 6 {
		t.Fatalf("count = %d", p.Count)
	}
	if got := p.Sum(); math.Abs(got-115) > 0.001 {
		t.Errorf("sum = %v", got)
	}
	if p.Min != 0 || p.Max != 100 {
		t.Errorf("min/max = %v/%v", p.Min, p.Max)
	}
	if q := p.Quantile(0.5); q < 1 || q > 8 {
		t.Errorf("p50 = %v", q)
	}
	if q := p.Quantile(1); q != 100 {
		t.Errorf("p100 = %v, want max", q)
	}
	if len(p.Buckets) == 0 {
		t.Error("no sparse buckets in snapshot")
	}
}

// TestConcurrentUpdatesOrderIndependent: N goroutines hammering the
// same instruments must land on the exact deterministic totals —
// integer atomics and micro-unit sums make the result independent of
// interleaving. Run under -race this also proves scrape safety.
func TestConcurrentUpdatesOrderIndependent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	h := r.Hist("ms")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%10) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if c.Load() != workers*per {
		t.Errorf("counter = %d, want %d", c.Load(), workers*per)
	}
	pts := r.Snapshot()
	var hp Point
	for _, p := range pts {
		if p.Name == "ms" {
			hp = p
		}
	}
	if hp.Count != workers*per {
		t.Errorf("hist count = %d", hp.Count)
	}
	// sum = workers * sum_{i=0..per-1} (i%10 + 0.5): exact in micro-units.
	wantSum := float64(workers) * float64(per) * 5.0
	if math.Abs(hp.Sum()-wantSum) > 1e-6 {
		t.Errorf("hist sum = %v, want %v", hp.Sum(), wantSum)
	}
}

// TestMergePoints: counters add, gauges add, histograms union — and
// merging is associative enough that coordinator aggregation equals
// running the whole workload in one registry.
func TestMergePoints(t *testing.T) {
	mk := func(n uint64) []Point {
		r := NewRegistry()
		r.Counter("reqs").Add(n)
		r.Gauge("live").Set(int64(n))
		h := r.Hist("ms")
		for i := uint64(0); i < n; i++ {
			h.Observe(float64(i))
		}
		return r.Snapshot()
	}
	merged := MergePoints(mk(3), mk(5))
	whole := mk(8)
	// Counter totals and hist counts/sums must match the single-registry
	// run exactly (bucket layouts differ only if inputs did).
	get := func(pts []Point, name string) Point {
		for _, p := range pts {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("point %q missing", name)
		return Point{}
	}
	if got, want := get(merged, "reqs").Value, get(whole, "reqs").Value; got != want {
		t.Errorf("merged counter = %d, want %d", got, want)
	}
	if got, want := get(merged, "live").Value, get(whole, "live").Value; got != want {
		t.Errorf("merged gauge = %d, want %d", got, want)
	}
	mh := get(merged, "ms")
	if mh.Count != 8 {
		t.Errorf("merged hist count = %d", mh.Count)
	}
	if mh.Min != 0 || mh.Max != 4 {
		t.Errorf("merged hist min/max = %v/%v", mh.Min, mh.Max)
	}
	// Disjoint names pass through; result stays sorted.
	r2 := NewRegistry()
	r2.Counter("zz_only").Inc()
	out := MergePoints(mk(1), r2.Snapshot())
	if out[len(out)-1].Name != "zz_only" {
		t.Errorf("disjoint merge order: %v", out)
	}
	// Inputs are not mutated.
	a := mk(2)
	before := a[0].Value
	MergePoints(a, mk(2))
	if a[0].Value != before {
		t.Error("MergePoints mutated dst")
	}
}

// TestWriteProm: the text exposition is Prometheus 0.0.4-parseable —
// every series line is "name value" or "name{quantile=..} value", with
// a TYPE comment per metric.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(42)
	r.Gauge("live").Set(-3)
	h := r.Hist("ms")
	h.Observe(1)
	h.Observe(3)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE live gauge\nlive -3\n",
		"# TYPE reqs_total counter\nreqs_total 42\n",
		"# TYPE ms summary\n",
		`ms{quantile="0.5"}`,
		`ms{quantile="0.99"}`,
		"ms_sum 4\n",
		"ms_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Structural check: every non-comment line is exactly two fields.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if n := len(strings.Fields(line)); n != 2 {
			t.Errorf("malformed series line (%d fields): %q", n, line)
		}
	}
}
