package metrics

// Epoch profiler: per-epoch phase timings for the conservative parallel
// engine (and the cluster coordinator, which runs the same barrier
// protocol over TCP). Each epoch yields one EpochSample — how long each
// shard spent advancing, how long it then idled at the barrier waiting
// for the slowest shard, and what the single-threaded outbox exchange
// cost — feeding registry histograms for live /metrics scraping plus an
// optional JSONL timeline for offline analysis (`tracetool -epochs`).
//
// All figures are wall-clock and observability-only: nothing recorded
// here ever feeds back into simulation state, so a profiled run stays
// byte-identical to an unprofiled one.

import (
	"bufio"
	"encoding/json"
	"io"
)

// EpochSample is one epoch's phase timings. StartNS/EndNS are the
// epoch's *simulated* time bounds; every other field is wall-clock.
// BarrierWaitNS[i] is how long shard i sat idle at the barrier after
// finishing its own advance (max advance minus own advance). For the
// cluster coordinator, "shards" are workers and ExchangeBytes counts
// encoded epoch-input frame bytes.
type EpochSample struct {
	Seq           uint64  `json:"seq"`
	StartNS       int64   `json:"start_ns"`
	EndNS         int64   `json:"end_ns"`
	WallNS        int64   `json:"wall_ns"`
	ExchangeNS    int64   `json:"exchange_ns"`
	ExchangeMsgs  int     `json:"exchange_msgs,omitempty"`
	ExchangeBytes int64   `json:"exchange_bytes,omitempty"`
	AdvanceNS     []int64 `json:"advance_ns,omitempty"`
	BarrierWaitNS []int64 `json:"barrier_wait_ns,omitempty"`
	SlowestShard  int     `json:"slowest_shard"`
	// IngressFrames counts externally sourced records (replay or live
	// wire) scheduled into this epoch at its opening barrier — the
	// epoch-aligned ingress the engine quantizes wire arrivals onto.
	IngressFrames int `json:"ingress_frames,omitempty"`
}

// EpochProfiler accumulates epoch samples into histograms (milliseconds)
// and optionally streams each sample as one JSONL line. Record is meant
// to be called from the single driver goroutine that owns the epoch
// loop; the histograms may be scraped concurrently. Nil-safe.
type EpochProfiler struct {
	Advance     *Hist // per-shard advance wall ms
	BarrierWait *Hist // per-shard barrier idle ms
	Exchange    *Hist // outbox exchange wall ms
	Flush       *Hist // sink flush wall ms (recorded at Close)
	Ingress     *Hist // ingress records scheduled per epoch
	Epochs      *Counter
	Msgs        *Counter
	Bytes       *Counter
	Frames      *Counter // total ingress records

	w    *bufio.Writer
	err  error
	seen uint64
}

// NewEpochProfiler builds a profiler whose histograms live in reg under
// the epoch_* names (a private registry is used when reg is nil, so the
// profiler works standalone). timeline, when non-nil, receives one JSON
// line per epoch; call Flush before reading it.
func NewEpochProfiler(reg *Registry, timeline io.Writer) *EpochProfiler {
	if reg == nil {
		reg = NewRegistry()
	}
	p := &EpochProfiler{
		Advance:     reg.Hist("epoch_advance_ms"),
		BarrierWait: reg.Hist("epoch_barrier_wait_ms"),
		Exchange:    reg.Hist("epoch_exchange_ms"),
		Flush:       reg.Hist("epoch_sink_flush_ms"),
		Ingress:     reg.Hist("epoch_ingress_frames"),
		Epochs:      reg.Counter("epochs_total"),
		Msgs:        reg.Counter("epoch_exchange_msgs_total"),
		Bytes:       reg.Counter("epoch_exchange_bytes_total"),
		Frames:      reg.Counter("epoch_ingress_frames_total"),
	}
	if timeline != nil {
		p.w = bufio.NewWriter(timeline)
	}
	return p
}

// Record folds one epoch into the histograms and appends it to the
// timeline. If s.Seq is zero a sequence number is assigned. Nil-safe.
func (p *EpochProfiler) Record(s EpochSample) {
	if p == nil {
		return
	}
	p.seen++
	if s.Seq == 0 {
		s.Seq = p.seen
	}
	p.Epochs.Inc()
	p.Msgs.Add(uint64(s.ExchangeMsgs))
	p.Bytes.Add(uint64(s.ExchangeBytes))
	p.Frames.Add(uint64(s.IngressFrames))
	p.Exchange.Observe(float64(s.ExchangeNS) / 1e6)
	p.Ingress.Observe(float64(s.IngressFrames))
	for _, ns := range s.AdvanceNS {
		p.Advance.Observe(float64(ns) / 1e6)
	}
	for _, ns := range s.BarrierWaitNS {
		p.BarrierWait.Observe(float64(ns) / 1e6)
	}
	if p.w != nil && p.err == nil {
		b, err := json.Marshal(s)
		if err == nil {
			b = append(b, '\n')
			_, err = p.w.Write(b)
		}
		p.err = err
	}
}

// RecordFlush records the sink-flush phase (event/trace/Chrome buffers
// written in shard order at engine Close). Nil-safe.
func (p *EpochProfiler) RecordFlush(ns int64) {
	if p == nil {
		return
	}
	p.Flush.Observe(float64(ns) / 1e6)
}

// FlushTimeline flushes the buffered JSONL timeline and returns the
// first write error encountered, if any. Nil-safe.
func (p *EpochProfiler) FlushTimeline() error {
	if p == nil {
		return nil
	}
	if p.w != nil {
		if err := p.w.Flush(); err != nil && p.err == nil {
			p.err = err
		}
	}
	return p.err
}

// ReadEpochs parses a JSONL epoch timeline.
func ReadEpochs(r io.Reader) ([]EpochSample, error) {
	var out []EpochSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s EpochSample
		if err := json.Unmarshal(line, &s); err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

// EpochAgg is an offline aggregation of an epoch timeline, built on the
// single-threaded Histogram type.
type EpochAgg struct {
	Advance     Histogram
	BarrierWait Histogram
	Exchange    Histogram
	Wall        Histogram
	Ingress     Histogram
	TotalMsgs   int64
	TotalBytes  int64
	TotalFrames int64
}

// AggregateEpochs folds samples into per-phase histograms (ms).
func AggregateEpochs(samples []EpochSample) *EpochAgg {
	a := &EpochAgg{}
	for _, s := range samples {
		a.Wall.Observe(float64(s.WallNS) / 1e6)
		a.Exchange.Observe(float64(s.ExchangeNS) / 1e6)
		for _, ns := range s.AdvanceNS {
			a.Advance.Observe(float64(ns) / 1e6)
		}
		for _, ns := range s.BarrierWaitNS {
			a.BarrierWait.Observe(float64(ns) / 1e6)
		}
		a.Ingress.Observe(float64(s.IngressFrames))
		a.TotalMsgs += int64(s.ExchangeMsgs)
		a.TotalBytes += s.ExchangeBytes
		a.TotalFrames += int64(s.IngressFrames)
	}
	return a
}
