package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func sample(seq uint64, adv ...int64) EpochSample {
	var max int64
	for _, a := range adv {
		if a > max {
			max = a
		}
	}
	waits := make([]int64, len(adv))
	slowest := 0
	for i, a := range adv {
		waits[i] = max - a
		if a == max {
			slowest = i
		}
	}
	return EpochSample{
		Seq: seq, StartNS: int64(seq-1) * 1e6, EndNS: int64(seq) * 1e6,
		WallNS: max + 50_000, ExchangeNS: 50_000,
		ExchangeMsgs: 3, ExchangeBytes: 128,
		AdvanceNS: adv, BarrierWaitNS: waits, SlowestShard: slowest,
	}
}

// TestEpochProfilerRoundTrip: Record streams JSONL that ReadEpochs
// parses back verbatim, and the registry histograms see every phase.
func TestEpochProfilerRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var tl bytes.Buffer
	p := NewEpochProfiler(reg, &tl)
	in := []EpochSample{
		sample(1, 2_000_000, 3_000_000, 1_000_000, 2_500_000),
		sample(2, 4_000_000, 1_000_000, 1_500_000, 900_000),
	}
	for _, s := range in {
		p.Record(s)
	}
	p.RecordFlush(7_000_000)
	if err := p.FlushTimeline(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadEpochs(&tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d samples", len(out))
	}
	if out[0].Seq != 1 || out[1].SlowestShard != 0 {
		t.Errorf("samples: %+v", out)
	}
	if len(out[0].AdvanceNS) != 4 || len(out[0].BarrierWaitNS) != 4 {
		t.Errorf("per-shard arrays: %+v", out[0])
	}

	pts := reg.Snapshot()
	byName := map[string]Point{}
	for _, pt := range pts {
		byName[pt.Name] = pt
	}
	if byName["epochs_total"].Value != 2 {
		t.Errorf("epochs_total = %d", byName["epochs_total"].Value)
	}
	if byName["epoch_exchange_msgs_total"].Value != 6 {
		t.Errorf("msgs = %d", byName["epoch_exchange_msgs_total"].Value)
	}
	if byName["epoch_exchange_bytes_total"].Value != 256 {
		t.Errorf("bytes = %d", byName["epoch_exchange_bytes_total"].Value)
	}
	if byName["epoch_barrier_wait_ms"].Count != 8 {
		t.Errorf("barrier wait observations = %d", byName["epoch_barrier_wait_ms"].Count)
	}
	if byName["epoch_advance_ms"].Count != 8 {
		t.Errorf("advance observations = %d", byName["epoch_advance_ms"].Count)
	}
	if byName["epoch_sink_flush_ms"].Count != 1 {
		t.Errorf("flush observations = %d", byName["epoch_sink_flush_ms"].Count)
	}
}

// TestEpochProfilerNilSafe: a nil profiler (telemetry off) absorbs
// every call.
func TestEpochProfilerNilSafe(t *testing.T) {
	var p *EpochProfiler
	p.Record(sample(1, 1000))
	p.RecordFlush(5)
	if err := p.FlushTimeline(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochProfilerAssignsSeq: zero-seq samples get 1-based sequence
// numbers in record order.
func TestEpochProfilerAssignsSeq(t *testing.T) {
	var tl bytes.Buffer
	p := NewEpochProfiler(nil, &tl)
	s := sample(5, 1000)
	s.Seq = 0
	p.Record(s)
	p.Record(s)
	p.FlushTimeline()
	out, err := ReadEpochs(&tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Seq != 1 || out[1].Seq != 2 {
		t.Errorf("assigned seqs: %+v", out)
	}
}

// TestAggregateEpochs: the offline aggregation reproduces totals and
// per-phase distributions from a timeline.
func TestAggregateEpochs(t *testing.T) {
	samples := []EpochSample{
		sample(1, 2_000_000, 3_000_000),
		sample(2, 1_000_000, 1_000_000),
		sample(3, 5_000_000, 500_000),
	}
	a := AggregateEpochs(samples)
	if a.TotalMsgs != 9 || a.TotalBytes != 384 {
		t.Errorf("totals: msgs=%d bytes=%d", a.TotalMsgs, a.TotalBytes)
	}
	if a.Wall.Count() != 3 || a.Exchange.Count() != 3 {
		t.Errorf("wall/exchange counts: %d/%d", a.Wall.Count(), a.Exchange.Count())
	}
	if a.Advance.Count() != 6 || a.BarrierWait.Count() != 6 {
		t.Errorf("per-shard counts: %d/%d", a.Advance.Count(), a.BarrierWait.Count())
	}
	if a.BarrierWait.Max() < 4.3 || a.BarrierWait.Max() > 4.7 {
		t.Errorf("barrier wait max = %v ms, want ~4.5", a.BarrierWait.Max())
	}
	if !strings.Contains(a.BarrierWait.Summary(), "p99=") {
		t.Errorf("summary lacks p99: %s", a.BarrierWait.Summary())
	}
}

// TestReadEpochsBadLine: a corrupt line surfaces as an error with the
// good prefix preserved.
func TestReadEpochsBadLine(t *testing.T) {
	in := strings.NewReader(`{"seq":1,"start_ns":0,"end_ns":1,"wall_ns":5,"exchange_ns":1,"slowest_shard":0}` + "\n{broken\n")
	out, err := ReadEpochs(in)
	if err == nil {
		t.Fatal("corrupt line accepted")
	}
	if len(out) != 1 || out[0].Seq != 1 {
		t.Errorf("good prefix lost: %+v", out)
	}
}
