package metrics

// Live telemetry registry: named counters, gauges, and histograms with
// an atomic, allocation-free hot path. Unlike Histogram/Series (offline
// experiment aggregation, single-threaded), the registry instruments
// the simulator itself and is scraped concurrently by HTTP handlers
// while shard goroutines are updating it, so every instrument is built
// on sync/atomic and is safe to read at any time without touching sim
// state.
//
// Determinism contract: the registry is observability-only. Counter and
// gauge updates are integer atomic adds and histogram sums are kept in
// integer micro-units, so the final values are independent of the order
// in which concurrent shard goroutines applied them — two same-seed
// runs expose identical snapshots even though the interleavings differ.
// Wall-clock timings recorded through EpochProfiler are the one
// explicitly nondeterministic family; everything else is a pure
// function of the simulated run.
//
// Instrument handles are resolved once at construction (Registry is
// nil-safe: a nil *Registry hands out nil instruments whose methods are
// no-ops), so a telemetry-off run pays one nil check per site.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready; all methods are safe on a nil receiver (no-op / zero).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value. The zero value is ready; all
// methods are safe on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Hist is the registry's concurrency-safe histogram: the same
// log-bucket layout as Histogram (16 sub-buckets per octave, ~±3%
// relative error) with atomic bucket counts. The running sum is kept in
// integer micro-units so that — unlike a floating-point accumulator —
// the total is exactly independent of the order concurrent observers
// interleaved in. Min/max are monotone CAS loops (order-independent by
// construction). All methods are nil-safe.
type Hist struct {
	count    atomic.Uint64
	sumMicro atomic.Int64
	minBits  atomic.Uint64 // float64 bits; initialized to +Inf by newHist
	maxBits  atomic.Uint64 // float64 bits; initialized to -Inf by newHist
	buckets  [64 * subBuckets]atomic.Uint64
}

func newHist() *Hist {
	h := &Hist{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample. Negative values are clamped to zero.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(int64(math.Round(v * 1e6)))
	for {
		o := h.minBits.Load()
		if math.Float64frombits(o) <= v || h.minBits.CompareAndSwap(o, math.Float64bits(v)) {
			break
		}
	}
	for {
		o := h.maxBits.Load()
		if math.Float64frombits(o) >= v || h.maxBits.CompareAndSwap(o, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of samples (0 on nil).
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one non-empty histogram bucket in a snapshot Point.
type Bucket struct {
	Idx int    `json:"i"`
	N   uint64 `json:"n"`
}

// Point is one instrument's state in a deterministic snapshot. Counter
// and gauge points carry Value; histogram points carry Count, SumMicro,
// Min, Max, and the sparse ascending-index bucket list.
type Point struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"` // "counter" | "gauge" | "hist"
	Value    int64    `json:"value,omitempty"`
	Count    uint64   `json:"count,omitempty"`
	SumMicro int64    `json:"sum_micro,omitempty"`
	Min      float64  `json:"min,omitempty"`
	Max      float64  `json:"max,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// Sum returns a histogram point's sample sum in original units.
func (p Point) Sum() float64 { return float64(p.SumMicro) / 1e6 }

// Mean returns a histogram point's sample mean (0 when empty).
func (p Point) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum() / float64(p.Count)
}

// Quantile returns the approximate q-quantile (0 <= q <= 1) of a
// histogram point from its buckets, 0 when empty. Like
// Histogram.Quantile, results are clamped to the exact [Min, Max] so
// bucket rounding never reports a value outside the observed range.
func (p Point) Quantile(q float64) float64 {
	if p.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(p.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, b := range p.Buckets {
		seen += b.N
		if seen >= rank {
			v := bucketValue(b.Idx)
			if v < p.Min {
				v = p.Min
			}
			if v > p.Max {
				v = p.Max
			}
			return v
		}
	}
	return p.Max
}

// Registry is a namespace of instruments. Get-or-create accessors are
// mutex-guarded (call them at construction time, not on hot paths);
// the instruments themselves are lock-free. A nil *Registry is a valid
// "telemetry off" registry: it hands out nil instruments and empty
// snapshots.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHist()
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every instrument's current state sorted by name
// (counters, then gauges, then histograms on a name tie — names are
// expected to be unique across kinds). Safe to call concurrently with
// updates; each instrument is read atomically field by field, so a
// snapshot taken mid-run is a consistent-enough live view, and a
// snapshot taken when no updaters are running is exact. Nil-safe.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pts := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		pts = append(pts, Point{Name: name, Kind: "counter", Value: int64(c.Load())})
	}
	for name, g := range r.gauges {
		pts = append(pts, Point{Name: name, Kind: "gauge", Value: g.Load()})
	}
	for name, h := range r.hists {
		p := Point{Name: name, Kind: "hist", Count: h.count.Load(), SumMicro: h.sumMicro.Load()}
		if p.Count > 0 {
			p.Min = math.Float64frombits(h.minBits.Load())
			p.Max = math.Float64frombits(h.maxBits.Load())
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				p.Buckets = append(p.Buckets, Bucket{Idx: i, N: n})
			}
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return pts[i].Kind < pts[j].Kind
	})
	return pts
}

// MergePoints folds src into dst by (name, kind): counters and gauges
// add, histograms add counts/sums, widen min/max, and union-add
// buckets. Both inputs must be Snapshot-style sorted; the result is
// sorted the same way. Neither input is modified.
func MergePoints(dst, src []Point) []Point {
	byKey := make(map[[2]string]int, len(dst))
	out := make([]Point, len(dst))
	copy(out, dst)
	for i, p := range out {
		byKey[[2]string{p.Name, p.Kind}] = i
	}
	for _, p := range src {
		i, ok := byKey[[2]string{p.Name, p.Kind}]
		if !ok {
			byKey[[2]string{p.Name, p.Kind}] = len(out)
			out = append(out, p)
			continue
		}
		d := &out[i]
		switch p.Kind {
		case "counter", "gauge":
			d.Value += p.Value
		case "hist":
			if d.Count == 0 {
				d.Min, d.Max = p.Min, p.Max
			} else if p.Count > 0 {
				d.Min = math.Min(d.Min, p.Min)
				d.Max = math.Max(d.Max, p.Max)
			}
			d.Count += p.Count
			d.SumMicro += p.SumMicro
			d.Buckets = mergeBuckets(d.Buckets, p.Buckets)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func mergeBuckets(a, b []Bucket) []Bucket {
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Idx < b[j].Idx:
			out = append(out, a[i])
			i++
		case a[i].Idx > b[j].Idx:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Bucket{Idx: a[i].Idx, N: a[i].N + b[j].N})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// WriteProm renders points in the Prometheus text exposition format
// (version 0.0.4, stdlib only). Counters and gauges map directly;
// histograms are rendered as summaries with 0.5/0.9/0.99 quantile
// series plus _sum and _count.
func WriteProm(w io.Writer, pts []Point) error {
	for _, p := range pts {
		var err error
		switch p.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p.Name, p.Name, p.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p.Name, p.Name, p.Value)
		case "hist":
			_, err = fmt.Fprintf(w, "# TYPE %s summary\n", p.Name)
			if err == nil {
				for _, q := range [...]float64{0.5, 0.9, 0.99} {
					if _, err = fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", p.Name, q, p.Quantile(q)); err != nil {
						break
					}
				}
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", p.Name, p.Sum(), p.Name, p.Count)
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteProm renders the registry's live state in Prometheus text
// format. Safe to call from any goroutine; nil-safe (writes nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	return WriteProm(w, r.Snapshot())
}
