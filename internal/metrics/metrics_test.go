package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"potemkin/internal/sim"
)

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	r := sim.NewRNG(1)
	var exact []float64
	for i := 0; i < 50000; i++ {
		v := r.Exp(1000)
		exact = append(exact, v)
		h.Observe(v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		want := exact[int(q*float64(len(exact)))]
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q%.2f = %v, want ~%v (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(1e6)
	if h.Quantile(0) != 10 {
		t.Errorf("q0 = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 1e6 {
		t.Errorf("q1 = %v", h.Quantile(1))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative not clamped: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 90 || med > 110 {
		t.Errorf("median = %v, want ~100", med)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Observe(7)
	a.Merge(&b) // no-op
	if a.Count() != 1 {
		t.Errorf("Count = %d", a.Count())
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Min() != 7 {
		t.Errorf("merge into empty: count=%d min=%v", b.Count(), b.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset did not clear")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotone(t *testing.T) {
	err := quick.Check(func(vals []float64) bool {
		var h Histogram
		for _, v := range vals {
			h.Observe(math.Abs(v))
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 30)
	s.Add(2, 20)
	if s.Len() != 3 || s.Last() != 20 || s.Max() != 30 || s.Mean() != 20 {
		t.Errorf("Len=%d Last=%v Max=%v Mean=%v", s.Len(), s.Last(), s.Max(), s.Mean())
	}
	if s.Quantile(0.5) != 20 {
		t.Errorf("median = %v", s.Quantile(0.5))
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Quantile(0.9) != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(i*2))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.T[0] != 0 {
		t.Errorf("first t = %v", d.T[0])
	}
	small := s.Downsample(5000)
	if small.Len() != 1000 {
		t.Errorf("no-op downsample changed length: %d", small.Len())
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "count", "ratio")
	tab.AddRow("alpha", 10, 0.5)
	tab.AddRow("betabetabeta", 20000, 1234.5678)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "betabetabeta") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "0.500") {
		t.Errorf("float formatting: %s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("x", "a", "b")
	tab.AddRow("has,comma", `has"quote`)
	tab.AddRow(1, 2)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n1,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Name: "live"}
	a.Add(0, 1)
	a.Add(2, 3)
	b := &Series{Name: "peak"}
	b.Add(0, 5)
	b.Add(1, 6)
	tab := SeriesTable("joined", a, b)
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d\n%s", tab.NumRows(), tab)
	}
	// t=1 has no value for "live".
	row := tab.Row(1)
	if row[0] != "1" || row[1] != "" || row[2] != "6" {
		t.Errorf("row 1 = %v", row)
	}
}

// Property: merging histograms built from any split of a value set is
// indistinguishable from observing the whole set into one histogram —
// same count, sum, min, max, and every quantile. This is the contract
// Snapshot() relies on when it merges per-server clone histograms.
func TestHistogramMergeEqualsUnionProperty(t *testing.T) {
	rng := sim.NewKernel(99).Stream("merge-prop")
	for iter := 0; iter < 200; iter++ {
		n := int(rng.Uint64n(200)) + 1
		cut := int(rng.Uint64n(uint64(n) + 1))
		var a, b, union Histogram
		for i := 0; i < n; i++ {
			// Span many octaves, including zero and sub-1 values.
			v := rng.Float64() * math.Pow(10, float64(rng.Uint64n(7))-2)
			union.Observe(v)
			if i < cut {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		a.Merge(&b)
		// Sum is compared with a relative tolerance: float addition is
		// not associative, and the union observes in a different order.
		sumClose := math.Abs(a.Sum()-union.Sum()) <= 1e-12*math.Abs(union.Sum())
		if a.Count() != union.Count() || !sumClose ||
			a.Min() != union.Min() || a.Max() != union.Max() {
			t.Fatalf("iter %d (n=%d cut=%d): merged count/sum/min/max %d/%v/%v/%v, union %d/%v/%v/%v",
				iter, n, cut, a.Count(), a.Sum(), a.Min(), a.Max(),
				union.Count(), union.Sum(), union.Min(), union.Max())
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if got, want := a.Quantile(q), union.Quantile(q); got != want {
				t.Fatalf("iter %d: Quantile(%.2f) = %v after merge, %v for union", iter, q, got, want)
			}
		}
	}
}
