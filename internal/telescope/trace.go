// Package telescope is the traffic substrate standing in for the paper's
// UCSD network-telescope feed: a generator that synthesizes background
// radiation with the statistical structure that matters to honeyfarm
// multiplexing (heavy-tailed per-address popularity, scanner sweep
// sessions, Poisson background), a compact binary trace format for
// repeatable experiments, and a replayer that injects a trace into the
// gateway over the sim kernel.
package telescope

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Record is one captured/synthesized packet arrival. Payload carries
// actual content when the producer has it (scenario exploit steps need
// the signature bytes to reach the guest); most telescope records carry
// only PayLen, the snap-length-zero convention of the original feed.
type Record struct {
	At      sim.Time
	Src     netsim.Addr
	Dst     netsim.Addr
	Proto   netsim.Proto
	SrcPort uint16
	DstPort uint16
	Flags   byte // TCP flags
	PayLen  uint16
	Payload []byte // optional content; when set, len(Payload) == PayLen
}

// Packet materializes the record as a wire-ready packet. When the
// record carries content the packet gets a copy of it; otherwise
// payload bytes are zero-filled to PayLen (telescope traces carry
// sizes, not content).
func (r *Record) Packet() *netsim.Packet {
	p := &netsim.Packet{
		Src: r.Src, Dst: r.Dst, Proto: r.Proto, TTL: 116,
		SrcPort: r.SrcPort, DstPort: r.DstPort, Flags: r.Flags,
	}
	switch {
	case len(r.Payload) > 0:
		p.Payload = append([]byte(nil), r.Payload...)
	case r.PayLen > 0:
		p.Payload = make([]byte, r.PayLen)
	}
	if r.Proto == netsim.ProtoICMP {
		p.ICMPType = 8
	}
	return p
}

// Equal reports whether two records are identical, payload content
// included (Record is not ==-comparable because of the payload slice).
func (r *Record) Equal(o *Record) bool {
	return r.At == o.At && r.Src == o.Src && r.Dst == o.Dst &&
		r.Proto == o.Proto && r.SrcPort == o.SrcPort && r.DstPort == o.DstPort &&
		r.Flags == o.Flags && r.PayLen == o.PayLen &&
		bytes.Equal(r.Payload, o.Payload)
}

// RecordOf captures a live packet as a trace record at virtual time
// now (the gateway's capture tap uses this; payload bytes are not
// retained, only their length, like a snap-length-zero tcpdump).
func RecordOf(now sim.Time, pkt *netsim.Packet) Record {
	return Record{
		At:      now,
		Src:     pkt.Src,
		Dst:     pkt.Dst,
		Proto:   pkt.Proto,
		SrcPort: pkt.SrcPort,
		DstPort: pkt.DstPort,
		Flags:   pkt.Flags,
		PayLen:  uint16(len(pkt.Payload)),
	}
}

// Trace file format: magic, version, then records. Version 1 records
// are fixed-size (24 bytes). Version 2 appends a u16 stored-payload
// length and that many content bytes to every record, so traces can
// carry exploit payloads losslessly; the reader accepts both.
const (
	traceMagic   = 0x504f544d // "POTM"
	traceVersion = 2
	recordSize   = 8 + 4 + 4 + 1 + 2 + 2 + 1 + 2 // 24 fixed bytes per record
)

// Format errors.
var (
	ErrBadMagic   = errors.New("telescope: not a trace file")
	ErrBadVersion = errors.New("telescope: unsupported trace version")
	ErrOutOfOrder = errors.New("telescope: records out of time order")
)

// Writer streams records to a trace file.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	last  sim.Time
	buf   [recordSize]byte
	begun bool
}

// NewWriter writes a trace header to w and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Records must be in non-decreasing time order.
func (tw *Writer) Write(r *Record) error {
	if tw.begun && r.At < tw.last {
		return ErrOutOfOrder
	}
	if len(r.Payload) > 0xffff {
		return fmt.Errorf("telescope: payload %d exceeds record limit", len(r.Payload))
	}
	tw.begun = true
	tw.last = r.At
	payLen := r.PayLen
	if len(r.Payload) > 0 {
		payLen = uint16(len(r.Payload))
	}
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(r.At))
	binary.LittleEndian.PutUint32(b[8:], uint32(r.Src))
	binary.LittleEndian.PutUint32(b[12:], uint32(r.Dst))
	b[16] = byte(r.Proto)
	binary.LittleEndian.PutUint16(b[17:], r.SrcPort)
	binary.LittleEndian.PutUint16(b[19:], r.DstPort)
	b[21] = r.Flags
	binary.LittleEndian.PutUint16(b[22:], payLen)
	if _, err := tw.w.Write(b); err != nil {
		return err
	}
	var stored [2]byte
	binary.LittleEndian.PutUint16(stored[:], uint16(len(r.Payload)))
	if _, err := tw.w.Write(stored[:]); err != nil {
		return err
	}
	if len(r.Payload) > 0 {
		if _, err := tw.w.Write(r.Payload); err != nil {
			return err
		}
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams records from a trace file. Both format versions are
// accepted: v1 fixed-size records, v2 payload-carrying records.
type Reader struct {
	r       *bufio.Reader
	version uint32
	buf     [recordSize]byte
}

// NewReader validates the header of r and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("telescope: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, ErrBadMagic
	}
	v := binary.LittleEndian.Uint32(hdr[4:])
	if v < 1 || v > traceVersion {
		return nil, ErrBadVersion
	}
	return &Reader{r: br, version: v}, nil
}

// Read returns the next record, or io.EOF at end of trace.
func (tr *Reader) Read(r *Record) error {
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("telescope: truncated record: %w", err)
		}
		return err
	}
	b := tr.buf[:]
	r.At = sim.Time(binary.LittleEndian.Uint64(b[0:]))
	r.Src = netsim.Addr(binary.LittleEndian.Uint32(b[8:]))
	r.Dst = netsim.Addr(binary.LittleEndian.Uint32(b[12:]))
	r.Proto = netsim.Proto(b[16])
	r.SrcPort = binary.LittleEndian.Uint16(b[17:])
	r.DstPort = binary.LittleEndian.Uint16(b[19:])
	r.Flags = b[21]
	r.PayLen = binary.LittleEndian.Uint16(b[22:])
	r.Payload = nil
	if tr.version < 2 {
		return nil
	}
	var stored [2]byte
	if _, err := io.ReadFull(tr.r, stored[:]); err != nil {
		return fmt.Errorf("telescope: truncated record: %w", err)
	}
	if n := binary.LittleEndian.Uint16(stored[:]); n > 0 {
		r.Payload = make([]byte, n)
		if _, err := io.ReadFull(tr.r, r.Payload); err != nil {
			return fmt.Errorf("telescope: truncated payload: %w", err)
		}
	}
	return nil
}

// ReadAll slurps an entire trace.
func ReadAll(r io.Reader) ([]Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		var rec Record
		if err := tr.Read(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes a whole trace.
func WriteAll(w io.Writer, recs []Record) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}
