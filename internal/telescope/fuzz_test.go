package telescope

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadAll: trace files are untrusted input to cmd/potemkind and
// cmd/telescope; the reader must reject garbage cleanly.
func FuzzReadAll(f *testing.F) {
	var buf bytes.Buffer
	WriteAll(&buf, []Record{{At: 1, Src: 2, Dst: 3}})
	f.Add(buf.Bytes())
	f.Add([]byte("POTM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces round trip exactly.
		var out bytes.Buffer
		if err := WriteAll(&out, recs); err != nil {
			// Out-of-order records cannot come from a valid stream the
			// reader accepted... except records are stored verbatim, so
			// order is whatever the file said. The writer enforces
			// ordering; a fuzzer-made file may violate it.
			if err == ErrOutOfOrder {
				return
			}
			t.Fatalf("re-write failed: %v", err)
		}
		again, err := ReadAll(&out)
		if err != nil && err != io.EOF {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(again), len(recs))
		}
		for i := range recs {
			if !again[i].Equal(&recs[i]) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}
