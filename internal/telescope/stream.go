package telescope

// Streaming trace plumbing: the original Reader/Writer pair already
// stream record-at-a-time, but every consumer (cmd/telescope, the
// potemkind -trace path) slurped whole traces through ReadAll. The types
// here let multi-GB traces flow through summaries and replays in bounded
// memory: Source is the record iterator everything consumes, Summary
// accumulates trace statistics incrementally, and StreamReplayer drives
// a Source through the sim kernel one record ahead.

import (
	"io"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Source yields trace records in non-decreasing time order. Read fills
// *rec and returns io.EOF after the last record. *Reader implements it;
// SliceSource adapts in-memory traces; ingest.PcapSource adapts pcap
// files.
type Source interface {
	Read(rec *Record) error
}

// SliceSource is a Source over an in-memory record slice.
type SliceSource struct {
	Recs []Record
	next int
}

// Read implements Source.
func (s *SliceSource) Read(rec *Record) error {
	if s.next >= len(s.Recs) {
		return io.EOF
	}
	*rec = s.Recs[s.next]
	s.next++
	return nil
}

// Summary accumulates trace statistics incrementally, so a multi-GB
// trace can be summarized without holding its records.
type Summary struct {
	srcs  map[netsim.Addr]struct{}
	dsts  map[netsim.Addr]struct{}
	count int
	last  sim.Time
}

// Add folds one record into the summary.
func (a *Summary) Add(rec *Record) {
	if a.srcs == nil {
		a.srcs = make(map[netsim.Addr]struct{})
		a.dsts = make(map[netsim.Addr]struct{})
	}
	a.srcs[rec.Src] = struct{}{}
	a.dsts[rec.Dst] = struct{}{}
	a.count++
	if rec.At > a.last {
		a.last = rec.At
	}
}

// Stats returns the accumulated statistics.
func (a *Summary) Stats() Stats {
	st := Stats{
		Packets:       a.count,
		UniqueSources: len(a.srcs),
		UniqueDests:   len(a.dsts),
		Duration:      time.Duration(a.last),
	}
	if a.last > 0 {
		st.RatePPS = float64(a.count) / st.Duration.Seconds()
	}
	return st
}

// SummarizeSource folds a whole Source into statistics.
func SummarizeSource(src Source) (Stats, error) {
	var acc Summary
	var rec Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			return acc.Stats(), nil
		}
		if err != nil {
			return acc.Stats(), err
		}
		acc.Add(&rec)
	}
}

// StreamReplayer injects a Source into a receiver over the sim kernel
// while holding only one record in memory. Unlike Replayer (which
// schedules every record up front), it alternates schedule-one /
// run-to-it, so the kernel queue stays shallow and the record order is
// identical to the wire-ingest bridge's At+RunUntil injection — the
// loopback determinism test depends on that equivalence.
type StreamReplayer struct {
	K   *sim.Kernel
	Src Source
	// Emit receives each packet at its (Base-offset) trace time.
	Emit func(now sim.Time, pkt *netsim.Packet)
	// Base is added to every record time (use K.Now() at start to play
	// a trace "from now").
	Base sim.Time
	// Halt, when non-nil, is consulted before each record; returning
	// true ends the replay early (clean shutdown on a signal).
	Halt func() bool
	// Injected counts packets delivered.
	Injected int
	// Last is the virtual time of the final injected record.
	Last sim.Time
}

// Run replays the whole source, advancing the kernel as it goes, and
// returns the first read error (nil on clean EOF). Records whose time
// lags the clock (out-of-order sources) are clamped to "now".
func (rp *StreamReplayer) Run() error {
	var rec Record
	for {
		if rp.Halt != nil && rp.Halt() {
			return nil
		}
		err := rp.Src.Read(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		at := rec.At + rp.Base
		if at < rp.K.Now() {
			at = rp.K.Now()
		}
		r := rec
		rp.K.At(at, func(now sim.Time) {
			rp.Injected++
			rp.Emit(now, r.Packet())
		})
		rp.K.RunUntil(at)
		rp.Last = at
	}
}
