package telescope

import (
	"fmt"
	"sort"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// GenConfig parameterizes the background-radiation synthesizer.
//
// The generator mixes three components observed on real telescopes:
//
//   - Poisson background: independent probes to Zipf-popular addresses
//     (misconfiguration, stale scans, backscatter).
//   - Sweep sessions: a scanner walks a contiguous range of the
//     monitored space at a fixed rate (horizontal worm scans). Sweeps
//     give the trace the temporal locality that makes aggressive VM
//     recycling effective.
//   - Vertical scans: one source probes many ports on one address.
//
// The multiplexing experiments (E3/E7) depend on the *shape* of this mix
// — a heavy-tailed address popularity and bursty sweeps — not on exact
// telescope numbers.
type GenConfig struct {
	Space    netsim.Prefix // monitored address space
	Duration time.Duration // trace length
	Rate     float64       // aggregate packets/second

	// Mix fractions (must sum to <= 1; remainder is background).
	SweepFrac    float64 // fraction of packets in sweep sessions
	VerticalFrac float64 // fraction of packets in vertical scans

	// SweepWidth is how many consecutive addresses a sweep touches.
	SweepWidth int
	// SweepRate is per-sweep probe rate (packets/second).
	SweepRate float64

	// ZipfSkew shapes per-address background popularity (s parameter).
	ZipfSkew float64
	// HotAddresses is the size of the popular set background probes are
	// drawn from (the rest of the space receives sweeps only).
	HotAddresses int

	Seed uint64
}

// DefaultGenConfig returns the standard /16, 10-minute, 200 pps feed
// used by E3/E7.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Space:        netsim.MustParsePrefix("10.5.0.0/16"),
		Duration:     10 * time.Minute,
		Rate:         200,
		SweepFrac:    0.35,
		VerticalFrac: 0.05,
		SweepWidth:   1024,
		SweepRate:    50,
		ZipfSkew:     1.05,
		HotAddresses: 8192,
		Seed:         1,
	}
}

// portMix is the destination-port distribution of background probes,
// roughly the 2004-2005 telescope mix (SMB/RPC worms, Slammer residue,
// HTTP scans).
var portMix = []struct {
	port   uint16
	proto  netsim.Proto
	weight int
}{
	{445, netsim.ProtoTCP, 30},
	{135, netsim.ProtoTCP, 22},
	{139, netsim.ProtoTCP, 10},
	{1434, netsim.ProtoUDP, 12},
	{80, netsim.ProtoTCP, 8},
	{1023, netsim.ProtoTCP, 5},
	{3389, netsim.ProtoTCP, 4},
	{22, netsim.ProtoTCP, 3},
	{25, netsim.ProtoTCP, 3},
	{0, netsim.ProtoICMP, 3},
}

var portMixTotal = func() int {
	t := 0
	for _, pm := range portMix {
		t += pm.weight
	}
	return t
}()

func drawPort(r *sim.RNG) (uint16, netsim.Proto) {
	n := r.Intn(portMixTotal)
	for _, pm := range portMix {
		if n < pm.weight {
			return pm.port, pm.proto
		}
		n -= pm.weight
	}
	return 445, netsim.ProtoTCP
}

// randomExternal draws a source address outside the monitored space.
func randomExternal(r *sim.RNG, space netsim.Prefix) netsim.Addr {
	for {
		a := netsim.Addr(r.Uint64n(1 << 32))
		if !space.Contains(a) && a != 0 {
			return a
		}
	}
}

// Generate synthesizes a complete trace, sorted by time.
func Generate(cfg GenConfig) ([]Record, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("telescope: non-positive rate or duration")
	}
	if cfg.SweepFrac+cfg.VerticalFrac > 1 {
		return nil, fmt.Errorf("telescope: mix fractions exceed 1")
	}
	r := sim.NewRNG(cfg.Seed)
	total := int(cfg.Rate * cfg.Duration.Seconds())
	out := make([]Record, 0, total)

	// Background: Poisson arrivals to Zipf-popular addresses.
	hot := cfg.HotAddresses
	if hot <= 0 || uint64(hot) > cfg.Space.Size() {
		hot = int(cfg.Space.Size())
	}
	// Hot set: a deterministic pseudo-random subset of the space, so
	// popular addresses are scattered, not clustered.
	zipf := sim.NewZipf(r.Fork("zipf"), hot, cfg.ZipfSkew)
	hotPick := r.Fork("hotset")
	hotSet := make([]uint64, hot)
	seen := make(map[uint64]bool, hot)
	for i := range hotSet {
		for {
			v := hotPick.Uint64n(cfg.Space.Size())
			if !seen[v] {
				seen[v] = true
				hotSet[i] = v
				break
			}
		}
	}

	bgCount := int(float64(total) * (1 - cfg.SweepFrac - cfg.VerticalFrac))
	bgRate := float64(bgCount) / cfg.Duration.Seconds()
	bg := r.Fork("background")
	t := 0.0
	for i := 0; i < bgCount; i++ {
		t += bg.Exp(1 / bgRate)
		if t > cfg.Duration.Seconds() {
			break
		}
		port, proto := drawPort(bg)
		rec := Record{
			At:      sim.Start.Add(time.Duration(t * float64(time.Second))),
			Src:     randomExternal(bg, cfg.Space),
			Dst:     cfg.Space.Nth(hotSet[zipf.Draw()]),
			Proto:   proto,
			SrcPort: uint16(1024 + bg.Intn(60000)),
			DstPort: port,
		}
		if proto == netsim.ProtoTCP {
			rec.Flags = netsim.FlagSYN
		}
		if proto == netsim.ProtoUDP {
			rec.PayLen = uint16(64 + bg.Intn(320))
		}
		if proto == netsim.ProtoICMP {
			rec.SrcPort = 0 // no ports on the wire; keep records wire-representable
		}
		out = append(out, rec)
	}

	// Sweep sessions.
	if cfg.SweepFrac > 0 && cfg.SweepWidth > 0 && cfg.SweepRate > 0 {
		sweepPkts := int(float64(total) * cfg.SweepFrac)
		sw := r.Fork("sweeps")
		for emitted := 0; emitted < sweepPkts; {
			width := cfg.SweepWidth
			if rem := sweepPkts - emitted; width > rem {
				width = rem
			}
			start := sw.Float64() * (cfg.Duration.Seconds() - float64(width)/cfg.SweepRate)
			if start < 0 {
				start = 0
			}
			src := randomExternal(sw, cfg.Space)
			base := sw.Uint64n(cfg.Space.Size())
			port, proto := drawPort(sw)
			for i := 0; i < width; i++ {
				at := start + float64(i)/cfg.SweepRate
				if at > cfg.Duration.Seconds() {
					break
				}
				rec := Record{
					At:      sim.Start.Add(time.Duration(at * float64(time.Second))),
					Src:     src,
					Dst:     cfg.Space.Nth((base + uint64(i)) % cfg.Space.Size()),
					Proto:   proto,
					SrcPort: uint16(1024 + sw.Intn(60000)),
					DstPort: port,
				}
				if proto == netsim.ProtoTCP {
					rec.Flags = netsim.FlagSYN
				}
				if proto == netsim.ProtoICMP {
					rec.SrcPort = 0
				}
				out = append(out, rec)
				emitted++
			}
		}
	}

	// Vertical scans: one destination, many ports.
	if cfg.VerticalFrac > 0 {
		vertPkts := int(float64(total) * cfg.VerticalFrac)
		vt := r.Fork("vertical")
		const portsPerScan = 64
		for emitted := 0; emitted < vertPkts; {
			src := randomExternal(vt, cfg.Space)
			dst := cfg.Space.Nth(vt.Uint64n(cfg.Space.Size()))
			start := vt.Float64() * cfg.Duration.Seconds()
			for i := 0; i < portsPerScan && emitted < vertPkts; i++ {
				at := start + float64(i)*0.02
				if at > cfg.Duration.Seconds() {
					break
				}
				out = append(out, Record{
					At:      sim.Start.Add(time.Duration(at * float64(time.Second))),
					Src:     src,
					Dst:     dst,
					Proto:   netsim.ProtoTCP,
					SrcPort: uint16(1024 + vt.Intn(60000)),
					DstPort: uint16(1 + vt.Intn(10000)),
					Flags:   netsim.FlagSYN,
				})
				emitted++
			}
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// Stats summarizes a trace for reports and sanity tests.
type Stats struct {
	Packets       int
	UniqueSources int
	UniqueDests   int
	Duration      time.Duration
	RatePPS       float64
}

// Summarize computes trace statistics.
func Summarize(recs []Record) Stats {
	srcs := make(map[netsim.Addr]bool)
	dsts := make(map[netsim.Addr]bool)
	var last sim.Time
	for i := range recs {
		srcs[recs[i].Src] = true
		dsts[recs[i].Dst] = true
		if recs[i].At > last {
			last = recs[i].At
		}
	}
	st := Stats{
		Packets:       len(recs),
		UniqueSources: len(srcs),
		UniqueDests:   len(dsts),
		Duration:      time.Duration(last),
	}
	if last > 0 {
		st.RatePPS = float64(len(recs)) / st.Duration.Seconds()
	}
	return st
}

// Replayer injects a trace into a receiver over the sim kernel.
type Replayer struct {
	K    *sim.Kernel
	Recs []Record
	// Emit receives each packet at its trace time.
	Emit func(now sim.Time, pkt *netsim.Packet)
	// Injected counts packets delivered so far.
	Injected int
}

// Start schedules every record on the kernel. Call before k.Run.
func (rp *Replayer) Start() {
	for i := range rp.Recs {
		rec := &rp.Recs[i]
		rp.K.At(rec.At, func(now sim.Time) {
			rp.Injected++
			rp.Emit(now, rec.Packet())
		})
	}
}
