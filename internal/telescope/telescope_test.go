package telescope

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 0, Src: 1, Dst: 2, Proto: netsim.ProtoTCP, SrcPort: 3, DstPort: 4, Flags: netsim.FlagSYN},
		{At: 100, Src: 5, Dst: 6, Proto: netsim.ProtoUDP, SrcPort: 7, DstPort: 8, PayLen: 99},
		{At: 100, Src: 9, Dst: 10, Proto: netsim.ProtoICMP},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if !got[i].Equal(&recs[i]) {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	err := quick.Check(func(raw []uint64) bool {
		recs := make([]Record, len(raw))
		var at sim.Time
		for i, v := range raw {
			at += sim.Time(v % 1e9)
			recs[i] = Record{
				At:  at,
				Src: netsim.Addr(v), Dst: netsim.Addr(v >> 16),
				Proto:   netsim.ProtoTCP,
				SrcPort: uint16(v >> 8), DstPort: uint16(v >> 24),
				Flags: byte(v>>3) & 0x3f, PayLen: uint16(v % 1400),
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !got[i].Equal(&recs[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(&Record{At: 100}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(&Record{At: 50}); err != ErrOutOfOrder {
		t.Errorf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	WriteAll(&buf, []Record{{At: 1}, {At: 2}})
	data := buf.Bytes()[:buf.Len()-5]
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := tr.Read(&rec); err != nil {
		t.Fatal(err)
	}
	if err := tr.Read(&rec); err == nil || err == io.EOF {
		t.Errorf("truncated read err = %v", err)
	}
}

func TestRecordPacket(t *testing.T) {
	rec := Record{
		Src: 1, Dst: 2, Proto: netsim.ProtoUDP,
		SrcPort: 3, DstPort: 4, PayLen: 10,
	}
	p := rec.Packet()
	if p.Proto != netsim.ProtoUDP || len(p.Payload) != 10 {
		t.Errorf("packet = %s", p)
	}
	// Must survive the wire.
	if _, err := netsim.Unmarshal(p.Marshal()); err != nil {
		t.Error(err)
	}
	icmp := Record{Proto: netsim.ProtoICMP}
	if icmp.Packet().ICMPType != 8 {
		t.Error("ICMP record should be echo request")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Duration = 2 * time.Minute
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(recs)
	// Within 20% of the requested volume.
	want := cfg.Rate * cfg.Duration.Seconds()
	if float64(st.Packets) < want*0.8 || float64(st.Packets) > want*1.2 {
		t.Errorf("packets = %d, want ~%.0f", st.Packets, want)
	}
	// All destinations inside the monitored space; sources outside.
	for i := range recs {
		if !cfg.Space.Contains(recs[i].Dst) {
			t.Fatalf("record %d dst %s outside space", i, recs[i].Dst)
		}
		if cfg.Space.Contains(recs[i].Src) {
			t.Fatalf("record %d src %s inside space", i, recs[i].Src)
		}
	}
	// Time-ordered.
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("trace not sorted")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Duration = 30 * time.Second
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(&b[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := 0
	for i := 0; i < len(a) && i < len(c); i++ {
		if a[i].Equal(&c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Duration = 5 * time.Minute
	cfg.SweepFrac = 0 // isolate background
	cfg.VerticalFrac = 0
	recs, _ := Generate(cfg)
	counts := map[netsim.Addr]int{}
	for i := range recs {
		counts[recs[i].Dst]++
	}
	// Heavy tail: the top address should see far more than the mean.
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) < 10*mean {
		t.Errorf("max %d vs mean %.1f: popularity not heavy-tailed", max, mean)
	}
}

func TestGenerateSweepLocality(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Duration = time.Minute
	cfg.SweepFrac = 1.0
	cfg.VerticalFrac = 0
	cfg.SweepWidth = 256
	recs, _ := Generate(cfg)
	if len(recs) == 0 {
		t.Fatal("no sweep records")
	}
	// Group by source; within a sweep, destinations are consecutive.
	bySrc := map[netsim.Addr][]Record{}
	for _, r := range recs {
		bySrc[r.Src] = append(bySrc[r.Src], r)
	}
	checked := 0
	for _, rs := range bySrc {
		if len(rs) < 10 {
			continue
		}
		consecutive := 0
		for i := 1; i < len(rs); i++ {
			if rs[i].Dst == rs[i-1].Dst+1 {
				consecutive++
			}
		}
		if consecutive < len(rs)/2 {
			t.Errorf("sweep source %s: only %d/%d consecutive", rs[0].Src, consecutive, len(rs))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no sweeps large enough to check")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rate = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero rate accepted")
	}
	cfg = DefaultGenConfig()
	cfg.SweepFrac = 0.8
	cfg.VerticalFrac = 0.5
	if _, err := Generate(cfg); err == nil {
		t.Error("mix > 1 accepted")
	}
}

func TestReplayerDeliversAtTraceTimes(t *testing.T) {
	k := sim.NewKernel(1)
	recs := []Record{
		{At: sim.Start.Add(time.Second), Src: 1, Dst: 2, Proto: netsim.ProtoTCP, Flags: netsim.FlagSYN},
		{At: sim.Start.Add(3 * time.Second), Src: 3, Dst: 4, Proto: netsim.ProtoTCP, Flags: netsim.FlagSYN},
	}
	var got []sim.Time
	rp := &Replayer{K: k, Recs: recs, Emit: func(now sim.Time, pkt *netsim.Packet) {
		got = append(got, now)
	}}
	rp.Start()
	k.Run()
	if len(got) != 2 || got[0] != recs[0].At || got[1] != recs[1].At {
		t.Errorf("delivery times = %v", got)
	}
	if rp.Injected != 2 {
		t.Errorf("Injected = %d", rp.Injected)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{At: 0, Src: 1, Dst: 10},
		{At: sim.Start.Add(2 * time.Second), Src: 1, Dst: 11},
		{At: sim.Start.Add(4 * time.Second), Src: 2, Dst: 10},
	}
	st := Summarize(recs)
	if st.Packets != 3 || st.UniqueSources != 2 || st.UniqueDests != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Duration != 4*time.Second {
		t.Errorf("duration = %v", st.Duration)
	}
	if st.RatePPS != 0.75 {
		t.Errorf("rate = %v", st.RatePPS)
	}
}
