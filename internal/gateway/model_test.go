package gateway

import (
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Model-based test: drive the gateway with a random operation stream and
// check it against a trivially-correct reference model of the binding
// table. The model tracks, per address: bound?, the set of peers, and
// delivered-packet counts; the gateway must agree after every batch.
type bindingModel struct {
	bound     map[netsim.Addr]bool
	delivered map[netsim.Addr]int
	created   int
	recycled  int
}

func TestGatewayAgainstModel(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		k := sim.NewKernel(seed)
		fb := &fakeBackend{k: k, delay: 100 * time.Millisecond}
		cfg := DefaultConfig()
		cfg.IdleTimeout = 0 // recycling driven explicitly below
		cfg.Policy = PolicyDropAll
		g := New(k, cfg, fb)

		m := &bindingModel{bound: map[netsim.Addr]bool{}, delivered: map[netsim.Addr]int{}}
		r := sim.NewRNG(seed * 31)
		addrs := make([]netsim.Addr, 32)
		for i := range addrs {
			addrs[i] = cfg.Space.Nth(uint64(i) * 7)
		}

		for step := 0; step < 2000; step++ {
			switch r.Intn(10) {
			case 0: // recycle everything
				g.RecycleAll(k.Now())
				for a, b := range m.bound {
					if b {
						m.recycled++
					}
					m.bound[a] = false
				}
			default: // inbound packet to a random address
				dst := addrs[r.Intn(len(addrs))]
				src := netsim.Addr(0xc6000000 + r.Uint64n(1024))
				g.HandleInbound(k.Now(), netsim.TCPSyn(src, dst, 1000, 445, 1))
				if !m.bound[dst] {
					m.bound[dst] = true
					m.created++
				}
				m.delivered[dst]++ // queued packets flush on ready, so all count
			}
			// Let clones land between batches sometimes.
			if r.Bool(0.3) {
				k.RunFor(time.Second)
			}
		}
		k.RunFor(time.Minute) // settle all clones

		// Compare: binding set.
		wantLive := 0
		for a, b := range m.bound {
			if b {
				wantLive++
				if g.Binding(a) == nil {
					t.Fatalf("seed %d: model has %s bound, gateway does not", seed, a)
				}
			} else if g.Binding(a) != nil {
				t.Fatalf("seed %d: gateway has %s bound, model does not", seed, a)
			}
		}
		if g.NumBindings() != wantLive {
			t.Fatalf("seed %d: bindings %d, model %d", seed, g.NumBindings(), wantLive)
		}
		st := g.Stats()
		if int(st.BindingsCreated) != m.created {
			t.Errorf("seed %d: created %d, model %d", seed, st.BindingsCreated, m.created)
		}
		if int(st.BindingsRecycled) != m.recycled {
			t.Errorf("seed %d: recycled %d, model %d", seed, st.BindingsRecycled, m.recycled)
		}
		// Delivered packets: every packet to a binding that survived to
		// activation is delivered exactly once. RecycleAll can kill a
		// pending binding and drop its queue, so the gateway may deliver
		// fewer — never more.
		total := 0
		for _, n := range m.delivered {
			total += n
		}
		if int(st.DeliveredToVM) > total {
			t.Errorf("seed %d: delivered %d > model upper bound %d", seed, st.DeliveredToVM, total)
		}
		if st.DeliveredToVM == 0 {
			t.Errorf("seed %d: nothing delivered", seed)
		}
		// Conservation: created = live + recycled + failed-pending.
		// (fakeBackend never fails, but RecycleAll can reap pending
		// bindings, which count as recycled.)
		if int(st.BindingsCreated) != g.NumBindings()+int(st.BindingsRecycled) {
			t.Errorf("seed %d: conservation: %d != %d + %d",
				seed, st.BindingsCreated, g.NumBindings(), st.BindingsRecycled)
		}
	}
}
