package gateway

import (
	"bytes"
	"testing"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

var (
	proxyHost = netsim.MustParseAddr("172.16.9.9")
	proxyNAT  = netsim.MustParseAddr("192.0.2.1")
)

func proxyGateway(t *testing.T) (*Gateway, *fakeBackend, *sim.Kernel, *[]*netsim.Packet) {
	t.Helper()
	var out []*netsim.Packet
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.ProxyAddr = proxyNAT
		c.ProxyRules = map[uint16]ProxyRule{25: {Host: proxyHost}}
		c.ExternalOut = func(_ sim.Time, p *netsim.Packet) { out = append(out, p) }
	})
	return g, fb, k, &out
}

func TestProxyForwardsToSacrificialHost(t *testing.T) {
	g, _, k, out := proxyGateway(t)
	outboundFrom(t, g, k, mon(0))
	// The VM opens an SMTP connection to a third party: proxied, not
	// dropped or reflected.
	pkt := netsim.TCPSyn(mon(0), netsim.MustParseAddr("99.9.9.9"), 5555, 25, 77)
	if d := g.HandleOutbound(k.Now(), pkt); d != DispProxied {
		t.Fatalf("disposition = %v", d)
	}
	if len(*out) != 1 {
		t.Fatalf("externalized = %d", len(*out))
	}
	fwd := (*out)[0]
	if fwd.Dst != proxyHost || fwd.Src != proxyNAT {
		t.Errorf("forwarded = %s", fwd)
	}
	if fwd.DstPort != 25 || fwd.SrcPort < natBase {
		t.Errorf("ports = %d -> %d", fwd.SrcPort, fwd.DstPort)
	}
	if g.Stats().OutProxied != 1 {
		t.Errorf("OutProxied = %d", g.Stats().OutProxied)
	}
	// Original packet untouched.
	if pkt.Dst != netsim.MustParseAddr("99.9.9.9") {
		t.Error("original packet mutated")
	}
}

func TestProxyReturnPathImpersonatesOriginalDst(t *testing.T) {
	g, fb, k, out := proxyGateway(t)
	outboundFrom(t, g, k, mon(0))
	orig := netsim.MustParseAddr("99.9.9.9")
	g.HandleOutbound(k.Now(), netsim.TCPSyn(mon(0), orig, 5555, 25, 77))
	fwd := (*out)[0]

	// The sacrificial host replies to the NAT address.
	reply := &netsim.Packet{
		Src: proxyHost, Dst: proxyNAT, Proto: netsim.ProtoTCP, TTL: 60,
		SrcPort: 25, DstPort: fwd.SrcPort,
		Seq: 1, Ack: 78, Flags: netsim.FlagSYN | netsim.FlagACK,
		Payload: []byte("220 mail ready"),
	}
	g.HandleInbound(k.Now(), reply)

	vm := fb.spawned[0]
	got := vm.delivered[len(vm.delivered)-1]
	if got.Src != orig || got.SrcPort != 25 {
		t.Errorf("return source = %s:%d, want impersonated %s:25", got.Src, got.SrcPort, orig)
	}
	if got.Dst != mon(0) || got.DstPort != 5555 {
		t.Errorf("return dest = %s:%d", got.Dst, got.DstPort)
	}
	if !bytes.Equal(got.Payload, []byte("220 mail ready")) {
		t.Error("payload lost in NAT")
	}
	if g.Stats().ProxyReturns != 1 {
		t.Errorf("ProxyReturns = %d", g.Stats().ProxyReturns)
	}
}

func TestProxyFlowsAreStable(t *testing.T) {
	g, _, k, out := proxyGateway(t)
	outboundFrom(t, g, k, mon(0))
	for i := 0; i < 3; i++ {
		g.HandleOutbound(k.Now(), netsim.TCPSyn(mon(0), netsim.MustParseAddr("99.9.9.9"), 5555, 25, uint32(i)))
	}
	if (*out)[0].SrcPort != (*out)[2].SrcPort {
		t.Error("same flow mapped to different NAT ports")
	}
	// Different VM source port = different flow = different NAT port.
	g.HandleOutbound(k.Now(), netsim.TCPSyn(mon(0), netsim.MustParseAddr("99.9.9.9"), 6666, 25, 9))
	if (*out)[3].SrcPort == (*out)[0].SrcPort {
		t.Error("distinct flows share a NAT port")
	}
}

func TestProxyOnlyConfiguredPorts(t *testing.T) {
	g, _, k, out := proxyGateway(t)
	outboundFrom(t, g, k, mon(0))
	// Port 80 has no rule: normal containment applies (drop under
	// reflect-source).
	if d := g.HandleOutbound(k.Now(), netsim.TCPSyn(mon(0), netsim.MustParseAddr("99.9.9.9"), 5555, 80, 1)); d != DispDropped {
		t.Errorf("disposition = %v", d)
	}
	if len(*out) != 0 {
		t.Errorf("externalized = %d", len(*out))
	}
}

func TestProxyUnknownReturnSwallowed(t *testing.T) {
	g, fb, k, _ := proxyGateway(t)
	outboundFrom(t, g, k, mon(0))
	delivered := len(fb.spawned[0].delivered)
	// Unsolicited packet to the NAT address: swallowed, never reaches a VM.
	g.HandleInbound(k.Now(), netsim.TCPSyn(proxyHost, proxyNAT, 25, 31337, 1))
	if len(fb.spawned[0].delivered) != delivered {
		t.Error("unsolicited proxy return delivered")
	}
}
