package gateway

import (
	"sort"
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// scrubOracle is the pre-heap full-table scan, kept as the reference
// implementation: the set of bindings a scrub at `now` must recycle,
// in the deterministic (sorted-address) recycle order.
func scrubOracle(g *Gateway, now sim.Time) []netsim.Addr {
	var expired []netsim.Addr
	for addr, b := range g.bindings {
		if b.State != BindingActive {
			continue
		}
		if g.Cfg.PinDetected && b.detected {
			continue
		}
		idleOut := g.Cfg.IdleTimeout > 0 && now.Sub(b.LastActive) >= g.Cfg.IdleTimeout
		lifeOut := g.Cfg.MaxLifetime > 0 && now.Sub(b.CreatedAt) >= g.Cfg.MaxLifetime
		if idleOut || lifeOut {
			expired = append(expired, addr)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	return expired
}

// TestExpiryHeapMatchesFullScan drives random bind/traffic/recycle
// workloads under randomized timeout configurations and checks, at every
// scrub, that the heap-driven pass recycles exactly the bindings the
// full scan would, in the same order. This is the property the lazy
// deletion invariants (expiry.go) exist to guarantee.
func TestExpiryHeapMatchesFullScan(t *testing.T) {
	idleChoices := []time.Duration{0, 2 * time.Second, 10 * time.Second}
	lifeChoices := []time.Duration{0, 15 * time.Second}

	for trial := 0; trial < 30; trial++ {
		rng := sim.NewRNG(uint64(trial) + 7)
		k := sim.NewKernel(uint64(trial))
		cfg := DefaultConfig()
		cfg.IdleTimeout = idleChoices[rng.Intn(len(idleChoices))]
		cfg.MaxLifetime = lifeChoices[rng.Intn(len(lifeChoices))]
		cfg.PinDetected = rng.Intn(2) == 0
		cfg.DetectThreshold = 0

		var recycled []netsim.Addr
		cfg.EventSink = func(ev Event) {
			if ev.Kind == EvRecycled {
				recycled = append(recycled, netsim.MustParseAddr(ev.Addr))
			}
		}
		fb := &fakeBackend{k: k, delay: 50 * time.Millisecond}
		g := New(k, cfg, fb)
		g.Close() // manual scrubbing only: the ticker would race the oracle

		addrs := make([]netsim.Addr, 24)
		for i := range addrs {
			addrs[i] = cfg.Space.Nth(uint64(i))
		}

		for step := 0; step < 120; step++ {
			switch rng.Intn(5) {
			case 0, 1: // inbound traffic: binds a new addr or refreshes LastActive
				dst := addrs[rng.Intn(len(addrs))]
				g.HandleInbound(k.Now(), netsim.TCPSyn(netsim.Addr(0xc0000000), dst, 1, 445, uint32(step)))
			case 2: // backend loses a VM: recycle outside the scrub path (stale heap entry)
				g.RecycleBinding(k.Now(), addrs[rng.Intn(len(addrs))], "crash")
				recycled = nil
			case 3: // detector flags a binding (sticky, like detect() sets it)
				if b := g.Binding(addrs[rng.Intn(len(addrs))]); b != nil {
					b.detected = true
				}
			case 4:
				// just let time pass
			}
			k.RunFor(time.Duration(rng.Intn(3000)) * time.Millisecond)

			want := scrubOracle(g, k.Now())
			recycled = nil
			g.Scrub(k.Now())
			if len(recycled) != len(want) {
				t.Fatalf("trial %d step %d (idle=%v life=%v pin=%v): scrub recycled %v, oracle wants %v",
					trial, step, cfg.IdleTimeout, cfg.MaxLifetime, cfg.PinDetected, recycled, want)
			}
			for i := range want {
				if recycled[i] != want[i] {
					t.Fatalf("trial %d step %d: recycle order %v, oracle wants %v",
						trial, step, recycled, want)
				}
			}
			// A second scrub at the same instant must be a no-op.
			recycled = nil
			g.Scrub(k.Now())
			if len(recycled) != 0 {
				t.Fatalf("trial %d step %d: repeated scrub recycled %v", trial, step, recycled)
			}
		}
	}
}

// TestExpiryHeapStaysBounded checks lazy deletion cannot leak entries
// without bound: rebinding the same address over and over leaves at most
// one stale entry per recycle, all drained by the next scrub pass that
// reaches their deadlines.
func TestExpiryHeapStaysBounded(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.IdleTimeout = time.Second
	var sank []Event
	cfg.EventSink = func(ev Event) { sank = append(sank, ev) }
	fb := &fakeBackend{k: k}
	g := New(k, cfg, fb)
	defer g.Close()

	addr := cfg.Space.Nth(7)
	for i := 0; i < 200; i++ {
		g.HandleInbound(k.Now(), netsim.TCPSyn(1, addr, 1, 445, uint32(i)))
		k.RunFor(5 * time.Second) // ticker scrubs several times; binding expires
	}
	if g.NumBindings() != 0 {
		t.Fatalf("want all bindings recycled, have %d", g.NumBindings())
	}
	if len(g.expiry) > 1 {
		t.Fatalf("expiry heap retained %d entries after full drain", len(g.expiry))
	}
}
