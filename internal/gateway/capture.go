package gateway

import (
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Packet capture: the gateway is the one place every honeyfarm packet
// crosses, so a tap here is the farm's tcpdump. The tap sees three
// vantage points — telescope-side arrivals, VM-bound deliveries, and
// externalized egress — so an analyst can replay exactly what the
// malware saw and sent. Capture records are (direction, time, packet)
// tuples; cmd/potemkind writes them in the telescope trace format for
// inspection with cmd/telescope.

// Direction classifies a captured packet's vantage point.
type Direction int

// Capture vantage points.
const (
	// CapInbound: packet arrived from outside (or was re-injected by
	// reflection) and entered the dispatch path.
	CapInbound Direction = iota
	// CapToVM: packet was delivered to a VM.
	CapToVM
	// CapEgress: packet was externalized by the containment policy.
	CapEgress
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case CapInbound:
		return "in"
	case CapToVM:
		return "to-vm"
	case CapEgress:
		return "out"
	default:
		return "unknown"
	}
}

// CaptureSink consumes tapped packets. The packet must not be retained
// or mutated (clone it if needed).
type CaptureSink func(now sim.Time, dir Direction, pkt *netsim.Packet)

// capture taps a packet if a sink is configured.
func (g *Gateway) capture(now sim.Time, dir Direction, pkt *netsim.Packet) {
	if g.Cfg.Capture != nil {
		g.Cfg.Capture(now, dir, pkt)
	}
}
