package gateway

import (
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// BindingState tracks a binding's lifecycle.
type BindingState int

// Binding states.
const (
	// BindingPending: a VM is being flash-cloned; packets queue.
	BindingPending BindingState = iota
	// BindingActive: the VM is live and receiving.
	BindingActive
)

// Binding is the gateway's per-address state: the IP→VM mapping plus
// the flow context containment decisions need.
type Binding struct {
	Addr  netsim.Addr
	State BindingState
	VM    VMRef
	Hint  SpawnHint

	CreatedAt  sim.Time
	LastActive sim.Time

	// pending queues inbound packets while the clone is in flight.
	pending []*netsim.Packet

	// peers are remotes that sent traffic to this binding; outbound
	// replies to them are permitted under PolicyReflectSource and up.
	// peerOrder tracks insertion order for oldest-first eviction.
	peers     map[netsim.Addr]struct{}
	peerOrder []netsim.Addr

	// outTargets are distinct remotes this VM attempted to contact —
	// the scan detector's input.
	outTargets map[netsim.Addr]struct{}
	detected   bool

	// rate is the outbound token bucket (lazily created).
	rate *bucket

	// Tracing state (nil/empty when Config.Tracer is unset). span is the
	// binding's root span; spawnSpan covers the current clone request;
	// activeSpan covers the VM-live phase. pendingAt records when each
	// queued packet arrived, so the flush can observe per-packet
	// pending-wait latency.
	span       *trace.Span
	spawnSpan  *trace.Span
	activeSpan *trace.Span
	pendingAt  []sim.Time
}

func newBinding(now sim.Time, addr netsim.Addr, hint SpawnHint) *Binding {
	return &Binding{
		Addr:       addr,
		State:      BindingPending,
		Hint:       hint,
		CreatedAt:  now,
		LastActive: now,
		peers:      make(map[netsim.Addr]struct{}),
		outTargets: make(map[netsim.Addr]struct{}),
	}
}

// notePeer remembers a remote that contacted this binding, evicting the
// oldest peer when the table is full (replies answer recent contacts,
// so recency is what fidelity needs).
func (b *Binding) notePeer(addr netsim.Addr, limit int) {
	if _, ok := b.peers[addr]; ok {
		return
	}
	for len(b.peers) >= limit && len(b.peerOrder) > 0 {
		oldest := b.peerOrder[0]
		b.peerOrder = b.peerOrder[1:]
		delete(b.peers, oldest)
	}
	b.peers[addr] = struct{}{}
	b.peerOrder = append(b.peerOrder, addr)
}

// isPeer reports whether addr previously contacted this binding.
func (b *Binding) isPeer(addr netsim.Addr) bool {
	_, ok := b.peers[addr]
	return ok
}

// Peers returns the number of remembered peers.
func (b *Binding) Peers() int { return len(b.peers) }

// Detected reports whether the scan detector flagged this binding.
func (b *Binding) Detected() bool { return b.detected }

// OutTargets returns the number of distinct outbound targets attempted.
func (b *Binding) OutTargets() int { return len(b.outTargets) }
