package gateway

import (
	"testing"
	"time"

	"potemkin/internal/trace"
)

// tracedGateway builds a test gateway with tracing on, collecting
// finished spans into the returned slice.
func tracedGateway(t *testing.T, mutate func(*Config)) (*Gateway, *fakeBackend, *[]trace.Record, func()) {
	t.Helper()
	var recs []trace.Record
	tr := trace.New(func(r trace.Record) { recs = append(recs, r) })
	g, fb, k := newTestGateway(t, func(cfg *Config) {
		cfg.Tracer = tr
		if mutate != nil {
			mutate(cfg)
		}
	})
	return g, fb, &recs, func() { k.Run() }
}

func findRec(recs []trace.Record, name string) *trace.Record {
	for i := range recs {
		if recs[i].Name == name {
			return &recs[i]
		}
	}
	return nil
}

// The binding lifecycle must come out as one trace: a root "binding"
// span with the forensic events folded on, a "spawn" child covering the
// clone request, and an "active" child from VM-live to recycle.
func TestTraceBindingLifecycle(t *testing.T) {
	g, _, recs, run := tracedGateway(t, nil)
	now := g.K.Now()
	g.HandleInbound(now, syn(ext(0), mon(0)))
	g.HandleInbound(now, syn(ext(1), mon(0))) // queues while pending
	if got := g.Stats().PendingQueued; got != 2 {
		t.Fatalf("PendingQueued mid-clone = %d, want 2", got)
	}
	run()
	if got := g.Stats().PendingQueued; got != 0 {
		t.Fatalf("PendingQueued after flush = %d, want 0", got)
	}
	g.RecycleAll(g.K.Now())

	spawn := findRec(*recs, "spawn")
	active := findRec(*recs, "active")
	root := findRec(*recs, "binding")
	if spawn == nil || active == nil || root == nil {
		t.Fatalf("missing spans, got %+v", *recs)
	}
	if spawn.Trace != root.Trace || active.Trace != root.Trace {
		t.Fatal("spans not in one trace")
	}
	if spawn.Parent != root.Span || active.Parent != root.Span {
		t.Fatal("spawn/active not children of the binding root")
	}
	if root.Attr("addr") != mon(0).String() || root.Attr("src") != ext(0).String() {
		t.Fatalf("root attrs wrong: %+v", root.Attrs)
	}
	if spawn.Attr("attempt") != "0" {
		t.Fatalf("spawn attempt attr = %q", spawn.Attr("attempt"))
	}
	// The event log folded onto the root span, in order.
	var kinds []string
	for _, ev := range root.Events {
		kinds = append(kinds, ev.Name)
	}
	want := []string{"bound", "active", "recycled"}
	if len(kinds) != len(want) {
		t.Fatalf("root events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("root events %v, want %v", kinds, want)
		}
	}
	// Both queued packets observed pending-wait latency (the clone delay).
	pw := g.Cfg.Tracer.Stage("pending-wait")
	if pw == nil || pw.Count() != 2 {
		t.Fatalf("pending-wait samples = %v", pw)
	}
	if pw.Min() < 499 || pw.Max() > 501 { // 500 ms clone delay, in ms
		t.Fatalf("pending-wait range [%v, %v], want ~500", pw.Min(), pw.Max())
	}
	if g.Cfg.Tracer.OpenSpans() != 0 {
		t.Fatalf("open spans after recycle: %d", g.Cfg.Tracer.OpenSpans())
	}
}

// Each spawn attempt gets its own spawn span; failed attempts carry the
// error as a span event and the retry shows up on the root.
func TestTraceSpawnRetry(t *testing.T) {
	g, fb, recs, run := tracedGateway(t, func(cfg *Config) {
		cfg.SpawnRetryBudget = 2
		cfg.SpawnRetryBackoff = 50 * time.Millisecond
	})
	fb.failN = 1
	g.HandleInbound(g.K.Now(), syn(ext(0), mon(0)))
	run()
	g.RecycleAll(g.K.Now())

	var spawns []*trace.Record
	for i := range *recs {
		if (*recs)[i].Name == "spawn" {
			spawns = append(spawns, &(*recs)[i])
		}
	}
	if len(spawns) != 2 {
		t.Fatalf("spawn spans = %d, want 2 (failed + retried)", len(spawns))
	}
	if spawns[0].Attr("attempt") != "0" || spawns[1].Attr("attempt") != "1" {
		t.Fatalf("attempt attrs: %q, %q", spawns[0].Attr("attempt"), spawns[1].Attr("attempt"))
	}
	if len(spawns[0].Events) == 0 || spawns[0].Events[0].Name != "spawn-error" {
		t.Fatalf("failed spawn missing error event: %+v", spawns[0].Events)
	}
	root := findRec(*recs, "binding")
	hasRetry := false
	for _, ev := range root.Events {
		if ev.Name == "spawn-retry" {
			hasRetry = true
		}
	}
	if !hasRetry {
		t.Fatalf("root missing spawn-retry event: %+v", root.Events)
	}
}

// A shed refusal has no binding to hang events off — it must surface as
// a standalone instant span so the trace subsumes the forensic log.
func TestTraceShedInstant(t *testing.T) {
	g, fb, recs, run := tracedGateway(t, func(cfg *Config) {
		cfg.ShedOnFull = time.Second
	})
	fb.failNext = true
	fb.failErr = ErrBackendFull
	g.HandleInbound(g.K.Now(), syn(ext(0), mon(0)))
	run()
	// Now inside the shed window: the next new address is refused.
	g.HandleInbound(g.K.Now(), syn(ext(1), mon(1)))
	shed := findRec(*recs, "shed")
	if shed == nil {
		t.Fatalf("no shed instant span, got %+v", *recs)
	}
	if shed.Attr("addr") != mon(1).String() {
		t.Fatalf("shed addr attr = %q", shed.Attr("addr"))
	}
	if shed.StartNS != shed.EndNS {
		t.Fatal("shed span not instant")
	}
}

// A binding recycled while its clone is in flight must still close its
// whole trace (abandoned spawn), and leave no context behind.
func TestTraceRecycleMidClone(t *testing.T) {
	g, _, recs, run := tracedGateway(t, nil)
	g.HandleInbound(g.K.Now(), syn(ext(0), mon(0)))
	if !g.RecycleBinding(g.K.Now(), mon(0), "crash") {
		t.Fatal("RecycleBinding found no binding")
	}
	run()
	spawn := findRec(*recs, "spawn")
	if spawn == nil {
		t.Fatal("no spawn span")
	}
	found := false
	for _, ev := range spawn.Events {
		if ev.Name == "abandoned" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spawn span not marked abandoned: %+v", spawn.Events)
	}
	if g.Cfg.Tracer.OpenSpans() != 0 {
		t.Fatalf("open spans: %d", g.Cfg.Tracer.OpenSpans())
	}
	if g.Stats().PendingQueued != 0 {
		t.Fatalf("PendingQueued = %d", g.Stats().PendingQueued)
	}
}
