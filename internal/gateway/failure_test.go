package gateway

import (
	"testing"
	"time"

	"potemkin/internal/sim"
)

// conservation checks the binding ledger: everything ever created is
// either still live or was recycled.
func conservation(t *testing.T, g *Gateway) {
	t.Helper()
	st := g.Stats()
	if st.BindingsCreated != uint64(g.NumBindings())+st.BindingsRecycled {
		t.Errorf("ledger unbalanced: created=%d live=%d recycled=%d",
			st.BindingsCreated, g.NumBindings(), st.BindingsRecycled)
	}
}

func TestSpawnRetrySucceedsAndKeepsQueue(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.SpawnRetryBudget = 2 })
	fb.failNext = true
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	// A second packet queues while the first attempt is failing.
	g.HandleInbound(k.Now(), syn(ext(1), mon(0)))
	k.Run()
	st := g.Stats()
	if st.SpawnRetries != 1 {
		t.Errorf("SpawnRetries = %d, want 1", st.SpawnRetries)
	}
	if st.SpawnFailures != 0 {
		t.Errorf("SpawnFailures = %d, want 0 (retry succeeded)", st.SpawnFailures)
	}
	if b := g.Binding(mon(0)); b == nil || b.State != BindingActive {
		t.Fatal("binding not active after successful retry")
	}
	// The pending queue survived the failed first attempt.
	if len(fb.spawned) != 1 || len(fb.spawned[0].delivered) != 2 {
		t.Errorf("queued packets lost across retry: spawned=%d", len(fb.spawned))
	}
	conservation(t, g)
}

func TestSpawnRetryExhaustionCountsFailureOnce(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.SpawnRetryBudget = 3 })
	fb.failN = 10 // more failures than budget
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	st := g.Stats()
	if st.SpawnRetries != 3 {
		t.Errorf("SpawnRetries = %d, want 3 (budget)", st.SpawnRetries)
	}
	if st.SpawnFailures != 1 {
		t.Errorf("SpawnFailures = %d, want exactly 1 per request", st.SpawnFailures)
	}
	if fb.requests != 4 {
		t.Errorf("backend requests = %d, want 1 + 3 retries", fb.requests)
	}
	if g.NumBindings() != 0 {
		t.Error("exhausted binding not removed")
	}
	conservation(t, g)
	// The address re-binds cleanly once the backend heals.
	fb.failN = 0
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	if b := g.Binding(mon(0)); b == nil || b.State != BindingActive {
		t.Error("re-binding after exhausted retries broken")
	}
}

func TestRetryBackoffSpacing(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.SpawnRetryBudget = 2
		c.SpawnRetryBackoff = 200 * time.Millisecond
	})
	fb.failN = 10
	fb.delay = 0 // isolate the backoff from the clone delay
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	// Attempts at 0, +200ms, +200+400ms; the final failure lands at 600ms.
	if got, want := k.Now(), sim.Start.Add(600*time.Millisecond); got != want {
		t.Errorf("final failure at %v, want %v (exponential backoff)", got, want)
	}
	if g.Stats().SpawnFailures != 1 {
		t.Errorf("SpawnFailures = %d", g.Stats().SpawnFailures)
	}
}

func TestRecycleDuringRetryBackoffStopsRetry(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.SpawnRetryBudget = 2
		c.SpawnRetryBackoff = time.Second
	})
	fb.failNext = true
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.RunFor(600 * time.Millisecond) // first attempt failed, retry pending
	if g.Stats().SpawnRetries != 1 {
		t.Fatalf("SpawnRetries = %d, want 1", g.Stats().SpawnRetries)
	}
	g.RecycleAll(k.Now())
	k.Run()
	// The backoff timer fired against a recycled binding: no new request,
	// no resurrected binding.
	if fb.requests != 1 {
		t.Errorf("backend requests = %d, want 1 (retry cancelled)", fb.requests)
	}
	if g.NumBindings() != 0 {
		t.Error("retry resurrected a recycled binding")
	}
	conservation(t, g)
}

func TestShedModeOnFarmFull(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.ShedOnFull = 2 * time.Second
	})
	fb.failNext = true
	fb.failErr = ErrBackendFull
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run() // spawn fails with farm-full; shed window opens
	if g.Stats().SpawnFailures != 1 {
		t.Fatalf("SpawnFailures = %d", g.Stats().SpawnFailures)
	}
	// New addresses are shed, cheaply, while the window is open.
	for i := 1; i <= 3; i++ {
		g.HandleInbound(k.Now(), syn(ext(i), mon(i)))
	}
	if got := g.Stats().BindingsShed; got != 3 {
		t.Errorf("BindingsShed = %d, want 3", got)
	}
	if g.NumBindings() != 0 || fb.requests != 1 {
		t.Error("shed bindings still hit the backend")
	}
	// After the window, binding works again.
	k.RunUntil(sim.Start.Add(3 * time.Second))
	g.HandleInbound(k.Now(), syn(ext(9), mon(9)))
	k.Run()
	if b := g.Binding(mon(9)); b == nil || b.State != BindingActive {
		t.Error("binding still refused after shed window closed")
	}
	conservation(t, g)
}

func TestShedRequiresFarmFullError(t *testing.T) {
	// A non-capacity failure must not open the shed window.
	g, fb, k := newTestGateway(t, func(c *Config) { c.ShedOnFull = 2 * time.Second })
	fb.failNext = true // fails with ErrFake
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	g.HandleInbound(k.Now(), syn(ext(1), mon(1)))
	k.Run()
	if g.Stats().BindingsShed != 0 {
		t.Errorf("BindingsShed = %d after a non-capacity failure", g.Stats().BindingsShed)
	}
	if b := g.Binding(mon(1)); b == nil || b.State != BindingActive {
		t.Error("binding refused without a farm-full signal")
	}
}

func TestRecycleBindingOnBackendLoss(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	if !g.RecycleBinding(k.Now(), mon(0), "server crash: host0") {
		t.Fatal("RecycleBinding missed a live binding")
	}
	st := g.Stats()
	if st.BackendLost != 1 || st.BindingsRecycled != 1 {
		t.Errorf("BackendLost = %d, BindingsRecycled = %d", st.BackendLost, st.BindingsRecycled)
	}
	if !fb.spawned[0].destroyed {
		t.Error("lost VM not destroyed")
	}
	if g.NumBindings() != 0 {
		t.Error("lost binding survived")
	}
	// Unknown address reports false and changes nothing.
	if g.RecycleBinding(k.Now(), mon(5), "x") {
		t.Error("RecycleBinding invented a binding")
	}
	if g.Stats().BackendLost != 1 {
		t.Error("BackendLost counted a miss")
	}
	// The address re-binds: the crash freed it for reuse.
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	if b := g.Binding(mon(0)); b == nil || b.State != BindingActive {
		t.Error("re-binding after backend loss broken")
	}
	conservation(t, g)
}

func TestRecycleBindingWhilePendingDropsQueue(t *testing.T) {
	g, _, k := newTestGateway(t, nil)
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	g.HandleInbound(k.Now(), syn(ext(1), mon(0))) // queued behind the clone
	if !g.RecycleBinding(k.Now(), mon(0), "server crash: host0") {
		t.Fatal("RecycleBinding missed a pending binding")
	}
	if g.Stats().PendingDropped != 2 {
		t.Errorf("PendingDropped = %d, want 2", g.Stats().PendingDropped)
	}
	k.Run() // late clone completion must not resurrect anything
	if g.NumBindings() != 0 {
		t.Error("late clone resurrected a crashed binding")
	}
	conservation(t, g)
}

func TestFailureEventLog(t *testing.T) {
	var kinds []EventKind
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.SpawnRetryBudget = 1
		c.ShedOnFull = time.Second
		c.EventSink = func(ev Event) { kinds = append(kinds, ev.Kind) }
	})
	fb.failN = 2
	fb.failErr = ErrBackendFull
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	g.HandleInbound(k.Now(), syn(ext(1), mon(1))) // shed
	g.HandleInbound(k.Now(), syn(ext(2), mon(2))) // shed
	want := map[EventKind]int{EvBound: 1, EvSpawnRetry: 1, EvSpawnFail: 1, EvShed: 2}
	got := map[EventKind]int{}
	for _, kind := range kinds {
		got[kind]++
	}
	for kind, n := range want {
		if got[kind] != n {
			t.Errorf("event %q logged %d times, want %d (log: %v)", kind, got[kind], n, kinds)
		}
	}
}
