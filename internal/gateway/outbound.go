package gateway

import (
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Disposition is what the containment engine decided for an outbound
// packet.
type Disposition int

// Outbound dispositions.
const (
	DispDropped Disposition = iota
	DispAllowedOpen
	DispToSource
	DispDNSProxied
	DispInternal  // destination already inside the honeyfarm
	DispReflected // rewritten to a honeyfarm address
	DispProxied   // NATed to a sacrificial host
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case DispDropped:
		return "dropped"
	case DispAllowedOpen:
		return "allowed-open"
	case DispToSource:
		return "to-source"
	case DispDNSProxied:
		return "dns-proxied"
	case DispInternal:
		return "internal"
	case DispReflected:
		return "reflected"
	case DispProxied:
		return "proxied"
	default:
		return "unknown"
	}
}

// HandleOutbound applies containment to a packet originated by the VM
// bound to pkt.Src and returns the disposition. Every honeyfarm-egress
// packet — honeypot replies and worm scans alike — passes through here;
// nothing leaves except via Cfg.ExternalOut.
func (g *Gateway) HandleOutbound(now sim.Time, pkt *netsim.Packet) Disposition {
	b := g.bindings[pkt.Src]
	if b != nil {
		b.LastActive = now
		g.detect(now, b, pkt.Dst)
	}

	// Traffic between honeyfarm addresses stays inside: deliver as
	// inbound. This is what makes reflected VMs reachable and lets
	// worms spread (observably, containedly) within the farm. Under
	// sharding, the owning instance does the delivering.
	if g.Cfg.Space.Contains(pkt.Dst) {
		g.stats.OutInternal++
		if g.reinject != nil && g.owns != nil && !g.owns(pkt.Dst) {
			g.reinject(now, pkt)
		} else {
			g.HandleInbound(now, pkt)
		}
		return DispInternal
	}

	// From here down the packet aims outside the farm: that is one
	// egress attempt, and whichever arm emits to the real world below
	// counts it permitted. The attempted/permitted pair is the
	// containment leak-rate numerator and denominator.
	g.met.outAttempted.Inc()

	switch g.Cfg.Policy {
	case PolicyOpen:
		if !g.allowOutbound(now, b) {
			g.stats.OutDropped++
			return DispDropped
		}
		g.stats.OutAllowedOpen++
		g.met.outPermitted.Inc()
		g.emit(now, pkt)
		return DispAllowedOpen
	case PolicyDropAll:
		// Even drop-all lets DNS through if explicitly configured.
		if d, ok := g.tryDNS(now, pkt); ok {
			return d
		}
		g.stats.OutDropped++
		return DispDropped
	case PolicyReflectSource, PolicyInternalReflect:
		if b != nil && b.isPeer(pkt.Dst) {
			if !g.allowOutbound(now, b) {
				g.stats.OutDropped++
				return DispDropped
			}
			g.stats.OutToSource++
			g.met.outPermitted.Inc()
			g.emit(now, pkt)
			return DispToSource
		}
		if d, ok := g.tryDNS(now, pkt); ok {
			return d
		}
		if d, ok := g.tryProxy(now, pkt); ok {
			return d
		}
		if g.Cfg.Policy == PolicyInternalReflect {
			return g.reflect(now, pkt)
		}
		g.stats.OutDropped++
		return DispDropped
	default:
		g.stats.OutDropped++
		return DispDropped
	}
}

// tryDNS proxies UDP/53 to the configured resolver when allowed.
func (g *Gateway) tryDNS(now sim.Time, pkt *netsim.Packet) (Disposition, bool) {
	if !g.Cfg.AllowDNS || pkt.Proto != netsim.ProtoUDP || pkt.DstPort != 53 {
		return DispDropped, false
	}
	q := pkt.Clone()
	q.Dst = g.Cfg.Resolver
	g.stats.OutDNSProxied++
	g.logEvent(now, EvDNSProxied, pkt.Src, pkt.Dst, "")
	g.emit(now, q)
	return DispDNSProxied, true
}

// reflect redirects an outbound connection to a honeyfarm address,
// creating the binding (and hence a VM impersonating the remote
// endpoint) on delivery. The external destination maps stably to one
// internal address so a whole TCP conversation lands on one VM.
func (g *Gateway) reflect(now sim.Time, pkt *netsim.Packet) Disposition {
	internal, ok := g.reflections[pkt.Dst]
	if !ok {
		if len(g.reflections) >= g.Cfg.ReflectionLimit {
			g.stats.OutReflectDenied++
			g.stats.OutDropped++
			return DispDropped
		}
		internal = g.pickReflectionAddr()
		if internal == 0 {
			g.stats.OutReflectDenied++
			g.stats.OutDropped++
			return DispDropped
		}
		g.reflections[pkt.Dst] = internal
	}
	r := pkt.Clone()
	r.Dst = internal
	g.stats.OutReflected++
	g.logEvent(now, EvReflected, pkt.Src, pkt.Dst, "to "+internal.String())
	// Mark the new binding as reflected so stats and recycling know.
	if _, exists := g.bindings[internal]; !exists {
		if b := g.bind(now, internal, SpawnHint{Reflected: true, Source: pkt.Src}); b == nil {
			return DispDropped
		}
	}
	g.HandleInbound(now, r)
	return DispReflected
}

// pickReflectionAddr finds an unbound address in the monitored space
// (restricted to this instance's shard when sharded, so the reflected
// binding lives where its traffic will be routed).
func (g *Gateway) pickReflectionAddr() netsim.Addr {
	size := g.Cfg.Space.Size()
	for try := 0; try < 64; try++ {
		a := g.Cfg.Space.Nth(g.rng.Uint64n(size))
		if g.owns != nil && !g.owns(a) {
			continue
		}
		if _, bound := g.bindings[a]; !bound {
			return a
		}
	}
	return 0
}

// detect feeds the scan detector with an outbound target attempt.
// Replies to known peers are honeypot fidelity, not scanning, and do
// not count.
func (g *Gateway) detect(now sim.Time, b *Binding, dst netsim.Addr) {
	if g.Cfg.DetectThreshold <= 0 || b.detected || b.isPeer(dst) {
		return
	}
	b.outTargets[dst] = struct{}{}
	if len(b.outTargets) >= g.Cfg.DetectThreshold {
		b.detected = true
		g.stats.DetectedInfected++
		g.met.detected.Inc()
		g.met.detectTime.Observe(float64(now) / 1e6)
		g.logEvent(now, EvDetected, b.Addr, dst, "")
		if g.Cfg.OnDetected != nil {
			g.Cfg.OnDetected(now, b.Addr, len(b.outTargets))
		}
	}
}

// emit sends a packet to the real network (or counts it when no
// external sink is wired).
func (g *Gateway) emit(now sim.Time, pkt *netsim.Packet) {
	g.capture(now, CapEgress, pkt)
	if g.Cfg.ExternalOut != nil {
		g.Cfg.ExternalOut(now, pkt)
	}
}
