package gateway

import (
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func TestRateLimitCapsSustainedEgress(t *testing.T) {
	var out int
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.OutboundLimit = RateLimit{Rate: 2, Burst: 2}
		c.ExternalOut = func(sim.Time, *netsim.Packet) { out++ }
	})
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	// The VM blasts 100 replies/second for 10 seconds toward its peer.
	tick := k.Every(10*time.Millisecond, func(now sim.Time) {
		g.HandleOutbound(now, syn(mon(0), ext(0)))
	})
	k.RunUntil(sim.Start.Add(10 * time.Second))
	tick.Stop()

	// ~2/s sustained + burst 2: expect ≈22, certainly < 40.
	if out < 15 || out > 40 {
		t.Errorf("externalized %d packets, want ~22 under 2/s limit", out)
	}
	if g.Stats().OutRateLimited == 0 {
		t.Error("no rate-limit drops counted")
	}
	if g.Stats().OutRateLimited+uint64(out) < 900 {
		t.Errorf("accounting gap: limited=%d out=%d", g.Stats().OutRateLimited, out)
	}
}

func TestRateLimitAllowsSlowSessions(t *testing.T) {
	var out int
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.OutboundLimit = RateLimit{Rate: 2, Burst: 4}
		c.ExternalOut = func(sim.Time, *netsim.Packet) { out++ }
	})
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	// One reply per second: entirely under the limit.
	tick := k.Every(time.Second, func(now sim.Time) {
		g.HandleOutbound(now, syn(mon(0), ext(0)))
	})
	k.RunUntil(sim.Start.Add(20 * time.Second))
	tick.Stop()
	// The ticker starts after the ~0.5s clone, so 19 or 20 fires — the
	// point is that none of them are limited.
	if out < 19 {
		t.Errorf("externalized %d slow replies, want ~20", out)
	}
	if g.Stats().OutRateLimited != 0 {
		t.Errorf("slow session rate-limited %d times", g.Stats().OutRateLimited)
	}
}

func TestRateLimitPerBinding(t *testing.T) {
	var out int
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.OutboundLimit = RateLimit{Rate: 1, Burst: 1}
		c.ExternalOut = func(sim.Time, *netsim.Packet) { out++ }
	})
	// Two bindings each spend their own burst token simultaneously.
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	g.HandleInbound(k.Now(), syn(ext(1), mon(1)))
	k.Run()
	g.HandleOutbound(k.Now(), syn(mon(0), ext(0)))
	g.HandleOutbound(k.Now(), syn(mon(1), ext(1)))
	if out != 2 {
		t.Errorf("out = %d, want 2 (independent buckets)", out)
	}
	// Both are now empty.
	g.HandleOutbound(k.Now(), syn(mon(0), ext(0)))
	g.HandleOutbound(k.Now(), syn(mon(1), ext(1)))
	if out != 2 {
		t.Errorf("out = %d after empty buckets", out)
	}
}

func TestRateLimitDisabledByDefault(t *testing.T) {
	var out int
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.ExternalOut = func(sim.Time, *netsim.Packet) { out++ }
	})
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	for i := 0; i < 1000; i++ {
		g.HandleOutbound(k.Now(), syn(mon(0), ext(0)))
	}
	if out != 1000 {
		t.Errorf("out = %d, want 1000 with no limit", out)
	}
}

func TestBucketRefill(t *testing.T) {
	rl := RateLimit{Rate: 10, Burst: 5}
	b := &bucket{tokens: 5, last: 0}
	// Drain the burst.
	for i := 0; i < 5; i++ {
		if !b.take(0, rl) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.take(0, rl) {
		t.Fatal("empty bucket granted")
	}
	// 100 ms refills one token at 10/s.
	at := sim.Start.Add(100 * time.Millisecond)
	if !b.take(at, rl) {
		t.Fatal("refilled token denied")
	}
	if b.take(at, rl) {
		t.Fatal("second token granted after single refill")
	}
	// Refill caps at burst.
	at = at.Add(time.Hour)
	granted := 0
	for b.take(at, rl) {
		granted++
	}
	if granted != 5 {
		t.Errorf("granted %d after long idle, want burst 5", granted)
	}
}

func TestDefaultOutboundLimit(t *testing.T) {
	rl := DefaultOutboundLimit()
	if !rl.Enabled() || rl.Rate != 2 {
		t.Errorf("default = %+v", rl)
	}
	if (RateLimit{}).Enabled() {
		t.Error("zero value enabled")
	}
}
