package gateway

import (
	"fmt"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Egress is the surface VM-originated traffic enters the gateway layer
// through. Both a single Gateway and a Sharded set implement it, so the
// farm does not care how many gateway boxes front it.
type Egress interface {
	HandleOutbound(now sim.Time, pkt *netsim.Packet) Disposition
}

// Sharded partitions the monitored space across N independent gateway
// instances — the paper's scaling answer when one gateway box saturates
// (E9's knee): bindings never span shards, so gateways share nothing
// and scale linearly. Shard i owns the addresses whose index within the
// space is ≡ i (mod N); inbound and outbound traffic is routed to the
// owner by destination and source respectively.
type Sharded struct {
	Space  netsim.Prefix
	shards []*Gateway
}

// NewSharded builds n gateways over cfg (each sees the full Space in
// its config — ownership is enforced by the router, and internal
// traffic may legitimately cross shards). It returns an error for a
// non-positive shard count — caller configuration, not an internal
// invariant.
func NewSharded(k *sim.Kernel, cfg Config, backend Backend, n int) (*Sharded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gateway: non-positive shard count %d", n)
	}
	s := &Sharded{Space: cfg.Space}
	for i := 0; i < n; i++ {
		g := New(k, cfg, backend)
		shard := i
		// Ownership: address index mod shard count. Cross-shard
		// internal traffic (VM-to-VM) reinjects through the router;
		// reflections pick shard-local addresses.
		g.SetShardHooks(func(a netsim.Addr) bool {
			return s.Space.Index(a)%uint64(n) == uint64(shard)
		}, s.HandleInbound)
		s.shards = append(s.shards, g)
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardFor returns the gateway owning addr.
func (s *Sharded) shardFor(addr netsim.Addr) *Gateway {
	idx := s.Space.Index(addr) % uint64(len(s.shards))
	return s.shards[idx]
}

// HandleInbound routes a packet to its destination's owning shard.
func (s *Sharded) HandleInbound(now sim.Time, pkt *netsim.Packet) {
	if !s.Space.Contains(pkt.Dst) {
		// Count it somewhere deterministic.
		s.shards[0].HandleInbound(now, pkt)
		return
	}
	s.shardFor(pkt.Dst).HandleInbound(now, pkt)
}

// HandleOutbound implements Egress: VM egress is policy-checked by the
// shard owning the VM's address (which holds its binding and peer
// state).
func (s *Sharded) HandleOutbound(now sim.Time, pkt *netsim.Packet) Disposition {
	if !s.Space.Contains(pkt.Src) {
		return DispDropped
	}
	return s.shardFor(pkt.Src).HandleOutbound(now, pkt)
}

// Stats sums the shard counters.
func (s *Sharded) Stats() Stats {
	var sum Stats
	for _, g := range s.shards {
		st := g.Stats()
		sum.InboundPackets += st.InboundPackets
		sum.InboundNonIP += st.InboundNonIP
		sum.InboundOutside += st.InboundOutside
		sum.BindingsCreated += st.BindingsCreated
		sum.BindingsRecycled += st.BindingsRecycled
		sum.SpawnFailures += st.SpawnFailures
		sum.SpawnRetries += st.SpawnRetries
		sum.BindingsShed += st.BindingsShed
		sum.BackendLost += st.BackendLost
		sum.PendingDropped += st.PendingDropped
		sum.DeliveredToVM += st.DeliveredToVM
		sum.OutAllowedOpen += st.OutAllowedOpen
		sum.OutToSource += st.OutToSource
		sum.OutDNSProxied += st.OutDNSProxied
		sum.OutInternal += st.OutInternal
		sum.OutReflected += st.OutReflected
		sum.OutDropped += st.OutDropped
		sum.OutReflectDenied += st.OutReflectDenied
		sum.DetectedInfected += st.DetectedInfected
		sum.ScanFiltered += st.ScanFiltered
		sum.OutRateLimited += st.OutRateLimited
		sum.OutProxied += st.OutProxied
		sum.ProxyReturns += st.ProxyReturns
		sum.PeakBindings += st.PeakBindings
		sum.ReflectionsActive += st.ReflectionsActive
		sum.PendingQueued += st.PendingQueued
	}
	return sum
}

// NumBindings sums live bindings across shards.
func (s *Sharded) NumBindings() int {
	n := 0
	for _, g := range s.shards {
		n += g.NumBindings()
	}
	return n
}

// Binding finds addr's binding on its owning shard.
func (s *Sharded) Binding(addr netsim.Addr) *Binding {
	if !s.Space.Contains(addr) {
		return nil
	}
	return s.shardFor(addr).Binding(addr)
}

// RecycleBinding implements Recycler on the shard set: the request is
// routed to the shard owning addr.
func (s *Sharded) RecycleBinding(now sim.Time, addr netsim.Addr, detail string) bool {
	if !s.Space.Contains(addr) {
		return false
	}
	return s.shardFor(addr).RecycleBinding(now, addr, detail)
}

// RecycleAll recycles every binding on every shard.
func (s *Sharded) RecycleAll(now sim.Time) {
	for _, g := range s.shards {
		g.RecycleAll(now)
	}
}

// Close stops every shard's background work.
func (s *Sharded) Close() {
	for _, g := range s.shards {
		g.Close()
	}
}

// CheckOwnership verifies the sharding invariant: every binding lives
// on the shard that owns its address.
func (s *Sharded) CheckOwnership() error {
	for i, g := range s.shards {
		for addr := range g.bindings {
			if s.shardFor(addr) != g {
				return fmt.Errorf("gateway: binding %s on shard %d, owner is %d",
					addr, i, s.Space.Index(addr)%uint64(len(s.shards)))
			}
		}
	}
	return nil
}
