package gateway

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"potemkin/internal/mem"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func TestEventLogLifecycle(t *testing.T) {
	var events []Event
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.IdleTimeout = 5 * time.Second
		c.EventSink = func(ev Event) { events = append(events, ev) }
	})
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.RunUntil(sim.Start.Add(time.Minute))
	g.Close()
	_ = fb

	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{EvBound, EvActive, EvRecycled}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	if events[0].Addr != mon(0).String() || events[0].Peer != ext(0).String() {
		t.Errorf("bound event: %+v", events[0])
	}
	// Times are non-decreasing and in seconds.
	if events[2].T < events[0].T {
		t.Error("event times out of order")
	}
}

func TestEventLogSpawnFail(t *testing.T) {
	var events []Event
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.EventSink = func(ev Event) { events = append(events, ev) }
	})
	fb.failNext = true
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	found := false
	for _, ev := range events {
		if ev.Kind == EvSpawnFail && ev.Detail != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no spawn-fail event: %+v", events)
	}
}

func TestEventLogDetectAndReflect(t *testing.T) {
	var events []Event
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyInternalReflect
		c.DetectThreshold = 3
		c.EventSink = func(ev Event) { events = append(events, ev) }
	})
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	for i := 0; i < 4; i++ {
		g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.0.0.1")+netsim.Addr(i)))
		k.Run()
	}
	var sawDetected, sawReflected bool
	for _, ev := range events {
		switch ev.Kind {
		case EvDetected:
			sawDetected = true
		case EvReflected:
			sawReflected = true
			if !strings.Contains(ev.Detail, "to 10.5.") {
				t.Errorf("reflect detail: %q", ev.Detail)
			}
		}
	}
	if !sawDetected || !sawReflected {
		t.Errorf("detected=%v reflected=%v: %+v", sawDetected, sawReflected, events)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := JSONLSink(&buf, nil)
	sink(Event{T: 1.5, Kind: EvBound, Addr: "10.5.0.1", Peer: "1.2.3.4"})
	sink(Event{T: 2.0, Kind: EvRecycled, Addr: "10.5.0.1"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EvBound || ev.Addr != "10.5.0.1" || ev.Peer != "1.2.3.4" || ev.T != 1.5 {
		t.Errorf("decoded: %+v", ev)
	}
	// Omitted peer stays omitted.
	if strings.Contains(lines[1], "peer") {
		t.Errorf("empty peer serialized: %s", lines[1])
	}
}

// TestArenaSinkMatchesJSONLSink: the arena-backed event encoder must
// produce the exact bytes encoding/json would, because sequential,
// parallel, and cluster runs compare event logs byte-for-byte and the
// cluster coordinator may mix worker-flushed and locally-flushed logs.
func TestArenaSinkMatchesJSONLSink(t *testing.T) {
	events := []Event{
		{T: 0, Kind: EvBound, Addr: "10.0.0.1"},
		{T: 1.5, Kind: EvActive, Addr: "10.0.0.2", Peer: "198.51.100.7"},
		{T: 0.001234567, Kind: EvDetected, Addr: "10.0.0.3", Detail: "targets=12"},
		{T: 1e-9, Kind: EvRecycled, Addr: "10.0.0.4"},     // 'e' form, exponent trim
		{T: 3.0000001e21, Kind: EvShed, Addr: "10.0.0.5"}, // large 'e' form
		{T: math.MaxFloat64, Kind: EvShed, Addr: "10.0.0.6"},
		{T: 123456.789, Kind: EvSpawnFail, Addr: "10.0.0.7", Detail: `backend "full" <error> & retry`},
		{T: 2, Kind: EvReflected, Addr: "10.0.0.8", Detail: "tab\tnewline\ncr\rdone"},
		{T: 3, Kind: EvDNSProxied, Addr: "10.0.0.9", Detail: "unicode: héllo —    ✓"},
		{T: 4, Kind: EvBackendLost, Addr: "10.0.0.10", Detail: "ctrl:\x01\x1f"},
		{T: 5, Kind: EvSpawnRetry, Addr: "10.0.0.11", Detail: "bad utf8: \xff\xfe"},
		{T: 6, Kind: EvShed, Addr: "10.0.0.12", Detail: "seps: \u2028 and \u2029."},
	}

	var want bytes.Buffer
	jsonl := JSONLSink(&want, func(err error) { t.Fatalf("JSONLSink: %v", err) })
	arena := mem.NewArena(0)
	asink := ArenaSink(arena)
	for _, ev := range events {
		jsonl(ev)
		asink(ev)
	}
	if !bytes.Equal(want.Bytes(), arena.Bytes()) {
		t.Fatalf("arena encoding diverges from encoding/json\nwant: %q\ngot:  %q",
			want.Bytes(), arena.Bytes())
	}
}

// TestArenaSinkSteadyStateAllocs: once the arena has grown to its
// high-water mark, logging an event allocates nothing — the event log
// is on the per-packet hot path of every gateway shard.
func TestArenaSinkSteadyStateAllocs(t *testing.T) {
	arena := mem.NewArena(1 << 16)
	sink := ArenaSink(arena)
	ev := Event{T: 1.25, Kind: EvBound, Addr: "10.1.2.3", Peer: "198.51.100.9", Detail: "warm"}
	sink(ev)
	arena.Reset()
	if avg := testing.AllocsPerRun(200, func() {
		sink(ev)
		arena.Reset()
	}); avg != 0 {
		t.Fatalf("arena event append allocates %.1f objects, want 0", avg)
	}
}

func TestNoSinkNoOverhead(t *testing.T) {
	g, _, k := newTestGateway(t, nil)
	// Must not panic or allocate events with no sink configured.
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
}
