package gateway

import (
	"bytes"
	"testing"

	"potemkin/internal/netsim"
)

// TestEphemeralPacketClonedWhenQueued models the zero-copy ingest path:
// the wire bridge hands the gateway a packet backed by a pooled frame
// buffer, marked Ephemeral, and reuses the storage as soon as the
// dispatch returns. A packet queued on a pending binding must therefore
// be cloned — the bytes delivered to the VM later must be the ones that
// arrived, not whatever the pool wrote next.
func TestEphemeralPacketClonedWhenQueued(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)

	backing := []byte("original exploit bytes")
	pkt := syn(ext(0), mon(0))
	pkt.Payload = backing
	pkt.Ephemeral = true
	g.HandleInbound(k.Now(), pkt)

	// The "frame pool" reclaims the storage: scribble over the payload
	// and the packet struct itself.
	copy(backing, bytes.Repeat([]byte("X"), len(backing)))
	*pkt = netsim.Packet{}

	k.Run() // clone completes, queued packets flush to the VM
	if len(fb.spawned) != 1 || len(fb.spawned[0].delivered) != 1 {
		t.Fatalf("expected 1 delivered packet, got %+v", fb.spawned)
	}
	got := fb.spawned[0].delivered[0]
	if string(got.Payload) != "original exploit bytes" {
		t.Fatalf("delivered payload = %q — pending queue aliased the pooled frame", got.Payload)
	}
	if got.Ephemeral {
		t.Fatal("queued clone still marked Ephemeral")
	}
	if got.Dst != mon(0) || got.Src != ext(0) {
		t.Fatalf("delivered header corrupted: %+v", got)
	}
}
