// Package gateway implements the Potemkin gateway router — the control
// point the paper's architecture hangs on. The gateway:
//
//   - receives telescope traffic (GRE-tunnelled from border routers),
//     binds destination IPs to VMs on demand, and queues packets while a
//     flash clone is in flight (scalability: physical resources are
//     committed only to addresses that receive traffic);
//   - tracks per-binding peers so honeypot replies reach the scanner
//     that elicited them (fidelity);
//   - enforces containment on all VM-originated traffic: deny by
//     default, allow replies to the eliciting source, proxy DNS to a
//     safe resolver, and optionally reflect other outbound connections
//     back into the honeyfarm so the next stage of a multi-stage
//     infection is captured rather than released;
//   - recycles idle VMs so a small farm covers a large address space.
//
// The gateway operates on real wire bytes at its edges (GRE decap,
// header parse) so its throughput benchmarks (E4) measure honest work.
package gateway

import (
	"container/heap"
	"errors"
	"sort"
	"time"

	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// Policy selects the outbound-containment mode.
type Policy int

// Containment policies, in decreasing order of permissiveness.
const (
	// PolicyOpen forwards all outbound traffic to the real network —
	// the dangerous baseline the paper argues against. Only for
	// experiments measuring leakage.
	PolicyOpen Policy = iota
	// PolicyDropAll drops every VM-originated packet that is not
	// addressed inside the honeyfarm. Maximum containment, minimum
	// fidelity (even replies to the scanner are lost).
	PolicyDropAll
	// PolicyReflectSource additionally allows packets addressed to a
	// remote that previously contacted the same VM (replies/handshakes).
	PolicyReflectSource
	// PolicyInternalReflect additionally redirects other outbound
	// connections to fresh honeyfarm addresses, spawning new VMs to
	// play the remote side — capturing multi-stage behaviour without
	// leaking a byte.
	PolicyInternalReflect
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyOpen:
		return "open"
	case PolicyDropAll:
		return "drop-all"
	case PolicyReflectSource:
		return "reflect-source"
	case PolicyInternalReflect:
		return "internal-reflect"
	default:
		return "unknown"
	}
}

// VMRef is the gateway's handle on a farm VM.
type VMRef interface {
	// Deliver hands the VM an inbound packet.
	Deliver(now sim.Time, pkt *netsim.Packet)
	// Destroy reclaims the VM.
	Destroy(now sim.Time)
}

// SpawnHint tells the backend why a VM is being created.
type SpawnHint struct {
	// Reflected marks VMs created by internal reflection.
	Reflected bool
	// Source is the address whose traffic triggered the spawn.
	Source netsim.Addr
}

// Backend creates VMs on demand. The farm implements it; tests use
// fakes. ready must eventually be called exactly once, with either a
// VMRef or an error (capacity exhausted).
type Backend interface {
	RequestVM(now sim.Time, addr netsim.Addr, hint SpawnHint, ready func(VMRef, error))
}

// ErrBackendFull is the sentinel a Backend wraps into (or matches via
// an Is method on) the error it hands ready when its entire pool is at
// capacity — as opposed to a transient, retryable failure. The
// gateway's shed mode (Config.ShedOnFull) keys off it.
var ErrBackendFull = errors.New("backend at capacity")

// Recycler is implemented by gateway frontends (Gateway and Sharded)
// that can tear a binding down on demand. The backend calls it when it
// loses a VM out from under a binding — a crashed server — so the
// address is released for rebinding instead of pointing at a corpse.
type Recycler interface {
	RecycleBinding(now sim.Time, addr netsim.Addr, detail string) bool
}

// Config parameterizes a gateway.
type Config struct {
	// Space is the monitored address range the gateway answers for.
	Space netsim.Prefix

	Policy Policy

	// AllowDNS permits VM-originated UDP/53, rewritten to Resolver.
	AllowDNS bool
	Resolver netsim.Addr

	// IdleTimeout recycles a binding after this much inactivity.
	// Zero disables idle recycling.
	IdleTimeout time.Duration
	// MaxLifetime recycles a binding regardless of activity. Zero
	// disables the cap.
	MaxLifetime time.Duration

	// PendingLimit bounds packets queued per binding during cloning.
	PendingLimit int
	// MaxPeers bounds remembered remote peers per binding.
	MaxPeers int
	// ReflectionLimit bounds live internally-reflected bindings.
	ReflectionLimit int

	// DetectThreshold flags a VM as compromised after it attempts
	// outbound contact with this many distinct remotes. Zero disables
	// detection.
	DetectThreshold int

	// PinDetected exempts bindings flagged by the scan detector from
	// idle/lifetime recycling, quarantining the infected VM for
	// analysis instead of destroying the evidence.
	PinDetected bool

	// SpawnRetryBudget re-requests a VM from the backend after a failed
	// spawn, up to this many extra attempts per binding, before the
	// binding is torn down. Zero disables retries (every failure is
	// final, the pre-fault behaviour).
	SpawnRetryBudget int
	// SpawnRetryBackoff is the delay before the first spawn retry; it
	// doubles on each subsequent attempt. Zero defaults to 100 ms when
	// SpawnRetryBudget is positive.
	SpawnRetryBackoff time.Duration

	// ShedOnFull enables graceful degradation under farm exhaustion:
	// after a spawn fails with ErrBackendFull, new bindings are refused
	// (counted as BindingsShed, logged as EvShed) for this duration
	// instead of queueing more doomed clone requests. Existing bindings
	// and their pending queues are untouched. Zero disables shedding.
	ShedOnFull time.Duration

	// ScanFilter, when positive, sheds load from repeat scanners: once
	// a source has had N probes to the same destination port answered,
	// further probes from it to *unbound* addresses are dropped without
	// instantiating a VM. (The paper argues a honeyfarm must filter
	// redundant scans or a single loud scanner will consume the farm.)
	// Probes to already-bound addresses always pass, so an established
	// conversation is never cut. Zero disables filtering.
	ScanFilter int

	// ExternalOut receives packets the policy allows to leave (open
	// policy, reflect-to-source, DNS). Nil means count-and-drop.
	ExternalOut func(now sim.Time, pkt *netsim.Packet)

	// OnDetected fires when the scan detector flags a binding.
	OnDetected func(now sim.Time, addr netsim.Addr, distinctTargets int)

	// ProxyRules forwards VM-originated traffic on specific destination
	// ports to sacrificial hosts (NATed through ProxyAddr), the paper's
	// containment option for protocols too rich to fake. Applies under
	// ReflectSource and InternalReflect before reflection/drop.
	ProxyRules map[uint16]ProxyRule
	// ProxyAddr is the gateway-owned external address proxy flows are
	// NATed through; returns addressed to it are rewritten back.
	ProxyAddr netsim.Addr

	// OutboundLimit rate-limits externalized packets per binding (the
	// containment middle ground: worms throttle to uselessness, real
	// sessions barely notice). The zero value disables limiting.
	OutboundLimit RateLimit

	// EventSink, when set, receives the forensic event log (see
	// JSONLSink). Nil disables logging.
	EventSink EventSink

	// Tracer, when set, records every binding's lifecycle as a span
	// tree (bind → spawn → place → clone → active → recycle) and folds
	// the forensic event kinds into span events, so the trace and the
	// event log share one source of truth. Nil (the default) disables
	// tracing; the hot paths then pay a single nil check.
	Tracer *trace.Tracer

	// Capture, when set, taps every packet crossing the gateway (see
	// CaptureSink). Nil disables capture.
	Capture CaptureSink

	// Metrics, when set, registers live telemetry counters/gauges
	// (gateway_* series) updated alongside Stats. Nil (the default)
	// disables telemetry; the hot paths then pay a single nil check per
	// instrument. Shard domains share one registry — the instruments
	// are atomic and order-independent, so concurrent shards cannot
	// perturb the exposed values.
	Metrics *metrics.Registry
}

// DefaultConfig returns the standard experiment configuration: a /16,
// internal reflection, DNS allowed, 60 s idle recycling.
func DefaultConfig() Config {
	return Config{
		Space:           netsim.MustParsePrefix("10.5.0.0/16"),
		Policy:          PolicyInternalReflect,
		AllowDNS:        true,
		Resolver:        netsim.MustParseAddr("172.16.0.53"),
		IdleTimeout:     60 * time.Second,
		PendingLimit:    64,
		MaxPeers:        64,
		ReflectionLimit: 4096,
		DetectThreshold: 5,
	}
}

// Stats counts gateway activity. All counters are cumulative.
type Stats struct {
	// Inbound path.
	InboundPackets   uint64
	InboundNonIP     uint64 // undecodable frames
	InboundOutside   uint64 // destination outside the monitored space
	BindingsCreated  uint64
	BindingsRecycled uint64
	SpawnFailures    uint64
	SpawnRetries     uint64 // failed spawns re-requested after backoff
	BindingsShed     uint64 // new bindings refused while shedding load
	BackendLost      uint64 // bindings recycled because the backend lost their VM
	PendingDropped   uint64 // queue overflow during clone
	DeliveredToVM    uint64

	// Outbound path, by disposition.
	OutAllowedOpen    uint64 // PolicyOpen pass-through
	OutToSource       uint64 // replies to eliciting remote
	OutDNSProxied     uint64
	OutInternal       uint64 // dst already inside the honeyfarm
	OutReflected      uint64 // redirected by internal reflection
	OutDropped        uint64
	OutReflectDenied  uint64 // reflection limit hit
	DetectedInfected  uint64
	ScanFiltered      uint64 // inbound probes shed by the scan filter
	OutRateLimited    uint64 // externalized packets dropped by the rate limit
	OutProxied        uint64 // packets NATed to sacrificial hosts
	ProxyReturns      uint64 // sacrificial-host replies rewritten back
	PeakBindings      int
	ReflectionsActive int
	// PendingQueued is the current number of packets waiting in pending
	// queues across all bindings mid-clone — a live gauge, not a
	// cumulative counter.
	PendingQueued int
}

// Gateway is the honeyfarm's routing and containment engine. It is
// single-threaded under the sim kernel, like the rest of the simulated
// control plane; the wire-level entry points used by benchmarks are
// pure functions of gateway state.
type Gateway struct {
	Cfg Config
	K   *sim.Kernel

	backend  Backend
	bindings map[netsim.Addr]*Binding
	// reflections maps external destination -> honeyfarm address chosen
	// for it, so one remote endpoint is impersonated by one stable VM.
	reflections map[netsim.Addr]netsim.Addr
	// scanSeen counts serviced probes per (source, dstPort) for the
	// scan filter.
	scanSeen map[scanKey]int
	// Proxy NAT state: gateway port <-> proxied flow.
	nat      map[uint16]natEntry
	natPorts map[natEntry]uint16
	rng      *sim.RNG
	stats    Stats
	scrub    *sim.Ticker
	// expiry indexes bindings by recycling deadline (see expiry.go);
	// expirySeq breaks deadline ties deterministically.
	expiry    expiryHeap
	expirySeq uint64
	// pendingDepth is the live count of packets queued across all
	// pending bindings (the Stats.PendingQueued gauge).
	pendingDepth int
	// shedUntil, while in the future, refuses new bindings (ShedOnFull).
	shedUntil sim.Time

	// Sharding hooks (set by Sharded; nil for a standalone gateway):
	// owns restricts which monitored addresses this instance may bind,
	// and reinject routes internal traffic for addresses it does not
	// own back through the shard router.
	owns     func(netsim.Addr) bool
	reinject func(now sim.Time, pkt *netsim.Packet)

	// met holds the live-telemetry instrument handles (all nil when
	// Cfg.Metrics is nil — every method on them is then a no-op).
	met gatewayMetrics
}

// gatewayMetrics are the registry handles, resolved once in New.
type gatewayMetrics struct {
	inbound       *metrics.Counter
	created       *metrics.Counter
	recycled      *metrics.Counter
	shed          *metrics.Counter
	delivered     *metrics.Counter
	spawnRetries  *metrics.Counter
	spawnFailures *metrics.Counter
	backendLost   *metrics.Counter
	detected      *metrics.Counter
	proxied       *metrics.Counter
	proxyReturns  *metrics.Counter
	bindingsLive  *metrics.Gauge
	pendingQueued *metrics.Gauge
	// Scorecard taps: every outbound packet that aims outside the farm
	// counts as attempted; only the ones the policy actually lets reach
	// the world count as permitted. detectTime records the sim-time (ms
	// since start) of each scan-detector firing, so Min is the farm's
	// time-to-first-detection.
	outAttempted *metrics.Counter
	outPermitted *metrics.Counter
	detectTime   *metrics.Hist
}

// scanKey identifies a scanner's probe signature.
type scanKey struct {
	src  netsim.Addr
	port uint16
}

// New creates a gateway over backend.
func New(k *sim.Kernel, cfg Config, backend Backend) *Gateway {
	if cfg.PendingLimit <= 0 {
		cfg.PendingLimit = 64
	}
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = 64
	}
	if cfg.ReflectionLimit <= 0 {
		cfg.ReflectionLimit = 4096
	}
	g := &Gateway{
		Cfg:         cfg,
		K:           k,
		backend:     backend,
		bindings:    make(map[netsim.Addr]*Binding),
		reflections: make(map[netsim.Addr]netsim.Addr),
		scanSeen:    make(map[scanKey]int),
		nat:         make(map[uint16]natEntry),
		natPorts:    make(map[natEntry]uint16),
		rng:         k.Stream("gateway"),
	}
	if m := cfg.Metrics; m != nil {
		g.met = gatewayMetrics{
			inbound:       m.Counter("gateway_inbound_packets_total"),
			created:       m.Counter("gateway_bindings_created_total"),
			recycled:      m.Counter("gateway_bindings_recycled_total"),
			shed:          m.Counter("gateway_bindings_shed_total"),
			delivered:     m.Counter("gateway_delivered_to_vm_total"),
			spawnRetries:  m.Counter("gateway_spawn_retries_total"),
			spawnFailures: m.Counter("gateway_spawn_failures_total"),
			backendLost:   m.Counter("gateway_backend_lost_total"),
			detected:      m.Counter("gateway_detected_infected_total"),
			proxied:       m.Counter("gateway_out_proxied_total"),
			proxyReturns:  m.Counter("gateway_proxy_returns_total"),
			bindingsLive:  m.Gauge("gateway_bindings_live"),
			pendingQueued: m.Gauge("gateway_pending_queued"),
			outAttempted:  m.Counter("gateway_egress_attempted_total"),
			outPermitted:  m.Counter("gateway_egress_permitted_total"),
			detectTime:    m.Hist("gateway_detect_time_ms"),
		}
	}
	g.startScrubber()
	return g
}

// SetShardHooks installs the sharding hooks: owns restricts which
// monitored addresses this instance may bind (reflection targets are
// drawn from owned addresses only), and reinject routes internal
// traffic for addresses it does not own back to the owning shard.
// Sharded uses it for the in-process router; the parallel shard engine
// uses it to hand cross-shard traffic to the epoch barrier. Call before
// traffic flows; nil hooks restore standalone behaviour.
func (g *Gateway) SetShardHooks(owns func(netsim.Addr) bool, reinject func(now sim.Time, pkt *netsim.Packet)) {
	g.owns = owns
	g.reinject = reinject
}

// Stats returns a copy of the counters.
func (g *Gateway) Stats() Stats {
	s := g.stats
	s.ReflectionsActive = len(g.reflections)
	s.PendingQueued = g.pendingDepth
	return s
}

// NumBindings returns the number of live bindings (pending + active).
func (g *Gateway) NumBindings() int { return len(g.bindings) }

// Binding returns the binding for addr, or nil.
func (g *Gateway) Binding(addr netsim.Addr) *Binding { return g.bindings[addr] }

// Close stops background recycling.
func (g *Gateway) Close() {
	if g.scrub != nil {
		g.scrub.Stop()
	}
}

func (g *Gateway) startScrubber() {
	if g.Cfg.IdleTimeout == 0 && g.Cfg.MaxLifetime == 0 {
		return
	}
	period := g.Cfg.IdleTimeout / 4
	if period == 0 || (g.Cfg.MaxLifetime > 0 && g.Cfg.MaxLifetime/4 < period) {
		period = g.Cfg.MaxLifetime / 4
	}
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	g.scrub = g.K.Every(period, g.scrubOnce)
}

// Scrub runs one recycling pass immediately (operational tooling and
// benchmarks; the background ticker calls the same pass).
func (g *Gateway) Scrub(now sim.Time) { g.scrubOnce(now) }

// scrubOnce recycles bindings that exceeded idle or lifetime limits,
// driven by the expiry heap: only entries whose pushed deadline has
// arrived are examined, so a tick over a quiet steady state is O(1).
// Expired addresses are recycled in sorted order so the event log is a
// pure function of the seed.
func (g *Gateway) scrubOnce(now sim.Time) {
	var expired []netsim.Addr
	var requeue []*Binding
	var requeueAddrs []netsim.Addr
	for len(g.expiry) > 0 && g.expiry[0].at <= now {
		e := heap.Pop(&g.expiry).(expiryEntry)
		b, ok := g.bindings[e.addr]
		if !ok || b != e.b {
			continue // stale: recycled, or the address was rebound
		}
		if g.Cfg.PinDetected && b.detected {
			continue // quarantined for analysis; detected is sticky
		}
		at, _ := g.bindingDeadline(b)
		if b.State != BindingActive || at > now {
			// Mid-clone (never recycle those), or activity pushed the
			// real deadline past the one recorded at push time. Re-push
			// after the pop loop — a pending binding's deadline may
			// already have arrived, and pushing it now would pop again
			// in this same pass.
			requeue = append(requeue, b)
			requeueAddrs = append(requeueAddrs, e.addr)
			continue
		}
		expired = append(expired, e.addr)
	}
	for i, b := range requeue {
		g.scheduleExpiry(requeueAddrs[i], b)
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, addr := range expired {
		g.recycle(now, addr, g.bindings[addr])
	}
}

func (g *Gateway) recycle(now sim.Time, addr netsim.Addr, b *Binding) {
	g.logEvent(now, EvRecycled, addr, 0, "")
	g.pendingDepth -= len(b.pending)
	g.met.pendingQueued.Add(-int64(len(b.pending)))
	if b.VM != nil {
		b.VM.Destroy(now)
	}
	delete(g.bindings, addr)
	if b.Hint.Reflected {
		// Drop the reflection route so a later contact re-instantiates.
		for ext, internal := range g.reflections {
			if internal == addr {
				delete(g.reflections, ext)
			}
		}
	}
	g.stats.BindingsRecycled++
	g.met.recycled.Inc()
	g.met.bindingsLive.Add(-1)
	if tr := g.Cfg.Tracer; tr != nil && b.span != nil {
		b.activeSpan.Finish(now)
		if b.spawnSpan != nil && !b.spawnSpan.Done() {
			b.spawnSpan.Event(now, "abandoned", "recycled mid-clone")
			b.spawnSpan.Finish(now)
		}
		b.span.Finish(now)
		// Drop the whole context stack for the address: if recycle ran
		// inside a synchronous spawn callback the spawn span is still
		// pushed above the root, and a plain Pop would strand it.
		tr.Clear(uint64(addr))
	}
}

// RecycleBinding implements Recycler: the backend reports it lost the
// VM behind addr (server crash), so the binding is recycled and the
// address freed for rebinding. Queued packets on a still-pending
// binding are dropped. Reports whether a binding existed.
func (g *Gateway) RecycleBinding(now sim.Time, addr netsim.Addr, detail string) bool {
	b, ok := g.bindings[addr]
	if !ok {
		return false
	}
	g.stats.BackendLost++
	g.met.backendLost.Inc()
	g.stats.PendingDropped += uint64(len(b.pending))
	g.logEvent(now, EvBackendLost, addr, 0, detail)
	g.recycle(now, addr, b)
	return true
}

// RecycleAll destroys every binding (end of experiment), in sorted
// address order for a reproducible event log.
func (g *Gateway) RecycleAll(now sim.Time) {
	addrs := make([]netsim.Addr, 0, len(g.bindings))
	for addr := range g.bindings {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		g.recycle(now, addr, g.bindings[addr])
	}
}
