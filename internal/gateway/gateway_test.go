package gateway

import (
	"testing"
	"time"

	"potemkin/internal/gre"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// fakeVM records deliveries and destruction.
type fakeVM struct {
	addr      netsim.Addr
	delivered []*netsim.Packet
	destroyed bool
}

func (f *fakeVM) Deliver(_ sim.Time, pkt *netsim.Packet) { f.delivered = append(f.delivered, pkt) }
func (f *fakeVM) Destroy(_ sim.Time)                     { f.destroyed = true }

// fakeBackend spawns fakeVMs after a configurable clone delay.
type fakeBackend struct {
	k        *sim.Kernel
	delay    time.Duration
	failNext bool  // fail the next request only
	failN    int   // fail the next N requests
	failErr  error // error to fail with (default ErrFake)
	spawned  []*fakeVM
	requests int
}

func (fb *fakeBackend) RequestVM(now sim.Time, addr netsim.Addr, hint SpawnHint, ready func(VMRef, error)) {
	fb.requests++
	if fb.failNext || fb.failN > 0 {
		fb.failNext = false
		if fb.failN > 0 {
			fb.failN--
		}
		err := fb.failErr
		if err == nil {
			err = ErrFake
		}
		fb.k.After(fb.delay, func(sim.Time) { ready(nil, err) })
		return
	}
	vm := &fakeVM{addr: addr}
	fb.spawned = append(fb.spawned, vm)
	fb.k.After(fb.delay, func(sim.Time) { ready(vm, nil) })
}

// ErrFake is the fake backend's spawn failure.
var ErrFake = errFake{}

type errFake struct{}

func (errFake) Error() string { return "fake spawn failure" }

func newTestGateway(t *testing.T, mutate func(*Config)) (*Gateway, *fakeBackend, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel(11)
	fb := &fakeBackend{k: k, delay: 500 * time.Millisecond}
	cfg := DefaultConfig()
	cfg.IdleTimeout = 0 // most tests manage recycling explicitly
	if mutate != nil {
		mutate(&cfg)
	}
	return New(k, cfg, fb), fb, k
}

func ext(i int) netsim.Addr { return netsim.MustParseAddr("200.1.1.1") + netsim.Addr(i) }
func mon(i int) netsim.Addr { return netsim.MustParseAddr("10.5.0.1") + netsim.Addr(i) }
func syn(src, dst netsim.Addr) *netsim.Packet {
	return netsim.TCPSyn(src, dst, 40000, 445, 7)
}

func TestInboundCreatesBindingAndQueues(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	if g.NumBindings() != 1 {
		t.Fatalf("bindings = %d", g.NumBindings())
	}
	b := g.Binding(mon(0))
	if b.State != BindingPending {
		t.Errorf("state = %v", b.State)
	}
	// Second packet while pending also queues.
	g.HandleInbound(k.Now(), syn(ext(1), mon(0)))
	k.Run()
	if b.State != BindingActive {
		t.Errorf("state after clone = %v", b.State)
	}
	if len(fb.spawned) != 1 {
		t.Fatalf("spawned = %d", len(fb.spawned))
	}
	if got := len(fb.spawned[0].delivered); got != 2 {
		t.Errorf("delivered = %d, want 2 (queued packets flushed)", got)
	}
	if fb.requests != 1 {
		t.Errorf("requests = %d, want 1 (one VM per address)", fb.requests)
	}
}

func TestInboundAfterActiveDeliversDirectly(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	if got := len(fb.spawned[0].delivered); got != 2 {
		t.Errorf("delivered = %d", got)
	}
	if g.Stats().DeliveredToVM != 2 {
		t.Errorf("DeliveredToVM = %d", g.Stats().DeliveredToVM)
	}
}

func TestInboundOutsideSpaceIgnored(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	g.HandleInbound(k.Now(), syn(ext(0), netsim.MustParseAddr("11.0.0.1")))
	if g.NumBindings() != 0 || fb.requests != 0 {
		t.Error("binding created for address outside space")
	}
	if g.Stats().InboundOutside != 1 {
		t.Errorf("InboundOutside = %d", g.Stats().InboundOutside)
	}
}

func TestPendingQueueOverflow(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) { c.PendingLimit = 3 })
	for i := 0; i < 10; i++ {
		g.HandleInbound(k.Now(), syn(ext(i), mon(0)))
	}
	if got := g.Stats().PendingDropped; got != 7 {
		t.Errorf("PendingDropped = %d, want 7", got)
	}
}

func TestSpawnFailureCleansBinding(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	fb.failNext = true
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	if g.NumBindings() != 0 {
		t.Error("failed binding not removed")
	}
	if g.Stats().SpawnFailures != 1 {
		t.Errorf("SpawnFailures = %d", g.Stats().SpawnFailures)
	}
	// Address can be re-bound afterwards.
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	if g.NumBindings() != 1 || g.Binding(mon(0)).State != BindingActive {
		t.Error("re-binding after failure broken")
	}
}

func TestGREFrameInbound(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	inner := syn(ext(0), mon(0))
	frame := gre.Encap(&gre.Header{HasKey: true, Key: 1}, inner.Marshal())
	g.HandleGREFrame(k.Now(), frame)
	k.Run()
	if len(fb.spawned) != 1 || len(fb.spawned[0].delivered) != 1 {
		t.Fatal("GRE frame did not reach VM")
	}
	got := fb.spawned[0].delivered[0]
	if got.Src != inner.Src || got.Dst != inner.Dst || got.DstPort != 445 {
		t.Errorf("inner packet mangled: %s", got)
	}
}

func TestGREFrameGarbageCounted(t *testing.T) {
	g, _, k := newTestGateway(t, nil)
	g.HandleGREFrame(k.Now(), []byte{1, 2, 3})
	g.HandleGREFrame(k.Now(), gre.Encap(&gre.Header{}, []byte("not ip")))
	if g.Stats().InboundNonIP != 2 {
		t.Errorf("InboundNonIP = %d", g.Stats().InboundNonIP)
	}
}

func TestIdleRecycling(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.IdleTimeout = 5 * time.Second })
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.RunUntil(sim.Start.Add(2 * time.Second)) // clone done, VM active
	if g.NumBindings() != 1 {
		t.Fatal("binding missing")
	}
	k.RunUntil(sim.Start.Add(30 * time.Second))
	if g.NumBindings() != 0 {
		t.Error("idle binding not recycled")
	}
	if !fb.spawned[0].destroyed {
		t.Error("VM not destroyed on recycle")
	}
	if g.Stats().BindingsRecycled != 1 {
		t.Errorf("BindingsRecycled = %d", g.Stats().BindingsRecycled)
	}
	g.Close()
}

func TestActivityPreventsRecycling(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) { c.IdleTimeout = 5 * time.Second })
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	// Keep the binding warm with traffic every 2 s for 60 s.
	tick := k.Every(2*time.Second, func(now sim.Time) {
		g.HandleInbound(now, syn(ext(0), mon(0)))
	})
	k.RunUntil(sim.Start.Add(60 * time.Second))
	tick.Stop()
	if g.NumBindings() != 1 {
		t.Error("active binding recycled")
	}
	k.RunUntil(sim.Start.Add(120 * time.Second))
	if g.NumBindings() != 0 {
		t.Error("binding survived after traffic stopped")
	}
	g.Close()
}

func TestMaxLifetimeRecycling(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) { c.MaxLifetime = 10 * time.Second })
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	tick := k.Every(time.Second, func(now sim.Time) {
		g.HandleInbound(now, syn(ext(0), mon(0)))
	})
	k.RunUntil(sim.Start.Add(30 * time.Second))
	tick.Stop()
	if g.Stats().BindingsRecycled == 0 {
		t.Error("lifetime cap never recycled an active binding")
	}
	g.Close()
}

func TestRecycleDuringCloneDestroysLateVM(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	// Recycle everything before the clone lands.
	g.RecycleAll(k.Now())
	k.Run()
	if len(fb.spawned) != 1 {
		t.Fatal("no spawn")
	}
	if !fb.spawned[0].destroyed {
		t.Error("late VM not destroyed")
	}
	if g.NumBindings() != 0 {
		t.Error("phantom binding")
	}
}

// --- outbound containment ---

func outboundFrom(t *testing.T, g *Gateway, k *sim.Kernel, vmAddr netsim.Addr) {
	t.Helper()
	g.HandleInbound(k.Now(), syn(ext(0), vmAddr))
	k.Run()
}

func TestPolicyOpenForwards(t *testing.T) {
	var leaked []*netsim.Packet
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyOpen
		c.ExternalOut = func(_ sim.Time, p *netsim.Packet) { leaked = append(leaked, p) }
	})
	outboundFrom(t, g, k, mon(0))
	d := g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.9.9.9")))
	if d != DispAllowedOpen || len(leaked) != 1 {
		t.Errorf("disposition = %v, leaked = %d", d, len(leaked))
	}
}

func TestPolicyDropAllContains(t *testing.T) {
	var leaked int
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyDropAll
		c.AllowDNS = false
		c.ExternalOut = func(sim.Time, *netsim.Packet) { leaked++ }
	})
	outboundFrom(t, g, k, mon(0))
	// Even a reply to the eliciting source is dropped.
	if d := g.HandleOutbound(k.Now(), syn(mon(0), ext(0))); d != DispDropped {
		t.Errorf("reply disposition = %v", d)
	}
	if d := g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.9.9.9"))); d != DispDropped {
		t.Errorf("scan disposition = %v", d)
	}
	if leaked != 0 {
		t.Errorf("leaked %d packets under drop-all", leaked)
	}
}

func TestPolicyReflectSourceAllowsRepliesOnly(t *testing.T) {
	var out []*netsim.Packet
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.ExternalOut = func(_ sim.Time, p *netsim.Packet) { out = append(out, p) }
	})
	outboundFrom(t, g, k, mon(0)) // ext(0) contacted mon(0)
	if d := g.HandleOutbound(k.Now(), syn(mon(0), ext(0))); d != DispToSource {
		t.Errorf("reply disposition = %v", d)
	}
	if d := g.HandleOutbound(k.Now(), syn(mon(0), ext(5))); d != DispDropped {
		t.Errorf("non-peer disposition = %v", d)
	}
	if len(out) != 1 || out[0].Dst != ext(0) {
		t.Errorf("externalized: %v", out)
	}
}

func TestDNSProxied(t *testing.T) {
	var out []*netsim.Packet
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.AllowDNS = true
		c.ExternalOut = func(_ sim.Time, p *netsim.Packet) { out = append(out, p) }
	})
	outboundFrom(t, g, k, mon(0))
	q := netsim.UDPDatagram(mon(0), netsim.MustParseAddr("4.4.4.4"), 5353, 53, []byte("query"))
	if d := g.HandleOutbound(k.Now(), q); d != DispDNSProxied {
		t.Fatalf("disposition = %v", d)
	}
	if len(out) != 1 || out[0].Dst != g.Cfg.Resolver {
		t.Errorf("DNS not rewritten to resolver: %v", out)
	}
	// Original packet must not be mutated (clone semantics).
	if q.Dst != netsim.MustParseAddr("4.4.4.4") {
		t.Error("original packet mutated")
	}
}

func TestInternalTrafficStaysInside(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.Policy = PolicyDropAll })
	outboundFrom(t, g, k, mon(0))
	// VM at mon(0) talks to mon(7): delivered inbound, new VM spawned.
	d := g.HandleOutbound(k.Now(), syn(mon(0), mon(7)))
	if d != DispInternal {
		t.Fatalf("disposition = %v", d)
	}
	k.Run()
	if len(fb.spawned) != 2 {
		t.Errorf("spawned = %d, want 2", len(fb.spawned))
	}
	if g.Stats().OutInternal != 1 {
		t.Errorf("OutInternal = %d", g.Stats().OutInternal)
	}
}

func TestInternalReflection(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.Policy = PolicyInternalReflect })
	outboundFrom(t, g, k, mon(0))
	target := netsim.MustParseAddr("99.9.9.9")
	d := g.HandleOutbound(k.Now(), syn(mon(0), target))
	if d != DispReflected {
		t.Fatalf("disposition = %v", d)
	}
	k.Run()
	if len(fb.spawned) != 2 {
		t.Fatalf("spawned = %d, want reflected VM", len(fb.spawned))
	}
	refVM := fb.spawned[1]
	if len(refVM.delivered) != 1 {
		t.Fatalf("reflected VM deliveries = %d", len(refVM.delivered))
	}
	got := refVM.delivered[0]
	if !g.Cfg.Space.Contains(got.Dst) {
		t.Errorf("reflected packet dst %s outside space", got.Dst)
	}
	if got.Src != mon(0) {
		t.Errorf("reflected packet src = %s", got.Src)
	}
	// Stable mapping: a second packet to the same external target lands
	// on the same internal address.
	d2 := g.HandleOutbound(k.Now(), syn(mon(0), target))
	if d2 != DispReflected {
		t.Fatalf("second disposition = %v", d2)
	}
	k.Run()
	if len(fb.spawned) != 2 {
		t.Errorf("second reflection spawned a new VM")
	}
	if len(refVM.delivered) != 2 {
		t.Errorf("reflected VM deliveries = %d, want 2", len(refVM.delivered))
	}
}

func TestReflectionLimit(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyInternalReflect
		c.ReflectionLimit = 2
	})
	outboundFrom(t, g, k, mon(0))
	for i := 0; i < 5; i++ {
		g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.9.9.9")+netsim.Addr(i)))
	}
	st := g.Stats()
	if st.OutReflected != 2 {
		t.Errorf("OutReflected = %d, want 2", st.OutReflected)
	}
	if st.OutReflectDenied != 3 {
		t.Errorf("OutReflectDenied = %d, want 3", st.OutReflectDenied)
	}
}

func TestReflectionRecycleFreesMapping(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyInternalReflect
		c.ReflectionLimit = 1
	})
	outboundFrom(t, g, k, mon(0))
	g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.9.9.9")))
	k.Run()
	if g.Stats().ReflectionsActive != 1 {
		t.Fatalf("active reflections = %d", g.Stats().ReflectionsActive)
	}
	g.RecycleAll(k.Now())
	if g.Stats().ReflectionsActive != 0 {
		t.Error("reflection mapping survived recycle")
	}
}

func TestScanDetector(t *testing.T) {
	var detectedAddr netsim.Addr
	g, _, k := newTestGateway(t, func(c *Config) {
		c.Policy = PolicyDropAll
		c.DetectThreshold = 5
		c.OnDetected = func(_ sim.Time, a netsim.Addr, _ int) { detectedAddr = a }
	})
	outboundFrom(t, g, k, mon(0))
	for i := 0; i < 10; i++ {
		g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.0.0.1")+netsim.Addr(i)))
	}
	if detectedAddr != mon(0) {
		t.Errorf("detected = %s", detectedAddr)
	}
	if g.Stats().DetectedInfected != 1 {
		t.Errorf("DetectedInfected = %d (should fire once)", g.Stats().DetectedInfected)
	}
	if !g.Binding(mon(0)).Detected() {
		t.Error("binding not marked detected")
	}
}

func TestPeerTableBounded(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) { c.MaxPeers = 3 })
	for i := 0; i < 10; i++ {
		g.HandleInbound(k.Now(), syn(ext(i), mon(0)))
	}
	if got := g.Binding(mon(0)).Peers(); got != 3 {
		t.Errorf("peers = %d, want 3", got)
	}
	// Most recent peers retained (oldest-first eviction).
	b := g.Binding(mon(0))
	for i := 7; i < 10; i++ {
		if !b.isPeer(ext(i)) {
			t.Errorf("recent peer %d evicted", i)
		}
	}
	if b.isPeer(ext(0)) {
		t.Error("oldest peer survived eviction")
	}
}

func TestNoEscapeUnderContainmentProperty(t *testing.T) {
	// Property: under every non-open policy with DNS disabled, no packet
	// reaches ExternalOut except replies to eliciting sources.
	for _, pol := range []Policy{PolicyDropAll, PolicyReflectSource, PolicyInternalReflect} {
		var escaped []*netsim.Packet
		g, _, k := newTestGateway(t, func(c *Config) {
			c.Policy = pol
			c.AllowDNS = false
			c.ExternalOut = func(_ sim.Time, p *netsim.Packet) { escaped = append(escaped, p) }
		})
		r := sim.NewRNG(99)
		// 20 bindings elicited by known sources.
		for i := 0; i < 20; i++ {
			g.HandleInbound(k.Now(), syn(ext(i), mon(i)))
		}
		k.Run()
		// Storm of random outbound attempts.
		for i := 0; i < 2000; i++ {
			src := mon(r.Intn(20))
			dst := netsim.Addr(r.Uint64n(1 << 32))
			g.HandleOutbound(k.Now(), syn(src, dst))
			k.Run()
		}
		for _, p := range escaped {
			b := g.Binding(p.Src)
			if b == nil || !b.isPeer(p.Dst) {
				t.Fatalf("policy %v leaked %s", pol, p)
			}
		}
	}
}
