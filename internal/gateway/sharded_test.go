package gateway

import (
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func newShardedRig(t *testing.T, n int, mutate func(*Config)) (*Sharded, *fakeBackend, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel(5)
	fb := &fakeBackend{k: k, delay: 100 * time.Millisecond}
	cfg := DefaultConfig()
	cfg.IdleTimeout = 0
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSharded(k, cfg, fb, n)
	if err != nil {
		t.Fatal(err)
	}
	return s, fb, k
}

func TestShardedRoutesByDestination(t *testing.T) {
	s, fb, k := newShardedRig(t, 4, nil)
	// Hit 40 distinct addresses; bindings land on owner shards only.
	for i := 0; i < 40; i++ {
		s.HandleInbound(k.Now(), syn(ext(i), mon(i)))
	}
	k.Run()
	if s.NumBindings() != 40 {
		t.Fatalf("bindings = %d", s.NumBindings())
	}
	if err := s.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
	if len(fb.spawned) != 40 {
		t.Errorf("spawned = %d", len(fb.spawned))
	}
	// Every shard got some share (addresses mon(0..39) are consecutive,
	// so mod-4 spreads them evenly).
	for i, g := range s.shards {
		if g.NumBindings() != 10 {
			t.Errorf("shard %d bindings = %d, want 10", i, g.NumBindings())
		}
	}
}

func TestShardedBindingLookup(t *testing.T) {
	s, _, k := newShardedRig(t, 3, nil)
	s.HandleInbound(k.Now(), syn(ext(0), mon(7)))
	k.Run()
	if s.Binding(mon(7)) == nil {
		t.Error("Binding lookup missed")
	}
	if s.Binding(mon(8)) != nil {
		t.Error("phantom binding")
	}
	if s.Binding(netsim.MustParseAddr("11.0.0.1")) != nil {
		t.Error("binding outside space")
	}
}

func TestShardedOutboundUsesOwnerState(t *testing.T) {
	var out int
	s, _, k := newShardedRig(t, 4, func(c *Config) {
		c.Policy = PolicyReflectSource
		c.ExternalOut = func(sim.Time, *netsim.Packet) { out++ }
	})
	s.HandleInbound(k.Now(), syn(ext(0), mon(5)))
	k.Run()
	// Reply to the eliciting peer passes — the owner shard has the peer
	// state.
	if d := s.HandleOutbound(k.Now(), syn(mon(5), ext(0))); d != DispToSource {
		t.Errorf("reply disposition = %v", d)
	}
	// Non-peer outbound drops.
	if d := s.HandleOutbound(k.Now(), syn(mon(5), ext(9))); d != DispDropped {
		t.Errorf("non-peer disposition = %v", d)
	}
	if out != 1 {
		t.Errorf("externalized = %d", out)
	}
}

func TestShardedCrossShardInternalTraffic(t *testing.T) {
	s, fb, k := newShardedRig(t, 4, func(c *Config) { c.Policy = PolicyDropAll })
	s.HandleInbound(k.Now(), syn(ext(0), mon(0))) // owner: shard 0... (mon(0) index)
	k.Run()
	// VM at mon(0) contacts mon(1) — owned by a different shard.
	if d := s.HandleOutbound(k.Now(), syn(mon(0), mon(1))); d != DispInternal {
		t.Fatalf("disposition = %v", d)
	}
	k.Run()
	if len(fb.spawned) != 2 {
		t.Fatalf("spawned = %d, want 2", len(fb.spawned))
	}
	if err := s.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
	if b := s.Binding(mon(1)); b == nil {
		t.Error("cross-shard internal delivery did not bind")
	}
}

func TestShardedReflectionStaysLocal(t *testing.T) {
	s, _, k := newShardedRig(t, 4, func(c *Config) { c.Policy = PolicyInternalReflect })
	s.HandleInbound(k.Now(), syn(ext(0), mon(2)))
	k.Run()
	for i := 0; i < 10; i++ {
		s.HandleOutbound(k.Now(), syn(mon(2), netsim.MustParseAddr("99.0.0.1")+netsim.Addr(i)))
	}
	k.Run()
	if err := s.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.OutReflected == 0 {
		t.Error("no reflections")
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	s, _, k := newShardedRig(t, 2, nil)
	for i := 0; i < 10; i++ {
		s.HandleInbound(k.Now(), syn(ext(0), mon(i)))
	}
	k.Run()
	st := s.Stats()
	if st.BindingsCreated != 10 || st.InboundPackets != 10 {
		t.Errorf("aggregate stats: %+v", st)
	}
	s.RecycleAll(k.Now())
	if s.NumBindings() != 0 {
		t.Error("RecycleAll incomplete")
	}
	if s.Stats().BindingsRecycled != 10 {
		t.Errorf("recycled = %d", s.Stats().BindingsRecycled)
	}
	s.Close()
}

func TestShardedSingleShardEquivalence(t *testing.T) {
	// A 1-shard Sharded must behave exactly like a bare Gateway.
	run := func(sharded bool) Stats {
		k := sim.NewKernel(9)
		fb := &fakeBackend{k: k, delay: 100 * time.Millisecond}
		cfg := DefaultConfig()
		cfg.IdleTimeout = 0
		cfg.Policy = PolicyDropAll
		var in func(sim.Time, *netsim.Packet)
		var stats func() Stats
		if sharded {
			s, err := NewSharded(k, cfg, fb, 1)
			if err != nil {
				t.Fatal(err)
			}
			in, stats = s.HandleInbound, s.Stats
		} else {
			g := New(k, cfg, fb)
			in, stats = g.HandleInbound, g.Stats
		}
		r := sim.NewRNG(1)
		for i := 0; i < 500; i++ {
			in(k.Now(), syn(ext(r.Intn(50)), mon(r.Intn(50))))
			k.RunFor(10 * time.Millisecond)
		}
		k.Run()
		return stats()
	}
	a, b := run(false), run(true)
	if a != b {
		t.Errorf("1-shard diverges from bare gateway:\n%+v\n%+v", a, b)
	}
}
