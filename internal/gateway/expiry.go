package gateway

import (
	"container/heap"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// The binding-expiry index: a lazy-deletion min-heap of (deadline,
// binding) entries, so a scrub tick costs O(expired · log n) instead of
// scanning every live binding (the 10k-binding steady state in
// BenchmarkAblationScrub never expires anything — the old scan paid for
// all 10k each tick, the heap pays one peek).
//
// Invariants that make lazy deletion sound:
//
//   - Every live binding has exactly one heap entry, pushed at bind time
//     with the deadline computed from its then-current LastActive.
//     Packet arrivals refresh LastActive without touching the heap, so a
//     pushed deadline is always ≤ the binding's actual deadline — the
//     heap can fire early (the entry is then re-pushed at the true
//     deadline) but never late.
//   - Recycling does not remove entries. A popped entry is validated
//     against g.bindings by pointer; entries for recycled (or rebound —
//     the address may carry a new *Binding) bindings are dropped.
//   - Entries for pinned-detected bindings are dropped permanently:
//     Binding.detected is sticky, so such a binding can never become
//     scrubbable again (RecycleAll and backend-loss recycling don't
//     consult the heap).
//
// seq breaks deadline ties in insertion order, keeping pop order — and
// therefore the recycle event log — a pure function of the seed.

type expiryEntry struct {
	at   sim.Time
	seq  uint64
	addr netsim.Addr
	b    *Binding
}

type expiryHeap []expiryEntry

func (h expiryHeap) Len() int { return len(h) }
func (h expiryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = expiryEntry{}
	*h = old[:n-1]
	return e
}

// bindingDeadline computes when b becomes scrubbable: the earlier of
// idle expiry (from LastActive) and lifetime expiry (from CreatedAt).
// ok is false when neither timeout is configured.
func (g *Gateway) bindingDeadline(b *Binding) (at sim.Time, ok bool) {
	if g.Cfg.IdleTimeout > 0 {
		at, ok = b.LastActive.Add(g.Cfg.IdleTimeout), true
	}
	if g.Cfg.MaxLifetime > 0 {
		if l := b.CreatedAt.Add(g.Cfg.MaxLifetime); !ok || l < at {
			at, ok = l, true
		}
	}
	return at, ok
}

// scheduleExpiry pushes b's current deadline onto the expiry heap.
// No-op when recycling is disabled (the heap would only grow).
func (g *Gateway) scheduleExpiry(addr netsim.Addr, b *Binding) {
	at, ok := g.bindingDeadline(b)
	if !ok {
		return
	}
	g.expirySeq++
	heap.Push(&g.expiry, expiryEntry{at: at, seq: g.expirySeq, addr: addr, b: b})
}
