package gateway

import (
	"errors"
	"strconv"
	"time"

	"potemkin/internal/gre"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// HandleGREFrame is the wire-level inbound entry point: a GRE frame as
// received from a telescope border router. It decapsulates, parses the
// inner IPv4 packet, and dispatches. This is the path the E4 throughput
// benchmark drives.
func (g *Gateway) HandleGREFrame(now sim.Time, frame []byte) {
	_, inner, err := gre.Decap(frame)
	if err != nil {
		g.stats.InboundNonIP++
		return
	}
	pkt, err := netsim.Unmarshal(inner)
	if err != nil {
		g.stats.InboundNonIP++
		return
	}
	g.HandleInbound(now, pkt)
}

// HandleInbound dispatches a parsed packet arriving from outside the
// honeyfarm (or re-injected by internal reflection).
func (g *Gateway) HandleInbound(now sim.Time, pkt *netsim.Packet) {
	g.stats.InboundPackets++
	g.met.inbound.Inc()
	g.capture(now, CapInbound, pkt)
	if g.handleProxyReturn(now, pkt) {
		return
	}
	if !g.Cfg.Space.Contains(pkt.Dst) {
		g.stats.InboundOutside++
		return
	}
	b, ok := g.bindings[pkt.Dst]
	if !ok {
		if g.filterScan(pkt) {
			g.stats.ScanFiltered++
			return
		}
		b = g.bind(now, pkt.Dst, SpawnHint{Source: pkt.Src})
		if b == nil {
			return // spawn failed synchronously
		}
	}
	b.LastActive = now
	b.notePeer(pkt.Src, g.Cfg.MaxPeers)

	switch b.State {
	case BindingPending:
		if len(b.pending) >= g.Cfg.PendingLimit {
			g.stats.PendingDropped++
			return
		}
		if pkt.Ephemeral {
			pkt = pkt.Clone() // queued past this dispatch: own the bytes
		}
		b.pending = append(b.pending, pkt)
		g.pendingDepth++
		g.met.pendingQueued.Add(1)
		if g.Cfg.Tracer != nil {
			b.pendingAt = append(b.pendingAt, now)
		}
	case BindingActive:
		g.stats.DeliveredToVM++
		g.met.delivered.Inc()
		g.capture(now, CapToVM, pkt)
		b.VM.Deliver(now, pkt)
	}
}

// filterScan implements the redundant-scan shed: it reports whether
// this probe, which would otherwise instantiate a fresh VM, comes from
// a source whose probes to this port have already been serviced
// Cfg.ScanFilter times. Sources inside the monitored space (reflected
// or internal traffic) are never filtered — containment must observe
// them in full.
func (g *Gateway) filterScan(pkt *netsim.Packet) bool {
	if g.Cfg.ScanFilter <= 0 || g.Cfg.Space.Contains(pkt.Src) {
		return false
	}
	key := scanKey{src: pkt.Src, port: pkt.DstPort}
	if g.scanSeen[key] >= g.Cfg.ScanFilter {
		return true
	}
	g.scanSeen[key]++
	return false
}

// bind creates a pending binding for addr and requests a VM. Returns
// nil if the backend failed synchronously or the gateway is shedding
// load (ShedOnFull window after a backend-full failure).
func (g *Gateway) bind(now sim.Time, addr netsim.Addr, hint SpawnHint) *Binding {
	if g.Cfg.ShedOnFull > 0 && now < g.shedUntil {
		g.stats.BindingsShed++
		g.met.shed.Inc()
		g.logEvent(now, EvShed, addr, hint.Source, "")
		return nil
	}
	b := newBinding(now, addr, hint)
	g.bindings[addr] = b
	g.scheduleExpiry(addr, b)
	g.stats.BindingsCreated++
	g.met.created.Inc()
	g.met.bindingsLive.Add(1)
	if n := len(g.bindings); n > g.stats.PeakBindings {
		g.stats.PeakBindings = n
	}
	detail := ""
	if hint.Reflected {
		detail = "reflected"
	}
	if tr := g.Cfg.Tracer; tr != nil {
		attrs := []trace.Attr{
			{K: "addr", V: addr.String()},
			{K: "src", V: hint.Source.String()},
		}
		if hint.Reflected {
			attrs = append(attrs, trace.Attr{K: "reflected", V: "true"})
		}
		b.span = tr.StartTrace(now, "binding", attrs...)
		tr.Push(uint64(addr), b.span)
	}
	g.logEvent(now, EvBound, addr, hint.Source, detail)
	g.requestVM(now, addr, b, hint, 0)
	return g.bindings[addr]
}

// requestVM asks the backend for addr's VM, attempt counting retries
// already spent. On failure it retries with exponential backoff while
// budget remains and the binding is still current; the final failure
// recycles the binding (keeping BindingsCreated == live + recycled).
func (g *Gateway) requestVM(now sim.Time, addr netsim.Addr, b *Binding, hint SpawnHint, attempt int) {
	tr := g.Cfg.Tracer
	if tr != nil && b.span != nil {
		b.spawnSpan = tr.StartChild(now, b.span, "spawn",
			trace.Attr{K: "attempt", V: strconv.Itoa(attempt)})
		// Expose the spawn span as the address's current context so the
		// backend (farm) parents its placement span under it. RequestVM
		// returns synchronously even when ready fires later, so the Pop
		// below restores the root before control returns to the caller.
		tr.Push(uint64(addr), b.spawnSpan)
		defer tr.Pop(uint64(addr), b.spawnSpan)
	}
	g.backend.RequestVM(now, addr, hint, func(vm VMRef, err error) {
		// The binding may have been recycled while the clone was in
		// flight; in that case destroy the late VM.
		cur, ok := g.bindings[addr]
		if !ok || cur != b {
			if vm != nil {
				vm.Destroy(g.K.Now())
			}
			return
		}
		if err != nil {
			g.spawnFailed(addr, b, hint, attempt, err)
			return
		}
		b.VM = vm
		b.State = BindingActive
		flushAt := g.K.Now()
		b.spawnSpan.Finish(flushAt)
		g.logEvent(flushAt, EvActive, addr, 0, "")
		if tr != nil && b.span != nil {
			b.activeSpan = tr.StartChild(flushAt, b.span, "active")
			for _, at := range b.pendingAt {
				tr.ObserveStage("pending-wait", flushAt.Sub(at).Seconds()*1e3)
			}
			b.pendingAt = nil
		}
		g.pendingDepth -= len(b.pending)
		g.met.pendingQueued.Add(-int64(len(b.pending)))
		for _, queued := range b.pending {
			g.stats.DeliveredToVM++
			g.met.delivered.Inc()
			g.capture(flushAt, CapToVM, queued)
			vm.Deliver(flushAt, queued)
		}
		b.pending = nil
	})
}

// spawnFailed handles a backend error for a still-current binding:
// retry after backoff if budget remains, otherwise tear down. The
// pending queue rides along across retries untouched.
func (g *Gateway) spawnFailed(addr netsim.Addr, b *Binding, hint SpawnHint, attempt int, err error) {
	now := g.K.Now()
	if b.spawnSpan != nil && !b.spawnSpan.Done() {
		b.spawnSpan.Event(now, "spawn-error", err.Error())
		b.spawnSpan.Finish(now)
	}
	if attempt < g.Cfg.SpawnRetryBudget {
		g.stats.SpawnRetries++
		g.met.spawnRetries.Inc()
		g.logEvent(now, EvSpawnRetry, addr, 0, err.Error())
		backoff := g.Cfg.SpawnRetryBackoff
		if backoff <= 0 {
			backoff = 100 * time.Millisecond
		}
		g.K.After(backoff<<attempt, func(then sim.Time) {
			if cur, ok := g.bindings[addr]; !ok || cur != b {
				return // recycled while backing off
			}
			g.requestVM(then, addr, b, hint, attempt+1)
		})
		return
	}
	g.stats.SpawnFailures++
	g.met.spawnFailures.Inc()
	g.stats.PendingDropped += uint64(len(b.pending))
	g.logEvent(now, EvSpawnFail, addr, 0, err.Error())
	if g.Cfg.ShedOnFull > 0 && errors.Is(err, ErrBackendFull) {
		g.shedUntil = now.Add(g.Cfg.ShedOnFull)
	}
	g.recycle(now, addr, b)
}
