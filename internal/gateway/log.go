package gateway

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
	"unicode/utf8"

	"potemkin/internal/mem"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// The event log is the honeyfarm's forensic record: who was bound when,
// which VMs were flagged, what was reflected where. Operators replay it
// to reconstruct an incident after the VMs themselves have been
// recycled — checkpoints capture state, the log captures history.

// EventKind classifies a logged event.
type EventKind string

// Logged event kinds.
const (
	EvBound       EventKind = "bound"        // address bound, clone requested
	EvActive      EventKind = "active"       // VM live, queued packets flushed
	EvSpawnFail   EventKind = "spawn-fail"   // backend could not provide a VM
	EvSpawnRetry  EventKind = "spawn-retry"  // failed spawn re-requested after backoff
	EvShed        EventKind = "shed"         // new binding refused while shedding load
	EvBackendLost EventKind = "backend-lost" // backend reported the binding's VM lost
	EvRecycled    EventKind = "recycled"     // binding reclaimed
	EvDetected    EventKind = "detected"     // scan detector flagged the VM
	EvReflected   EventKind = "reflected"    // outbound redirected into the farm
	EvDNSProxied  EventKind = "dns-proxied"  // lookup rewritten to the safe resolver
)

// Event is one log record.
type Event struct {
	T    float64   `json:"t"` // seconds of simulated time
	Kind EventKind `json:"kind"`
	// Addr is the honeyfarm address the event concerns.
	Addr string `json:"addr"`
	// Peer is the relevant remote address, when there is one.
	Peer string `json:"peer,omitempty"`
	// Detail carries kind-specific context (target count, error text…).
	Detail string `json:"detail,omitempty"`
}

// EventSink consumes log records.
type EventSink func(Event)

// JSONLSink returns a sink that writes one JSON object per line to w.
// Encoding errors are reported through errFn (nil to ignore), never by
// panicking — logging must not take the gateway down.
func JSONLSink(w io.Writer, errFn func(error)) EventSink {
	enc := json.NewEncoder(w)
	return func(ev Event) {
		if err := enc.Encode(ev); err != nil && errFn != nil {
			errFn(err)
		}
	}
}

// ArenaSink returns a sink that appends one JSON line per event into a
// grow-once arena with zero per-event allocations — the buffered
// per-domain form the shard engine flushes in shard order on Close. The
// bytes are identical to JSONLSink's (appendEvent mirrors
// encoding/json), so arena-buffered and streamed logs compare equal.
func ArenaSink(a *mem.Arena) EventSink {
	return func(ev Event) {
		a.SetBuf(appendEvent(a.Buf(), ev))
	}
}

// appendEvent appends ev as one encoding/json-identical JSON line.
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"t":`...)
	b = appendJSONFloat(b, ev.T)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, string(ev.Kind))
	b = append(b, `,"addr":`...)
	b = appendJSONString(b, ev.Addr)
	if ev.Peer != "" {
		b = append(b, `,"peer":`...)
		b = appendJSONString(b, ev.Peer)
	}
	if ev.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, ev.Detail)
	}
	return append(b, '}', '\n')
}

// appendJSONFloat formats f exactly as encoding/json does: shortest
// representation, 'f' form inside [1e-6, 1e21), 'e' form outside with
// the exponent's leading zero trimmed (1e-09 → 1e-9).
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString quotes s exactly as encoding/json (HTML-escaping
// variant): control characters, quote, backslash, <, >, & are escaped,
// U+2028/U+2029 are escaped for script-embedding safety, and invalid
// UTF-8 becomes �.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				b = append(b, c)
				i++
				continue
			}
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, `\ufffd`...)
			i++
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

// logEvent emits a record if a sink is configured, and folds the same
// event onto the address's binding span when tracing is on — one source
// of truth, two views. Events with no live binding (a shed refusal)
// become standalone instant spans so the trace fully subsumes the log.
func (g *Gateway) logEvent(now sim.Time, kind EventKind, addr netsim.Addr, peer netsim.Addr, detail string) {
	if g.Cfg.EventSink == nil && g.Cfg.Tracer == nil {
		return
	}
	if g.Cfg.EventSink != nil {
		ev := Event{T: now.Seconds(), Kind: kind, Addr: addr.String(), Detail: detail}
		if peer != 0 {
			ev.Peer = peer.String()
		}
		g.Cfg.EventSink(ev)
	}
	if tr := g.Cfg.Tracer; tr != nil {
		d := detail
		if peer != 0 {
			if d != "" {
				d = peer.String() + " " + d
			} else {
				d = peer.String()
			}
		}
		if b := g.bindings[addr]; b != nil && b.span != nil {
			b.span.Event(now, string(kind), d)
		} else {
			attrs := []trace.Attr{{K: "addr", V: addr.String()}}
			if d != "" {
				attrs = append(attrs, trace.Attr{K: "detail", V: d})
			}
			tr.Instant(now, string(kind), attrs...)
		}
	}
}
