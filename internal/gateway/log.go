package gateway

import (
	"encoding/json"
	"io"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// The event log is the honeyfarm's forensic record: who was bound when,
// which VMs were flagged, what was reflected where. Operators replay it
// to reconstruct an incident after the VMs themselves have been
// recycled — checkpoints capture state, the log captures history.

// EventKind classifies a logged event.
type EventKind string

// Logged event kinds.
const (
	EvBound       EventKind = "bound"        // address bound, clone requested
	EvActive      EventKind = "active"       // VM live, queued packets flushed
	EvSpawnFail   EventKind = "spawn-fail"   // backend could not provide a VM
	EvSpawnRetry  EventKind = "spawn-retry"  // failed spawn re-requested after backoff
	EvShed        EventKind = "shed"         // new binding refused while shedding load
	EvBackendLost EventKind = "backend-lost" // backend reported the binding's VM lost
	EvRecycled    EventKind = "recycled"     // binding reclaimed
	EvDetected    EventKind = "detected"     // scan detector flagged the VM
	EvReflected   EventKind = "reflected"    // outbound redirected into the farm
	EvDNSProxied  EventKind = "dns-proxied"  // lookup rewritten to the safe resolver
)

// Event is one log record.
type Event struct {
	T    float64   `json:"t"` // seconds of simulated time
	Kind EventKind `json:"kind"`
	// Addr is the honeyfarm address the event concerns.
	Addr string `json:"addr"`
	// Peer is the relevant remote address, when there is one.
	Peer string `json:"peer,omitempty"`
	// Detail carries kind-specific context (target count, error text…).
	Detail string `json:"detail,omitempty"`
}

// EventSink consumes log records.
type EventSink func(Event)

// JSONLSink returns a sink that writes one JSON object per line to w.
// Encoding errors are reported through errFn (nil to ignore), never by
// panicking — logging must not take the gateway down.
func JSONLSink(w io.Writer, errFn func(error)) EventSink {
	enc := json.NewEncoder(w)
	return func(ev Event) {
		if err := enc.Encode(ev); err != nil && errFn != nil {
			errFn(err)
		}
	}
}

// logEvent emits a record if a sink is configured, and folds the same
// event onto the address's binding span when tracing is on — one source
// of truth, two views. Events with no live binding (a shed refusal)
// become standalone instant spans so the trace fully subsumes the log.
func (g *Gateway) logEvent(now sim.Time, kind EventKind, addr netsim.Addr, peer netsim.Addr, detail string) {
	if g.Cfg.EventSink == nil && g.Cfg.Tracer == nil {
		return
	}
	if g.Cfg.EventSink != nil {
		ev := Event{T: now.Seconds(), Kind: kind, Addr: addr.String(), Detail: detail}
		if peer != 0 {
			ev.Peer = peer.String()
		}
		g.Cfg.EventSink(ev)
	}
	if tr := g.Cfg.Tracer; tr != nil {
		d := detail
		if peer != 0 {
			if d != "" {
				d = peer.String() + " " + d
			} else {
				d = peer.String()
			}
		}
		if b := g.bindings[addr]; b != nil && b.span != nil {
			b.span.Event(now, string(kind), d)
		} else {
			attrs := []trace.Attr{{K: "addr", V: addr.String()}}
			if d != "" {
				attrs = append(attrs, trace.Attr{K: "detail", V: d})
			}
			tr.Instant(now, string(kind), attrs...)
		}
	}
}
